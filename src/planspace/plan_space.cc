#include "planspace/plan_space.h"

namespace etlopt {

Result<PlanSpace> PlanSpace::Build(const BlockContext& ctx,
                                   PlanSpaceOptions options) {
  PlanSpace ps;
  const JoinGraph& graph = ctx.graph();
  ps.ses_ = graph.ConnectedSubsets();

  for (RelMask se : ps.ses_) {
    ps.plans_[se];  // ensure an entry exists (empty for singletons)
    if (!IsSingleton(se)) {
      // The join graph is a tree, so each internal edge of the SE's subtree
      // induces exactly one split into two connected halves.
      for (size_t ei = 0; ei < graph.edges().size(); ++ei) {
        const JoinEdge& e = graph.edges()[ei];
        const RelMask bit_a = RelMask{1} << e.a;
        const RelMask bit_b = RelMask{1} << e.b;
        if ((se & bit_a) == 0 || (se & bit_b) == 0) continue;

        // Component of e.a within se after removing this edge.
        RelMask comp = bit_a;
        RelMask frontier = comp;
        while (frontier != 0) {
          RelMask next = 0;
          for (int rel : MaskToIndices(frontier)) {
            for (int ei2 : graph.edges_of(rel)) {
              if (ei2 == static_cast<int>(ei)) continue;
              const JoinEdge& e2 = graph.edges()[static_cast<size_t>(ei2)];
              const int other = e2.a == rel ? e2.b : e2.a;
              const RelMask bit = RelMask{1} << other;
              if ((se & bit) != 0 && (comp & bit) == 0) next |= bit;
            }
          }
          comp |= next;
          frontier = next;
        }
        const RelMask left = comp;
        const RelMask right = se & ~comp;
        if (right == 0) continue;  // edge internal to one side (unreachable
                                   // for a tree, kept for safety)

        auto add = [&](RelMask l, RelMask r) {
          if (options.left_deep_only && !IsSingleton(r)) return;
          PlanAlt alt;
          alt.left = l;
          alt.right = r;
          alt.attr = e.attr;
          alt.edge = static_cast<int>(ei);
          if (e.fk_dim >= 0) {
            const RelMask dim_bit = RelMask{1} << e.fk_dim;
            if (r == dim_bit) {
              alt.fk_dim_side = e.fk_dim;
            } else if (l == dim_bit) {
              // Normalized below by the symmetric add; only mark when the
              // dimension stands alone on one side.
              alt.fk_dim_side = e.fk_dim;
            }
          }
          ps.plans_[se].push_back(alt);
          ++ps.num_plans_;
        };
        // Both orientations are the same logical plan; the optimizer's DP
        // treats (A,B) as one plan. We record it once with a canonical
        // orientation (lower lowest-bit side first) unless left-deep mode
        // requires the singleton on the right.
        if (options.left_deep_only) {
          if (IsSingleton(right)) {
            add(left, right);
          } else if (IsSingleton(left)) {
            add(right, left);
          }
        } else {
          if (LowestBit(left) < LowestBit(right)) {
            add(left, right);
          } else {
            add(right, left);
          }
        }
      }
    }
  }
  return ps;
}

const std::vector<PlanAlt>& PlanSpace::plans(RelMask rels) const {
  static const std::vector<PlanAlt> kEmpty;
  auto it = plans_.find(rels);
  return it == plans_.end() ? kEmpty : it->second;
}

}  // namespace etlopt
