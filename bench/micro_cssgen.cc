// Micro-benchmarks for plan-space enumeration and CSS generation
// (Algorithm 1) across workflow shapes.

#include <benchmark/benchmark.h>

#include "css/generator.h"
#include "datagen/workload_suite.h"

namespace etlopt {
namespace {

void BM_PlanSpace(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(static_cast<int>(state.range(0)));
  const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
  std::vector<BlockContext> contexts;
  for (const Block& b : blocks) {
    contexts.push_back(BlockContext::Build(&spec.workflow, b).value());
  }
  for (auto _ : state) {
    int ses = 0;
    for (const BlockContext& ctx : contexts) {
      ses += PlanSpace::Build(ctx).value().num_ses();
    }
    benchmark::DoNotOptimize(ses);
  }
}
BENCHMARK(BM_PlanSpace)->Arg(3)->Arg(13)->Arg(21)->Arg(30);

void BM_GenerateCss(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(static_cast<int>(state.range(0)));
  const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
  std::vector<BlockContext> contexts;
  std::vector<PlanSpace> spaces;
  for (const Block& b : blocks) {
    contexts.push_back(BlockContext::Build(&spec.workflow, b).value());
    spaces.push_back(PlanSpace::Build(contexts.back()).value());
  }
  for (auto _ : state) {
    int css = 0;
    for (size_t i = 0; i < contexts.size(); ++i) {
      css += GenerateCss(contexts[i], spaces[i], {}).num_css();
    }
    benchmark::DoNotOptimize(css);
  }
}
BENCHMARK(BM_GenerateCss)->Arg(3)->Arg(13)->Arg(21)->Arg(30);

void BM_GenerateCssNoUnionDivision(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(static_cast<int>(state.range(0)));
  const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
  std::vector<BlockContext> contexts;
  std::vector<PlanSpace> spaces;
  for (const Block& b : blocks) {
    contexts.push_back(BlockContext::Build(&spec.workflow, b).value());
    spaces.push_back(PlanSpace::Build(contexts.back()).value());
  }
  CssGenOptions options;
  options.enable_union_division = false;
  for (auto _ : state) {
    int css = 0;
    for (size_t i = 0; i < contexts.size(); ++i) {
      css += GenerateCss(contexts[i], spaces[i], options).num_css();
    }
    benchmark::DoNotOptimize(css);
  }
}
BENCHMARK(BM_GenerateCssNoUnionDivision)->Arg(13)->Arg(21);

void BM_PartitionBlocks(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionBlocks(spec.workflow).size());
  }
}
BENCHMARK(BM_PartitionBlocks)->Arg(10)->Arg(21)->Arg(29);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
