#ifndef ETLOPT_APPROX_APPROX_ESTIMATOR_H_
#define ETLOPT_APPROX_APPROX_ESTIMATOR_H_

#include <unordered_map>

#include "approx/dhistogram.h"
#include "css/css.h"
#include "engine/executor.h"
#include "planspace/block.h"

namespace etlopt {

// Approximate statistic value: a (possibly fractional) count or a
// bucketized histogram.
class ApproxValue {
 public:
  ApproxValue() = default;
  static ApproxValue Count(double c) {
    ApproxValue v;
    v.is_count_ = true;
    v.count_ = c;
    return v;
  }
  static ApproxValue Hist(DHistogram h) {
    ApproxValue v;
    v.is_count_ = false;
    v.hist_ = std::move(h);
    return v;
  }
  bool is_count() const { return is_count_; }
  double count() const {
    ETLOPT_CHECK(is_count_);
    return count_;
  }
  const DHistogram& hist() const {
    ETLOPT_CHECK(!is_count_);
    return hist_;
  }

 private:
  bool is_count_ = true;
  double count_ = 0.0;
  DHistogram hist_;
};

// The Section 8 extension end-to-end: observes the selected statistics with
// *bucketized* collectors (per-attribute widths from ApproxConfig) and
// evaluates the same CSS derivation DAG with the uniformity-corrected
// algebra of DHistogram. Width-1 configurations reproduce the exact
// estimator's results. The union-division rules (J4/J5) require exact
// bucket identities and are not supported — generate the CSS catalog with
// enable_union_division=false for approximate mode.
class ApproxEstimator {
 public:
  ApproxEstimator(const BlockContext* ctx, const CssCatalog* catalog,
                  const ApproxConfig* config);

  // Observes `keys` (all must be observable; reject statistics are
  // rejected) from a run of the initial plan, then derives everything
  // derivable.
  Status ObserveAndDerive(const ExecutionResult& exec,
                          const std::vector<StatKey>& keys);

  bool Has(const StatKey& key) const { return values_.count(key) > 0; }
  Result<double> Cardinality(RelMask se) const;
  Result<double> Count(const StatKey& key) const;

  // Estimated cardinalities for all SEs (for the optimizer, rounded).
  Result<std::unordered_map<RelMask, int64_t>> AllCardinalities(
      const std::vector<RelMask>& subexpressions) const;

 private:
  Result<ApproxValue> Evaluate(const CssEntry& entry) const;

  const BlockContext* ctx_;
  const CssCatalog* catalog_;
  const ApproxConfig* config_;
  std::unordered_map<StatKey, ApproxValue, StatKeyHash> values_;
};

}  // namespace etlopt

#endif  // ETLOPT_APPROX_APPROX_ESTIMATOR_H_
