#ifndef ETLOPT_OBS_PROFILE_H_
#define ETLOPT_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace etlopt {
namespace obs {

// Process-wide profiler switch, mirroring the Tracer's enablement contract:
// off by default (profiles cost memory per run), turned on by the advisor /
// test harness, and started on by the ETLOPT_PROFILE environment variable.
// The disabled check is two relaxed loads + a branch — cheap enough to sit
// on the executor's per-operator path (benched in bench/micro_obs.cc next
// to the fault guard).
#ifdef ETLOPT_OBS_DISABLED
inline constexpr bool ProfilerEnabled() { return false; }
inline void SetProfilerEnabled(bool) {}
#else
bool ProfilerEnabled();
void SetProfilerEnabled(bool on);
#endif

// Monotonic nanoseconds for profile timestamps (steady clock, same base the
// executor's self-time deltas are taken on).
int64_t ProfileNowNs();

// One operator instance of one run: where the cycles went and how much data
// moved through. `pred_ns` is the calibrated cost-model prediction for this
// operator (obs/calibrate.h AnnotatePredictions); -1 until annotated.
struct OpProfile {
  int node = -1;        // WorkflowNode id
  std::string op;       // OpKindName ("Join", "Filter", ...)
  std::string label;    // lowercased op + node id ("join5"), the fault-
                        // injection naming convention reused for frames
  std::vector<int> inputs;  // producing node ids (plan-tree edges)
  int64_t self_ns = 0;  // wall time inside the operator itself
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t bytes = 0;    // bytes entering the operator (8 per value)
  double pred_ns = -1.0;
};

// The per-operator profile of one executed run, in workflow node order
// (i.e. topological). Tap overhead — the time ObserveStatistics spent
// reading the cached pipeline points — is attributed separately: it is
// instrumentation cost, not plan cost.
struct RunProfile {
  std::vector<OpProfile> ops;
  int64_t tap_ns = 0;

  bool empty() const { return ops.empty() && tap_ns == 0; }
  // Sum of operator self times (tap_ns excluded).
  int64_t TotalSelfNs() const;

  // The profiled weight of op i: rows_in for interior operators, rows_out
  // for sources (which have no upstream), floored at 1 — the row basis both
  // the calibration fit and its predictions use.
  static int64_t Weight(const OpProfile& op);
};

// Cumulative (inclusive) nanoseconds per op, aligned with profile.ops:
// self time plus the cumulative time of every input, over the plan tree.
// Operators feeding multiple consumers are counted into each consumer
// (standard inclusive-time semantics).
std::vector<int64_t> CumulativeNs(const RunProfile& profile);

// Collapsed-stack ("folded") rendering for flamegraph tooling: one line per
// operator, frames root-first along the consumer chain to the terminal
// node, weighted by self time. Tap overhead appears as its own
// "tap.observe" frame.
std::string FoldedStacks(const RunProfile& profile);

// Fixed-width per-operator table (self/cumulative ns, rows, ns/row, and —
// once annotated — predicted ns with its q-error).
std::string FormatProfileTable(const RunProfile& profile);

// Chrome-trace counter events ("ph":"C") for every operator's self time and
// row counts, appended to the global Tracer (no-op when it is disabled).
void EmitProfileCounters(const RunProfile& profile);

// Ledger codec. ProfileFromJson is tolerant: missing fields default.
Json ProfileToJson(const RunProfile& profile);
RunProfile ProfileFromJson(const Json& j);

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_PROFILE_H_
