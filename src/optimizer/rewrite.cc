#include "optimizer/rewrite.h"

#include <functional>
#include <unordered_map>

namespace etlopt {

Result<Workflow> PlanRewriter::Apply(
    const Workflow& original, const std::vector<BlockPlan>& plans,
    std::vector<std::unordered_map<RelMask, NodeId>>* se_nodes) {
  if (se_nodes != nullptr) {
    se_nodes->assign(plans.size(), {});
  }
  // Index join nodes of reordered blocks.
  struct BlockRef {
    const Block* block;
    const OptimizedPlan* plan;
    size_t plan_index;
  };
  std::unordered_map<NodeId, BlockRef> output_join;   // block output join
  std::unordered_map<NodeId, const Block*> inner_join;  // any block join
  for (size_t i = 0; i < plans.size(); ++i) {
    const BlockPlan& bp = plans[i];
    ETLOPT_CHECK(bp.block != nullptr && bp.plan != nullptr);
    if (bp.block->joins.empty()) continue;
    for (const BlockJoin& j : bp.block->joins) {
      inner_join[j.node] = bp.block;
    }
    output_join[bp.block->joins.back().node] =
        BlockRef{bp.block, bp.plan, i};
  }

  Workflow rewritten;
  rewritten.name_ = original.name() + "_optimized";
  rewritten.catalog_ = original.catalog();

  std::unordered_map<NodeId, NodeId> remap;
  auto append = [&](WorkflowNode node) -> NodeId {
    node.id = static_cast<NodeId>(rewritten.nodes_.size());
    rewritten.nodes_.push_back(std::move(node));
    return rewritten.nodes_.back().id;
  };

  for (const WorkflowNode& node : original.nodes()) {
    auto out_it = output_join.find(node.id);
    if (out_it != output_join.end()) {
      // Emit the optimized join tree in place of the designed one.
      const Block& block = *out_it->second.block;
      const OptimizedPlan& plan = *out_it->second.plan;
      const size_t plan_index = out_it->second.plan_index;
      std::function<NodeId(RelMask)> emit = [&](RelMask se) -> NodeId {
        if (IsSingleton(se)) {
          const int rel = LowestBit(se);
          const NodeId top = block.inputs[static_cast<size_t>(rel)].top();
          return remap.at(top);
        }
        const auto choice_it = plan.choices.find(se);
        ETLOPT_CHECK_MSG(choice_it != plan.choices.end(),
                         "missing join choice for SE");
        const JoinChoice& choice = choice_it->second;
        const NodeId left = emit(choice.left);
        const NodeId right = emit(choice.right);
        WorkflowNode join;
        join.kind = OpKind::kJoin;
        join.name = "opt_join_" + std::to_string(se);
        join.inputs = {left, right};
        join.join.attr = choice.attr;
        join.join.algorithm = choice.algorithm;
        const NodeId id = append(std::move(join));
        if (se_nodes != nullptr) {
          (*se_nodes)[plan_index][se] = id;
        }
        return id;
      };
      remap[node.id] = emit(block.full_mask());
      continue;
    }
    if (inner_join.find(node.id) != inner_join.end()) {
      continue;  // replaced by the emitted tree
    }
    WorkflowNode copy = node;
    for (NodeId& in : copy.inputs) {
      in = remap.at(in);
    }
    remap[node.id] = append(std::move(copy));
  }

  ETLOPT_RETURN_IF_ERROR(rewritten.Finalize());
  return rewritten;
}

}  // namespace etlopt
