#include "sketch/reservoir.h"

#include <algorithm>
#include <cmath>

namespace etlopt {
namespace sketch {
namespace {

bool PriorityGreater(const Reservoir::Item& a, const Reservoir::Item& b) {
  return a.priority > b.priority;
}

}  // namespace

Reservoir::Reservoir(int capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  ETLOPT_CHECK_MSG(capacity >= 1, "reservoir capacity must be >= 1");
  heap_.reserve(static_cast<size_t>(capacity));
}

void Reservoir::Push(Item item) {
  if (static_cast<int>(heap_.size()) < capacity_) {
    heap_.push_back(std::move(item));
    std::push_heap(heap_.begin(), heap_.end(), PriorityGreater);
    return;
  }
  if (item.priority <= heap_.front().priority) return;
  std::pop_heap(heap_.begin(), heap_.end(), PriorityGreater);
  heap_.back() = std::move(item);
  std::push_heap(heap_.begin(), heap_.end(), PriorityGreater);
}

void Reservoir::Add(std::vector<Value> row, double weight) {
  ETLOPT_CHECK_MSG(weight > 0.0, "reservoir weights must be positive");
  ++total_seen_;
  total_weight_ += weight;
  // u in (0,1]: flip NextDouble's [0,1) so log never sees 0.
  const double u = 1.0 - rng_.NextDouble();
  Item item;
  item.priority = std::pow(u, 1.0 / weight);
  item.weight = weight;
  item.row = std::move(row);
  Push(std::move(item));
}

std::vector<Reservoir::Item> Reservoir::Sorted() const {
  std::vector<Item> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), PriorityGreater);
  return sorted;
}

Status Reservoir::Merge(const Reservoir& other) {
  if (other.capacity_ != capacity_) {
    return Status::InvalidArgument("reservoir capacity mismatch in merge");
  }
  total_seen_ += other.total_seen_;
  total_weight_ += other.total_weight_;
  for (const Item& item : other.heap_) {
    Push(item);
  }
  return Status::OK();
}

int64_t Reservoir::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Reservoir));
  for (const Item& item : heap_) {
    bytes += static_cast<int64_t>(sizeof(Item)) +
             static_cast<int64_t>(item.row.size() * sizeof(Value));
  }
  return bytes;
}

Json Reservoir::ToJson() const {
  Json j = Json::Object();
  j.Set("type", Json::Str("reservoir"));
  j.Set("k", Json::Int(capacity_));
  j.Set("seen", Json::Int(total_seen_));
  j.Set("total_weight", Json::Double(total_weight_));
  Json items = Json::Array();
  for (const Item& item : Sorted()) {
    Json e = Json::Object();
    e.Set("p", Json::Double(item.priority));
    e.Set("w", Json::Double(item.weight));
    Json vals = Json::Array();
    for (Value v : item.row) vals.push_back(Json::Int(v));
    e.Set("row", std::move(vals));
    items.push_back(std::move(e));
  }
  j.Set("items", std::move(items));
  return j;
}

Result<Reservoir> Reservoir::FromJson(const Json& j) {
  if (!j.is_object() || j.GetString("type") != "reservoir") {
    return Status::InvalidArgument("not a reservoir sketch document");
  }
  const int k = static_cast<int>(j.GetInt("k"));
  if (k < 1) return Status::InvalidArgument("reservoir capacity out of range");
  Reservoir r(k);
  r.total_seen_ = j.GetInt("seen");
  r.total_weight_ = j.GetDouble("total_weight");
  const Json* items = j.Find("items");
  if (items == nullptr || !items->is_array()) {
    return Status::InvalidArgument("reservoir items malformed");
  }
  for (const Json& e : items->array()) {
    if (!e.is_object()) {
      return Status::InvalidArgument("reservoir item malformed");
    }
    Item item;
    item.priority = e.GetDouble("p");
    item.weight = e.GetDouble("w", 1.0);
    if (const Json* vals = e.Find("row");
        vals != nullptr && vals->is_array()) {
      for (const Json& v : vals->array()) item.row.push_back(v.int_value());
    }
    if (static_cast<int>(r.heap_.size()) >= k) {
      return Status::InvalidArgument("reservoir holds more than k items");
    }
    r.Push(std::move(item));
  }
  return r;
}

}  // namespace sketch
}  // namespace etlopt
