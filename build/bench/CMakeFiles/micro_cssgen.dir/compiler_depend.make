# Empty compiler generated dependencies file for micro_cssgen.
# This may be replaced when dependencies are built.
