#include "etl/schema.h"

#include "util/common.h"
#include "util/string_util.h"

namespace etlopt {

Schema::Schema(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {
  for (AttrId a : attrs_) {
    ETLOPT_CHECK_MSG(a >= 0 && a < AttrCatalog::kMaxAttrs,
                     "attribute id out of range");
    const AttrMask bit = AttrMask{1} << a;
    ETLOPT_CHECK_MSG((mask_ & bit) == 0, "duplicate attribute in schema");
    mask_ |= bit;
  }
}

int Schema::IndexOf(AttrId attr) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString(const AttrCatalog& catalog) const {
  std::vector<std::string> names;
  names.reserve(attrs_.size());
  for (AttrId a : attrs_) names.push_back(catalog.name(a));
  return "(" + Join(names, ", ") + ")";
}

}  // namespace etlopt
