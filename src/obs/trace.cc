#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace etlopt {
namespace obs {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_ns_(SteadyNowNs()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

int Tracer::CurrentTid() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<int>(tids_.size()) + 1);
  return it->second;
}

void Tracer::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  // Fixed-point microseconds with ns resolution: keeps timestamp ordering
  // (and therefore span nesting) exact in the viewer.
  out << std::fixed << std::setprecision(3);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":" << JsonQuote(e.name)
        << ",\"cat\":\"etlopt\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << static_cast<double>(e.start_ns) / 1000.0
        << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    if (!e.args.empty()) {
      out << ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : e.args) {
        if (!afirst) out << ",";
        afirst = false;
        out << JsonQuote(k) << ":" << v;
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

#ifndef ETLOPT_OBS_DISABLED
void ScopedSpan::Arg(const std::string& key, const std::string& value) {
  if (tracer_ != nullptr) args_.emplace_back(key, JsonQuote(value));
}
#endif

}  // namespace obs
}  // namespace etlopt
