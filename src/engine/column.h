#ifndef ETLOPT_ENGINE_COLUMN_H_
#define ETLOPT_ENGINE_COLUMN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "etl/predicate.h"
#include "util/common.h"

namespace etlopt {

// One attribute's values, contiguous in row order. Tables share columns by
// pointer (copy-on-write), which is what makes Source fan-out, Project, and
// Materialize O(#columns) instead of O(#rows).
using Column = std::vector<Value>;
using ColumnPtr = std::shared_ptr<Column>;

// Row positions selected by a vectorized predicate or join probe, in
// ascending row order. Kernels communicate through selection vectors and
// materialize late via GatherColumn.
using SelVector = std::vector<int64_t>;

// Deterministic 64-bit mix of a key value (splitmix64 finalizer): full
// avalanche, constant time, stable across platforms — unlike std::hash,
// whose result is implementation-defined. Shared by the join hash table and
// partition placement (parallel::PartitionHashValue), so the two agree.
inline uint64_t Hash64(Value v) {
  uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Whether the engine runs the batch-at-a-time kernels (default) or the
// legacy row-at-a-time loops kept for the golden equivalence suite and
// old-vs-new benchmarking. Initialized from ETLOPT_VECTORIZED ("0" / "off"
// / "false" disable); both paths produce bit-identical outputs and
// statistics.
bool VectorizedKernels();
void SetVectorizedKernels(bool on);

// Appends to `sel` the row positions in [0, n) whose value satisfies
// `pred`. One tight comparison loop per operator so the compiler can
// vectorize; semantics match Predicate::Matches exactly.
void BuildSelection(const Predicate& pred, const Value* data, int64_t n,
                    SelVector* sel);

// out[i] = src[sel[i]].
void GatherColumn(const Column& src, const SelVector& sel, Column* out);

// out[i] = fn(in[i]) for i in [0, n): the batched UDF transform kernel.
void MapColumn(const std::function<Value(Value)>& fn, const Value* in,
               int64_t n, Column* out);

// Open-addressing hash table over a build-side key column, laid out for the
// cache-friendly probe loop of the vectorized hash join: one pass assigns
// every build row to a key group (precomputing Hash64 per key), a prefix
// sum over group sizes then scatters the row ids into one contiguous array,
// so Lookup returns a contiguous range of build row ids *in build row
// order* — the emission-order invariant the bit-identical contract needs.
class JoinHashTable {
 public:
  // Builds over keys[0..n). `capacity_hint` is the estimator's predicted
  // build cardinality when a plan annotation is present; <= 0 falls back to
  // the row count (the slot directory is sized for the larger of the two).
  JoinHashTable(const Value* keys, int64_t n, int64_t capacity_hint = -1);

  struct RowRange {
    const int64_t* begin = nullptr;
    const int64_t* end = nullptr;
    bool empty() const { return begin == end; }
    int64_t size() const { return end - begin; }
  };

  // Build row ids holding `key`, in build row order; empty when absent.
  RowRange Lookup(Value key) const;
  bool Contains(Value key) const { return !Lookup(key).empty(); }

  int64_t num_keys() const { return static_cast<int64_t>(group_key_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(row_ids_.size()); }
  int64_t capacity() const { return static_cast<int64_t>(slot_group_.size()); }

 private:
  uint64_t mask_ = 0;
  std::vector<int64_t> slot_group_;   // slot -> group id, -1 = empty
  std::vector<Value> group_key_;      // group id -> key value
  std::vector<int64_t> group_start_;  // group id -> offset into row_ids_
  std::vector<int64_t> row_ids_;      // build row ids, grouped, build order
};

// Interns strings to dense ids so string-typed source attributes flow
// through the engine as ordinary Value columns (the dictionary encoding of
// the columnar layout). Ids are assigned 1..N in first-seen order, matching
// the {1..domain} convention of catalog attribute domains; 0 means absent.
class StringDictionary {
 public:
  // Returns the id of `s`, interning it first when new.
  Value Intern(const std::string& s);
  // Id of `s`, or 0 when it was never interned.
  Value Find(const std::string& s) const;
  // The string behind an interned id (1-based; checked).
  const std::string& LookupId(Value id) const;

  int64_t size() const { return static_cast<int64_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, Value> ids_;
  std::vector<std::string> strings_;
};

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_COLUMN_H_
