// Unit tests for the columnar storage layer and vectorized kernels
// (engine/column.*): selection vectors, gather, the join hash table's
// build-order grouping, dictionary encoding, copy-on-write column sharing,
// and the bit-identical agreement between the vectorized and legacy
// operator/tap kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "engine/column.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "sketch/sketch.h"
#include "sketch/tap.h"
#include "test_util.h"
#include "util/random.h"

namespace etlopt {
namespace {

// Flips the kernel flag for one scope and restores it after.
class ScopedKernels {
 public:
  explicit ScopedKernels(bool on) : saved_(VectorizedKernels()) {
    SetVectorizedKernels(on);
  }
  ~ScopedKernels() { SetVectorizedKernels(saved_); }

 private:
  bool saved_;
};

TEST(BuildSelectionTest, MatchesPredicateForEveryOperator) {
  Rng rng(5);
  Column data;
  for (int i = 0; i < 500; ++i) data.push_back(rng.NextInRange(1, 40));
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    const Predicate pred{0, op, 17};
    SelVector sel;
    BuildSelection(pred, data.data(), static_cast<int64_t>(data.size()),
                   &sel);
    SelVector expected;
    for (int64_t r = 0; r < static_cast<int64_t>(data.size()); ++r) {
      if (pred.Matches(data[static_cast<size_t>(r)])) expected.push_back(r);
    }
    EXPECT_EQ(sel, expected) << "op " << static_cast<int>(op);
  }
}

TEST(GatherTest, GatherColumnAndTableAgree) {
  Schema schema({0, 1});
  Table t{schema};
  for (int i = 0; i < 20; ++i) t.AddRow({i + 1, (i % 5) + 1});
  const SelVector sel{0, 3, 3, 19, 7};
  const Table picked = Table::Gather(t, sel);
  ASSERT_EQ(picked.num_rows(), 5);
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_EQ(picked.row(static_cast<int64_t>(i)), t.row(sel[i]));
  }
  Column col;
  GatherColumn(t.column(0), sel, &col);
  EXPECT_EQ(col, picked.column(0));
}

TEST(JoinHashTableTest, LookupReturnsBuildOrderGroups) {
  // Keys with duplicates, scattered: groups must come back contiguous and
  // in build row order (the emission-order invariant of the hash join).
  const Column keys{7, 3, 7, 9, 3, 7};
  const JoinHashTable ht(keys.data(), static_cast<int64_t>(keys.size()));
  EXPECT_EQ(ht.num_keys(), 3);
  EXPECT_EQ(ht.num_rows(), 6);

  const JoinHashTable::RowRange r7 = ht.Lookup(7);
  ASSERT_EQ(r7.size(), 3);
  EXPECT_EQ(std::vector<int64_t>(r7.begin, r7.end),
            (std::vector<int64_t>{0, 2, 5}));
  const JoinHashTable::RowRange r3 = ht.Lookup(3);
  EXPECT_EQ(std::vector<int64_t>(r3.begin, r3.end),
            (std::vector<int64_t>{1, 4}));
  const JoinHashTable::RowRange r9 = ht.Lookup(9);
  EXPECT_EQ(std::vector<int64_t>(r9.begin, r9.end),
            (std::vector<int64_t>{3}));
  EXPECT_TRUE(ht.Lookup(42).empty());
  EXPECT_TRUE(ht.Contains(9));
  EXPECT_FALSE(ht.Contains(8));
}

TEST(JoinHashTableTest, CapacityHintOnlyGrowsTheDirectory) {
  Rng rng(9);
  Column keys;
  for (int i = 0; i < 300; ++i) keys.push_back(rng.NextInRange(1, 50));
  const JoinHashTable plain(keys.data(), 300);
  const JoinHashTable hinted(keys.data(), 300, /*capacity_hint=*/5000);
  EXPECT_GT(hinted.capacity(), plain.capacity());
  // Results are identical either way: the hint is purely a sizing input.
  for (Value v = 1; v <= 50; ++v) {
    const JoinHashTable::RowRange a = plain.Lookup(v);
    const JoinHashTable::RowRange b = hinted.Lookup(v);
    EXPECT_EQ(std::vector<int64_t>(a.begin, a.end),
              std::vector<int64_t>(b.begin, b.end))
        << "key " << v;
  }
  // An undersized hint falls back to the row count.
  const JoinHashTable lowballed(keys.data(), 300, /*capacity_hint=*/1);
  EXPECT_EQ(lowballed.capacity(), plain.capacity());
}

TEST(JoinHashTableTest, EmptyBuildSide) {
  const JoinHashTable ht(nullptr, 0);
  EXPECT_EQ(ht.num_keys(), 0);
  EXPECT_TRUE(ht.Lookup(1).empty());
}

TEST(StringDictionaryTest, InternsFirstSeenOrder) {
  StringDictionary dict;
  EXPECT_EQ(dict.Intern("red"), 1);
  EXPECT_EQ(dict.Intern("green"), 2);
  EXPECT_EQ(dict.Intern("red"), 1);  // stable on re-intern
  EXPECT_EQ(dict.Intern("blue"), 3);
  EXPECT_EQ(dict.size(), 3);
  EXPECT_EQ(dict.Find("green"), 2);
  EXPECT_EQ(dict.Find("mauve"), 0);
  EXPECT_EQ(dict.LookupId(3), "blue");
}

TEST(TableCowTest, CopySharesColumnsUntilMutation) {
  Schema schema({0, 1});
  Table a{schema};
  for (int i = 0; i < 10; ++i) a.AddRow({i, i * 2});
  Table b = a;  // shares both columns
  EXPECT_EQ(a.column_data(0), b.column_data(0));
  EXPECT_EQ(a.column_data(1), b.column_data(1));

  b.AddRow({99, 98});  // clones on first write
  EXPECT_NE(a.column_data(0), b.column_data(0));
  EXPECT_EQ(a.num_rows(), 10);
  EXPECT_EQ(b.num_rows(), 11);
  EXPECT_EQ(a.at(9, 0), 9);    // original untouched
  EXPECT_EQ(b.at(10, 0), 99);
}

TEST(TableCowTest, EqualityComparesContentNotSharing) {
  Schema schema({0});
  Table a{schema};
  a.AddRow({1});
  a.AddRow({2});
  Table shared = a;
  EXPECT_TRUE(a == shared);
  Table rebuilt{schema};
  rebuilt.AddRow({1});
  rebuilt.AddRow({2});
  EXPECT_TRUE(a == rebuilt);
  rebuilt.AddRow({3});
  EXPECT_TRUE(a != rebuilt);
}

// ---- vectorized vs legacy kernel agreement ------------------------------

ExecutionResult RunWithKernels(const Workflow& wf, const SourceMap& sources,
                               bool vectorized) {
  ScopedKernels scoped(vectorized);
  return Executor(&wf).Execute(sources).value();
}

void ExpectSameExecution(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.node_outputs.size(), b.node_outputs.size());
  for (const auto& [id, table] : a.node_outputs) {
    EXPECT_EQ(table.MaterializeRows(),
              b.node_outputs.at(id).MaterializeRows())
        << "node " << id;
  }
  for (const auto& [id, table] : a.join_rejects) {
    EXPECT_EQ(table.MaterializeRows(),
              b.join_rejects.at(id).MaterializeRows())
        << "rejects of join " << id;
  }
  for (const auto& [id, table] : a.join_rejects_right) {
    EXPECT_EQ(table.MaterializeRows(),
              b.join_rejects_right.at(id).MaterializeRows())
        << "right rejects of join " << id;
  }
  EXPECT_EQ(a.rows_processed, b.rows_processed);
  EXPECT_EQ(a.bytes_processed, b.bytes_processed);
}

TEST(KernelEquivalenceTest, OperatorChainBitIdentical) {
  WorkflowBuilder b("chain");
  const AttrId k = b.DeclareAttr("k", 60);
  const AttrId v = b.DeclareAttr("v", 20);
  const AttrId d = b.DeclareAttr("d", 200);
  const NodeId src = b.Source("Fact", {k, v});
  const NodeId dim = b.Source("Dim", {k});
  const NodeId f = b.Filter(src, {v, CompareOp::kLt, 15});
  const NodeId t = b.DeriveAttr(f, v, d, [](Value x) { return x * 3 + 1; });
  const NodeId j = b.Join(t, dim, k, {/*reject_link=*/true});
  const NodeId p = b.Project(j, {k, d});
  const NodeId g = b.Aggregate(p, {k});
  b.Sink(g, "out");
  Workflow wf = std::move(b).Build().value();

  Rng rng(13);
  SourceMap sources;
  Table fact{Schema({k, v})};
  for (int i = 0; i < 2000; ++i) {
    fact.AddRow({rng.NextInRange(1, 60), rng.NextInRange(1, 20)});
  }
  Table dim_t{Schema({k})};
  for (int i = 0; i < 40; ++i) dim_t.AddRow({rng.NextInRange(1, 60)});
  sources["Fact"] = std::move(fact);
  sources["Dim"] = std::move(dim_t);

  const ExecutionResult legacy = RunWithKernels(wf, sources, false);
  const ExecutionResult vectorized = RunWithKernels(wf, sources, true);
  ExpectSameExecution(legacy, vectorized);
}

TEST(KernelEquivalenceTest, HashJoinWithDuplicatesAndHint) {
  // Duplicate-heavy keys on both sides: per-key fan-out emission order is
  // where the two kernels could diverge.
  Schema ls({0, 1});
  Schema rs({0, 2});
  Table left{ls};
  Table right{rs};
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    left.AddRow({rng.NextInRange(1, 12), i});
  }
  for (int i = 0; i < 80; ++i) {
    right.AddRow({rng.NextInRange(1, 15), 1000 + i});
  }
  for (int64_t hint : {-1, 10, 100000}) {
    Table lr_legacy{ls};
    Table lr_vec{ls};
    ScopedKernels legacy(false);
    const Table out_legacy = HashJoin(left, right, 0, &lr_legacy, hint);
    SetVectorizedKernels(true);
    const Table out_vec = HashJoin(left, right, 0, &lr_vec, hint);
    EXPECT_EQ(out_legacy.MaterializeRows(), out_vec.MaterializeRows())
        << "hint " << hint;
    EXPECT_EQ(lr_legacy.MaterializeRows(), lr_vec.MaterializeRows())
        << "hint " << hint;
  }
}

TEST(KernelEquivalenceTest, TapColumnarFeedBitIdentical) {
  Rng rng(31);
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 100);
  const AttrId b = catalog.Register("b", 40);
  const Table t = testing_util::RandomTable(catalog, {a, b}, 3000, rng);
  std::vector<const Value*> cols{t.column_data(0), t.column_data(1)};

  sketch::TapSketchConfig config;
  config.kmv_k = 64;  // small k so the KMV saturates and truncates

  sketch::DistinctTap by_row(config);
  sketch::DistinctTap by_col(config);
  std::vector<Value> probe(2);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    probe[0] = t.at(r, 0);
    probe[1] = t.at(r, 1);
    by_row.AddRow(probe);
  }
  by_col.AddColumns(cols, t.num_rows());
  EXPECT_EQ(by_row.Estimate(), by_col.Estimate());
  EXPECT_EQ(by_row.hll().ToJson().Dump(), by_col.hll().ToJson().Dump());

  sketch::HistTap hist_row(config, 2);
  sketch::HistTap hist_col(config, 2);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    probe[0] = t.at(r, 0);
    probe[1] = t.at(r, 1);
    hist_row.AddRow(probe);
  }
  hist_col.AddColumns(cols, t.num_rows());
  EXPECT_EQ(hist_row.rows_seen(), hist_col.rows_seen());
  EXPECT_EQ(hist_row.kmv().saturated(), hist_col.kmv().saturated());
  EXPECT_EQ(hist_row.kmv().ToJson().Dump(), hist_col.kmv().ToJson().Dump());
  const AttrMask attrs = (AttrMask{1} << a) | (AttrMask{1} << b);
  EXPECT_TRUE(hist_row.Build(attrs) == hist_col.Build(attrs));
}

TEST(KernelEquivalenceTest, BuildHistogramMatchesManualCount) {
  Rng rng(41);
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 25);
  const Table t = testing_util::RandomTable(catalog, {a}, 800, rng);
  const Histogram h = t.BuildHistogram(AttrMask{1} << a);
  std::unordered_map<Value, int64_t> manual;
  for (int64_t r = 0; r < t.num_rows(); ++r) ++manual[t.at(r, 0)];
  int64_t total = 0;
  for (const auto& [key, count] : h.buckets()) {
    ASSERT_EQ(key.size(), 1u);
    EXPECT_EQ(count, manual.at(key[0]));
    total += count;
  }
  EXPECT_EQ(total, t.num_rows());
}

}  // namespace
}  // namespace etlopt
