#include "lp/simplex.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/common.h"

namespace etlopt {

int LinearProgram::AddVariable(double cost, double lower, double upper) {
  ETLOPT_CHECK(lower <= upper);
  costs_.push_back(cost);
  lower_.push_back(lower);
  upper_.push_back(upper);
  return static_cast<int>(costs_.size()) - 1;
}

void LinearProgram::AddConstraint(LpConstraint constraint) {
  for (const auto& [var, coeff] : constraint.terms) {
    ETLOPT_CHECK(var >= 0 && var < num_variables());
    (void)coeff;
  }
  constraints_.push_back(std::move(constraint));
}

void LinearProgram::SetBounds(int var, double lower, double upper) {
  ETLOPT_CHECK(var >= 0 && var < num_variables());
  ETLOPT_CHECK(lower <= upper);
  lower_[var] = lower;
  upper_[var] = upper;
}

namespace {

// Dense simplex working state over the standard-form tableau.
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols) {
    data_.assign(static_cast<size_t>(rows) * cols, 0.0);
  }

  double& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  // Gauss-Jordan pivot on (pr, pc).
  void Pivot(int pr, int pc) {
    const double p = At(pr, pc);
    const double inv = 1.0 / p;
    for (int c = 0; c < cols_; ++c) At(pr, c) *= inv;
    At(pr, pc) = 1.0;
    for (int r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = At(r, pc);
      if (f == 0.0) continue;
      for (int c = 0; c < cols_; ++c) At(r, c) -= f * At(pr, c);
      At(r, pc) = 0.0;
    }
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

struct StandardForm {
  // One column per shifted structural variable plus slacks; artificials are
  // appended by the solver. `var_column[i]` is -1 when variable i is fixed.
  std::vector<int> var_column;
  std::vector<double> shift;        // x = shift + x'
  int num_columns = 0;              // structural + slack columns
  Tableau* tableau = nullptr;       // not owned
  std::vector<ConstraintSense> row_sense;
};

enum class PivotResult { kOptimal, kUnbounded, kIterationLimit };

// Runs simplex iterations for the given phase cost vector. `costs` has one
// entry per tableau column (excluding the rhs column, which is last).
PivotResult RunSimplex(Tableau& tab, std::vector<int>& basis,
                       const std::vector<double>& costs,
                       const SimplexOptions& options, double tol) {
  const int m = tab.rows();
  const int n = tab.cols() - 1;  // last column is rhs
  const int rhs = n;
  int degenerate_steps = 0;
  int64_t pivots = 0;
  // Batched: one atomic add per simplex call, not per pivot.
  struct PivotFlush {
    int64_t& pivots;
    ~PivotFlush() {
      ETLOPT_COUNTER_ADD("etlopt.lp.simplex.pivots", pivots);
      ETLOPT_HIST_RECORD("etlopt.lp.simplex.pivots_per_solve", pivots);
    }
  } flush{pivots};
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Price: reduced cost r_j = c_j - sum_i c_B[i] * tab[i][j].
    const bool bland = degenerate_steps > 2 * (m + n);
    int entering = -1;
    double best = -tol;
    for (int j = 0; j < n; ++j) {
      double r = costs[j];
      for (int i = 0; i < m; ++i) {
        const double a = tab.At(i, j);
        if (a != 0.0) r -= costs[static_cast<size_t>(basis[i])] * a;
      }
      if (r < -tol) {
        if (bland) {
          entering = j;
          break;
        }
        if (r < best) {
          best = r;
          entering = j;
        }
      }
    }
    if (entering < 0) return PivotResult::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = 0.0;
    for (int i = 0; i < m; ++i) {
      const double a = tab.At(i, entering);
      if (a > tol) {
        const double ratio = tab.At(i, rhs) / a;
        if (leaving < 0 || ratio < best_ratio - tol ||
            (ratio < best_ratio + tol && basis[i] < basis[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
    }
    if (leaving < 0) return PivotResult::kUnbounded;
    if (best_ratio < tol) {
      ++degenerate_steps;
    } else {
      degenerate_steps = 0;
    }
    tab.Pivot(leaving, entering);
    basis[static_cast<size_t>(leaving)] = entering;
    ++pivots;
  }
  return PivotResult::kIterationLimit;
}

}  // namespace

LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options) {
  ETLOPT_COUNTER_ADD("etlopt.lp.solves", 1);
  const double tol = options.tolerance;
  const int nvars = lp.num_variables();

  // Shift variables to x = lower + x' with x' >= 0; fixed variables become
  // constants. Finite upper bounds become extra <= rows.
  std::vector<int> var_column(static_cast<size_t>(nvars), -1);
  std::vector<double> shift(static_cast<size_t>(nvars), 0.0);
  int next_col = 0;
  for (int i = 0; i < nvars; ++i) {
    shift[static_cast<size_t>(i)] = lp.lower_bounds()[static_cast<size_t>(i)];
    if (lp.upper_bounds()[static_cast<size_t>(i)] -
            lp.lower_bounds()[static_cast<size_t>(i)] >
        tol) {
      var_column[static_cast<size_t>(i)] = next_col++;
    }
  }
  const int nstruct = next_col;

  struct Row {
    std::vector<double> coeffs;  // dense over structural columns
    ConstraintSense sense;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(lp.num_constraints()) + nstruct);
  for (const auto& c : lp.constraints()) {
    Row row;
    row.coeffs.assign(static_cast<size_t>(nstruct), 0.0);
    row.sense = c.sense;
    row.rhs = c.rhs;
    for (const auto& [var, coeff] : c.terms) {
      row.rhs -= coeff * shift[static_cast<size_t>(var)];
      const int col = var_column[static_cast<size_t>(var)];
      if (col >= 0) row.coeffs[static_cast<size_t>(col)] += coeff;
    }
    rows.push_back(std::move(row));
  }
  for (int i = 0; i < nvars; ++i) {
    const int col = var_column[static_cast<size_t>(i)];
    const double ub = lp.upper_bounds()[static_cast<size_t>(i)];
    if (col >= 0 && ub != LinearProgram::kInfinity) {
      Row row;
      row.coeffs.assign(static_cast<size_t>(nstruct), 0.0);
      row.coeffs[static_cast<size_t>(col)] = 1.0;
      row.sense = ConstraintSense::kLessEqual;
      row.rhs = ub - shift[static_cast<size_t>(i)];
      rows.push_back(std::move(row));
    }
  }

  // Normalize to rhs >= 0 (flip rows), then add slack / artificial columns.
  const int m = static_cast<int>(rows.size());
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (double& v : row.coeffs) v = -v;
      if (row.sense == ConstraintSense::kLessEqual) {
        row.sense = ConstraintSense::kGreaterEqual;
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.sense = ConstraintSense::kLessEqual;
      }
    }
  }
  int nslack = 0;
  int nartificial = 0;
  for (const auto& row : rows) {
    if (row.sense != ConstraintSense::kEqual) ++nslack;
    if (row.sense != ConstraintSense::kLessEqual) ++nartificial;
  }
  const int ncols = nstruct + nslack + nartificial;
  Tableau tab(m, ncols + 1);
  std::vector<int> basis(static_cast<size_t>(m), -1);
  int slack_at = nstruct;
  int art_at = nstruct + nslack;
  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<size_t>(r)];
    for (int c = 0; c < nstruct; ++c) {
      tab.At(r, c) = row.coeffs[static_cast<size_t>(c)];
    }
    tab.At(r, ncols) = row.rhs;
    switch (row.sense) {
      case ConstraintSense::kLessEqual:
        tab.At(r, slack_at) = 1.0;
        basis[static_cast<size_t>(r)] = slack_at++;
        break;
      case ConstraintSense::kGreaterEqual:
        tab.At(r, slack_at++) = -1.0;
        tab.At(r, art_at) = 1.0;
        basis[static_cast<size_t>(r)] = art_at++;
        break;
      case ConstraintSense::kEqual:
        tab.At(r, art_at) = 1.0;
        basis[static_cast<size_t>(r)] = art_at++;
        break;
    }
  }

  LpSolution solution;

  // Phase 1: minimize sum of artificials.
  if (nartificial > 0) {
    std::vector<double> phase1(static_cast<size_t>(ncols), 0.0);
    for (int j = nstruct + nslack; j < ncols; ++j) {
      phase1[static_cast<size_t>(j)] = 1.0;
    }
    const PivotResult res = RunSimplex(tab, basis, phase1, options, tol);
    if (res == PivotResult::kIterationLimit) {
      solution.status = LpStatus::kIterationLimit;
      return solution;
    }
    double infeas = 0.0;
    for (int i = 0; i < m; ++i) {
      if (basis[static_cast<size_t>(i)] >= nstruct + nslack) {
        infeas += tab.At(i, ncols);
      }
    }
    if (infeas > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive remaining (degenerate) artificials out of the basis if possible.
    for (int i = 0; i < m; ++i) {
      if (basis[static_cast<size_t>(i)] < nstruct + nslack) continue;
      int pc = -1;
      for (int j = 0; j < nstruct + nslack; ++j) {
        if (std::fabs(tab.At(i, j)) > tol) {
          pc = j;
          break;
        }
      }
      if (pc >= 0) {
        tab.Pivot(i, pc);
        basis[static_cast<size_t>(i)] = pc;
      }
      // Otherwise the row is all-zero over real columns: redundant, harmless.
    }
  }

  // Phase 2: original objective over structural columns (slacks cost 0;
  // artificial columns are priced +inf-like by giving them huge cost so they
  // never re-enter).
  std::vector<double> phase2(static_cast<size_t>(ncols), 0.0);
  for (int i = 0; i < nvars; ++i) {
    const int col = var_column[static_cast<size_t>(i)];
    if (col >= 0) {
      phase2[static_cast<size_t>(col)] += lp.costs()[static_cast<size_t>(i)];
    }
  }
  for (int j = nstruct + nslack; j < ncols; ++j) {
    phase2[static_cast<size_t>(j)] = 1e30;
  }
  const PivotResult res = RunSimplex(tab, basis, phase2, options, tol);
  if (res == PivotResult::kIterationLimit) {
    solution.status = LpStatus::kIterationLimit;
    return solution;
  }
  if (res == PivotResult::kUnbounded) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.values.assign(static_cast<size_t>(nvars), 0.0);
  std::vector<double> col_value(static_cast<size_t>(ncols), 0.0);
  for (int i = 0; i < m; ++i) {
    col_value[static_cast<size_t>(basis[static_cast<size_t>(i)])] =
        tab.At(i, ncols);
  }
  double objective = 0.0;
  for (int i = 0; i < nvars; ++i) {
    const int col = var_column[static_cast<size_t>(i)];
    const double x = shift[static_cast<size_t>(i)] +
                     (col >= 0 ? col_value[static_cast<size_t>(col)] : 0.0);
    solution.values[static_cast<size_t>(i)] = x;
    objective += lp.costs()[static_cast<size_t>(i)] * x;
  }
  solution.objective = objective;
  return solution;
}

}  // namespace etlopt
