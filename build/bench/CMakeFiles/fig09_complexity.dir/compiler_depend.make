# Empty compiler generated dependencies file for fig09_complexity.
# This may be replaced when dependencies are built.
