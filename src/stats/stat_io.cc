#include "stats/stat_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace etlopt {
namespace {

const char* KindToken(StatKind kind) {
  switch (kind) {
    case StatKind::kCard:
      return "card";
    case StatKind::kDistinct:
      return "distinct";
    case StatKind::kHist:
      return "hist";
    case StatKind::kRejectJoinCard:
      return "rejcard";
    case StatKind::kRejectJoinHist:
      return "rejhist";
  }
  return "?";
}

bool ParseKindToken(const std::string& token, StatKind* kind) {
  if (token == "card") {
    *kind = StatKind::kCard;
  } else if (token == "distinct") {
    *kind = StatKind::kDistinct;
  } else if (token == "hist") {
    *kind = StatKind::kHist;
  } else if (token == "rejcard") {
    *kind = StatKind::kRejectJoinCard;
  } else if (token == "rejhist") {
    *kind = StatKind::kRejectJoinHist;
  } else {
    return false;
  }
  return true;
}

// Parses "name=value" returning the value; empty on mismatch.
Result<int64_t> Field(const std::string& token, const char* name,
                      int lineno) {
  const std::string prefix = std::string(name) + "=";
  if (token.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": expected " + prefix + "..., got '" +
                                   token + "'");
  }
  try {
    size_t pos = 0;
    const int64_t v = std::stoll(token.substr(prefix.size()), &pos);
    if (pos != token.size() - prefix.size()) {
      throw std::invalid_argument(token);
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": bad integer in '" + token + "'");
  }
}

// Parses "name=value" as a double; error on mismatch.
Result<double> DoubleField(const std::string& token, const char* name,
                           int lineno) {
  const std::string prefix = std::string(name) + "=";
  if (token.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": expected " + prefix + "..., got '" +
                                   token + "'");
  }
  try {
    size_t pos = 0;
    const double v = std::stod(token.substr(prefix.size()), &pos);
    if (pos != token.size() - prefix.size()) {
      throw std::invalid_argument(token);
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": bad number in '" + token + "'");
  }
}

// Trailing "mode=sketch err=<e>" annotation after value=/buckets=. Absent
// tokens mean exact collection — the pre-sketch format parses unchanged, so
// old ledgers and stat files stay loadable.
Result<double> ParseModeSuffix(std::istringstream& ls, int lineno) {
  std::string token;
  double rel_error = 0.0;
  bool sketch = false;
  while (ls >> token) {
    if (token == "mode=exact") {
      continue;
    } else if (token == "mode=sketch") {
      sketch = true;
    } else if (token.rfind("err=", 0) == 0) {
      ETLOPT_ASSIGN_OR_RETURN(rel_error, DoubleField(token, "err", lineno));
    } else {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": unexpected token '" + token + "'");
    }
  }
  return sketch ? std::max(rel_error, 0.0) : -1.0;  // -1: exact
}

// Writes "<kind> rels=.. stage=.. [attrs=..] [left=.. k=..]".
void AppendKeySpec(std::ostream& out, const StatKey& key) {
  out << KindToken(key.kind) << " rels=" << key.rels
      << " stage=" << key.stage;
  if (key.kind != StatKind::kCard && key.kind != StatKind::kRejectJoinCard) {
    out << " attrs=" << key.attrs;
  }
  if (key.is_reject()) {
    out << " left=" << key.reject_left
        << " k=" << static_cast<int>(key.reject_k);
  }
}

// Reads the kind token + key fields from a token stream, leaving any
// trailing tokens (value=/buckets=) unconsumed.
Result<StatKey> ParseKeyFromStream(std::istringstream& ls, int lineno) {
  std::string kind_token;
  if (!(ls >> kind_token)) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": missing statistic kind");
  }
  StatKey key;
  if (!ParseKindToken(kind_token, &key.kind)) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": unknown kind '" + kind_token + "'");
  }
  std::string token;
  if (!(ls >> token)) return Status::InvalidArgument("missing rels");
  ETLOPT_ASSIGN_OR_RETURN(const int64_t rels, Field(token, "rels", lineno));
  key.rels = static_cast<RelMask>(rels);
  if (!(ls >> token)) return Status::InvalidArgument("missing stage");
  ETLOPT_ASSIGN_OR_RETURN(const int64_t stage, Field(token, "stage", lineno));
  key.stage = static_cast<int16_t>(stage);
  if (key.kind != StatKind::kCard && key.kind != StatKind::kRejectJoinCard) {
    if (!(ls >> token)) return Status::InvalidArgument("missing attrs");
    ETLOPT_ASSIGN_OR_RETURN(const int64_t attrs,
                            Field(token, "attrs", lineno));
    key.attrs = static_cast<AttrMask>(attrs);
  }
  if (key.is_reject()) {
    if (!(ls >> token)) return Status::InvalidArgument("missing left");
    ETLOPT_ASSIGN_OR_RETURN(const int64_t left, Field(token, "left", lineno));
    key.reject_left = static_cast<RelMask>(left);
    if (!(ls >> token)) return Status::InvalidArgument("missing k");
    ETLOPT_ASSIGN_OR_RETURN(const int64_t k, Field(token, "k", lineno));
    key.reject_k = static_cast<uint8_t>(k);
  }
  return key;
}

}  // namespace

std::string WriteStatKeySpec(const StatKey& key) {
  std::ostringstream out;
  AppendKeySpec(out, key);
  return out.str();
}

Result<StatKey> ParseStatKeySpec(const std::string& spec) {
  std::istringstream ls(spec);
  ETLOPT_ASSIGN_OR_RETURN(const StatKey key, ParseKeyFromStream(ls, 1));
  std::string trailing;
  if (ls >> trailing) {
    return Status::InvalidArgument("trailing tokens in stat key spec '" +
                                   spec + "'");
  }
  return key;
}

std::string WriteStatStoreText(const StatStore& store) {
  // Stable ordering for diff-friendly output.
  std::vector<const StatKey*> keys;
  keys.reserve(store.values().size());
  for (const auto& [key, value] : store.values()) {
    (void)value;
    keys.push_back(&key);
  }
  std::sort(keys.begin(), keys.end(), [](const StatKey* a, const StatKey* b) {
    return std::tie(a->kind, a->rels, a->stage, a->attrs, a->reject_left,
                    a->reject_k) < std::tie(b->kind, b->rels, b->stage,
                                            b->attrs, b->reject_left,
                                            b->reject_k);
  });

  std::ostringstream out;
  for (const StatKey* key : keys) {
    const StatValue& value = *store.Find(*key);
    // Collection-mode annotation: only sketch-backed values carry it, so
    // exact stores serialize byte-identically to the pre-sketch format.
    std::string mode_suffix;
    if (value.is_approx()) {
      std::ostringstream m;
      m << " mode=sketch err=" << value.rel_error();
      mode_suffix = m.str();
    }
    out << "stat ";
    AppendKeySpec(out, *key);
    if (value.is_count()) {
      out << " value=" << value.count() << mode_suffix << "\n";
    } else {
      const Histogram& hist = value.hist();
      out << " buckets=" << hist.NumBuckets() << mode_suffix << "\n";
      // Deterministic bucket order.
      std::vector<std::pair<std::vector<Value>, int64_t>> entries(
          hist.buckets().begin(), hist.buckets().end());
      std::sort(entries.begin(), entries.end());
      for (const auto& [bucket_key, count] : entries) {
        out << "bucket";
        for (Value v : bucket_key) out << " " << v;
        out << " = " << count << "\n";
      }
    }
  }
  return out.str();
}

Result<StatStore> ParseStatStoreText(const std::string& text) {
  StatStore store;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  // Pending histogram being filled.
  bool pending_hist = false;
  StatKey pending_key;
  Histogram pending;
  int64_t remaining_buckets = 0;
  double pending_rel_error = -1.0;  // -1: exact

  auto flush = [&]() {
    if (pending_hist) {
      store.Set(pending_key,
                pending_rel_error >= 0.0
                    ? StatValue::HistApprox(std::move(pending),
                                            pending_rel_error)
                    : StatValue::Hist(std::move(pending)));
      pending_hist = false;
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;
    if (head == "bucket") {
      if (!pending_hist || remaining_buckets <= 0) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": unexpected bucket line");
      }
      std::vector<Value> key;
      std::string token;
      std::vector<std::string> tokens;
      while (ls >> token) tokens.push_back(token);
      // Format: v1 v2 ... = count
      if (tokens.size() < 3 || tokens[tokens.size() - 2] != "=") {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": malformed bucket line");
      }
      try {
        for (size_t i = 0; i + 2 < tokens.size(); ++i) {
          key.push_back(std::stoll(tokens[i]));
        }
        const int64_t count = std::stoll(tokens.back());
        pending.Add(key, count);
      } catch (...) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": bad bucket values");
      }
      --remaining_buckets;
      if (remaining_buckets == 0) flush();
      continue;
    }
    if (head != "stat") {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected 'stat' or 'bucket'");
    }
    if (pending_hist && remaining_buckets > 0) {
      return Status::InvalidArgument(
          "line " + std::to_string(lineno) +
          ": previous histogram is missing bucket lines");
    }
    flush();

    ETLOPT_ASSIGN_OR_RETURN(const StatKey key, ParseKeyFromStream(ls, lineno));
    std::string token;
    if (!(ls >> token)) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": missing value/buckets");
    }
    const bool is_hist = key.kind == StatKind::kHist ||
                         key.kind == StatKind::kRejectJoinHist;
    if (is_hist) {
      ETLOPT_ASSIGN_OR_RETURN(remaining_buckets,
                              Field(token, "buckets", lineno));
      ETLOPT_ASSIGN_OR_RETURN(pending_rel_error,
                              ParseModeSuffix(ls, lineno));
      pending_key = key;
      pending = Histogram(key.attrs);
      pending_hist = true;
      if (remaining_buckets == 0) flush();
    } else {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t value,
                              Field(token, "value", lineno));
      ETLOPT_ASSIGN_OR_RETURN(const double rel_error,
                              ParseModeSuffix(ls, lineno));
      store.Set(key, rel_error >= 0.0
                         ? StatValue::CountApprox(value, rel_error)
                         : StatValue::Count(value));
    }
  }
  if (pending_hist && remaining_buckets > 0) {
    return Status::InvalidArgument("truncated histogram at end of input");
  }
  flush();
  return store;
}

Status SaveStatStore(const StatStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WriteStatStoreText(store);
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

Result<StatStore> LoadStatStore(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open statistics file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseStatStoreText(text.str());
}

}  // namespace etlopt
