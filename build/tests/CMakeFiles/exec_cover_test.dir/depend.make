# Empty dependencies file for exec_cover_test.
# This may be replaced when dependencies are built.
