#ifndef ETLOPT_OBS_EXPLAIN_H_
#define ETLOPT_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "estimator/estimator.h"
#include "obs/drift.h"
#include "optimizer/plan_cost.h"

namespace etlopt {
namespace obs {

// Inputs for explaining one block: the analysis artifacts plus the stored
// statistics feeding the estimates (typically a previous run's ledger
// record — the paper's run-N-drives-run-N+1 loop) and, when available, the
// actual cardinalities to diff against.
struct ExplainBlockInput {
  int block = 0;
  const BlockContext* ctx = nullptr;
  const CssCatalog* catalog = nullptr;
  std::vector<RelMask> ses;           // sub-expressions to annotate
  const StatStore* stats = nullptr;   // statistics feeding the estimates
  std::string source_run_id;          // ledger run the statistics came from
  const CardMap* actuals = nullptr;   // optional ground truth
};

// One annotated sub-expression of the plan tree.
struct SeExplainEntry {
  int block = 0;
  RelMask se = 0;
  int depth = 0;               // relations - 1
  double estimated = -1.0;     // -1: not derivable from the given stats
  double actual = -1.0;        // -1: unknown
  double qerror = -1.0;        // -1: either side missing
  bool drifted = false;
  double rel_error = -1.0;     // sketch error bound; -1: exact derivation
  std::string rule;            // deriving CSS rule, or "observed"
  std::vector<StatKey> feeding;   // observed leaf statistics
  std::string source_run_id;      // run id those leaves were stored under
};

struct PlanExplain {
  std::string workflow;
  std::string fingerprint;
  std::vector<SeExplainEntry> entries;  // block-major, then by depth/mask
};

// Derives every SE estimate from the given statistics and annotates it with
// estimate vs. actual, q-error, the feeding statistics (StatKey + source
// run id), and drift status from `drift` (may be null).
Result<PlanExplain> BuildPlanExplain(
    const std::vector<ExplainBlockInput>& blocks,
    const std::string& workflow_name, const std::string& fingerprint,
    const DriftReport* drift = nullptr);

// Text rendering: an aligned annotated plan tree per block.
std::string FormatPlanExplainText(const PlanExplain& explain,
                                  const AttrCatalog* catalog = nullptr);

// JSON rendering (machine-readable twin of the text output).
std::string PlanExplainJson(const PlanExplain& explain,
                            const AttrCatalog* catalog = nullptr);

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_EXPLAIN_H_
