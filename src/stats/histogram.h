#ifndef ETLOPT_STATS_HISTOGRAM_H_
#define ETLOPT_STATS_HISTOGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "etl/predicate.h"
#include "etl/types.h"
#include "util/bitmask.h"
#include "util/common.h"

namespace etlopt {

// Hash for composite bucket keys.
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (Value x : v) {
      h ^= static_cast<uint64_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Exact (multi-attribute) frequency histogram: one bucket per distinct value
// combination of the attribute set, as scoped by Section 3.1 of the paper
// ("we consider only histograms that can accurately estimate the
// cardinalities"). Attributes are kept in increasing AttrId order; bucket
// keys follow that order.
//
// The algebra below implements the paper's operators: dot product (J1),
// bucket-wise multiply ⟨H1|H2⟩ and divide H1/H2 (union-division, Eq. 2-3),
// marginalization (identity rule I2), join propagation (J2/J3), and
// predicate filtering (S1/S2).
class Histogram {
 public:
  using BucketMap = std::unordered_map<std::vector<Value>, int64_t, ValueVecHash>;

  Histogram() = default;
  explicit Histogram(AttrMask attrs);

  AttrMask attr_mask() const { return attr_mask_; }
  const std::vector<AttrId>& attrs() const { return attrs_; }
  int arity() const { return static_cast<int>(attrs_.size()); }

  // Adds `count` to the bucket for `key` (values aligned with attrs()).
  void Add(const std::vector<Value>& key, int64_t count = 1);
  // Single-attribute convenience.
  void Add1(Value v, int64_t count = 1);

  int64_t Get(const std::vector<Value>& key) const;
  int64_t Get1(Value v) const;

  // |H| in the paper: the sum of all bucket counts (equals |T|).
  int64_t TotalCount() const { return total_; }
  // Number of distinct value combinations (|a_T| when read as distinct).
  int64_t NumBuckets() const { return static_cast<int64_t>(buckets_.size()); }

  const BucketMap& buckets() const { return buckets_; }

  // ---- algebra ----

  // J1: sum over shared buckets of a[v] * b[v]. Requires equal attr sets.
  static int64_t DotProduct(const Histogram& a, const Histogram& b);

  // ⟨a|b⟩ generalized: scales each bucket of `a` by b's count on the
  // projection of the bucket onto b's attributes. Requires b.attrs ⊆ a.attrs.
  // Buckets scaled to zero are dropped.
  static Histogram MultiplyBy(const Histogram& a, const Histogram& b);

  // a / b bucket-wise on the projection (Eq. 2): each bucket of `a` is
  // divided by b's count on the projected key. Requires b.attrs ⊆ a.attrs and
  // a non-zero divisor for every bucket of `a` (guaranteed when `a` is the
  // result of a join through b's relation). Division is exact on exact
  // histograms; remainders indicate a modeling error and abort in debug.
  static Histogram DivideBy(const Histogram& a, const Histogram& b);

  // DivideBy that survives invariant violations instead of aborting, for
  // callers fed by untrusted statistics (corrupted ledger lines, salvaged
  // prefixes, sketch-rebuilt histograms): a zero/missing divisor passes the
  // numerator bucket through unchanged, a non-exact division rounds to
  // nearest, and a negative numerator bucket clamps to zero. Each repair
  // increments *clamped when given. Identical to DivideBy on inputs that
  // satisfy the exact-division invariants.
  static Histogram DivideByClamped(const Histogram& a, const Histogram& b,
                                   int64_t* clamped = nullptr);

  // I2: aggregates buckets down to the attribute subset `keep`.
  Histogram Marginalize(AttrMask keep) const;

  // S1: number of tuples matching a predicate on one of the histogram's
  // attributes.
  int64_t CountMatching(const Predicate& pred) const;

  // S2: buckets whose `pred.attr` component matches, then marginalized to
  // `keep` (keep may or may not contain pred.attr).
  Histogram FilterThenMarginalize(const Predicate& pred, AttrMask keep) const;

  // G2 support: one row per distinct bucket (all counts become 1).
  Histogram CollapseToDistinct() const;

  // Merges `other` into this histogram (bucket-wise addition); used to union
  // the matched and rejected parts in union-division (Eq. 1).
  void AddAll(const Histogram& other);

  bool operator==(const Histogram& other) const;

  std::string ToString() const;

 private:
  std::vector<AttrId> attrs_;  // increasing order
  AttrMask attr_mask_ = 0;
  BucketMap buckets_;
  int64_t total_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_STATS_HISTOGRAM_H_
