#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/workload_suite.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(RewriteTest, EmptyPlanListIsPassthrough) {
  auto ex = testing_util::MakePaperExample();
  const Workflow copy = PlanRewriter::Apply(ex.workflow, {}).value();
  EXPECT_EQ(copy.num_nodes(), ex.workflow.num_nodes());
  EXPECT_TRUE(copy.Validate().ok());
  // Same structure (modulo name suffix).
  for (NodeId i = 0; i < copy.num_nodes(); ++i) {
    EXPECT_EQ(copy.node(i).kind, ex.workflow.node(i).kind);
    EXPECT_EQ(copy.node(i).inputs, ex.workflow.node(i).inputs);
  }
}

TEST(RewriteTest, MultiBlockWorkflowRewritesOnlyEligibleBlocks) {
  // wf29: a pinned reject-link join feeding a reorderable 3-way block.
  const WorkloadSpec spec = BuildWorkload(29);
  const SourceMap sources = GenerateSources(spec, 17, 0.01);
  Pipeline pipeline;
  const CycleOutcome cycle =
      pipeline.RunCycle(spec.workflow, sources).value();
  const Workflow& optimized = cycle.opt.optimized;
  EXPECT_TRUE(optimized.Validate().ok());

  // The reject-link join must survive the rewrite verbatim.
  int reject_joins = 0;
  for (const WorkflowNode& node : optimized.nodes()) {
    if (node.kind == OpKind::kJoin && node.join.left_reject_link) {
      ++reject_joins;
    }
  }
  EXPECT_EQ(reject_joins, 1);

  // Semantics preserved.
  const ExecutionResult again =
      Executor(&optimized).Execute(sources).value();
  for (const auto& [target, table] : cycle.run.exec.targets) {
    EXPECT_EQ(table.num_rows(), again.targets.at(target).num_rows())
        << target;
  }
}

TEST(RewriteTest, MaterializeTargetsSurviveRewrite) {
  const WorkloadSpec spec = BuildWorkload(28);  // StagedLoad
  const SourceMap sources = GenerateSources(spec, 17, 0.01);
  Pipeline pipeline;
  const CycleOutcome cycle =
      pipeline.RunCycle(spec.workflow, sources).value();
  const ExecutionResult again =
      Executor(&cycle.opt.optimized).Execute(sources).value();
  // The staging materialization must still be produced, identically.
  ASSERT_TRUE(again.targets.count("staging.quotes"));
  EXPECT_EQ(again.targets.at("staging.quotes").num_rows(),
            cycle.run.exec.targets.at("staging.quotes").num_rows());
}

TEST(RewriteTest, RewrittenWorkflowIsReanalyzable) {
  // Design-once-run-repeatedly: the optimized workflow must itself pass
  // through the full pipeline (blocks, CSS, selection) for the next cycle.
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const CycleOutcome first =
      pipeline.RunCycle(ex.workflow, ex.sources).value();
  const Result<CycleOutcome> second =
      pipeline.RunCycle(first.opt.optimized, ex.sources);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // A fixpoint: re-optimizing the optimized plan cannot make it worse.
  EXPECT_LE(second->opt.optimized_cost, first.opt.optimized_cost + 1e-9);
}

TEST(RewriteTest, SnowflakeRewriteKeepsChains) {
  const WorkloadSpec spec = BuildWorkload(12);  // Snowflake5
  const SourceMap sources = GenerateSources(spec, 23, 0.01);
  Pipeline pipeline;
  const CycleOutcome cycle =
      pipeline.RunCycle(spec.workflow, sources).value();
  const Workflow& optimized = cycle.opt.optimized;
  // Same number of sources and sinks; same set of source tables.
  int sources_before = 0, sources_after = 0;
  for (const WorkflowNode& n : spec.workflow.nodes()) {
    if (n.kind == OpKind::kSource) ++sources_before;
  }
  for (const WorkflowNode& n : optimized.nodes()) {
    if (n.kind == OpKind::kSource) ++sources_after;
  }
  EXPECT_EQ(sources_before, sources_after);
  const ExecutionResult again =
      Executor(&optimized).Execute(sources).value();
  EXPECT_EQ(again.targets.begin()->second.num_rows(),
            cycle.run.exec.targets.begin()->second.num_rows());
}

}  // namespace
}  // namespace etlopt
