#include "datagen/table_gen.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace etlopt {

Table GenerateTable(const AttrCatalog& catalog, const TableSpec& spec,
                    Rng& rng, double row_scale) {
  ETLOPT_CHECK(row_scale > 0.0 && row_scale <= 1.0);
  const int64_t rows = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(spec.rows * row_scale)));

  std::vector<AttrId> attrs;
  attrs.reserve(spec.columns.size());
  for (const ColumnSpec& col : spec.columns) attrs.push_back(col.attr);
  Table table{Schema(attrs)};
  table.Reserve(static_cast<size_t>(rows));

  // Per-column samplers (Zipf CDFs are built once).
  struct Sampler {
    const ColumnSpec* spec;
    int64_t domain;
    int64_t match_upto;
    std::unique_ptr<ZipfDistribution> zipf;
  };
  std::vector<Sampler> samplers;
  for (const ColumnSpec& col : spec.columns) {
    Sampler s;
    s.spec = &col;
    s.domain = catalog.domain_size(col.attr);
    s.match_upto = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(col.match_upto * row_scale)));
    switch (col.gen) {
      case ColumnGen::kSequential:
        ETLOPT_CHECK_MSG(rows <= s.domain,
                         "sequential key exceeds attribute domain");
        break;
      case ColumnGen::kZipf:
        s.zipf = std::make_unique<ZipfDistribution>(s.domain, col.zipf_skew);
        break;
      case ColumnGen::kUniform:
        break;
      case ColumnGen::kFkZipf:
        ETLOPT_CHECK_MSG(s.match_upto <= s.domain,
                         "FK match range exceeds attribute domain");
        s.zipf =
            std::make_unique<ZipfDistribution>(s.match_upto, col.zipf_skew);
        break;
    }
    samplers.push_back(std::move(s));
  }

  for (int64_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(samplers.size());
    for (Sampler& s : samplers) {
      Value v = 0;
      switch (s.spec->gen) {
        case ColumnGen::kSequential:
          v = r + 1;
          break;
        case ColumnGen::kZipf:
          v = s.zipf->Sample(rng);
          break;
        case ColumnGen::kUniform:
          v = rng.NextInRange(1, s.domain);
          break;
        case ColumnGen::kFkZipf: {
          if (s.match_upto < s.domain &&
              rng.NextDouble() < s.spec->miss_rate) {
            v = rng.NextInRange(s.match_upto + 1, s.domain);  // dangling
          } else {
            v = s.zipf->Sample(rng);
          }
          break;
        }
      }
      row.push_back(v);
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace etlopt
