#ifndef ETLOPT_OPTIMIZER_JOIN_OPTIMIZER_H_
#define ETLOPT_OPTIMIZER_JOIN_OPTIMIZER_H_

#include "optimizer/plan_cost.h"
#include "planspace/plan_space.h"
#include "util/status.h"

namespace etlopt {

// The chosen join tree for a block: for every multi-relation SE reachable
// from the root, the split used to build it.
struct JoinChoice {
  RelMask left = 0;
  RelMask right = 0;
  AttrId attr = kInvalidAttr;
  JoinAlgorithm algorithm = JoinAlgorithm::kHash;
};

struct OptimizedPlan {
  double cost = 0.0;
  // Split per SE on the chosen tree (keyed by SE mask; leaves absent).
  std::unordered_map<RelMask, JoinChoice> choices;
  // The designed (initial) plan's cost under the same cardinalities, for
  // comparison.
  double initial_cost = 0.0;
};

// Step 7 of the framework (Fig. 2): textbook dynamic-programming join-order
// optimization over the block's plan space, driven by the SE cardinalities
// learned from the selected statistics.
Result<OptimizedPlan> OptimizeJoins(const BlockContext& ctx,
                                    const PlanSpace& plan_space,
                                    const CardMap& cards,
                                    const CostParams& params = {});

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_JOIN_OPTIMIZER_H_
