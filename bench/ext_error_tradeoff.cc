// Section 8 extension experiment (the paper's stated future work): the
// space-error trade-off of bucketized histograms. We sweep the bucket width
// on Zipf-skewed join keys and report, per width, the memory units of the
// two join-attribute histograms and the relative error of the J1 join
// estimate — plus a uniform-key control where bucketization is nearly free.
//
// width 1 reproduces the exact histograms of the main paper (zero error);
// the skew is what makes wide buckets costly, motivating the paper's
// "allowed error" objective for future optimizers (§8.1-8.2).

#include <cmath>
#include <cstdio>

#include "engine/executor.h"
#include "stats/approx_histogram.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace etlopt;

namespace {

struct Series {
  Table t1;
  Table t2;
  int64_t truth = 0;
};

Series MakeSeries(AttrId a, int64_t domain, bool skewed, uint64_t seed) {
  Rng rng(seed);
  Series s{Table{Schema({a})}, Table{Schema({a})}, 0};
  if (skewed) {
    ZipfDistribution zipf(domain, 1.3);
    for (int i = 0; i < 60000; ++i) s.t1.AddRow({zipf.Sample(rng)});
    for (int i = 0; i < 20000; ++i) s.t2.AddRow({zipf.Sample(rng)});
  } else {
    for (int i = 0; i < 60000; ++i) {
      s.t1.AddRow({rng.NextInRange(1, domain)});
    }
    for (int i = 0; i < 20000; ++i) {
      s.t2.AddRow({rng.NextInRange(1, domain)});
    }
  }
  s.truth = HashJoin(s.t1, s.t2, a, nullptr).num_rows();
  return s;
}

}  // namespace

int main() {
  const int64_t kDomain = 8192;
  AttrCatalog catalog;
  const AttrId a = catalog.Register("join_key", kDomain);

  const Series zipf = MakeSeries(a, kDomain, /*skewed=*/true, 5);
  const Series uni = MakeSeries(a, kDomain, /*skewed=*/false, 6);

  std::printf("== Extension: space-error trade-off of bucketized histograms "
              "(Section 8) ==\n");
  std::printf("domain %lld; |T1|=60000, |T2|=20000; truth(zipf)=%lld, "
              "truth(uniform)=%lld\n\n",
              static_cast<long long>(kDomain),
              static_cast<long long>(zipf.truth),
              static_cast<long long>(uni.truth));
  std::printf("%8s %12s | %14s %10s | %14s %10s\n", "width", "memory",
              "est(zipf)", "err(zipf)", "est(unif)", "err(unif)");
  for (int64_t width : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const ApproxHistogram z1 =
        ApproxHistogram::FromTable(zipf.t1, a, kDomain, width);
    const ApproxHistogram z2 =
        ApproxHistogram::FromTable(zipf.t2, a, kDomain, width);
    const ApproxHistogram u1 =
        ApproxHistogram::FromTable(uni.t1, a, kDomain, width);
    const ApproxHistogram u2 =
        ApproxHistogram::FromTable(uni.t2, a, kDomain, width);
    const double ez = ApproxHistogram::EstimateJoinCardinality(z1, z2);
    const double eu = ApproxHistogram::EstimateJoinCardinality(u1, u2);
    const double rz = std::fabs(ez - static_cast<double>(zipf.truth)) /
                      static_cast<double>(zipf.truth);
    const double ru = std::fabs(eu - static_cast<double>(uni.truth)) /
                      static_cast<double>(uni.truth);
    std::printf("%8lld %12s | %14.0f %9.2f%% | %14.0f %9.2f%%\n",
                static_cast<long long>(width),
                WithThousands(z1.MemoryUnits() + z2.MemoryUnits()).c_str(),
                ez, rz * 100.0, eu, ru * 100.0);
  }
  std::printf("\nshape: exact at width 1; error grows with width on skewed "
              "keys while uniform\nkeys tolerate wide buckets — the "
              "memory/error trade-off the paper defers to\nfuture work, "
              "quantified.\n");
  return 0;
}
