#ifndef ETLOPT_OPTIMIZER_PLAN_COST_H_
#define ETLOPT_OPTIMIZER_PLAN_COST_H_

#include <unordered_map>
#include <utility>

#include "etl/operator.h"
#include "util/bitmask.h"

namespace etlopt {

// Operator cost parameters for the classic hash-join cost model:
//   cost(L ⋈ R) = build·|R| + probe·|L| + output·|L ⋈ R|
// summed over the join tree. Cardinalities come from the learned statistics
// (the whole point of the framework: with exact cardinalities for every SE,
// every plan is costed exactly).
struct CostParams {
  double build = 2.0;   // per build-side row (hash table insert)
  double probe = 1.0;   // per probe-side row
  double output = 1.0;  // per produced row
  // Sort-merge: per-row sort cost factor (multiplied by log2 of the side's
  // rows) and per-row merge cost. With the defaults hash wins except on
  // degenerate inputs; tune e.g. for memory-starved engines where hash
  // tables are expensive.
  double sort = 0.75;
  double merge = 0.5;
};

using CardMap = std::unordered_map<RelMask, int64_t>;

// Cost of joining two already-available inputs with a hash join
// (probe = left, build = right).
double JoinStepCost(int64_t left_rows, int64_t right_rows, int64_t out_rows,
                    const CostParams& params);

// Cost of the same join with sort-merge.
double SortMergeStepCost(int64_t left_rows, int64_t right_rows,
                         int64_t out_rows, const CostParams& params);

// Picks the cheaper physical implementation; returns {algorithm, cost}.
std::pair<JoinAlgorithm, double> PickJoinAlgorithm(int64_t left_rows,
                                                   int64_t right_rows,
                                                   int64_t out_rows,
                                                   const CostParams& params);

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_PLAN_COST_H_
