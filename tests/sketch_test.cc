#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "core/pipeline.h"
#include "obs/drift.h"
#include "sketch/countmin.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/reservoir.h"
#include "sketch/sketch.h"
#include "sketch/tap.h"
#include "stats/stat_io.h"
#include "test_util.h"

namespace etlopt {
namespace {

using sketch::CountMin;
using sketch::HashValue;
using sketch::Hll;
using sketch::Kmv;
using sketch::Reservoir;

// ---------------------------------------------------------------------------
// HyperLogLog

TEST(HllTest, SmallStreamsUseLinearCounting) {
  Hll hll(12);
  for (int64_t i = 0; i < 100; ++i) hll.AddHash(HashValue(i));
  // Linear counting is near-exact far below m = 4096 registers.
  EXPECT_NEAR(static_cast<double>(hll.Estimate()), 100.0, 3.0);
}

TEST(HllTest, EstimateWithinTwoSigma) {
  for (const int64_t n : {int64_t{1000}, int64_t{100000}}) {
    Hll hll(12);
    for (int64_t i = 0; i < n; ++i) hll.AddHash(HashValue(i));
    const double tolerance = 2.0 * hll.StandardError() * static_cast<double>(n);
    EXPECT_NEAR(static_cast<double>(hll.Estimate()), static_cast<double>(n),
                tolerance)
        << "n=" << n;
  }
}

TEST(HllTest, DuplicatesDoNotInflate) {
  Hll once(12), tenfold(12);
  for (int64_t i = 0; i < 5000; ++i) {
    once.AddHash(HashValue(i));
    for (int r = 0; r < 10; ++r) tenfold.AddHash(HashValue(i));
  }
  EXPECT_EQ(once.Estimate(), tenfold.Estimate());
}

TEST(HllTest, MergeEqualsUnion) {
  Hll a(12), b(12), both(12);
  for (int64_t i = 0; i < 3000; ++i) {
    a.AddHash(HashValue(i));
    both.AddHash(HashValue(i));
  }
  for (int64_t i = 2000; i < 6000; ++i) {  // overlapping range
    b.AddHash(HashValue(i));
    both.AddHash(HashValue(i));
  }
  ASSERT_TRUE(a.Merge(b).ok());
  // Register-wise max makes the merged state identical to one sketch having
  // seen the concatenated streams — not just close, bit-identical.
  EXPECT_EQ(a.registers(), both.registers());
  EXPECT_EQ(a.Estimate(), both.Estimate());
}

TEST(HllTest, MergeRejectsPrecisionMismatch) {
  Hll a(10), b(12);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(HllTest, JsonRoundTrip) {
  Hll hll(8);
  for (int64_t i = 0; i < 500; ++i) hll.AddHash(HashValue(i * 31));
  const Result<Hll> back = Hll::FromJson(hll.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->precision(), 8);
  EXPECT_EQ(back->registers(), hll.registers());
  EXPECT_EQ(back->Estimate(), hll.Estimate());
}

// ---------------------------------------------------------------------------
// Count-Min

TEST(CountMinTest, NeverUnderestimatesAndBoundsOvershoot) {
  CountMin cm(256, 4);
  std::unordered_map<int64_t, int64_t> truth;
  // Zipf-ish stream: key i appears 1000 / (i + 1) times.
  for (int64_t i = 0; i < 400; ++i) {
    const int64_t count = 1000 / (i + 1);
    truth[i] = count;
    cm.AddHash(HashValue(i), count);
  }
  const double max_over =
      cm.EpsilonFraction() * static_cast<double>(cm.TotalCount());
  for (const auto& [key, count] : truth) {
    const int64_t est = cm.Estimate(HashValue(key));
    EXPECT_GE(est, count) << "key " << key;  // one-sided by construction
    EXPECT_LE(static_cast<double>(est - count), max_over) << "key " << key;
  }
}

TEST(CountMinTest, MergeEqualsConcatenatedStream) {
  CountMin a(128, 4), b(128, 4), both(128, 4);
  for (int64_t i = 0; i < 300; ++i) {
    a.AddHash(HashValue(i), i + 1);
    both.AddHash(HashValue(i), i + 1);
  }
  for (int64_t i = 150; i < 450; ++i) {
    b.AddHash(HashValue(i), 2);
    both.AddHash(HashValue(i), 2);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.TotalCount(), both.TotalCount());
  for (int64_t i = 0; i < 450; ++i) {
    EXPECT_EQ(a.Estimate(HashValue(i)), both.Estimate(HashValue(i)));
  }
}

TEST(CountMinTest, MergeRejectsShapeMismatch) {
  CountMin a(128, 4), b(256, 4), c(128, 5);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(CountMinTest, ForErrorSizesWidth) {
  const CountMin cm = CountMin::ForError(0.01, 0.01);
  EXPECT_LE(cm.EpsilonFraction(), 0.01);
  EXPECT_GE(cm.depth(), 5);  // ceil(ln 100)
}

TEST(CountMinTest, JsonRoundTrip) {
  CountMin cm(64, 3);
  for (int64_t i = 0; i < 200; ++i) cm.AddHash(HashValue(i), i % 7 + 1);
  const Result<CountMin> back = CountMin::FromJson(cm.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->width(), 64);
  EXPECT_EQ(back->depth(), 3);
  EXPECT_EQ(back->TotalCount(), cm.TotalCount());
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(back->Estimate(HashValue(i)), cm.Estimate(HashValue(i)));
  }
}

// ---------------------------------------------------------------------------
// KMV

TEST(KmvTest, ExactWhileUnderK) {
  Kmv kmv(64);
  for (int64_t i = 0; i < 50; ++i) kmv.AddHash(HashValue(i));
  for (int64_t i = 0; i < 50; ++i) kmv.AddHash(HashValue(i));  // duplicates
  EXPECT_FALSE(kmv.saturated());
  EXPECT_EQ(kmv.Estimate(), 50);
  EXPECT_EQ(kmv.StandardError(), 0.0);
}

TEST(KmvTest, SaturatedEstimateWithinThreeSigma) {
  const int64_t n = 50000;
  Kmv kmv(1024);
  for (int64_t i = 0; i < n; ++i) kmv.AddHash(HashValue(i));
  ASSERT_TRUE(kmv.saturated());
  const double tolerance = 3.0 * kmv.StandardError() * static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(kmv.Estimate()), static_cast<double>(n),
              tolerance);
}

TEST(KmvTest, RejectedDistinctHashStillSaturates) {
  // Regression: a distinct hash larger than the current k-th minimum must
  // still flip the sketch to saturated, or Estimate() under-reports.
  Kmv kmv(16);
  std::vector<uint64_t> hashes;
  for (int64_t i = 0; i < 17; ++i) hashes.push_back(HashValue(i));
  std::sort(hashes.begin(), hashes.end());
  for (size_t i = 0; i < 16; ++i) kmv.AddHash(hashes[i]);
  EXPECT_FALSE(kmv.saturated());
  kmv.AddHash(hashes[16]);  // larger than every retained hash: rejected
  EXPECT_TRUE(kmv.saturated());
}

TEST(KmvTest, MergeEqualsConcatenatedStream) {
  Kmv a(128), b(128), both(128);
  for (int64_t i = 0; i < 2000; ++i) {
    a.AddHash(HashValue(i));
    both.AddHash(HashValue(i));
  }
  for (int64_t i = 1000; i < 3000; ++i) {
    b.AddHash(HashValue(i));
    both.AddHash(HashValue(i));
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.entries(), both.entries());
  EXPECT_EQ(a.Estimate(), both.Estimate());
}

TEST(KmvTest, IntersectionEstimate) {
  // |A| = |B| = 20000 with 10000 shared keys.
  Kmv a(1024), b(1024);
  for (int64_t i = 0; i < 20000; ++i) a.AddHash(HashValue(i));
  for (int64_t i = 10000; i < 30000; ++i) b.AddHash(HashValue(i));
  const Result<double> inter = Kmv::EstimateIntersection(a, b);
  ASSERT_TRUE(inter.ok()) << inter.status().ToString();
  EXPECT_NEAR(*inter, 10000.0, 2500.0);  // Jaccard estimate is noisier
}

TEST(KmvTest, PayloadKeysSurviveJsonRoundTrip) {
  Kmv kmv(32);
  for (int64_t i = 0; i < 20; ++i) {
    kmv.AddHashWithKey(HashValue(i), {i, i * 2});
  }
  const Result<Kmv> back = Kmv::FromJson(kmv.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->k(), 32);
  EXPECT_EQ(back->saturated(), kmv.saturated());
  EXPECT_EQ(back->entries(), kmv.entries());
}

// ---------------------------------------------------------------------------
// Weighted reservoir

TEST(ReservoirTest, CapsAtCapacityAndCountsStream) {
  Reservoir res(10);
  for (int64_t i = 0; i < 1000; ++i) res.Add({i});
  EXPECT_EQ(res.size(), 10u);
  EXPECT_EQ(res.total_seen(), 1000);
  EXPECT_DOUBLE_EQ(res.total_weight(), 1000.0);
}

TEST(ReservoirTest, WeightBiasesInclusion) {
  // One item carries half the total weight; over independent seeds it must
  // be retained far more often than any uniform item would be.
  int kept = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    Reservoir res(8, /*seed=*/0x9000 + static_cast<uint64_t>(t));
    for (int64_t i = 0; i < 200; ++i) res.Add({i}, 1.0);
    res.Add({-1}, 200.0);
    for (const auto& item : res.items()) {
      if (item.row[0] == -1) {
        ++kept;
        break;
      }
    }
  }
  // Uniform inclusion would keep it ~8/201 of the time (~2 of 50 trials).
  EXPECT_GT(kept, trials / 2);
}

TEST(ReservoirTest, MergeKeepsLargestPriorities) {
  Reservoir a(16, 1), b(16, 2);
  for (int64_t i = 0; i < 100; ++i) a.Add({i});
  for (int64_t i = 100; i < 200; ++i) b.Add({i});
  std::vector<Reservoir::Item> pool = a.Sorted();
  const std::vector<Reservoir::Item> b_items = b.Sorted();
  pool.insert(pool.end(), b_items.begin(), b_items.end());
  std::sort(pool.begin(), pool.end(),
            [](const Reservoir::Item& x, const Reservoir::Item& y) {
              return x.priority > y.priority;
            });
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a.total_seen(), 200);
  const std::vector<Reservoir::Item> merged = a.Sorted();
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged[i].priority, pool[i].priority);
    EXPECT_EQ(merged[i].row, pool[i].row);
  }
}

TEST(ReservoirTest, JsonRoundTrip) {
  Reservoir res(8, 42);
  for (int64_t i = 0; i < 50; ++i) res.Add({i, i % 5}, 1.0 + i % 3);
  const Result<Reservoir> back = Reservoir::FromJson(res.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->capacity(), 8);
  EXPECT_EQ(back->total_seen(), res.total_seen());
  const auto ra = res.Sorted();
  const auto rb = back->Sorted();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].priority, rb[i].priority);
    EXPECT_EQ(ra[i].row, rb[i].row);
  }
}

// ---------------------------------------------------------------------------
// Taps

TEST(TapConfigTest, ForBudgetFitsShare) {
  for (const int64_t budget : {int64_t{4096}, int64_t{65536}, int64_t{1 << 20}}) {
    const auto config = sketch::TapSketchConfig::ForBudget(budget, 2);
    EXPECT_LE(config.DistinctTapBytes(), budget + 128) << budget;
    EXPECT_LE(config.HistTapBytes(2), budget + 1024) << budget;
  }
}

TEST(TapTest, HistTapExactOnSmallStream) {
  // Far under both the CM width and the KMV k: the rebuilt histogram matches
  // the exact one bucket for bucket.
  sketch::TapSketchConfig config;
  sketch::HistTap tap(config, 1);
  Histogram exact(AttrMask{1} << 3);
  for (int64_t i = 0; i < 200; ++i) {
    const std::vector<Value> key{i % 40};
    tap.AddRow(key);
    exact.Add(key);
  }
  const Histogram rebuilt = tap.Build(AttrMask{1} << 3);
  EXPECT_TRUE(rebuilt == exact);
}

TEST(TapTest, HistTapPreservesTotalMassWhenSaturated) {
  sketch::TapSketchConfig config;
  config.kmv_k = 64;  // force saturation
  sketch::HistTap tap(config, 1);
  const int64_t rows = 20000;
  for (int64_t i = 0; i < rows; ++i) tap.AddRow({i % 1000});
  const Histogram rebuilt = tap.Build(AttrMask{1} << 3);
  EXPECT_EQ(rebuilt.NumBuckets(), 64);
  // Rescaling keeps |H| ~= |T| (the I1 identity), within rounding.
  EXPECT_NEAR(static_cast<double>(rebuilt.TotalCount()),
              static_cast<double>(rows), static_cast<double>(rows) * 0.02);
}

TEST(TapTest, ObserveFallsBackToExactWhenBudgetSuffices) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options;
  options.tap_memory_budget_bytes = int64_t{1} << 30;  // plenty
  Pipeline pipeline(options);
  const auto analysis = pipeline.Analyze(ex.workflow).value();
  const Result<RunOutcome> run = pipeline.RunAndObserve(*analysis, ex.sources);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->tap_report.sketch_taps, 0);
  EXPECT_GT(run->tap_report.exact_taps, 0);
  for (const StatStore& store : run->block_stats) {
    for (const auto& [key, value] : store.values()) {
      EXPECT_FALSE(value.is_approx()) << key.ToString();
    }
  }
}

TEST(TapTest, TightBudgetSwitchesToSketchesWithErrorAnnotations) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions exact_options;
  Pipeline exact_pipeline(exact_options);
  const auto analysis = exact_pipeline.Analyze(ex.workflow).value();
  const RunOutcome exact_run =
      exact_pipeline.RunAndObserve(*analysis, ex.sources).value();

  PipelineOptions options;
  options.tap_memory_budget_bytes = 4096;  // below the exact footprint
  Pipeline pipeline(options);
  const Result<RunOutcome> run = pipeline.RunAndObserve(*analysis, ex.sources);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->tap_report.sketch_taps, 0);
  EXPECT_LE(run->tap_report.tap_bytes, run->tap_report.exact_bytes_estimate);

  ASSERT_EQ(run->block_stats.size(), exact_run.block_stats.size());
  int approx_values = 0;
  for (size_t b = 0; b < run->block_stats.size(); ++b) {
    for (const auto& [key, value] : run->block_stats[b].values()) {
      const StatValue* truth = exact_run.block_stats[b].Find(key);
      ASSERT_NE(truth, nullptr) << key.ToString();
      if (!value.is_approx()) continue;
      ++approx_values;
      EXPECT_GT(value.rel_error(), 0.0);
      if (value.is_count() && truth->is_count()) {
        // Distinct estimates stay within a loose 5-sigma guard band.
        const double tol = std::max(
            5.0 * value.rel_error() * static_cast<double>(truth->count()),
            3.0);
        EXPECT_NEAR(static_cast<double>(value.count()),
                    static_cast<double>(truth->count()), tol)
            << key.ToString();
      } else if (!value.is_count() && !truth->is_count()) {
        // The rebuilt histogram preserves the row mass it summarizes.
        EXPECT_NEAR(static_cast<double>(value.hist().TotalCount()),
                    static_cast<double>(truth->hist().TotalCount()),
                    std::max(5.0, 0.05 * static_cast<double>(
                                             truth->hist().TotalCount())))
            << key.ToString();
      }
    }
  }
  EXPECT_GT(approx_values, 0);
}

TEST(TapTest, EstimatorPropagatesErrorBounds) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options;
  options.tap_memory_budget_bytes = 4096;
  Pipeline pipeline(options);
  const Result<CycleOutcome> cycle = pipeline.RunCycle(ex.workflow, ex.sources);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_GT(cycle->run.tap_report.sketch_taps, 0);
  // Any estimate derived from a sketch-collected statistic must carry a
  // non-zero propagated error bound.
  int derived_approx = 0;
  for (const auto& be : cycle->opt.block_estimates) {
    for (const auto& [key, prov] : be.provenance) {
      if (prov.observed) continue;
      bool approx_input = false;
      for (const StatKey& in : prov.inputs) {
        const StatValue* iv = be.derived.Find(in);
        if (iv != nullptr && iv->is_approx()) approx_input = true;
      }
      if (!approx_input) continue;
      const StatValue* v = be.derived.Find(key);
      ASSERT_NE(v, nullptr);
      EXPECT_TRUE(v->is_approx()) << key.ToString();
      EXPECT_GT(v->rel_error(), 0.0) << key.ToString();
      ++derived_approx;
    }
  }
  EXPECT_GT(derived_approx, 0);
}

// ---------------------------------------------------------------------------
// Mode-annotated persistence and drift

TEST(SketchStatIoTest, ModeSuffixRoundTrips) {
  StatStore store;
  store.Set(StatKey::Card(5), StatValue::Count(1234));
  store.Set(StatKey::Distinct(2, AttrMask{1} << 4),
            StatValue::CountApprox(9984, 0.0163));
  Histogram h(AttrMask{1} << 2);
  h.Add({7}, 13);
  h.Add({9}, 5);
  store.Set(StatKey::Hist(3, AttrMask{1} << 2),
            StatValue::HistApprox(h, 0.025));

  const std::string text = WriteStatStoreText(store);
  EXPECT_NE(text.find("mode=sketch err="), std::string::npos);
  const Result<StatStore> back = ParseStatStoreText(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  const StatValue* card = back->Find(StatKey::Card(5));
  ASSERT_NE(card, nullptr);
  EXPECT_FALSE(card->is_approx());

  const StatValue* distinct = back->Find(StatKey::Distinct(2, AttrMask{1} << 4));
  ASSERT_NE(distinct, nullptr);
  EXPECT_TRUE(distinct->is_approx());
  EXPECT_EQ(distinct->count(), 9984);
  EXPECT_NEAR(distinct->rel_error(), 0.0163, 1e-9);

  const StatValue* hist = back->Find(StatKey::Hist(3, AttrMask{1} << 2));
  ASSERT_NE(hist, nullptr);
  EXPECT_TRUE(hist->is_approx());
  EXPECT_NEAR(hist->rel_error(), 0.025, 1e-9);
  EXPECT_EQ(hist->hist().TotalCount(), 18);
}

TEST(SketchDriftTest, SketchBackedStatsGetWidenedThresholds) {
  // Same numeric change, once exact and once sketch-collected: only the
  // exact one exceeds the (unwidened) relative-change threshold.
  const StatKey exact_key = StatKey::Card(1);
  const StatKey sketch_key = StatKey::Distinct(1, AttrMask{1} << 1);

  obs::RunRecord past;
  past.block_stats.emplace_back();
  past.block_stats[0].Set(exact_key, StatValue::Count(100));
  past.block_stats[0].Set(sketch_key, StatValue::CountApprox(100, 0.05));

  obs::RunRecord now = past;
  now.block_stats[0].Set(exact_key, StatValue::Count(180));
  now.block_stats[0].Set(sketch_key, StatValue::CountApprox(180, 0.05));

  obs::DriftOptions options;
  options.rel_change_threshold = 0.5;
  options.qerror_threshold = 2.0;
  options.sketch_widen_factor = 2.0;
  const obs::DriftReport report =
      obs::DriftDetector(options).Compare({past}, now);

  EXPECT_TRUE(report.IsDrifted(0, exact_key));
  EXPECT_FALSE(report.IsDrifted(0, sketch_key));
  for (const obs::DriftFinding& f : report.findings) {
    if (f.key == sketch_key) {
      EXPECT_TRUE(f.sketch_backed);
    }
    if (f.key == exact_key) {
      EXPECT_FALSE(f.sketch_backed);
    }
  }
}

TEST(SketchLedgerTest, CollectionModeSurvivesLedgerRoundTrip) {
  obs::RunRecord record;
  record.run_id = "run-1";
  record.fingerprint = "deadbeefdeadbeef";
  record.workflow = "wf";
  record.block_stats.emplace_back();
  record.block_stats[0].Set(StatKey::Card(3), StatValue::Count(42));
  record.block_stats[0].Set(StatKey::Distinct(1, AttrMask{1} << 2),
                            StatValue::CountApprox(1000, 0.016));

  const Result<obs::RunRecord> back =
      obs::RunRecord::FromJsonLine(record.ToJsonLine());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const StatValue* v =
      back->block_stats[0].Find(StatKey::Distinct(1, AttrMask{1} << 2));
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->is_approx());
  EXPECT_NEAR(v->rel_error(), 0.016, 1e-9);
  const StatValue* c = back->block_stats[0].Find(StatKey::Card(3));
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->is_approx());
}

}  // namespace
}  // namespace etlopt
