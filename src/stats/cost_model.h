#ifndef ETLOPT_STATS_COST_MODEL_H_
#define ETLOPT_STATS_COST_MODEL_H_

#include <unordered_map>

#include "etl/attr_catalog.h"
#include "stats/stat_key.h"

namespace etlopt {

// Which observation-cost metric drives statistics selection (Section 5.4).
enum class CostMetric {
  kMemory,    // units = integers held by the collector (the paper's figures)
  kCpu,       // units = tuples inspected at the observation point
  kCombined,  // weighted sum of both
};

struct CostModelOptions {
  CostMetric metric = CostMetric::kMemory;
  double memory_weight = 1.0;
  double cpu_weight = 1.0;
  // CPU cost of a statistic whose SE size is unknown (first run, no
  // feedback yet): a coarse pessimistic default.
  int64_t default_se_size = 100000;
  // When > 0: the collector for a distinct/histogram statistic is allowed
  // to degrade to a budget-bounded sketch, so its memory cost (in the
  // paper's integer units) is capped at this value instead of growing with
  // the attribute domain product. Set by the pipeline from
  // tap_memory_budget_bytes; 0 preserves the exact-collection cost table.
  int64_t sketch_memory_cap = 0;
  // When > 0: calibrated wall-nanoseconds one observed tuple costs at a tap
  // (fit from profiled runs, see obs/calibrate.h). CpuCost then returns
  // nanoseconds instead of abstract tuple counts — relative selector
  // rankings are unchanged for uniform taps, but budgets and reports speak
  // measured time. 0 preserves the paper's unit-cost-per-tuple table.
  double cpu_ns_per_row = 0.0;
};

// Implements the paper's Section 5.4 cost table:
//   |T| -> 1,  |a_T| -> |a|,  H^a -> |a|,  H^{a,b} -> |a|*|b|
// using the conservative "number of all possible values" for histogram
// memory (the true distinct count is unknown before observing). CPU cost is
// proportional to the tuples flowing past the observation point; SE sizes
// come from previous runs via SetSeSize (the paper's feedback loop breaking
// the circular dependency).
class CostModel {
 public:
  CostModel(const AttrCatalog* catalog, CostModelOptions options = {});

  // Feedback from a previous run: number of rows of a join SE / chain stage.
  void SetSeSize(RelMask rels, int64_t rows);
  void SetChainSize(int rel, int16_t stage, int64_t rows);

  double MemoryCost(const StatKey& key) const;
  double CpuCost(const StatKey& key) const;
  // The metric-selected cost used by the selectors.
  double Cost(const StatKey& key) const;

 private:
  int64_t SeSize(RelMask rels, int16_t stage) const;

  const AttrCatalog* catalog_;
  CostModelOptions options_;
  struct SizeKey {
    RelMask rels;
    int16_t stage;
    bool operator==(const SizeKey& o) const {
      return rels == o.rels && stage == o.stage;
    }
  };
  struct SizeKeyHash {
    size_t operator()(const SizeKey& k) const {
      return (static_cast<size_t>(k.rels) << 16) ^
             static_cast<size_t>(static_cast<uint16_t>(k.stage));
    }
  };
  std::unordered_map<SizeKey, int64_t, SizeKeyHash> sizes_;
};

}  // namespace etlopt

#endif  // ETLOPT_STATS_COST_MODEL_H_
