// Micro-benchmarks for the statistics selectors (Section 5) and the
// computability closure.

#include <benchmark/benchmark.h>

#include "css/generator.h"
#include "datagen/workload_suite.h"
#include "opt/closure.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"

namespace etlopt {
namespace {

struct Prepared {
  WorkloadSpec spec;
  std::vector<BlockContext> contexts;
  std::vector<PlanSpace> spaces;
  std::vector<CssCatalog> catalogs;
  std::vector<SelectionProblem> problems;
};

Prepared Prepare(int index) {
  Prepared p;
  p.spec = BuildWorkload(index);
  for (const Block& b : PartitionBlocks(p.spec.workflow)) {
    p.contexts.push_back(BlockContext::Build(&p.spec.workflow, b).value());
  }
  for (const BlockContext& ctx : p.contexts) {
    p.spaces.push_back(PlanSpace::Build(ctx).value());
  }
  for (size_t i = 0; i < p.contexts.size(); ++i) {
    p.catalogs.push_back(GenerateCss(p.contexts[i], p.spaces[i], {}));
  }
  for (size_t i = 0; i < p.contexts.size(); ++i) {
    CostModel cm(&p.spec.workflow.catalog(), {});
    p.problems.push_back(BuildSelectionProblem(p.contexts[i], p.spaces[i],
                                               p.catalogs[i], cm));
    p.problems.back().catalog = &p.catalogs[i];
  }
  return p;
}

void BM_Closure(benchmark::State& state) {
  const Prepared p = Prepare(static_cast<int>(state.range(0)));
  // Observe everything observable: worst-case closure propagation.
  std::vector<std::vector<char>> observed;
  for (const SelectionProblem& problem : p.problems) {
    observed.push_back(problem.observable);
  }
  for (auto _ : state) {
    size_t computable = 0;
    for (size_t i = 0; i < p.problems.size(); ++i) {
      const auto flags = ComputeClosure(p.catalogs[i], observed[i]);
      computable += static_cast<size_t>(
          std::count(flags.begin(), flags.end(), char{1}));
    }
    benchmark::DoNotOptimize(computable);
  }
}
BENCHMARK(BM_Closure)->Arg(3)->Arg(13)->Arg(21);

void BM_GreedySelect(benchmark::State& state) {
  const Prepared p = Prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double cost = 0;
    for (const SelectionProblem& problem : p.problems) {
      cost += SelectGreedy(problem).total_cost;
    }
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_GreedySelect)->Arg(3)->Arg(13)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_IlpSelectSmall(benchmark::State& state) {
  const Prepared p = Prepare(static_cast<int>(state.range(0)));
  IlpSelectorOptions options;
  options.time_limit_seconds = 1.0;
  options.max_nodes = 500;
  for (auto _ : state) {
    double cost = 0;
    for (const SelectionProblem& problem : p.problems) {
      cost += SelectIlp(problem, options).total_cost;
    }
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_IlpSelectSmall)->Arg(3)->Arg(22)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
