#ifndef ETLOPT_STATS_STAT_STORE_H_
#define ETLOPT_STATS_STAT_STORE_H_

#include <unordered_map>
#include <utility>

#include "stats/histogram.h"
#include "stats/stat_key.h"
#include "util/status.h"

namespace etlopt {

// How a statistic value was collected. Exact values come from full
// materialization (the seed behavior); sketch values come from streaming
// approximate taps (src/sketch) and carry a relative-error parameter.
enum class CollectionMode : uint8_t { kExact = 0, kSketch };

// The value of a statistic: a count (Card / Distinct / RejectJoinCard) or a
// histogram (Hist / RejectJoinHist), annotated with its collection mode and
// (for sketch-backed or derived-from-sketch values) a relative error bound.
// `rel_error` is the 1-sigma relative standard error for HLL/KMV-backed
// counts and the one-sided overestimate fraction for Count-Min-backed
// histograms; derivation through CSS rules accumulates input errors
// first-order (sums), a conservative bound for the rules' products, ratios
// and dot products.
class StatValue {
 public:
  StatValue() : is_count_(true), count_(0) {}
  static StatValue Count(int64_t count) {
    StatValue v;
    v.is_count_ = true;
    v.count_ = count;
    return v;
  }
  static StatValue Hist(Histogram hist) {
    StatValue v;
    v.is_count_ = false;
    v.hist_ = std::move(hist);
    return v;
  }
  static StatValue CountApprox(int64_t count, double rel_error) {
    StatValue v = Count(count);
    v.mode_ = CollectionMode::kSketch;
    v.rel_error_ = rel_error;
    return v;
  }
  static StatValue HistApprox(Histogram hist, double rel_error) {
    StatValue v = Hist(std::move(hist));
    v.mode_ = CollectionMode::kSketch;
    v.rel_error_ = rel_error;
    return v;
  }

  bool is_count() const { return is_count_; }
  int64_t count() const {
    ETLOPT_CHECK(is_count_);
    return count_;
  }
  const Histogram& hist() const {
    ETLOPT_CHECK(!is_count_);
    return hist_;
  }

  CollectionMode mode() const { return mode_; }
  bool is_approx() const { return mode_ == CollectionMode::kSketch; }
  double rel_error() const { return rel_error_; }
  // Marks a derived value as inheriting approximation error from its
  // inputs (the estimator's first-order propagation).
  void SetApprox(double rel_error) {
    mode_ = CollectionMode::kSketch;
    rel_error_ = rel_error;
  }

 private:
  bool is_count_;
  int64_t count_ = 0;
  Histogram hist_;
  CollectionMode mode_ = CollectionMode::kExact;
  double rel_error_ = 0.0;
};

// Observed and derived statistic values, keyed by StatKey. One store per
// (block, run).
class StatStore {
 public:
  void Set(const StatKey& key, StatValue value) {
    values_[key] = std::move(value);
  }

  bool Contains(const StatKey& key) const {
    return values_.find(key) != values_.end();
  }

  const StatValue* Find(const StatKey& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
  }

  Result<int64_t> GetCount(const StatKey& key) const {
    const StatValue* v = Find(key);
    if (v == nullptr) return Status::NotFound(key.ToString());
    if (!v->is_count()) {
      return Status::Internal("statistic is not a count: " + key.ToString());
    }
    return v->count();
  }

  Result<Histogram> GetHist(const StatKey& key) const {
    const StatValue* v = Find(key);
    if (v == nullptr) return Status::NotFound(key.ToString());
    if (v->is_count()) {
      return Status::Internal("statistic is not a histogram: " +
                              key.ToString());
    }
    return v->hist();
  }

  size_t size() const { return values_.size(); }

  const std::unordered_map<StatKey, StatValue, StatKeyHash>& values() const {
    return values_;
  }

 private:
  std::unordered_map<StatKey, StatValue, StatKeyHash> values_;
};

}  // namespace etlopt

#endif  // ETLOPT_STATS_STAT_STORE_H_
