#include "sketch/hll.h"

#include <cmath>

#include "util/common.h"

namespace etlopt {
namespace sketch {
namespace {

double AlphaM(int m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

Hll::Hll(int precision) : precision_(precision) {
  ETLOPT_CHECK_MSG(
      precision >= kMinPrecision && precision <= kMaxPrecision,
      "HLL precision out of range");
  registers_.assign(size_t{1} << precision_, 0);
}

void Hll::AddHash(uint64_t hash) {
  const size_t idx = static_cast<size_t>(hash >> (64 - precision_));
  // Rank of the first set bit in the remaining 64-p bits (1-based); an
  // all-zero suffix ranks 64-p+1.
  const uint64_t suffix = hash << precision_;
  int rank = 1;
  if (suffix == 0) {
    rank = 64 - precision_ + 1;
  } else {
    uint64_t probe = uint64_t{1} << 63;
    while ((suffix & probe) == 0) {
      ++rank;
      probe >>= 1;
    }
  }
  if (rank > registers_[idx]) {
    registers_[idx] = static_cast<uint8_t>(rank);
  }
}

int64_t Hll::Estimate() const {
  const int m = num_registers();
  double sum = 0.0;
  int zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = AlphaM(m) * static_cast<double>(m) *
                    static_cast<double>(m) / sum;
  // Small-range correction: linear counting while empty registers remain.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = static_cast<double>(m) *
               std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return static_cast<int64_t>(estimate + 0.5);
}

double Hll::StandardError() const {
  return 1.04 / std::sqrt(static_cast<double>(num_registers()));
}

Status Hll::Merge(const Hll& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL precision mismatch in merge");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  return Status::OK();
}

int64_t Hll::MemoryBytes() const {
  return static_cast<int64_t>(registers_.size()) +
         static_cast<int64_t>(sizeof(Hll));
}

Json Hll::ToJson() const {
  Json j = Json::Object();
  j.Set("type", Json::Str("hll"));
  j.Set("p", Json::Int(precision_));
  // Run-length friendly: registers as a plain int array (mostly small).
  Json regs = Json::Array();
  for (uint8_t r : registers_) regs.push_back(Json::Int(r));
  j.Set("regs", std::move(regs));
  return j;
}

Result<Hll> Hll::FromJson(const Json& j) {
  if (!j.is_object() || j.GetString("type") != "hll") {
    return Status::InvalidArgument("not an HLL sketch document");
  }
  const int p = static_cast<int>(j.GetInt("p"));
  if (p < kMinPrecision || p > kMaxPrecision) {
    return Status::InvalidArgument("HLL precision out of range");
  }
  Hll hll(p);
  const Json* regs = j.Find("regs");
  if (regs == nullptr || !regs->is_array() ||
      regs->array().size() != hll.registers_.size()) {
    return Status::InvalidArgument("HLL register array malformed");
  }
  for (size_t i = 0; i < hll.registers_.size(); ++i) {
    const int64_t v = regs->array()[i].int_value();
    if (v < 0 || v > 64) {
      return Status::InvalidArgument("HLL register value out of range");
    }
    hll.registers_[i] = static_cast<uint8_t>(v);
  }
  return hll;
}

}  // namespace sketch
}  // namespace etlopt
