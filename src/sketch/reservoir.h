#ifndef ETLOPT_SKETCH_RESERVOIR_H_
#define ETLOPT_SKETCH_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/json.h"
#include "util/random.h"
#include "util/status.h"

namespace etlopt {
namespace sketch {

// Weighted reservoir sample of capacity k (algorithm A-Res, Efraimidis &
// Spirakis 2006): each item draws priority u^(1/w) with u uniform in (0,1)
// and the k largest priorities are kept, so the inclusion probability of an
// item is proportional to its weight. With unit weights this degenerates to
// classic uniform reservoir sampling. Priorities ride along with the items,
// which makes two reservoirs mergeable — keep the k largest priorities of
// the union — exactly as if one reservoir had seen both streams (given
// disjoint randomness). Deterministic under an explicit seed.
class Reservoir {
 public:
  explicit Reservoir(int capacity = 256, uint64_t seed = 0x5eedULL);

  struct Item {
    double priority = 0.0;
    double weight = 1.0;
    std::vector<Value> row;
  };

  void Add(std::vector<Value> row, double weight = 1.0);

  // Items in decreasing priority order.
  std::vector<Item> Sorted() const;

  const std::vector<Item>& items() const { return heap_; }
  int capacity() const { return capacity_; }
  size_t size() const { return heap_.size(); }
  int64_t total_seen() const { return total_seen_; }
  double total_weight() const { return total_weight_; }

  // Keeps the k largest priorities of the union. Requires equal capacity.
  Status Merge(const Reservoir& other);

  int64_t MemoryBytes() const;

  Json ToJson() const;
  static Result<Reservoir> FromJson(const Json& j);

 private:
  void Push(Item item);

  int capacity_;
  Rng rng_;
  int64_t total_seen_ = 0;
  double total_weight_ = 0.0;
  std::vector<Item> heap_;  // min-heap on priority
};

}  // namespace sketch
}  // namespace etlopt

#endif  // ETLOPT_SKETCH_RESERVOIR_H_
