// etlopt_advisor — command-line front end for the statistics-identification
// framework. Mirrors how the paper's module consumed designer-exported
// workflows: feed it a workflow file, get back the analysis (blocks, plan
// space, CSS, the optimal statistics to observe, and the pay-as-you-go
// comparison).
//
// Usage:
//   etlopt_advisor analyze <workflow-file> [options]
//   etlopt_advisor run <workflow-file|suite-index> [options]  # full cycle
//   etlopt_advisor explain <workflow-file|suite-index> --ledger=<file>
//                                               # provenance from the ledger
//   etlopt_advisor report <ledger-file>         # offline accuracy dashboard
//   etlopt_advisor calibrate <ledger-file>      # fit a cost-model overlay
//   etlopt_advisor dot <workflow-file>          # Graphviz rendering
//   etlopt_advisor export-suite <index> [path]  # dump a benchmark workflow
//   etlopt_advisor transforms                   # list registered UDFs
//
// Options for analyze:
//   --selector=greedy|ilp     statistics selector (default greedy)
//   --no-union-division       disable the J4/J5 rules
//   --no-fk-rules             ignore foreign-key lookup metadata
//   --left-deep               restrict the plan space to left-deep trees
//   --budget=<units>          §6.1: report the budgeted plan as well
//
// run additionally executes the workflow (steps 5-7) on generated data and
// accepts:
//   --seed=<n>                data-generation seed (default 7)
//   --scale=<s>               row scale for suite workloads (default 0.05)
//   --rows=<n>                rows per source for file workflows (default
//                             1000)
//
// Observability options (analyze and run):
//   --metrics-out=<file>      dump the metrics registry on exit
//                             (.json -> JSON, otherwise Prometheus text)
//   --trace-out=<file>        record spans, write Chrome trace JSON
//                             (open in chrome://tracing or Perfetto)
//   --obs-summary             print headline counters + q-error table
//
// Profiling and calibration (run):
//   --profile                 per-operator profiler: print the self/
//                             cumulative time table after the run and carry
//                             the profile into the ledger record
//   --profile-out=<file>      additionally write a collapsed-stack profile
//                             (flamegraph.pl / speedscope folded format);
//                             implies --profile
//   --calibration=<file>      load a cost-calibration overlay (produced by
//                             `calibrate`): the selection cost model charges
//                             calibrated tap ns/row and every profiled
//                             operator gets a predicted-vs-measured q-error
//
// Cross-run options (run and explain):
//   --ledger=<file>           persistent run ledger (JSONL); run appends a
//                             record and reports drift vs. prior runs of
//                             the same workflow
//   --explain                 (run) print the annotated plan tree: est vs.
//                             actual rows, q-error, and which stored
//                             statistic fed each estimate
//   --json                    (explain) machine-readable output
//
// Approximate instrumentation (analyze and run):
//   --approx-taps[=<bytes>]   collect distinct/histogram taps with streaming
//                             sketches when the estimated exact footprint
//                             exceeds the byte budget (default 1 MiB);
//                             reports exact-vs-sketch memory and feeds the
//                             sketch q-error telemetry
//
// Parallel execution (run; see docs/parallelism.md):
//   --threads=<n>             run eligible operator chains partitioned over
//                             n worker threads (default 1 = serial; env
//                             ETLOPT_THREADS). Observed statistics are
//                             bit-identical to a serial run; --obs-summary
//                             gains a `-- parallelism --` section
//
// Robustness options (run; see docs/robustness.md):
//   --fault-spec=<spec>       install a deterministic fault injector (same
//                             grammar as ETLOPT_FAULT_SPEC); a malformed
//                             spec exits 1 before anything runs
//   --max-error-rate=<f>      abort when quarantined/scanned rows of any
//                             source exceed this fraction (default 0.05)
//   --checkpoint=<file>       tap checkpoint sidecar path; left behind with
//                             partial statistics when the run aborts
//   --checkpoint-every=<n>    rows between checkpoint flushes (default
//                             100000, or ETLOPT_CHECKPOINT_EVERY)
//
// Plan-regression guard (run; see docs/robustness.md):
//   --guard[=strict|warn|off]  adoption gate + runtime estimate monitors;
//                             bare --guard means strict. warn (default)
//                             scores the evidence and records the verdict
//                             but adopts anyway; strict keeps the designed
//                             plan on a failing verdict and aborts the run
//                             on a monitor violation (exit 4). Thresholds
//                             via ETLOPT_GUARD_* (see docs).
//
// Exit codes: 0 success, 1 usage/configuration/IO error, 3 the run aborted
// mid-flight (partial statistics were salvaged; the ledger record, when
// --ledger is given, is marked partial=true), 4 the plan-regression guard
// fell back to the designed plan or aborted the run on an estimate-monitor
// violation (the ledger record carries the guard verdict).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/lifecycle.h"
#include "core/report.h"
#include "datagen/workload_suite.h"
#include "engine/instrumentation.h"
#include "etl/transforms.h"
#include "etl/workflow_io.h"
#include "obs/accuracy.h"
#include "obs/calibrate.h"
#include "obs/drift.h"
#include "obs/explain.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "opt/resource.h"
#include "util/bitmask.h"
#include "util/fault.h"
#include "util/random.h"

using namespace etlopt;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "etlopt_advisor: %s\n", message.c_str());
  return 1;
}

// Observability sinks shared by analyze/run. Parse turns the tracer on as
// soon as --trace-out appears, so every later phase is captured; Finish
// writes the requested dumps.
struct ObsSinks {
  std::string metrics_out;
  std::string trace_out;
  bool summary = false;

  bool ParseFlag(const std::string& arg) {
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
      return true;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
      obs::Tracer::Global().SetEnabled(true);
      return true;
    }
    if (arg == "--obs-summary") {
      summary = true;
      return true;
    }
    return false;
  }

  static bool WriteFile(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const size_t written = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return written == content.size();
  }

  int Finish() const {
    if (!metrics_out.empty()) {
      const bool json =
          metrics_out.size() >= 5 &&
          metrics_out.compare(metrics_out.size() - 5, 5, ".json") == 0;
      const std::string dump =
          json ? obs::MetricsRegistry::Global().ExportJson()
               : obs::MetricsRegistry::Global().ExportPrometheus();
      if (!WriteFile(metrics_out, dump)) {
        return Fail("cannot write metrics to '" + metrics_out + "'");
      }
      std::printf("wrote metrics to %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      // Crash-safe (temp + rename) write; unclosed spans from an aborted
      // phase are emitted as begin events, so the file always loads.
      const Status st = obs::Tracer::Global().WriteChromeTrace(trace_out);
      if (!st.ok()) return Fail(st.ToString());
      std::printf("wrote %zu trace event(s) to %s\n",
                  obs::Tracer::Global().NumEvents(), trace_out.c_str());
    }
    if (summary) {
      std::printf("\n%s", FormatObsSummary().c_str());
    }
    return 0;
  }
};

bool ParsePipelineFlag(const std::string& arg, PipelineOptions* options) {
  if (arg == "--selector=greedy") {
    options->selector = SelectorKind::kGreedy;
  } else if (arg == "--selector=ilp") {
    options->selector = SelectorKind::kIlp;
  } else if (arg == "--no-union-division") {
    options->css.enable_union_division = false;
  } else if (arg == "--no-fk-rules") {
    options->css.enable_fk_rules = false;
  } else if (arg == "--left-deep") {
    options->plan_space.left_deep_only = true;
  } else if (arg == "--approx-taps") {
    options->tap_memory_budget_bytes = 1 << 20;  // 1 MiB default
  } else if (arg.rfind("--approx-taps=", 0) == 0) {
    options->tap_memory_budget_bytes =
        std::atoll(arg.c_str() + std::strlen("--approx-taps="));
  } else if (arg.rfind("--threads=", 0) == 0) {
    options->num_threads =
        static_cast<int>(std::atoll(arg.c_str() + std::strlen("--threads=")));
  } else if (arg == "--guard") {
    // Bare --guard opts into the strictest behavior: reject regressed plans
    // AND abort runs whose observed cardinalities contradict the estimates.
    options->guard.mode = obs::GuardMode::kStrict;
  } else if (arg.rfind("--guard=", 0) == 0) {
    const Result<obs::GuardMode> mode =
        obs::ParseGuardMode(arg.substr(std::strlen("--guard=")));
    if (!mode.ok()) return false;
    options->guard.mode = *mode;
  } else {
    return false;
  }
  return true;
}

// ETLOPT_CALIBRATION validation happens eagerly here, not lazily in
// Pipeline: a malformed overlay is a configuration error the operator must
// see (exit 1), not a warning buried in a run's log output.
int CheckCalibrationEnv() {
  const char* path = std::getenv("ETLOPT_CALIBRATION");
  if (path == nullptr || *path == '\0') return 0;
  const Result<obs::CostCalibration> cal = obs::CostCalibration::Load(path);
  if (!cal.ok()) {
    return Fail("ETLOPT_CALIBRATION='" + std::string(path) +
                "': " + cal.status().ToString());
  }
  return 0;
}

int Analyze(const std::string& path, int argc, char** argv) {
  PipelineOptions options;
  ObsSinks obs_sinks;
  double budget = -1.0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParsePipelineFlag(arg, &options) || obs_sinks.ParseFlag(arg)) {
      continue;
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atof(arg.c_str() + std::strlen("--budget="));
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }

  if (const int env_status = CheckCalibrationEnv(); env_status != 0) {
    return env_status;
  }

  Result<Workflow> wf = LoadWorkflow(path);
  if (!wf.ok()) return Fail(wf.status().ToString());

  Pipeline pipeline(options);
  const auto analysis = pipeline.Analyze(*wf);
  if (!analysis.ok()) return Fail(analysis.status().ToString());
  std::printf("%s", FormatAnalysisReport(**analysis).c_str());

  if (budget >= 0.0) {
    std::printf("\n--- budgeted plan (%.0f memory units per block, §6.1) "
                "---\n",
                budget);
    for (const auto& block : (*analysis)->blocks) {
      const BudgetedSelection plan = SelectWithBudget(
          block->problem, block->ctx, block->plan_space, budget);
      std::printf("block %d: first run observes %zu statistics (%.0f "
                  "units); %zu SE(s) deferred; %d total execution(s)\n",
                  block->block.id, plan.first_run.observed.size(),
                  plan.memory_used, plan.deferred.size(),
                  plan.total_executions());
    }
  }
  return obs_sinks.Finish();
}

// Synthetic sources for a designer-exported workflow file: every source
// node gets `rows` rows drawn uniformly from each attribute's catalog
// domain (deterministic in `seed`).
SourceMap SynthesizeSources(const Workflow& wf, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  SourceMap sources;
  for (const WorkflowNode& node : wf.nodes()) {
    if (node.kind != OpKind::kSource) continue;
    Table t{node.source_schema};
    for (int64_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(node.source_schema.size()));
      for (AttrId a : node.source_schema.attrs()) {
        row.push_back(rng.NextInRange(1, wf.catalog().domain_size(a)));
      }
      t.AddRow(std::move(row));
    }
    sources[node.table_name] = std::move(t);
  }
  return sources;
}

int Run(const std::string& target, int argc, char** argv) {
  PipelineOptions options;
  ObsSinks obs_sinks;
  uint64_t seed = 7;
  double scale = 0.05;
  int64_t rows = 1000;
  std::string ledger_path;
  bool explain = false;
  // ETLOPT_PROFILE=1 starts the process with the profiler on; treat that
  // exactly like --profile so the table prints either way.
  bool profile = obs::ProfilerEnabled();
  std::string profile_out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParsePipelineFlag(arg, &options) || obs_sinks.ParseFlag(arg)) {
      continue;
    } else if (arg == "--profile") {
      profile = true;
      obs::SetProfilerEnabled(true);
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile = true;
      profile_out = arg.substr(std::strlen("--profile-out="));
      obs::SetProfilerEnabled(true);
    } else if (arg.rfind("--calibration=", 0) == 0) {
      const std::string cal_path = arg.substr(std::strlen("--calibration="));
      const Result<obs::CostCalibration> cal =
          obs::CostCalibration::Load(cal_path);
      if (!cal.ok()) {
        return Fail("cannot load --calibration: " + cal.status().ToString());
      }
      options.calibration = *cal;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--seed=")));
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + std::strlen("--scale="));
    } else if (arg.rfind("--rows=", 0) == 0) {
      rows = std::atoll(arg.c_str() + std::strlen("--rows="));
    } else if (arg.rfind("--ledger=", 0) == 0) {
      ledger_path = arg.substr(std::strlen("--ledger="));
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      const Status st = fault::FaultInjector::InstallGlobal(
          arg.substr(std::strlen("--fault-spec=")));
      if (!st.ok()) return Fail("invalid --fault-spec: " + st.ToString());
    } else if (arg.rfind("--max-error-rate=", 0) == 0) {
      options.executor.max_error_rate =
          std::atof(arg.c_str() + std::strlen("--max-error-rate="));
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      options.checkpoint_path = arg.substr(std::strlen("--checkpoint="));
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      options.checkpoint_every_rows =
          std::atoll(arg.c_str() + std::strlen("--checkpoint-every="));
      if (options.checkpoint_every_rows <= 0) {
        return Fail("--checkpoint-every requires a positive row count");
      }
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }

  if (const int env_status = CheckCalibrationEnv(); env_status != 0) {
    return env_status;
  }

  // Suite index or workflow file?
  Workflow workflow;
  SourceMap sources;
  char* end = nullptr;
  const long suite_index = std::strtol(target.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && suite_index >= 1 &&
      suite_index <= 30) {
    const WorkloadSpec spec = BuildWorkload(static_cast<int>(suite_index));
    workflow = spec.workflow;
    sources = GenerateSources(spec, seed, scale);
  } else {
    Result<Workflow> wf = LoadWorkflow(target);
    if (!wf.ok()) return Fail(wf.status().ToString());
    workflow = *wf;
    sources = SynthesizeSources(workflow, rows, seed);
  }

  // Ledger history loads BEFORE the cycle: the guard needs prior records to
  // arm runtime estimate monitors and to seed force-observe for SEs whose
  // estimates a previous run's monitors flagged.
  const std::string fingerprint = obs::FingerprintWorkflow(workflow);
  obs::RunLedger ledger(ledger_path);
  std::vector<obs::RunRecord> history;
  std::string run_id = "run-1";
  if (!ledger_path.empty()) {
    const Result<obs::LedgerLoadResult> loaded = ledger.Load();
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    if (loaded->skipped_lines > 0) {
      std::printf("ledger: skipped %d corrupt line(s) in %s\n",
                  loaded->skipped_lines, ledger_path.c_str());
    }
    history = obs::RunLedger::HistoryFor(loaded->records, fingerprint);
    run_id = obs::RunLedger::NextRunId(loaded->records, fingerprint);
  }

  Pipeline pipeline(options);
  const Result<CycleOutcome> cycle = pipeline.RunCycle(
      workflow, sources, history.empty() ? nullptr : &history);
  if (!cycle.ok()) return Fail(cycle.status().ToString());

  std::printf("%s", FormatAnalysisReport(*cycle->analysis).c_str());

  if (cycle->aborted()) {
    const ExecutionResult& exec = cycle->run.exec;
    std::printf(
        "\nRUN ABORTED (%s): %s\n"
        "  completed %d of %d node(s); salvaged partial statistics "
        "(%d tap(s) skipped)\n",
        AbortKindName(exec.abort_kind), exec.abort_reason.c_str(),
        exec.nodes_completed, exec.nodes_total,
        cycle->run.tap_report.salvage_skipped);
    if (!options.checkpoint_path.empty()) {
      std::printf("  checkpoint sidecar left at %s\n",
                  options.checkpoint_path.c_str());
    }
  }

  // Estimator accuracy: with the executed tables in hand, ground truth for
  // every SE is computable — feed the q-error telemetry (and the ledger
  // record's `actual` column).
  const auto& blocks = cycle->analysis->blocks;
  std::vector<CardMap> truths(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockAnalysis& ba = *blocks[b];
    const auto truth = ComputeGroundTruthCards(
        ba.ctx, ba.plan_space.subexpressions(), cycle->run.exec);
    if (truth.ok() && b < cycle->opt.block_cards.size()) {
      obs::AccuracyTracker::Global().RecordCardMap(
          cycle->opt.block_cards[b], *truth);
      truths[b] = *truth;
    }
  }

  std::printf("\nexecuted: %lld rows (%lld bytes) processed\n",
              static_cast<long long>(cycle->run.exec.rows_processed),
              static_cast<long long>(cycle->run.exec.bytes_processed));

  if (profile && cycle->run.exec.profile.empty()) {
    // --profile under ETLOPT_OBS_DISABLED=1: nothing was captured.
    std::printf("\n(profiler captured nothing — observability is off)\n");
  } else if (profile) {
    const obs::RunProfile& prof = cycle->run.exec.profile;
    std::printf("\n%s", obs::FormatProfileTable(prof).c_str());
    if (const double cost_q = obs::PlanCostQError(prof); cost_q > 0.0) {
      std::printf("plan cost q-error (predicted vs measured): %.2f%s\n",
                  cost_q,
                  options.calibration.empty()
                      ? " (uncalibrated defaults; run `calibrate` on the "
                        "ledger and re-run with --calibration=)"
                      : "");
    }
    if (!profile_out.empty()) {
      if (!ObsSinks::WriteFile(profile_out, obs::FoldedStacks(prof))) {
        return Fail("cannot write profile to '" + profile_out + "'");
      }
      std::printf("wrote collapsed-stack profile to %s\n",
                  profile_out.c_str());
    }
  }
  std::printf("plan cost (learned stats): initial %.0f -> optimized %.0f\n",
              cycle->opt.initial_cost, cycle->opt.optimized_cost);

  if (cycle->opt.guard.engaged()) {
    std::printf("\n%s", cycle->opt.guard.ToText().c_str());
  }

  if (options.tap_memory_budget_bytes > 0) {
    const TapReport& taps = cycle->run.tap_report;
    std::printf(
        "approx taps (budget %lld bytes): %d exact + %d sketch tap(s), "
        "%lld tap bytes vs %lld exact-estimate bytes",
        static_cast<long long>(options.tap_memory_budget_bytes),
        taps.exact_taps, taps.sketch_taps,
        static_cast<long long>(taps.tap_bytes),
        static_cast<long long>(taps.exact_bytes_estimate));
    if (taps.tap_bytes > 0 && taps.exact_bytes_estimate > 0) {
      std::printf(" (%.1fx reduction)",
                  static_cast<double>(taps.exact_bytes_estimate) /
                      static_cast<double>(taps.tap_bytes));
    }
    std::printf("\n");
    // Sketch accuracy: re-observe the sketch-backed statistics exactly and
    // feed estimate-vs-truth into the q-error telemetry (shown under
    // --obs-summary, label "sketch").
    if (taps.sketch_taps > 0) {
      for (size_t b = 0; b < cycle->analysis->blocks.size() &&
                         b < cycle->run.block_stats.size();
           ++b) {
        const auto& ba = cycle->analysis->blocks[b];
        const StatStore& approx = cycle->run.block_stats[b];
        std::vector<StatKey> sketch_keys;
        for (const auto& [key, value] : approx.values()) {
          if (value.is_approx()) sketch_keys.push_back(key);
        }
        if (sketch_keys.empty()) continue;
        const Result<StatStore> exact =
            ObserveStatistics(ba->ctx, cycle->run.exec, sketch_keys);
        if (!exact.ok()) continue;
        for (const StatKey& key : sketch_keys) {
          const StatValue* av = approx.Find(key);
          const StatValue* ev = exact->Find(key);
          if (av == nullptr || ev == nullptr) continue;
          // Counts compare directly; histograms compare the row mass they
          // summarize (the I1 identity the rescaling preserves).
          const double est = av->is_count()
                                 ? static_cast<double>(av->count())
                                 : static_cast<double>(av->hist().TotalCount());
          const double act = ev->is_count()
                                 ? static_cast<double>(ev->count())
                                 : static_cast<double>(ev->hist().TotalCount());
          obs::AccuracyTracker::Global().Record("sketch", PopCount(key.rels) - 1,
                                                est, act);
        }
      }
    }
  }

  if (!ledger_path.empty() || explain) {
    const obs::RunRecord record = MakeRunRecord(*cycle, run_id, &truths);

    obs::DriftReport drift;
    if (!history.empty()) {
      drift = obs::DriftDetector().Compare(history, record);
      std::printf("\n%s",
                  drift.ToText(&cycle->analysis->workflow->catalog()).c_str());
    }

    if (explain) {
      // Estimate provenance follows the paper's feedback loop: if prior
      // runs exist, the estimates a fresh optimizer would make come from
      // the *previous* run's stored statistics — so the explain cites that
      // run's id — and are diffed against this run's actual rows.
      const obs::RunRecord* stats_src =
          history.empty() ? &record : &history.back();
      std::vector<obs::ExplainBlockInput> inputs;
      for (size_t b = 0; b < blocks.size(); ++b) {
        if (b >= stats_src->block_stats.size()) break;
        obs::ExplainBlockInput in;
        in.block = static_cast<int>(b);
        in.ctx = &blocks[b]->ctx;
        in.catalog = &blocks[b]->catalog;
        in.ses = blocks[b]->plan_space.subexpressions();
        in.stats = &stats_src->block_stats[b];
        in.source_run_id = stats_src->run_id;
        in.actuals = &truths[b];
        inputs.push_back(std::move(in));
      }
      const Result<obs::PlanExplain> plan_explain = obs::BuildPlanExplain(
          inputs, workflow.name(), fingerprint,
          history.empty() ? nullptr : &drift);
      if (!plan_explain.ok()) return Fail(plan_explain.status().ToString());
      std::printf("\n%s",
                  obs::FormatPlanExplainText(
                      *plan_explain, &cycle->analysis->workflow->catalog())
                      .c_str());
    }

    if (!ledger_path.empty()) {
      const Status st = ledger.Append(record);
      if (!st.ok()) return Fail(st.ToString());
      std::printf("\nledger: appended %s (workflow fingerprint %s) to %s\n",
                  record.run_id.c_str(), fingerprint.c_str(),
                  ledger_path.c_str());
    }
  }
  const int sink_status = obs_sinks.Finish();
  if (sink_status != 0) return sink_status;
  // Exit 4: the plan-regression guard intervened — either the adoption gate
  // kept the designed plan, or a runtime estimate monitor aborted the run
  // (the statistics salvage still happened, same as exit 3). Scripts that
  // treat 3 as "salvaged partial run" can treat 4 as "fell back to the
  // designed plan; inspect the ledger's guard section".
  if (cycle->opt.guard.fell_back ||
      cycle->run.exec.abort_kind == AbortKind::kGuard) {
    return 4;
  }
  // Exit 3 distinguishes "the run aborted but salvage worked" from
  // configuration errors (exit 1): the ledger record and checkpoint are on
  // disk, and the next run can consume them.
  return cycle->aborted() ? 3 : 0;
}

// Offline provenance: re-derives every estimate from ledger history alone,
// without executing anything. With >= 2 runs on record, estimates come from
// the second-to-last run's statistics (what the optimizer knew going into
// the last run) and actuals from the last run.
int Explain(const std::string& target, int argc, char** argv) {
  PipelineOptions options;
  std::string ledger_path;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParsePipelineFlag(arg, &options)) {
      continue;
    } else if (arg.rfind("--ledger=", 0) == 0) {
      ledger_path = arg.substr(std::strlen("--ledger="));
    } else if (arg == "--json") {
      json = true;
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  if (ledger_path.empty()) return Fail("explain requires --ledger=<file>");

  Workflow workflow;
  char* end = nullptr;
  const long suite_index = std::strtol(target.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && suite_index >= 1 &&
      suite_index <= 30) {
    workflow = BuildWorkload(static_cast<int>(suite_index)).workflow;
  } else {
    Result<Workflow> wf = LoadWorkflow(target);
    if (!wf.ok()) return Fail(wf.status().ToString());
    workflow = *wf;
  }

  const Result<obs::LedgerLoadResult> loaded =
      obs::RunLedger(ledger_path).Load();
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const std::string fingerprint = obs::FingerprintWorkflow(workflow);
  const std::vector<obs::RunRecord> history =
      obs::RunLedger::HistoryFor(loaded->records, fingerprint);
  if (history.empty()) {
    return Fail("no ledger history for workflow fingerprint " + fingerprint +
                " in " + ledger_path);
  }

  // Steps 1-4 only: the block contexts and CSS catalogs the estimates are
  // expressed over (no execution).
  Pipeline pipeline(options);
  const auto analysis = pipeline.Analyze(workflow);
  if (!analysis.ok()) return Fail(analysis.status().ToString());
  const auto& blocks = (*analysis)->blocks;

  const obs::RunRecord& actual_rec = history.back();
  const obs::RunRecord& stats_rec =
      history.size() >= 2 ? history[history.size() - 2] : history.back();

  obs::DriftReport drift;
  const bool have_drift = history.size() >= 2;
  if (have_drift) {
    const std::vector<obs::RunRecord> prefix(history.begin(),
                                             history.end() - 1);
    drift = obs::DriftDetector().Compare(prefix, actual_rec);
  }

  std::vector<CardMap> actual_maps(blocks.size());
  for (const obs::RunRecord::SeCard& card : actual_rec.cards) {
    if (card.actual >= 0 && card.block >= 0 &&
        static_cast<size_t>(card.block) < actual_maps.size()) {
      actual_maps[static_cast<size_t>(card.block)][card.se] =
          static_cast<int64_t>(card.actual);
    }
  }

  std::vector<obs::ExplainBlockInput> inputs;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (b >= stats_rec.block_stats.size()) break;
    obs::ExplainBlockInput in;
    in.block = static_cast<int>(b);
    in.ctx = &blocks[b]->ctx;
    in.catalog = &blocks[b]->catalog;
    in.ses = blocks[b]->plan_space.subexpressions();
    in.stats = &stats_rec.block_stats[b];
    in.source_run_id = stats_rec.run_id;
    in.actuals = &actual_maps[b];
    inputs.push_back(std::move(in));
  }
  const Result<obs::PlanExplain> plan_explain =
      obs::BuildPlanExplain(inputs, workflow.name(), fingerprint,
                            have_drift ? &drift : nullptr);
  if (!plan_explain.ok()) return Fail(plan_explain.status().ToString());

  const AttrCatalog* catalog = &workflow.catalog();
  if (json) {
    std::printf("%s\n", obs::PlanExplainJson(*plan_explain, catalog).c_str());
  } else {
    if (have_drift) std::printf("%s\n", drift.ToText(catalog).c_str());
    std::printf("%s", obs::FormatPlanExplainText(*plan_explain, catalog).c_str());
  }
  return 0;
}

// Offline accuracy dashboard: renders cardinality and cost q-error trends,
// worst-calibrated operator classes, replayed drift events, and data-quality
// annotations from the ledger alone (no workflow file or execution needed).
int Report(const std::string& ledger_path, int argc, char** argv) {
  bool json = false;
  obs::RunReportOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--top-k=", 0) == 0) {
      options.top_k = std::atoi(arg.c_str() + std::strlen("--top-k="));
      if (options.top_k <= 0) {
        return Fail("--top-k requires a positive count");
      }
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  const Result<obs::LedgerLoadResult> loaded =
      obs::RunLedger(ledger_path).Load();
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  if (loaded->records.empty()) {
    return Fail("ledger '" + ledger_path + "' holds no readable records");
  }
  if (loaded->skipped_lines > 0) {
    std::fprintf(stderr, "etlopt_advisor: skipped %d corrupt ledger line(s)\n",
                 loaded->skipped_lines);
  }
  if (json) {
    std::printf("%s\n", obs::RunReportJson(loaded->records, options)
                            .Dump()
                            .c_str());
  } else {
    std::printf("%s", obs::FormatRunReportMarkdown(loaded->records, options)
                          .c_str());
  }
  return 0;
}

// Fits a cost-model calibration overlay from the profiled runs on a ledger
// and optionally saves it for --calibration= / ETLOPT_CALIBRATION.
int Calibrate(const std::string& ledger_path, int argc, char** argv) {
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }
  const Result<obs::LedgerLoadResult> loaded =
      obs::RunLedger(ledger_path).Load();
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const obs::CostCalibration cal = obs::FitCalibration(loaded->records);
  if (cal.runs == 0) {
    return Fail("no profiled runs in '" + ledger_path +
                "' — re-run with --profile to record per-operator timings");
  }
  std::printf("%s", cal.ToText().c_str());
  if (!out_path.empty()) {
    const Status st = cal.Save(out_path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote calibration overlay to %s (use --calibration=%s or "
                "ETLOPT_CALIBRATION)\n",
                out_path.c_str(), out_path.c_str());
  }
  return 0;
}

int Dot(const std::string& path) {
  Result<Workflow> wf = LoadWorkflow(path);
  if (!wf.ok()) return Fail(wf.status().ToString());
  std::printf("%s", wf->ToDot().c_str());
  return 0;
}

int ExportSuite(int index, const char* path) {
  if (index < 1 || index > 30) return Fail("suite index must be 1..30");
  const WorkloadSpec spec = BuildWorkload(index);
  if (path != nullptr) {
    const Status st = SaveWorkflow(spec.workflow, path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s (workflow '%s')\n", path, spec.name.c_str());
  } else {
    std::printf("%s", WriteWorkflowTextOrDie(spec.workflow).c_str());
  }
  return 0;
}

int Transforms() {
  std::printf("registered transform functions (usable in workflow files):\n");
  for (const std::string& name : RegisteredTransformNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  etlopt_advisor analyze <workflow-file> [--selector=greedy|ilp]\n"
      "                 [--no-union-division] [--no-fk-rules] [--left-deep]\n"
      "                 [--budget=<units>] [--metrics-out=<file>]\n"
      "                 [--trace-out=<file>] [--obs-summary]\n"
      "  etlopt_advisor run <workflow-file|suite-index 1..30>\n"
      "                 [--seed=<n>] [--scale=<s>] [--rows=<n>]\n"
      "                 [--selector=greedy|ilp] [--metrics-out=<file>]\n"
      "                 [--trace-out=<file>] [--obs-summary]\n"
      "                 [--ledger=<file>] [--explain]\n"
      "                 [--profile] [--profile-out=<file>]\n"
      "                 [--calibration=<file>]\n"
      "                 [--approx-taps[=<bytes>]]  (default 1 MiB budget)\n"
      "                 [--threads=<n>]  (partitioned parallel execution)\n"
      "                 [--fault-spec=<spec>] [--max-error-rate=<f>]\n"
      "                 [--checkpoint=<file>] [--checkpoint-every=<rows>]\n"
      "                 [--guard[=strict|warn|off]]  (plan-regression "
      "guard)\n"
      "  etlopt_advisor explain <workflow-file|suite-index 1..30>\n"
      "                 --ledger=<file> [--json] [--selector=greedy|ilp]\n"
      "  etlopt_advisor report <ledger-file> [--json] [--top-k=<n>]\n"
      "  etlopt_advisor calibrate <ledger-file> [--out=<file>]\n"
      "  etlopt_advisor dot <workflow-file>\n"
      "  etlopt_advisor export-suite <index 1..30> [output-path]\n"
      "  etlopt_advisor transforms\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "analyze" && argc >= 3) {
    return Analyze(argv[2], argc - 3, argv + 3);
  }
  if (command == "run" && argc >= 3) {
    return Run(argv[2], argc - 3, argv + 3);
  }
  if (command == "explain" && argc >= 3) {
    return Explain(argv[2], argc - 3, argv + 3);
  }
  if (command == "report" && argc >= 3) {
    return Report(argv[2], argc - 3, argv + 3);
  }
  if (command == "calibrate" && argc >= 3) {
    return Calibrate(argv[2], argc - 3, argv + 3);
  }
  if (command == "dot" && argc == 3) {
    return Dot(argv[2]);
  }
  if (command == "export-suite" && (argc == 3 || argc == 4)) {
    return ExportSuite(std::atoi(argv[2]), argc == 4 ? argv[3] : nullptr);
  }
  if (command == "transforms") {
    return Transforms();
  }
  Usage();
  return 1;
}
