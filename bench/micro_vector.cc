// Micro-benchmarks for the columnar engine: vectorized kernels (selection
// vectors, column gathers, the counting-sort hash join) against the legacy
// row-at-a-time paths they replaced. Two modes:
//
//   micro_vector                       google-benchmark kernels
//   micro_vector --selfcheck           timed legacy-vs-vectorized comparison
//       [--min-speedup=3]              ... failing (exit 1) if the combined
//                                      filter+join speedup at the largest
//                                      size falls below the floor
//       [--out=BENCH_vector.json]      ... writing the comparison, stamped
//                                      with the build type, to a JSON file
//
// The speedup gate is only meaningful on a Release build; the selfcheck
// stamps `library_build_type` so CI (and readers of the committed JSON) can
// tell a gated Release run from an informational debug one.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/column.h"
#include "engine/executor.h"
#include "etl/workflow_builder.h"
#include "obs/build_info.h"
#include "util/json.h"
#include "util/random.h"
#include "util/timer.h"

namespace etlopt {
namespace {

// A wide key domain keeps the join fanout near one output row per probe
// row: the measured time is selection + hash build + probe, not the (mode-
// independent) cost of materializing a huge join output.
constexpr int64_t kKeyDomain = 1000000;
constexpr int64_t kValDomain = 100;

// A filter+join workload: probe table (k, x), build table (k), predicate
// on x keeping roughly half the rows. Mirrors BM_HashJoin in micro_engine
// but runs the full operator path, so both kernel generations pay their
// real per-operator costs (selection build + gather vs. row append; hash
// table build + probe in either layout).
struct FilterJoinFixture {
  Table left;
  Table right;
  Predicate pred;

  explicit FilterJoinFixture(int64_t rows)
      : left{Schema({0, 1})}, right{Schema({0})}, pred{1, CompareOp::kLe,
                                                       kValDomain / 2} {
    Rng rng(9);
    std::vector<ColumnPtr> lcols{std::make_shared<Column>(),
                                 std::make_shared<Column>()};
    for (int64_t i = 0; i < rows; ++i) {
      lcols[0]->push_back(rng.NextInRange(1, kKeyDomain));
      lcols[1]->push_back(rng.NextInRange(1, kValDomain));
    }
    std::vector<ColumnPtr> rcols{std::make_shared<Column>()};
    for (int64_t i = 0; i < rows / 4; ++i) {
      rcols[0]->push_back(rng.NextInRange(1, kKeyDomain));
    }
    left = Table::FromColumns(Schema({0, 1}), std::move(lcols), rows);
    right =
        Table::FromColumns(Schema({0}), std::move(rcols), rows / 4);
  }

  // One filter+join pass under the current kernel flag; returns the output
  // cardinality so the work cannot be optimized away.
  int64_t Run() const {
    const int col = 1;
    Table filtered{left.schema()};
    if (VectorizedKernels()) {
      SelVector sel;
      sel.reserve(static_cast<size_t>(left.num_rows()));
      BuildSelection(pred, left.column_data(col), left.num_rows(), &sel);
      filtered = Table::Gather(left, sel);
    } else {
      for (int64_t r = 0; r < left.num_rows(); ++r) {
        if (pred.Matches(left.at(r, col))) filtered.AppendRowFrom(left, r);
      }
    }
    return HashJoin(filtered, right, 0, nullptr).num_rows();
  }
};

class ScopedKernels {
 public:
  explicit ScopedKernels(bool on) : saved_(VectorizedKernels()) {
    SetVectorizedKernels(on);
  }
  ~ScopedKernels() { SetVectorizedKernels(saved_); }

 private:
  bool saved_;
};

// ---- google-benchmark kernels ----

void BM_FilterJoin(benchmark::State& state, bool vectorized) {
  const FilterJoinFixture fx(state.range(0));
  ScopedKernels scoped(vectorized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.Run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void BM_FilterJoinLegacy(benchmark::State& state) {
  BM_FilterJoin(state, false);
}
void BM_FilterJoinVectorized(benchmark::State& state) {
  BM_FilterJoin(state, true);
}
BENCHMARK(BM_FilterJoinLegacy)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FilterJoinVectorized)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_BuildSelection(benchmark::State& state) {
  const FilterJoinFixture fx(state.range(0));
  SelVector sel;
  for (auto _ : state) {
    sel.clear();
    BuildSelection(fx.pred, fx.left.column_data(1), fx.left.num_rows(),
                   &sel);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildSelection)->Arg(100000)->Arg(1000000);

void BM_JoinHashTableBuild(benchmark::State& state) {
  const FilterJoinFixture fx(state.range(0));
  for (auto _ : state) {
    const JoinHashTable ht(fx.left.column_data(0), fx.left.num_rows());
    benchmark::DoNotOptimize(ht.num_keys());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinHashTableBuild)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// ---- selfcheck mode ----

double BestOfMillis(int reps, const FilterJoinFixture& fx) {
  double best = 0.0;
  int64_t rows_out = 0;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    const int64_t out = fx.Run();
    const double ms = t.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
    if (i == 0) {
      rows_out = out;
    } else if (out != rows_out) {
      std::fprintf(stderr, "selfcheck: nondeterministic output size\n");
      std::exit(2);
    }
  }
  return best;
}

int RunSelfCheck(double min_speedup, const std::string& out_path) {
  const obs::BuildInfo& build = obs::CurrentBuildInfo();
  Json doc = Json::Object();
  doc.Set("benchmark", Json::Str("bench/micro_vector"));
  doc.Set("library_build_type", Json::Str(build.build_type));
  doc.Set("compiler", Json::Str(build.compiler));
  doc.Set("git_sha", Json::Str(build.git_sha));
  doc.Set("min_speedup_gate", Json::Double(min_speedup));
  Json notes = Json::Object();
  notes.Set("workload",
            Json::Str("filter (x <= 50, ~50% selective) then hash join on a "
                      "1000-value key against a build side of rows/4; "
                      "legacy = row-at-a-time Predicate::Matches + "
                      "AppendRowFrom + unordered_map join, vectorized = "
                      "BuildSelection + Table::Gather + counting-sort "
                      "JoinHashTable. Outputs are checked identical before "
                      "timing; best-of-N wall time per mode."));
  notes.Set("acceptance",
            Json::Str("the >=3x gate applies to the largest size on a "
                      "Release build only (see library_build_type)"));
  doc.Set("notes", std::move(notes));

  Json results = Json::Array();
  double gated_speedup = 0.0;
  for (const int64_t rows : {int64_t{100000}, int64_t{1000000}}) {
    const FilterJoinFixture fx(rows);
    const int reps = rows >= 1000000 ? 3 : 5;
    int64_t legacy_out = 0;
    int64_t vector_out = 0;
    double legacy_ms = 0.0;
    double vector_ms = 0.0;
    {
      ScopedKernels scoped(false);
      legacy_out = fx.Run();  // warm + record output
      legacy_ms = BestOfMillis(reps, fx);
    }
    {
      ScopedKernels scoped(true);
      vector_out = fx.Run();
      vector_ms = BestOfMillis(reps, fx);
    }
    if (legacy_out != vector_out) {
      std::fprintf(stderr,
                   "selfcheck: kernel outputs disagree at %lld rows "
                   "(legacy %lld vs vectorized %lld)\n",
                   static_cast<long long>(rows),
                   static_cast<long long>(legacy_out),
                   static_cast<long long>(vector_out));
      return 2;
    }
    const double speedup = vector_ms > 0.0 ? legacy_ms / vector_ms : 0.0;
    gated_speedup = speedup;  // last (largest) size carries the gate
    Json row = Json::Object();
    row.Set("rows", Json::Int(rows));
    row.Set("join_rows_out", Json::Int(legacy_out));
    row.Set("legacy_ms", Json::Double(legacy_ms));
    row.Set("vectorized_ms", Json::Double(vector_ms));
    row.Set("speedup", Json::Double(speedup));
    results.push_back(std::move(row));
    std::printf("rows=%-8lld legacy=%9.3f ms  vectorized=%9.3f ms  "
                "speedup=%.2fx\n",
                static_cast<long long>(rows), legacy_ms, vector_ms, speedup);
  }
  doc.Set("results", std::move(results));
  const bool pass = min_speedup <= 0.0 || gated_speedup >= min_speedup;
  doc.Set("gate_passed", Json::Bool(pass));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "selfcheck: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << doc.Dump() << "\n";
  std::printf("wrote %s (build type %s)\n", out_path.c_str(),
              build.build_type.c_str());
  if (!pass) {
    std::fprintf(stderr,
                 "selfcheck FAILED: speedup %.2fx at 1e6 rows is below the "
                 "--min-speedup=%.2f floor\n",
                 gated_speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace etlopt

int main(int argc, char** argv) {
  bool selfcheck = false;
  double min_speedup = 0.0;
  std::string out_path = "BENCH_vector.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (selfcheck) {
    return etlopt::RunSelfCheck(min_speedup, out_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
