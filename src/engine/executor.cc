#include "engine/executor.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace etlopt {
namespace {

// Nanoseconds elapsed on `timer`, floored at 0 (defensive against clock
// quirks; LogHistogram buckets are non-negative).
int64_t ElapsedNs(const Timer& timer) {
  const double ns = timer.ElapsedMicros() * 1e3;
  return ns <= 0.0 ? 0 : static_cast<int64_t>(ns);
}

double EnvDoubleOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

// Backoff before retry `attempt` (1-based): exponential with deterministic
// jitter, capped. Returns the delay actually slept, for telemetry.
double BackoffAndSleep(const RetryPolicy& policy, int attempt, Rng& rng) {
  double delay = policy.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) delay *= policy.backoff_multiplier;
  delay = std::min(delay, policy.max_backoff_ms);
  if (policy.jitter_fraction > 0.0) {
    // Uniform in [1 - j, 1 + j): decorrelates retry storms across sources.
    delay *= 1.0 + policy.jitter_fraction * (2.0 * rng.NextDouble() - 1.0);
  }
  if (delay > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(delay * 1000.0)));
  }
  return delay;
}

}  // namespace

std::string OpFaultName(const WorkflowNode& node) {
  std::string name = OpKindName(node.kind);
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name + std::to_string(node.id);
}

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy policy;
  const double attempts =
      EnvDoubleOr("ETLOPT_RETRY_MAX_ATTEMPTS", policy.max_attempts);
  if (attempts >= 1.0) policy.max_attempts = static_cast<int>(attempts);
  policy.initial_backoff_ms =
      EnvDoubleOr("ETLOPT_RETRY_BACKOFF_MS", policy.initial_backoff_ms);
  policy.max_backoff_ms =
      EnvDoubleOr("ETLOPT_RETRY_MAX_BACKOFF_MS", policy.max_backoff_ms);
  return policy;
}

ExecutorOptions ExecutorOptions::FromEnv() {
  ExecutorOptions options;
  options.retry = RetryPolicy::FromEnv();
  const double rate =
      EnvDoubleOr("ETLOPT_MAX_ERROR_RATE", options.max_error_rate);
  if (rate >= 0.0 && rate <= 1.0) options.max_error_rate = rate;
  return options;
}

const char* AbortKindName(AbortKind kind) {
  switch (kind) {
    case AbortKind::kNone:
      return "none";
    case AbortKind::kCrash:
      return "crash";
    case AbortKind::kErrorRate:
      return "error_rate";
    case AbortKind::kSourceFailed:
      return "source_failed";
    case AbortKind::kGuard:
      return "guard";
  }
  return "unknown";
}

Executor::Executor(const Workflow* workflow, ExecutorOptions options)
    : wf_(workflow), options_(std::move(options)) {
  ETLOPT_CHECK(wf_ != nullptr);
}

namespace {

// Output schema of a join: left attrs then right attrs minus the key
// (mirrors Workflow::Finalize). Also yields the right columns to carry.
Schema JoinOutputSchema(const Table& left, const Table& right, AttrId attr,
                        std::vector<int>* right_cols) {
  std::vector<AttrId> out_attrs = left.schema().attrs();
  for (int i = 0; i < right.schema().size(); ++i) {
    const AttrId a = right.schema().attrs()[static_cast<size_t>(i)];
    if (a != attr) {
      out_attrs.push_back(a);
      right_cols->push_back(i);
    }
  }
  return Schema(out_attrs);
}

// Legacy row-at-a-time hash join: unordered_map build, per-match row
// materialization. Kept as the golden-suite / benchmark baseline.
void HashJoinRows(const Table& left, const Table& right, int lkey, int rkey,
                  const std::vector<int>& right_cols,
                  int64_t build_rows_hint, Table* out, Table* rejects,
                  int64_t* build_ns, int64_t* probe_ns) {
  Timer phase;
  std::unordered_map<Value, std::vector<int64_t>> build;
  build.reserve(static_cast<size_t>(
      build_rows_hint > 0 ? build_rows_hint : right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    build[right.at(r, rkey)].push_back(r);
  }
  *build_ns = ElapsedNs(phase);

  phase.Restart();
  const size_t out_width = static_cast<size_t>(out->schema().size());
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const auto it = build.find(left.at(l, lkey));
    if (it == build.end()) {
      if (rejects != nullptr) {
        rejects->AppendRowFrom(left, l);
      }
      continue;
    }
    for (int64_t r : it->second) {
      std::vector<Value> row = left.row(l);
      row.reserve(out_width);
      for (int c : right_cols) {
        row.push_back(right.at(r, c));
      }
      out->AddRow(row);
    }
  }
  *probe_ns = ElapsedNs(phase);
}

// Vectorized hash join: JoinHashTable precomputes 64-bit key hashes over
// the build column in one pass, the probe loop only touches the key
// columns and emits selection vectors, and output columns materialize via
// gathers. Emission order (probe order x build-insertion order per key) is
// identical to the legacy kernel, so outputs are bit-identical.
void HashJoinColumnar(const Table& left, const Table& right, int lkey,
                      int rkey, const std::vector<int>& right_cols,
                      int64_t build_rows_hint, Table* out, Table* rejects,
                      int64_t* build_ns, int64_t* probe_ns) {
  Timer phase;
  const JoinHashTable ht(right.column_data(rkey), right.num_rows(),
                         build_rows_hint);
  *build_ns = ElapsedNs(phase);

  phase.Restart();
  const Value* lkeys = left.column_data(lkey);
  const int64_t n = left.num_rows();
  SelVector lsel;
  SelVector rsel;
  SelVector reject_sel;
  lsel.reserve(static_cast<size_t>(n));
  rsel.reserve(static_cast<size_t>(n));
  for (int64_t l = 0; l < n; ++l) {
    const JoinHashTable::RowRange range = ht.Lookup(lkeys[l]);
    if (range.empty()) {
      if (rejects != nullptr) reject_sel.push_back(l);
      continue;
    }
    for (const int64_t* r = range.begin; r != range.end; ++r) {
      lsel.push_back(l);
      rsel.push_back(*r);
    }
  }

  std::vector<ColumnPtr> out_cols;
  out_cols.reserve(static_cast<size_t>(out->schema().size()));
  for (int c = 0; c < left.schema().size(); ++c) {
    auto col = std::make_shared<Column>();
    GatherColumn(left.column(c), lsel, col.get());
    out_cols.push_back(std::move(col));
  }
  for (int c : right_cols) {
    auto col = std::make_shared<Column>();
    GatherColumn(right.column(c), rsel, col.get());
    out_cols.push_back(std::move(col));
  }
  *out = Table::FromColumns(out->schema(), std::move(out_cols),
                            static_cast<int64_t>(lsel.size()));
  if (rejects != nullptr) {
    *rejects = Table::Gather(left, reject_sel);
  }
  *probe_ns = ElapsedNs(phase);
}

}  // namespace

Table HashJoin(const Table& left, const Table& right, AttrId attr,
               Table* rejects, int64_t build_rows_hint) {
  const int lkey = left.schema().IndexOf(attr);
  const int rkey = right.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");

  std::vector<int> right_cols;
  Table out{JoinOutputSchema(left, right, attr, &right_cols)};

  obs::ScopedSpan span("engine.hash_join");
  if (build_rows_hint > 0) {
    ETLOPT_COUNTER_ADD("etlopt.engine.join.build_hint_used", 1);
  }
  int64_t build_ns = 0;
  int64_t probe_ns = 0;
  if (VectorizedKernels()) {
    HashJoinColumnar(left, right, lkey, rkey, right_cols, build_rows_hint,
                     &out, rejects, &build_ns, &probe_ns);
  } else {
    HashJoinRows(left, right, lkey, rkey, right_cols, build_rows_hint, &out,
                 rejects, &build_ns, &probe_ns);
  }
  ETLOPT_HIST_RECORD("etlopt.engine.join.hash_build_ns", build_ns);
  ETLOPT_HIST_RECORD("etlopt.engine.join.hash_probe_ns", probe_ns);
  if (span.active()) {
    span.Arg("build_rows", right.num_rows());
    span.Arg("probe_rows", left.num_rows());
    span.Arg("rows_out", out.num_rows());
    span.Arg("build_ns", build_ns);
    span.Arg("probe_ns", probe_ns);
  }
  return out;
}

Table SortMergeJoin(const Table& left, const Table& right, AttrId attr,
                    Table* rejects) {
  const int lkey = left.schema().IndexOf(attr);
  const int rkey = right.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");

  std::vector<int> right_cols;
  Table out{JoinOutputSchema(left, right, attr, &right_cols)};
  const size_t out_width = static_cast<size_t>(out.schema().size());

  obs::ScopedSpan span("engine.sort_merge_join");
  Timer phase;
  // Sort row indices of both sides by the key.
  std::vector<int64_t> lidx(static_cast<size_t>(left.num_rows()));
  std::vector<int64_t> ridx(static_cast<size_t>(right.num_rows()));
  std::iota(lidx.begin(), lidx.end(), 0);
  std::iota(ridx.begin(), ridx.end(), 0);
  std::sort(lidx.begin(), lidx.end(), [&](int64_t a, int64_t b) {
    return left.at(a, lkey) < left.at(b, lkey);
  });
  std::sort(ridx.begin(), ridx.end(), [&](int64_t a, int64_t b) {
    return right.at(a, rkey) < right.at(b, rkey);
  });
  ETLOPT_HIST_RECORD("etlopt.engine.join.sort_ns", ElapsedNs(phase));

  phase.Restart();
  size_t li = 0;
  size_t ri = 0;
  while (li < lidx.size()) {
    const Value lv = left.at(lidx[li], lkey);
    while (ri < ridx.size() && right.at(ridx[ri], rkey) < lv) ++ri;
    // Group of right rows with this key.
    size_t rend = ri;
    while (rend < ridx.size() && right.at(ridx[rend], rkey) == lv) ++rend;
    if (ri == rend) {
      if (rejects != nullptr) {
        rejects->AppendRowFrom(left, lidx[li]);
      }
      ++li;
      continue;
    }
    // All left rows with this key join with the right group.
    while (li < lidx.size() && left.at(lidx[li], lkey) == lv) {
      for (size_t r = ri; r < rend; ++r) {
        std::vector<Value> row = left.row(lidx[li]);
        row.reserve(out_width);
        for (int col : right_cols) {
          row.push_back(right.at(ridx[r], col));
        }
        out.AddRow(row);
      }
      ++li;
    }
    ri = rend;
  }
  ETLOPT_HIST_RECORD("etlopt.engine.join.merge_ns", ElapsedNs(phase));
  if (span.active()) {
    span.Arg("left_rows", left.num_rows());
    span.Arg("right_rows", right.num_rows());
    span.Arg("rows_out", out.num_rows());
  }
  return out;
}

void AbortRun(const NodeStepContext& ctx, AbortKind kind, std::string reason,
              const WorkflowNode& node) {
  ExecutionResult& result = *ctx.result;
  result.abort_kind = kind;
  result.abort_reason = std::move(reason);
  result.abort_node = node.id;
  ETLOPT_COUNTER_ADD("etlopt.engine.aborts", 1);
  ETLOPT_LOG(Warning) << "run aborted (" << AbortKindName(kind) << ") at "
                      << OpFaultName(node) << ": " << result.abort_reason;
}

Status ComputeNodeOutput(const NodeStepContext& ctx, const WorkflowNode& node,
                         Table* out_table) {
  ExecutionResult& result = *ctx.result;
  fault::FaultInjector* inj = ctx.inj;
  Table out{ctx.wf->output_schema(node.id)};
  auto input = [&](int i) -> const Table& {
    return result.node_outputs.at(node.inputs[static_cast<size_t>(i)]);
  };
  switch (node.kind) {
    case OpKind::kSource: {
      auto it = ctx.sources->find(node.table_name);
      if (it == ctx.sources->end()) {
        return Status::NotFound("no source table bound for '" +
                                node.table_name + "'");
      }
      if (!(it->second.schema() == node.source_schema)) {
        return Status::InvalidArgument("source '" + node.table_name +
                                       "' schema mismatch");
      }
      if (inj == nullptr ||
          !inj->HasRules(fault::Scope::kSource, node.table_name)) {
        // The seed fast path: no faults configured for this source. Under
        // an installed injector still record the watermark — a crash
        // elsewhere in the workflow salvages per-source progress from it.
        out = it->second;
        if (inj != nullptr) {
          result.source_rows_read[node.table_name] = out.num_rows();
        }
        break;
      }
      // ---- resilient read: retry/backoff, then row-level quarantine ----
      const std::string& name = node.table_name;
      int attempt = 1;
      for (;; ++attempt) {
        const fault::Kind fk = inj->OnSourceOpen(name);
        if (fk == fault::Kind::kNone) break;
        ETLOPT_COUNTER_ADD(fk == fault::Kind::kTimeout
                               ? "etlopt.engine.source.timeouts"
                               : "etlopt.engine.source.io_errors",
                           1);
        if (attempt >= ctx.options->retry.max_attempts) {
          AbortRun(ctx, AbortKind::kSourceFailed,
                   "source '" + name + "' failed " + std::to_string(attempt) +
                       " attempt(s) (" + fault::KindName(fk) + ")",
                   node);
          break;
        }
        ++result.source_retries[name];
        ETLOPT_COUNTER_ADD("etlopt.engine.source.retries", 1);
        if (obs::ObsEnabled()) {
          obs::MetricsRegistry::Global()
              .GetCounter(obs::MetricName("etlopt.engine.source.retries",
                                          {{"source", name}}))
              .Increment();
        }
        const double slept =
            BackoffAndSleep(ctx.options->retry, attempt, *ctx.backoff_rng);
        ETLOPT_LOG(Info) << "source '" << name << "' " << fault::KindName(fk)
                         << ", retrying (attempt " << attempt + 1 << "/"
                         << ctx.options->retry.max_attempts << ") after "
                         << slept << "ms";
      }
      if (result.aborted()) break;

      Table quarantine{node.source_schema};
      const bool row_faults = inj->HasRules(fault::Scope::kSource, name);
      const Table& src = it->second;
      for (int64_t r = 0; r < src.num_rows(); ++r) {
        if (row_faults &&
            inj->OnSourceRow(name) == fault::Kind::kMalformedRow) {
          quarantine.AppendRowFrom(src, r);
          continue;
        }
        out.AppendRowFrom(src, r);
      }
      const int64_t scanned = it->second.num_rows();
      const int64_t bad = quarantine.num_rows();
      result.source_rows_read[name] = scanned;
      if (bad > 0) {
        ETLOPT_COUNTER_ADD("etlopt.engine.source.quarantined", bad);
        if (obs::ObsEnabled()) {
          obs::MetricsRegistry::Global()
              .GetCounter(obs::MetricName("etlopt.engine.source.quarantined",
                                          {{"source", name}}))
              .Add(bad);
        }
        const double error_rate =
            scanned > 0 ? static_cast<double>(bad) / scanned : 0.0;
        result.quarantined[name] = std::move(quarantine);
        if (scanned >= ctx.options->min_rows_for_error_rate &&
            error_rate > ctx.options->max_error_rate) {
          std::ostringstream reason;
          reason << "source '" << name << "' error rate " << error_rate
                 << " exceeds max_error_rate " << ctx.options->max_error_rate
                 << " (" << bad << "/" << scanned << " rows quarantined)";
          AbortRun(ctx, AbortKind::kErrorRate, reason.str(), node);
        }
      }
      break;
    }
    case OpKind::kFilter: {
      const Table& in = input(0);
      const int col = in.schema().IndexOf(node.predicate.attr);
      if (VectorizedKernels()) {
        // Vectorized: one comparison loop over the predicate column builds
        // the selection, every output column is a gather.
        SelVector sel;
        sel.reserve(static_cast<size_t>(in.num_rows()));
        BuildSelection(node.predicate, in.column_data(col), in.num_rows(),
                       &sel);
        out = Table::Gather(in, sel);
      } else {
        for (int64_t r = 0; r < in.num_rows(); ++r) {
          if (node.predicate.Matches(in.at(r, col))) {
            out.AppendRowFrom(in, r);
          }
        }
      }
      result.rows_processed += in.num_rows();
      break;
    }
    case OpKind::kProject: {
      const Table& in = input(0);
      std::vector<int> cols;
      for (AttrId a : node.keep) cols.push_back(in.schema().IndexOf(a));
      if (VectorizedKernels()) {
        // Copy-free: the kept columns are shared by pointer; downstream
        // mutation clones them on write.
        std::vector<ColumnPtr> kept;
        kept.reserve(cols.size());
        for (int c : cols) kept.push_back(in.shared_column(c));
        out = Table::FromColumns(out.schema(), std::move(kept),
                                 in.num_rows());
      } else {
        for (int64_t r = 0; r < in.num_rows(); ++r) {
          std::vector<Value> projected;
          projected.reserve(cols.size());
          for (int c : cols) projected.push_back(in.at(r, c));
          out.AddRow(projected);
        }
      }
      result.rows_processed += in.num_rows();
      break;
    }
    case OpKind::kTransform: {
      const Table& in = input(0);
      const TransformSpec& t = node.transform;
      const int col = in.schema().IndexOf(t.input_attr);
      if (t.is_aggregate) {
        // Black-box aggregate UDF: emits one row per distinct transformed
        // key value (a deterministic blocking reduction). Output order
        // depends on input order, so this stays a single row-order loop.
        std::unordered_map<Value, bool> seen;
        for (int64_t r = 0; r < in.num_rows(); ++r) {
          const Value v = t.fn(in.at(r, col));
          if (seen.emplace(v, true).second) {
            std::vector<Value> row = in.row(r);
            row[static_cast<size_t>(col)] = v;
            out.AddRow(row);
          }
        }
      } else if (VectorizedKernels()) {
        // Batched UDF: untouched columns are shared, the transformed (or
        // derived) column is one fn-application loop over the input array.
        auto mapped = std::make_shared<Column>();
        MapColumn(t.fn, in.column_data(col), in.num_rows(), mapped.get());
        std::vector<ColumnPtr> out_cols;
        out_cols.reserve(static_cast<size_t>(out.schema().size()));
        const bool in_place = t.output_attr == t.input_attr;
        for (int c = 0; c < in.schema().size(); ++c) {
          out_cols.push_back(in_place && c == col ? mapped
                                                  : in.shared_column(c));
        }
        if (!in_place) out_cols.push_back(std::move(mapped));
        out = Table::FromColumns(out.schema(), std::move(out_cols),
                                 in.num_rows());
      } else if (t.output_attr == t.input_attr) {
        for (int64_t r = 0; r < in.num_rows(); ++r) {
          std::vector<Value> row = in.row(r);
          row[static_cast<size_t>(col)] = t.fn(row[static_cast<size_t>(col)]);
          out.AddRow(row);
        }
      } else {
        for (int64_t r = 0; r < in.num_rows(); ++r) {
          std::vector<Value> row = in.row(r);
          row.push_back(t.fn(row[static_cast<size_t>(col)]));
          out.AddRow(row);
        }
      }
      result.rows_processed += in.num_rows();
      break;
    }
    case OpKind::kAggregate: {
      const Table& in = input(0);
      std::vector<int> cols;
      for (AttrId a : node.aggregate.group_by) {
        cols.push_back(in.schema().IndexOf(a));
      }
      std::vector<const Value*> data;
      data.reserve(cols.size());
      for (int c : cols) data.push_back(in.column_data(c));
      // Output order follows the group map's iteration order, which is a
      // function of the insertion sequence: single implementation so the
      // order is one thing across engine modes.
      std::unordered_map<std::vector<Value>, int64_t, ValueVecHash> groups;
      for (int64_t r = 0; r < in.num_rows(); ++r) {
        std::vector<Value> key;
        key.reserve(cols.size());
        for (const Value* d : data) key.push_back(d[r]);
        ++groups[std::move(key)];
      }
      const bool with_count = node.aggregate.count_attr != kInvalidAttr;
      for (auto& [key, count] : groups) {
        std::vector<Value> row = key;
        if (with_count) row.push_back(count);
        out.AddRow(std::move(row));
      }
      result.rows_processed += in.num_rows();
      break;
    }
    case OpKind::kJoin: {
      const Table& left = input(0);
      const Table& right = input(1);
      // Estimator-predicted build cardinality, when the plan carries one.
      int64_t build_hint = -1;
      if (!ctx.options->build_rows_hints.empty()) {
        const auto hint_it = ctx.options->build_rows_hints.find(node.id);
        if (hint_it != ctx.options->build_rows_hints.end()) {
          build_hint = hint_it->second;
        }
      }
      Table rejects{left.schema()};
      out = node.join.algorithm == JoinAlgorithm::kSortMerge
                ? SortMergeJoin(left, right, node.join.attr, &rejects)
                : HashJoin(left, right, node.join.attr, &rejects, build_hint);
      result.rows_processed += left.num_rows() + right.num_rows();
      result.join_rejects[node.id] = std::move(rejects);
      // Right-side rejects: right rows whose key never occurs on the left.
      {
        const int lkey = left.schema().IndexOf(node.join.attr);
        const int rkey = right.schema().IndexOf(node.join.attr);
        Table rrejects{right.schema()};
        if (VectorizedKernels()) {
          const JoinHashTable left_keys(left.column_data(lkey),
                                        left.num_rows());
          const Value* rkeys = right.column_data(rkey);
          SelVector sel;
          for (int64_t r = 0; r < right.num_rows(); ++r) {
            if (!left_keys.Contains(rkeys[r])) sel.push_back(r);
          }
          rrejects = Table::Gather(right, sel);
        } else {
          std::unordered_map<Value, bool> left_keys;
          for (int64_t l = 0; l < left.num_rows(); ++l) {
            left_keys.emplace(left.at(l, lkey), true);
          }
          for (int64_t r = 0; r < right.num_rows(); ++r) {
            if (left_keys.find(right.at(r, rkey)) == left_keys.end()) {
              rrejects.AppendRowFrom(right, r);
            }
          }
        }
        result.join_rejects_right[node.id] = std::move(rrejects);
      }
      break;
    }
    case OpKind::kMaterialize:
    case OpKind::kSink: {
      out = input(0);
      result.rows_processed += out.num_rows();
      result.targets[node.target_name] = out;
      break;
    }
  }
  *out_table = std::move(out);
  return Status::OK();
}

void FinishNodeStep(const NodeStepContext& ctx, const WorkflowNode& node,
                    Table&& out, int64_t self_ns) {
  ExecutionResult& result = *ctx.result;
  int64_t rows_in = 0;
  for (NodeId in : node.inputs) {
    rows_in += result.node_outputs.at(in).num_rows();
  }
  // Crash points fire after the operator ran but before its output is
  // published — the salvage surface is exactly the completed prefix.
  if (!result.aborted() && ctx.inj != nullptr) {
    const int64_t weight = rows_in > 0 ? rows_in : out.num_rows();
    if (ctx.inj->OnOperator(OpFaultName(node), weight) ==
        fault::Kind::kCrash) {
      result.join_rejects.erase(node.id);
      result.join_rejects_right.erase(node.id);
      result.targets.erase(node.target_name);
      AbortRun(ctx, AbortKind::kCrash,
               "injected crash fault at " + OpFaultName(node), node);
    }
  }
  if (result.aborted()) return;
  // Plan-regression monitors: one branch on an empty map when the guard is
  // disabled (benched by BM_GuardMonitorDisabled). Partitioned nodes reach
  // here with their gathered output, so the observed cardinality — and the
  // verdict — is identical across worker counts.
  if (!ctx.options->monitors.empty()) {
    const auto mon_it = ctx.options->monitors.find(node.id);
    if (mon_it != ctx.options->monitors.end() &&
        mon_it->second.expected_rows >= 0.0) {
      const double expected = std::max(mon_it->second.expected_rows, 1.0);
      const double actual = std::max<double>(out.num_rows(), 1.0);
      const double qerror = std::max(expected / actual, actual / expected);
      if (qerror > ctx.options->monitor_qerror_bound) {
        MonitorViolation violation;
        violation.node = node.id;
        violation.block = mon_it->second.block;
        violation.se = mon_it->second.se;
        violation.expected = mon_it->second.expected_rows;
        violation.actual = static_cast<double>(out.num_rows());
        violation.qerror = qerror;
        result.monitor_violations.push_back(violation);
        ETLOPT_COUNTER_ADD("etlopt.guard.monitor_violations", 1);
        ETLOPT_LOG(Warning)
            << "plan monitor at " << OpFaultName(node) << ": expected "
            << violation.expected << " rows, observed " << violation.actual
            << " (q-error " << qerror << " > "
            << ctx.options->monitor_qerror_bound << ")";
        if (ctx.options->monitor_abort) {
          result.join_rejects.erase(node.id);
          result.join_rejects_right.erase(node.id);
          result.targets.erase(node.target_name);
          AbortRun(ctx, AbortKind::kGuard,
                   "estimate monitor q-error " + std::to_string(qerror) +
                       " at " + OpFaultName(node),
                   node);
          return;
        }
      }
    }
  }
  // Bytes entering the operator: mirrors rows_processed (sources read no
  // upstream node output, so they contribute none).
  int64_t op_bytes = 0;
  for (NodeId in : node.inputs) {
    const Table& t = result.node_outputs.at(in);
    op_bytes += t.num_rows() * 8 * t.schema().size();
  }
  result.bytes_processed += op_bytes;
  const int64_t rows_out = out.num_rows();
  if (ctx.profiling) {
    obs::OpProfile op;
    op.node = static_cast<int>(node.id);
    op.op = OpKindName(node.kind);
    op.label = OpFaultName(node);
    op.inputs.reserve(node.inputs.size());
    for (NodeId in : node.inputs) op.inputs.push_back(static_cast<int>(in));
    op.self_ns = self_ns;
    op.rows_in = rows_in;
    op.rows_out = rows_out;
    op.bytes = op_bytes;
    result.profile.ops.push_back(std::move(op));
  }
  if (obs::ObsEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry
        .GetCounter(obs::MetricName(
            "etlopt.engine.rows_out",
            {{"wf", ctx.wf->name()},
             {"node", std::to_string(node.id)},
             {"op", OpKindName(node.kind)}}))
        .Add(rows_out);
    ETLOPT_COUNTER_ADD("etlopt.engine.ops_executed", 1);
    ETLOPT_COUNTER_ADD("etlopt.engine.rows_in", rows_in);
    ETLOPT_COUNTER_ADD("etlopt.engine.rows_out", rows_out);
    if (node.kind == OpKind::kJoin) {
      ETLOPT_COUNTER_ADD("etlopt.engine.join.rejects_left",
                         result.join_rejects.at(node.id).num_rows());
      ETLOPT_COUNTER_ADD("etlopt.engine.join.rejects_right",
                         result.join_rejects_right.at(node.id).num_rows());
    }
  }
  result.node_outputs[node.id] = std::move(out);
  ++result.nodes_completed;
}

Status ExecuteNodeStep(const NodeStepContext& ctx, const WorkflowNode& node) {
  obs::ScopedSpan op_span(OpKindName(node.kind));
  int64_t rows_in = 0;
  for (NodeId in : node.inputs) {
    rows_in += ctx.result->node_outputs.at(in).num_rows();
  }
  Table out;
  int64_t op_start_ns = 0;
  if (ctx.profiling) op_start_ns = obs::ProfileNowNs();
  ETLOPT_RETURN_IF_ERROR(ComputeNodeOutput(ctx, node, &out));
  // Self time stops here: fault bookkeeping, byte accounting, and metric
  // emission in FinishNodeStep are harness cost, not operator cost.
  int64_t self_ns = 0;
  if (ctx.profiling) self_ns = obs::ProfileNowNs() - op_start_ns;
  if (ctx.result->aborted()) return Status::OK();  // stopped inside the read
  const int64_t rows_out = out.num_rows();
  if (op_span.active()) {
    op_span.Arg("node", static_cast<int64_t>(node.id));
    op_span.Arg("rows_in", rows_in);
    op_span.Arg("rows_out", rows_out);
  }
  FinishNodeStep(ctx, node, std::move(out), self_ns);
  return Status::OK();
}

std::unordered_map<NodeId, int64_t> BuildSideCardHints(
    const Workflow& wf,
    const std::unordered_map<NodeId, PlanMonitor>& monitors) {
  std::unordered_map<NodeId, int64_t> hints;
  if (monitors.empty()) return hints;
  for (const WorkflowNode& node : wf.nodes()) {
    if (node.kind != OpKind::kJoin || node.inputs.size() < 2) continue;
    const auto it = monitors.find(node.inputs[1]);
    if (it == monitors.end() || it->second.expected_rows < 0.0) continue;
    hints[node.id] =
        static_cast<int64_t>(it->second.expected_rows + 0.5);
  }
  return hints;
}

Result<ExecutionResult> Executor::Execute(const SourceMap& sources) const {
  ExecutionResult result;
  obs::ScopedSpan exec_span("engine.execute");
  exec_span.Arg("workflow", wf_->name());
  exec_span.Arg("nodes", static_cast<int64_t>(wf_->nodes().size()));
  result.nodes_total = static_cast<int>(wf_->nodes().size());
  // One pointer load when no spec is installed — the entire robustness layer
  // costs the un-faulted hot path a single null check per operator.
  fault::FaultInjector* inj = fault::FaultInjector::Global();
  // Deterministic backoff jitter (and nothing else) comes from this stream.
  Rng backoff_rng(inj != nullptr ? inj->seed() : 0x5eedULL);

  NodeStepContext ctx;
  ctx.wf = wf_;
  ctx.sources = &sources;
  ctx.options = &options_;
  ctx.inj = inj;
  // Hoisted once per run: the disabled profiler costs each operator a branch
  // on this cached bool, nothing more (benched in bench/micro_obs.cc).
  ctx.profiling = obs::ProfilerEnabled();
  ctx.backoff_rng = &backoff_rng;
  ctx.result = &result;

  for (const WorkflowNode& node : wf_->nodes()) {
    ETLOPT_RETURN_IF_ERROR(ExecuteNodeStep(ctx, node));
    if (result.aborted()) break;
  }
  if (result.aborted() && exec_span.active()) {
    exec_span.Arg("abort", AbortKindName(result.abort_kind));
    exec_span.Arg("nodes_completed",
                  static_cast<int64_t>(result.nodes_completed));
  }
  ETLOPT_COUNTER_ADD("etlopt.engine.executions", 1);
  ETLOPT_COUNTER_ADD("etlopt.engine.rows_processed", result.rows_processed);
  ETLOPT_COUNTER_ADD("etlopt.engine.bytes_processed", result.bytes_processed);
  return result;
}

}  // namespace etlopt
