#ifndef ETLOPT_OBS_ACCURACY_H_
#define ETLOPT_OBS_ACCURACY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bitmask.h"

namespace etlopt {
namespace obs {

// Q-error of a cardinality estimate: max(est/actual, actual/est) with both
// sides clamped to >= 1 row (the convention of the cardinality-estimation
// benchmarking literature; exact estimates give 1.0).
double QError(double estimated, double actual);

struct QErrorSummary {
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Accumulates estimator-accuracy samples whenever ground-truth cardinalities
// are available (ComputeGroundTruthCards), keyed by operator type and join
// depth. Sample volume is one per sub-expression per run, so raw samples are
// kept for exact quantiles. Thread-safe.
class AccuracyTracker {
 public:
  static AccuracyTracker& Global();

  // op_type: a short label like "join" or "chain"; join_depth: number of
  // joins in the sub-expression (0 for singletons).
  void Record(const std::string& op_type, int join_depth, double estimated,
              double actual);

  // Convenience for SE cardinalities: derives op_type/depth from the mask.
  void RecordSe(RelMask se, double estimated, double actual);

  // Records q-errors for every SE present in both maps.
  void RecordCardMap(const std::unordered_map<RelMask, int64_t>& estimated,
                     const std::unordered_map<RelMask, int64_t>& truth);

  bool empty() const;
  int64_t total_samples() const;

  // Per-(op_type, depth) summaries, sorted by key.
  std::vector<std::pair<std::pair<std::string, int>, QErrorSummary>>
  Summaries() const;

  // Fixed-width q-error quantile table (the --obs-summary rendering).
  std::string FormatTable() const;

  void Reset();

 private:
  AccuracyTracker() = default;

  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, std::vector<double>> samples_;
};

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_ACCURACY_H_
