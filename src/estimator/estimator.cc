#include "estimator/estimator.h"

#include <deque>

#include "opt/closure.h"

namespace etlopt {

Estimator::Estimator(const BlockContext* ctx, const CssCatalog* catalog)
    : ctx_(ctx), catalog_(catalog) {
  ETLOPT_CHECK(ctx_ != nullptr && catalog_ != nullptr);
}

Status Estimator::DeriveAll(const StatStore& observed) {
  derived_ = observed;
  provenance_.clear();
  for (const auto& [key, value] : observed.values()) {
    (void)value;
    provenance_[key] = StatProvenance{};
  }

  // Closure with derivation choices gives an acyclic evaluation order:
  // each stat's chosen CSS only references stats that became computable
  // earlier.
  const int n = catalog_->num_stats();
  std::vector<char> obs_flags(static_cast<size_t>(n), 0);
  for (int s = 0; s < n; ++s) {
    if (observed.Contains(catalog_->stat(s))) {
      obs_flags[static_cast<size_t>(s)] = 1;
    }
  }
  std::vector<int> derivation;
  const std::vector<char> computable =
      ComputeClosure(*catalog_, obs_flags, &derivation);

  // Evaluate in dependency order via a worklist: a stat is ready when all
  // inputs of its chosen CSS have values.
  std::deque<int> pending;
  for (int s = 0; s < n; ++s) {
    if (computable[static_cast<size_t>(s)] &&
        !obs_flags[static_cast<size_t>(s)]) {
      pending.push_back(s);
    }
  }
  size_t stall = 0;
  while (!pending.empty()) {
    if (stall > pending.size()) {
      return Status::Internal("cyclic derivation during estimation");
    }
    const int s = pending.front();
    pending.pop_front();
    const int css = derivation[static_cast<size_t>(s)];
    ETLOPT_CHECK(css >= 0);
    const CssEntry& entry = catalog_->entry(css);
    bool ready = true;
    for (const StatKey& in : entry.inputs) {
      if (!derived_.Contains(in)) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      pending.push_back(s);
      ++stall;
      continue;
    }
    stall = 0;
    ETLOPT_ASSIGN_OR_RETURN(StatValue value, Evaluate(entry));
    // Uncertainty propagation: a derivation is at best as precise as its
    // inputs. Summing input relative errors is the first-order bound for
    // the products/ratios the CSS rules compose (conservative for sums).
    double rel_error = 0.0;
    for (const StatKey& in : entry.inputs) {
      const StatValue* iv = derived_.Find(in);
      if (iv != nullptr && iv->is_approx()) rel_error += iv->rel_error();
    }
    if (rel_error > 0.0) value.SetApprox(rel_error);
    derived_.Set(entry.target, std::move(value));
    StatProvenance prov;
    prov.observed = false;
    prov.rule = entry.rule;
    prov.inputs = entry.inputs;
    provenance_[entry.target] = std::move(prov);
  }
  return Status::OK();
}

std::vector<StatKey> Estimator::ObservedLeaves(const StatKey& key) const {
  std::vector<StatKey> leaves;
  std::unordered_map<StatKey, char, StatKeyHash> visited;
  std::vector<StatKey> stack{key};
  while (!stack.empty()) {
    const StatKey k = stack.back();
    stack.pop_back();
    if (visited[k]++) continue;
    const auto it = provenance_.find(k);
    if (it == provenance_.end()) continue;  // value never materialized
    if (it->second.observed) {
      leaves.push_back(k);
      continue;
    }
    // Push in reverse so inputs are visited in CSS order.
    for (auto in = it->second.inputs.rbegin(); in != it->second.inputs.rend();
         ++in) {
      stack.push_back(*in);
    }
  }
  return leaves;
}

Result<StatValue> Estimator::Evaluate(const CssEntry& entry) const {
  auto count_in = [&](int i) -> Result<int64_t> {
    return derived_.GetCount(entry.inputs[static_cast<size_t>(i)]);
  };
  auto hist_in = [&](int i) -> Result<Histogram> {
    return derived_.GetHist(entry.inputs[static_cast<size_t>(i)]);
  };

  switch (entry.rule) {
    case RuleId::kS1: {
      const WorkflowNode& op = ctx_->workflow().node(entry.op_node);
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Count(h.CountMatching(op.predicate));
    }
    case RuleId::kS2: {
      const WorkflowNode& op = ctx_->workflow().node(entry.op_node);
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(
          h.FilterThenMarginalize(op.predicate, entry.target.attrs));
    }
    case RuleId::kCopyCard:
    case RuleId::kG1:
    case RuleId::kFk: {
      ETLOPT_ASSIGN_OR_RETURN(int64_t c, count_in(0));
      return StatValue::Count(c);
    }
    case RuleId::kCopyHist: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(std::move(h));
    }
    case RuleId::kG2: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(
          h.CollapseToDistinct().Marginalize(entry.target.attrs));
    }
    case RuleId::kJ1: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram a, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram b, hist_in(1));
      return StatValue::Count(Histogram::DotProduct(a, b));
    }
    case RuleId::kJ2: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram x, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram y, hist_in(1));
      Histogram combined = Histogram::MultiplyBy(x, y);
      if (entry.marginalize) {
        combined = combined.Marginalize(entry.target.attrs);
      }
      return StatValue::Hist(std::move(combined));
    }
    case RuleId::kJ4: {
      // |e| = |H_{e∪k}^J / H_k^J| + |reject(L wrt k) ⋈ R|   (Eq. 1-3)
      ETLOPT_ASSIGN_OR_RETURN(Histogram hek, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram hk, hist_in(1));
      ETLOPT_ASSIGN_OR_RETURN(int64_t reject_card, count_in(2));
      const Histogram matched = Histogram::DivideBy(hek, hk);
      return StatValue::Count(matched.TotalCount() + reject_card);
    }
    case RuleId::kJ5: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram hek, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram hk, hist_in(1));
      ETLOPT_ASSIGN_OR_RETURN(Histogram hreject, hist_in(2));
      Histogram matched =
          Histogram::DivideBy(hek, hk).Marginalize(entry.target.attrs);
      matched.AddAll(hreject);
      return StatValue::Hist(std::move(matched));
    }
    case RuleId::kI1: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Count(h.TotalCount());
    }
    case RuleId::kI2: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(h.Marginalize(entry.target.attrs));
    }
    case RuleId::kD1: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Count(h.NumBuckets());
    }
  }
  return Status::Internal("unhandled rule");
}

Result<int64_t> Estimator::Cardinality(RelMask se) const {
  return derived_.GetCount(StatKey::Card(se));
}

Result<int64_t> Estimator::Count(const StatKey& key) const {
  return derived_.GetCount(key);
}

Result<Histogram> Estimator::Hist(const StatKey& key) const {
  return derived_.GetHist(key);
}

Result<std::unordered_map<RelMask, int64_t>> Estimator::AllCardinalities(
    const std::vector<RelMask>& subexpressions) const {
  std::unordered_map<RelMask, int64_t> cards;
  for (RelMask se : subexpressions) {
    ETLOPT_ASSIGN_OR_RETURN(int64_t card, Cardinality(se));
    cards[se] = card;
  }
  return cards;
}

}  // namespace etlopt
