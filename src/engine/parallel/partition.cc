#include "engine/parallel/partition.h"

#include <algorithm>

#include "util/logging.h"

namespace etlopt {
namespace parallel {

uint64_t PartitionHashValue(Value v) {
  // splitmix64 finalizer: full-avalanche, constant-time, and stable across
  // platforms — unlike std::hash, whose result is implementation-defined.
  // Shared with the columnar join kernels (engine/column.h), so partition
  // placement and hash-table slotting agree on the same mix.
  return Hash64(v);
}

int HashPartitionIndex(Value v, int num_partitions) {
  ETLOPT_CHECK(num_partitions > 0);
  return static_cast<int>(PartitionHashValue(v) %
                          static_cast<uint64_t>(num_partitions));
}

namespace {

TablePartitions MakeEmpty(const Table& table, int num_partitions) {
  TablePartitions out;
  out.parts.reserve(static_cast<size_t>(num_partitions));
  out.row_index.resize(static_cast<size_t>(num_partitions));
  for (int p = 0; p < num_partitions; ++p) {
    out.parts.emplace_back(table.schema());
  }
  return out;
}

}  // namespace

TablePartitions HashPartition(const Table& table, AttrId attr,
                              int num_partitions) {
  ETLOPT_CHECK(num_partitions > 0);
  const int col = table.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(col >= 0, "partition attribute missing from schema");
  TablePartitions out = MakeEmpty(table, num_partitions);
  const Value* keys = table.column_data(col);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    const int p = HashPartitionIndex(keys[r], num_partitions);
    out.parts[static_cast<size_t>(p)].AppendRowFrom(table, r);
    out.row_index[static_cast<size_t>(p)].push_back(r);
  }
  return out;
}

TablePartitions RangePartition(const Table& table, AttrId attr,
                               const std::vector<Value>& upper_bounds) {
  ETLOPT_CHECK(!upper_bounds.empty());
  const int col = table.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(col >= 0, "partition attribute missing from schema");
  const int num_partitions = static_cast<int>(upper_bounds.size()) + 1;
  TablePartitions out = MakeEmpty(table, num_partitions);
  const Value* keys = table.column_data(col);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    const Value v = keys[r];
    int p = num_partitions - 1;
    for (size_t b = 0; b < upper_bounds.size(); ++b) {
      if (v <= upper_bounds[b]) {
        p = static_cast<int>(b);
        break;
      }
    }
    out.parts[static_cast<size_t>(p)].AppendRowFrom(table, r);
    out.row_index[static_cast<size_t>(p)].push_back(r);
  }
  return out;
}

double PartitionSkew(const TablePartitions& partitions) {
  if (partitions.parts.empty()) return 0.0;
  int64_t max_rows = 0;
  int64_t total = 0;
  for (const Table& t : partitions.parts) {
    max_rows = std::max(max_rows, t.num_rows());
    total += t.num_rows();
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / partitions.num_partitions();
  return static_cast<double>(max_rows) / mean;
}

}  // namespace parallel
}  // namespace etlopt
