#ifndef ETLOPT_UTIL_TIMER_H_
#define ETLOPT_UTIL_TIMER_H_

#include <chrono>

namespace etlopt {

// Wall-clock stopwatch used by the experiment harnesses (Figure 10 timings).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace etlopt

#endif  // ETLOPT_UTIL_TIMER_H_
