# Empty compiler generated dependencies file for etlopt_advisor.
# This may be replaced when dependencies are built.
