#ifndef ETLOPT_APPROX_DHISTOGRAM_H_
#define ETLOPT_APPROX_DHISTOGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/table.h"
#include "etl/predicate.h"

namespace etlopt {

// Per-attribute bucketization configuration for approximate statistics
// collection (Section 8 extension): attribute values v map to bucket
// ⌊(v-1)/width⌋; width 1 keeps statistics exact.
class ApproxConfig {
 public:
  explicit ApproxConfig(const AttrCatalog* catalog, int64_t default_width = 1)
      : catalog_(catalog), default_width_(default_width) {
    ETLOPT_CHECK(catalog != nullptr && default_width >= 1);
  }

  void SetWidth(AttrId attr, int64_t width) {
    ETLOPT_CHECK(width >= 1);
    widths_[attr] = width;
  }

  int64_t WidthFor(AttrId attr) const {
    auto it = widths_.find(attr);
    return it == widths_.end() ? default_width_ : it->second;
  }

  int64_t DomainFor(AttrId attr) const { return catalog_->domain_size(attr); }

  // Buckets a histogram on `attrs` would need: Π ceil(|a| / width(a)) —
  // the §5.4 memory model under bucketization.
  int64_t MemoryUnits(AttrMask attrs) const;

  const AttrCatalog& catalog() const { return *catalog_; }

 private:
  const AttrCatalog* catalog_;
  int64_t default_width_;
  std::unordered_map<AttrId, int64_t> widths_;
};

// A (multi-attribute) frequency histogram over bucketized values with
// double-valued counts: the approximate analog of Histogram. The algebra
// applies the uniform-frequency-within-bucket correction wherever two
// distributions meet through a join attribute, so width-1 configurations
// reproduce the exact results bit-for-bit (tested).
class DHistogram {
 public:
  DHistogram() = default;
  DHistogram(AttrMask attrs, const ApproxConfig& config);

  static DHistogram FromTable(const Table& table, AttrMask attrs,
                              const ApproxConfig& config);

  AttrMask attr_mask() const { return attr_mask_; }
  const std::vector<AttrId>& attrs() const { return attrs_; }

  void AddValue(const std::vector<Value>& raw_values, double count = 1.0);

  double TotalCount() const { return total_; }
  int64_t NumBuckets() const { return static_cast<int64_t>(buckets_.size()); }
  double Get(const std::vector<Value>& bucket_key) const;

  // J1: Σ_b fa(b)·fb(b) / |values in b| over the shared (single) attribute.
  static double JoinCardinality(const DHistogram& a, const DHistogram& b);

  // J2/J3: scales each bucket of `a` by b's density on the projection onto
  // b's attributes (count / values-in-bucket of the join attribute). `b`
  // must be a single-attribute histogram on an attribute of `a`.
  static DHistogram MultiplyThrough(const DHistogram& a, const DHistogram& b);

  // I2.
  DHistogram Marginalize(AttrMask keep) const;

  // S1: pro-rata count of values matching the predicate.
  double CountMatching(const Predicate& pred) const;

  // S2: pro-rata scale per bucket, then marginalize to `keep`.
  DHistogram FilterThenMarginalize(const Predicate& pred, AttrMask keep) const;

  // G2 support: each bucket's distinct combinations, capped by the bucket's
  // value-combination capacity (min(count, capacity) — the uniform-fill
  // approximation).
  DHistogram CollapseToDistinct() const;

 private:
  int64_t ValuesInBucket(int attr_pos, Value bucket) const;
  // Integer values in the bucket of `attr_pos` at `bucket` that satisfy the
  // predicate (predicate attr must be attrs_[attr_pos]).
  int64_t SatisfyingInBucket(int attr_pos, Value bucket,
                             const Predicate& pred) const;

  std::vector<AttrId> attrs_;
  AttrMask attr_mask_ = 0;
  std::vector<int64_t> widths_;   // aligned with attrs_
  std::vector<int64_t> domains_;  // aligned with attrs_
  std::unordered_map<std::vector<Value>, double, ValueVecHash> buckets_;
  double total_ = 0.0;
};

}  // namespace etlopt

#endif  // ETLOPT_APPROX_DHISTOGRAM_H_
