#include <gtest/gtest.h>

#include <algorithm>

#include "planspace/observability.h"
#include "planspace/plan_space.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(JoinGraphTest, ConnectivityAndSubsets) {
  JoinGraph g(4);  // star: 0-1, 0-2, 0-3
  g.AddEdge({0, 1, 0, -1, kInvalidNode});
  g.AddEdge({0, 2, 1, -1, kInvalidNode});
  g.AddEdge({0, 3, 2, -1, kInvalidNode});
  EXPECT_TRUE(g.IsForest());
  EXPECT_TRUE(g.IsConnected(0b0011));
  EXPECT_FALSE(g.IsConnected(0b0110));  // dims only: cross product
  EXPECT_TRUE(g.IsConnected(0b1111));
  // Star with n=4: connected subsets = 4 singletons + subsets containing
  // the hub: C(3,1)+C(3,2)+C(3,3) = 7 -> total 11.
  EXPECT_EQ(g.ConnectedSubsets().size(), 11u);
}

TEST(JoinGraphTest, CrossingEdge) {
  JoinGraph g(3);  // chain 0-1-2
  g.AddEdge({0, 1, 5, -1, kInvalidNode});
  g.AddEdge({1, 2, 6, -1, kInvalidNode});
  EXPECT_EQ(g.CrossingEdge(0b001, 0b010), 0);
  EXPECT_EQ(g.CrossingEdge(0b011, 0b100), 1);
  EXPECT_EQ(g.CrossingEdge(0b001, 0b100), -1);  // no direct edge
}

TEST(JoinGraphTest, DetectsCycle) {
  JoinGraph g(3);
  g.AddEdge({0, 1, 0, -1, kInvalidNode});
  g.AddEdge({1, 2, 1, -1, kInvalidNode});
  g.AddEdge({2, 0, 2, -1, kInvalidNode});
  EXPECT_FALSE(g.IsForest());
}

TEST(BlockTest, PaperExampleIsOneBlock) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].num_rels(), 3);
  EXPECT_EQ(blocks[0].joins.size(), 2u);
}

TEST(BlockTest, RejectLinkSealsJoin) {
  // (A ⋈rej B) ⋈ C: the reject join is pinned -> two blocks.
  WorkflowBuilder b("rej");
  const AttrId k1 = b.DeclareAttr("k1", 10);
  const AttrId k2 = b.DeclareAttr("k2", 10);
  const NodeId a = b.Source("A", {k1, k2});
  const NodeId bb = b.Source("B", {k1});
  const NodeId c = b.Source("C", {k2});
  JoinOptions reject;
  reject.reject_link = true;
  const NodeId j1 = b.Join(a, bb, k1, reject);
  const NodeId j2 = b.Join(j1, c, k2);
  b.Sink(j2, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].joins.size(), 1u);
  EXPECT_TRUE(blocks[0].joins[0].reject_link);
  EXPECT_EQ(blocks[1].joins.size(), 1u);
}

TEST(BlockTest, MaterializeSeals) {
  WorkflowBuilder b("mat");
  const AttrId k1 = b.DeclareAttr("k1", 10);
  const AttrId k2 = b.DeclareAttr("k2", 10);
  const NodeId a = b.Source("A", {k1, k2});
  const NodeId bb = b.Source("B", {k1});
  const NodeId c = b.Source("C", {k2});
  const NodeId j1 = b.Join(a, bb, k1);
  const NodeId m = b.Materialize(j1, "staging");
  const NodeId j2 = b.Join(m, c, k2);
  b.Sink(j2, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 2u);
}

TEST(BlockTest, ChainOpsStayInInputChains) {
  WorkflowBuilder b("chain");
  const AttrId k = b.DeclareAttr("k", 10);
  const AttrId x = b.DeclareAttr("x", 10);
  const NodeId a = b.Source("A", {k, x});
  const NodeId f = b.Filter(a, {x, CompareOp::kLt, 5});
  const NodeId t = b.Transform(f, x, [](Value v) { return v + 1; });
  const NodeId d = b.Source("D", {k});
  const NodeId j = b.Join(t, d, k);
  b.Sink(j, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].inputs.size(), 2u);
  // Input 0: base A with chain [filter, transform].
  EXPECT_EQ(blocks[0].inputs[0].base, a);
  EXPECT_EQ(blocks[0].inputs[0].chain.size(), 2u);
  EXPECT_EQ(blocks[0].inputs[0].top(), t);
  EXPECT_TRUE(blocks[0].inputs[1].chain.empty());
}

TEST(BlockTest, JoinFeedingUnarySeals) {
  // join -> filter -> join: the first join is sealed; the filter becomes a
  // chain op of the second block.
  WorkflowBuilder b("jf");
  const AttrId k1 = b.DeclareAttr("k1", 10);
  const AttrId k2 = b.DeclareAttr("k2", 10);
  const NodeId a = b.Source("A", {k1, k2});
  const NodeId bb = b.Source("B", {k1});
  const NodeId c = b.Source("C", {k2});
  const NodeId j1 = b.Join(a, bb, k1);
  const NodeId f = b.Filter(j1, {k2, CompareOp::kLt, 5});
  const NodeId j2 = b.Join(f, c, k2);
  b.Sink(j2, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 2u);
  // Second block's first input chains the filter over the sealed join.
  const Block& second = blocks[1];
  bool found = false;
  for (const BlockInput& in : second.inputs) {
    if (in.base == j1) {
      EXPECT_EQ(in.chain, std::vector<NodeId>{f});
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BlockTest, JoinlessChainFormsBlock) {
  WorkflowBuilder b("lin");
  const AttrId x = b.DeclareAttr("x", 10);
  const NodeId a = b.Source("A", {x});
  const NodeId f = b.Filter(a, {x, CompareOp::kLt, 5});
  b.Sink(f, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].num_rels(), 1);
  EXPECT_TRUE(blocks[0].joins.empty());
  EXPECT_EQ(blocks[0].inputs[0].chain.size(), 1u);
}

TEST(PlanSpaceTest, PaperExampleSes) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  // E = {O, P, C, OP, OC, OPC} — PC is a cross product and excluded
  // (Section 4.3).
  EXPECT_EQ(ps.num_ses(), 6);
  // OPC has two plans: (OP,C) and (OC,P).
  EXPECT_EQ(ps.plans(ctx.full_mask()).size(), 2u);
}

TEST(PlanSpaceTest, LeftDeepOnlyRestricts) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  PlanSpaceOptions options;
  options.left_deep_only = true;
  const PlanSpace ps = PlanSpace::Build(ctx, options).value();
  for (RelMask se : ps.subexpressions()) {
    for (const PlanAlt& plan : ps.plans(se)) {
      EXPECT_TRUE(IsSingleton(plan.right));
    }
  }
}

TEST(ObservabilityTest, OnPathAndChainStages) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  // Initial plan: (O ⋈ P) ⋈ C with rels O=0, P=1, C=2.
  EXPECT_TRUE(IsObservable(StatKey::Card(0b001), ctx));
  EXPECT_TRUE(IsObservable(StatKey::Card(0b011), ctx));   // O⋈P on-path
  EXPECT_FALSE(IsObservable(StatKey::Card(0b101), ctx));  // O⋈C not on-path
  EXPECT_TRUE(IsObservable(StatKey::Card(0b111), ctx));
  // Histograms need the attribute in scope.
  const AttrMask prod_bit = AttrMask{1} << ex.prod_id;
  const AttrMask cust_bit = AttrMask{1} << ex.cust_id;
  EXPECT_TRUE(IsObservable(StatKey::Hist(0b001, prod_bit | cust_bit), ctx));
  EXPECT_FALSE(IsObservable(StatKey::Hist(0b010, cust_bit), ctx));
}

TEST(ObservabilityTest, RejectStats) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  // O's next designed partner is P (rel 1): reject(O wrt P) ⋈ C observable.
  EXPECT_TRUE(IsObservable(StatKey::RejectJoinCard(0b001, 1, 0b100), ctx));
  // reject(O wrt C) is not: O's next partner is P, not C.
  EXPECT_FALSE(IsObservable(StatKey::RejectJoinCard(0b001, 2, 0b010), ctx));
}

TEST(BlockContextTest, SchemasAndPartners) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  const AttrMask prod_bit = AttrMask{1} << ex.prod_id;
  const AttrMask cust_bit = AttrMask{1} << ex.cust_id;
  EXPECT_EQ(ctx.SchemaMask(0b001), prod_bit | cust_bit);
  EXPECT_EQ(ctx.SchemaMask(0b010), prod_bit);
  EXPECT_EQ(ctx.SchemaMask(0b111), prod_bit | cust_bit);
  AttrId attr = kInvalidAttr;
  EXPECT_EQ(ctx.InitialNextPartner(0b001, &attr), 0b010u);
  EXPECT_EQ(attr, ex.prod_id);
  EXPECT_EQ(ctx.InitialNextPartner(0b011, &attr), 0b100u);
  EXPECT_EQ(attr, ex.cust_id);
  // P's first designed join is against O (both sides are singletons).
  EXPECT_EQ(ctx.InitialNextPartner(0b010), 0b001u);
  // The full SE has no next partner.
  EXPECT_EQ(ctx.InitialNextPartner(0b111), 0u);
}

}  // namespace
}  // namespace etlopt
