#ifndef ETLOPT_OBS_BUILD_INFO_H_
#define ETLOPT_OBS_BUILD_INFO_H_

#include <string>

namespace etlopt {
namespace obs {

// Identity of the binary that produced a run: which source revision, which
// compiler, which build type, and whether sanitizers were baked in. Ledger
// records carry this so cross-run comparisons (drift, calibration, the
// advisor's accuracy report) can flag apples-to-oranges pairs — a Debug+asan
// run profiles an order of magnitude slower than a Release run of the same
// workflow, and its timings must not silently calibrate a Release cost model.
struct BuildInfo {
  std::string git_sha;     // short revision; "unknown" outside a checkout
  std::string compiler;    // id + version ("GNU 13.2.0")
  std::string build_type;  // CMAKE_BUILD_TYPE ("Release", "Debug", ...)
  std::string sanitizers;  // "address,undefined" or "" for a plain build

  // One-line rendering for the --obs-summary header.
  std::string Summary() const;

  // True when the fields that change performance characteristics differ
  // (git sha is identity, not performance — two shas of the same build type
  // are comparable; a Debug vs Release pair is not).
  bool ComparableWith(const BuildInfo& other) const {
    return compiler == other.compiler && build_type == other.build_type &&
           sanitizers == other.sanitizers;
  }
};

// The build info of this binary, assembled from compile definitions the
// build system injects (ETLOPT_GIT_SHA, ETLOPT_BUILD_TYPE,
// ETLOPT_COMPILER_ID) and compiler feature macros for the sanitizer flags.
const BuildInfo& CurrentBuildInfo();

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_BUILD_INFO_H_
