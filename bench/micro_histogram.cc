// Micro-benchmarks for the histogram algebra (the estimator's hot path).

#include <benchmark/benchmark.h>

#include "stats/histogram.h"
#include "util/random.h"

namespace etlopt {
namespace {

Histogram RandomHist(int64_t buckets, int64_t domain, uint64_t seed,
                     AttrMask attrs = 0b01) {
  Rng rng(seed);
  Histogram h(attrs);
  const int arity = PopCount(attrs);
  for (int64_t i = 0; i < buckets; ++i) {
    std::vector<Value> key;
    for (int a = 0; a < arity; ++a) key.push_back(rng.NextInRange(1, domain));
    h.Add(key, rng.NextInRange(1, 50));
  }
  return h;
}

void BM_HistogramBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  std::vector<Value> values(static_cast<size_t>(n));
  for (auto& v : values) v = rng.NextInRange(1, 10000);
  for (auto _ : state) {
    Histogram h(0b01);
    for (Value v : values) h.Add1(v);
    benchmark::DoNotOptimize(h.TotalCount());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HistogramBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DotProduct(benchmark::State& state) {
  const Histogram a = RandomHist(state.range(0), 100000, 1);
  const Histogram b = RandomHist(state.range(0), 100000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Histogram::DotProduct(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DotProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MultiplyBy(benchmark::State& state) {
  const Histogram ab = RandomHist(state.range(0), 3000, 3, 0b11);
  const Histogram b = RandomHist(3000, 3000, 4, 0b01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Histogram::MultiplyBy(ab, b).TotalCount());
  }
}
BENCHMARK(BM_MultiplyBy)->Arg(1000)->Arg(10000);

void BM_Marginalize(benchmark::State& state) {
  const Histogram ab = RandomHist(state.range(0), 3000, 5, 0b111);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ab.Marginalize(0b001).TotalCount());
  }
}
BENCHMARK(BM_Marginalize)->Arg(1000)->Arg(10000);

void BM_UnionDivision(benchmark::State& state) {
  // Multiply then divide — the Eq. 2-3 round trip.
  const Histogram t_prime = RandomHist(state.range(0), 500, 6);
  Histogram t3(0b01);
  for (Value v = 1; v <= 500; ++v) t3.Add1(v, (v % 7) + 1);
  const Histogram joined = Histogram::MultiplyBy(t_prime, t3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Histogram::DivideBy(joined, t3).TotalCount());
  }
}
BENCHMARK(BM_UnionDivision)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
