#ifndef ETLOPT_ETL_WORKFLOW_H_
#define ETLOPT_ETL_WORKFLOW_H_

#include <string>
#include <vector>

#include "etl/attr_catalog.h"
#include "etl/operator.h"
#include "util/status.h"

namespace etlopt {

// A validated ETL workflow: a DAG of operators with node ids in topological
// order, a workflow-global attribute catalog, and a per-node output schema.
// Construct via WorkflowBuilder.
class Workflow {
 public:
  const std::string& name() const { return name_; }
  const AttrCatalog& catalog() const { return catalog_; }
  AttrCatalog& mutable_catalog() { return catalog_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const WorkflowNode& node(NodeId id) const {
    ETLOPT_CHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<size_t>(id)];
  }
  const std::vector<WorkflowNode>& nodes() const { return nodes_; }

  // Output schema of a node (what flows on its outgoing edge).
  const Schema& output_schema(NodeId id) const {
    ETLOPT_CHECK(id >= 0 && id < num_nodes());
    return schemas_[static_cast<size_t>(id)];
  }

  // Nodes that consume node `id` as an input (in id order).
  const std::vector<NodeId>& consumers(NodeId id) const {
    ETLOPT_CHECK(id >= 0 && id < num_nodes());
    return consumers_[static_cast<size_t>(id)];
  }

  // The unique sink node.
  NodeId sink() const { return sink_; }

  // Structural + schema validation; run by the builder, re-runnable after
  // manual edits (e.g. by the plan rewriter).
  Status Validate() const;

  // Human-readable multi-line rendering of the DAG.
  std::string ToString() const;

  // Graphviz DOT rendering (for documentation and debugging).
  std::string ToDot() const;

 private:
  friend class WorkflowBuilder;
  friend class PlanRewriter;

  // Computes per-node output schemas and the consumer index; returns an
  // error when payloads are inconsistent with input schemas.
  Status Finalize();

  std::string name_;
  AttrCatalog catalog_;
  std::vector<WorkflowNode> nodes_;
  std::vector<Schema> schemas_;
  std::vector<std::vector<NodeId>> consumers_;
  NodeId sink_ = kInvalidNode;
};

}  // namespace etlopt

#endif  // ETLOPT_ETL_WORKFLOW_H_
