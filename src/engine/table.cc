#include "engine/table.h"

#include <sstream>

namespace etlopt {

Histogram Table::BuildHistogram(AttrMask attrs) const {
  ETLOPT_CHECK_MSG(schema_.ContainsAll(attrs),
                   "histogram attributes must be in the table schema");
  Histogram hist(attrs);
  std::vector<int> cols;
  for (int idx : MaskToIndices(attrs)) {
    cols.push_back(schema_.IndexOf(static_cast<AttrId>(idx)));
  }
  std::vector<Value> key(cols.size());
  for (const auto& row : rows_) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = row[static_cast<size_t>(cols[i])];
    }
    hist.Add(key, 1);
  }
  return hist;
}

int64_t Table::CountDistinct(AttrMask attrs) const {
  return BuildHistogram(attrs).NumBuckets();
}

std::string Table::ToString(const AttrCatalog& catalog, int64_t limit) const {
  std::ostringstream out;
  out << schema_.ToString(catalog) << " [" << num_rows() << " rows]\n";
  int64_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= limit) {
      out << "  ...\n";
      break;
    }
    out << "  (";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ", ";
      out << row[i];
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace etlopt
