#include "css/generator.h"

#include <deque>
#include <unordered_set>

namespace etlopt {

CssCatalog GenerateCss(const BlockContext& ctx, const PlanSpace& plan_space,
                       const CssGenOptions& options) {
  RuleEngine rules(&ctx, &plan_space, options);
  CssCatalog catalog;

  std::deque<StatKey> tobecomputed;
  std::unordered_set<StatKey, StatKeyHash> enqueued;
  auto enqueue = [&](const StatKey& key) {
    if (enqueued.insert(key).second) {
      catalog.AddStat(key);
      tobecomputed.push_back(key);
    }
  };

  // Lines 4-5: the cardinality of every SE must be computable.
  for (RelMask se : plan_space.subexpressions()) {
    enqueue(StatKey::Card(se));
  }

  // Lines 6-16: expand with the non-identity rules.
  std::vector<CssEntry> generated;
  while (!tobecomputed.empty()) {
    const StatKey target = tobecomputed.front();
    tobecomputed.pop_front();

    generated.clear();
    rules.Generate(target, &generated);
    for (CssEntry& entry : generated) {
      for (const StatKey& input : entry.inputs) {
        enqueue(input);
      }
      catalog.AddCss(std::move(entry));
    }
  }

  // Lines 17-21: identity rules, restricted to existing statistics.
  rules.ApplyIdentityRules(&catalog);
  return catalog;
}

}  // namespace etlopt
