# Empty dependencies file for source_statistics.
# This may be replaced when dependencies are built.
