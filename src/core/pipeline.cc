#include "core/pipeline.h"

namespace etlopt {

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Analysis>> Pipeline::Analyze(
    const Workflow& workflow,
    const std::vector<CardMap>* size_feedback) const {
  auto analysis = std::make_unique<Analysis>();
  analysis->workflow = std::make_unique<Workflow>(workflow);

  const std::vector<Block> blocks = PartitionBlocks(*analysis->workflow);
  int block_index = 0;
  for (const Block& block : blocks) {
    auto ba = std::make_unique<BlockAnalysis>();
    ba->block = block;
    ETLOPT_ASSIGN_OR_RETURN(
        ba->ctx, BlockContext::Build(analysis->workflow.get(), block));
    ETLOPT_ASSIGN_OR_RETURN(ba->plan_space,
                            PlanSpace::Build(ba->ctx, options_.plan_space));
    ba->catalog = GenerateCss(ba->ctx, ba->plan_space, options_.css);

    CostModel cost_model(&analysis->workflow->catalog(), options_.cost);
    if (size_feedback != nullptr &&
        block_index < static_cast<int>(size_feedback->size())) {
      for (const auto& [se, rows] :
           (*size_feedback)[static_cast<size_t>(block_index)]) {
        cost_model.SetSeSize(se, rows);
      }
    }
    SelectionOptions sel_options;
    sel_options.free_source_stats = options_.free_source_stats;
    ba->problem = BuildSelectionProblem(ba->ctx, ba->plan_space, ba->catalog,
                                        cost_model, sel_options);
    ba->problem.catalog = &ba->catalog;  // ensure self-reference is stable

    switch (options_.selector) {
      case SelectorKind::kGreedy:
        ba->selection = SelectGreedy(ba->problem);
        break;
      case SelectorKind::kIlp:
        ba->selection = SelectIlp(ba->problem, options_.ilp);
        break;
    }
    if (!ba->selection.feasible) {
      return Status::Internal("statistics selection infeasible for block " +
                              std::to_string(block.id));
    }
    analysis->blocks.push_back(std::move(ba));
    ++block_index;
  }
  return analysis;
}

Result<RunOutcome> Pipeline::RunAndObserve(const Analysis& analysis,
                                           const SourceMap& sources) const {
  RunOutcome outcome;
  Executor executor(analysis.workflow.get());
  ETLOPT_ASSIGN_OR_RETURN(outcome.exec, executor.Execute(sources));

  for (const auto& ba : analysis.blocks) {
    const std::vector<StatKey> keys =
        ba->selection.ObservedKeys(ba->catalog);
    ETLOPT_ASSIGN_OR_RETURN(StatStore store,
                            ObserveStatistics(ba->ctx, outcome.exec, keys));
    outcome.block_stats.push_back(std::move(store));
  }
  return outcome;
}

Result<OptimizeOutcome> Pipeline::Optimize(const Analysis& analysis,
                                           const RunOutcome& run) const {
  OptimizeOutcome outcome;
  std::vector<OptimizedPlan> plans(analysis.blocks.size());
  std::vector<PlanRewriter::BlockPlan> rewrites;

  for (size_t i = 0; i < analysis.blocks.size(); ++i) {
    const BlockAnalysis& ba = *analysis.blocks[i];
    Estimator estimator(&ba.ctx, &ba.catalog);
    ETLOPT_RETURN_IF_ERROR(estimator.DeriveAll(run.block_stats[i]));
    ETLOPT_ASSIGN_OR_RETURN(
        CardMap cards,
        estimator.AllCardinalities(ba.plan_space.subexpressions()));
    ETLOPT_ASSIGN_OR_RETURN(plans[i],
                            OptimizeJoins(ba.ctx, ba.plan_space, cards,
                                          options_.optimizer_cost));
    outcome.initial_cost += plans[i].initial_cost;
    outcome.optimized_cost += plans[i].cost;
    outcome.block_cards.push_back(std::move(cards));
    if (ba.block.joins.size() >= 2) {
      rewrites.push_back(
          PlanRewriter::BlockPlan{&ba.block, &plans[i]});
    }
  }
  ETLOPT_ASSIGN_OR_RETURN(outcome.optimized,
                          PlanRewriter::Apply(*analysis.workflow, rewrites));
  return outcome;
}

Result<CycleOutcome> Pipeline::RunCycle(const Workflow& workflow,
                                        const SourceMap& sources) const {
  CycleOutcome cycle;
  ETLOPT_ASSIGN_OR_RETURN(cycle.analysis, Analyze(workflow));
  ETLOPT_ASSIGN_OR_RETURN(cycle.run, RunAndObserve(*cycle.analysis, sources));
  ETLOPT_ASSIGN_OR_RETURN(cycle.opt, Optimize(*cycle.analysis, cycle.run));
  return cycle;
}

}  // namespace etlopt
