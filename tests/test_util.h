#ifndef ETLOPT_TESTS_TEST_UTIL_H_
#define ETLOPT_TESTS_TEST_UTIL_H_

#include <vector>

#include "engine/executor.h"
#include "etl/workflow_builder.h"
#include "util/random.h"

namespace etlopt {
namespace testing_util {

// A 3-relation star fixture mirroring the paper's running example
// (Figure 1): Orders(prod_id, cust_id) ⋈ Product(prod_id) ⋈
// Customer(cust_id), designed as (Orders ⋈ Product) ⋈ Customer.
struct PaperExample {
  Workflow workflow;
  AttrId prod_id = kInvalidAttr;
  AttrId cust_id = kInvalidAttr;
  SourceMap sources;
};

inline PaperExample MakePaperExample(uint64_t seed = 7, int64_t orders = 400,
                                     int64_t products = 40,
                                     int64_t customers = 25) {
  PaperExample ex;
  WorkflowBuilder b("orders_load");
  ex.prod_id = b.DeclareAttr("prod_id", 50);
  ex.cust_id = b.DeclareAttr("cust_id", 30);
  const NodeId o = b.Source("Orders", {ex.prod_id, ex.cust_id});
  const NodeId p = b.Source("Product", {ex.prod_id});
  const NodeId c = b.Source("Customer", {ex.cust_id});
  const NodeId op = b.Join(o, p, ex.prod_id);
  const NodeId opc = b.Join(op, c, ex.cust_id);
  b.Sink(opc, "warehouse.orders");
  Result<Workflow> wf = std::move(b).Build();
  ETLOPT_CHECK_MSG(wf.ok(), wf.status().ToString());
  ex.workflow = std::move(wf).value();

  Rng rng(seed);
  Table orders_t{Schema({ex.prod_id, ex.cust_id})};
  for (int64_t i = 0; i < orders; ++i) {
    orders_t.AddRow({rng.NextInRange(1, 50), rng.NextInRange(1, 30)});
  }
  Table product_t{Schema({ex.prod_id})};
  for (int64_t i = 0; i < products; ++i) {
    product_t.AddRow({rng.NextInRange(1, 50)});
  }
  Table customer_t{Schema({ex.cust_id})};
  for (int64_t i = 0; i < customers; ++i) {
    customer_t.AddRow({rng.NextInRange(1, 30)});
  }
  ex.sources["Orders"] = std::move(orders_t);
  ex.sources["Product"] = std::move(product_t);
  ex.sources["Customer"] = std::move(customer_t);
  return ex;
}

// Builds a random table over the given attrs with values uniform in
// [1, domain(attr)].
inline Table RandomTable(const AttrCatalog& catalog,
                         const std::vector<AttrId>& attrs, int64_t rows,
                         Rng& rng) {
  Table t{Schema(attrs)};
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.reserve(attrs.size());
    for (AttrId a : attrs) {
      row.push_back(rng.NextInRange(1, catalog.domain_size(a)));
    }
    t.AddRow(std::move(row));
  }
  return t;
}

}  // namespace testing_util
}  // namespace etlopt

#endif  // ETLOPT_TESTS_TEST_UTIL_H_
