#include <gtest/gtest.h>

#include <limits>

#include "etl/workflow_builder.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(AttrCatalogTest, RegisterAndLookup) {
  AttrCatalog catalog;
  const AttrId a = catalog.Register("cust_id", 1000);
  const AttrId b = catalog.Register("prod_id", 50);
  EXPECT_EQ(catalog.Lookup("cust_id"), a);
  EXPECT_EQ(catalog.Lookup("prod_id"), b);
  EXPECT_EQ(catalog.Lookup("nope"), kInvalidAttr);
  EXPECT_EQ(catalog.domain_size(a), 1000);
  EXPECT_EQ(catalog.name(b), "prod_id");
}

TEST(AttrCatalogTest, DomainProductSaturates) {
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 1LL << 40);
  const AttrId b = catalog.Register("b", 1LL << 40);
  const AttrMask mask = (AttrMask{1} << a) | (AttrMask{1} << b);
  EXPECT_EQ(catalog.DomainProduct(mask),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(catalog.DomainProduct(AttrMask{1} << a), 1LL << 40);
  EXPECT_EQ(catalog.DomainProduct(0), 1);
}

TEST(SchemaTest, IndexAndMask) {
  Schema s({2, 0, 5});
  EXPECT_EQ(s.IndexOf(2), 0);
  EXPECT_EQ(s.IndexOf(0), 1);
  EXPECT_EQ(s.IndexOf(5), 2);
  EXPECT_EQ(s.IndexOf(1), -1);
  EXPECT_EQ(s.mask(), (AttrMask{1} << 2) | 1 | (AttrMask{1} << 5));
  EXPECT_TRUE(s.ContainsAll(0b100101));
  EXPECT_FALSE(s.ContainsAll(0b10));
}

TEST(PredicateTest, AllOperators) {
  const Predicate eq{0, CompareOp::kEq, 5};
  EXPECT_TRUE(eq.Matches(5));
  EXPECT_FALSE(eq.Matches(4));
  EXPECT_TRUE(Predicate({0, CompareOp::kNe, 5}).Matches(4));
  EXPECT_TRUE(Predicate({0, CompareOp::kLt, 5}).Matches(4));
  EXPECT_FALSE(Predicate({0, CompareOp::kLt, 5}).Matches(5));
  EXPECT_TRUE(Predicate({0, CompareOp::kLe, 5}).Matches(5));
  EXPECT_TRUE(Predicate({0, CompareOp::kGt, 5}).Matches(6));
  EXPECT_TRUE(Predicate({0, CompareOp::kGe, 5}).Matches(5));
}

TEST(WorkflowBuilderTest, PaperExampleBuilds) {
  auto ex = testing_util::MakePaperExample();
  const Workflow& wf = ex.workflow;
  EXPECT_EQ(wf.num_nodes(), 6);
  EXPECT_EQ(wf.node(wf.sink()).kind, OpKind::kSink);
  // Schema of the full join: prod_id, cust_id (deduplicated keys).
  const Schema& out = wf.output_schema(wf.sink());
  EXPECT_EQ(out.size(), 2);
  EXPECT_TRUE(out.Contains(ex.prod_id));
  EXPECT_TRUE(out.Contains(ex.cust_id));
}

TEST(WorkflowBuilderTest, SchemaPropagation) {
  WorkflowBuilder b("t");
  const AttrId a = b.DeclareAttr("a", 10);
  const AttrId c = b.DeclareAttr("c", 10);
  const AttrId d = b.DeclareAttr("d", 10);
  const NodeId src = b.Source("S", {a, c});
  const NodeId f = b.Filter(src, {a, CompareOp::kLt, 5});
  const NodeId pr = b.Project(f, {a});
  const NodeId t = b.DeriveAttr(pr, a, d, [](Value v) { return v + 1; });
  const NodeId g = b.Aggregate(t, {d});
  b.Sink(g, "out");
  Result<Workflow> wf = std::move(b).Build();
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  EXPECT_EQ(wf->output_schema(f).size(), 2);
  EXPECT_EQ(wf->output_schema(pr).size(), 1);
  EXPECT_EQ(wf->output_schema(t).size(), 2);  // a + derived d
  EXPECT_EQ(wf->output_schema(g).size(), 1);  // group key d
}

TEST(WorkflowBuilderTest, RejectsMissingFilterAttr) {
  WorkflowBuilder b("t");
  const AttrId a = b.DeclareAttr("a", 10);
  const AttrId z = b.DeclareAttr("z", 10);
  const NodeId src = b.Source("S", {a});
  b.Sink(b.Filter(src, {z, CompareOp::kEq, 1}), "out");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(WorkflowBuilderTest, RejectsJoinWithoutSharedKey) {
  WorkflowBuilder b("t");
  const AttrId a = b.DeclareAttr("a", 10);
  const AttrId c = b.DeclareAttr("c", 10);
  const NodeId s1 = b.Source("S1", {a});
  const NodeId s2 = b.Source("S2", {c});
  b.Sink(b.Join(s1, s2, a), "out");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(WorkflowBuilderTest, RejectsOverlappingNonKeyAttrs) {
  WorkflowBuilder b("t");
  const AttrId k = b.DeclareAttr("k", 10);
  const AttrId x = b.DeclareAttr("x", 10);
  const NodeId s1 = b.Source("S1", {k, x});
  const NodeId s2 = b.Source("S2", {k, x});
  b.Sink(b.Join(s1, s2, k), "out");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(WorkflowBuilderTest, RejectsMultipleSinks) {
  WorkflowBuilder b("t");
  const AttrId a = b.DeclareAttr("a", 10);
  const NodeId src = b.Source("S", {a});
  b.Sink(src, "out1");
  b.Sink(src, "out2");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(WorkflowBuilderTest, RejectsNoSink) {
  WorkflowBuilder b("t");
  const AttrId a = b.DeclareAttr("a", 10);
  b.Source("S", {a});
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(WorkflowTest, ToStringAndDotRender) {
  auto ex = testing_util::MakePaperExample();
  const std::string text = ex.workflow.ToString();
  EXPECT_NE(text.find("Orders"), std::string::npos);
  EXPECT_NE(text.find("Join"), std::string::npos);
  const std::string dot = ex.workflow.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(WorkflowTest, ValidateIsIdempotent) {
  auto ex = testing_util::MakePaperExample();
  EXPECT_TRUE(ex.workflow.Validate().ok());
  EXPECT_TRUE(ex.workflow.Validate().ok());
}

}  // namespace
}  // namespace etlopt
