// Micro-benchmarks for the run ledger: what an append costs as the ledger
// grows (the crash-safe rewrite is O(file size)), what a load costs, and
// the per-run overhead of building a ledger record from a full cycle with
// the observability kill-switch on vs off. Results are recorded in
// BENCH_obs.json at the repo root.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/instrumentation.h"
#include "etl/workflow_builder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "stats/stat_store.h"
#include "util/random.h"

namespace etlopt {
namespace {

constexpr char kLedgerPath[] = "micro_ledger.bench.jsonl";

// The paper's 3-relation star (Orders ⋈ Product ⋈ Customer) with modest
// data, enough for a full representative cycle per iteration.
struct StarFixture {
  Workflow workflow;
  SourceMap sources;
};

StarFixture MakeStar() {
  StarFixture fx;
  WorkflowBuilder b("bench_star");
  const AttrId prod_id = b.DeclareAttr("prod_id", 50);
  const AttrId cust_id = b.DeclareAttr("cust_id", 30);
  const NodeId o = b.Source("Orders", {prod_id, cust_id});
  const NodeId p = b.Source("Product", {prod_id});
  const NodeId c = b.Source("Customer", {cust_id});
  b.Sink(b.Join(b.Join(o, p, prod_id), c, cust_id), "warehouse.orders");
  Result<Workflow> wf = std::move(b).Build();
  ETLOPT_CHECK_MSG(wf.ok(), wf.status().ToString());
  fx.workflow = std::move(wf).value();

  Rng rng(7);
  Table orders_t{Schema({prod_id, cust_id})};
  for (int i = 0; i < 400; ++i) {
    orders_t.AddRow({rng.NextInRange(1, 50), rng.NextInRange(1, 30)});
  }
  Table product_t{Schema({prod_id})};
  for (int i = 0; i < 40; ++i) product_t.AddRow({rng.NextInRange(1, 50)});
  Table customer_t{Schema({cust_id})};
  for (int i = 0; i < 25; ++i) customer_t.AddRow({rng.NextInRange(1, 30)});
  fx.sources["Orders"] = std::move(orders_t);
  fx.sources["Product"] = std::move(product_t);
  fx.sources["Customer"] = std::move(customer_t);
  return fx;
}

// A realistic mid-size record: a dozen SE cards and a 20-statistic store.
obs::RunRecord SampleRecord(int run) {
  obs::RunRecord record;
  record.run_id = "run-" + std::to_string(run);
  record.fingerprint = "abcd0123abcd0123";
  record.workflow = "bench";
  record.timestamp_ms = 1700000000000;
  record.selector = "greedy";
  record.plan_signature = "0011223344556677";
  StatStore store;
  for (int s = 0; s < 20; ++s) {
    store.Set(StatKey::Card(static_cast<RelMask>(s + 1)),
              StatValue::Count(1000 + s));
  }
  record.block_stats.push_back(std::move(store));
  for (int c = 0; c < 12; ++c) {
    obs::RunRecord::SeCard card;
    card.block = 0;
    card.se = static_cast<RelMask>(c + 1);
    card.estimated = 100.0 * (c + 1);
    card.actual = 101.0 * (c + 1);
    record.cards.push_back(card);
  }
  return record;
}

// Append latency with `prior` records already in the ledger (the rewrite
// cost scales with what is on disk).
void BM_LedgerAppend(benchmark::State& state) {
  const std::string path = kLedgerPath;
  const int prior = static_cast<int>(state.range(0));
  std::remove(path.c_str());
  obs::RunLedger ledger(path);
  for (int i = 0; i < prior; ++i) {
    if (!ledger.Append(SampleRecord(i + 1)).ok()) {
      state.SkipWithError("seed append failed");
      return;
    }
  }
  const obs::RunRecord record = SampleRecord(prior + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger.Append(record));
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_LedgerAppend)->Arg(0)->Arg(10)->Arg(100);

void BM_LedgerLoad(benchmark::State& state) {
  const std::string path = kLedgerPath;
  const int records = static_cast<int>(state.range(0));
  std::remove(path.c_str());
  obs::RunLedger ledger(path);
  for (int i = 0; i < records; ++i) {
    if (!ledger.Append(SampleRecord(i + 1)).ok()) {
      state.SkipWithError("seed append failed");
      return;
    }
  }
  for (auto _ : state) {
    auto loaded = ledger.Load();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(state.iterations() * records);
  std::remove(path.c_str());
}
BENCHMARK(BM_LedgerLoad)->Arg(10)->Arg(100);

void BM_RecordSerialize(benchmark::State& state) {
  const obs::RunRecord record = SampleRecord(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.ToJsonLine());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordSerialize);

void BM_RecordParse(benchmark::State& state) {
  const std::string line = SampleRecord(1).ToJsonLine();
  for (auto _ : state) {
    auto parsed = obs::RunRecord::FromJsonLine(line);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordParse);

// Per-run overhead of the full record path (cycle + ground truth +
// MakeRunRecord) with the obs kill-switch on/off — the delta is what the
// ledger feature costs a production run.
void RunCycleAndRecord(benchmark::State& state, bool obs_enabled) {
  obs::SetObsEnabled(obs_enabled);
  const StarFixture ex = MakeStar();
  Pipeline pipeline;
  for (auto _ : state) {
    const Result<CycleOutcome> cycle =
        pipeline.RunCycle(ex.workflow, ex.sources);
    if (!cycle.ok()) {
      state.SkipWithError("cycle failed");
      return;
    }
    std::vector<CardMap> truths;
    for (const auto& ba : cycle->analysis->blocks) {
      const auto truth = ComputeGroundTruthCards(
          ba->ctx, ba->plan_space.subexpressions(), cycle->run.exec);
      if (truth.ok()) truths.push_back(*truth);
    }
    benchmark::DoNotOptimize(MakeRunRecord(*cycle, "run-1", &truths));
  }
  obs::SetObsEnabled(true);
  state.SetItemsProcessed(state.iterations());
}

void BM_CycleWithRecordObsOn(benchmark::State& state) {
  RunCycleAndRecord(state, true);
}
BENCHMARK(BM_CycleWithRecordObsOn)->Unit(benchmark::kMillisecond);

void BM_CycleWithRecordObsOff(benchmark::State& state) {
  RunCycleAndRecord(state, false);
}
BENCHMARK(BM_CycleWithRecordObsOff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
