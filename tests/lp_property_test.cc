// Randomized property sweeps for the LP/ILP substrate: the bundled simplex
// against brute-force enumeration on random 0-1 covering programs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/ilp.h"
#include "util/random.h"

namespace etlopt {
namespace {

struct RandomCover {
  LinearProgram lp;
  std::vector<int> vars;
  int num_vars = 0;
  std::vector<std::vector<int>> sets;  // constraint -> vars with coeff 1
  std::vector<double> costs;
};

// min c·x s.t. for each element e: Σ_{sets covering e} x >= 1, x binary.
RandomCover MakeRandomCover(uint64_t seed, int num_vars, int num_elems) {
  RandomCover rc;
  Rng rng(seed);
  rc.num_vars = num_vars;
  for (int v = 0; v < num_vars; ++v) {
    const double cost = static_cast<double>(rng.NextInRange(1, 20));
    rc.costs.push_back(cost);
    rc.vars.push_back(rc.lp.AddVariable(cost, 0.0, 1.0));
  }
  for (int e = 0; e < num_elems; ++e) {
    LpConstraint c;
    c.sense = ConstraintSense::kGreaterEqual;
    c.rhs = 1.0;
    std::vector<int> members;
    for (int v = 0; v < num_vars; ++v) {
      if (rng.NextDouble() < 0.4) {
        c.terms.push_back({rc.vars[static_cast<size_t>(v)], 1.0});
        members.push_back(v);
      }
    }
    if (members.empty()) {
      // Guarantee feasibility: add a random member.
      const int v = static_cast<int>(rng.NextBounded(num_vars));
      c.terms.push_back({rc.vars[static_cast<size_t>(v)], 1.0});
      members.push_back(v);
    }
    rc.sets.push_back(members);
    rc.lp.AddConstraint(std::move(c));
  }
  return rc;
}

double BruteForceOptimum(const RandomCover& rc) {
  double best = 1e18;
  for (uint32_t mask = 0; mask < (1u << rc.num_vars); ++mask) {
    bool ok = true;
    for (const auto& members : rc.sets) {
      bool covered = false;
      for (int v : members) {
        if ((mask >> v) & 1) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double cost = 0.0;
    for (int v = 0; v < rc.num_vars; ++v) {
      if ((mask >> v) & 1) cost += rc.costs[static_cast<size_t>(v)];
    }
    best = std::min(best, cost);
  }
  return best;
}

class IlpCoverSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlpCoverSweep, MatchesBruteForce) {
  const RandomCover rc = MakeRandomCover(GetParam(), 10, 12);
  const double brute = BruteForceOptimum(rc);
  const IlpSolution sol = SolveIlp(rc.lp, rc.vars);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(sol.proven_optimal);
  EXPECT_NEAR(sol.objective, brute, 1e-6);
  // The reported assignment is integral and actually covers.
  for (int v : rc.vars) {
    const double x = sol.values[static_cast<size_t>(v)];
    EXPECT_LT(std::fabs(x - std::round(x)), 1e-6);
  }
  for (const auto& members : rc.sets) {
    double covered = 0.0;
    for (int v : members) covered += sol.values[static_cast<size_t>(v)];
    EXPECT_GE(covered, 1.0 - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpCoverSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u));

// LP relaxation lower-bounds the integral optimum.
class IlpRelaxationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlpRelaxationSweep, RelaxationBoundsIntegerOptimum) {
  const RandomCover rc = MakeRandomCover(GetParam() + 100, 9, 10);
  const LpSolution relax = SolveLp(rc.lp);
  ASSERT_EQ(relax.status, LpStatus::kOptimal);
  const double brute = BruteForceOptimum(rc);
  EXPECT_LE(relax.objective, brute + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpRelaxationSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace etlopt
