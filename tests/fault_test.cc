#include "util/fault.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "test_util.h"

namespace etlopt {
namespace {

using fault::FaultInjector;
using fault::Kind;
using fault::Scope;

// Every test runs with a clean process-global injector; InstallGlobal("")
// clears whatever a previous test left behind.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(FaultInjector::InstallGlobal("").ok()); }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
  }

  // Executor options with near-zero backoff so retry tests stay fast.
  static ExecutorOptions FastRetries() {
    ExecutorOptions options;
    options.retry.initial_backoff_ms = 0.01;
    options.retry.max_backoff_ms = 0.05;
    return options;
  }
};

TEST_F(FaultTest, ParsesSeedAndRules) {
  const auto inj = FaultInjector::Parse(
      "seed=42;source:orders:io_error:count=2;op:join5:crash;"
      "tap:*:oom:p=0.5");
  ASSERT_TRUE(inj.ok()) << inj.status().ToString();
  EXPECT_EQ(inj->seed(), 42u);
  ASSERT_EQ(inj->rules().size(), 3u);
  EXPECT_EQ(inj->rules()[0].scope, Scope::kSource);
  EXPECT_EQ(inj->rules()[0].name, "orders");
  EXPECT_EQ(inj->rules()[0].kind, Kind::kIoError);
  EXPECT_EQ(inj->rules()[0].count, 2);
  EXPECT_EQ(inj->rules()[1].scope, Scope::kOp);
  EXPECT_EQ(inj->rules()[1].kind, Kind::kCrash);
  EXPECT_EQ(inj->rules()[2].name, "*");
  EXPECT_DOUBLE_EQ(inj->rules()[2].p, 0.5);
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::Parse("bogus:orders:io_error").ok());
  EXPECT_FALSE(FaultInjector::Parse("source:orders:melted").ok());
  EXPECT_FALSE(FaultInjector::Parse("source:orders").ok());
  EXPECT_FALSE(FaultInjector::Parse("source:orders:io_error:p=nope").ok());
  EXPECT_FALSE(FaultInjector::Parse("source:orders:io_error:count=-3").ok());
  EXPECT_FALSE(FaultInjector::Parse("seed=").ok());
}

TEST_F(FaultTest, EmptySpecHasNoRules) {
  const auto inj = FaultInjector::Parse("");
  ASSERT_TRUE(inj.ok());
  EXPECT_FALSE(inj->has_rules());
}

TEST_F(FaultTest, CountRuleFiresExactlyNTimes) {
  auto inj = FaultInjector::Parse("source:orders:io_error:count=2").value();
  EXPECT_EQ(inj.OnSourceOpen("orders"), Kind::kIoError);
  EXPECT_EQ(inj.OnSourceOpen("orders"), Kind::kIoError);
  EXPECT_EQ(inj.OnSourceOpen("orders"), Kind::kNone);
  EXPECT_EQ(inj.OnSourceOpen("orders"), Kind::kNone);
  // A fresh run starts the budget over.
  inj.ResetState();
  EXPECT_EQ(inj.OnSourceOpen("orders"), Kind::kIoError);
}

TEST_F(FaultTest, EveryRuleFiresOnMultiples) {
  auto inj = FaultInjector::Parse("source:s:malformed_row:every=3").value();
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (inj.OnSourceRow("s") != Kind::kNone) ++fired;
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FaultTest, CrashAfterRowsAccumulatesWeight) {
  auto inj = FaultInjector::Parse("op:join:crash_after_rows=100").value();
  EXPECT_EQ(inj.OnOperator("join3", 40), Kind::kNone);
  EXPECT_EQ(inj.OnOperator("join3", 40), Kind::kNone);
  EXPECT_EQ(inj.OnOperator("join3", 40), Kind::kCrash);  // cumulative 120
  // A crash fires once.
  EXPECT_EQ(inj.OnOperator("join3", 40), Kind::kNone);
}

TEST_F(FaultTest, NameMatchingIsExactPrefixOrWildcard) {
  auto inj = FaultInjector::Parse("op:join:crash").value();
  EXPECT_TRUE(inj.HasRules(Scope::kOp, "join5"));
  EXPECT_TRUE(inj.HasRules(Scope::kOp, "join"));
  EXPECT_FALSE(inj.HasRules(Scope::kOp, "filter2"));
  EXPECT_FALSE(inj.HasRules(Scope::kSource, "join5"));

  auto any = FaultInjector::Parse("tap:*:oom").value();
  EXPECT_TRUE(any.HasRules(Scope::kTap, "distinct"));
  EXPECT_TRUE(any.HasRules(Scope::kTap, "hist"));
}

TEST_F(FaultTest, BernoulliStreamIsDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    auto inj = FaultInjector::Parse("seed=" + std::to_string(seed) +
                                    ";source:s:malformed_row:p=0.3")
                   .value();
    std::vector<int> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(inj.OnSourceRow("s") != Kind::kNone ? 1 : 0);
    }
    return fires;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(FaultTest, InstallGlobalIsStrictAndClearable) {
  ASSERT_TRUE(FaultInjector::InstallGlobal("tap:*:oom").ok());
  ASSERT_NE(FaultInjector::Global(), nullptr);
  // A bad spec is rejected and leaves the previous injector installed.
  EXPECT_FALSE(FaultInjector::InstallGlobal("nope").ok());
  ASSERT_NE(FaultInjector::Global(), nullptr);
  EXPECT_TRUE(FaultInjector::Global()->HasRules(Scope::kTap, "distinct"));
  // Empty spec clears.
  ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
  EXPECT_EQ(FaultInjector::Global(), nullptr);
}

// ---- executor integration: retry, quarantine, crash salvage ----

TEST_F(FaultTest, TransientSourceErrorsAbsorbedByRetry) {
  auto ex = testing_util::MakePaperExample();
  const int64_t clean_rows = Executor(&ex.workflow)
                                 .Execute(ex.sources)
                                 ->targets.at("warehouse.orders")
                                 .num_rows();

  ASSERT_TRUE(
      FaultInjector::InstallGlobal("source:Orders:io_error:count=2").ok());
  const Executor executor(&ex.workflow, FastRetries());
  const auto result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->aborted());
  EXPECT_EQ(result->source_retries.at("Orders"), 2);
  // The absorbed retries leave the run's output untouched.
  EXPECT_EQ(result->targets.at("warehouse.orders").num_rows(), clean_rows);
}

TEST_F(FaultTest, RetryBudgetExhaustionAbortsCleanly) {
  // No count param: every read attempt fails, outliving max_attempts.
  ASSERT_TRUE(FaultInjector::InstallGlobal("source:Orders:io_error").ok());
  auto ex = testing_util::MakePaperExample();
  const Executor executor(&ex.workflow, FastRetries());
  const auto result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->aborted());
  EXPECT_EQ(result->abort_kind, AbortKind::kSourceFailed);
  EXPECT_LT(result->nodes_completed, result->nodes_total);
}

TEST_F(FaultTest, QuarantineBelowThresholdCompletes) {
  ASSERT_TRUE(FaultInjector::InstallGlobal(
                  "seed=5;source:Orders:malformed_row:every=100")
                  .ok());
  auto ex = testing_util::MakePaperExample();
  ExecutorOptions options = FastRetries();
  options.max_error_rate = 0.05;  // 1% injected < 5% allowed
  const auto result = Executor(&ex.workflow, options).Execute(ex.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->aborted());
  EXPECT_EQ(result->quarantined_rows(), 4);  // 400 rows, every 100th
  // Quarantined rows are kept in the error sink, not silently dropped.
  EXPECT_EQ(result->quarantined.at("Orders").num_rows(), 4);
  // The watermark counts scanned rows, quarantined included.
  EXPECT_EQ(result->source_rows_read.at("Orders"), 400);
  // Downstream flow sees only the clean rows.
  EXPECT_EQ(result->node_outputs.at(0).num_rows(), 396);
}

TEST_F(FaultTest, QuarantineAboveThresholdAborts) {
  ASSERT_TRUE(FaultInjector::InstallGlobal(
                  "seed=5;source:Orders:malformed_row:p=0.5")
                  .ok());
  auto ex = testing_util::MakePaperExample();
  const auto result = Executor(&ex.workflow, FastRetries()).Execute(ex.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->aborted());
  EXPECT_EQ(result->abort_kind, AbortKind::kErrorRate);
  EXPECT_NE(result->abort_reason.find("Orders"), std::string::npos);
}

TEST_F(FaultTest, CrashFaultSalvagesCompletedPrefix) {
  // Paper example: sources 0-2, joins 3-4, sink 5. Crash the second join.
  ASSERT_TRUE(FaultInjector::InstallGlobal("op:join4:crash").ok());
  auto ex = testing_util::MakePaperExample();
  const auto result = Executor(&ex.workflow).Execute(ex.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->aborted());
  EXPECT_EQ(result->abort_kind, AbortKind::kCrash);
  // The completed prefix (sources + first join) is preserved for salvage...
  EXPECT_EQ(result->node_outputs.count(3), 1u);
  // ...and the crashed node's outputs are not.
  EXPECT_EQ(result->node_outputs.count(4), 0u);
  EXPECT_EQ(result->targets.count("warehouse.orders"), 0u);
  EXPECT_GT(result->completion_fraction(), 0.0);
  EXPECT_LT(result->completion_fraction(), 1.0);
}

TEST_F(FaultTest, FaultedRunIsDeterministic) {
  auto run_once = [] {
    EXPECT_TRUE(FaultInjector::InstallGlobal(
                    "seed=11;source:Orders:malformed_row:p=0.2")
                    .ok());
    auto ex = testing_util::MakePaperExample();
    ExecutorOptions options;
    options.max_error_rate = 0.5;
    const auto result = Executor(&ex.workflow, options).Execute(ex.sources);
    EXPECT_TRUE(result.ok());
    return result->quarantined_rows();
  };
  const int64_t first = run_once();
  const int64_t second = run_once();
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace etlopt
