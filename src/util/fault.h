#ifndef ETLOPT_UTIL_FAULT_H_
#define ETLOPT_UTIL_FAULT_H_

#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace etlopt {
namespace fault {

// Deterministic, seedable fault injection. Production ETL runs against
// sources the engine does not control — flat files and foreign DBMSs that
// time out, truncate and disappear — and every recovery path in the engine
// (retry/backoff, row quarantine, tap disablement, crash salvage) must be
// exercisable from a test. The injector is configured once from a spec
// string (env ETLOPT_FAULT_SPEC or the advisor's --fault-spec) and consulted
// by the executor and the instrumentation taps; with no spec installed,
// Injector() returns nullptr and every call site reduces to one pointer
// load + branch (see BM_FaultGuardDisabled in bench/micro_obs).
//
// Spec grammar (elements separated by ';'):
//
//   spec    := element (';' element)*
//   element := 'seed=' N
//            | scope ':' name ':' kind (':' param (',' param)*)?
//   scope   := 'source' | 'op' | 'tap' | 'partition'
//   kind    := 'io_error' | 'timeout' | 'malformed_row'
//            | 'crash' | 'crash_after_rows=' N | 'oom'
//   param   := 'p=' F | 'count=' N | 'every=' N
//
// `name` selects the injection target: a source table name, an operator
// ("join", or "join5" for node 5 — prefix match on OpKindName + node id), a
// tap kind ("card", "distinct", "hist", "rejcard", "rejhist"), a partition
// index ("0", "1", ... — exact match, no prefixing) of a partitioned run,
// or '*' for any. Firing policy per rule: `count=N` fails the first N events
// (deterministic — the transient-fault staple for retry tests), `p=F` fires
// each event with probability F from the rule's own seeded PRNG stream,
// `every=N` fires every Nth event, and no param means every event fires.
// `crash_after_rows=N` fires once the matched operators have cumulatively
// processed >= N input rows.
//
// Examples:
//   source:orders:io_error:count=2       first two read attempts fail
//   source:orders:malformed_row:p=0.01   ~1% of rows divert to quarantine
//   op:join2:crash_after_rows=5000       crash once join node 2 saw 5k rows
//   tap:*:oom                            every instrumentation tap fails
//   partition:1:crash                    kill partition 1 of a parallel run
//   seed=42                              pin the Bernoulli streams
//
// Partition-scope rules are consulted from worker threads; target explicit
// indices (not '*' with count/p policies) when the firing partition must be
// schedule-independent.

enum class Scope : uint8_t { kSource = 0, kOp, kTap, kPartition };

enum class Kind : uint8_t {
  kNone = 0,
  kIoError,       // transient source failure — absorbed by retry/backoff
  kTimeout,       // ditto, counted separately
  kMalformedRow,  // row-level corruption — diverted to the quarantine sink
  kCrash,         // hard mid-run abort (optionally after N rows)
  kOom,           // tap allocation failure — tap disabled, run continues
};

const char* KindName(Kind kind);

struct Rule {
  Scope scope = Scope::kSource;
  std::string name;  // match target, or "*"
  Kind kind = Kind::kNone;
  double p = -1.0;          // Bernoulli firing probability, < 0 = unset
  int64_t count = -1;       // fire the first `count` events, < 0 = unset
  int64_t every = -1;       // fire every Nth event, < 0 = unset
  int64_t after_rows = -1;  // kCrash: cumulative-row threshold, < 0 = unset

  // Runtime state (single run). The serial executor consults from one
  // thread; partitioned-executor workers consult concurrently, which the
  // injector serializes behind its consultation mutex.
  int64_t events = 0;  // events consulted (rows, for kCrash)
  int64_t fired = 0;

  // Consumes one event (of `weight` units, for row-accumulating crash
  // rules) and decides whether the fault fires.
  bool ConsumeEvent(Rng& rng, int64_t weight);
};

class FaultInjector {
 public:
  // Parses a spec string. An empty spec yields an injector with no rules.
  static Result<FaultInjector> Parse(const std::string& spec);

  // The process-global injector, configured from ETLOPT_FAULT_SPEC on first
  // use. Returns nullptr when no spec is installed — the fast path. A spec
  // that fails to parse logs an error and leaves injection disabled.
  static FaultInjector* Global();

  // Installs (or, with an empty spec, clears) the global injector — the
  // advisor's --fault-spec and the test harness use this. Strict: a parse
  // error leaves the previous injector in place.
  static Status InstallGlobal(const std::string& spec);

  // Resets every rule's event/fired counters (a fresh "run").
  void ResetState();

  bool has_rules() const { return !rules_.empty(); }
  uint64_t seed() const { return seed_; }
  const std::vector<Rule>& rules() const { return rules_; }

  // True when any rule could fire for this scope/name — call sites use it
  // to skip per-row bookkeeping entirely for unaffected sources/ops.
  bool HasRules(Scope scope, const std::string& name) const;

  // ---- consultation hooks (return kNone when nothing fires) ----
  // One source read attempt: io_error / timeout rules.
  Kind OnSourceOpen(const std::string& source);
  // One source row: malformed_row rules.
  Kind OnSourceRow(const std::string& source);
  // One operator finished processing `rows_in` input rows: crash rules.
  Kind OnOperator(const std::string& op, int64_t rows_in);
  // One instrumentation tap (name = StatKindName): oom / crash rules.
  Kind OnTap(const std::string& tap_kind);
  // One partitioned-executor chain step on partition `partition` (decimal
  // index, `rows` slice rows): crash rules. Called from worker threads.
  Kind OnPartition(const std::string& partition, int64_t rows);

 private:
  Kind Consult(Scope scope, const std::string& name,
               std::initializer_list<Kind> kinds, int64_t weight);

  std::vector<Rule> rules_;
  std::vector<Rng> rngs_;  // one deterministic stream per rule
  uint64_t seed_ = 0;
  // Serializes rule-state mutation: consultation hooks are called from the
  // partitioned executor's workers as well as the main thread. Heap-held so
  // the injector stays movable (Parse returns by value).
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
};

}  // namespace fault
}  // namespace etlopt

#endif  // ETLOPT_UTIL_FAULT_H_
