#include "etl/attr_catalog.h"

#include <limits>

#include "util/string_util.h"

namespace etlopt {

AttrId AttrCatalog::Register(const std::string& name, int64_t domain_size) {
  ETLOPT_CHECK_MSG(domain_size >= 1, "attribute domain must be positive");
  ETLOPT_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                   "duplicate attribute name: " + name);
  ETLOPT_CHECK_MSG(size() < kMaxAttrs, "too many attributes in workflow");
  const AttrId id = static_cast<AttrId>(attrs_.size());
  attrs_.push_back(AttrInfo{name, domain_size});
  by_name_[name] = id;
  return id;
}

AttrId AttrCatalog::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidAttr : it->second;
}

int64_t AttrCatalog::DomainProduct(AttrMask mask) const {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  int64_t product = 1;
  for (int idx : MaskToIndices(mask)) {
    const int64_t d = domain_size(static_cast<AttrId>(idx));
    if (product > kMax / d) return kMax;  // saturate
    product *= d;
  }
  return product;
}

std::string AttrCatalog::MaskToString(AttrMask mask) const {
  std::vector<std::string> names;
  for (int idx : MaskToIndices(mask)) {
    names.push_back(name(static_cast<AttrId>(idx)));
  }
  return "{" + Join(names, ",") + "}";
}

}  // namespace etlopt
