file(REMOVE_RECURSE
  "CMakeFiles/fig09_complexity.dir/fig09_complexity.cc.o"
  "CMakeFiles/fig09_complexity.dir/fig09_complexity.cc.o.d"
  "fig09_complexity"
  "fig09_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
