#include "etl/workflow_io.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "etl/transforms.h"
#include "etl/workflow_builder.h"

namespace etlopt {
namespace {

const char* OpToken(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "eq";
    case CompareOp::kNe:
      return "ne";
    case CompareOp::kLt:
      return "lt";
    case CompareOp::kLe:
      return "le";
    case CompareOp::kGt:
      return "gt";
    case CompareOp::kGe:
      return "ge";
  }
  return "?";
}

bool ParseOpToken(const std::string& token, CompareOp* op) {
  if (token == "eq") {
    *op = CompareOp::kEq;
  } else if (token == "ne") {
    *op = CompareOp::kNe;
  } else if (token == "lt") {
    *op = CompareOp::kLt;
  } else if (token == "le") {
    *op = CompareOp::kLe;
  } else if (token == "gt") {
    *op = CompareOp::kGt;
  } else if (token == "ge") {
    *op = CompareOp::kGe;
  } else {
    return false;
  }
  return true;
}

// Attribute names in the format are single tokens; enforce on write so the
// reader's tokenizer stays trivial.
Status CheckToken(const std::string& s, const char* what) {
  if (s.empty()) {
    return Status::InvalidArgument(std::string(what) + " is empty");
  }
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return Status::InvalidArgument(std::string(what) + " '" + s +
                                     "' contains whitespace");
    }
  }
  return Status::OK();
}

}  // namespace

std::string WriteWorkflowText(const Workflow& workflow, Status* status) {
  *status = Status::OK();
  std::ostringstream out;
  const AttrCatalog& catalog = workflow.catalog();
  Status st = CheckToken(workflow.name(), "workflow name");
  if (!st.ok()) {
    *status = st;
    return "";
  }
  out << "workflow " << workflow.name() << "\n";
  for (AttrId a = 0; a < catalog.size(); ++a) {
    st = CheckToken(catalog.name(a), "attribute name");
    if (!st.ok()) {
      *status = st;
      return "";
    }
    out << "attr " << catalog.name(a) << " " << catalog.domain_size(a)
        << "\n";
  }
  for (const WorkflowNode& node : workflow.nodes()) {
    out << "node " << node.id << " ";
    switch (node.kind) {
      case OpKind::kSource: {
        st = CheckToken(node.table_name, "source table name");
        if (!st.ok()) break;
        out << "source " << node.table_name << " cols";
        for (AttrId a : node.source_schema.attrs()) {
          out << " " << catalog.name(a);
        }
        break;
      }
      case OpKind::kFilter:
        out << "filter " << node.inputs[0] << " where "
            << catalog.name(node.predicate.attr) << " "
            << OpToken(node.predicate.op) << " " << node.predicate.constant;
        break;
      case OpKind::kProject: {
        out << "project " << node.inputs[0] << " cols";
        for (AttrId a : node.keep) out << " " << catalog.name(a);
        break;
      }
      case OpKind::kTransform: {
        const std::string fn = LookupTransformName(node.transform.fn);
        if (fn.empty()) {
          st = Status::InvalidArgument(
              "node '" + node.name +
              "' uses an unregistered transform function; only registry "
              "transforms serialize (see etl/transforms.h)");
          break;
        }
        if (node.transform.is_aggregate) {
          out << "aggudf " << node.inputs[0] << " attr "
              << catalog.name(node.transform.input_attr) << " fn " << fn;
        } else if (node.transform.output_attr == node.transform.input_attr) {
          out << "transform " << node.inputs[0] << " attr "
              << catalog.name(node.transform.input_attr) << " fn " << fn;
        } else {
          out << "derive " << node.inputs[0] << " from "
              << catalog.name(node.transform.input_attr) << " to "
              << catalog.name(node.transform.output_attr) << " fn " << fn;
        }
        break;
      }
      case OpKind::kAggregate: {
        out << "aggregate " << node.inputs[0] << " group";
        for (AttrId a : node.aggregate.group_by) {
          out << " " << catalog.name(a);
        }
        if (node.aggregate.count_attr != kInvalidAttr) {
          out << " count " << catalog.name(node.aggregate.count_attr);
        }
        break;
      }
      case OpKind::kJoin:
        out << "join " << node.inputs[0] << " " << node.inputs[1] << " on "
            << catalog.name(node.join.attr);
        if (node.join.left_reject_link) out << " reject";
        if (node.join.fk_lookup) out << " fk";
        if (node.join.algorithm == JoinAlgorithm::kHash) out << " hash";
        if (node.join.algorithm == JoinAlgorithm::kSortMerge) {
          out << " sortmerge";
        }
        break;
      case OpKind::kMaterialize:
        st = CheckToken(node.target_name, "materialize target");
        if (!st.ok()) break;
        out << "materialize " << node.inputs[0] << " target "
            << node.target_name;
        break;
      case OpKind::kSink:
        st = CheckToken(node.target_name, "sink target");
        if (!st.ok()) break;
        out << "sink " << node.inputs[0] << " target " << node.target_name;
        break;
    }
    if (!st.ok()) {
      *status = st;
      return "";
    }
    out << "\n";
  }
  return out.str();
}

std::string WriteWorkflowTextOrDie(const Workflow& workflow) {
  Status status;
  std::string text = WriteWorkflowText(workflow, &status);
  ETLOPT_CHECK_MSG(status.ok(), status.ToString());
  return text;
}

namespace {

// Parsing helpers over a token stream for one line.
class LineParser {
 public:
  LineParser(std::string line, int lineno)
      : stream_(std::move(line)), lineno_(lineno) {}

  Result<std::string> Token(const char* what) {
    std::string t;
    if (!(stream_ >> t)) {
      return Status::InvalidArgument("line " + std::to_string(lineno_) +
                                     ": expected " + what);
    }
    return t;
  }

  Result<int64_t> Int(const char* what) {
    ETLOPT_ASSIGN_OR_RETURN(std::string t, Token(what));
    try {
      size_t pos = 0;
      const int64_t v = std::stoll(t, &pos);
      if (pos != t.size()) throw std::invalid_argument(t);
      return v;
    } catch (...) {
      return Status::InvalidArgument("line " + std::to_string(lineno_) +
                                     ": bad integer '" + t + "' for " + what);
    }
  }

  // Expects the literal keyword `kw` next.
  Status Keyword(const char* kw) {
    ETLOPT_ASSIGN_OR_RETURN(std::string t, Token(kw));
    if (t != kw) {
      return Status::InvalidArgument("line " + std::to_string(lineno_) +
                                     ": expected '" + kw + "', got '" + t +
                                     "'");
    }
    return Status::OK();
  }

  // Remaining tokens on the line.
  std::vector<std::string> Rest() {
    std::vector<std::string> out;
    std::string t;
    while (stream_ >> t) out.push_back(t);
    return out;
  }

  bool AtEnd() {
    std::string t;
    return !(stream_ >> t);
  }

  int lineno() const { return lineno_; }

 private:
  std::istringstream stream_;
  int lineno_;
};

}  // namespace

Result<Workflow> ParseWorkflowText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  std::unique_ptr<WorkflowBuilder> builder;
  std::unordered_map<std::string, AttrId> attrs;
  std::vector<NodeId> nodes;  // parsed-id -> builder node id

  auto attr_of = [&](const std::string& name,
                     int at_line) -> Result<AttrId> {
    auto it = attrs.find(name);
    if (it == attrs.end()) {
      return Status::InvalidArgument("line " + std::to_string(at_line) +
                                     ": unknown attribute '" + name + "'");
    }
    return it->second;
  };
  auto node_of = [&](int64_t id, int at_line) -> Result<NodeId> {
    if (id < 0 || id >= static_cast<int64_t>(nodes.size())) {
      return Status::InvalidArgument("line " + std::to_string(at_line) +
                                     ": unknown node id " +
                                     std::to_string(id));
    }
    return nodes[static_cast<size_t>(id)];
  };

  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    LineParser p(line, lineno);
    if (p.AtEnd()) continue;
    p = LineParser(line, lineno);

    ETLOPT_ASSIGN_OR_RETURN(const std::string kind, p.Token("directive"));
    if (kind == "workflow") {
      ETLOPT_ASSIGN_OR_RETURN(const std::string name, p.Token("name"));
      if (builder != nullptr) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": duplicate 'workflow' directive");
      }
      builder = std::make_unique<WorkflowBuilder>(name);
      continue;
    }
    if (builder == nullptr) {
      return Status::InvalidArgument(
          "line " + std::to_string(lineno) +
          ": file must start with a 'workflow <name>' directive");
    }
    if (kind == "attr") {
      ETLOPT_ASSIGN_OR_RETURN(const std::string name, p.Token("attr name"));
      ETLOPT_ASSIGN_OR_RETURN(const int64_t domain, p.Int("domain size"));
      if (attrs.count(name)) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": duplicate attribute '" + name +
                                       "'");
      }
      if (domain < 1) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": domain must be positive");
      }
      attrs[name] = builder->DeclareAttr(name, domain);
      continue;
    }
    if (kind != "node") {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": unknown directive '" + kind + "'");
    }
    ETLOPT_ASSIGN_OR_RETURN(const int64_t parsed_id, p.Int("node id"));
    if (parsed_id != static_cast<int64_t>(nodes.size())) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": node ids must be dense and ordered "
                                     "(expected " +
                                     std::to_string(nodes.size()) + ")");
    }
    ETLOPT_ASSIGN_OR_RETURN(const std::string op, p.Token("operator"));

    if (op == "source") {
      ETLOPT_ASSIGN_OR_RETURN(const std::string table, p.Token("table"));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("cols"));
      std::vector<AttrId> cols;
      for (const std::string& name : p.Rest()) {
        ETLOPT_ASSIGN_OR_RETURN(const AttrId a, attr_of(name, lineno));
        cols.push_back(a);
      }
      if (cols.empty()) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": source needs at least one column");
      }
      nodes.push_back(builder->Source(table, std::move(cols)));
    } else if (op == "filter") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t in, p.Int("input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId input, node_of(in, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("where"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string attr, p.Token("attribute"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string op_token,
                              p.Token("comparison"));
      ETLOPT_ASSIGN_OR_RETURN(const int64_t constant, p.Int("constant"));
      ETLOPT_ASSIGN_OR_RETURN(const AttrId a, attr_of(attr, lineno));
      Predicate pred;
      pred.attr = a;
      pred.constant = constant;
      if (!ParseOpToken(op_token, &pred.op)) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": bad comparison '" + op_token + "'");
      }
      nodes.push_back(builder->Filter(input, pred));
    } else if (op == "project") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t in, p.Int("input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId input, node_of(in, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("cols"));
      std::vector<AttrId> cols;
      for (const std::string& name : p.Rest()) {
        ETLOPT_ASSIGN_OR_RETURN(const AttrId a, attr_of(name, lineno));
        cols.push_back(a);
      }
      nodes.push_back(builder->Project(input, std::move(cols)));
    } else if (op == "transform" || op == "aggudf") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t in, p.Int("input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId input, node_of(in, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("attr"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string attr, p.Token("attribute"));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("fn"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string fn_name,
                              p.Token("function"));
      ETLOPT_ASSIGN_OR_RETURN(const AttrId a, attr_of(attr, lineno));
      auto fn = LookupTransformByName(fn_name);
      if (!fn) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": unknown transform '" + fn_name +
                                       "'");
      }
      nodes.push_back(op == "aggudf"
                          ? builder->AggregateUdf(input, a, std::move(fn))
                          : builder->Transform(input, a, std::move(fn)));
    } else if (op == "derive") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t in, p.Int("input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId input, node_of(in, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("from"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string from, p.Token("attribute"));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("to"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string to, p.Token("attribute"));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("fn"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string fn_name,
                              p.Token("function"));
      ETLOPT_ASSIGN_OR_RETURN(const AttrId from_a, attr_of(from, lineno));
      ETLOPT_ASSIGN_OR_RETURN(const AttrId to_a, attr_of(to, lineno));
      auto fn = LookupTransformByName(fn_name);
      if (!fn) {
        return Status::InvalidArgument("line " + std::to_string(lineno) +
                                       ": unknown transform '" + fn_name +
                                       "'");
      }
      nodes.push_back(builder->DeriveAttr(input, from_a, to_a, std::move(fn)));
    } else if (op == "aggregate") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t in, p.Int("input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId input, node_of(in, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("group"));
      std::vector<AttrId> group;
      AttrId count_attr = kInvalidAttr;
      std::vector<std::string> rest = p.Rest();
      for (size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == "count") {
          if (i + 2 != rest.size()) {
            return Status::InvalidArgument(
                "line " + std::to_string(lineno) +
                ": 'count' must be followed by exactly one attribute");
          }
          ETLOPT_ASSIGN_OR_RETURN(count_attr, attr_of(rest[i + 1], lineno));
          break;
        }
        ETLOPT_ASSIGN_OR_RETURN(const AttrId a, attr_of(rest[i], lineno));
        group.push_back(a);
      }
      nodes.push_back(builder->Aggregate(input, std::move(group), count_attr));
    } else if (op == "join") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t l, p.Int("left input"));
      ETLOPT_ASSIGN_OR_RETURN(const int64_t r, p.Int("right input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId left, node_of(l, lineno));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId right, node_of(r, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("on"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string attr, p.Token("attribute"));
      ETLOPT_ASSIGN_OR_RETURN(const AttrId a, attr_of(attr, lineno));
      JoinOptions options;
      JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
      for (const std::string& flag : p.Rest()) {
        if (flag == "reject") {
          options.reject_link = true;
        } else if (flag == "fk") {
          options.fk_lookup = true;
        } else if (flag == "hash") {
          algorithm = JoinAlgorithm::kHash;
        } else if (flag == "sortmerge") {
          algorithm = JoinAlgorithm::kSortMerge;
        } else {
          return Status::InvalidArgument("line " + std::to_string(lineno) +
                                         ": unknown join flag '" + flag +
                                         "'");
        }
      }
      const NodeId join_id = builder->Join(left, right, a, options);
      builder->SetJoinAlgorithm(join_id, algorithm);
      nodes.push_back(join_id);
    } else if (op == "materialize" || op == "sink") {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t in, p.Int("input"));
      ETLOPT_ASSIGN_OR_RETURN(const NodeId input, node_of(in, lineno));
      ETLOPT_RETURN_IF_ERROR(p.Keyword("target"));
      ETLOPT_ASSIGN_OR_RETURN(const std::string target, p.Token("target"));
      nodes.push_back(op == "sink" ? builder->Sink(input, target)
                                   : builder->Materialize(input, target));
    } else {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": unknown operator '" + op + "'");
    }
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("empty workflow file");
  }
  return std::move(*builder).Build();
}

Status SaveWorkflow(const Workflow& workflow, const std::string& path) {
  Status status;
  const std::string text = WriteWorkflowText(workflow, &status);
  ETLOPT_RETURN_IF_ERROR(status);
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << text;
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

Result<Workflow> LoadWorkflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open workflow file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseWorkflowText(text.str());
}

}  // namespace etlopt
