# Empty dependencies file for css_test.
# This may be replaced when dependencies are built.
