#ifndef ETLOPT_SKETCH_SKETCH_H_
#define ETLOPT_SKETCH_SKETCH_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace etlopt {
namespace sketch {

// 64-bit finalizer (splitmix64): turns the weakly-mixed FNV accumulation of
// a composite key into bits uniform enough for register selection and
// leading-zero ranks. All sketches hash through this, so two sketches built
// over the same stream agree bit-for-bit — the property the merge == union
// tests pin down.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Canonical hash of a composite bucket key (values in attribute order).
inline uint64_t HashValues(const std::vector<Value>& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (Value v : key) {
    h ^= static_cast<uint64_t>(v);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashValue(Value v) {
  return Mix64(static_cast<uint64_t>(v) ^ 0xcbf29ce484222325ULL);
}

}  // namespace sketch
}  // namespace etlopt

#endif  // ETLOPT_SKETCH_SKETCH_H_
