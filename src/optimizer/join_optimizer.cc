#include "optimizer/join_optimizer.h"

#include <algorithm>

namespace etlopt {

Result<OptimizedPlan> OptimizeJoins(const BlockContext& ctx,
                                    const PlanSpace& plan_space,
                                    const CardMap& cards,
                                    const CostParams& params) {
  OptimizedPlan out;
  auto card = [&](RelMask se) -> Result<int64_t> {
    auto it = cards.find(se);
    if (it == cards.end()) {
      return Status::NotFound("no cardinality for SE mask " +
                              std::to_string(se));
    }
    return it->second;
  };

  // DP over connected subsets (already sorted children-first).
  std::unordered_map<RelMask, double> best;
  for (RelMask se : plan_space.subexpressions()) {
    if (IsSingleton(se)) {
      best[se] = 0.0;  // chain tops are free inputs to the join ordering
      continue;
    }
    double se_best = -1.0;
    JoinChoice se_choice;
    ETLOPT_ASSIGN_OR_RETURN(const int64_t out_rows, card(se));
    for (const PlanAlt& plan : plan_space.plans(se)) {
      ETLOPT_ASSIGN_OR_RETURN(const int64_t left_rows, card(plan.left));
      ETLOPT_ASSIGN_OR_RETURN(const int64_t right_rows, card(plan.right));
      // Orient the smaller input to the build side, then pick the cheaper
      // physical implementation.
      const int64_t probe_rows = std::max(left_rows, right_rows);
      const int64_t build_rows = std::min(left_rows, right_rows);
      const auto [algorithm, step] =
          PickJoinAlgorithm(probe_rows, build_rows, out_rows, params);
      const double total = best.at(plan.left) + best.at(plan.right) + step;
      if (se_best < 0.0 || total < se_best) {
        se_best = total;
        se_choice.left = left_rows >= right_rows ? plan.left : plan.right;
        se_choice.right = left_rows >= right_rows ? plan.right : plan.left;
        se_choice.attr = plan.attr;
        se_choice.algorithm = algorithm;
      }
    }
    if (se_best < 0.0) {
      return Status::Internal("SE has no plan");
    }
    best[se] = se_best;
    out.choices[se] = se_choice;
  }
  out.cost = best.at(ctx.full_mask());

  // Cost of the designed plan under the same cardinalities.
  double initial = 0.0;
  for (const BlockJoin& j : ctx.block().joins) {
    ETLOPT_ASSIGN_OR_RETURN(const int64_t left_rows, card(j.left));
    ETLOPT_ASSIGN_OR_RETURN(const int64_t right_rows, card(j.right));
    ETLOPT_ASSIGN_OR_RETURN(const int64_t out_rows, card(j.left | j.right));
    initial += PickJoinAlgorithm(std::max(left_rows, right_rows),
                                 std::min(left_rows, right_rows), out_rows,
                                 params)
                   .second;
  }
  out.initial_cost = initial;
  return out;
}

}  // namespace etlopt
