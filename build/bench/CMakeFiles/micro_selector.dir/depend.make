# Empty dependencies file for micro_selector.
# This may be replaced when dependencies are built.
