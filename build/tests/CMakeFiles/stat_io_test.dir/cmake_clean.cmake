file(REMOVE_RECURSE
  "CMakeFiles/stat_io_test.dir/stat_io_test.cc.o"
  "CMakeFiles/stat_io_test.dir/stat_io_test.cc.o.d"
  "stat_io_test"
  "stat_io_test.pdb"
  "stat_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
