# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/approx_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/approx_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/css_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/etl_test[1]_include.cmake")
include("/root/repo/build/tests/exec_cover_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_property_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/paper_scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/physical_join_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/planspace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/selection_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/stat_io_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_io_test[1]_include.cmake")
