// Reproduces Figure 9: complexity of the 30 workflows — the number of
// sub-expressions (SEs) and the number of CSSs generated without and with
// the union-division method. Workflows range from simple linear ETLs with a
// single execution plan to an 8-way join with multiple transformations
// (workflow 21).

#include <cstdio>

#include "suite_analysis.h"

int main() {
  std::printf("== Figure 9: complexity of the workflows ==\n");
  std::printf("%-4s %-18s %6s %14s %14s\n", "wf", "name", "#SEs",
              "#CSS(no UD)", "#CSS(with UD)");
  int total_ses = 0;
  int total_noud = 0;
  int total_ud = 0;
  for (int i = 1; i <= 30; ++i) {
    const etlopt::bench::WorkflowAnalysis wa =
        etlopt::bench::AnalyzeWorkflow(i);
    const int ses = wa.total_ses();
    const int noud = wa.total_css(false);
    const int ud = wa.total_css(true);
    std::printf("%-4d %-18s %6d %14d %14d\n", i, wa.spec.name.c_str(), ses,
                noud, ud);
    total_ses += ses;
    total_noud += noud;
    total_ud += ud;
  }
  std::printf("%-4s %-18s %6d %14d %14d\n", "sum", "", total_ses, total_noud,
              total_ud);
  std::printf("\nshape check (paper): union-division introduces additional "
              "CSS alternatives;\nworkflow 21 (8-way join) dominates the "
              "complexity.\n");
  return 0;
}
