#include "planspace/join_graph.h"

#include <algorithm>

#include "util/common.h"

namespace etlopt {

JoinGraph::JoinGraph(int num_rels) : num_rels_(num_rels) {
  ETLOPT_CHECK(num_rels >= 1 && num_rels <= 16);
  incident_.resize(static_cast<size_t>(num_rels));
}

void JoinGraph::AddEdge(JoinEdge edge) {
  ETLOPT_CHECK(edge.a >= 0 && edge.a < num_rels_);
  ETLOPT_CHECK(edge.b >= 0 && edge.b < num_rels_);
  ETLOPT_CHECK(edge.a != edge.b);
  const int idx = static_cast<int>(edges_.size());
  incident_[static_cast<size_t>(edge.a)].push_back(idx);
  incident_[static_cast<size_t>(edge.b)].push_back(idx);
  edges_.push_back(edge);
}

bool JoinGraph::IsForest() const {
  // A forest has no cycle: per connected component, edges == nodes - 1.
  // Union-find over relations.
  std::vector<int> parent(static_cast<size_t>(num_rels_));
  for (int i = 0; i < num_rels_; ++i) parent[static_cast<size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const JoinEdge& e : edges_) {
    const int ra = find(e.a);
    const int rb = find(e.b);
    if (ra == rb) return false;  // cycle
    parent[static_cast<size_t>(ra)] = rb;
  }
  return true;
}

bool JoinGraph::IsConnected(RelMask subset) const {
  if (subset == 0) return false;
  if (IsSingleton(subset)) return true;
  const int start = LowestBit(subset);
  RelMask visited = RelMask{1} << start;
  RelMask frontier = visited;
  while (frontier != 0) {
    RelMask next = 0;
    for (int rel : MaskToIndices(frontier)) {
      next |= Neighbors(rel, subset);
    }
    next &= ~visited;
    visited |= next;
    frontier = next;
  }
  return visited == subset;
}

RelMask JoinGraph::Neighbors(int rel, RelMask subset) const {
  RelMask out = 0;
  for (int ei : edges_of(rel)) {
    const JoinEdge& e = edges_[static_cast<size_t>(ei)];
    const int other = e.a == rel ? e.b : e.a;
    if ((subset >> other) & 1) out |= RelMask{1} << other;
  }
  return out;
}

int JoinGraph::CrossingEdge(RelMask a, RelMask b) const {
  int found = -1;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const JoinEdge& e = edges_[i];
    const bool a_in_a = (a >> e.a) & 1;
    const bool a_in_b = (b >> e.a) & 1;
    const bool b_in_a = (a >> e.b) & 1;
    const bool b_in_b = (b >> e.b) & 1;
    if ((a_in_a && b_in_b) || (a_in_b && b_in_a)) {
      if (found >= 0) return -1;  // more than one crossing edge
      found = static_cast<int>(i);
    }
  }
  return found;
}

std::vector<RelMask> JoinGraph::ConnectedSubsets() const {
  std::vector<RelMask> out;
  const RelMask all = (RelMask{1} << num_rels_) - 1;
  for (RelMask m = 1; m <= all; ++m) {
    if (IsConnected(m)) out.push_back(m);
  }
  std::sort(out.begin(), out.end(), [](RelMask x, RelMask y) {
    const int px = PopCount(x);
    const int py = PopCount(y);
    return px != py ? px < py : x < y;
  });
  return out;
}

}  // namespace etlopt
