# Empty dependencies file for planspace_test.
# This may be replaced when dependencies are built.
