#ifndef ETLOPT_ETL_OPERATOR_H_
#define ETLOPT_ETL_OPERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "etl/predicate.h"
#include "etl/schema.h"
#include "etl/types.h"

namespace etlopt {

// Logical operator kinds of the ETL workflow DAG (Section 1 / Section 3).
enum class OpKind {
  kSource,       // reads a named input record-set
  kFilter,       // σ_a(T): single-attribute selection
  kProject,      // π_a(T): keeps a subset of columns
  kTransform,    // U(T, a): user-defined per-row value transformation
  kAggregate,    // G(T, a): group-by (blocking)
  kJoin,         // equi-join on a shared attribute, optional reject link
  kMaterialize,  // explicitly materializes the intermediate result
  kSink,         // writes the target record-set
};

const char* OpKindName(OpKind kind);

// U(T, a) from the paper: rewrites attribute `input_attr` row by row. When
// `output_attr` != `input_attr` the result is a *derived* attribute appended
// to the schema (the Fig. 3 pattern that can create a block boundary when the
// derived attribute is later used as a join key). When `is_aggregate` is set
// the operator is a black-box aggregate UDF and always ends a block.
struct TransformSpec {
  AttrId input_attr = kInvalidAttr;
  AttrId output_attr = kInvalidAttr;
  std::function<Value(Value)> fn;
  bool is_aggregate = false;
};

// G(T, a): group-by on `group_by` attributes; when `count_attr` is set an
// occurrence count column is appended.
struct AggregateSpec {
  std::vector<AttrId> group_by;
  AttrId count_attr = kInvalidAttr;
};

// Physical join implementation. kAuto lets the executor default to hash;
// the cost-based optimizer sets an explicit choice per join when it
// rewrites a plan (physical implementation selection in the spirit of
// [Tziovara et al., DOLAP'07], which the paper's related work discusses).
enum class JoinAlgorithm : uint8_t { kAuto = 0, kHash, kSortMerge };

const char* JoinAlgorithmName(JoinAlgorithm algorithm);

// Equi-join of two inputs on a shared attribute. `left_reject_link`
// materializes the left rows that found no match (the diagnostics pattern of
// Section 1), which both constrains reordering (block boundary) and is what
// the union-division rules J4/J5 instrument. `fk_lookup` declares that every
// left row matches exactly one right row (a dimension lookup), which the
// plan-space generator exploits (Section 3.2.2).
struct JoinSpec {
  AttrId attr = kInvalidAttr;
  bool left_reject_link = false;
  bool fk_lookup = false;
  JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
};

// One node of the workflow DAG. Only the payload matching `kind` is
// meaningful; this is a plain aggregate kept simple for serialization and
// inspection (builders enforce the per-kind invariants).
struct WorkflowNode {
  NodeId id = kInvalidNode;
  OpKind kind = OpKind::kSource;
  std::string name;
  std::vector<NodeId> inputs;

  // kSource
  std::string table_name;
  Schema source_schema;

  // kFilter
  Predicate predicate;

  // kProject
  std::vector<AttrId> keep;

  // kTransform
  TransformSpec transform;

  // kAggregate
  AggregateSpec aggregate;

  // kJoin
  JoinSpec join;

  // kMaterialize / kSink
  std::string target_name;
};

}  // namespace etlopt

#endif  // ETLOPT_ETL_OPERATOR_H_
