#ifndef ETLOPT_ETL_WORKFLOW_IO_H_
#define ETLOPT_ETL_WORKFLOW_IO_H_

#include <string>

#include "etl/workflow.h"

namespace etlopt {

// Plain-text workflow serialization. The paper's prototype consumed
// workflows exported from the ETL designer (DataStage XML); this is our
// equivalent exchange format — line-oriented, diff-friendly, hand-editable:
//
//   workflow orders_load
//   attr prod_id 400
//   attr cust_id 120
//   node 0 source Orders cols prod_id cust_id
//   node 1 source Product cols prod_id
//   node 2 source Customer cols cust_id
//   node 3 join 0 1 on prod_id
//   node 4 join 3 2 on cust_id reject fk
//   node 5 filter 4 where cust_id le 30
//   node 6 project 5 cols prod_id cust_id
//   node 7 transform 6 attr cust_id fn standardize
//   node 8 derive 7 from cust_id to cust_tier fn bucketize10
//   node 9 aggudf 8 attr prod_id fn mod100
//   node 10 aggregate 9 group prod_id cust_tier count cnt
//   node 11 materialize 10 target staging.orders
//   node 12 sink 11 target warehouse.orders
//
// Comparison operators: eq ne lt le gt ge. Transform functions must come
// from the registry in etl/transforms.h; workflows containing ad-hoc
// lambdas serialize with an error naming the offending node.
std::string WriteWorkflowText(const Workflow& workflow, Status* status);

// Convenience: aborts on non-serializable workflows.
std::string WriteWorkflowTextOrDie(const Workflow& workflow);

// Parses the format above; returns a validated workflow.
Result<Workflow> ParseWorkflowText(const std::string& text);

// File helpers.
Status SaveWorkflow(const Workflow& workflow, const std::string& path);
Result<Workflow> LoadWorkflow(const std::string& path);

}  // namespace etlopt

#endif  // ETLOPT_ETL_WORKFLOW_IO_H_
