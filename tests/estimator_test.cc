#include <gtest/gtest.h>

#include "css/generator.h"
#include "engine/instrumentation.h"
#include "estimator/estimator.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"
#include "test_util.h"

namespace etlopt {
namespace {

class EstimatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakePaperExample();
    const std::vector<Block> blocks = PartitionBlocks(ex_.workflow);
    ctx_ = BlockContext::Build(&ex_.workflow, blocks[0]).value();
    ps_ = PlanSpace::Build(ctx_).value();
    catalog_ = GenerateCss(ctx_, ps_, {});
    Executor executor(&ex_.workflow);
    exec_ = executor.Execute(ex_.sources).value();
    truth_ =
        ComputeGroundTruthCards(ctx_, ps_.subexpressions(), exec_).value();
  }

  void ExpectExactEstimates(const SelectionResult& selection) {
    ASSERT_TRUE(selection.feasible);
    const std::vector<StatKey> keys = selection.ObservedKeys(catalog_);
    const StatStore observed =
        ObserveStatistics(ctx_, exec_, keys).value();
    Estimator estimator(&ctx_, &catalog_);
    const Status st = estimator.DeriveAll(observed);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (RelMask se : ps_.subexpressions()) {
      const Result<int64_t> est = estimator.Cardinality(se);
      ASSERT_TRUE(est.ok()) << "SE " << se << ": " << est.status().ToString();
      EXPECT_EQ(*est, truth_.at(se)) << "SE mask " << se;
    }
  }

  testing_util::PaperExample ex_;
  BlockContext ctx_;
  PlanSpace ps_;
  CssCatalog catalog_;
  ExecutionResult exec_;
  std::unordered_map<RelMask, int64_t> truth_;
};

TEST_F(EstimatorFixture, GreedySelectionYieldsExactCardinalities) {
  CostModel cost_model(&ex_.workflow.catalog(), {});
  const SelectionProblem problem =
      BuildSelectionProblem(ctx_, ps_, catalog_, cost_model);
  ExpectExactEstimates(SelectGreedy(problem));
}

TEST_F(EstimatorFixture, IlpSelectionYieldsExactCardinalities) {
  CostModel cost_model(&ex_.workflow.catalog(), {});
  const SelectionProblem problem =
      BuildSelectionProblem(ctx_, ps_, catalog_, cost_model);
  ExpectExactEstimates(SelectIlp(problem));
}

TEST_F(EstimatorFixture, UnionDivisionDerivationIsExact) {
  // Force the J4 path for |OC|: observe exactly the union-division inputs
  // plus counters for everything else.
  const AttrMask pid = AttrMask{1} << ex_.prod_id;
  std::vector<StatKey> keys = {
      StatKey::Card(0b001),  StatKey::Card(0b010), StatKey::Card(0b100),
      StatKey::Card(0b011),  StatKey::Card(0b111),
      StatKey::Hist(0b111, pid), StatKey::Hist(0b010, pid),
      StatKey::RejectJoinCard(0b001, 1, 0b100)};
  const StatStore observed = ObserveStatistics(ctx_, exec_, keys).value();
  Estimator estimator(&ctx_, &catalog_);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  const Result<int64_t> oc = estimator.Cardinality(0b101);
  ASSERT_TRUE(oc.ok()) << oc.status().ToString();
  EXPECT_EQ(*oc, truth_.at(0b101));
}

TEST_F(EstimatorFixture, BaseHistogramsAloneSuffice) {
  // Observing the joint (pid,cid) histogram on Orders plus the dimension
  // histograms derives everything (J1 + J2 + I-rules).
  const AttrMask pid = AttrMask{1} << ex_.prod_id;
  const AttrMask cid = AttrMask{1} << ex_.cust_id;
  std::vector<StatKey> keys = {StatKey::Hist(0b001, pid | cid),
                               StatKey::Hist(0b010, pid),
                               StatKey::Hist(0b100, cid)};
  const StatStore observed = ObserveStatistics(ctx_, exec_, keys).value();
  Estimator estimator(&ctx_, &catalog_);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  for (RelMask se : ps_.subexpressions()) {
    const Result<int64_t> est = estimator.Cardinality(se);
    ASSERT_TRUE(est.ok()) << "SE " << se;
    EXPECT_EQ(*est, truth_.at(se)) << "SE mask " << se;
  }
}

TEST_F(EstimatorFixture, MissingStatisticsReportedNotInvented) {
  // With only base cardinalities observed, join SEs must be unknown.
  std::vector<StatKey> keys = {StatKey::Card(0b001), StatKey::Card(0b010),
                               StatKey::Card(0b100)};
  const StatStore observed = ObserveStatistics(ctx_, exec_, keys).value();
  Estimator estimator(&ctx_, &catalog_);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  EXPECT_TRUE(estimator.Cardinality(0b001).ok());
  EXPECT_FALSE(estimator.Cardinality(0b011).ok());
  EXPECT_FALSE(estimator.Cardinality(0b111).ok());
}

// Chain rules (S1/S2/U1/U2/G1/G2) exactness on a workflow with a filtered,
// transformed, and aggregated chain.
TEST(EstimatorChainTest, ChainDerivationsAreExact) {
  WorkflowBuilder b("chain");
  const AttrId k = b.DeclareAttr("k", 12);
  const AttrId x = b.DeclareAttr("x", 9);
  const NodeId a = b.Source("A", {k, x});
  const NodeId f = b.Filter(a, {x, CompareOp::kLe, 5});
  const NodeId t = b.Transform(f, x, [](Value v) { return v + 1; });
  const NodeId d = b.Source("D", {k});
  const NodeId j = b.Join(t, d, k);
  b.Sink(j, "out");
  Workflow wf = std::move(b).Build().value();

  Rng rng(1234);
  SourceMap sources;
  sources["A"] = testing_util::RandomTable(wf.catalog(), {k, x}, 300, rng);
  sources["D"] = testing_util::RandomTable(wf.catalog(), {k}, 40, rng);

  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 1u);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const ExecutionResult exec = Executor(&wf).Execute(sources).value();
  const auto truth =
      ComputeGroundTruthCards(ctx, ps.subexpressions(), exec).value();

  // Observe only base-stage statistics: the joint histogram at stage 0 of A
  // and the histogram on D. Everything else must derive via S1/S2/U2/J1.
  const AttrMask kb = AttrMask{1} << k;
  const AttrMask xb = AttrMask{1} << x;
  std::vector<StatKey> keys = {StatKey::HistStage(0, 0, kb | xb),
                               StatKey::Hist(0b10, kb)};
  const StatStore observed = ObserveStatistics(ctx, exec, keys).value();
  Estimator estimator(&ctx, &catalog);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  for (RelMask se : ps.subexpressions()) {
    const Result<int64_t> est = estimator.Cardinality(se);
    ASSERT_TRUE(est.ok()) << "SE " << se;
    EXPECT_EQ(*est, truth.at(se)) << "SE mask " << se;
  }
}

TEST(EstimatorChainTest, GroupByDerivationIsExact) {
  WorkflowBuilder b("g");
  const AttrId k = b.DeclareAttr("k", 15);
  const AttrId x = b.DeclareAttr("x", 7);
  const NodeId a = b.Source("A", {k, x});
  const NodeId g = b.Aggregate(a, {k});
  const NodeId d = b.Source("D", {k});
  const NodeId j = b.Join(g, d, k);
  b.Sink(j, "out");
  Workflow wf = std::move(b).Build().value();

  Rng rng(777);
  SourceMap sources;
  sources["A"] = testing_util::RandomTable(wf.catalog(), {k, x}, 200, rng);
  sources["D"] = testing_util::RandomTable(wf.catalog(), {k}, 30, rng);

  const std::vector<Block> blocks = PartitionBlocks(wf);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const ExecutionResult exec = Executor(&wf).Execute(sources).value();
  const auto truth =
      ComputeGroundTruthCards(ctx, ps.subexpressions(), exec).value();

  const AttrMask kb = AttrMask{1} << k;
  std::vector<StatKey> keys = {StatKey::HistStage(0, 0, kb),
                               StatKey::Hist(0b10, kb)};
  const StatStore observed = ObserveStatistics(ctx, exec, keys).value();
  Estimator estimator(&ctx, &catalog);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  for (RelMask se : ps.subexpressions()) {
    EXPECT_EQ(*estimator.Cardinality(se), truth.at(se)) << "SE " << se;
  }
}


// Derived *histograms* (not just cardinalities) must equal the histograms
// built directly from the materialized SE tables.
TEST_F(EstimatorFixture, DerivedHistogramsMatchMaterializedTables) {
  const AttrMask pid = AttrMask{1} << ex_.prod_id;
  const AttrMask cid = AttrMask{1} << ex_.cust_id;
  std::vector<StatKey> keys = {StatKey::Hist(0b001, pid | cid),
                               StatKey::Hist(0b010, pid),
                               StatKey::Hist(0b100, cid)};
  const StatStore observed = ObserveStatistics(ctx_, exec_, keys).value();
  Estimator estimator(&ctx_, &catalog_);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());

  // Every derived histogram in the catalog equals the table-built one.
  int checked = 0;
  for (int s = 0; s < catalog_.num_stats(); ++s) {
    const StatKey& key = catalog_.stat(s);
    if (key.kind != StatKind::kHist || key.is_chain_stage()) continue;
    if (!estimator.Has(key)) continue;
    const Table se_table =
        MaterializeSubexpression(ctx_, key.rels, exec_).value();
    const Histogram expected = se_table.BuildHistogram(key.attrs);
    const Result<Histogram> got = estimator.Hist(key);
    ASSERT_TRUE(got.ok()) << key.ToString();
    EXPECT_TRUE(*got == expected) << key.ToString(&ex_.workflow.catalog());
    ++checked;
  }
  EXPECT_GE(checked, 5);  // meaningful coverage, not a vacuous loop
}

// Distinct-count statistics derived via D1 equal the table counts.
TEST_F(EstimatorFixture, DerivedDistinctsMatchTables) {
  const AttrMask pid = AttrMask{1} << ex_.prod_id;
  const AttrMask cid = AttrMask{1} << ex_.cust_id;
  std::vector<StatKey> keys = {StatKey::Hist(0b001, pid | cid),
                               StatKey::Hist(0b010, pid),
                               StatKey::Hist(0b100, cid)};
  const StatStore observed = ObserveStatistics(ctx_, exec_, keys).value();
  Estimator estimator(&ctx_, &catalog_);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  for (int s = 0; s < catalog_.num_stats(); ++s) {
    const StatKey& key = catalog_.stat(s);
    if (key.kind != StatKind::kDistinct || key.is_chain_stage()) continue;
    if (!estimator.Has(key)) continue;
    const Table se_table =
        MaterializeSubexpression(ctx_, key.rels, exec_).value();
    EXPECT_EQ(*estimator.Count(key), se_table.CountDistinct(key.attrs))
        << key.ToString();
  }
}

}  // namespace
}  // namespace etlopt
