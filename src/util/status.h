#ifndef ETLOPT_UTIL_STATUS_H_
#define ETLOPT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/common.h"

namespace etlopt {

// Error codes for recoverable failures. Library code never throws; fallible
// operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kInfeasible,  // e.g. an ILP with no feasible integral solution
  kAborted,     // a run stopped mid-flight (crash fault, quarantine overflow)
};

// A lightweight status value in the style of absl::Status / arrow::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "InvalidArgument: bad join key".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error holder in the style of absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    ETLOPT_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ETLOPT_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    ETLOPT_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    ETLOPT_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates a non-OK Status from an expression.
#define ETLOPT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::etlopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define ETLOPT_CONCAT_INNER(a, b) a##b
#define ETLOPT_CONCAT(a, b) ETLOPT_CONCAT_INNER(a, b)

#define ETLOPT_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

// Assigns the value of a Result expression or propagates its Status.
#define ETLOPT_ASSIGN_OR_RETURN(lhs, expr) \
  ETLOPT_ASSIGN_OR_RETURN_IMPL(ETLOPT_CONCAT(_result_, __LINE__), lhs, expr)

}  // namespace etlopt

#endif  // ETLOPT_UTIL_STATUS_H_
