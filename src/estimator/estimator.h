#ifndef ETLOPT_ESTIMATOR_ESTIMATOR_H_
#define ETLOPT_ESTIMATOR_ESTIMATOR_H_

#include <unordered_map>

#include "css/css.h"
#include "planspace/block.h"
#include "stats/stat_store.h"

namespace etlopt {

// How one statistic value came to be during DeriveAll: either observed
// directly (a leaf of the derivation DAG) or derived by a CSS rule from
// the listed inputs. The provenance map is what lets the explain layer
// answer "which stored statistic fed this estimate".
struct StatProvenance {
  bool observed = true;
  RuleId rule = RuleId::kI1;    // meaningful only when !observed
  std::vector<StatKey> inputs;  // CSS inputs, empty for observed leaves
};

using ProvenanceMap =
    std::unordered_map<StatKey, StatProvenance, StatKeyHash>;

// Evaluates the CSS derivation DAG: starting from the observed statistic
// values, computes the value of every computable statistic using each rule's
// evaluation semantics (dot product for J1, multiply-through for J2/J3,
// union-division for J4/J5, predicate counting for S1, ...). With exact
// histograms every derived value is exact (Section 3.1), which is the
// library's central tested invariant.
class Estimator {
 public:
  Estimator(const BlockContext* ctx, const CssCatalog* catalog);

  // Derives everything derivable from `observed`. Fails if a rule's inputs
  // are inconsistent (modeling errors).
  Status DeriveAll(const StatStore& observed);

  // Value lookups after DeriveAll.
  bool Has(const StatKey& key) const { return derived_.Contains(key); }
  Result<int64_t> Cardinality(RelMask se) const;
  Result<int64_t> Count(const StatKey& key) const;
  Result<Histogram> Hist(const StatKey& key) const;

  // All SE cardinalities (for the join-order optimizer).
  Result<std::unordered_map<RelMask, int64_t>> AllCardinalities(
      const std::vector<RelMask>& subexpressions) const;

  const StatStore& derived() const { return derived_; }

  // Per-statistic provenance recorded by DeriveAll.
  const ProvenanceMap& provenance() const { return provenance_; }
  const StatProvenance* FindProvenance(const StatKey& key) const {
    auto it = provenance_.find(key);
    return it == provenance_.end() ? nullptr : &it->second;
  }

  // The observed leaves that transitively feed `key`'s value, deduplicated
  // in first-encounter (derivation) order. The key itself when observed.
  std::vector<StatKey> ObservedLeaves(const StatKey& key) const;

  // Confidence in the SE's cardinality estimate, in (0, 1]: 1.0 when the
  // value was derived purely from exact observations; a sketch-backed value
  // degrades to 1/(1 + rel_error); every observed leaf in `distrusted`
  // (e.g. drift-flagged keys) multiplies by `distrust_penalty`. An SE whose
  // Card the derivation never materialized scores 1.0 — its cardinality can
  // only have come from a direct counter observation.
  double CardinalityConfidence(RelMask se,
                               const std::vector<StatKey>& distrusted = {},
                               double distrust_penalty = 0.5) const;

  // Derived values clamped by DeriveAll's sanitization pass (negative
  // counts floored at zero, non-finite error bounds capped, zero-divisor
  // union-divisions treated as pass-through). Non-zero means some observed
  // input violated the exact-statistics invariants.
  int64_t clamped_values() const { return clamped_; }

 private:
  Result<StatValue> Evaluate(const CssEntry& entry);

  const BlockContext* ctx_;
  const CssCatalog* catalog_;
  StatStore derived_;
  ProvenanceMap provenance_;
  int64_t clamped_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_ESTIMATOR_ESTIMATOR_H_
