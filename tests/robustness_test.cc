// Integration tests for fault-tolerant execution: the crash fault matrix
// (abort -> partial ledger record -> next-run salvage feedback), tap
// degradation under injected allocation failure, checkpoint sidecars, and
// ledger corruption tolerance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "core/lifecycle.h"
#include "core/pipeline.h"
#include "obs/checkpoint.h"
#include "obs/drift.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/fault.h"

namespace etlopt {
namespace {

using fault::FaultInjector;

std::string TempPath(const std::string& name) {
  // Pid-qualified so the sanitizer twins of this suite can run under the
  // same ctest invocation without clobbering each other's files.
  const std::string path =
      ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

int64_t CounterValue(const char* name) {
  const obs::Counter* c = obs::MetricsRegistry::Global().FindCounter(name);
  return c == nullptr ? 0 : c->Get();
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(FaultInjector::InstallGlobal("").ok()); }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
  }
};

// The fault matrix of the acceptance criteria: >= 5 distinct injected crash
// points, each producing a partial=true ledger record whose salvaged
// statistics let the next (clean) run produce a plan at least as good as a
// cold start.
TEST_F(RobustnessTest, CrashMatrixYieldsPartialRecordsAndSalvageableRuns) {
  const char* kCrashSpecs[] = {
      "seed=13;op:source0:crash",                // first source
      "seed=13;op:source2:crash",                // last source
      "seed=13;op:join3:crash",                  // first join
      "seed=13;op:join4:crash",                  // second join
      "seed=13;op:sink:crash",                   // the sink
      "seed=13;op:join4:crash_after_rows=100",   // mid-stream crash
  };
  auto ex = testing_util::MakePaperExample();

  // Cold-start reference: a clean lifecycle with no history at all.
  const BudgetedLifecycleResult cold =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 1e9).value();
  ASSERT_FALSE(cold.aborted());

  for (const char* spec : kCrashSpecs) {
    SCOPED_TRACE(spec);
    const std::string ledger_path = TempPath("crash_matrix.jsonl");

    ASSERT_TRUE(FaultInjector::InstallGlobal(spec).ok());
    Pipeline pipeline;
    const Result<CycleOutcome> cycle =
        pipeline.RunCycle(ex.workflow, ex.sources);
    ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
    ASSERT_TRUE(cycle->aborted());
    EXPECT_EQ(cycle->run.exec.abort_kind, AbortKind::kCrash);

    // The partial record round-trips through the ledger.
    const obs::RunRecord record = MakeRunRecord(*cycle, "run-1");
    EXPECT_TRUE(record.partial);
    EXPECT_LT(record.completion, 1.0);
    EXPECT_FALSE(record.abort_reason.empty());
    obs::RunLedger ledger(ledger_path);
    ASSERT_TRUE(ledger.Append(record).ok());
    const auto loaded = ledger.Load();
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->records.size(), 1u);
    EXPECT_TRUE(loaded->records[0].partial);
    EXPECT_DOUBLE_EQ(loaded->records[0].completion, record.completion);

    // Next run, faults cleared: the lifecycle consumes the partial history
    // and must match the cold-start plan quality (same data, so the
    // salvage-seeded cost model may not make the plan any worse).
    ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
    const std::vector<obs::RunRecord> history = loaded->records;
    const Result<BudgetedLifecycleResult> next =
        RunBudgetedLifecycle(ex.workflow, ex.sources, 1e9, {}, &history);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_FALSE(next->aborted());
    EXPECT_LE(next->optimized_cost, cold.optimized_cost + 1e-9);
  }
}

// A crash past the first join leaves that join's statistics salvageable:
// the partial record carries real SE cardinalities, and the next lifecycle
// seeds its cost model from them (visible through the feedback counter).
TEST_F(RobustnessTest, PartialRecordCarriesSalvagedCardsThatSeedNextRun) {
  auto ex = testing_util::MakePaperExample();
  ASSERT_TRUE(FaultInjector::InstallGlobal("op:join4:crash").ok());
  Pipeline pipeline;
  const CycleOutcome cycle = pipeline.RunCycle(ex.workflow, ex.sources).value();
  ASSERT_TRUE(cycle.aborted());
  const obs::RunRecord record = MakeRunRecord(cycle, "run-1");
  EXPECT_TRUE(record.partial);
  // Sources and the first join completed: their cards were salvaged.
  EXPECT_FALSE(record.cards.empty());

  ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
  const int64_t fed_before = CounterValue("etlopt.core.partial_feedback_keys");
  const std::vector<obs::RunRecord> history{record};
  const Result<BudgetedLifecycleResult> next =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 1e9, {}, &history);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_FALSE(next->aborted());
  EXPECT_GT(CounterValue("etlopt.core.partial_feedback_keys"), fed_before);
}

// Satellite: sketch-tap fallback under injected allocation failure. A
// distinct tap whose exact collector "fails to allocate" retries as a
// bounded-memory sketch; when the sketch allocation fails too, the tap is
// disabled — either way the run completes with correct row counts.
TEST_F(RobustnessTest, TapAllocationFailureDowngradesToSketch) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  const ExecutionResult exec = Executor(&ex.workflow).Execute(ex.sources).value();

  const StatKey card_key = StatKey::Card(0b001);
  const StatKey distinct_key =
      StatKey::Distinct(0b001, AttrMask{1} << ex.prod_id);
  const std::vector<StatKey> keys{card_key, distinct_key};

  // Reference: exact observation.
  const StatStore exact = ObserveStatistics(ctx, exec, keys).value();
  const int64_t exact_distinct = exact.GetCount(distinct_key).value();

  // The first oom consult hits the exact collector; the sketch retry is
  // consulted separately and succeeds (count=1 budget is spent).
  ASSERT_TRUE(FaultInjector::InstallGlobal("tap:distinct:oom:count=1").ok());
  TapReport report;
  const StatStore degraded =
      ObserveStatistics(ctx, exec, keys, {}, &report).value();
  EXPECT_EQ(report.downgraded_taps, 1);
  EXPECT_EQ(report.disabled_taps, 0);
  // Row counts stay exact; the distinct estimate is approximate but close.
  EXPECT_EQ(degraded.GetCount(card_key).value(),
            exact.GetCount(card_key).value());
  const StatValue* approx = degraded.Find(distinct_key);
  ASSERT_NE(approx, nullptr);
  EXPECT_TRUE(approx->is_approx());
  EXPECT_NEAR(static_cast<double>(approx->count()),
              static_cast<double>(exact_distinct),
              0.2 * static_cast<double>(exact_distinct));
}

TEST_F(RobustnessTest, TapAllocationFailureDisablesTapAndRunCompletes) {
  auto ex = testing_util::MakePaperExample();
  const int64_t clean_rows = Executor(&ex.workflow)
                                 .Execute(ex.sources)
                                 ->targets.at("warehouse.orders")
                                 .num_rows();

  // Every tap allocation fails, sketch retries included.
  ASSERT_TRUE(FaultInjector::InstallGlobal("tap:*:oom").ok());
  Pipeline pipeline;
  const Result<CycleOutcome> cycle = pipeline.RunCycle(ex.workflow, ex.sources);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_FALSE(cycle->aborted());
  EXPECT_GT(cycle->run.tap_report.disabled_taps, 0);
  // The run itself is untouched: correct row counts, degraded optimization
  // keeps the designed join order instead of failing.
  EXPECT_EQ(cycle->run.exec.targets.at("warehouse.orders").num_rows(),
            clean_rows);
}

// Checkpoint sidecar: flushed during the run, kept (partial) on abort,
// discarded on clean completion.
TEST_F(RobustnessTest, CheckpointSidecarSurvivesAbortAndRoundTrips) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options;
  options.checkpoint_path = TempPath("robustness.ckpt");
  options.checkpoint_every_rows = 10;

  ASSERT_TRUE(FaultInjector::InstallGlobal("op:join4:crash").ok());
  Pipeline pipeline(options);
  const CycleOutcome cycle = pipeline.RunCycle(ex.workflow, ex.sources).value();
  ASSERT_TRUE(cycle.aborted());

  const Result<obs::TapCheckpoint> ckpt =
      obs::LoadTapCheckpoint(options.checkpoint_path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_TRUE(ckpt->partial);
  EXPECT_EQ(ckpt->fingerprint, obs::FingerprintWorkflow(ex.workflow));
  EXPECT_FALSE(ckpt->source_rows_read.empty());
  // The snapshot carries the salvaged statistics in stat_io round-trip form.
  bool any_stat = false;
  for (const StatStore& store : ckpt->block_stats) {
    if (!store.values().empty()) any_stat = true;
  }
  EXPECT_TRUE(any_stat);

  // A clean run over the same path removes the sidecar.
  ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
  const CycleOutcome clean =
      Pipeline(options).RunCycle(ex.workflow, ex.sources).value();
  ASSERT_FALSE(clean.aborted());
  EXPECT_TRUE(obs::LoadTapCheckpoint(options.checkpoint_path).status().code() ==
              StatusCode::kNotFound);
}

// Satellite: RunLedger::Load skips corrupt mid-file lines instead of
// failing the whole load, and counts them in a warning metric.
TEST_F(RobustnessTest, LedgerLoadSkipsCorruptMidFileLines) {
  const std::string path = TempPath("corrupt_ledger.jsonl");
  obs::RunRecord a;
  a.run_id = "run-1";
  a.fingerprint = "feedfacefeedface";
  obs::RunRecord b = a;
  b.run_id = "run-2";
  obs::RunLedger ledger(path);
  ASSERT_TRUE(ledger.Append(a).ok());
  ASSERT_TRUE(ledger.Append(b).ok());

  // Corrupt the middle: rewrite the file with garbage between the records.
  const auto loaded_clean = ledger.Load().value();
  ASSERT_EQ(loaded_clean.records.size(), 2u);
  {
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    in.close();
    std::ofstream out(path, std::ios::trunc);
    out << line1 << "\n"
        << "{\"run_id\": \"run-broken\", truncated garbage\n"
        << "not json at all\n"
        << line2 << "\n";
  }

  const int64_t skipped_before =
      CounterValue("etlopt.obs.ledger.skipped_lines");
  const auto loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->skipped_lines, 2);
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[0].run_id, "run-1");
  EXPECT_EQ(loaded->records[1].run_id, "run-2");
  EXPECT_EQ(CounterValue("etlopt.obs.ledger.skipped_lines"),
            skipped_before + 2);
}

// Clean-run ledger lines are byte-identical to the seed format: the
// robustness fields only serialize when they deviate from their defaults.
TEST_F(RobustnessTest, CleanRunLedgerLineHasNoRobustnessFields) {
  obs::RunRecord clean;
  clean.run_id = "run-1";
  clean.fingerprint = "feedfacefeedface";
  const std::string line = clean.ToJsonLine();
  EXPECT_EQ(line.find("\"partial\""), std::string::npos);
  EXPECT_EQ(line.find("\"abort_reason\""), std::string::npos);
  EXPECT_EQ(line.find("\"watermarks\""), std::string::npos);
  EXPECT_EQ(line.find("\"retries\""), std::string::npos);
  EXPECT_EQ(line.find("\"quarantined\""), std::string::npos);

  obs::RunRecord partial = clean;
  partial.partial = true;
  partial.abort_reason = "crash: injected";
  partial.completion = 0.5;
  partial.source_rows_read = {{"Orders", 400}};
  partial.source_retries = {{"Orders", 2}};
  partial.quarantined_rows = 4;
  const auto round = obs::RunRecord::FromJsonLine(partial.ToJsonLine());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(round->partial);
  EXPECT_EQ(round->abort_reason, "crash: injected");
  EXPECT_DOUBLE_EQ(round->completion, 0.5);
  EXPECT_EQ(round->source_rows_read, partial.source_rows_read);
  EXPECT_EQ(round->source_retries, partial.source_retries);
  EXPECT_EQ(round->quarantined_rows, 4);
}

// Partial-backed drift comparisons widen the thresholds: a change that
// counts as drift between two clean runs is tolerated when the current run
// is a salvaged prefix.
TEST_F(RobustnessTest, DriftWidensThresholdsForPartialRuns) {
  auto make_record = [](double actual, bool partial) {
    obs::RunRecord r;
    obs::RunRecord::SeCard card;
    card.block = 0;
    card.se = 0b1;
    card.actual = actual;
    r.cards.push_back(card);
    r.partial = partial;
    if (partial) r.completion = 0.5;
    return r;
  };
  const std::vector<obs::RunRecord> history{make_record(1000.0, false),
                                            make_record(1000.0, false)};
  // +80% change: rel_change 0.8 > 0.5 drifts clean, but not when widened
  // by partial_widen_factor 2.0 (threshold becomes 1.0; q-error 1.8 < 4).
  const obs::DriftReport clean_report =
      obs::DriftDetector().Compare(history, make_record(1800.0, false));
  ASSERT_EQ(clean_report.findings.size(), 1u);
  EXPECT_TRUE(clean_report.findings[0].drifted);
  EXPECT_FALSE(clean_report.findings[0].partial_backed);

  const obs::DriftReport partial_report =
      obs::DriftDetector().Compare(history, make_record(1800.0, true));
  ASSERT_EQ(partial_report.findings.size(), 1u);
  EXPECT_TRUE(partial_report.findings[0].partial_backed);
  EXPECT_FALSE(partial_report.findings[0].drifted);
}

// The whole fault pipeline is deterministic under a pinned seed: two
// identical faulted cycles abort at the same node with identical salvage.
TEST_F(RobustnessTest, FaultedCycleIsDeterministicUnderPinnedSeed) {
  auto run_once = [] {
    EXPECT_TRUE(FaultInjector::InstallGlobal(
                    "seed=99;source:Orders:malformed_row:p=0.3;"
                    "op:join4:crash_after_rows=200")
                    .ok());
    auto ex = testing_util::MakePaperExample();
    PipelineOptions options;
    options.executor.max_error_rate = 0.9;
    const CycleOutcome cycle =
        Pipeline(options).RunCycle(ex.workflow, ex.sources).value();
    const obs::RunRecord record = MakeRunRecord(cycle, "run-1");
    EXPECT_TRUE(record.partial);
    return std::make_tuple(record.completion, record.quarantined_rows,
                           record.abort_reason, record.cards.size());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace etlopt
