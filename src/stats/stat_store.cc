#include "stats/stat_store.h"
