#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/workload_suite.h"

namespace etlopt {
namespace {

// The library's central invariant, swept over the whole 30-workflow suite:
// with exact histograms, every SE cardinality estimated from the *selected*
// statistics equals the ground truth obtained by evaluating the SE directly
// (Section 3.1 scoping; rules of Section 4 are exact).
class ExactnessSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ExactnessSweep, SelectedStatisticsYieldExactCardinalities) {
  const int index = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const WorkloadSpec spec = BuildWorkload(index);
  const SourceMap sources = GenerateSources(spec, seed, 0.005);

  Pipeline pipeline;
  const Result<CycleOutcome> cycle =
      pipeline.RunCycle(spec.workflow, sources);
  ASSERT_TRUE(cycle.ok()) << spec.name << ": " << cycle.status().ToString();

  for (size_t b = 0; b < cycle->analysis->blocks.size(); ++b) {
    const BlockAnalysis& ba = *cycle->analysis->blocks[b];
    const auto truth =
        ComputeGroundTruthCards(ba.ctx, ba.plan_space.subexpressions(),
                                cycle->run.exec)
            .value();
    for (const auto& [se, card] : cycle->opt.block_cards[b]) {
      ASSERT_EQ(card, truth.at(se))
          << spec.name << " block " << b << " SE mask " << se;
    }
  }
  // And optimization can only improve the estimated cost.
  EXPECT_LE(cycle->opt.optimized_cost, cycle->opt.initial_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ExactnessSweep,
    ::testing::Combine(::testing::Range(1, 31), ::testing::Values(11u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return "wf" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// A second sweep at a different seed for a few structurally interesting
// workloads (reject links, boundaries, aggregates, snowflakes).
INSTANTIATE_TEST_SUITE_P(
    SeedVariation, ExactnessSweep,
    ::testing::Combine(::testing::Values(2, 3, 9, 10, 11, 12, 17, 25, 28,
                                         29, 30),
                       ::testing::Values(101u, 202u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return "wf" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Union-division disabled must remain exact (fewer CSS alternatives, same
// semantics).
class NoUdSweep : public ::testing::TestWithParam<int> {};

TEST_P(NoUdSweep, ExactWithoutUnionDivision) {
  const WorkloadSpec spec = BuildWorkload(GetParam());
  const SourceMap sources = GenerateSources(spec, 31, 0.005);
  PipelineOptions options;
  options.css.enable_union_division = false;
  Pipeline pipeline(options);
  const Result<CycleOutcome> cycle =
      pipeline.RunCycle(spec.workflow, sources);
  ASSERT_TRUE(cycle.ok()) << spec.name << ": " << cycle.status().ToString();
  for (size_t b = 0; b < cycle->analysis->blocks.size(); ++b) {
    const BlockAnalysis& ba = *cycle->analysis->blocks[b];
    const auto truth =
        ComputeGroundTruthCards(ba.ctx, ba.plan_space.subexpressions(),
                                cycle->run.exec)
            .value();
    for (const auto& [se, card] : cycle->opt.block_cards[b]) {
      ASSERT_EQ(card, truth.at(se)) << spec.name << " SE " << se;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Selected, NoUdSweep,
                         ::testing::Values(3, 5, 8, 12, 22, 24, 30));

}  // namespace
}  // namespace etlopt
