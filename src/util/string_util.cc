#include "util/string_util.h"

#include <cstdlib>

namespace etlopt {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string WithThousands(int64_t value) {
  const bool neg = value < 0;
  uint64_t v = neg ? -static_cast<uint64_t>(value) : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return std::string(out.rbegin(), out.rend());
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace etlopt
