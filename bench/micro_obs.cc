// Micro-benchmarks for the observability layer: what a counter bump, a
// histogram record, and a span open/close cost on the instrumented hot
// paths, enabled vs runtime-disabled. The acceptance bar is that the
// disabled path stays within ~2x of no instrumentation at all (it is one
// relaxed load + branch per site).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace etlopt {
namespace {

void BM_CounterAddEnabled(benchmark::State& state) {
  obs::SetObsEnabled(true);
  for (auto _ : state) {
    ETLOPT_COUNTER_ADD("bench.obs.counter_enabled", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddEnabled);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::SetObsEnabled(false);
  for (auto _ : state) {
    ETLOPT_COUNTER_ADD("bench.obs.counter_disabled", 1);
  }
  obs::SetObsEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddDisabled);

// Baseline: the same loop body with no instrumentation macro at all, for
// judging the disabled path against true zero cost.
void BM_CounterBaseline(benchmark::State& state) {
  int64_t local = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++local);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterBaseline);

void BM_BatchedCounter(benchmark::State& state) {
  obs::SetObsEnabled(true);
  obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("bench.obs.batched");
  for (auto _ : state) {
    obs::BatchedCounter batch(&c);
    for (int i = 0; i < 1024; ++i) batch.Increment();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BatchedCounter);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  obs::SetObsEnabled(true);
  int64_t v = 0;
  for (auto _ : state) {
    ETLOPT_HIST_RECORD("bench.obs.hist_enabled", ++v & 0xffff);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  obs::SetObsEnabled(false);
  int64_t v = 0;
  for (auto _ : state) {
    ETLOPT_HIST_RECORD("bench.obs.hist_disabled", ++v & 0xffff);
  }
  obs::SetObsEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.obs.span");
    benchmark::DoNotOptimize(&span);
    // Keep the event buffer bounded so the benchmark measures span cost,
    // not allocation growth.
    if (tracer.NumEvents() > 1u << 20) {
      state.PauseTiming();
      tracer.Clear();
      state.ResumeTiming();
    }
  }
  tracer.SetEnabled(false);
  tracer.Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanTracerOff(benchmark::State& state) {
  obs::SetObsEnabled(true);
  obs::Tracer::Global().SetEnabled(false);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.obs.span_off");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanTracerOff);

void BM_SpanObsDisabled(benchmark::State& state) {
  obs::SetObsEnabled(false);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.obs.span_disabled");
    benchmark::DoNotOptimize(&span);
  }
  obs::SetObsEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanObsDisabled);

// The fault-injection guard on the executor hot paths when no spec is
// installed (ETLOPT_FAULT_SPEC unset): one pointer load + null branch.
// This is the configuration every production run pays for, so it must be
// indistinguishable from the uninstrumented baseline.
void BM_FaultGuardDisabled(benchmark::State& state) {
  benchmark::DoNotOptimize(fault::FaultInjector::InstallGlobal("").ok());
  int64_t fired = 0;
  for (auto _ : state) {
    const fault::FaultInjector* inj = fault::FaultInjector::Global();
    if (inj != nullptr && inj->HasRules(fault::Scope::kSource, "orders")) {
      ++fired;
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultGuardDisabled);

// The same guard with an injector installed whose rules target a different
// site: the per-row cost of running *near* a fault spec without matching it.
void BM_FaultGuardNonMatching(benchmark::State& state) {
  benchmark::DoNotOptimize(
      fault::FaultInjector::InstallGlobal("source:other:io_error").ok());
  int64_t fired = 0;
  for (auto _ : state) {
    const fault::FaultInjector* inj = fault::FaultInjector::Global();
    if (inj != nullptr && inj->HasRules(fault::Scope::kSource, "orders")) {
      ++fired;
    }
    benchmark::DoNotOptimize(fired);
  }
  benchmark::DoNotOptimize(fault::FaultInjector::InstallGlobal("").ok());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultGuardNonMatching);

// The profiler guard on the executor's per-operator path when profiling is
// off (the default): two relaxed loads + a branch, taken once per operator
// rather than per row. Must stay at the same order as the fault guard.
void BM_ProfilerGuardDisabled(benchmark::State& state) {
  obs::SetProfilerEnabled(false);
  int64_t ns = 0;
  for (auto _ : state) {
    if (obs::ProfilerEnabled()) ns += obs::ProfileNowNs();
    benchmark::DoNotOptimize(ns);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerGuardDisabled);

// The plan-regression guard's runtime-monitor check on FinishNodeStep when
// no monitors are armed (every run without ledger history, and every run
// with --guard=off): one empty-map branch per completed node. Must stay at
// the same order as the fault and profiler guards.
void BM_GuardMonitorDisabled(benchmark::State& state) {
  const std::unordered_map<NodeId, PlanMonitor> monitors;
  int64_t fired = 0;
  NodeId node = 0;
  for (auto _ : state) {
    if (!monitors.empty()) {
      const auto it = monitors.find(node);
      if (it != monitors.end() && it->second.expected_rows >= 0.0) ++fired;
    }
    ++node;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardMonitorDisabled);

// The armed cost per node: a hash lookup plus two divisions — what
// --guard with ledger history adds to each completed node (node count,
// not row count, so this never touches the per-row hot path).
void BM_GuardMonitorArmed(benchmark::State& state) {
  std::unordered_map<NodeId, PlanMonitor> monitors;
  for (NodeId n = 0; n < 16; ++n) {
    PlanMonitor m;
    m.expected_rows = 1000.0;
    monitors.emplace(n, m);
  }
  int64_t fired = 0;
  NodeId node = 0;
  for (auto _ : state) {
    if (!monitors.empty()) {
      const auto it = monitors.find(node % 16);
      if (it != monitors.end() && it->second.expected_rows >= 0.0) {
        const double actual = 995.0;
        const double qerror = std::max(it->second.expected_rows / actual,
                                       actual / it->second.expected_rows);
        if (qerror > 4.0) ++fired;
      }
    }
    ++node;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardMonitorArmed);

// The enabled cost per operator: two steady-clock reads bracketing the
// operator body — what `advisor run --profile` adds to each node.
void BM_ProfilerTimestampEnabled(benchmark::State& state) {
  obs::SetObsEnabled(true);
  obs::SetProfilerEnabled(true);
  int64_t ns = 0;
  for (auto _ : state) {
    if (obs::ProfilerEnabled()) ns += obs::ProfileNowNs();
    benchmark::DoNotOptimize(ns);
  }
  obs::SetProfilerEnabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerTimestampEnabled);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
