#include "etl/transforms.h"

namespace etlopt {
namespace transforms {

Value Identity(Value v) { return v; }
Value PlusOne(Value v) { return v + 1; }
Value Standardize(Value v) { return v * 2 + 1; }
Value BucketizeBy10(Value v) { return v / 10 + 1; }
Value Negate(Value v) { return -v; }
Value Mod100(Value v) { return (v - 1) % 100 + 1; }

}  // namespace transforms

namespace {

using TransformFn = Value (*)(Value);

struct Entry {
  const char* name;
  TransformFn fn;
};

constexpr Entry kRegistry[] = {
    {"identity", transforms::Identity},
    {"plus_one", transforms::PlusOne},
    {"standardize", transforms::Standardize},
    {"bucketize10", transforms::BucketizeBy10},
    {"negate", transforms::Negate},
    {"mod100", transforms::Mod100},
};

}  // namespace

std::string LookupTransformName(const std::function<Value(Value)>& fn) {
  const TransformFn* target = fn.target<TransformFn>();
  if (target == nullptr) return "";
  for (const Entry& e : kRegistry) {
    if (e.fn == *target) return e.name;
  }
  return "";
}

std::function<Value(Value)> LookupTransformByName(const std::string& name) {
  for (const Entry& e : kRegistry) {
    if (name == e.name) return e.fn;
  }
  return {};
}

std::vector<std::string> RegisteredTransformNames() {
  std::vector<std::string> names;
  for (const Entry& e : kRegistry) names.push_back(e.name);
  return names;
}

}  // namespace etlopt
