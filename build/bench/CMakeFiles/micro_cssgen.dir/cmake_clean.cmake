file(REMOVE_RECURSE
  "CMakeFiles/micro_cssgen.dir/micro_cssgen.cc.o"
  "CMakeFiles/micro_cssgen.dir/micro_cssgen.cc.o.d"
  "micro_cssgen"
  "micro_cssgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cssgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
