#ifndef ETLOPT_STATS_STAT_STORE_H_
#define ETLOPT_STATS_STAT_STORE_H_

#include <unordered_map>
#include <utility>

#include "stats/histogram.h"
#include "stats/stat_key.h"
#include "util/status.h"

namespace etlopt {

// The value of a statistic: a count (Card / Distinct / RejectJoinCard) or a
// histogram (Hist / RejectJoinHist).
class StatValue {
 public:
  StatValue() : is_count_(true), count_(0) {}
  static StatValue Count(int64_t count) {
    StatValue v;
    v.is_count_ = true;
    v.count_ = count;
    return v;
  }
  static StatValue Hist(Histogram hist) {
    StatValue v;
    v.is_count_ = false;
    v.hist_ = std::move(hist);
    return v;
  }

  bool is_count() const { return is_count_; }
  int64_t count() const {
    ETLOPT_CHECK(is_count_);
    return count_;
  }
  const Histogram& hist() const {
    ETLOPT_CHECK(!is_count_);
    return hist_;
  }

 private:
  bool is_count_;
  int64_t count_ = 0;
  Histogram hist_;
};

// Observed and derived statistic values, keyed by StatKey. One store per
// (block, run).
class StatStore {
 public:
  void Set(const StatKey& key, StatValue value) {
    values_[key] = std::move(value);
  }

  bool Contains(const StatKey& key) const {
    return values_.find(key) != values_.end();
  }

  const StatValue* Find(const StatKey& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
  }

  Result<int64_t> GetCount(const StatKey& key) const {
    const StatValue* v = Find(key);
    if (v == nullptr) return Status::NotFound(key.ToString());
    if (!v->is_count()) {
      return Status::Internal("statistic is not a count: " + key.ToString());
    }
    return v->count();
  }

  Result<Histogram> GetHist(const StatKey& key) const {
    const StatValue* v = Find(key);
    if (v == nullptr) return Status::NotFound(key.ToString());
    if (v->is_count()) {
      return Status::Internal("statistic is not a histogram: " +
                              key.ToString());
    }
    return v->hist();
  }

  size_t size() const { return values_.size(); }

  const std::unordered_map<StatKey, StatValue, StatKeyHash>& values() const {
    return values_;
  }

 private:
  std::unordered_map<StatKey, StatValue, StatKeyHash> values_;
};

}  // namespace etlopt

#endif  // ETLOPT_STATS_STAT_STORE_H_
