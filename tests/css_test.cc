#include <gtest/gtest.h>

#include <algorithm>

#include "css/generator.h"
#include "test_util.h"

namespace etlopt {
namespace {

struct PaperCss : ::testing::Test {
  void SetUp() override {
    ex = testing_util::MakePaperExample();
    const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
    ASSERT_EQ(blocks.size(), 1u);
    ctx = BlockContext::Build(&ex.workflow, blocks[0]).value();
    ps = PlanSpace::Build(ctx).value();
  }

  // Finds a CSS of `target` whose inputs (as a set) equal `inputs`.
  static bool HasCss(const CssCatalog& catalog, const StatKey& target,
                     std::vector<StatKey> inputs) {
    const int t = catalog.IndexOf(target);
    if (t < 0) return false;
    for (int c : catalog.css_of(t)) {
      std::vector<StatKey> got = catalog.entry(c).inputs;
      if (got.size() != inputs.size()) continue;
      bool all = true;
      for (const StatKey& want : inputs) {
        if (std::find(got.begin(), got.end(), want) == got.end()) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  testing_util::PaperExample ex;
  BlockContext ctx;
  PlanSpace ps;
};

// Section 4.3 walk-through: rels O=0b001, P=0b010, C=0b100.
TEST_F(PaperCss, J1GeneratesJoinAttributeHistogramCss) {
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const AttrMask pid = AttrMask{1} << ex.prod_id;
  const AttrMask cid = AttrMask{1} << ex.cust_id;
  // |OPC| <- {H^cid_OP, H^cid_C} via plan (OP, C).
  EXPECT_TRUE(HasCss(catalog, StatKey::Card(0b111),
                     {StatKey::Hist(0b011, cid), StatKey::Hist(0b100, cid)}));
  // |OPC| <- {H^pid_OC, H^pid_P} via plan (OC, P).
  EXPECT_TRUE(HasCss(catalog, StatKey::Card(0b111),
                     {StatKey::Hist(0b101, pid), StatKey::Hist(0b010, pid)}));
  // |OP| <- {H^pid_O, H^pid_P}.
  EXPECT_TRUE(HasCss(catalog, StatKey::Card(0b011),
                     {StatKey::Hist(0b001, pid), StatKey::Hist(0b010, pid)}));
}

TEST_F(PaperCss, J2GeneratesJointDistributionCss) {
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const AttrMask pid = AttrMask{1} << ex.prod_id;
  const AttrMask cid = AttrMask{1} << ex.cust_id;
  // H^pid_OC <- {H^{pid,cid}_O, H^cid_C} (rule J2, Section 4.3).
  EXPECT_TRUE(HasCss(catalog, StatKey::Hist(0b101, pid),
                     {StatKey::Hist(0b001, pid | cid),
                      StatKey::Hist(0b100, cid)}));
  // H^cid_OP <- {H^{cid,pid}_O, H^pid_P}.
  EXPECT_TRUE(HasCss(catalog, StatKey::Hist(0b011, cid),
                     {StatKey::Hist(0b001, pid | cid),
                      StatKey::Hist(0b010, pid)}));
}

TEST_F(PaperCss, UnionDivisionGeneratesJ4J5) {
  CssGenOptions with_ud;
  with_ud.enable_union_division = true;
  const CssCatalog catalog = GenerateCss(ctx, ps, with_ud);
  const AttrMask pid = AttrMask{1} << ex.prod_id;
  // |OC| via union-division: O's next designed partner is P; OCP == full is
  // on-path. Inputs: H^pid_OPC, H^pid_P, |reject(O wrt P) ⋈ C|.
  EXPECT_TRUE(HasCss(catalog, StatKey::Card(0b101),
                     {StatKey::Hist(0b111, pid), StatKey::Hist(0b010, pid),
                      StatKey::RejectJoinCard(0b001, 1, 0b100)}));
}

TEST_F(PaperCss, UnionDivisionCanBeDisabled) {
  CssGenOptions no_ud;
  no_ud.enable_union_division = false;
  const CssCatalog catalog = GenerateCss(ctx, ps, no_ud);
  for (int c = 0; c < catalog.num_css(); ++c) {
    EXPECT_NE(catalog.entry(c).rule, RuleId::kJ4);
    EXPECT_NE(catalog.entry(c).rule, RuleId::kJ5);
  }
  // And no reject statistics should exist at all.
  for (int s = 0; s < catalog.num_stats(); ++s) {
    EXPECT_FALSE(catalog.stat(s).is_reject());
  }
}

TEST_F(PaperCss, UnionDivisionAddsCss) {
  CssGenOptions no_ud;
  no_ud.enable_union_division = false;
  const CssCatalog without = GenerateCss(ctx, ps, no_ud);
  const CssCatalog with = GenerateCss(ctx, ps, {});
  EXPECT_GT(with.num_css(), without.num_css());
}

TEST_F(PaperCss, IdentityRulesOnlyUseExistingStats) {
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const AttrMask pid = AttrMask{1} << ex.prod_id;
  const AttrMask cid = AttrMask{1} << ex.cust_id;
  // I1: |O| <- {H^{pid,cid}_O} — that histogram exists from J2 recursion.
  EXPECT_TRUE(HasCss(catalog, StatKey::Card(0b001),
                     {StatKey::Hist(0b001, pid | cid)}));
  // I2: H^pid_O <- {H^{pid,cid}_O}.
  EXPECT_TRUE(HasCss(catalog, StatKey::Hist(0b001, pid),
                     {StatKey::Hist(0b001, pid | cid)}));
  // The identity pass must not have invented new statistics: every stat in
  // a CSS target/input set is in the catalog by construction, and no
  // histogram with attributes outside the schema exists.
  for (int s = 0; s < catalog.num_stats(); ++s) {
    const StatKey& key = catalog.stat(s);
    if (key.kind == StatKind::kHist) {
      EXPECT_TRUE(IsSubset(key.attrs, ctx.SchemaMask(key.rels)))
          << key.ToString(&ex.workflow.catalog());
    }
  }
}

TEST_F(PaperCss, EveryRequiredCardHasTrivialOrDerivedPath) {
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  for (RelMask se : ps.subexpressions()) {
    EXPECT_GE(catalog.IndexOf(StatKey::Card(se)), 0);
  }
}

TEST(CssChainTest, FilterRulesS1S2) {
  WorkflowBuilder b("chain");
  const AttrId k = b.DeclareAttr("k", 10);
  const AttrId x = b.DeclareAttr("x", 10);
  const NodeId a = b.Source("A", {k, x});
  const NodeId f = b.Filter(a, {x, CompareOp::kLt, 5});
  const NodeId d = b.Source("D", {k});
  const NodeId j = b.Join(f, d, k);
  b.Sink(j, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});

  const AttrMask kbit = AttrMask{1} << k;
  const AttrMask xbit = AttrMask{1} << x;
  // |A_filtered| (singleton top of rel 0) <- S1 {H^x at stage 0}.
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::Card(0b01),
                               {StatKey::HistStage(0, 0, xbit)}));
  // H^k of the filtered top <- S2 {H^{k,x} at stage 0}.
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::Hist(0b01, kbit),
                               {StatKey::HistStage(0, 0, kbit | xbit)}));
}

TEST(CssChainTest, GroupByRulesG1G2) {
  WorkflowBuilder b("g");
  const AttrId k = b.DeclareAttr("k", 10);
  const AttrId x = b.DeclareAttr("x", 10);
  const NodeId a = b.Source("A", {k, x});
  const NodeId g = b.Aggregate(a, {k});
  const NodeId d = b.Source("D", {k});
  const NodeId j = b.Join(g, d, k);
  b.Sink(j, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  ASSERT_EQ(blocks.size(), 1u);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const AttrMask kbit = AttrMask{1} << k;
  (void)x;
  // G1: |G(A,k)| <- {D^k at stage 0}.
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::Card(0b01),
                               {StatKey::DistinctStage(0, 0, kbit)}));
  // G2: H^k of group-by output <- {H^k at stage 0}.
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::Hist(0b01, kbit),
                               {StatKey::HistStage(0, 0, kbit)}));
  // D1 identity: D^k at stage 0 <- {H^k at stage 0}.
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::DistinctStage(0, 0, kbit),
                               {StatKey::HistStage(0, 0, kbit)}));
}

TEST(CssFkTest, FkRuleGeneratesCardShortcut) {
  WorkflowBuilder b("fk");
  const AttrId k = b.DeclareAttr("k", 100);
  const AttrId k2 = b.DeclareAttr("k2", 100);
  const NodeId fact = b.Source("F", {k, k2});
  const NodeId dim = b.Source("D", {k});
  const NodeId dim2 = b.Source("D2", {k2});
  JoinOptions fk;
  fk.fk_lookup = true;
  const NodeId j1 = b.Join(fact, dim, k, fk);
  const NodeId j2 = b.Join(j1, dim2, k2, fk);
  b.Sink(j2, "out");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  // |F ⋈ D| = |F| via the FK shortcut (rel 0 = F, rel 1 = D).
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::Card(0b011),
                               {StatKey::Card(0b001)}));
  // And the full SE via |F ⋈ D2|.
  EXPECT_TRUE(PaperCss::HasCss(catalog, StatKey::Card(0b111),
                               {StatKey::Card(0b101)}));

  CssGenOptions no_fk;
  no_fk.enable_fk_rules = false;
  const CssCatalog without = GenerateCss(ctx, ps, no_fk);
  EXPECT_FALSE(PaperCss::HasCss(without, StatKey::Card(0b011),
                                {StatKey::Card(0b001)}));
}

}  // namespace
}  // namespace etlopt
