#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace etlopt {
namespace obs {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_ns_(SteadyNowNs()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

int Tracer::TidLocked() {
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<int>(tids_.size()) + 1);
  return it->second;
}

int Tracer::CurrentTid() {
  std::lock_guard<std::mutex> lock(mu_);
  return TidLocked();
}

void Tracer::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

int64_t Tracer::RegisterOpen(const char* name, int64_t start_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t id = next_open_id_++;
  open_spans_.emplace(id, OpenSpan{name, start_ns, TidLocked()});
  return id;
}

void Tracer::AppendAndResolve(int64_t open_id, TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  open_spans_.erase(open_id);
  events_.push_back(std::move(event));
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t Tracer::NumOpenSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  // Open spans are kept: their ScopedSpans are live on some stack and will
  // resolve later; dropping them here would turn those into untracked spans.
}

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  // Fixed-point microseconds with ns resolution: keeps timestamp ordering
  // (and therefore span nesting) exact in the viewer.
  out << std::fixed << std::setprecision(3);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata first: name the process and every thread that recorded an
  // event, so Perfetto / chrome://tracing open with labeled rows instead of
  // bare pid/tid integers.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"etlopt\"}}";
  first = false;
  {
    std::vector<int> tids;
    for (const TraceEvent& e : events_) tids.push_back(e.tid);
    for (const auto& [id, span] : open_spans_) {
      (void)id;
      tids.push_back(span.tid);
    }
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (int tid : tids) {
      const std::string label =
          tid == 1 ? "main" : "worker-" + std::to_string(tid);
      out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << tid << ",\"args\":{\"name\":" << JsonQuote(label) << "}}";
    }
  }
  for (const TraceEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":" << JsonQuote(e.name) << ",\"cat\":\"etlopt\",\"ph\":\""
        << e.ph << "\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << static_cast<double>(e.start_ns) / 1000.0;
    if (e.ph == 'X') {
      out << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    }
    if (!e.args.empty()) {
      out << ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : e.args) {
        if (!afirst) out << ",";
        afirst = false;
        out << JsonQuote(k) << ":" << v;
      }
      out << "}";
    }
    out << "}";
  }
  // Spans still open when the trace is serialized — an aborted run, or a
  // dump taken from inside a span — become unmatched begin events. Both
  // chrome://tracing and Perfetto render these as open-ended slices, so a
  // partial trace is always a loadable document.
  std::vector<std::pair<int64_t, const OpenSpan*>> open;
  open.reserve(open_spans_.size());
  for (const auto& [id, span] : open_spans_) open.emplace_back(id, &span);
  std::sort(open.begin(), open.end());
  for (const auto& [id, span] : open) {
    (void)id;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":" << JsonQuote(span->name)
        << ",\"cat\":\"etlopt\",\"ph\":\"B\",\"pid\":1,\"tid\":" << span->tid
        << ",\"ts\":" << static_cast<double>(span->start_ns) / 1000.0 << "}";
  }
  out << "]}";
  return out.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open trace temp file: " + tmp);
    }
    out << json;
    out.flush();
    if (!out) {
      return Status::Internal("failed writing trace temp file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("failed renaming trace file into place: " + path);
  }
  return Status::OK();
}

#ifndef ETLOPT_OBS_DISABLED
void ScopedSpan::Arg(const std::string& key, const std::string& value) {
  if (tracer_ != nullptr) args_.emplace_back(key, JsonQuote(value));
}
#endif

}  // namespace obs
}  // namespace etlopt
