// Integrating existing source statistics (Section 6.2): when some sources
// are relational systems, their histograms may already exist. The framework
// adds them to the observable set at zero cost, so selection automatically
// leans on them and only instruments what is genuinely missing.
//
// Scenario: the Customer dimension lives in a DBMS that maintains a
// histogram on customer_sk; Orders and Product are flat files with nothing.
//
// Build & run:  ./build/examples/source_statistics

#include <cstdio>

#include "core/pipeline.h"
#include "css/generator.h"
#include "etl/workflow_builder.h"
#include "opt/greedy_selector.h"

using namespace etlopt;

int main() {
  WorkflowBuilder builder("orders_load");
  const AttrId prod_id = builder.DeclareAttr("prod_id", 9000);
  const AttrId cust_id = builder.DeclareAttr("cust_id", 2000);
  const NodeId orders = builder.Source("Orders", {prod_id, cust_id});
  const NodeId product = builder.Source("Product", {prod_id});
  const NodeId customer = builder.Source("Customer", {cust_id});
  const NodeId op = builder.Join(orders, product, prod_id);
  builder.Sink(builder.Join(op, customer, cust_id), "warehouse.orders");
  const Workflow workflow = std::move(builder).Build().value();

  const std::vector<Block> blocks = PartitionBlocks(workflow);
  const BlockContext ctx =
      BlockContext::Build(&workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  const CostModel cost_model(&workflow.catalog(), {});

  // Without source statistics.
  const SelectionProblem plain =
      BuildSelectionProblem(ctx, ps, catalog, cost_model);
  const SelectionResult without = SelectGreedy(plain);

  // Customer (= rel index 2 in this block) exports H^{cust_id} for free.
  SelectionOptions options;
  options.free_source_stats.push_back(
      StatKey::Hist(RelMask{0b100}, AttrMask{1} << cust_id));
  const SelectionProblem with_stats =
      BuildSelectionProblem(ctx, ps, catalog, cost_model, options);
  const SelectionResult with = SelectGreedy(with_stats);

  auto report = [&](const char* label, const SelectionResult& r) {
    std::printf("%s: cost %.0f units, observing:\n", label, r.total_cost);
    for (const StatKey& key : r.ObservedKeys(catalog)) {
      std::printf("  %s\n", key.ToString(&workflow.catalog()).c_str());
    }
  };
  report("without source statistics", without);
  std::printf("\n");
  report("with DBMS histogram on Customer(cust_id) free", with);
  std::printf("\nsavings: %.0f units (%.1f%%)\n",
              without.total_cost - with.total_cost,
              100.0 * (without.total_cost - with.total_cost) /
                  without.total_cost);
  return 0;
}
