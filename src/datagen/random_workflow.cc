#include "datagen/random_workflow.h"

#include "etl/transforms.h"
#include "etl/workflow_builder.h"

namespace etlopt {

WorkloadSpec GenerateRandomWorkflow(uint64_t seed,
                                    const RandomWorkflowOptions& options) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  const int n = static_cast<int>(
      rng.NextInRange(options.min_rels, options.max_rels));

  WorkflowBuilder b("random_" + std::to_string(seed));
  std::vector<TableSpec> tables;

  // Random join tree: edge i links rel i to a random earlier rel.
  struct Edge {
    int parent;
    AttrId key;
  };
  std::vector<Edge> edges;  // edges[i-1] belongs to rel i
  std::unordered_map<AttrId, int64_t> key_domain;
  for (int i = 1; i < n; ++i) {
    const int64_t domain =
        rng.NextInRange(options.min_key_domain, options.max_key_domain);
    const AttrId key = b.DeclareAttr("key_" + std::to_string(i), domain);
    key_domain[key] = domain;
    edges.push_back(Edge{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i))), key});
  }
  std::vector<std::vector<AttrId>> keys_of(static_cast<size_t>(n));
  for (int i = 1; i < n; ++i) {
    keys_of[static_cast<size_t>(i)].push_back(edges[static_cast<size_t>(i - 1)].key);
    keys_of[static_cast<size_t>(edges[static_cast<size_t>(i - 1)].parent)]
        .push_back(edges[static_cast<size_t>(i - 1)].key);
  }

  // Sources with payloads + random operator chains.
  std::vector<NodeId> tops(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    const AttrId payload = b.DeclareAttr("pay_" + std::to_string(r),
                                         rng.NextInRange(10, 60));
    std::vector<AttrId> cols = keys_of[static_cast<size_t>(r)];
    cols.push_back(payload);

    TableSpec spec;
    spec.name = "T" + std::to_string(r);
    spec.rows = rng.NextInRange(options.min_rows, options.max_rows);
    for (AttrId a : cols) {
      // Mix of uniform and Zipf key columns.
      spec.columns.push_back(
          rng.NextDouble() < 0.5
              ? ColumnSpec{a, ColumnGen::kUniform, 0.0, 0, 0.0, {}}
              : ColumnSpec{a, ColumnGen::kZipf, 1.1, 0, 0.0, {}});
    }
    tables.push_back(std::move(spec));
    NodeId node = b.Source("T" + std::to_string(r), cols);

    if (rng.NextDouble() < options.filter_prob) {
      const Value cut = rng.NextInRange(5, 55);
      node = b.Filter(node, Predicate{payload, CompareOp::kLe, cut});
    }
    if (!keys_of[static_cast<size_t>(r)].empty() &&
        rng.NextDouble() < options.key_filter_prob) {
      const AttrId key = keys_of[static_cast<size_t>(r)][static_cast<size_t>(
          rng.NextBounded(keys_of[static_cast<size_t>(r)].size()))];
      // Keep ~60-95% of the key's domain so joins rarely run empty.
      const int64_t domain = key_domain.at(key);
      const Value cut = rng.NextInRange((domain * 3) / 5, domain);
      node = b.Filter(node, Predicate{key, CompareOp::kLe, cut});
    }
    if (rng.NextDouble() < options.transform_prob) {
      node = b.Transform(node, payload, transforms::Mod100);
    }
    if (!keys_of[static_cast<size_t>(r)].empty() &&
        rng.NextDouble() < options.groupby_prob) {
      node = b.Aggregate(node, keys_of[static_cast<size_t>(r)]);
    }
    tops[static_cast<size_t>(r)] = node;
  }

  // Random left-deep designed join order: grow a connected set.
  std::vector<char> in_set(static_cast<size_t>(n), 0);
  const int start = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n)));
  in_set[static_cast<size_t>(start)] = 1;
  NodeId flow = tops[static_cast<size_t>(start)];
  for (int step = 1; step < n; ++step) {
    // Candidate rels adjacent to the current set.
    std::vector<std::pair<int, AttrId>> frontier;
    for (int i = 1; i < n; ++i) {
      const Edge& e = edges[static_cast<size_t>(i - 1)];
      const bool a_in = in_set[static_cast<size_t>(i)];
      const bool b_in = in_set[static_cast<size_t>(e.parent)];
      if (a_in != b_in) {
        frontier.push_back({a_in ? e.parent : i, e.key});
      }
    }
    ETLOPT_CHECK(!frontier.empty());
    const auto [rel, key] =
        frontier[static_cast<size_t>(rng.NextBounded(frontier.size()))];
    JoinOptions join_options;
    join_options.reject_link = rng.NextDouble() < options.reject_prob;
    flow = b.Join(flow, tops[static_cast<size_t>(rel)], key, join_options);
    in_set[static_cast<size_t>(rel)] = 1;
  }
  b.Sink(flow, "warehouse.random");

  Result<Workflow> wf = std::move(b).Build();
  ETLOPT_CHECK_MSG(wf.ok(), wf.status().ToString());
  WorkloadSpec spec;
  spec.name = "random_" + std::to_string(seed);
  spec.workflow = std::move(wf).value();
  spec.tables = std::move(tables);
  return spec;
}

}  // namespace etlopt
