// Fuzz sweep: the exactness invariant over randomly generated workflows —
// random join trees, random operator chains (filters on keys and payloads,
// transforms, group-bys), random designed join orders, random reject links.
// Far broader structural coverage than the curated 30-workflow suite.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/random_workflow.h"
#include "etl/workflow_io.h"

namespace etlopt {
namespace {

class RandomWorkflowSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkflowSweep, PipelineEstimatesExactly) {
  const WorkloadSpec spec = GenerateRandomWorkflow(GetParam());
  SCOPED_TRACE(spec.workflow.ToString());
  const SourceMap sources = GenerateSources(spec, GetParam() * 31 + 7);

  Pipeline pipeline;
  const Result<CycleOutcome> cycle =
      pipeline.RunCycle(spec.workflow, sources);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();

  for (size_t b = 0; b < cycle->analysis->blocks.size(); ++b) {
    const BlockAnalysis& ba = *cycle->analysis->blocks[b];
    const auto truth =
        ComputeGroundTruthCards(ba.ctx, ba.plan_space.subexpressions(),
                                cycle->run.exec)
            .value();
    for (const auto& [se, card] : cycle->opt.block_cards[b]) {
      ASSERT_EQ(card, truth.at(se)) << "block " << b << " SE " << se;
    }
  }

  // The optimized workflow computes the same result.
  const ExecutionResult again =
      Executor(&cycle->opt.optimized).Execute(sources).value();
  for (const auto& [target, table] : cycle->run.exec.targets) {
    const Table& other = again.targets.at(target);
    ASSERT_EQ(table.num_rows(), other.num_rows()) << target;
    const AttrMask mask = table.schema().mask();
    ASSERT_EQ(mask, other.schema().mask()) << target;
    EXPECT_TRUE(table.BuildHistogram(mask) == other.BuildHistogram(mask))
        << target;
  }
}

TEST_P(RandomWorkflowSweep, SerializationRoundTrips) {
  const WorkloadSpec spec = GenerateRandomWorkflow(GetParam());
  Status status;
  const std::string text = WriteWorkflowText(spec.workflow, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const Result<Workflow> parsed = ParseWorkflowText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  Status status2;
  EXPECT_EQ(WriteWorkflowText(*parsed, &status2), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkflowSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

TEST(RandomWorkflowTest, GeneratorIsDeterministic) {
  const WorkloadSpec a = GenerateRandomWorkflow(99);
  const WorkloadSpec b = GenerateRandomWorkflow(99);
  EXPECT_EQ(a.workflow.ToString(), b.workflow.ToString());
  EXPECT_EQ(a.tables.size(), b.tables.size());
}

TEST(RandomWorkflowTest, ProducesVariedStructures) {
  int with_rejects = 0;
  int with_groupbys = 0;
  int multi_block = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const WorkloadSpec spec = GenerateRandomWorkflow(seed);
    for (const WorkflowNode& node : spec.workflow.nodes()) {
      if (node.kind == OpKind::kJoin && node.join.left_reject_link) {
        ++with_rejects;
        break;
      }
    }
    for (const WorkflowNode& node : spec.workflow.nodes()) {
      if (node.kind == OpKind::kAggregate) {
        ++with_groupbys;
        break;
      }
    }
    if (PartitionBlocks(spec.workflow).size() > 1) ++multi_block;
  }
  EXPECT_GT(with_rejects, 3);
  EXPECT_GT(with_groupbys, 3);
  EXPECT_GT(multi_block, 3);
}

}  // namespace
}  // namespace etlopt
