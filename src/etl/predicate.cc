#include "etl/predicate.h"

namespace etlopt {

bool Predicate::Matches(Value v) const {
  switch (op) {
    case CompareOp::kEq:
      return v == constant;
    case CompareOp::kNe:
      return v != constant;
    case CompareOp::kLt:
      return v < constant;
    case CompareOp::kLe:
      return v <= constant;
    case CompareOp::kGt:
      return v > constant;
    case CompareOp::kGe:
      return v >= constant;
  }
  return false;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Predicate::ToString(const AttrCatalog& catalog) const {
  return catalog.name(attr) + " " + CompareOpName(op) + " " +
         std::to_string(constant);
}

}  // namespace etlopt
