
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/approx_estimator.cc" "src/CMakeFiles/etlopt.dir/approx/approx_estimator.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/approx/approx_estimator.cc.o.d"
  "/root/repo/src/approx/dhistogram.cc" "src/CMakeFiles/etlopt.dir/approx/dhistogram.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/approx/dhistogram.cc.o.d"
  "/root/repo/src/core/lifecycle.cc" "src/CMakeFiles/etlopt.dir/core/lifecycle.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/core/lifecycle.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/etlopt.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/etlopt.dir/core/report.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/core/report.cc.o.d"
  "/root/repo/src/css/css.cc" "src/CMakeFiles/etlopt.dir/css/css.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/css/css.cc.o.d"
  "/root/repo/src/css/generator.cc" "src/CMakeFiles/etlopt.dir/css/generator.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/css/generator.cc.o.d"
  "/root/repo/src/css/rules.cc" "src/CMakeFiles/etlopt.dir/css/rules.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/css/rules.cc.o.d"
  "/root/repo/src/datagen/random_workflow.cc" "src/CMakeFiles/etlopt.dir/datagen/random_workflow.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/datagen/random_workflow.cc.o.d"
  "/root/repo/src/datagen/table_gen.cc" "src/CMakeFiles/etlopt.dir/datagen/table_gen.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/datagen/table_gen.cc.o.d"
  "/root/repo/src/datagen/workload_suite.cc" "src/CMakeFiles/etlopt.dir/datagen/workload_suite.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/datagen/workload_suite.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/etlopt.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/instrumentation.cc" "src/CMakeFiles/etlopt.dir/engine/instrumentation.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/engine/instrumentation.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/etlopt.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/engine/table.cc.o.d"
  "/root/repo/src/estimator/estimator.cc" "src/CMakeFiles/etlopt.dir/estimator/estimator.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/estimator/estimator.cc.o.d"
  "/root/repo/src/etl/attr_catalog.cc" "src/CMakeFiles/etlopt.dir/etl/attr_catalog.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/attr_catalog.cc.o.d"
  "/root/repo/src/etl/operator.cc" "src/CMakeFiles/etlopt.dir/etl/operator.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/operator.cc.o.d"
  "/root/repo/src/etl/predicate.cc" "src/CMakeFiles/etlopt.dir/etl/predicate.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/predicate.cc.o.d"
  "/root/repo/src/etl/schema.cc" "src/CMakeFiles/etlopt.dir/etl/schema.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/schema.cc.o.d"
  "/root/repo/src/etl/transforms.cc" "src/CMakeFiles/etlopt.dir/etl/transforms.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/transforms.cc.o.d"
  "/root/repo/src/etl/workflow.cc" "src/CMakeFiles/etlopt.dir/etl/workflow.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/workflow.cc.o.d"
  "/root/repo/src/etl/workflow_builder.cc" "src/CMakeFiles/etlopt.dir/etl/workflow_builder.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/workflow_builder.cc.o.d"
  "/root/repo/src/etl/workflow_io.cc" "src/CMakeFiles/etlopt.dir/etl/workflow_io.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/etl/workflow_io.cc.o.d"
  "/root/repo/src/lp/ilp.cc" "src/CMakeFiles/etlopt.dir/lp/ilp.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/lp/ilp.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/CMakeFiles/etlopt.dir/lp/simplex.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/lp/simplex.cc.o.d"
  "/root/repo/src/opt/closure.cc" "src/CMakeFiles/etlopt.dir/opt/closure.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/opt/closure.cc.o.d"
  "/root/repo/src/opt/exec_cover.cc" "src/CMakeFiles/etlopt.dir/opt/exec_cover.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/opt/exec_cover.cc.o.d"
  "/root/repo/src/opt/greedy_selector.cc" "src/CMakeFiles/etlopt.dir/opt/greedy_selector.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/opt/greedy_selector.cc.o.d"
  "/root/repo/src/opt/ilp_selector.cc" "src/CMakeFiles/etlopt.dir/opt/ilp_selector.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/opt/ilp_selector.cc.o.d"
  "/root/repo/src/opt/resource.cc" "src/CMakeFiles/etlopt.dir/opt/resource.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/opt/resource.cc.o.d"
  "/root/repo/src/opt/selection.cc" "src/CMakeFiles/etlopt.dir/opt/selection.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/opt/selection.cc.o.d"
  "/root/repo/src/optimizer/join_optimizer.cc" "src/CMakeFiles/etlopt.dir/optimizer/join_optimizer.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/optimizer/join_optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan_cost.cc" "src/CMakeFiles/etlopt.dir/optimizer/plan_cost.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/optimizer/plan_cost.cc.o.d"
  "/root/repo/src/optimizer/rewrite.cc" "src/CMakeFiles/etlopt.dir/optimizer/rewrite.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/optimizer/rewrite.cc.o.d"
  "/root/repo/src/planspace/block.cc" "src/CMakeFiles/etlopt.dir/planspace/block.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/planspace/block.cc.o.d"
  "/root/repo/src/planspace/join_graph.cc" "src/CMakeFiles/etlopt.dir/planspace/join_graph.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/planspace/join_graph.cc.o.d"
  "/root/repo/src/planspace/observability.cc" "src/CMakeFiles/etlopt.dir/planspace/observability.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/planspace/observability.cc.o.d"
  "/root/repo/src/planspace/plan_space.cc" "src/CMakeFiles/etlopt.dir/planspace/plan_space.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/planspace/plan_space.cc.o.d"
  "/root/repo/src/stats/approx_histogram.cc" "src/CMakeFiles/etlopt.dir/stats/approx_histogram.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/stats/approx_histogram.cc.o.d"
  "/root/repo/src/stats/cost_model.cc" "src/CMakeFiles/etlopt.dir/stats/cost_model.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/stats/cost_model.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/etlopt.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/stat_io.cc" "src/CMakeFiles/etlopt.dir/stats/stat_io.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/stats/stat_io.cc.o.d"
  "/root/repo/src/stats/stat_key.cc" "src/CMakeFiles/etlopt.dir/stats/stat_key.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/stats/stat_key.cc.o.d"
  "/root/repo/src/stats/stat_store.cc" "src/CMakeFiles/etlopt.dir/stats/stat_store.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/stats/stat_store.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/etlopt.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/etlopt.dir/util/random.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/etlopt.dir/util/status.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/etlopt.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/etlopt.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
