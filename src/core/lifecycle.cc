#include "core/lifecycle.h"

#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace etlopt {
namespace {

// Converts a cover tree (splits per SE) into an OptimizedPlan the rewriter
// can emit, resolving each split's join attribute from the join graph.
Result<OptimizedPlan> PlanFromCoverTree(
    const BlockContext& ctx, const ExecCoverResult::CoverTree& tree) {
  OptimizedPlan plan;
  for (const auto& [se, split] : tree.splits) {
    const int edge = ctx.graph().CrossingEdge(split.first, split.second);
    if (edge < 0) {
      return Status::Internal("cover tree split has no unique join edge");
    }
    JoinChoice choice;
    choice.left = split.first;
    choice.right = split.second;
    choice.attr = ctx.graph().edges()[static_cast<size_t>(edge)].attr;
    plan.choices[se] = choice;
  }
  return plan;
}

}  // namespace

Result<BudgetedLifecycleResult> RunBudgetedLifecycle(
    const Workflow& workflow, const SourceMap& sources, double memory_budget,
    const PipelineOptions& options,
    const std::vector<obs::RunRecord>* history) {
  BudgetedLifecycleResult result;
  obs::ScopedSpan lifecycle_span("lifecycle.budgeted");
  lifecycle_span.Arg("workflow", workflow.name());
  lifecycle_span.Arg("budget", memory_budget);
  // One span per sequential phase; emplace ends the previous phase before
  // starting the next, so the spans tile the lifecycle under the outer span.
  std::optional<obs::ScopedSpan> phase_span;
  phase_span.emplace("lifecycle.analysis");

  // ---- Steps 1-3: analysis (blocks, plan spaces, CSS) ----
  const std::vector<Block> blocks = PartitionBlocks(workflow);
  std::vector<BlockContext> contexts;
  std::vector<PlanSpace> plan_spaces;
  std::vector<CssCatalog> catalogs;
  for (const Block& block : blocks) {
    ETLOPT_ASSIGN_OR_RETURN(BlockContext ctx,
                            BlockContext::Build(&workflow, block));
    contexts.push_back(std::move(ctx));
  }
  for (const BlockContext& ctx : contexts) {
    ETLOPT_ASSIGN_OR_RETURN(PlanSpace ps,
                            PlanSpace::Build(ctx, options.plan_space));
    plan_spaces.push_back(std::move(ps));
  }
  for (size_t b = 0; b < contexts.size(); ++b) {
    catalogs.push_back(
        GenerateCss(contexts[b], plan_spaces[b], options.css));
  }

  // ---- Step 4 under the budget (Section 6.1) ----
  phase_span.emplace("lifecycle.budgeted_selection");
  std::vector<SelectionProblem> problems;
  for (size_t b = 0; b < contexts.size(); ++b) {
    CostModel cost_model(&workflow.catalog(), options.cost);
    SelectionOptions sel_options;
    sel_options.free_source_stats = options.free_source_stats;
    sel_options.force_observe = options.force_observe;
    problems.push_back(BuildSelectionProblem(contexts[b], plan_spaces[b],
                                             catalogs[b], cost_model,
                                             sel_options));
    problems.back().catalog = &catalogs[b];
  }
  for (size_t b = 0; b < contexts.size(); ++b) {
    result.selections.push_back(SelectWithBudget(
        problems[b], contexts[b], plan_spaces[b], memory_budget));
  }

  // ---- Run 1: designed plan, instrumented with the affordable set ----
  phase_span.emplace("lifecycle.first_run");
  Executor executor(&workflow);
  ETLOPT_ASSIGN_OR_RETURN(const ExecutionResult first_exec,
                          executor.Execute(sources));
  result.executions = 1;

  result.block_cards.resize(contexts.size());
  for (size_t b = 0; b < contexts.size(); ++b) {
    const std::vector<StatKey> keys =
        result.selections[b].first_run.ObservedKeys(catalogs[b]);
    ETLOPT_ASSIGN_OR_RETURN(
        StatStore observed,
        ObserveStatistics(contexts[b], first_exec, keys));
    Estimator estimator(&contexts[b], &catalogs[b]);
    ETLOPT_RETURN_IF_ERROR(estimator.DeriveAll(observed));
    result.block_stats.push_back(std::move(observed));
    for (RelMask se : plan_spaces[b].subexpressions()) {
      const Result<int64_t> card = estimator.Cardinality(se);
      if (card.ok()) result.block_cards[b][se] = *card;
    }
    // On-path SEs are passively monitorable at one counter each ([LEO]-style
    // passive monitoring, §7.3); record them regardless of the selection so
    // tiny budgets still learn everything the first run exposes.
    for (const auto& [se, node] : contexts[b].on_path()) {
      result.block_cards[b][se] = first_exec.node_outputs.at(node).num_rows();
    }
  }

  // ---- Re-ordered runs for the deferred SEs (trivial CSS counters) ----
  phase_span.emplace("lifecycle.reorder_runs");
  for (size_t b = 0; b < contexts.size(); ++b) {
    const BudgetedSelection& bsel = result.selections[b];
    if (bsel.deferred.empty()) continue;
    const ExecCoverResult& cover = bsel.reorder_plan;
    for (size_t run = 0; run < cover.per_run_tree.size(); ++run) {
      ETLOPT_ASSIGN_OR_RETURN(
          const OptimizedPlan plan,
          PlanFromCoverTree(contexts[b], cover.per_run_tree[run]));
      std::vector<PlanRewriter::BlockPlan> bp{{&blocks[b], &plan}};
      std::vector<std::unordered_map<RelMask, NodeId>> se_nodes;
      ETLOPT_ASSIGN_OR_RETURN(const Workflow reordered,
                              PlanRewriter::Apply(workflow, bp, &se_nodes));
      Executor rerun(&reordered);
      ETLOPT_ASSIGN_OR_RETURN(const ExecutionResult exec,
                              rerun.Execute(sources));
      ++result.executions;
      for (RelMask se : cover.per_run_covered[run]) {
        const auto it = se_nodes[0].find(se);
        if (it == se_nodes[0].end()) {
          return Status::Internal("covered SE missing from rewritten plan");
        }
        result.block_cards[b][se] =
            exec.node_outputs.at(it->second).num_rows();
      }
    }
  }

  // ---- Step 7: optimize from the now-complete statistics ----
  phase_span.emplace("lifecycle.reoptimize");
  std::vector<OptimizedPlan> final_plans(contexts.size());
  std::vector<PlanRewriter::BlockPlan> rewrites;
  for (size_t b = 0; b < contexts.size(); ++b) {
    ETLOPT_ASSIGN_OR_RETURN(
        final_plans[b],
        OptimizeJoins(contexts[b], plan_spaces[b], result.block_cards[b],
                      options.optimizer_cost));
    result.initial_cost += final_plans[b].initial_cost;
    result.optimized_cost += final_plans[b].cost;
    if (blocks[b].joins.size() >= 2) {
      rewrites.push_back({&blocks[b], &final_plans[b]});
    }
  }
  ETLOPT_ASSIGN_OR_RETURN(result.optimized,
                          PlanRewriter::Apply(workflow, rewrites));
  // ---- Drift check against ledger history ----
  if (history != nullptr && !history->empty()) {
    phase_span.emplace("lifecycle.drift_check");
    obs::RunRecord current;
    current.block_stats = result.block_stats;
    for (size_t b = 0; b < result.block_cards.size(); ++b) {
      for (const auto& [se, rows] : result.block_cards[b]) {
        obs::RunRecord::SeCard card;
        card.block = static_cast<int>(b);
        card.se = se;
        card.actual = static_cast<double>(rows);
        current.cards.push_back(card);
      }
    }
    result.drift = obs::DriftDetector().Compare(*history, current);
    ETLOPT_COUNTER_ADD("etlopt.obs.drift.checked_keys",
                       static_cast<int64_t>(result.drift.findings.size()));
    ETLOPT_COUNTER_ADD("etlopt.obs.drift.flagged_keys",
                       static_cast<int64_t>(result.drift.reinstrument.size()));
    lifecycle_span.Arg(
        "drifted", static_cast<int64_t>(result.drift.reinstrument.size()));
  }

  phase_span.reset();
  ETLOPT_COUNTER_ADD("etlopt.core.lifecycle_executions", result.executions);
  lifecycle_span.Arg("executions", static_cast<int64_t>(result.executions));
  return result;
}

}  // namespace etlopt
