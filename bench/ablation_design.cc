// Ablation study over the framework's design choices (DESIGN.md §9):
//   (a) union-division rules on/off          — CSS alternatives and memory,
//   (b) FK-lookup metadata on/off            — the Section 3.2.2 reduction,
//   (c) bushy vs left-deep plan space        — SEs/plans the optimizer costs,
//   (d) greedy vs exact ILP selection        — heuristic quality gap.
// Run on representative workflows from the suite.

#include <cstdio>

#include "suite_analysis.h"
#include "util/string_util.h"

using namespace etlopt;
using bench::AnalyzeWorkflow;

namespace {

struct Row {
  int ses = 0;
  int plans = 0;
  int css = 0;
  double memory = 0.0;
};

Row Measure(int index, bool union_division, bool fk_rules, bool left_deep,
            bool use_ilp) {
  const WorkloadSpec spec = BuildWorkload(index);
  Row row;
  for (const Block& block : PartitionBlocks(spec.workflow)) {
    const BlockContext ctx =
        BlockContext::Build(&spec.workflow, block).value();
    PlanSpaceOptions pso;
    pso.left_deep_only = left_deep;
    const PlanSpace ps = PlanSpace::Build(ctx, pso).value();
    CssGenOptions css;
    css.enable_union_division = union_division;
    css.enable_fk_rules = fk_rules;
    const CssCatalog catalog = GenerateCss(ctx, ps, css);
    CostModel cm(&spec.workflow.catalog(), {});
    const SelectionProblem problem =
        BuildSelectionProblem(ctx, ps, catalog, cm);
    IlpSelectorOptions ilp;
    ilp.time_limit_seconds = 1.0;
    ilp.max_nodes = 800;
    const SelectionResult sel =
        use_ilp ? SelectIlp(problem, ilp) : SelectGreedy(problem);
    row.ses += ps.num_ses();
    row.plans += ps.num_plans();
    row.css += catalog.num_css();
    row.memory += sel.total_cost;
  }
  return row;
}

void Print(const char* label, const Row& row) {
  std::printf("  %-28s ses=%4d plans=%4d css=%6d memory=%s\n", label,
              row.ses, row.plans, row.css,
              WithThousands(static_cast<int64_t>(row.memory)).c_str());
}

}  // namespace

int main() {
  std::printf("== Ablation: design choices of the framework ==\n");
  for (int wf : {3, 5, 16, 25, 30}) {
    const WorkloadSpec spec = BuildWorkload(wf);
    std::printf("\nworkflow %d (%s)\n", wf, spec.name.c_str());
    Print("baseline (all on, greedy)",
          Measure(wf, true, true, false, false));
    Print("no union-division", Measure(wf, false, true, false, false));
    Print("no FK metadata", Measure(wf, true, false, false, false));
    Print("left-deep plan space", Measure(wf, true, true, true, false));
    Print("exact ILP selection", Measure(wf, true, true, false, true));
  }
  std::printf(
      "\nreadings:\n"
      "  * union-division off -> memory jumps on wf3 (the 60x anchor)\n"
      "  * FK metadata off -> wf25 falls from ~4 counters to histograms\n"
      "  * left-deep restricts plans (and can hide cheap bushy covers)\n"
      "  * ILP <= greedy cost everywhere it finishes within its budget\n");
  return 0;
}
