file(REMOVE_RECURSE
  "CMakeFiles/etlopt_advisor.dir/etlopt_advisor.cc.o"
  "CMakeFiles/etlopt_advisor.dir/etlopt_advisor.cc.o.d"
  "etlopt_advisor"
  "etlopt_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etlopt_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
