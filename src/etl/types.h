#ifndef ETLOPT_ETL_TYPES_H_
#define ETLOPT_ETL_TYPES_H_

#include <cstdint>

namespace etlopt {

// Node identifier within a Workflow. Builders assign ids in topological
// order, so `a.id < b.id` whenever a is an input (direct or transitive) of b.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

// Attribute identifier within a workflow's AttrCatalog. Attribute identity is
// global to the workflow: a join equates the same AttrId on both inputs
// (surrogate-key style, as in the paper's Orders/Product/Customer example).
using AttrId = int32_t;
inline constexpr AttrId kInvalidAttr = -1;

}  // namespace etlopt

#endif  // ETLOPT_ETL_TYPES_H_
