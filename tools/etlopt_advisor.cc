// etlopt_advisor — command-line front end for the statistics-identification
// framework. Mirrors how the paper's module consumed designer-exported
// workflows: feed it a workflow file, get back the analysis (blocks, plan
// space, CSS, the optimal statistics to observe, and the pay-as-you-go
// comparison).
//
// Usage:
//   etlopt_advisor analyze <workflow-file> [options]
//   etlopt_advisor dot <workflow-file>          # Graphviz rendering
//   etlopt_advisor export-suite <index> [path]  # dump a benchmark workflow
//   etlopt_advisor transforms                   # list registered UDFs
//
// Options for analyze:
//   --selector=greedy|ilp     statistics selector (default greedy)
//   --no-union-division       disable the J4/J5 rules
//   --no-fk-rules             ignore foreign-key lookup metadata
//   --left-deep               restrict the plan space to left-deep trees
//   --budget=<units>          §6.1: report the budgeted plan as well

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/lifecycle.h"
#include "core/report.h"
#include "datagen/workload_suite.h"
#include "etl/transforms.h"
#include "etl/workflow_io.h"
#include "opt/resource.h"

using namespace etlopt;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "etlopt_advisor: %s\n", message.c_str());
  return 1;
}

int Analyze(const std::string& path, int argc, char** argv) {
  PipelineOptions options;
  double budget = -1.0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selector=greedy") {
      options.selector = SelectorKind::kGreedy;
    } else if (arg == "--selector=ilp") {
      options.selector = SelectorKind::kIlp;
    } else if (arg == "--no-union-division") {
      options.css.enable_union_division = false;
    } else if (arg == "--no-fk-rules") {
      options.css.enable_fk_rules = false;
    } else if (arg == "--left-deep") {
      options.plan_space.left_deep_only = true;
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atof(arg.c_str() + std::strlen("--budget="));
    } else {
      return Fail("unknown option '" + arg + "'");
    }
  }

  Result<Workflow> wf = LoadWorkflow(path);
  if (!wf.ok()) return Fail(wf.status().ToString());

  Pipeline pipeline(options);
  const auto analysis = pipeline.Analyze(*wf);
  if (!analysis.ok()) return Fail(analysis.status().ToString());
  std::printf("%s", FormatAnalysisReport(**analysis).c_str());

  if (budget >= 0.0) {
    std::printf("\n--- budgeted plan (%.0f memory units per block, §6.1) "
                "---\n",
                budget);
    for (const auto& block : (*analysis)->blocks) {
      const BudgetedSelection plan = SelectWithBudget(
          block->problem, block->ctx, block->plan_space, budget);
      std::printf("block %d: first run observes %zu statistics (%.0f "
                  "units); %zu SE(s) deferred; %d total execution(s)\n",
                  block->block.id, plan.first_run.observed.size(),
                  plan.memory_used, plan.deferred.size(),
                  plan.total_executions());
    }
  }
  return 0;
}

int Dot(const std::string& path) {
  Result<Workflow> wf = LoadWorkflow(path);
  if (!wf.ok()) return Fail(wf.status().ToString());
  std::printf("%s", wf->ToDot().c_str());
  return 0;
}

int ExportSuite(int index, const char* path) {
  if (index < 1 || index > 30) return Fail("suite index must be 1..30");
  const WorkloadSpec spec = BuildWorkload(index);
  if (path != nullptr) {
    const Status st = SaveWorkflow(spec.workflow, path);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s (workflow '%s')\n", path, spec.name.c_str());
  } else {
    std::printf("%s", WriteWorkflowTextOrDie(spec.workflow).c_str());
  }
  return 0;
}

int Transforms() {
  std::printf("registered transform functions (usable in workflow files):\n");
  for (const std::string& name : RegisteredTransformNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  etlopt_advisor analyze <workflow-file> [--selector=greedy|ilp]\n"
      "                 [--no-union-division] [--no-fk-rules] [--left-deep]\n"
      "                 [--budget=<units>]\n"
      "  etlopt_advisor dot <workflow-file>\n"
      "  etlopt_advisor export-suite <index 1..30> [output-path]\n"
      "  etlopt_advisor transforms\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "analyze" && argc >= 3) {
    return Analyze(argv[2], argc - 3, argv + 3);
  }
  if (command == "dot" && argc == 3) {
    return Dot(argv[2]);
  }
  if (command == "export-suite" && (argc == 3 || argc == 4)) {
    return ExportSuite(std::atoi(argv[2]), argc == 4 ? argv[3] : nullptr);
  }
  if (command == "transforms") {
    return Transforms();
  }
  Usage();
  return 1;
}
