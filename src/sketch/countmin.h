#ifndef ETLOPT_SKETCH_COUNTMIN_H_
#define ETLOPT_SKETCH_COUNTMIN_H_

#include <cstdint>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace etlopt {
namespace sketch {

// Count-Min frequency sketch (Cormode & Muthukrishnan 2005). `depth` rows of
// `width` counters; each update increments one counter per row (double
// hashing derives the row hashes from one 64-bit hash). Estimates are the
// row-wise minimum and NEVER underestimate — collisions only add mass — with
// overestimate <= (e / width) * TotalCount() at probability >= 1 - e^-depth.
// Two sketches of equal shape merge by counter-wise addition, which equals
// the sketch of the concatenated streams.
class CountMin {
 public:
  CountMin(int width = 1024, int depth = 4);

  // Sizes the sketch for a target one-sided relative error `epsilon` (of the
  // total stream count) at failure probability `delta`.
  static CountMin ForError(double epsilon, double delta);

  void AddHash(uint64_t hash, int64_t count = 1);

  // Upper-bound frequency estimate (min over rows).
  int64_t Estimate(uint64_t hash) const;

  int64_t TotalCount() const { return total_; }

  // Fraction of TotalCount an estimate may overshoot by: e / width.
  double EpsilonFraction() const;

  // Counter-wise addition. Requires identical width and depth.
  Status Merge(const CountMin& other);

  int width() const { return width_; }
  int depth() const { return depth_; }
  int64_t MemoryBytes() const;

  Json ToJson() const;
  static Result<CountMin> FromJson(const Json& j);

 private:
  size_t Index(int row, uint64_t hash) const;

  int width_;
  int depth_;
  int64_t total_ = 0;
  std::vector<int64_t> counters_;  // row-major depth x width
};

}  // namespace sketch
}  // namespace etlopt

#endif  // ETLOPT_SKETCH_COUNTMIN_H_
