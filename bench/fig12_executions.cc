// Reproduces Figure 12: the number of executions needed to cover all SEs
// when only trivial CSSs (plain cardinality counters) are observed and
// coverage comes from repeatedly executing re-ordered plans — the
// pay-as-you-go baseline the paper compares against.
//
// Per workflow we report:
//   n            — relations in the largest optimizable block,
//   min (formula)— the paper's lower bound ⌈(2ⁿ − (n+2)) / (n−2)⌉,
//   min (E)      — the semantics-aware bound over the actual SE set
//                  (cross products excluded, as the paper notes semantics
//                  "can be exploited to reduce the number of executions"),
//   found        — executions used by our greedy join-tree cover.
//
// Paper anchors: wf21 (8-way) min 41 / found > 70; wf30 (6-way) min 14 /
// found 18. Workflows with a single execution plan need exactly 1.

#include <algorithm>
#include <cstdio>

#include "opt/exec_cover.h"
#include "suite_analysis.h"

int main() {
  std::printf("== Figure 12: executions to cover all SEs (trivial CSS only) "
              "==\n");
  std::printf("%-4s %-18s %3s %14s %10s %7s\n", "wf", "name", "n",
              "min(formula)", "min(E)", "found");
  for (int i = 1; i <= 30; ++i) {
    const etlopt::bench::WorkflowAnalysis wa =
        etlopt::bench::AnalyzeWorkflow(i);
    // The workflow's number is driven by its largest block.
    int n = 0;
    int64_t formula = 1;
    int64_t semantic = 1;
    int found = 1;
    for (size_t b = 0; b < wa.contexts.size(); ++b) {
      const etlopt::ExecCoverResult r = etlopt::ComputeExecutionCover(
          wa.contexts[b], wa.plan_spaces[b]);
      if (wa.contexts[b].num_rels() > n) {
        n = wa.contexts[b].num_rels();
        formula = r.formula_lower_bound;
        semantic = r.semantic_lower_bound;
        found = r.executions;
      }
    }
    std::printf("%-4d %-18s %3d %14lld %10lld %7d\n", i,
                wa.spec.name.c_str(), n, static_cast<long long>(formula),
                static_cast<long long>(semantic), found);
  }
  std::printf("\npaper anchors: 8-way join min 41 (wf21), 6-way join min 14 "
              "(wf30);\nsingle-plan workflows need 1 execution. Our "
              "framework instead covers every SE\nin the very first run "
              "when memory allows (Figure 11).\n");
  return 0;
}
