#include "etl/workflow.h"

#include <sstream>

#include "util/string_util.h"

namespace etlopt {
namespace {

// Computes the output schema of `node` from its input schemas, or an error.
Result<Schema> ComputeSchema(const WorkflowNode& node,
                             const std::vector<Schema>& inputs,
                             const AttrCatalog& catalog) {
  auto arity_error = [&](int want) {
    return Status::InvalidArgument("node '" + node.name + "' (" +
                                   OpKindName(node.kind) + ") expects " +
                                   std::to_string(want) + " inputs, got " +
                                   std::to_string(node.inputs.size()));
  };
  switch (node.kind) {
    case OpKind::kSource: {
      if (!inputs.empty()) return arity_error(0);
      if (node.source_schema.size() == 0) {
        return Status::InvalidArgument("source '" + node.name +
                                       "' has empty schema");
      }
      return node.source_schema;
    }
    case OpKind::kFilter: {
      if (inputs.size() != 1) return arity_error(1);
      if (!inputs[0].Contains(node.predicate.attr)) {
        return Status::InvalidArgument(
            "filter '" + node.name + "' references attribute " +
            catalog.name(node.predicate.attr) + " absent from its input");
      }
      return inputs[0];
    }
    case OpKind::kProject: {
      if (inputs.size() != 1) return arity_error(1);
      for (AttrId a : node.keep) {
        if (!inputs[0].Contains(a)) {
          return Status::InvalidArgument("project '" + node.name +
                                         "' keeps unknown attribute " +
                                         catalog.name(a));
        }
      }
      return Schema(node.keep);
    }
    case OpKind::kTransform: {
      if (inputs.size() != 1) return arity_error(1);
      const TransformSpec& t = node.transform;
      if (!inputs[0].Contains(t.input_attr)) {
        return Status::InvalidArgument("transform '" + node.name +
                                       "' input attribute " +
                                       catalog.name(t.input_attr) +
                                       " absent from its input");
      }
      if (t.output_attr == t.input_attr) return inputs[0];  // in-place
      if (inputs[0].Contains(t.output_attr)) {
        return Status::InvalidArgument(
            "transform '" + node.name + "' derived attribute " +
            catalog.name(t.output_attr) + " already present in input");
      }
      std::vector<AttrId> attrs = inputs[0].attrs();
      attrs.push_back(t.output_attr);
      return Schema(std::move(attrs));
    }
    case OpKind::kAggregate: {
      if (inputs.size() != 1) return arity_error(1);
      for (AttrId a : node.aggregate.group_by) {
        if (!inputs[0].Contains(a)) {
          return Status::InvalidArgument("aggregate '" + node.name +
                                         "' groups by unknown attribute " +
                                         catalog.name(a));
        }
      }
      if (node.aggregate.group_by.empty()) {
        return Status::InvalidArgument("aggregate '" + node.name +
                                       "' has no group-by attributes");
      }
      std::vector<AttrId> attrs = node.aggregate.group_by;
      if (node.aggregate.count_attr != kInvalidAttr) {
        attrs.push_back(node.aggregate.count_attr);
      }
      return Schema(std::move(attrs));
    }
    case OpKind::kJoin: {
      if (inputs.size() != 2) return arity_error(2);
      const AttrId key = node.join.attr;
      if (!inputs[0].Contains(key) || !inputs[1].Contains(key)) {
        return Status::InvalidArgument("join '" + node.name + "' key " +
                                       catalog.name(key) +
                                       " must be present in both inputs");
      }
      const AttrMask overlap = inputs[0].mask() & inputs[1].mask();
      if (overlap != (AttrMask{1} << key)) {
        return Status::InvalidArgument(
            "join '" + node.name +
            "' inputs share non-key attributes: " +
            catalog.MaskToString(overlap & ~(AttrMask{1} << key)));
      }
      std::vector<AttrId> attrs = inputs[0].attrs();
      for (AttrId a : inputs[1].attrs()) {
        if (a != key) attrs.push_back(a);
      }
      return Schema(std::move(attrs));
    }
    case OpKind::kMaterialize:
    case OpKind::kSink: {
      if (inputs.size() != 1) return arity_error(1);
      return inputs[0];
    }
  }
  return Status::Internal("unhandled operator kind");
}

}  // namespace

Status Workflow::Finalize() {
  schemas_.clear();
  consumers_.assign(nodes_.size(), {});
  sink_ = kInvalidNode;
  for (const WorkflowNode& node : nodes_) {
    // Topological-id invariant and consumer index.
    std::vector<Schema> input_schemas;
    for (NodeId in : node.inputs) {
      if (in < 0 || in >= node.id) {
        return Status::InvalidArgument(
            "node '" + node.name + "' input id " + std::to_string(in) +
            " violates topological ordering");
      }
      input_schemas.push_back(schemas_[static_cast<size_t>(in)]);
      consumers_[static_cast<size_t>(in)].push_back(node.id);
    }
    Result<Schema> schema = ComputeSchema(node, input_schemas, catalog_);
    if (!schema.ok()) return schema.status();
    schemas_.push_back(std::move(schema).value());
    if (node.kind == OpKind::kSink) {
      if (sink_ != kInvalidNode) {
        return Status::InvalidArgument("workflow has multiple sinks");
      }
      sink_ = node.id;
    }
  }
  if (sink_ == kInvalidNode) {
    return Status::InvalidArgument("workflow has no sink");
  }
  return Status::OK();
}

Status Workflow::Validate() const {
  Workflow copy = *this;
  return copy.Finalize();
}

std::string Workflow::ToString() const {
  std::ostringstream out;
  out << "Workflow '" << name_ << "' (" << num_nodes() << " nodes)\n";
  for (const WorkflowNode& node : nodes_) {
    out << "  [" << node.id << "] " << OpKindName(node.kind) << " '"
        << node.name << "'";
    if (!node.inputs.empty()) {
      std::vector<std::string> ins;
      for (NodeId in : node.inputs) ins.push_back(std::to_string(in));
      out << " <- (" << Join(ins, ", ") << ")";
    }
    switch (node.kind) {
      case OpKind::kFilter:
        out << " where " << node.predicate.ToString(catalog_);
        break;
      case OpKind::kJoin:
        out << " on " << catalog_.name(node.join.attr);
        if (node.join.left_reject_link) out << " [reject-link]";
        if (node.join.fk_lookup) out << " [fk-lookup]";
        break;
      case OpKind::kTransform:
        out << " " << catalog_.name(node.transform.input_attr) << "->"
            << catalog_.name(node.transform.output_attr);
        if (node.transform.is_aggregate) out << " [aggregate-udf]";
        break;
      case OpKind::kAggregate: {
        std::vector<std::string> gs;
        for (AttrId a : node.aggregate.group_by) gs.push_back(catalog_.name(a));
        out << " by (" << Join(gs, ", ") << ")";
        break;
      }
      default:
        break;
    }
    out << " :: " << output_schema(node.id).ToString(catalog_) << "\n";
  }
  return out.str();
}

std::string Workflow::ToDot() const {
  std::ostringstream out;
  out << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n";
  for (const WorkflowNode& node : nodes_) {
    out << "  n" << node.id << " [label=\"" << OpKindName(node.kind) << "\\n"
        << node.name << "\"";
    if (node.kind == OpKind::kSource) out << ", shape=box";
    if (node.kind == OpKind::kSink) out << ", shape=doublecircle";
    out << "];\n";
    for (NodeId in : node.inputs) {
      out << "  n" << in << " -> n" << node.id << ";\n";
    }
    if (node.kind == OpKind::kJoin && node.join.left_reject_link) {
      out << "  n" << node.id << "_rej [label=\"rejects\", shape=note];\n";
      out << "  n" << node.id << " -> n" << node.id << "_rej [style=dashed];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace etlopt
