// Partitioned-executor micro-benchmarks: the worker scaling curve of a
// 1e6-row filter+join workload at 1/2/4/8 workers, the same workload under
// worst-case partition skew (every row hashes to one partition, so one
// worker does all the work while the rest idle at the barrier), and the
// tap-merge overhead — what reassembling per-partition tap states costs,
// for exact collectors (key-set union) and sketches (HLL register max /
// Count-Min addition). Every run reports the fan-out and skew it actually
// measured as benchmark counters, and the executor's merge-barrier time is
// surfaced as merge_ms so gather cost is never hidden inside the scaling
// numbers. The committed BENCH_parallel.json records the environment's CPU
// count next to the curve: scaling past num_cpus is not observable on a
// single-core container, and the numbers say so rather than pretend.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "engine/parallel/parallel_executor.h"
#include "engine/parallel/partition.h"
#include "etl/workflow_builder.h"
#include "sketch/sketch.h"
#include "sketch/tap.h"
#include "util/random.h"

namespace etlopt {
namespace {

constexpr int64_t kRows = 1000000;
constexpr int64_t kKeyDomain = 4096;

struct Workload {
  Workflow workflow;
  SourceMap sources;
};

// Fact(k, v) 1e6 rows -> filter(v < 12) -> join Dim(k) -> sink. With
// `skewed` every fact row carries the same key, so hash partitioning puts
// the whole table in one partition — the worst case the skew counter in
// --obs-summary exists to expose.
Workload MakeWorkload(bool skewed) {
  WorkflowBuilder b(skewed ? "bench_parallel_skew" : "bench_parallel");
  const AttrId k = b.DeclareAttr("k", kKeyDomain);
  const AttrId v = b.DeclareAttr("v", 16);
  const NodeId fact = b.Source("Fact", {k, v});
  const NodeId dim = b.Source("Dim", {k});
  const NodeId f = b.Filter(fact, {v, CompareOp::kLt, 12});
  const NodeId j = b.Join(f, dim, k);
  b.Sink(j, "bench.out");

  Workload w;
  w.workflow = std::move(b).Build().value();
  Rng rng(1234);
  Table fact_t{Schema({k, v})};
  fact_t.Reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    fact_t.AddRow({skewed ? Value{7} : rng.NextInRange(1, kKeyDomain),
                   rng.NextInRange(1, 16)});
  }
  Table dim_t{Schema({k})};
  for (int64_t i = 1; i <= kKeyDomain; i += 2) dim_t.AddRow({i});
  w.sources["Fact"] = std::move(fact_t);
  w.sources["Dim"] = std::move(dim_t);
  return w;
}

void RunExecutorBench(benchmark::State& state, const Workload& w) {
  const int threads = static_cast<int>(state.range(0));
  parallel::ParallelOptions opts;
  opts.num_threads = threads;
  const parallel::ParallelExecutor exec(&w.workflow, opts);
  int64_t merge_ns = 0;
  double skew = 0.0;
  int partitions = 0;
  for (auto _ : state) {
    auto result = exec.Execute(w.sources);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    merge_ns = result->exec.merge_ns;
    skew = result->exec.partition_skew;
    partitions = result->exec.partitions_total;
    benchmark::DoNotOptimize(result->exec.rows_processed);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["workers"] = threads;
  state.counters["partitions"] = partitions;
  state.counters["skew"] = skew;
  state.counters["merge_ms"] = static_cast<double>(merge_ns) / 1e6;
}

void BM_ParallelExecute(benchmark::State& state) {
  static const Workload* w = new Workload(MakeWorkload(/*skewed=*/false));
  RunExecutorBench(state, *w);
}
BENCHMARK(BM_ParallelExecute)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ParallelExecuteSkewWorstCase(benchmark::State& state) {
  static const Workload* w = new Workload(MakeWorkload(/*skewed=*/true));
  RunExecutorBench(state, *w);
}
BENCHMARK(BM_ParallelExecuteSkewWorstCase)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// ---- tap-merge overhead -------------------------------------------------

// Exact distinct taps: per-partition key sets, merge = set union. Feeding
// happens outside the timed region; the benchmark measures the merge alone.
void BM_ExactTapMerge8Way(benchmark::State& state) {
  const int64_t rows = state.range(0);
  std::vector<std::unordered_set<Value>> parts(8);
  Rng rng(99);
  for (int64_t i = 0; i < rows; ++i) {
    const Value key = rng.NextInRange(1, kKeyDomain);
    parts[static_cast<size_t>(parallel::HashPartitionIndex(key, 8))].insert(
        key);
  }
  for (auto _ : state) {
    std::unordered_set<Value> merged = parts[0];
    for (size_t p = 1; p < parts.size(); ++p) {
      merged.insert(parts[p].begin(), parts[p].end());
    }
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ExactTapMerge8Way)->Arg(1000000)->Unit(benchmark::kMillisecond);

// Sketch distinct taps: merge = HLL register-wise max, O(registers) per
// merge regardless of row count — the constant-time path the partitioned
// tap collection rides.
void BM_SketchTapMerge8Way(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const auto config = sketch::TapSketchConfig::ForBudget(int64_t{1} << 20, 1);
  std::vector<sketch::DistinctTap> parts(8, sketch::DistinctTap(config));
  Rng rng(99);
  for (int64_t i = 0; i < rows; ++i) {
    const std::vector<Value> key{rng.NextInRange(1, kKeyDomain)};
    parts[static_cast<size_t>(parallel::HashPartitionIndex(key[0], 8))]
        .AddRow(key);
  }
  for (auto _ : state) {
    sketch::DistinctTap merged = parts[0];
    for (size_t p = 1; p < parts.size(); ++p) {
      benchmark::DoNotOptimize(merged.Merge(parts[p]).ok());
    }
    benchmark::DoNotOptimize(merged.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SketchTapMerge8Way)->Arg(1000000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
