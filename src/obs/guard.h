#ifndef ETLOPT_OBS_GUARD_H_
#define ETLOPT_OBS_GUARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitmask.h"
#include "util/json.h"
#include "util/status.h"

namespace etlopt {
namespace obs {

// Forward declarations (obs/calibrate.h and obs/profile.h include the
// ledger, which embeds GuardRecord — keep this header cycle-free).
struct CostCalibration;
struct RunProfile;

// The plan-regression guard: before a re-optimized plan replaces the
// designed one, the evidence behind its cardinality estimates is scored —
// per-SE provenance (exact observation vs sketch-backed vs drift-flagged),
// whether the selection was seeded from a partial run's salvage, and the
// calibration coverage of the cost model that priced the plans. A plan that
// cannot justify itself is a regression risk: the designed plan is the one
// the workflow author shipped and is always safe to keep running.
//
// Modes:
//   off    — the gate and the runtime monitors are disabled entirely; the
//            re-optimized plan is adopted unconditionally (seed behavior).
//   warn   — evidence is scored and recorded (ledger guard section, metrics,
//            obs-summary), but the plan is adopted regardless. The default.
//   strict — a failing verdict keeps the designed plan, and a runtime
//            monitor violation aborts the run through the salvage path.
enum class GuardMode : uint8_t { kOff = 0, kWarn, kStrict };

const char* GuardModeName(GuardMode mode);
Result<GuardMode> ParseGuardMode(const std::string& text);

struct GuardOptions {
  GuardMode mode = GuardMode::kWarn;
  // Minimum aggregate evidence score (min over per-SE confidences, times
  // the partial-history and calibration-coverage factors) required to adopt
  // a plan that differs from the designed one. A single drift-flagged
  // statistic halves its dependent SEs' confidence to 0.5, which falls
  // below this default — drift alone is enough to block adoption.
  double min_evidence = 0.6;
  // Minimum predicted relative improvement of the proposed plan over the
  // designed plan, (initial - optimized) / max(initial, 1). A proposal that
  // is predicted barely better is not worth the regression risk.
  double min_margin = 0.0;
  // Runtime monitor bound: max(expected/actual, actual/expected) of an
  // adopted plan's priced cardinality vs the observed one, above which the
  // plan is marked unsafe for reuse (and strict mode aborts the run).
  double monitor_qerror = 4.0;
  // Confidence multiplier applied per drift-flagged observed leaf feeding
  // an SE estimate.
  double drift_penalty = 0.5;
  // Evidence multiplier when the selection cost model was seeded from a
  // partial (salvaged) run.
  double partial_penalty = 0.5;

  // Defaults overridden by ETLOPT_GUARD_MODE (off|warn|strict),
  // ETLOPT_GUARD_MIN_EVIDENCE, ETLOPT_GUARD_MIN_MARGIN,
  // ETLOPT_GUARD_MONITOR_QERROR, ETLOPT_GUARD_DRIFT_PENALTY and
  // ETLOPT_GUARD_PARTIAL_PENALTY.
  static GuardOptions FromEnv();
};

// Confidence evidence for one SE cardinality estimate: 1.0 for a value
// derived purely from exact observations, degraded by sketch error bounds
// and by drift-flagged feeding statistics (see
// Estimator::CardinalityConfidence).
struct SeEvidence {
  int block = 0;
  RelMask se = 0;
  double confidence = 1.0;
};

// Everything the adoption decision is made from. Pure data, so the verdict
// is unit-testable without a pipeline.
struct GuardInputs {
  // True when the optimizer's proposal differs from the designed plan; an
  // identical plan is trivially adoptable (there is nothing to regress to).
  bool plan_changed = false;
  double initial_cost = 0.0;    // designed plan, under learned stats
  double optimized_cost = 0.0;  // proposed plan, under learned stats
  std::vector<SeEvidence> evidence;
  // Fraction of the run's profiled operator classes the live calibration
  // has fits for; 1.0 when calibration is not in play.
  double calibration_coverage = 1.0;
  // The selection cost model was seeded from a partial run's salvage.
  bool partial_history = false;
  // Fingerprint of the proposed plan, and the signatures of plans a prior
  // run's monitors marked unsafe for reuse.
  std::string proposed_signature;
  std::vector<std::string> unsafe_signatures;
};

// The adoption decision plus the evidence trail behind it.
struct GuardVerdict {
  bool adopt = true;
  double evidence_score = 1.0;  // min SE confidence x penalty factors
  double margin = 0.0;          // predicted relative improvement
  std::vector<std::string> reasons;  // each failed criterion, human-readable
};

// Scores the evidence and decides adoption under `options.mode`. In kOff
// the verdict always adopts with no reasons; in kWarn the reasons are
// recorded but `adopt` stays true; in kStrict any failed criterion flips
// `adopt` to false. Emits etlopt.guard.* metrics.
GuardVerdict EvaluateAdoption(const GuardOptions& options,
                              const GuardInputs& inputs);

// Fraction of the profile's operator-class weight the calibration has fits
// for. 1.0 when the calibration is empty (not in play) or the profile is
// empty (nothing was priced from measurements).
double CalibrationCoverage(const CostCalibration& calibration,
                           const RunProfile& profile);

// The guard section of a ledger record: the adoption verdict of the cycle
// plus any runtime monitor violations its execution raised. Serialized only
// when engaged(), so clean-run ledger lines are unchanged.
struct GuardRecord {
  std::string mode;          // "off" | "warn" | "strict"
  bool adopted = true;       // did the cycle adopt the optimizer's proposal
  bool fell_back = false;    // strict gate kept the designed plan
  double evidence = 1.0;
  double margin = 0.0;
  std::string proposed_signature;  // the rejected plan, when fell_back
  std::vector<std::string> reasons;

  // One runtime monitor violation: the plan was priced expecting
  // `expected` rows at the SE's pipeline point and observed `actual`.
  struct Monitor {
    int block = 0;
    RelMask se = 0;
    int64_t node = 0;
    double expected = 0.0;
    double actual = 0.0;
    double qerror = 1.0;
  };
  std::vector<Monitor> violations;
  // Monitors exceeded the bound: the estimates the last proposal was priced
  // with are wrong at runtime, so that proposal must not be adopted again.
  bool plan_unsafe = false;
  // The plan signature the violations condemn (the prior record's
  // proposal); later adoption gates reject a proposal matching it.
  std::string unsafe_signature;

  bool engaged() const {
    return fell_back || plan_unsafe || !violations.empty() ||
           !reasons.empty();
  }

  Json ToJson() const;
  static GuardRecord FromJson(const Json& j);

  std::string ToText() const;
};

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_GUARD_H_
