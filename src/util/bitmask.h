#ifndef ETLOPT_UTIL_BITMASK_H_
#define ETLOPT_UTIL_BITMASK_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace etlopt {

// Relation subsets within an optimizable block (bit i = block input i).
using RelMask = uint32_t;
// Attribute subsets within a workflow's attribute catalog (bit = AttrId).
using AttrMask = uint64_t;

inline int PopCount(uint64_t mask) { return std::popcount(mask); }

inline bool IsSubset(uint64_t sub, uint64_t super) {
  return (sub & ~super) == 0;
}

inline bool IsSingleton(uint64_t mask) {
  return mask != 0 && (mask & (mask - 1)) == 0;
}

// Index of the lowest set bit. Mask must be non-zero.
inline int LowestBit(uint64_t mask) { return std::countr_zero(mask); }

// Expands a mask to the list of set-bit indices, in increasing order.
inline std::vector<int> MaskToIndices(uint64_t mask) {
  std::vector<int> out;
  while (mask != 0) {
    out.push_back(std::countr_zero(mask));
    mask &= mask - 1;
  }
  return out;
}

// Iterates all non-empty proper sub-masks of `mask` (classic subset-walk).
// Usage: for (SubsetIterator it(m); !it.Done(); it.Next()) use it.subset();
class SubsetIterator {
 public:
  explicit SubsetIterator(uint64_t mask)
      : mask_(mask), subset_((mask - 1) & mask) {}

  bool Done() const { return subset_ == 0; }
  uint64_t subset() const { return subset_; }
  void Next() { subset_ = (subset_ - 1) & mask_; }

 private:
  uint64_t mask_;
  uint64_t subset_;
};

}  // namespace etlopt

#endif  // ETLOPT_UTIL_BITMASK_H_
