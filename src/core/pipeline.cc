#include "core/pipeline.h"

#include <algorithm>
#include <chrono>

#include "etl/workflow_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace etlopt {

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  if (options_.tap_memory_budget_bytes <= 0) {
    options_.tap_memory_budget_bytes =
        TapOptions::FromEnv().memory_budget_bytes;
  }
}

Result<std::unique_ptr<Analysis>> Pipeline::Analyze(
    const Workflow& workflow,
    const std::vector<CardMap>* size_feedback) const {
  obs::ScopedSpan span("pipeline.analyze");
  span.Arg("workflow", workflow.name());
  auto analysis = std::make_unique<Analysis>();
  analysis->workflow = std::make_unique<Workflow>(workflow);

  const std::vector<Block> blocks = PartitionBlocks(*analysis->workflow);
  span.Arg("blocks", static_cast<int64_t>(blocks.size()));
  int block_index = 0;
  for (const Block& block : blocks) {
    auto ba = std::make_unique<BlockAnalysis>();
    ba->block = block;
    ETLOPT_ASSIGN_OR_RETURN(
        ba->ctx, BlockContext::Build(analysis->workflow.get(), block));
    {
      obs::ScopedSpan ps_span("pipeline.plan_space");
      ps_span.Arg("block", static_cast<int64_t>(block.id));
      ETLOPT_ASSIGN_OR_RETURN(ba->plan_space,
                              PlanSpace::Build(ba->ctx, options_.plan_space));
      ps_span.Arg("ses", static_cast<int64_t>(ba->plan_space.num_ses()));
      ps_span.Arg("plans", static_cast<int64_t>(ba->plan_space.num_plans()));
    }
    ETLOPT_COUNTER_ADD("etlopt.core.plan_space.ses",
                       ba->plan_space.num_ses());
    {
      obs::ScopedSpan css_span("pipeline.css_generation");
      css_span.Arg("block", static_cast<int64_t>(block.id));
      ba->catalog = GenerateCss(ba->ctx, ba->plan_space, options_.css);
      css_span.Arg("stats", static_cast<int64_t>(ba->catalog.num_stats()));
      css_span.Arg("css", static_cast<int64_t>(ba->catalog.num_css()));
    }
    ETLOPT_COUNTER_ADD("etlopt.core.css.generated", ba->catalog.num_css());

    CostModelOptions cost_options = options_.cost;
    if (options_.tap_memory_budget_bytes > 0 &&
        cost_options.sketch_memory_cap <= 0) {
      // A sketch bounded by the tap budget replaces an exact collector, so
      // no single distinct/histogram statistic can cost the selector more
      // than the budget (cost units are integers, 8 bytes each).
      cost_options.sketch_memory_cap =
          std::max<int64_t>(1, options_.tap_memory_budget_bytes / 8);
    }
    CostModel cost_model(&analysis->workflow->catalog(), cost_options);
    if (size_feedback != nullptr &&
        block_index < static_cast<int>(size_feedback->size())) {
      for (const auto& [se, rows] :
           (*size_feedback)[static_cast<size_t>(block_index)]) {
        cost_model.SetSeSize(se, rows);
      }
    }
    SelectionOptions sel_options;
    sel_options.free_source_stats = options_.free_source_stats;
    sel_options.force_observe = options_.force_observe;
    ba->problem = BuildSelectionProblem(ba->ctx, ba->plan_space, ba->catalog,
                                        cost_model, sel_options);
    ba->problem.catalog = &ba->catalog;  // ensure self-reference is stable

    {
      obs::ScopedSpan sel_span("pipeline.selection");
      sel_span.Arg("block", static_cast<int64_t>(block.id));
      switch (options_.selector) {
        case SelectorKind::kGreedy:
          ba->selection = SelectGreedy(ba->problem);
          break;
        case SelectorKind::kIlp:
          ba->selection = SelectIlp(ba->problem, options_.ilp);
          break;
      }
      sel_span.Arg("method", ba->selection.method);
      sel_span.Arg("observed", static_cast<int64_t>(ba->selection.observed.size()));
      sel_span.Arg("cost", ba->selection.total_cost);
    }
    ETLOPT_COUNTER_ADD("etlopt.opt.selections", 1);
    if (!ba->selection.feasible) {
      return Status::Internal("statistics selection infeasible for block " +
                              std::to_string(block.id));
    }
    analysis->blocks.push_back(std::move(ba));
    ++block_index;
  }
  return analysis;
}

Result<RunOutcome> Pipeline::RunAndObserve(const Analysis& analysis,
                                           const SourceMap& sources) const {
  obs::ScopedSpan span("pipeline.run_and_observe");
  RunOutcome outcome;
  Executor executor(analysis.workflow.get());
  ETLOPT_ASSIGN_OR_RETURN(outcome.exec, executor.Execute(sources));

  obs::ScopedSpan observe_span("pipeline.observation");
  TapOptions taps;
  taps.memory_budget_bytes = options_.tap_memory_budget_bytes;
  int64_t observed = 0;
  for (const auto& ba : analysis.blocks) {
    const std::vector<StatKey> keys =
        ba->selection.ObservedKeys(ba->catalog);
    observed += static_cast<int64_t>(keys.size());
    ETLOPT_ASSIGN_OR_RETURN(
        StatStore store, ObserveStatistics(ba->ctx, outcome.exec, keys, taps,
                                           &outcome.tap_report));
    outcome.block_stats.push_back(std::move(store));
  }
  observe_span.Arg("stats_observed", observed);
  observe_span.Arg("sketch_taps",
                   static_cast<int64_t>(outcome.tap_report.sketch_taps));
  observe_span.Arg("tap_bytes", outcome.tap_report.tap_bytes);
  ETLOPT_COUNTER_ADD("etlopt.core.stats_observed", observed);
  return outcome;
}

Result<OptimizeOutcome> Pipeline::Optimize(const Analysis& analysis,
                                           const RunOutcome& run) const {
  obs::ScopedSpan span("pipeline.optimize");
  OptimizeOutcome outcome;
  std::vector<OptimizedPlan> plans(analysis.blocks.size());
  std::vector<PlanRewriter::BlockPlan> rewrites;

  for (size_t i = 0; i < analysis.blocks.size(); ++i) {
    const BlockAnalysis& ba = *analysis.blocks[i];
    Estimator estimator(&ba.ctx, &ba.catalog);
    {
      obs::ScopedSpan est_span("pipeline.estimation");
      est_span.Arg("block", static_cast<int64_t>(ba.block.id));
      ETLOPT_RETURN_IF_ERROR(estimator.DeriveAll(run.block_stats[i]));
    }
    ETLOPT_ASSIGN_OR_RETURN(
        CardMap cards,
        estimator.AllCardinalities(ba.plan_space.subexpressions()));
    outcome.block_estimates.push_back(
        OptimizeOutcome::BlockEstimates{estimator.derived(),
                                        estimator.provenance()});
    ETLOPT_COUNTER_ADD("etlopt.core.cards_estimated",
                       static_cast<int64_t>(cards.size()));
    obs::ScopedSpan join_span("pipeline.join_optimization");
    join_span.Arg("block", static_cast<int64_t>(ba.block.id));
    ETLOPT_ASSIGN_OR_RETURN(plans[i],
                            OptimizeJoins(ba.ctx, ba.plan_space, cards,
                                          options_.optimizer_cost));
    outcome.initial_cost += plans[i].initial_cost;
    outcome.optimized_cost += plans[i].cost;
    outcome.block_cards.push_back(std::move(cards));
    if (ba.block.joins.size() >= 2) {
      rewrites.push_back(
          PlanRewriter::BlockPlan{&ba.block, &plans[i]});
    }
  }
  {
    obs::ScopedSpan rewrite_span("pipeline.rewrite");
    rewrite_span.Arg("rewritten_blocks", static_cast<int64_t>(rewrites.size()));
    ETLOPT_ASSIGN_OR_RETURN(outcome.optimized,
                            PlanRewriter::Apply(*analysis.workflow, rewrites));
  }
  ETLOPT_GAUGE_SET("etlopt.core.initial_cost", outcome.initial_cost);
  ETLOPT_GAUGE_SET("etlopt.core.optimized_cost", outcome.optimized_cost);
  return outcome;
}

Result<CycleOutcome> Pipeline::RunCycle(const Workflow& workflow,
                                        const SourceMap& sources) const {
  obs::ScopedSpan span("pipeline.cycle");
  span.Arg("workflow", workflow.name());
  ETLOPT_COUNTER_ADD("etlopt.core.cycles", 1);
  CycleOutcome cycle;
  Timer timer;
  ETLOPT_ASSIGN_OR_RETURN(cycle.analysis, Analyze(workflow));
  cycle.analyze_ms = timer.ElapsedMillis();
  timer.Restart();
  ETLOPT_ASSIGN_OR_RETURN(cycle.run, RunAndObserve(*cycle.analysis, sources));
  cycle.execute_ms = timer.ElapsedMillis();
  timer.Restart();
  ETLOPT_ASSIGN_OR_RETURN(cycle.opt, Optimize(*cycle.analysis, cycle.run));
  cycle.optimize_ms = timer.ElapsedMillis();
  return cycle;
}

obs::RunRecord MakeRunRecord(const CycleOutcome& cycle, std::string run_id,
                             const std::vector<CardMap>* truth) {
  const Analysis& analysis = *cycle.analysis;
  obs::RunRecord record;
  record.run_id = std::move(run_id);
  record.fingerprint = obs::FingerprintWorkflow(*analysis.workflow);
  record.workflow = analysis.workflow->name();
  record.timestamp_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  if (!analysis.blocks.empty()) {
    record.selector = analysis.blocks[0]->selection.method;
  }
  {
    Status status;
    const std::string plan_text =
        WriteWorkflowText(cycle.opt.optimized, &status);
    record.plan_signature = obs::FingerprintText(
        status.ok() ? plan_text : cycle.opt.optimized.ToString());
  }
  record.initial_cost = cycle.opt.initial_cost;
  record.optimized_cost = cycle.opt.optimized_cost;
  record.analyze_ms = cycle.analyze_ms;
  record.execute_ms = cycle.execute_ms;
  record.optimize_ms = cycle.optimize_ms;

  for (size_t b = 0; b < cycle.opt.block_cards.size(); ++b) {
    // Deterministic record order: by SE mask within a block.
    std::vector<RelMask> ses;
    ses.reserve(cycle.opt.block_cards[b].size());
    for (const auto& [se, rows] : cycle.opt.block_cards[b]) {
      (void)rows;
      ses.push_back(se);
    }
    std::sort(ses.begin(), ses.end());
    for (RelMask se : ses) {
      obs::RunRecord::SeCard card;
      card.block = static_cast<int>(b);
      card.se = se;
      card.estimated =
          static_cast<double>(cycle.opt.block_cards[b].at(se));
      if (truth != nullptr && b < truth->size()) {
        const auto it = (*truth)[b].find(se);
        if (it != (*truth)[b].end()) {
          card.actual = static_cast<double>(it->second);
        }
      }
      record.cards.push_back(card);
    }
  }
  record.block_stats = cycle.run.block_stats;
  record.metrics = obs::MetricsRegistry::Global().CounterValues();
  return record;
}

}  // namespace etlopt
