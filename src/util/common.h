#ifndef ETLOPT_UTIL_COMMON_H_
#define ETLOPT_UTIL_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>

namespace etlopt {

// Basic integral aliases used across the library.
using Value = int64_t;  // Attribute values are integral (surrogate-key style).

// CHECK-style assertion macros. Failures abort: they indicate programming
// errors (broken invariants), not recoverable runtime conditions, which are
// reported via Status instead.
#define ETLOPT_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__ << ": " \
                  << #cond << ::std::endl;                                    \
      ::std::abort();                                                         \
    }                                                                         \
  } while (false)

#define ETLOPT_CHECK_MSG(cond, msg)                                           \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__ << ": " \
                  << #cond << " — " << (msg) << ::std::endl;                  \
      ::std::abort();                                                         \
    }                                                                         \
  } while (false)

}  // namespace etlopt

#endif  // ETLOPT_UTIL_COMMON_H_
