#include "optimizer/plan_cost.h"

#include <cmath>

namespace etlopt {

double JoinStepCost(int64_t left_rows, int64_t right_rows, int64_t out_rows,
                    const CostParams& params) {
  return params.probe * static_cast<double>(left_rows) +
         params.build * static_cast<double>(right_rows) +
         params.output * static_cast<double>(out_rows);
}

namespace {

double SortCost(int64_t rows, const CostParams& params) {
  if (rows <= 1) return 0.0;
  return params.sort * static_cast<double>(rows) *
         std::log2(static_cast<double>(rows));
}

}  // namespace

double SortMergeStepCost(int64_t left_rows, int64_t right_rows,
                         int64_t out_rows, const CostParams& params) {
  return SortCost(left_rows, params) + SortCost(right_rows, params) +
         params.merge * static_cast<double>(left_rows + right_rows) +
         params.output * static_cast<double>(out_rows);
}

std::pair<JoinAlgorithm, double> PickJoinAlgorithm(int64_t left_rows,
                                                   int64_t right_rows,
                                                   int64_t out_rows,
                                                   const CostParams& params) {
  const double hash = JoinStepCost(left_rows, right_rows, out_rows, params);
  const double merge =
      SortMergeStepCost(left_rows, right_rows, out_rows, params);
  if (merge < hash) return {JoinAlgorithm::kSortMerge, merge};
  return {JoinAlgorithm::kHash, hash};
}

}  // namespace etlopt
