#include "css/css.h"

#include <algorithm>
#include <sstream>

namespace etlopt {

const char* RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kS1:
      return "S1";
    case RuleId::kS2:
      return "S2";
    case RuleId::kCopyCard:
      return "P1/U1";
    case RuleId::kCopyHist:
      return "P2/U2";
    case RuleId::kG1:
      return "G1";
    case RuleId::kG2:
      return "G2";
    case RuleId::kJ1:
      return "J1";
    case RuleId::kJ2:
      return "J2/J3";
    case RuleId::kJ4:
      return "J4";
    case RuleId::kJ5:
      return "J5";
    case RuleId::kFk:
      return "FK";
    case RuleId::kI1:
      return "I1";
    case RuleId::kI2:
      return "I2";
    case RuleId::kD1:
      return "D1";
  }
  return "?";
}

std::string CssEntry::ToString(const AttrCatalog* catalog) const {
  std::ostringstream out;
  out << target.ToString(catalog) << " <- " << RuleName(rule) << "{";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i != 0) out << ", ";
    out << inputs[i].ToString(catalog);
  }
  out << "}";
  return out.str();
}

int CssCatalog::AddStat(const StatKey& key) {
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int idx = static_cast<int>(stats_.size());
  stats_.push_back(key);
  index_[key] = idx;
  css_by_stat_.emplace_back();
  return idx;
}

int CssCatalog::IndexOf(const StatKey& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

void CssCatalog::AddCss(CssEntry entry) {
  const int target = AddStat(entry.target);
  std::vector<int> inputs;
  inputs.reserve(entry.inputs.size());
  for (const StatKey& in : entry.inputs) {
    inputs.push_back(AddStat(in));
  }
  // Detect duplicates by (target, sorted inputs).
  std::vector<int> sorted = inputs;
  std::sort(sorted.begin(), sorted.end());
  for (int existing : css_by_stat_[static_cast<size_t>(target)]) {
    std::vector<int> other = entry_inputs_[static_cast<size_t>(existing)];
    std::sort(other.begin(), other.end());
    if (other == sorted) return;
  }
  const int css_idx = static_cast<int>(entries_.size());
  entries_.push_back(std::move(entry));
  entry_target_.push_back(target);
  entry_inputs_.push_back(std::move(inputs));
  css_by_stat_[static_cast<size_t>(target)].push_back(css_idx);
}

std::string CssCatalog::ToString(const AttrCatalog* catalog) const {
  std::ostringstream out;
  out << "CssCatalog: " << num_stats() << " statistics, " << num_css()
      << " CSS\n";
  for (int s = 0; s < num_stats(); ++s) {
    out << "  " << stat(s).ToString(catalog) << "\n";
    for (int c : css_of(s)) {
      out << "    " << entry(c).ToString(catalog) << "\n";
    }
  }
  return out.str();
}

}  // namespace etlopt
