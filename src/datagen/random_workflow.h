#ifndef ETLOPT_DATAGEN_RANDOM_WORKFLOW_H_
#define ETLOPT_DATAGEN_RANDOM_WORKFLOW_H_

#include "datagen/workload_suite.h"

namespace etlopt {

struct RandomWorkflowOptions {
  int min_rels = 2;
  int max_rels = 5;
  int64_t min_key_domain = 25;
  int64_t max_key_domain = 120;
  int64_t min_rows = 30;
  int64_t max_rows = 180;
  double filter_prob = 0.4;     // per input: prepend a payload filter
  double transform_prob = 0.3;  // per input: in-place payload transform
  double groupby_prob = 0.15;   // per input: aggregate chain op
  double reject_prob = 0.15;    // per join: designed reject link
  double key_filter_prob = 0.2; // per input: filter on a join key
};

// Generates a random—but always valid—workflow plus matching source tables:
// a random join tree (keys shared through edges), random per-input operator
// chains (filters, registry transforms, group-bys), occasional reject
// links, and a random left-deep designed join order. Used by the fuzz sweep
// that checks the exactness invariant far beyond the curated 30-workflow
// suite.
WorkloadSpec GenerateRandomWorkflow(uint64_t seed,
                                    const RandomWorkflowOptions& options = {});

}  // namespace etlopt

#endif  // ETLOPT_DATAGEN_RANDOM_WORKFLOW_H_
