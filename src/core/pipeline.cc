#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "engine/parallel/parallel_executor.h"
#include "etl/workflow_io.h"
#include "obs/build_info.h"
#include "obs/checkpoint.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace etlopt {
namespace {

// Sorted (name, value) view of a string->int64 map, for deterministic
// record and checkpoint serialization.
std::vector<std::pair<std::string, int64_t>> SortedCounts(
    const std::unordered_map<std::string, int64_t>& counts) {
  std::vector<std::pair<std::string, int64_t>> sorted(counts.begin(),
                                                      counts.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// The history record whose estimates arm the runtime monitors: the most
// recent clean run. Partial records' estimates come from a salvaged prefix
// — comparing against them would raise false violations.
const obs::RunRecord* LastCleanRecord(
    const std::vector<obs::RunRecord>* history) {
  if (history == nullptr) return nullptr;
  // A record whose plan a later run's monitors condemned is not a usable
  // estimate source either: re-arming monitors from it would abort every
  // subsequent strict run against the same wrong numbers. Skip it and fall
  // back to an older clean record (or none — a monitor-free run that
  // re-observes the flagged SEs directly and rebuilds trust).
  std::vector<std::string> condemned;
  for (const obs::RunRecord& record : *history) {
    if (record.guard.plan_unsafe && !record.guard.unsafe_signature.empty()) {
      condemned.push_back(record.guard.unsafe_signature);
    }
  }
  for (auto it = history->rbegin(); it != history->rend(); ++it) {
    if (it->partial) continue;
    if (std::find(condemned.begin(), condemned.end(), it->plan_signature) !=
        condemned.end()) {
      continue;
    }
    return &*it;
  }
  return nullptr;
}

// Per-node expected cardinalities from a prior record's per-SE estimates,
// mapped through each block's on-path SE -> producing-node table. Only SEs
// whose pipeline point the designed plan materializes are monitorable.
std::unordered_map<NodeId, PlanMonitor> BuildPlanMonitors(
    const Analysis& analysis, const obs::RunRecord& record) {
  std::unordered_map<NodeId, PlanMonitor> monitors;
  for (const obs::RunRecord::SeCard& card : record.cards) {
    if (card.estimated < 0 || card.block < 0 ||
        card.block >= static_cast<int>(analysis.blocks.size())) {
      continue;
    }
    const auto& on_path =
        analysis.blocks[static_cast<size_t>(card.block)]->ctx.on_path();
    const auto it = on_path.find(card.se);
    if (it == on_path.end()) continue;
    PlanMonitor monitor;
    monitor.expected_rows = card.estimated;
    monitor.block = card.block;
    monitor.se = card.se;
    monitors[it->second] = monitor;
  }
  return monitors;
}

// Plan signatures history records' monitors condemned — proposals the
// adoption gate must reject.
std::vector<std::string> UnsafeSignatures(
    const std::vector<obs::RunRecord>& history) {
  std::vector<std::string> signatures;
  for (const obs::RunRecord& record : history) {
    if (record.guard.plan_unsafe && !record.guard.unsafe_signature.empty()) {
      signatures.push_back(record.guard.unsafe_signature);
    }
  }
  return signatures;
}

}  // namespace

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  if (options_.tap_memory_budget_bytes <= 0) {
    options_.tap_memory_budget_bytes =
        TapOptions::FromEnv().memory_budget_bytes;
  }
  if (options_.checkpoint_every_rows <= 0) {
    const char* value = std::getenv("ETLOPT_CHECKPOINT_EVERY");
    if (value != nullptr && *value != '\0') {
      char* end = nullptr;
      const long long parsed = std::strtoll(value, &end, 10);
      if (end != value && parsed > 0) options_.checkpoint_every_rows = parsed;
    }
    if (options_.checkpoint_every_rows <= 0) {
      options_.checkpoint_every_rows = 100000;
    }
  }
  if (options_.calibration.empty()) {
    options_.calibration = obs::CostCalibration::FromEnv();
  }
  if (options_.num_threads <= 0) {
    options_.num_threads = 1;
    const char* value = std::getenv("ETLOPT_THREADS");
    if (value != nullptr && *value != '\0') {
      char* end = nullptr;
      const long long parsed = std::strtoll(value, &end, 10);
      if (end != value && parsed > 0) {
        options_.num_threads = static_cast<int>(parsed);
      }
    }
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Result<std::unique_ptr<Analysis>> Pipeline::Analyze(
    const Workflow& workflow, const std::vector<CardMap>* size_feedback,
    const std::vector<StatKey>* extra_force_observe) const {
  obs::ScopedSpan span("pipeline.analyze");
  span.Arg("workflow", workflow.name());
  auto analysis = std::make_unique<Analysis>();
  analysis->workflow = std::make_unique<Workflow>(workflow);

  const std::vector<Block> blocks = PartitionBlocks(*analysis->workflow);
  span.Arg("blocks", static_cast<int64_t>(blocks.size()));
  int block_index = 0;
  for (const Block& block : blocks) {
    auto ba = std::make_unique<BlockAnalysis>();
    ba->block = block;
    ETLOPT_ASSIGN_OR_RETURN(
        ba->ctx, BlockContext::Build(analysis->workflow.get(), block));
    {
      obs::ScopedSpan ps_span("pipeline.plan_space");
      ps_span.Arg("block", static_cast<int64_t>(block.id));
      ETLOPT_ASSIGN_OR_RETURN(ba->plan_space,
                              PlanSpace::Build(ba->ctx, options_.plan_space));
      ps_span.Arg("ses", static_cast<int64_t>(ba->plan_space.num_ses()));
      ps_span.Arg("plans", static_cast<int64_t>(ba->plan_space.num_plans()));
    }
    ETLOPT_COUNTER_ADD("etlopt.core.plan_space.ses",
                       ba->plan_space.num_ses());
    {
      obs::ScopedSpan css_span("pipeline.css_generation");
      css_span.Arg("block", static_cast<int64_t>(block.id));
      ba->catalog = GenerateCss(ba->ctx, ba->plan_space, options_.css);
      css_span.Arg("stats", static_cast<int64_t>(ba->catalog.num_stats()));
      css_span.Arg("css", static_cast<int64_t>(ba->catalog.num_css()));
    }
    ETLOPT_COUNTER_ADD("etlopt.core.css.generated", ba->catalog.num_css());

    CostModelOptions cost_options = options_.cost;
    if (options_.tap_memory_budget_bytes > 0 &&
        cost_options.sketch_memory_cap <= 0) {
      // A sketch bounded by the tap budget replaces an exact collector, so
      // no single distinct/histogram statistic can cost the selector more
      // than the budget (cost units are integers, 8 bytes each).
      cost_options.sketch_memory_cap =
          std::max<int64_t>(1, options_.tap_memory_budget_bytes / 8);
    }
    if (!options_.calibration.empty() && cost_options.cpu_ns_per_row <= 0.0) {
      // Calibrated tap cost: the CPU charge per observed tuple becomes
      // measured nanoseconds instead of the paper's abstract unit cost.
      cost_options.cpu_ns_per_row = options_.calibration.NsPerRow("tap");
    }
    CostModel cost_model(&analysis->workflow->catalog(), cost_options);
    if (size_feedback != nullptr &&
        block_index < static_cast<int>(size_feedback->size())) {
      for (const auto& [se, rows] :
           (*size_feedback)[static_cast<size_t>(block_index)]) {
        cost_model.SetSeSize(se, rows);
      }
    }
    SelectionOptions sel_options;
    sel_options.free_source_stats = options_.free_source_stats;
    sel_options.force_observe = options_.force_observe;
    if (extra_force_observe != nullptr) {
      sel_options.force_observe.insert(sel_options.force_observe.end(),
                                       extra_force_observe->begin(),
                                       extra_force_observe->end());
    }
    ba->problem = BuildSelectionProblem(ba->ctx, ba->plan_space, ba->catalog,
                                        cost_model, sel_options);
    ba->problem.catalog = &ba->catalog;  // ensure self-reference is stable

    {
      obs::ScopedSpan sel_span("pipeline.selection");
      sel_span.Arg("block", static_cast<int64_t>(block.id));
      switch (options_.selector) {
        case SelectorKind::kGreedy:
          ba->selection = SelectGreedy(ba->problem);
          break;
        case SelectorKind::kIlp:
          ba->selection = SelectIlp(ba->problem, options_.ilp);
          break;
      }
      sel_span.Arg("method", ba->selection.method);
      sel_span.Arg("observed", static_cast<int64_t>(ba->selection.observed.size()));
      sel_span.Arg("cost", ba->selection.total_cost);
    }
    ETLOPT_COUNTER_ADD("etlopt.opt.selections", 1);
    if (!ba->selection.feasible) {
      return Status::Internal("statistics selection infeasible for block " +
                              std::to_string(block.id));
    }
    analysis->blocks.push_back(std::move(ba));
    ++block_index;
  }
  return analysis;
}

Result<RunOutcome> Pipeline::RunAndObserve(
    const Analysis& analysis, const SourceMap& sources,
    const std::vector<obs::RunRecord>* history) const {
  obs::ScopedSpan span("pipeline.run_and_observe");
  RunOutcome outcome;
  // Arm the guard's runtime estimate monitors from the last clean history
  // record: its per-SE estimates become expected cardinalities at the
  // designed plan's pipeline points. Off-mode runs (and first runs, which
  // have no history) execute with an empty monitor map — the seed path.
  ExecutorOptions exec_options = options_.executor;
  if (options_.guard.mode != obs::GuardMode::kOff) {
    const obs::RunRecord* last_clean = LastCleanRecord(history);
    if (last_clean != nullptr) {
      exec_options.monitors = BuildPlanMonitors(analysis, *last_clean);
      exec_options.monitor_qerror_bound = options_.guard.monitor_qerror;
      exec_options.monitor_abort =
          options_.guard.mode == obs::GuardMode::kStrict;
      // The same per-SE estimates size hash-join build tables: a join whose
      // build input carries an expected cardinality reserves from it.
      exec_options.build_rows_hints =
          BuildSideCardHints(*analysis.workflow, exec_options.monitors);
    }
  }
  std::unordered_map<NodeId, std::vector<Table>> slices;
  if (options_.num_threads > 1) {
    parallel::ParallelOptions popts;
    popts.num_threads = options_.num_threads;
    popts.executor = exec_options;
    parallel::ParallelExecutor pexec(analysis.workflow.get(), popts);
    ETLOPT_ASSIGN_OR_RETURN(parallel::ParallelResult pres,
                            pexec.Execute(sources, pool_.get()));
    outcome.exec = std::move(pres.exec);
    slices = std::move(pres.slices);
  } else {
    Executor executor(analysis.workflow.get(), exec_options);
    ETLOPT_ASSIGN_OR_RETURN(outcome.exec, executor.Execute(sources));
  }

  obs::ScopedSpan observe_span("pipeline.observation");
  ParallelTapContext tap_par;
  if (!slices.empty()) {
    tap_par.slices = &slices;
    tap_par.pool = pool_.get();
  }
  TapOptions taps;
  taps.memory_budget_bytes = options_.tap_memory_budget_bytes;
  // After an abort, observe in salvage mode: collect every statistic whose
  // pipeline point completed and skip the rest. A dead run still pays back
  // part of its instrumentation budget.
  taps.salvage = outcome.exec.aborted();

  std::unique_ptr<obs::CheckpointWriter> writer;
  obs::TapCheckpoint checkpoint;
  if (!options_.checkpoint_path.empty()) {
    writer = std::make_unique<obs::CheckpointWriter>(options_.checkpoint_path);
    checkpoint.fingerprint = obs::FingerprintWorkflow(*analysis.workflow);
    checkpoint.workflow = analysis.workflow->name();
    checkpoint.source_rows_read = SortedCounts(outcome.exec.source_rows_read);
    checkpoint.partition_rows = outcome.exec.partition_rows;
    taps.checkpoint_every_rows = options_.checkpoint_every_rows;
  }

  int64_t observed = 0;
  for (const auto& ba : analysis.blocks) {
    const std::vector<StatKey> keys =
        ba->selection.ObservedKeys(ba->catalog);
    observed += static_cast<int64_t>(keys.size());
    if (writer != nullptr) {
      taps.on_checkpoint = [&](const StatStore& in_progress) {
        obs::TapCheckpoint snapshot = checkpoint;
        snapshot.block_stats = outcome.block_stats;  // completed blocks
        snapshot.block_stats.push_back(in_progress);
        snapshot.rows_tapped = outcome.tap_report.rows_tapped;
        const Status flushed = writer->Flush(snapshot);
        if (!flushed.ok()) {
          ETLOPT_LOG(Warning) << "tap checkpoint flush failed: "
                              << flushed.ToString();
        }
      };
    }
    ETLOPT_ASSIGN_OR_RETURN(
        StatStore store, ObserveStatistics(ba->ctx, outcome.exec, keys, taps,
                                           &outcome.tap_report, tap_par));
    outcome.block_stats.push_back(std::move(store));
  }
  if (writer != nullptr) {
    if (outcome.exec.aborted()) {
      // Leave a final partial snapshot behind: everything the aborted run
      // managed to observe, plus its rows-read watermarks.
      obs::TapCheckpoint snapshot = checkpoint;
      snapshot.partial = true;
      snapshot.block_stats = outcome.block_stats;
      snapshot.rows_tapped = outcome.tap_report.rows_tapped;
      const Status flushed = writer->Flush(snapshot);
      if (!flushed.ok()) {
        ETLOPT_LOG(Warning) << "final tap checkpoint flush failed: "
                            << flushed.ToString();
      }
    } else {
      // Clean completion: the ledger record supersedes the sidecar.
      (void)writer->Discard();
    }
  }
  observe_span.Arg("stats_observed", observed);
  observe_span.Arg("sketch_taps",
                   static_cast<int64_t>(outcome.tap_report.sketch_taps));
  observe_span.Arg("tap_bytes", outcome.tap_report.tap_bytes);
  if (outcome.tap_report.salvage_skipped > 0) {
    observe_span.Arg("salvage_skipped",
                     static_cast<int64_t>(outcome.tap_report.salvage_skipped));
  }
  ETLOPT_COUNTER_ADD("etlopt.core.stats_observed", observed);
  if (!outcome.exec.profile.empty()) {
    // Attribute the measured instrumentation time to the profile, then
    // annotate every operator with the calibrated prediction that was live
    // for this run (pessimistic defaults on an uncalibrated run — that gap
    // is exactly what the accuracy tracker's cost q-error measures).
    outcome.exec.profile.tap_ns = outcome.tap_report.observe_ns;
    obs::AnnotatePredictions(options_.calibration, &outcome.exec.profile);
    obs::RecordCostAccuracy(outcome.exec.profile);
    obs::EmitProfileCounters(outcome.exec.profile);
  }
  return outcome;
}

Result<OptimizeOutcome> Pipeline::Optimize(
    const Analysis& analysis, const RunOutcome& run,
    const std::vector<obs::RunRecord>* history) const {
  obs::ScopedSpan span("pipeline.optimize");
  OptimizeOutcome outcome;
  std::vector<OptimizedPlan> plans(analysis.blocks.size());
  std::vector<PlanRewriter::BlockPlan> rewrites;

  // Guard evidence, part 1: drift-flagged statistics. Comparing this run's
  // observations against ledger history flags the keys whose values moved
  // beyond tolerance; estimates derived from a flagged key are distrusted.
  const bool guard_on = options_.guard.mode != obs::GuardMode::kOff;
  std::vector<std::vector<StatKey>> distrusted(analysis.blocks.size());
  if (guard_on && history != nullptr && !history->empty()) {
    obs::RunRecord current;
    current.partial = run.exec.aborted();
    current.block_stats = run.block_stats;
    for (size_t b = 0; b < analysis.blocks.size(); ++b) {
      for (const auto& [se, node] : analysis.blocks[b]->ctx.on_path()) {
        const auto out_it = run.exec.node_outputs.find(node);
        if (out_it == run.exec.node_outputs.end()) continue;
        obs::RunRecord::SeCard card;
        card.block = static_cast<int>(b);
        card.se = se;
        card.actual = static_cast<double>(out_it->second.num_rows());
        current.cards.push_back(card);
      }
    }
    const obs::DriftReport drift =
        obs::DriftDetector().Compare(*history, current);
    for (size_t b = 0; b < analysis.blocks.size(); ++b) {
      distrusted[b] = drift.ReinstrumentKeys(static_cast<int>(b));
    }
  }
  std::vector<obs::SeEvidence> evidence;

  for (size_t i = 0; i < analysis.blocks.size(); ++i) {
    const BlockAnalysis& ba = *analysis.blocks[i];
    Estimator estimator(&ba.ctx, &ba.catalog);
    {
      obs::ScopedSpan est_span("pipeline.estimation");
      est_span.Arg("block", static_cast<int64_t>(ba.block.id));
      ETLOPT_RETURN_IF_ERROR(estimator.DeriveAll(run.block_stats[i]));
    }
    // A degraded run (disabled taps, or an abort's salvaged prefix) leaves
    // holes in the observed statistics: estimate what the derivation
    // closure still reaches, and fall back to the designed join order for
    // any block whose SE coverage came out incomplete. Clean runs keep the
    // strict all-or-error contract.
    const bool degraded =
        run.exec.aborted() || run.tap_report.disabled_taps > 0;
    bool complete = true;
    CardMap cards;
    if (degraded) {
      for (RelMask se : ba.plan_space.subexpressions()) {
        const Result<int64_t> card = estimator.Cardinality(se);
        if (card.ok()) {
          cards[se] = *card;
        } else {
          complete = false;
        }
      }
    } else {
      ETLOPT_ASSIGN_OR_RETURN(
          cards, estimator.AllCardinalities(ba.plan_space.subexpressions()));
    }
    outcome.block_estimates.push_back(
        OptimizeOutcome::BlockEstimates{estimator.derived(),
                                        estimator.provenance()});
    if (guard_on) {
      // Guard evidence, part 2: per-SE confidence from provenance — exact
      // derivations score 1.0, sketch error bounds and drift-flagged
      // feeding statistics degrade it, and any sanitizer-clamped value in
      // the block marks its estimates as invariant-violating.
      for (const auto& [se, rows] : cards) {
        (void)rows;
        obs::SeEvidence ev;
        ev.block = static_cast<int>(i);
        ev.se = se;
        ev.confidence = estimator.CardinalityConfidence(
            se, distrusted[i], options_.guard.drift_penalty);
        if (estimator.clamped_values() > 0) {
          ev.confidence *= options_.guard.drift_penalty;
        }
        evidence.push_back(ev);
      }
    }
    ETLOPT_COUNTER_ADD("etlopt.core.cards_estimated",
                       static_cast<int64_t>(cards.size()));
    if (complete) {
      obs::ScopedSpan join_span("pipeline.join_optimization");
      join_span.Arg("block", static_cast<int64_t>(ba.block.id));
      ETLOPT_ASSIGN_OR_RETURN(plans[i],
                              OptimizeJoins(ba.ctx, ba.plan_space, cards,
                                            options_.optimizer_cost));
      outcome.initial_cost += plans[i].initial_cost;
      outcome.optimized_cost += plans[i].cost;
      if (ba.block.joins.size() >= 2) {
        rewrites.push_back(
            PlanRewriter::BlockPlan{&ba.block, &plans[i]});
      }
    } else {
      ETLOPT_LOG(Warning)
          << "block " << ba.block.id << ": statistics cover only "
          << cards.size() << " of " << ba.plan_space.subexpressions().size()
          << " SE(s) after degraded instrumentation; keeping the designed "
             "join order";
    }
    outcome.block_cards.push_back(std::move(cards));
  }
  {
    obs::ScopedSpan rewrite_span("pipeline.rewrite");
    rewrite_span.Arg("rewritten_blocks", static_cast<int64_t>(rewrites.size()));
    ETLOPT_ASSIGN_OR_RETURN(outcome.optimized,
                            PlanRewriter::Apply(*analysis.workflow, rewrites));
  }

  // ---- Adoption gate: may the proposal replace the designed plan? ----
  outcome.guard.mode = obs::GuardModeName(options_.guard.mode);
  if (guard_on) {
    obs::GuardInputs inputs;
    const std::string designed_sig =
        obs::FingerprintWorkflow(*analysis.workflow);
    inputs.proposed_signature = obs::FingerprintWorkflow(outcome.optimized);
    inputs.plan_changed = inputs.proposed_signature != designed_sig;
    inputs.initial_cost = outcome.initial_cost;
    inputs.optimized_cost = outcome.optimized_cost;
    inputs.evidence = std::move(evidence);
    inputs.calibration_coverage =
        obs::CalibrationCoverage(options_.calibration, run.exec.profile);
    if (history != nullptr && !history->empty()) {
      inputs.partial_history = history->back().partial;
      inputs.unsafe_signatures = UnsafeSignatures(*history);
    }
    const obs::GuardVerdict verdict =
        obs::EvaluateAdoption(options_.guard, inputs);
    outcome.guard.adopted = verdict.adopt;
    outcome.guard.evidence = verdict.evidence_score;
    outcome.guard.margin = verdict.margin;
    outcome.guard.reasons = verdict.reasons;
    if (!verdict.adopt) {
      outcome.guard.fell_back = true;
      outcome.guard.proposed_signature = inputs.proposed_signature;
      outcome.optimized = *analysis.workflow;
      outcome.optimized_cost = outcome.initial_cost;
      ETLOPT_LOG(Warning)
          << "plan-regression guard rejected the re-optimized plan "
          << inputs.proposed_signature << " (evidence "
          << verdict.evidence_score << ", margin " << verdict.margin
          << "); keeping the designed plan";
    }
  }
  ETLOPT_GAUGE_SET("etlopt.core.initial_cost", outcome.initial_cost);
  ETLOPT_GAUGE_SET("etlopt.core.optimized_cost", outcome.optimized_cost);
  return outcome;
}

Result<CycleOutcome> Pipeline::RunCycle(
    const Workflow& workflow, const SourceMap& sources,
    const std::vector<obs::RunRecord>* history) const {
  obs::ScopedSpan span("pipeline.cycle");
  span.Arg("workflow", workflow.name());
  ETLOPT_COUNTER_ADD("etlopt.core.cycles", 1);
  CycleOutcome cycle;
  Timer timer;
  // A prior run's monitor violations seed force_observe: the SEs whose
  // estimates were caught out get re-observed directly this cycle.
  std::vector<StatKey> guard_force_observe;
  if (history != nullptr && !history->empty()) {
    for (const obs::GuardRecord::Monitor& m : history->back().guard.violations) {
      guard_force_observe.push_back(StatKey::Card(m.se));
    }
  }
  ETLOPT_ASSIGN_OR_RETURN(
      cycle.analysis,
      Analyze(workflow, nullptr,
              guard_force_observe.empty() ? nullptr : &guard_force_observe));
  cycle.analyze_ms = timer.ElapsedMillis();
  timer.Restart();
  ETLOPT_ASSIGN_OR_RETURN(cycle.run,
                          RunAndObserve(*cycle.analysis, sources, history));
  cycle.execute_ms = timer.ElapsedMillis();
  timer.Restart();
  // Runtime monitor violations land in the cycle's guard section; the plan
  // whose estimates they condemn is the last clean record's proposal.
  cycle.opt.guard.mode = obs::GuardModeName(options_.guard.mode);
  if (!cycle.run.exec.monitor_violations.empty()) {
    for (const MonitorViolation& v : cycle.run.exec.monitor_violations) {
      obs::GuardRecord::Monitor m;
      m.block = v.block;
      m.se = v.se;
      m.node = static_cast<int64_t>(v.node);
      m.expected = v.expected;
      m.actual = v.actual;
      m.qerror = v.qerror;
      cycle.opt.guard.violations.push_back(m);
    }
    cycle.opt.guard.plan_unsafe = true;
    if (const obs::RunRecord* last_clean = LastCleanRecord(history)) {
      cycle.opt.guard.unsafe_signature = last_clean->plan_signature;
    }
  }
  if (cycle.run.aborted()) {
    // The salvaged statistics are a prefix, not a complete selection — no
    // basis for a trustworthy re-optimization. Keep the designed plan and
    // let the caller record a partial=true ledger line; the next run's
    // lifecycle consumes the salvage as low-confidence feedback.
    cycle.opt.optimized = *cycle.analysis->workflow;
    // Still derive every SE cardinality the salvage reaches — these become
    // the partial record's `cards`, the payload the next run's cost model
    // is seeded from. Completed-prefix outputs add on-path actuals for free.
    for (size_t b = 0; b < cycle.analysis->blocks.size(); ++b) {
      const auto& block = cycle.analysis->blocks[b];
      CardMap cards;
      Estimator estimator(&block->ctx, &block->catalog);
      if (b < cycle.run.block_stats.size() &&
          estimator.DeriveAll(cycle.run.block_stats[b]).ok()) {
        for (RelMask se : block->plan_space.subexpressions()) {
          const Result<int64_t> card = estimator.Cardinality(se);
          if (card.ok()) cards[se] = *card;
        }
      }
      for (const auto& [se, node] : block->ctx.on_path()) {
        const auto out_it = cycle.run.exec.node_outputs.find(node);
        if (out_it != cycle.run.exec.node_outputs.end()) {
          cards[se] = out_it->second.num_rows();
        }
      }
      cycle.opt.block_cards.push_back(std::move(cards));
    }
    cycle.optimize_ms = timer.ElapsedMillis();
    ETLOPT_LOG(Warning) << "cycle aborted ("
                        << AbortKindName(cycle.run.exec.abort_kind)
                        << "): " << cycle.run.exec.abort_reason
                        << "; keeping the designed plan";
    return cycle;
  }
  // Optimize overwrites cycle.opt with the gate's verdict; re-attach the
  // runtime monitor outcome recorded above.
  obs::GuardRecord monitor_outcome = std::move(cycle.opt.guard);
  ETLOPT_ASSIGN_OR_RETURN(cycle.opt,
                          Optimize(*cycle.analysis, cycle.run, history));
  cycle.opt.guard.violations = std::move(monitor_outcome.violations);
  cycle.opt.guard.plan_unsafe = monitor_outcome.plan_unsafe;
  cycle.opt.guard.unsafe_signature = std::move(monitor_outcome.unsafe_signature);
  cycle.optimize_ms = timer.ElapsedMillis();
  return cycle;
}

obs::RunRecord MakeRunRecord(const CycleOutcome& cycle, std::string run_id,
                             const std::vector<CardMap>* truth) {
  const Analysis& analysis = *cycle.analysis;
  obs::RunRecord record;
  record.run_id = std::move(run_id);
  record.fingerprint = obs::FingerprintWorkflow(*analysis.workflow);
  record.workflow = analysis.workflow->name();
  record.timestamp_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  if (!analysis.blocks.empty()) {
    record.selector = analysis.blocks[0]->selection.method;
  }
  {
    Status status;
    const std::string plan_text =
        WriteWorkflowText(cycle.opt.optimized, &status);
    record.plan_signature = obs::FingerprintText(
        status.ok() ? plan_text : cycle.opt.optimized.ToString());
  }
  record.initial_cost = cycle.opt.initial_cost;
  record.optimized_cost = cycle.opt.optimized_cost;
  record.analyze_ms = cycle.analyze_ms;
  record.execute_ms = cycle.execute_ms;
  record.optimize_ms = cycle.optimize_ms;

  for (size_t b = 0; b < cycle.opt.block_cards.size(); ++b) {
    // Deterministic record order: by SE mask within a block.
    std::vector<RelMask> ses;
    ses.reserve(cycle.opt.block_cards[b].size());
    for (const auto& [se, rows] : cycle.opt.block_cards[b]) {
      (void)rows;
      ses.push_back(se);
    }
    std::sort(ses.begin(), ses.end());
    for (RelMask se : ses) {
      obs::RunRecord::SeCard card;
      card.block = static_cast<int>(b);
      card.se = se;
      card.estimated =
          static_cast<double>(cycle.opt.block_cards[b].at(se));
      if (truth != nullptr && b < truth->size()) {
        const auto it = (*truth)[b].find(se);
        if (it != (*truth)[b].end()) {
          card.actual = static_cast<double>(it->second);
        }
      }
      record.cards.push_back(card);
    }
  }
  record.block_stats = cycle.run.block_stats;
  record.metrics = obs::MetricsRegistry::Global().CounterValues();

  const ExecutionResult& exec = cycle.run.exec;
  record.partial = exec.aborted();
  if (record.partial) {
    record.abort_reason = std::string(AbortKindName(exec.abort_kind)) + ": " +
                          exec.abort_reason;
    record.completion = exec.completion_fraction();
  }
  record.source_rows_read = SortedCounts(exec.source_rows_read);
  record.source_retries = SortedCounts(exec.source_retries);
  record.quarantined_rows = exec.quarantined_rows();
  record.num_threads = std::max(1, exec.num_workers);
  record.profile = exec.profile;
  record.build = obs::CurrentBuildInfo();
  record.guard = cycle.opt.guard;
  return record;
}

}  // namespace etlopt
