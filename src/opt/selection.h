#ifndef ETLOPT_OPT_SELECTION_H_
#define ETLOPT_OPT_SELECTION_H_

#include <string>
#include <vector>

#include "css/css.h"
#include "planspace/plan_space.h"
#include "stats/cost_model.h"

namespace etlopt {

// The statistics-selection instance of Section 5.1: the universe S (from the
// CSS catalog), which statistics are observable in the initial plan (S_O),
// which must be computable (S_C — the cardinality of every SE), and the
// observation cost c_i of each observable statistic.
struct SelectionProblem {
  const CssCatalog* catalog = nullptr;
  std::vector<double> cost;       // per stat index
  std::vector<char> observable;   // per stat index (S_O membership)
  std::vector<char> required;     // per stat index (S_C membership)
  // Per stat index: statistics every selection must include (drift-flagged
  // taps being re-instrumented). Always a subset of `observable`.
  std::vector<char> must_observe;

  int num_stats() const { return catalog->num_stats(); }
};

struct SelectionOptions {
  // Statistics already available from the source systems (Section 6.2);
  // added to S_O with zero cost.
  std::vector<StatKey> free_source_stats;
  // Statistics the drift detector flagged as stale: if observable, they are
  // forced into every selection so the next run refreshes them.
  std::vector<StatKey> force_observe;
};

// Builds the instance from a block's CSS catalog: observability from the
// initial plan, costs from the cost model, requirements = Card(e) for every
// SE in E.
SelectionProblem BuildSelectionProblem(const BlockContext& ctx,
                                       const PlanSpace& plan_space,
                                       const CssCatalog& catalog,
                                       const CostModel& cost_model,
                                       const SelectionOptions& options = {});

// The outcome of statistics selection.
struct SelectionResult {
  bool feasible = false;
  bool proven_optimal = false;
  double total_cost = 0.0;
  std::vector<int> observed;  // stat indices to observe
  std::string method;         // "greedy", "ilp", "ilp(greedy-fallback)", ...

  std::vector<StatKey> ObservedKeys(const CssCatalog& catalog) const;
};

// Shared sanity check: does observing `observed` make every required
// statistic computable (under monotone closure semantics)?
bool SelectionCovers(const SelectionProblem& problem,
                     const std::vector<int>& observed);

}  // namespace etlopt

#endif  // ETLOPT_OPT_SELECTION_H_
