#ifndef ETLOPT_STATS_STAT_KEY_H_
#define ETLOPT_STATS_STAT_KEY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "etl/attr_catalog.h"
#include "util/bitmask.h"

namespace etlopt {

// The kinds of statistics the framework reasons about (Section 3.2.5 plus
// the union-division reject statistics of Section 4.1.2).
enum class StatKind : uint8_t {
  kCard = 0,        // |T| — cardinality of a sub-expression
  kDistinct,        // |a_T| — number of distinct values of an attribute set
  kHist,            // H_T^a — (multi-)attribute frequency histogram
  kRejectJoinCard,  // |reject(L wrt join with k) ⋈ R| — J4 input
  kRejectJoinHist,  // H^b of the same reject join — J5 input
};

const char* StatKindName(StatKind kind);

// Chain-stage marker: kTopStage denotes the top of an input's operator chain
// (equivalently, the singleton join SE). Stages 0..k index intermediate
// outputs along the chain, 0 being the base source output.
inline constexpr int16_t kTopStage = -1;

// Identity of a statistic over a sub-expression within one optimizable
// block. Plain value type used as a hash key throughout CSS generation,
// selection, and estimation.
struct StatKey {
  StatKind kind = StatKind::kCard;
  RelMask rels = 0;     // the SE: join subset, or singleton for chain stats;
                        // for reject stats this is the R side of the side-join
  int16_t stage = kTopStage;  // only != kTopStage for single-input chain stats
  AttrMask attrs = 0;   // kHist/kDistinct/kRejectJoinHist attribute set
  RelMask reject_left = 0;  // reject stats: the L side whose rejects are used
  uint8_t reject_k = 0;     // reject stats: the relation L was rejected against

  // ---- factory helpers ----
  static StatKey Card(RelMask rels) {
    return StatKey{StatKind::kCard, rels, kTopStage, 0, 0, 0};
  }
  static StatKey CardStage(int rel, int16_t stage) {
    return StatKey{StatKind::kCard, RelMask{1} << rel, stage, 0, 0, 0};
  }
  static StatKey Hist(RelMask rels, AttrMask attrs) {
    return StatKey{StatKind::kHist, rels, kTopStage, attrs, 0, 0};
  }
  static StatKey HistStage(int rel, int16_t stage, AttrMask attrs) {
    return StatKey{StatKind::kHist, RelMask{1} << rel, stage, attrs, 0, 0};
  }
  static StatKey Distinct(RelMask rels, AttrMask attrs) {
    return StatKey{StatKind::kDistinct, rels, kTopStage, attrs, 0, 0};
  }
  static StatKey DistinctStage(int rel, int16_t stage, AttrMask attrs) {
    return StatKey{StatKind::kDistinct, RelMask{1} << rel, stage, attrs, 0, 0};
  }
  static StatKey RejectJoinCard(RelMask left, int k, RelMask right) {
    return StatKey{StatKind::kRejectJoinCard, right, kTopStage, 0, left,
                   static_cast<uint8_t>(k)};
  }
  static StatKey RejectJoinHist(RelMask left, int k, RelMask right,
                                AttrMask attrs) {
    return StatKey{StatKind::kRejectJoinHist, right, kTopStage, attrs, left,
                   static_cast<uint8_t>(k)};
  }

  bool is_reject() const {
    return kind == StatKind::kRejectJoinCard ||
           kind == StatKind::kRejectJoinHist;
  }
  bool is_count_like() const {
    return kind == StatKind::kCard || kind == StatKind::kDistinct ||
           kind == StatKind::kRejectJoinCard;
  }
  bool is_chain_stage() const { return stage != kTopStage; }

  bool operator==(const StatKey& o) const {
    return kind == o.kind && rels == o.rels && stage == o.stage &&
           attrs == o.attrs && reject_left == o.reject_left &&
           reject_k == o.reject_k;
  }

  // Rendering like "H{R0,R2}^{cust_id}" or "|R1@s0|". Pass the catalog for
  // attribute names (may be null to print raw ids).
  std::string ToString(const AttrCatalog* catalog = nullptr) const;
};

struct StatKeyHash {
  size_t operator()(const StatKey& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(static_cast<uint64_t>(k.kind));
    mix(k.rels);
    mix(static_cast<uint64_t>(static_cast<uint16_t>(k.stage)));
    mix(k.attrs);
    mix(k.reject_left);
    mix(k.reject_k);
    return static_cast<size_t>(h);
  }
};

}  // namespace etlopt

#endif  // ETLOPT_STATS_STAT_KEY_H_
