file(REMOVE_RECURSE
  "CMakeFiles/reoptimization_lifecycle.dir/reoptimization_lifecycle.cpp.o"
  "CMakeFiles/reoptimization_lifecycle.dir/reoptimization_lifecycle.cpp.o.d"
  "reoptimization_lifecycle"
  "reoptimization_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reoptimization_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
