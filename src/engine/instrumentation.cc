#include "engine/instrumentation.h"

#include "planspace/observability.h"

namespace etlopt {
namespace {

// The pipeline-point table for a Card/Distinct/Hist key.
Result<const Table*> PointTable(const BlockContext& ctx,
                                const ExecutionResult& exec,
                                const StatKey& key) {
  NodeId node = kInvalidNode;
  if (key.is_chain_stage()) {
    node = ctx.StageNode(LowestBit(key.rels), key.stage);
  } else {
    auto it = ctx.on_path().find(key.rels);
    if (it == ctx.on_path().end()) {
      return Status::InvalidArgument("SE not on-path: " + key.ToString());
    }
    node = it->second;
  }
  auto it = exec.node_outputs.find(node);
  if (it == exec.node_outputs.end()) {
    return Status::Internal("no cached output for node " +
                            std::to_string(node));
  }
  return &it->second;
}

// Materializes reject(L wrt k) ⋈ R for a reject-join key.
Result<Table> RejectSideJoin(const BlockContext& ctx,
                             const ExecutionResult& exec, const StatKey& key) {
  const RelMask l = key.reject_left;
  const RelMask k_mask = RelMask{1} << key.reject_k;
  const RelMask r = key.rels;

  // The designed join of L with k.
  auto join_it = ctx.on_path().find(l | k_mask);
  if (join_it == ctx.on_path().end()) {
    return Status::InvalidArgument("L⋈k not on-path for " + key.ToString());
  }
  const NodeId join_node = join_it->second;
  const BlockJoin* bj = nullptr;
  for (const BlockJoin& j : ctx.block().joins) {
    if (j.node == join_node) {
      bj = &j;
      break;
    }
  }
  if (bj == nullptr) return Status::Internal("designed join not found");

  const Table* rejects = nullptr;
  if (bj->left == l && bj->right == k_mask) {
    auto it = exec.join_rejects.find(join_node);
    if (it != exec.join_rejects.end()) rejects = &it->second;
  } else if (bj->left == k_mask && bj->right == l) {
    auto it = exec.join_rejects_right.find(join_node);
    if (it != exec.join_rejects_right.end()) rejects = &it->second;
  }
  if (rejects == nullptr) {
    return Status::Internal("reject rows unavailable for " + key.ToString());
  }

  // Side join with the on-path R table on the edge connecting L and R.
  const int edge = ctx.graph().CrossingEdge(l, r);
  if (edge < 0) {
    return Status::InvalidArgument("no unique edge between L and R for " +
                                   key.ToString());
  }
  const AttrId attr = ctx.graph().edges()[static_cast<size_t>(edge)].attr;
  auto r_it = ctx.on_path().find(r);
  if (r_it == ctx.on_path().end()) {
    return Status::InvalidArgument("R not on-path for " + key.ToString());
  }
  const Table& r_table = exec.node_outputs.at(r_it->second);
  return HashJoin(*rejects, r_table, attr, nullptr);
}

}  // namespace

Result<StatStore> ObserveStatistics(const BlockContext& ctx,
                                    const ExecutionResult& exec,
                                    const std::vector<StatKey>& keys) {
  StatStore store;
  for (const StatKey& key : keys) {
    if (!IsObservable(key, ctx)) {
      return Status::InvalidArgument("statistic not observable: " +
                                     key.ToString());
    }
    switch (key.kind) {
      case StatKind::kCard: {
        ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                PointTable(ctx, exec, key));
        store.Set(key, StatValue::Count(table->num_rows()));
        break;
      }
      case StatKind::kDistinct: {
        ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                PointTable(ctx, exec, key));
        store.Set(key, StatValue::Count(table->CountDistinct(key.attrs)));
        break;
      }
      case StatKind::kHist: {
        ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                PointTable(ctx, exec, key));
        store.Set(key, StatValue::Hist(table->BuildHistogram(key.attrs)));
        break;
      }
      case StatKind::kRejectJoinCard: {
        ETLOPT_ASSIGN_OR_RETURN(Table joined, RejectSideJoin(ctx, exec, key));
        store.Set(key, StatValue::Count(joined.num_rows()));
        break;
      }
      case StatKind::kRejectJoinHist: {
        ETLOPT_ASSIGN_OR_RETURN(Table joined, RejectSideJoin(ctx, exec, key));
        store.Set(key, StatValue::Hist(joined.BuildHistogram(key.attrs)));
        break;
      }
    }
  }
  return store;
}

Result<Table> MaterializeSubexpression(const BlockContext& ctx, RelMask rels,
                                       const ExecutionResult& exec) {
  // Start from the lowest relation's top and join the remaining ones along
  // designed edges (any connected order is equivalent).
  std::vector<int> members = MaskToIndices(rels);
  auto top_table = [&](int rel) -> Result<Table> {
    const NodeId node = ctx.TopNode(rel);
    auto it = exec.node_outputs.find(node);
    if (it == exec.node_outputs.end()) {
      return Status::Internal("no cached output for relation top");
    }
    return it->second;
  };
  ETLOPT_ASSIGN_OR_RETURN(Table acc, top_table(members[0]));
  RelMask done = RelMask{1} << members[0];
  while (done != rels) {
    bool progressed = false;
    for (int rel : members) {
      const RelMask bit = RelMask{1} << rel;
      if (done & bit) continue;
      const int edge = ctx.graph().CrossingEdge(done, bit);
      if (edge < 0) continue;
      const AttrId attr = ctx.graph().edges()[static_cast<size_t>(edge)].attr;
      ETLOPT_ASSIGN_OR_RETURN(Table next, top_table(rel));
      acc = HashJoin(acc, next, attr, nullptr);
      done |= bit;
      progressed = true;
    }
    if (!progressed) {
      return Status::InvalidArgument("SE is not connected");
    }
  }
  return acc;
}

Result<std::unordered_map<RelMask, int64_t>> ComputeGroundTruthCards(
    const BlockContext& ctx, const std::vector<RelMask>& subexpressions,
    const ExecutionResult& exec) {
  std::unordered_map<RelMask, int64_t> cards;
  for (RelMask se : subexpressions) {
    ETLOPT_ASSIGN_OR_RETURN(Table table,
                            MaterializeSubexpression(ctx, se, exec));
    cards[se] = table.num_rows();
  }
  return cards;
}

}  // namespace etlopt
