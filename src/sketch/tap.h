#ifndef ETLOPT_SKETCH_TAP_H_
#define ETLOPT_SKETCH_TAP_H_

#include <cstdint>
#include <vector>

#include "sketch/countmin.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "stats/histogram.h"
#include "util/common.h"

namespace etlopt {
namespace sketch {

// Shape of the sketches one approximate tap is allowed to allocate. Derived
// from the per-tap share of PipelineOptions::tap_memory_budget_bytes.
struct TapSketchConfig {
  int hll_precision = 12;  // 4 KiB, ~1.6% standard error
  int cm_width = 1024;     // with depth 4: 32 KiB
  int cm_depth = 4;
  int kmv_k = 1024;

  // Largest shapes that fit `bytes_per_tap` (floored at usable minimums —
  // a tap never fails for want of budget, its error bound just widens).
  // `arity` is the attribute count of histogram taps, which sizes the KMV
  // payload entries.
  static TapSketchConfig ForBudget(int64_t bytes_per_tap, int arity);

  int64_t DistinctTapBytes() const;
  int64_t HistTapBytes(int arity) const;
};

// What an exact tap would hold in memory, estimated before observing (the
// fallback-vs-sketch decision input). Exact distinct/histogram collectors
// hash every distinct attribute combination: ~one hash-table entry plus the
// key values per distinct row, bounded above by the row count.
int64_t EstimateExactDistinctBytes(int64_t rows, int arity);
int64_t EstimateExactHistBytes(int64_t rows, int arity);

// Streaming distinct-count tap: HLL over hashed attribute combinations.
class DistinctTap {
 public:
  explicit DistinctTap(const TapSketchConfig& config)
      : hll_(config.hll_precision) {}

  void AddRow(const std::vector<Value>& key);
  // Columnar feed: hashes rows [0, rows) straight off the key-column
  // arrays (values in attribute order). Bit-identical state to AddRow per
  // row — same hash chain, no per-row key materialization.
  void AddColumns(const std::vector<const Value*>& cols, int64_t rows);

  // Folds a per-partition tap into this one (register-wise max). Merging
  // the taps of a partitioned stream yields bit-identical state to one tap
  // fed the whole stream: rows hash the same everywhere and HLL registers
  // keep maxima, so the union is order- and placement-insensitive. Shapes
  // must match (same TapSketchConfig).
  Status Merge(const DistinctTap& other) { return hll_.Merge(other.hll_); }

  int64_t Estimate() const { return hll_.Estimate(); }
  double RelError() const { return hll_.StandardError(); }
  int64_t MemoryBytes() const { return hll_.MemoryBytes(); }
  const Hll& hll() const { return hll_; }

 private:
  Hll hll_;
};

// Streaming frequency-histogram tap: Count-Min for per-key counts plus a
// KMV bottom-k whose payloads are a uniform sample of the distinct bucket
// keys. Build() re-assembles an approximate Histogram: one bucket per
// sampled key, counts from Count-Min, rescaled so the total mass matches
// the observed row count when the key sample is partial (keeps |H| == |T|,
// the identity the estimator's I1 rule depends on).
class HistTap {
 public:
  HistTap(const TapSketchConfig& config, int arity);

  void AddRow(const std::vector<Value>& key);
  // Columnar feed, bit-identical to AddRow per row: Count-Min and the
  // row counter consume the column-pass hash directly; the KMV key payload
  // is materialized only for rows its admission test would retain (the
  // rejected-row saturation bookkeeping still runs).
  void AddColumns(const std::vector<const Value*>& cols, int64_t rows);

  // Folds a per-partition tap into this one: Count-Min counters add, the
  // KMV sample unions then re-truncates to bottom-k, and rows_seen sums —
  // each a lossless union, so merged state equals the single-stream tap's
  // state exactly. Shapes must match (same TapSketchConfig and arity).
  Status Merge(const HistTap& other);

  Histogram Build(AttrMask attrs) const;
  int64_t rows_seen() const { return rows_; }
  // Combined one-sided CM error and (when the key sample is partial) KMV
  // sampling error — the tap's relative error annotation.
  double RelError() const;
  int64_t MemoryBytes() const {
    return cm_.MemoryBytes() + kmv_.MemoryBytes();
  }

  const CountMin& cm() const { return cm_; }
  const Kmv& kmv() const { return kmv_; }

 private:
  CountMin cm_;
  Kmv kmv_;
  int64_t rows_ = 0;
};

}  // namespace sketch
}  // namespace etlopt

#endif  // ETLOPT_SKETCH_TAP_H_
