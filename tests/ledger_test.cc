#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/lifecycle.h"
#include "core/pipeline.h"
#include "engine/instrumentation.h"
#include "obs/drift.h"
#include "obs/explain.h"
#include "obs/ledger.h"
#include "stats/stat_io.h"
#include "test_util.h"

namespace etlopt {
namespace {

std::string TempPath(const std::string& name) {
  // Pid-qualified so the sanitizer twin of this suite can run under the
  // same ctest invocation without clobbering this process's files.
  return ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

obs::RunRecord MakeRecord(const std::string& run_id, int64_t card,
                          const std::string& fingerprint = "abcd0123abcd0123") {
  obs::RunRecord record;
  record.run_id = run_id;
  record.fingerprint = fingerprint;
  record.workflow = "wf";
  record.timestamp_ms = 1700000000000;
  record.selector = "greedy";
  record.plan_signature = "0011223344556677";
  record.initial_cost = 10.0;
  record.optimized_cost = 8.0;
  record.analyze_ms = 1.5;
  record.execute_ms = 20.25;
  record.optimize_ms = 0.75;
  StatStore store;
  store.Set(StatKey::Card(1), StatValue::Count(card));
  record.block_stats.push_back(std::move(store));
  obs::RunRecord::SeCard se_card;
  se_card.block = 0;
  se_card.se = 3;
  se_card.estimated = static_cast<double>(card);
  se_card.actual = static_cast<double>(card + 1);
  record.cards.push_back(se_card);
  record.metrics.emplace_back("etlopt.core.cycles", 1);
  return record;
}

// ---------------------------------------------------------------------------
// StatKey spec codec
// ---------------------------------------------------------------------------

TEST(StatKeySpecTest, RoundTripsEveryKind) {
  const std::vector<StatKey> keys = {
      StatKey::Card(5),
      StatKey::CardStage(3, 2),
      StatKey::Hist(7, 0x4),
      StatKey::Distinct(2, 0x1),
      StatKey::RejectJoinCard(6, 1, 2),
  };
  for (const StatKey& key : keys) {
    const std::string spec = WriteStatKeySpec(key);
    const Result<StatKey> parsed = ParseStatKeySpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, key) << spec;
  }
}

TEST(StatKeySpecTest, RejectsGarbageAndTrailingTokens) {
  EXPECT_FALSE(ParseStatKeySpec("").ok());
  EXPECT_FALSE(ParseStatKeySpec("frob rels=1").ok());
  EXPECT_FALSE(ParseStatKeySpec("card rels=1 stage=-1 extra=9").ok());
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(FingerprintTest, StableAndSensitiveToEdits) {
  const auto ex = testing_util::MakePaperExample();
  const std::string fp1 = obs::FingerprintWorkflow(ex.workflow);
  const std::string fp2 = obs::FingerprintWorkflow(ex.workflow);
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1.size(), 16u);

  const auto other = testing_util::MakePaperExample(7, 100, 40, 25);
  // Same structure, same fingerprint (data volume is not identity).
  EXPECT_EQ(obs::FingerprintWorkflow(other.workflow), fp1);

  EXPECT_NE(obs::FingerprintText("a"), obs::FingerprintText("b"));
  EXPECT_EQ(obs::FingerprintText("a").size(), 16u);
}

// ---------------------------------------------------------------------------
// RunRecord JSON round-trip
// ---------------------------------------------------------------------------

TEST(RunRecordTest, JsonLineRoundTrips) {
  const obs::RunRecord record = MakeRecord("run-1", 100);
  const std::string line = record.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const Result<obs::RunRecord> parsed = obs::RunRecord::FromJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->run_id, "run-1");
  EXPECT_EQ(parsed->fingerprint, record.fingerprint);
  EXPECT_EQ(parsed->workflow, "wf");
  EXPECT_EQ(parsed->timestamp_ms, record.timestamp_ms);
  EXPECT_EQ(parsed->selector, "greedy");
  EXPECT_EQ(parsed->plan_signature, record.plan_signature);
  EXPECT_DOUBLE_EQ(parsed->initial_cost, 10.0);
  EXPECT_DOUBLE_EQ(parsed->optimized_cost, 8.0);
  EXPECT_DOUBLE_EQ(parsed->analyze_ms, 1.5);
  EXPECT_DOUBLE_EQ(parsed->execute_ms, 20.25);
  EXPECT_DOUBLE_EQ(parsed->optimize_ms, 0.75);
  ASSERT_EQ(parsed->cards.size(), 1u);
  EXPECT_EQ(parsed->cards[0].block, 0);
  EXPECT_EQ(parsed->cards[0].se, RelMask{3});
  EXPECT_DOUBLE_EQ(parsed->cards[0].estimated, 100.0);
  EXPECT_DOUBLE_EQ(parsed->cards[0].actual, 101.0);
  ASSERT_EQ(parsed->block_stats.size(), 1u);
  const Result<int64_t> count =
      parsed->block_stats[0].GetCount(StatKey::Card(1));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 100);
  ASSERT_EQ(parsed->metrics.size(), 1u);
  EXPECT_EQ(parsed->metrics[0].first, "etlopt.core.cycles");
  EXPECT_EQ(parsed->metrics[0].second, 1);
}

TEST(RunRecordTest, FromJsonLineRejectsNonRecords) {
  EXPECT_FALSE(obs::RunRecord::FromJsonLine("").ok());
  EXPECT_FALSE(obs::RunRecord::FromJsonLine("{\"run_id\":").ok());
  EXPECT_FALSE(obs::RunRecord::FromJsonLine("[1,2]").ok());
}

// ---------------------------------------------------------------------------
// RunLedger
// ---------------------------------------------------------------------------

TEST(RunLedgerTest, MissingFileLoadsEmpty) {
  obs::RunLedger ledger(TempPath("does_not_exist.ledger.jsonl"));
  const Result<obs::LedgerLoadResult> loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->records.empty());
  EXPECT_EQ(loaded->skipped_lines, 0);
}

TEST(RunLedgerTest, AppendAndReloadPreservesOrderAndHistory) {
  const std::string path = TempPath("roundtrip.ledger.jsonl");
  std::remove(path.c_str());
  obs::RunLedger ledger(path);
  ASSERT_TRUE(ledger.Append(MakeRecord("run-1", 100)).ok());
  ASSERT_TRUE(ledger.Append(MakeRecord("run-2", 120)).ok());
  ASSERT_TRUE(
      ledger.Append(MakeRecord("run-1", 7, "ffff0000ffff0000")).ok());

  const Result<obs::LedgerLoadResult> loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->skipped_lines, 0);
  ASSERT_EQ(loaded->records.size(), 3u);
  EXPECT_EQ(loaded->records[0].run_id, "run-1");
  EXPECT_EQ(loaded->records[1].run_id, "run-2");

  const auto history =
      obs::RunLedger::HistoryFor(loaded->records, "abcd0123abcd0123");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].run_id, "run-1");
  EXPECT_EQ(history[1].run_id, "run-2");
  EXPECT_EQ(obs::RunLedger::NextRunId(loaded->records, "abcd0123abcd0123"),
            "run-3");
  EXPECT_EQ(obs::RunLedger::NextRunId(loaded->records, "ffff0000ffff0000"),
            "run-2");
  EXPECT_EQ(obs::RunLedger::NextRunId(loaded->records, "0000000000000000"),
            "run-1");
  std::remove(path.c_str());
}

TEST(RunLedgerTest, TruncatedLastLineIsSkippedAndAppendRepairs) {
  const std::string path = TempPath("truncated.ledger.jsonl");
  std::remove(path.c_str());
  obs::RunLedger ledger(path);
  ASSERT_TRUE(ledger.Append(MakeRecord("run-1", 100)).ok());
  ASSERT_TRUE(ledger.Append(MakeRecord("run-2", 120)).ok());

  // Simulate a crash mid-append: chop the last record in half. Cut
  // relative to the end of the first line so the truncation is guaranteed
  // to land inside the second record.
  std::string content = ReadFile(path);
  ASSERT_FALSE(content.empty());
  const size_t first_end = content.find('\n');
  ASSERT_NE(first_end, std::string::npos);
  WriteFile(path,
            content.substr(0, first_end + (content.size() - first_end) / 2));

  const Result<obs::LedgerLoadResult> loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->skipped_lines, 1);
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].run_id, "run-1");

  // The next append writes a whole, parseable file again.
  ASSERT_TRUE(ledger.Append(MakeRecord("run-2", 130)).ok());
  const Result<obs::LedgerLoadResult> repaired = ledger.Load();
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(repaired->records.size(), 2u);
  EXPECT_EQ(repaired->records[1].run_id, "run-2");
  std::remove(path.c_str());
}

TEST(RunLedgerTest, GarbageLinesAreCountedNotFatal) {
  const std::string path = TempPath("garbage.ledger.jsonl");
  WriteFile(path, "not json\n" + MakeRecord("run-1", 50).ToJsonLine() +
                      "\n{\"half\": \n");
  const Result<obs::LedgerLoadResult> loaded =
      obs::RunLedger(path).Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->skipped_lines, 2);
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].run_id, "run-1");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// DriftDetector
// ---------------------------------------------------------------------------

TEST(DriftDetectorTest, NoHistoryMeansNoDrift) {
  obs::DriftOptions options;
  const obs::DriftReport report =
      obs::DriftDetector(options).Compare({}, MakeRecord("run-1", 100));
  for (const obs::DriftFinding& f : report.findings) {
    EXPECT_FALSE(f.drifted);
    EXPECT_EQ(f.history_runs, 0);
  }
  EXPECT_FALSE(report.any_drift());
}

TEST(DriftDetectorTest, FlagsRelativeChangeAboveThreshold) {
  obs::DriftOptions options;
  options.rel_change_threshold = 0.5;
  options.qerror_threshold = 1e9;  // isolate the relative-change trigger
  const obs::DriftDetector detector(options);

  // 100 -> 120: 20% growth, within tolerance.
  EXPECT_FALSE(detector
                   .Compare({MakeRecord("run-1", 100)},
                            MakeRecord("run-2", 120))
                   .any_drift());
  // 100 -> 300: 200% growth, flagged.
  const obs::DriftReport report = detector.Compare(
      {MakeRecord("run-1", 100)}, MakeRecord("run-2", 300));
  EXPECT_TRUE(report.any_drift());
  EXPECT_TRUE(report.IsDrifted(0, StatKey::Card(1)));
  const std::vector<StatKey> keys = report.ReinstrumentKeys(0);
  EXPECT_FALSE(keys.empty());
}

TEST(DriftDetectorTest, FlagsQErrorShrinkage) {
  obs::DriftOptions options;
  options.rel_change_threshold = 1e9;  // isolate the q-error trigger
  options.qerror_threshold = 2.0;
  const obs::DriftDetector detector(options);
  // 100 -> 30: relative change is only -0.7 of a large base, but the
  // q-error 100/30 = 3.3 catches the shrink.
  const obs::DriftReport report = detector.Compare(
      {MakeRecord("run-1", 100)}, MakeRecord("run-2", 30));
  EXPECT_TRUE(report.any_drift());
}

TEST(DriftDetectorTest, EwmaWeighsRecentRunsMore) {
  obs::DriftOptions options;
  options.ewma_alpha = 0.5;
  options.rel_change_threshold = 0.5;
  options.qerror_threshold = 1e9;
  const obs::DriftDetector detector(options);
  // History 100, 200: EWMA = 0.5*200 + 0.5*100 = 150. Current 220 is +47%
  // of 150 — no drift. Against a plain mean-free last-value-only baseline
  // of 100 it would have been +120%.
  const obs::DriftReport report = detector.Compare(
      {MakeRecord("run-1", 100), MakeRecord("run-2", 200)},
      MakeRecord("run-3", 220));
  ASSERT_FALSE(report.findings.empty());
  const obs::DriftFinding* card = nullptr;
  for (const obs::DriftFinding& f : report.findings) {
    if (f.key == StatKey::Card(1)) card = &f;
  }
  ASSERT_NE(card, nullptr);
  EXPECT_DOUBLE_EQ(card->ewma, 150.0);
  EXPECT_EQ(card->history_runs, 2);
  EXPECT_FALSE(card->drifted);
}

TEST(DriftOptionsTest, EnvOverridesAreRead) {
  ::setenv("ETLOPT_DRIFT_REL_THRESHOLD", "0.9", 1);
  ::setenv("ETLOPT_DRIFT_QERROR_THRESHOLD", "5.5", 1);
  ::setenv("ETLOPT_DRIFT_EWMA_ALPHA", "0.7", 1);
  const obs::DriftOptions options = obs::DriftOptions::FromEnv();
  EXPECT_DOUBLE_EQ(options.rel_change_threshold, 0.9);
  EXPECT_DOUBLE_EQ(options.qerror_threshold, 5.5);
  EXPECT_DOUBLE_EQ(options.ewma_alpha, 0.7);
  ::unsetenv("ETLOPT_DRIFT_REL_THRESHOLD");
  ::unsetenv("ETLOPT_DRIFT_QERROR_THRESHOLD");
  ::unsetenv("ETLOPT_DRIFT_EWMA_ALPHA");
  const obs::DriftOptions defaults = obs::DriftOptions::FromEnv();
  EXPECT_DOUBLE_EQ(defaults.rel_change_threshold, 0.5);
}

// ---------------------------------------------------------------------------
// Estimator provenance
// ---------------------------------------------------------------------------

TEST(ProvenanceTest, ObservedAndDerivedKeysAreDistinguished) {
  const auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(ex.workflow);
  ASSERT_TRUE(analysis.ok());
  const auto run = pipeline.RunAndObserve(**analysis, ex.sources);
  ASSERT_TRUE(run.ok());

  const BlockAnalysis& ba = *(*analysis)->blocks[0];
  Estimator estimator(&ba.ctx, &ba.catalog);
  ASSERT_TRUE(estimator.DeriveAll(run->block_stats[0]).ok());

  const std::vector<StatKey> observed = ba.selection.ObservedKeys(ba.catalog);
  ASSERT_FALSE(observed.empty());
  int derived_seen = 0;
  for (const StatKey& key : observed) {
    const StatProvenance* prov = estimator.FindProvenance(key);
    ASSERT_NE(prov, nullptr) << key.ToString();
    EXPECT_TRUE(prov->observed);
    // An observed key is its own (only) leaf.
    const std::vector<StatKey> leaves = estimator.ObservedLeaves(key);
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_EQ(leaves[0], key);
  }
  for (RelMask se : ba.plan_space.subexpressions()) {
    const StatKey card = StatKey::Card(se);
    const StatProvenance* prov = estimator.FindProvenance(card);
    if (prov == nullptr || prov->observed) continue;
    ++derived_seen;
    EXPECT_FALSE(prov->inputs.empty());
    // Every transitive leaf of a derived estimate must itself be observed.
    const std::vector<StatKey> leaves = estimator.ObservedLeaves(card);
    ASSERT_FALSE(leaves.empty());
    for (const StatKey& leaf : leaves) {
      const StatProvenance* leaf_prov = estimator.FindProvenance(leaf);
      ASSERT_NE(leaf_prov, nullptr);
      EXPECT_TRUE(leaf_prov->observed) << leaf.ToString();
    }
  }
  EXPECT_GT(derived_seen, 0) << "expected at least one CSS-derived SE card";
}

// ---------------------------------------------------------------------------
// Forced observation (re-instrumentation)
// ---------------------------------------------------------------------------

TEST(ForceObserveTest, FlaggedKeyAppearsInSelectionEvenIfDerivable) {
  const auto ex = testing_util::MakePaperExample();
  // Baseline: find a derivable (non-selected) observable card statistic.
  Pipeline baseline;
  const auto base = baseline.Analyze(ex.workflow);
  ASSERT_TRUE(base.ok());
  const BlockAnalysis& ba = *(*base)->blocks[0];
  StatKey forced_key;
  bool found = false;
  for (int s = 0; s < ba.catalog.num_stats(); ++s) {
    if (!ba.problem.observable[static_cast<size_t>(s)]) continue;
    const StatKey& key = ba.catalog.stat(s);
    bool selected = false;
    for (int o : ba.selection.observed) selected = selected || o == s;
    if (!selected) {
      forced_key = key;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "paper example should leave some stat unselected";

  PipelineOptions options;
  options.force_observe = {forced_key};
  Pipeline pipeline(options);
  const auto analysis = pipeline.Analyze(ex.workflow);
  ASSERT_TRUE(analysis.ok());
  const BlockAnalysis& fa = *(*analysis)->blocks[0];
  const std::vector<StatKey> observed = fa.selection.ObservedKeys(fa.catalog);
  bool present = false;
  for (const StatKey& key : observed) present = present || key == forced_key;
  EXPECT_TRUE(present) << "forced key missing: " << forced_key.ToString();

  // ILP path honors the forced lower bound too.
  PipelineOptions ilp_options = options;
  ilp_options.selector = SelectorKind::kIlp;
  Pipeline ilp_pipeline(ilp_options);
  const auto ilp_analysis = ilp_pipeline.Analyze(ex.workflow);
  ASSERT_TRUE(ilp_analysis.ok());
  const BlockAnalysis& ia = *(*ilp_analysis)->blocks[0];
  const std::vector<StatKey> ilp_observed =
      ia.selection.ObservedKeys(ia.catalog);
  bool ilp_present = false;
  for (const StatKey& key : ilp_observed) {
    ilp_present = ilp_present || key == forced_key;
  }
  EXPECT_TRUE(ilp_present);
}

// ---------------------------------------------------------------------------
// End-to-end: two runs, drift, provenance across the ledger
// ---------------------------------------------------------------------------

TEST(CrossRunTest, SecondRunExplainCitesFirstRunStatisticsAndFlagsDrift) {
  const std::string path = TempPath("cross_run.ledger.jsonl");
  std::remove(path.c_str());
  obs::RunLedger ledger(path);
  Pipeline pipeline;

  // ---- Run 1: baseline data ----
  const auto ex1 = testing_util::MakePaperExample(7, 400, 40, 25);
  const Result<CycleOutcome> cycle1 =
      pipeline.RunCycle(ex1.workflow, ex1.sources);
  ASSERT_TRUE(cycle1.ok()) << cycle1.status().ToString();
  {
    std::vector<CardMap> truths;
    for (const auto& ba : cycle1->analysis->blocks) {
      const auto truth = ComputeGroundTruthCards(
          ba->ctx, ba->plan_space.subexpressions(), cycle1->run.exec);
      ASSERT_TRUE(truth.ok());
      truths.push_back(*truth);
    }
    const auto loaded = ledger.Load();
    ASSERT_TRUE(loaded.ok());
    const obs::RunRecord record = MakeRunRecord(
        *cycle1,
        obs::RunLedger::NextRunId(
            loaded->records, obs::FingerprintWorkflow(ex1.workflow)),
        &truths);
    EXPECT_EQ(record.run_id, "run-1");
    EXPECT_FALSE(record.selector.empty());
    EXPECT_EQ(record.plan_signature.size(), 16u);
    ASSERT_TRUE(ledger.Append(record).ok());
  }

  // ---- Run 2: the Orders source tripled (perturbed data) ----
  const auto ex2 = testing_util::MakePaperExample(11, 1200, 40, 25);
  const std::string fingerprint = obs::FingerprintWorkflow(ex2.workflow);
  const Result<CycleOutcome> cycle2 =
      pipeline.RunCycle(ex2.workflow, ex2.sources);
  ASSERT_TRUE(cycle2.ok());
  std::vector<CardMap> truths2;
  for (const auto& ba : cycle2->analysis->blocks) {
    const auto truth = ComputeGroundTruthCards(
        ba->ctx, ba->plan_space.subexpressions(), cycle2->run.exec);
    ASSERT_TRUE(truth.ok());
    truths2.push_back(*truth);
  }
  const auto loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok());
  const std::vector<obs::RunRecord> history =
      obs::RunLedger::HistoryFor(loaded->records, fingerprint);
  ASSERT_EQ(history.size(), 1u);  // both runs share a fingerprint
  EXPECT_EQ(history[0].run_id, "run-1");
  const obs::RunRecord record2 = MakeRunRecord(
      *cycle2, obs::RunLedger::NextRunId(loaded->records, fingerprint),
      &truths2);
  EXPECT_EQ(record2.run_id, "run-2");

  // Drift: Orders tripled, so its cardinality statistics must be flagged.
  const obs::DriftReport drift =
      obs::DriftDetector().Compare(history, record2);
  EXPECT_TRUE(drift.any_drift());
  EXPECT_TRUE(drift.IsDrifted(0, StatKey::Card(1)))  // R0 = Orders
      << drift.ToText();

  // Explain: estimates derived from run 1's stored statistics, cited by
  // run id, against run 2's actual rows.
  std::vector<obs::ExplainBlockInput> inputs;
  const auto& blocks = cycle2->analysis->blocks;
  for (size_t b = 0; b < blocks.size(); ++b) {
    ASSERT_LT(b, history[0].block_stats.size());
    obs::ExplainBlockInput in;
    in.block = static_cast<int>(b);
    in.ctx = &blocks[b]->ctx;
    in.catalog = &blocks[b]->catalog;
    in.ses = blocks[b]->plan_space.subexpressions();
    in.stats = &history[0].block_stats[b];
    in.source_run_id = history[0].run_id;
    in.actuals = &truths2[b];
    inputs.push_back(std::move(in));
  }
  const Result<obs::PlanExplain> explain = obs::BuildPlanExplain(
      inputs, ex2.workflow.name(), fingerprint, &drift);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  ASSERT_FALSE(explain->entries.empty());

  bool any_drifted_entry = false;
  bool any_high_qerror = false;
  for (const obs::SeExplainEntry& entry : explain->entries) {
    if (entry.estimated < 0) continue;
    EXPECT_EQ(entry.source_run_id, "run-1");
    for (const StatKey& leaf : entry.feeding) {
      // Every cited statistic really is in run 1's stored set.
      EXPECT_TRUE(history[0].block_stats[static_cast<size_t>(entry.block)]
                      .Contains(leaf))
          << leaf.ToString();
    }
    any_drifted_entry = any_drifted_entry || entry.drifted;
    any_high_qerror = any_high_qerror || entry.qerror > 2.0;
  }
  EXPECT_TRUE(any_drifted_entry);
  EXPECT_TRUE(any_high_qerror) << "tripled source should blow up q-errors";

  const std::string text = obs::FormatPlanExplainText(*explain);
  EXPECT_NE(text.find("@run-1"), std::string::npos) << text;
  EXPECT_NE(text.find("[DRIFT]"), std::string::npos) << text;

  ASSERT_TRUE(ledger.Append(record2).ok());
  const auto final_load = ledger.Load();
  ASSERT_TRUE(final_load.ok());
  EXPECT_EQ(
      obs::RunLedger::HistoryFor(final_load->records, fingerprint).size(),
      2u);
  std::remove(path.c_str());
}

// Lifecycle wiring: drift report comes back through RunBudgetedLifecycle.
TEST(CrossRunTest, BudgetedLifecycleReportsDriftAgainstHistory) {
  const auto ex1 = testing_util::MakePaperExample(7, 400, 40, 25);
  Pipeline pipeline;
  const Result<CycleOutcome> cycle1 =
      pipeline.RunCycle(ex1.workflow, ex1.sources);
  ASSERT_TRUE(cycle1.ok());
  const obs::RunRecord record1 = MakeRunRecord(*cycle1, "run-1");

  const auto ex2 = testing_util::MakePaperExample(11, 1200, 40, 25);
  const std::vector<obs::RunRecord> history = {record1};
  const auto result =
      RunBudgetedLifecycle(ex2.workflow, ex2.sources, 1e12, {}, &history);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->block_stats.empty());
  EXPECT_TRUE(result->drift.any_drift());
  // The flagged keys are exactly what a re-run would force-observe.
  EXPECT_FALSE(result->drift.ReinstrumentKeys(0).empty());
}

}  // namespace
}  // namespace etlopt
