#ifndef ETLOPT_ENGINE_TABLE_H_
#define ETLOPT_ENGINE_TABLE_H_

#include <string>
#include <vector>

#include "engine/column.h"
#include "etl/schema.h"
#include "stats/histogram.h"

namespace etlopt {

// An in-memory record-set: the engine's unit of data. Storage is typed
// column-major — one contiguous Value array per schema attribute — with
// columns shared copy-on-write between tables. Copying a Table (Source
// fan-out, Materialize/Sink targets) shares every column in O(#columns);
// the first mutation through AddRow/AppendRowFrom clones only the columns
// still shared. Column order follows the schema's attribute order.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {
    columns_.reserve(static_cast<size_t>(schema_.size()));
    for (int i = 0; i < schema_.size(); ++i) {
      columns_.push_back(std::make_shared<Column>());
    }
  }

  // Assembles a table directly from (possibly shared) columns: the
  // copy-free Project/Transform swizzle. Every column must hold `rows`
  // values.
  static Table FromColumns(Schema schema, std::vector<ColumnPtr> columns,
                           int64_t rows);

  const Schema& schema() const { return schema_; }

  void AddRow(const std::vector<Value>& row) {
    ETLOPT_CHECK(static_cast<int>(row.size()) == schema_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      MutableColumn(c).push_back(row[c]);
    }
    ++num_rows_;
  }

  // Appends row `r` of `src` (same schema) without materializing it.
  void AppendRowFrom(const Table& src, int64_t r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      MutableColumn(c).push_back((*src.columns_[c])[static_cast<size_t>(r)]);
    }
    ++num_rows_;
  }

  // Appends every row of `src` (same schema) column-wise.
  void AppendRows(const Table& src);

  void Reserve(size_t n) {
    for (size_t c = 0; c < columns_.size(); ++c) MutableColumn(c).reserve(n);
  }

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const Value& at(int64_t row, int col) const {
    return (*columns_[static_cast<size_t>(col)])[static_cast<size_t>(row)];
  }

  const Column& column(int col) const {
    return *columns_[static_cast<size_t>(col)];
  }
  const Value* column_data(int col) const {
    return columns_[static_cast<size_t>(col)]->data();
  }
  // The shareable column handle — what Project swizzles into its output.
  const ColumnPtr& shared_column(int col) const {
    return columns_[static_cast<size_t>(col)];
  }

  // Row `r` materialized in schema order (boundary/test use; hot paths read
  // columns directly).
  std::vector<Value> row(int64_t r) const;
  // The full table materialized row-major (test/debug comparisons only).
  std::vector<std::vector<Value>> MaterializeRows() const;

  // out[i] = src[sel[i]], every column: the late-materialization step of
  // the vectorized kernels.
  static Table Gather(const Table& src, const SelVector& sel);

  // Builds the exact frequency histogram over `attrs` (all must be in the
  // schema) — the engine-side collector of Section 3.2.5, fed straight from
  // the column arrays.
  Histogram BuildHistogram(AttrMask attrs) const;

  // Number of distinct value combinations of `attrs`.
  int64_t CountDistinct(AttrMask attrs) const;

  std::string ToString(const AttrCatalog& catalog, int64_t limit = 10) const;

  friend bool operator==(const Table& a, const Table& b);
  friend bool operator!=(const Table& a, const Table& b) { return !(a == b); }

 private:
  // The copy-on-write gate: a column shared with another table is cloned
  // before its first mutation. use_count() == 1 is a relaxed atomic load,
  // so unshared appends stay O(1).
  Column& MutableColumn(size_t c) {
    ColumnPtr& col = columns_[c];
    if (col.use_count() != 1) col = std::make_shared<Column>(*col);
    return *col;
  }

  Schema schema_;
  std::vector<ColumnPtr> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_TABLE_H_
