#include "engine/executor.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace etlopt {
namespace {

// Nanoseconds elapsed on `timer`, floored at 0 (defensive against clock
// quirks; LogHistogram buckets are non-negative).
int64_t ElapsedNs(const Timer& timer) {
  const double ns = timer.ElapsedMicros() * 1e3;
  return ns <= 0.0 ? 0 : static_cast<int64_t>(ns);
}

}  // namespace

Executor::Executor(const Workflow* workflow) : wf_(workflow) {
  ETLOPT_CHECK(wf_ != nullptr);
}

Table HashJoin(const Table& left, const Table& right, AttrId attr,
               Table* rejects) {
  const int lkey = left.schema().IndexOf(attr);
  const int rkey = right.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");

  // Output schema: left attrs then right attrs minus the key (mirrors
  // Workflow::Finalize).
  std::vector<AttrId> out_attrs = left.schema().attrs();
  std::vector<int> right_cols;
  for (int i = 0; i < right.schema().size(); ++i) {
    const AttrId a = right.schema().attrs()[static_cast<size_t>(i)];
    if (a != attr) {
      out_attrs.push_back(a);
      right_cols.push_back(i);
    }
  }
  Table out{Schema(out_attrs)};

  obs::ScopedSpan span("engine.hash_join");
  Timer phase;
  std::unordered_map<Value, std::vector<int64_t>> build;
  build.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    build[right.at(r, rkey)].push_back(r);
  }
  const int64_t build_ns = ElapsedNs(phase);
  ETLOPT_HIST_RECORD("etlopt.engine.join.hash_build_ns", build_ns);

  phase.Restart();
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const auto it = build.find(left.at(l, lkey));
    if (it == build.end()) {
      if (rejects != nullptr) {
        rejects->AddRow(left.rows()[static_cast<size_t>(l)]);
      }
      continue;
    }
    for (int64_t r : it->second) {
      std::vector<Value> row = left.rows()[static_cast<size_t>(l)];
      row.reserve(out_attrs.size());
      for (int c : right_cols) {
        row.push_back(right.at(r, c));
      }
      out.AddRow(std::move(row));
    }
  }
  const int64_t probe_ns = ElapsedNs(phase);
  ETLOPT_HIST_RECORD("etlopt.engine.join.hash_probe_ns", probe_ns);
  if (span.active()) {
    span.Arg("build_rows", right.num_rows());
    span.Arg("probe_rows", left.num_rows());
    span.Arg("rows_out", out.num_rows());
    span.Arg("build_ns", build_ns);
    span.Arg("probe_ns", probe_ns);
  }
  return out;
}

Table SortMergeJoin(const Table& left, const Table& right, AttrId attr,
                    Table* rejects) {
  const int lkey = left.schema().IndexOf(attr);
  const int rkey = right.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");

  std::vector<AttrId> out_attrs = left.schema().attrs();
  std::vector<int> right_cols;
  for (int i = 0; i < right.schema().size(); ++i) {
    const AttrId a = right.schema().attrs()[static_cast<size_t>(i)];
    if (a != attr) {
      out_attrs.push_back(a);
      right_cols.push_back(i);
    }
  }
  Table out{Schema(out_attrs)};

  obs::ScopedSpan span("engine.sort_merge_join");
  Timer phase;
  // Sort row indices of both sides by the key.
  std::vector<int64_t> lidx(static_cast<size_t>(left.num_rows()));
  std::vector<int64_t> ridx(static_cast<size_t>(right.num_rows()));
  std::iota(lidx.begin(), lidx.end(), 0);
  std::iota(ridx.begin(), ridx.end(), 0);
  std::sort(lidx.begin(), lidx.end(), [&](int64_t a, int64_t b) {
    return left.at(a, lkey) < left.at(b, lkey);
  });
  std::sort(ridx.begin(), ridx.end(), [&](int64_t a, int64_t b) {
    return right.at(a, rkey) < right.at(b, rkey);
  });
  ETLOPT_HIST_RECORD("etlopt.engine.join.sort_ns", ElapsedNs(phase));

  phase.Restart();
  size_t li = 0;
  size_t ri = 0;
  while (li < lidx.size()) {
    const Value lv = left.at(lidx[li], lkey);
    while (ri < ridx.size() && right.at(ridx[ri], rkey) < lv) ++ri;
    // Group of right rows with this key.
    size_t rend = ri;
    while (rend < ridx.size() && right.at(ridx[rend], rkey) == lv) ++rend;
    if (ri == rend) {
      if (rejects != nullptr) {
        rejects->AddRow(left.rows()[static_cast<size_t>(lidx[li])]);
      }
      ++li;
      continue;
    }
    // All left rows with this key join with the right group.
    while (li < lidx.size() && left.at(lidx[li], lkey) == lv) {
      for (size_t r = ri; r < rend; ++r) {
        std::vector<Value> row = left.rows()[static_cast<size_t>(lidx[li])];
        row.reserve(out_attrs.size());
        for (int col : right_cols) {
          row.push_back(right.at(ridx[r], col));
        }
        out.AddRow(std::move(row));
      }
      ++li;
    }
    ri = rend;
  }
  ETLOPT_HIST_RECORD("etlopt.engine.join.merge_ns", ElapsedNs(phase));
  if (span.active()) {
    span.Arg("left_rows", left.num_rows());
    span.Arg("right_rows", right.num_rows());
    span.Arg("rows_out", out.num_rows());
  }
  return out;
}

Result<ExecutionResult> Executor::Execute(const SourceMap& sources) const {
  ExecutionResult result;
  obs::ScopedSpan exec_span("engine.execute");
  exec_span.Arg("workflow", wf_->name());
  exec_span.Arg("nodes", static_cast<int64_t>(wf_->nodes().size()));
  for (const WorkflowNode& node : wf_->nodes()) {
    const Schema& out_schema = wf_->output_schema(node.id);
    Table out{out_schema};
    auto input = [&](int i) -> const Table& {
      return result.node_outputs.at(node.inputs[static_cast<size_t>(i)]);
    };
    obs::ScopedSpan op_span(OpKindName(node.kind));
    int64_t rows_in = 0;
    for (NodeId in : node.inputs) {
      rows_in += result.node_outputs.at(in).num_rows();
    }
    switch (node.kind) {
      case OpKind::kSource: {
        auto it = sources.find(node.table_name);
        if (it == sources.end()) {
          return Status::NotFound("no source table bound for '" +
                                  node.table_name + "'");
        }
        if (!(it->second.schema() == node.source_schema)) {
          return Status::InvalidArgument("source '" + node.table_name +
                                         "' schema mismatch");
        }
        out = it->second;
        break;
      }
      case OpKind::kFilter: {
        const Table& in = input(0);
        const int col = in.schema().IndexOf(node.predicate.attr);
        for (const auto& row : in.rows()) {
          if (node.predicate.Matches(row[static_cast<size_t>(col)])) {
            out.AddRow(row);
          }
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kProject: {
        const Table& in = input(0);
        std::vector<int> cols;
        for (AttrId a : node.keep) cols.push_back(in.schema().IndexOf(a));
        for (const auto& row : in.rows()) {
          std::vector<Value> projected;
          projected.reserve(cols.size());
          for (int c : cols) projected.push_back(row[static_cast<size_t>(c)]);
          out.AddRow(std::move(projected));
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kTransform: {
        const Table& in = input(0);
        const TransformSpec& t = node.transform;
        const int col = in.schema().IndexOf(t.input_attr);
        if (t.is_aggregate) {
          // Black-box aggregate UDF: emits one row per distinct transformed
          // key value (a deterministic blocking reduction).
          std::unordered_map<Value, bool> seen;
          for (const auto& row : in.rows()) {
            const Value v = t.fn(row[static_cast<size_t>(col)]);
            if (seen.emplace(v, true).second) {
              std::vector<Value> r = row;
              r[static_cast<size_t>(col)] = v;
              out.AddRow(std::move(r));
            }
          }
        } else if (t.output_attr == t.input_attr) {
          for (const auto& row : in.rows()) {
            std::vector<Value> r = row;
            r[static_cast<size_t>(col)] = t.fn(r[static_cast<size_t>(col)]);
            out.AddRow(std::move(r));
          }
        } else {
          for (const auto& row : in.rows()) {
            std::vector<Value> r = row;
            r.push_back(t.fn(r[static_cast<size_t>(col)]));
            out.AddRow(std::move(r));
          }
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kAggregate: {
        const Table& in = input(0);
        AttrMask group_mask = 0;
        for (AttrId a : node.aggregate.group_by) group_mask |= AttrMask{1} << a;
        std::vector<int> cols;
        for (AttrId a : node.aggregate.group_by) {
          cols.push_back(in.schema().IndexOf(a));
        }
        std::unordered_map<std::vector<Value>, int64_t, ValueVecHash> groups;
        for (const auto& row : in.rows()) {
          std::vector<Value> key;
          key.reserve(cols.size());
          for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
          ++groups[std::move(key)];
        }
        const bool with_count = node.aggregate.count_attr != kInvalidAttr;
        for (auto& [key, count] : groups) {
          std::vector<Value> row = key;
          if (with_count) row.push_back(count);
          out.AddRow(std::move(row));
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kJoin: {
        const Table& left = input(0);
        const Table& right = input(1);
        Table rejects{left.schema()};
        out = node.join.algorithm == JoinAlgorithm::kSortMerge
                  ? SortMergeJoin(left, right, node.join.attr, &rejects)
                  : HashJoin(left, right, node.join.attr, &rejects);
        result.rows_processed += left.num_rows() + right.num_rows();
        result.join_rejects[node.id] = std::move(rejects);
        // Right-side rejects: right rows whose key never occurs on the left.
        {
          const int lkey = left.schema().IndexOf(node.join.attr);
          const int rkey = right.schema().IndexOf(node.join.attr);
          std::unordered_map<Value, bool> left_keys;
          for (int64_t l = 0; l < left.num_rows(); ++l) {
            left_keys.emplace(left.at(l, lkey), true);
          }
          Table rrejects{right.schema()};
          for (int64_t r = 0; r < right.num_rows(); ++r) {
            if (left_keys.find(right.at(r, rkey)) == left_keys.end()) {
              rrejects.AddRow(right.rows()[static_cast<size_t>(r)]);
            }
          }
          result.join_rejects_right[node.id] = std::move(rrejects);
        }
        break;
      }
      case OpKind::kMaterialize:
      case OpKind::kSink: {
        out = input(0);
        result.rows_processed += out.num_rows();
        result.targets[node.target_name] = out;
        break;
      }
    }
    // Bytes entering the operator: mirrors rows_processed (sources read no
    // upstream node output, so they contribute none).
    for (NodeId in : node.inputs) {
      const Table& t = result.node_outputs.at(in);
      result.bytes_processed += t.num_rows() * 8 * t.schema().size();
    }
    const int64_t rows_out = out.num_rows();
    if (op_span.active()) {
      op_span.Arg("node", static_cast<int64_t>(node.id));
      op_span.Arg("rows_in", rows_in);
      op_span.Arg("rows_out", rows_out);
    }
    if (obs::ObsEnabled()) {
      auto& registry = obs::MetricsRegistry::Global();
      registry
          .GetCounter(obs::MetricName(
              "etlopt.engine.rows_out",
              {{"wf", wf_->name()},
               {"node", std::to_string(node.id)},
               {"op", OpKindName(node.kind)}}))
          .Add(rows_out);
      ETLOPT_COUNTER_ADD("etlopt.engine.ops_executed", 1);
      ETLOPT_COUNTER_ADD("etlopt.engine.rows_in", rows_in);
      ETLOPT_COUNTER_ADD("etlopt.engine.rows_out", rows_out);
      if (node.kind == OpKind::kJoin) {
        ETLOPT_COUNTER_ADD("etlopt.engine.join.rejects_left",
                           result.join_rejects.at(node.id).num_rows());
        ETLOPT_COUNTER_ADD("etlopt.engine.join.rejects_right",
                           result.join_rejects_right.at(node.id).num_rows());
      }
    }
    result.node_outputs[node.id] = std::move(out);
  }
  ETLOPT_COUNTER_ADD("etlopt.engine.executions", 1);
  ETLOPT_COUNTER_ADD("etlopt.engine.rows_processed", result.rows_processed);
  ETLOPT_COUNTER_ADD("etlopt.engine.bytes_processed", result.bytes_processed);
  return result;
}

}  // namespace etlopt
