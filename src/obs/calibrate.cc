#include "obs/calibrate.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/accuracy.h"
#include "util/logging.h"

namespace etlopt {
namespace obs {

double CostCalibration::NsPerRow(const std::string& op) const {
  const auto it = classes.find(op);
  if (it == classes.end() || it->second.ns_per_row <= 0.0) {
    return kDefaultNsPerRow;
  }
  return it->second.ns_per_row;
}

double CostCalibration::PredictNs(const std::string& op, int64_t rows) const {
  return NsPerRow(op) * static_cast<double>(rows > 0 ? rows : 1);
}

Json CostCalibration::ToJson() const {
  Json j = Json::Object();
  j.Set("kind", Json::Str("etlopt-calibration"));
  j.Set("runs", Json::Int(runs));
  if (!fingerprint.empty()) j.Set("fingerprint", Json::Str(fingerprint));
  Json jc = Json::Object();
  for (const auto& [op, fit] : classes) {
    Json jf = Json::Object();
    jf.Set("rows", Json::Int(fit.rows));
    jf.Set("ns", Json::Int(fit.ns));
    jf.Set("ns_per_row", Json::Double(fit.ns_per_row));
    jc.Set(op, std::move(jf));
  }
  j.Set("classes", std::move(jc));
  return j;
}

Result<CostCalibration> CostCalibration::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("calibration is not a JSON object");
  }
  CostCalibration cal;
  cal.runs = static_cast<int>(j.GetInt("runs"));
  cal.fingerprint = j.GetString("fingerprint");
  const Json* jc = j.Find("classes");
  if (jc != nullptr && jc->is_object()) {
    for (const auto& [op, jf] : jc->members()) {
      if (!jf.is_object()) continue;
      ClassFit fit;
      fit.rows = jf.GetInt("rows");
      fit.ns = jf.GetInt("ns");
      fit.ns_per_row = jf.GetDouble("ns_per_row");
      // A malformed overlay silently corrupts every cost prediction (and the
      // adoption gate's coverage score), so bad fits are a config error, not
      // something to clamp: the operator who wrote the file must fix it.
      if (!std::isfinite(fit.ns_per_row) || fit.ns_per_row < 0.0) {
        return Status::InvalidArgument(
            "calibration class '" + op + "' has invalid ns_per_row " +
            std::to_string(fit.ns_per_row) + " (must be finite and >= 0)");
      }
      if (fit.rows < 0 || fit.ns < 0) {
        return Status::InvalidArgument(
            "calibration class '" + op + "' has negative rows/ns (rows=" +
            std::to_string(fit.rows) + ", ns=" + std::to_string(fit.ns) +
            ")");
      }
      cal.classes.emplace(op, fit);
    }
  }
  return cal;
}

Status CostCalibration::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open calibration file '" + path +
                                   "' for writing");
  }
  out << ToJson().Dump() << "\n";
  out.flush();
  if (!out.good()) {
    return Status::Internal("write to calibration file '" + path +
                            "' failed");
  }
  return Status::OK();
}

Result<CostCalibration> CostCalibration::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("calibration file not found: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ETLOPT_ASSIGN_OR_RETURN(const Json j, Json::Parse(buf.str()));
  return FromJson(j);
}

CostCalibration CostCalibration::FromEnv() {
  const char* path = std::getenv("ETLOPT_CALIBRATION");
  if (path == nullptr || *path == '\0') return {};
  Result<CostCalibration> loaded = Load(path);
  if (!loaded.ok()) {
    ETLOPT_LOG(Warning) << "ETLOPT_CALIBRATION='" << path
                        << "' not loaded: " << loaded.status().ToString();
    return {};
  }
  return *loaded;
}

std::string CostCalibration::ToText() const {
  std::ostringstream out;
  out << "cost calibration (" << runs << " run(s)";
  if (!fingerprint.empty()) out << ", workflow " << fingerprint;
  out << "):\n";
  if (classes.empty()) {
    out << "  (unfitted; every class predicts the pessimistic default "
        << kDefaultNsPerRow << " ns/row)\n";
    return out.str();
  }
  char line[120];
  for (const auto& [op, fit] : classes) {
    std::snprintf(line, sizeof(line), "  %-14s %10.1f ns/row (%lld rows)\n",
                  op.c_str(), fit.ns_per_row,
                  static_cast<long long>(fit.rows));
    out << line;
  }
  return out.str();
}

CostCalibration FitCalibration(const std::vector<RunRecord>& records) {
  CostCalibration cal;
  bool mixed = false;
  for (const RunRecord& record : records) {
    if (record.profile.empty()) continue;
    ++cal.runs;
    if (cal.fingerprint.empty()) {
      cal.fingerprint = record.fingerprint;
    } else if (cal.fingerprint != record.fingerprint) {
      mixed = true;
    }
    for (const OpProfile& op : record.profile.ops) {
      // self_ns is per-worker work time (parallel runs sum worker times at
      // the merge barrier), never wall time — so ns/row fitted here mixes
      // serial and --threads=N runs without conflating speedup with cost.
      CostCalibration::ClassFit& fit = cal.classes[op.op];
      fit.rows += RunProfile::Weight(op);
      fit.ns += op.self_ns;
    }
    if (record.profile.tap_ns > 0) {
      // Instrumentation overhead fit: observe ns per row available at the
      // taps' pipeline points (the sum of operator outputs — the tables
      // ObserveStatistics reads). This is the per-tuple price the selection
      // cost table charges for an observation point.
      int64_t tap_rows = 0;
      for (const OpProfile& op : record.profile.ops) {
        tap_rows += op.rows_out;
      }
      CostCalibration::ClassFit& fit = cal.classes["tap"];
      fit.rows += tap_rows > 0 ? tap_rows : 1;
      fit.ns += record.profile.tap_ns;
    }
  }
  if (mixed) cal.fingerprint.clear();
  for (auto& [op, fit] : cal.classes) {
    (void)op;
    if (fit.rows > 0) {
      fit.ns_per_row =
          static_cast<double>(fit.ns) / static_cast<double>(fit.rows);
    }
  }
  return cal;
}

void AnnotatePredictions(const CostCalibration& calibration,
                         RunProfile* profile) {
  if (profile == nullptr) return;
  for (OpProfile& op : profile->ops) {
    op.pred_ns = calibration.PredictNs(op.op, RunProfile::Weight(op));
  }
}

double PlanCostQError(const RunProfile& profile) {
  double predicted = 0.0;
  double measured = 0.0;
  bool any = false;
  for (const OpProfile& op : profile.ops) {
    if (op.pred_ns < 0.0) continue;
    predicted += op.pred_ns;
    measured += static_cast<double>(op.self_ns);
    any = true;
  }
  return any ? QError(predicted, measured) : 0.0;
}

void RecordCostAccuracy(const RunProfile& profile) {
  AccuracyTracker& tracker = AccuracyTracker::Global();
  double predicted = 0.0;
  double measured = 0.0;
  bool any = false;
  for (const OpProfile& op : profile.ops) {
    if (op.pred_ns < 0.0) continue;
    tracker.Record("cost", 0, op.pred_ns, static_cast<double>(op.self_ns));
    predicted += op.pred_ns;
    measured += static_cast<double>(op.self_ns);
    any = true;
  }
  if (any) tracker.Record("plan_cost", 0, predicted, measured);
}

}  // namespace obs
}  // namespace etlopt
