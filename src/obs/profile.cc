#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "obs/accuracy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace etlopt {
namespace obs {

#ifndef ETLOPT_OBS_DISABLED
namespace {

bool InitialProfileFromEnv() {
  const char* v = std::getenv("ETLOPT_PROFILE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& ProfilerFlag() {
  static std::atomic<bool> enabled{InitialProfileFromEnv()};
  return enabled;
}

}  // namespace

bool ProfilerEnabled() {
  return ObsEnabled() && ProfilerFlag().load(std::memory_order_relaxed);
}

void SetProfilerEnabled(bool on) {
  ProfilerFlag().store(on, std::memory_order_relaxed);
}
#endif  // ETLOPT_OBS_DISABLED

int64_t ProfileNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t RunProfile::TotalSelfNs() const {
  int64_t total = 0;
  for (const OpProfile& op : ops) total += op.self_ns;
  return total;
}

int64_t RunProfile::Weight(const OpProfile& op) {
  const int64_t rows = op.rows_in > 0 ? op.rows_in : op.rows_out;
  return rows > 0 ? rows : 1;
}

std::vector<int64_t> CumulativeNs(const RunProfile& profile) {
  std::unordered_map<int, size_t> by_node;
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    by_node[profile.ops[i].node] = i;
  }
  // Workflow node order is topological, so every input's cumulative value
  // is final before its consumer reads it.
  std::vector<int64_t> cum(profile.ops.size(), 0);
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    cum[i] = profile.ops[i].self_ns;
    for (int in : profile.ops[i].inputs) {
      const auto it = by_node.find(in);
      if (it != by_node.end() && it->second < i) cum[i] += cum[it->second];
    }
  }
  return cum;
}

std::string FoldedStacks(const RunProfile& profile) {
  // Consumer edges: producer node -> first consumer index. A node feeding
  // multiple consumers is attributed to the first (the collapsed-stack
  // format wants a tree; the full DAG is in the ledger profile).
  std::unordered_map<int, size_t> consumer;
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    for (int in : profile.ops[i].inputs) {
      consumer.emplace(in, i);
    }
  }
  std::ostringstream out;
  for (const OpProfile& op : profile.ops) {
    // Frames leaf-last: walk up the consumer chain to the terminal node,
    // then emit root-first.
    std::vector<const std::string*> frames{&op.label};
    int node = op.node;
    for (size_t guard = 0; guard <= profile.ops.size(); ++guard) {
      const auto it = consumer.find(node);
      if (it == consumer.end()) break;
      frames.push_back(&profile.ops[it->second].label);
      node = profile.ops[it->second].node;
    }
    for (size_t f = frames.size(); f-- > 0;) {
      out << *frames[f];
      if (f != 0) out << ';';
    }
    out << ' ' << op.self_ns << '\n';
  }
  if (profile.tap_ns > 0) {
    out << "tap.observe " << profile.tap_ns << '\n';
  }
  return out.str();
}

std::string FormatProfileTable(const RunProfile& profile) {
  std::ostringstream out;
  out << "per-operator profile (self/cumulative wall time):\n";
  if (profile.ops.empty()) {
    out << "  (no profiled operators)\n";
    return out.str();
  }
  const std::vector<int64_t> cum = CumulativeNs(profile);
  const double total =
      std::max<double>(1.0, static_cast<double>(profile.TotalSelfNs()));
  char line[200];
  std::snprintf(line, sizeof(line),
                "  %-14s %10s %6s %10s %9s %9s %8s %10s %7s\n", "op",
                "self_ns", "self%", "cum_ns", "rows_in", "rows_out", "ns/row",
                "pred_ns", "qerr");
  out << line;
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    const OpProfile& op = profile.ops[i];
    const double ns_per_row = static_cast<double>(op.self_ns) /
                              static_cast<double>(RunProfile::Weight(op));
    char pred[32];
    char qerr[32];
    if (op.pred_ns >= 0.0) {
      std::snprintf(pred, sizeof(pred), "%.0f", op.pred_ns);
      std::snprintf(qerr, sizeof(qerr), "%.2f",
                    QError(op.pred_ns, static_cast<double>(op.self_ns)));
    } else {
      std::snprintf(pred, sizeof(pred), "-");
      std::snprintf(qerr, sizeof(qerr), "-");
    }
    std::snprintf(line, sizeof(line),
                  "  %-14s %10lld %5.1f%% %10lld %9lld %9lld %8.1f %10s %7s\n",
                  op.label.c_str(), static_cast<long long>(op.self_ns),
                  100.0 * static_cast<double>(op.self_ns) / total,
                  static_cast<long long>(cum[i]),
                  static_cast<long long>(op.rows_in),
                  static_cast<long long>(op.rows_out), ns_per_row, pred, qerr);
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "  total self %lld ns, tap overhead %lld ns\n",
                static_cast<long long>(profile.TotalSelfNs()),
                static_cast<long long>(profile.tap_ns));
  out << line;
  return out.str();
}

void EmitProfileCounters(const RunProfile& profile) {
  Tracer& tracer = Tracer::Global();
  if (!ObsEnabled() || !tracer.enabled()) return;
  const int64_t now = tracer.NowNs();
  const int tid = tracer.CurrentTid();
  for (const OpProfile& op : profile.ops) {
    TraceEvent event;
    event.name = "profile.op";
    event.ph = 'C';
    event.start_ns = now;
    event.dur_ns = 0;
    event.tid = tid;
    event.args.emplace_back(op.label + ".self_ns",
                            std::to_string(op.self_ns));
    event.args.emplace_back(op.label + ".rows_out",
                            std::to_string(op.rows_out));
    tracer.Append(std::move(event));
  }
  if (profile.tap_ns > 0) {
    TraceEvent event;
    event.name = "profile.tap";
    event.ph = 'C';
    event.start_ns = now;
    event.dur_ns = 0;
    event.tid = tid;
    event.args.emplace_back("tap_ns", std::to_string(profile.tap_ns));
    tracer.Append(std::move(event));
  }
}

Json ProfileToJson(const RunProfile& profile) {
  Json j = Json::Object();
  j.Set("tap_ns", Json::Int(profile.tap_ns));
  Json ops = Json::Array();
  for (const OpProfile& op : profile.ops) {
    Json jo = Json::Object();
    jo.Set("node", Json::Int(op.node));
    jo.Set("op", Json::Str(op.op));
    jo.Set("label", Json::Str(op.label));
    if (!op.inputs.empty()) {
      Json ins = Json::Array();
      for (int in : op.inputs) ins.push_back(Json::Int(in));
      jo.Set("inputs", std::move(ins));
    }
    jo.Set("self_ns", Json::Int(op.self_ns));
    jo.Set("rows_in", Json::Int(op.rows_in));
    jo.Set("rows_out", Json::Int(op.rows_out));
    jo.Set("bytes", Json::Int(op.bytes));
    if (op.pred_ns >= 0.0) jo.Set("pred_ns", Json::Double(op.pred_ns));
    ops.push_back(std::move(jo));
  }
  j.Set("ops", std::move(ops));
  return j;
}

RunProfile ProfileFromJson(const Json& j) {
  RunProfile profile;
  if (!j.is_object()) return profile;
  profile.tap_ns = j.GetInt("tap_ns");
  const Json* ops = j.Find("ops");
  if (ops == nullptr || !ops->is_array()) return profile;
  for (const Json& jo : ops->array()) {
    if (!jo.is_object()) continue;
    OpProfile op;
    op.node = static_cast<int>(jo.GetInt("node", -1));
    op.op = jo.GetString("op");
    op.label = jo.GetString("label");
    if (const Json* ins = jo.Find("inputs");
        ins != nullptr && ins->is_array()) {
      for (const Json& in : ins->array()) {
        if (in.is_number()) op.inputs.push_back(static_cast<int>(in.int_value()));
      }
    }
    op.self_ns = jo.GetInt("self_ns");
    op.rows_in = jo.GetInt("rows_in");
    op.rows_out = jo.GetInt("rows_out");
    op.bytes = jo.GetInt("bytes");
    op.pred_ns = jo.GetDouble("pred_ns", -1.0);
    profile.ops.push_back(std::move(op));
  }
  return profile;
}

}  // namespace obs
}  // namespace etlopt
