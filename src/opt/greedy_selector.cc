#include "opt/greedy_selector.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/closure.h"
#include "util/common.h"

namespace etlopt {
namespace {

constexpr double kInf = 1e300;

struct Derivation {
  double cost = kInf;
  int via_css = -1;  // -1: observe directly
  bool reachable = false;
};

std::vector<int> UniqueInputs(const CssCatalog& catalog, int css) {
  std::vector<int> inputs = catalog.css_inputs(css);
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  return inputs;
}

// Knuth's generalization of Dijkstra over the AND-OR CSS graph: the cheapest
// way to make each statistic computable, where a CSS's cost is the sum of
// its inputs' costs (sharing between inputs is ignored here — the greedy
// outer loop recovers sharing through residual costs).
std::vector<Derivation> BestDerivations(const CssCatalog& catalog,
                                        const std::vector<char>& observable,
                                        const std::vector<double>& residual) {
  const int n = catalog.num_stats();
  const int m = catalog.num_css();
  std::vector<Derivation> best(static_cast<size_t>(n));
  std::vector<char> finalized(static_cast<size_t>(n), 0);
  std::vector<int> missing(static_cast<size_t>(m), 0);
  std::vector<double> css_sum(static_cast<size_t>(m), 0.0);
  std::vector<std::vector<int>> waiting(static_cast<size_t>(n));

  using Item = std::pair<double, std::pair<int, int>>;  // (cost, (stat, css))
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;

  for (int c = 0; c < m; ++c) {
    const std::vector<int> inputs = UniqueInputs(catalog, c);
    missing[static_cast<size_t>(c)] = static_cast<int>(inputs.size());
    for (int in : inputs) waiting[static_cast<size_t>(in)].push_back(c);
    if (inputs.empty()) {
      pq.push({0.0, {catalog.css_target(c), c}});
    }
  }
  for (int s = 0; s < n; ++s) {
    if (observable[static_cast<size_t>(s)]) {
      pq.push({residual[static_cast<size_t>(s)], {s, -1}});
    }
  }

  while (!pq.empty()) {
    const auto [cost, who] = pq.top();
    pq.pop();
    const int s = who.first;
    if (finalized[static_cast<size_t>(s)]) continue;
    finalized[static_cast<size_t>(s)] = 1;
    best[static_cast<size_t>(s)] = Derivation{cost, who.second, true};
    for (int c : waiting[static_cast<size_t>(s)]) {
      css_sum[static_cast<size_t>(c)] += cost;
      if (--missing[static_cast<size_t>(c)] == 0) {
        pq.push({css_sum[static_cast<size_t>(c)],
                 {catalog.css_target(c), c}});
      }
    }
  }
  return best;
}

// Collects the observable leaves of the chosen derivation of `stat`.
void CollectBundle(const CssCatalog& catalog,
                   const std::vector<Derivation>& derivs, int stat,
                   std::vector<char>* visited, std::vector<int>* bundle) {
  if ((*visited)[static_cast<size_t>(stat)]) return;
  (*visited)[static_cast<size_t>(stat)] = 1;
  const Derivation& d = derivs[static_cast<size_t>(stat)];
  ETLOPT_CHECK(d.reachable);
  if (d.via_css < 0) {
    bundle->push_back(stat);
    return;
  }
  for (int in : UniqueInputs(catalog, d.via_css)) {
    CollectBundle(catalog, derivs, in, visited, bundle);
  }
}

}  // namespace

SelectionResult SelectGreedyWithBudget(const SelectionProblem& problem,
                                       double budget,
                                       std::vector<int>* uncovered_required) {
  const CssCatalog& catalog = *problem.catalog;
  const int n = catalog.num_stats();

  SelectionResult result;
  result.method = "greedy";
  if (uncovered_required != nullptr) uncovered_required->clear();

  obs::ScopedSpan span("opt.select_greedy");
  span.Arg("stats", static_cast<int64_t>(n));
  span.Arg("css", static_cast<int64_t>(catalog.num_css()));
  int64_t iterations = 0;

  std::vector<char> observed(static_cast<size_t>(n), 0);
  std::vector<double> residual = problem.cost;
  double spent = 0.0;
  // Drift-flagged statistics are pre-seeded into the cover: they must be
  // re-observed regardless of what the derivation graph could supply.
  for (size_t s = 0; s < problem.must_observe.size(); ++s) {
    if (problem.must_observe[s]) {
      observed[s] = 1;
      residual[s] = 0.0;
      spent += problem.cost[s];
    }
  }
  std::vector<char> computable = ComputeClosure(catalog, observed);
  std::vector<char> deferred(static_cast<size_t>(n), 0);

  for (;;) {
    ++iterations;
    bool progressed = false;
    {
      const std::vector<Derivation> derivs =
          BestDerivations(catalog, problem.observable, residual);
      ETLOPT_COUNTER_ADD("etlopt.opt.greedy.derivation_passes", 1);
      // Uncovered, not yet deferred required statistics, cheapest first.
      std::vector<int> pending;
      for (int s = 0; s < n; ++s) {
        if (problem.required[static_cast<size_t>(s)] &&
            !computable[static_cast<size_t>(s)] &&
            !deferred[static_cast<size_t>(s)]) {
          pending.push_back(s);
        }
      }
      if (pending.empty()) break;
      ETLOPT_HIST_RECORD("etlopt.opt.greedy.candidate_set_size",
                         static_cast<int64_t>(pending.size()));
      std::sort(pending.begin(), pending.end(), [&](int a, int b) {
        return derivs[static_cast<size_t>(a)].cost <
               derivs[static_cast<size_t>(b)].cost;
      });
      for (int pick : pending) {
        const Derivation& d = derivs[static_cast<size_t>(pick)];
        if (!d.reachable) {
          deferred[static_cast<size_t>(pick)] = 1;
          continue;
        }
        std::vector<char> visited(static_cast<size_t>(n), 0);
        std::vector<int> bundle;
        CollectBundle(catalog, derivs, pick, &visited, &bundle);
        // Actual incremental cost (the scalar derivation cost may double
        // count shared inputs).
        double added = 0.0;
        for (int s : bundle) {
          if (!observed[static_cast<size_t>(s)]) {
            added += problem.cost[static_cast<size_t>(s)];
          }
        }
        if (spent + added > budget) {
          deferred[static_cast<size_t>(pick)] = 1;
          continue;
        }
        for (int s : bundle) {
          if (!observed[static_cast<size_t>(s)]) {
            observed[static_cast<size_t>(s)] = 1;
            residual[static_cast<size_t>(s)] = 0.0;
          }
        }
        spent += added;
        progressed = true;
        break;
      }
      if (!progressed) break;  // nothing affordable/reachable remains
    }
    computable = ComputeClosure(catalog, observed);
  }

  bool all_covered = true;
  for (int s = 0; s < n; ++s) {
    if (problem.required[static_cast<size_t>(s)] &&
        !computable[static_cast<size_t>(s)]) {
      all_covered = false;
      if (uncovered_required != nullptr) uncovered_required->push_back(s);
    }
  }
  if (!all_covered) {
    // Partial cover: report what was chosen so far (budget mode).
    for (int s = 0; s < n; ++s) {
      if (observed[static_cast<size_t>(s)]) {
        result.observed.push_back(s);
        result.total_cost += problem.cost[static_cast<size_t>(s)];
      }
    }
    result.feasible = false;
    return result;
  }

  // Reverse-delete: drop observations that became redundant (most expensive
  // first).
  std::vector<int> kept;
  for (int s = 0; s < n; ++s) {
    if (observed[static_cast<size_t>(s)]) kept.push_back(s);
  }
  std::sort(kept.begin(), kept.end(), [&](int a, int b) {
    return problem.cost[static_cast<size_t>(a)] >
           problem.cost[static_cast<size_t>(b)];
  });
  for (int s : kept) {
    if (static_cast<size_t>(s) < problem.must_observe.size() &&
        problem.must_observe[static_cast<size_t>(s)]) {
      continue;  // forced observations are never redundant
    }
    observed[static_cast<size_t>(s)] = 0;
    std::vector<int> trial;
    for (int t = 0; t < n; ++t) {
      if (observed[static_cast<size_t>(t)]) trial.push_back(t);
    }
    if (!SelectionCovers(problem, trial)) {
      observed[static_cast<size_t>(s)] = 1;  // still needed
    }
  }

  result.feasible = true;
  for (int s = 0; s < n; ++s) {
    if (observed[static_cast<size_t>(s)]) {
      result.observed.push_back(s);
      result.total_cost += problem.cost[static_cast<size_t>(s)];
    }
  }
  ETLOPT_COUNTER_ADD("etlopt.opt.greedy.iterations", iterations);
  span.Arg("iterations", iterations);
  span.Arg("observed", static_cast<int64_t>(result.observed.size()));
  return result;
}

SelectionResult SelectGreedy(const SelectionProblem& problem) {
  SelectionResult best = SelectGreedyWithBudget(problem, kInf, nullptr);

  // The union-division CSSs strictly enlarge the search space, but a greedy
  // heuristic with more options can land on a worse cover. Re-run with the
  // reject statistics disabled (which neutralizes every J4/J5 CSS, since
  // reject statistics are observation-only) and keep the cheaper cover —
  // any cover found this way is valid for the original problem.
  bool has_reject = false;
  for (int s = 0; s < problem.num_stats(); ++s) {
    if (problem.observable[static_cast<size_t>(s)] &&
        problem.catalog->stat(s).is_reject()) {
      has_reject = true;
      break;
    }
  }
  if (has_reject) {
    SelectionProblem no_ud = problem;
    for (int s = 0; s < problem.num_stats(); ++s) {
      if (problem.catalog->stat(s).is_reject()) {
        no_ud.observable[static_cast<size_t>(s)] = 0;
      }
    }
    SelectionResult alt = SelectGreedyWithBudget(no_ud, kInf, nullptr);
    if (alt.feasible &&
        (!best.feasible || alt.total_cost < best.total_cost - 1e-9)) {
      alt.method = "greedy(no-ud-pass)";
      best = std::move(alt);
    }
  }
  return best;
}

SelectionResult SelectExhaustive(const SelectionProblem& problem,
                                 int max_candidates) {
  const int n = problem.num_stats();
  // Forced statistics are part of every candidate cover, so they leave the
  // include/exclude search entirely.
  std::vector<int> forced;
  double forced_cost = 0.0;
  std::vector<int> candidates;
  for (int s = 0; s < n; ++s) {
    if (!problem.observable[static_cast<size_t>(s)]) continue;
    if (static_cast<size_t>(s) < problem.must_observe.size() &&
        problem.must_observe[static_cast<size_t>(s)]) {
      forced.push_back(s);
      forced_cost += problem.cost[static_cast<size_t>(s)];
    } else {
      candidates.push_back(s);
    }
  }
  SelectionResult result;
  result.method = "exhaustive";
  if (static_cast<int>(candidates.size()) > max_candidates) {
    result.feasible = false;
    return result;
  }
  // Cheapest-first ordering helps the branch-and-bound prune.
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    return problem.cost[static_cast<size_t>(a)] <
           problem.cost[static_cast<size_t>(b)];
  });

  std::vector<int> current = forced;
  std::vector<int> best;
  double best_cost = kInf;

  // DFS over include/exclude decisions with cost pruning.
  std::function<void(size_t, double)> dfs = [&](size_t i, double cost) {
    if (cost >= best_cost) return;
    if (SelectionCovers(problem, current)) {
      best_cost = cost;
      best = current;
      return;
    }
    if (i >= candidates.size()) return;
    // Include candidate i.
    current.push_back(candidates[i]);
    dfs(i + 1, cost + problem.cost[static_cast<size_t>(candidates[i])]);
    current.pop_back();
    // Exclude candidate i.
    dfs(i + 1, cost);
  };
  dfs(0, forced_cost);

  if (best_cost >= kInf) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;
  result.proven_optimal = true;
  result.total_cost = best_cost;
  result.observed = best;
  std::sort(result.observed.begin(), result.observed.end());
  return result;
}

}  // namespace etlopt
