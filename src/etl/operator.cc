#include "etl/operator.h"

namespace etlopt {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
      return "Source";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kTransform:
      return "Transform";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kMaterialize:
      return "Materialize";
    case OpKind::kSink:
      return "Sink";
  }
  return "Unknown";
}

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kAuto:
      return "auto";
    case JoinAlgorithm::kHash:
      return "hash";
    case JoinAlgorithm::kSortMerge:
      return "sort-merge";
  }
  return "?";
}

}  // namespace etlopt
