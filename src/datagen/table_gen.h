#ifndef ETLOPT_DATAGEN_TABLE_GEN_H_
#define ETLOPT_DATAGEN_TABLE_GEN_H_

#include <string>
#include <vector>

#include "engine/table.h"
#include "util/random.h"

namespace etlopt {

// How a column's values are drawn. All values stay within the attribute's
// catalog domain {1..domain_size} so the Section 5.4 memory costing holds.
enum class ColumnGen {
  kSequential,  // primary key: 1..rows (rows must be <= domain)
  kZipf,        // Zipf(skew) over the full domain (the paper's high skew)
  kUniform,     // uniform over the full domain
  kFkZipf,      // foreign key: Zipf over [1..match_upto] with probability
                // (1-miss_rate); uniform over (match_upto..domain] otherwise
                // (non-matching rows feed the reject links)
};

struct ColumnSpec {
  AttrId attr = kInvalidAttr;
  ColumnGen gen = ColumnGen::kZipf;
  double zipf_skew = 1.2;
  int64_t match_upto = 0;   // kFkZipf: the referenced dimension's row count
  double miss_rate = 0.0;   // kFkZipf: fraction of dangling references
};

struct TableSpec {
  std::string name;
  int64_t rows = 0;
  std::vector<ColumnSpec> columns;
};

// Generates a table deterministically from `rng`. `row_scale` in (0,1]
// shrinks row counts (and kSequential/kFkZipf key ranges) proportionally so
// tests can run the same workloads at reduced scale.
Table GenerateTable(const AttrCatalog& catalog, const TableSpec& spec,
                    Rng& rng, double row_scale = 1.0);

}  // namespace etlopt

#endif  // ETLOPT_DATAGEN_TABLE_GEN_H_
