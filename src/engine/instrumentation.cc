#include "engine/instrumentation.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "planspace/observability.h"
#include "sketch/tap.h"
#include "util/bitmask.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace etlopt {
namespace {

// Fault-injection identity of a tap: the stat_io kind token, so specs read
// "tap:distinct:oom" in the same vocabulary the codec uses.
const char* TapFaultName(StatKind kind) {
  switch (kind) {
    case StatKind::kCard:
      return "card";
    case StatKind::kDistinct:
      return "distinct";
    case StatKind::kHist:
      return "hist";
    case StatKind::kRejectJoinCard:
      return "rejcard";
    case StatKind::kRejectJoinHist:
      return "rejhist";
  }
  return "?";
}

// Per-tap byte allowance for the OOM-downgrade fallback: when an exact
// collector's allocation is failed by injection, the retry uses a sketch
// bounded to this much memory (a deliberately small ask — the premise is
// that memory is tight).
constexpr int64_t kDowngradeTapBytes = 64 * 1024;

// The pipeline-point node for a Card/Distinct/Hist key.
Result<NodeId> PointNode(const BlockContext& ctx, const StatKey& key) {
  if (key.is_chain_stage()) {
    return ctx.StageNode(LowestBit(key.rels), key.stage);
  }
  auto it = ctx.on_path().find(key.rels);
  if (it == ctx.on_path().end()) {
    return Status::InvalidArgument("SE not on-path: " + key.ToString());
  }
  return it->second;
}

// The pipeline-point table for a Card/Distinct/Hist key.
Result<const Table*> PointTable(const BlockContext& ctx,
                                const ExecutionResult& exec,
                                const StatKey& key) {
  ETLOPT_ASSIGN_OR_RETURN(const NodeId node, PointNode(ctx, key));
  auto it = exec.node_outputs.find(node);
  if (it == exec.node_outputs.end()) {
    return Status::Internal("no cached output for node " +
                            std::to_string(node));
  }
  return &it->second;
}

// ---- per-partition tap kernels ------------------------------------------
// Each runs the tap partition-local (optionally on the pool) and merges the
// per-partition states; see ParallelTapContext for the equivalence
// argument. `merge_ns` accumulates only the merge step.

// The partition slices a key can tap, or null when the key's point did not
// run partitioned (serial run, pre/post node, reject-join key).
const std::vector<Table>* KeySlices(const BlockContext& ctx,
                                    const ParallelTapContext& par,
                                    const StatKey& key) {
  if (par.slices == nullptr) return nullptr;
  if (key.kind != StatKind::kCard && key.kind != StatKind::kDistinct &&
      key.kind != StatKind::kHist) {
    return nullptr;
  }
  const Result<NodeId> node = PointNode(ctx, key);
  if (!node.ok()) return nullptr;
  const auto it = par.slices->find(*node);
  if (it == par.slices->end() || it->second.empty()) return nullptr;
  return &it->second;
}

void ForEachPartition(ThreadPool* pool, int n,
                      const std::function<void(int)>& fn) {
  if (pool == nullptr) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const Status status = pool->ParallelFor(n, [&fn](int i) {
    fn(i);
    return Status::OK();
  });
  ETLOPT_CHECK_MSG(status.ok(), "partition tap scan failed");
}

std::vector<int> KeyColumns(const Schema& schema, AttrMask attrs) {
  std::vector<int> cols;
  for (int idx : MaskToIndices(attrs)) {
    cols.push_back(schema.IndexOf(static_cast<AttrId>(idx)));
  }
  return cols;
}

// The key columns of `attrs` as raw column pointers — the zero-copy feed
// the columnar tap kernels consume.
std::vector<const Value*> KeyColumnData(const Table& t, AttrMask attrs) {
  std::vector<const Value*> data;
  for (int c : KeyColumns(t.schema(), attrs)) {
    data.push_back(t.column_data(c));
  }
  return data;
}

int64_t MergedSliceRows(const std::vector<Table>& slices) {
  int64_t rows = 0;
  for (const Table& t : slices) rows += t.num_rows();
  return rows;
}

// Exact distinct: per-partition key sets, merged by union.
int64_t MergedDistinctCount(const std::vector<Table>& slices, AttrMask attrs,
                            ThreadPool* pool, int64_t* merge_ns) {
  using KeySet = std::unordered_set<std::vector<Value>, ValueVecHash>;
  std::vector<KeySet> sets(slices.size());
  ForEachPartition(pool, static_cast<int>(slices.size()), [&](int p) {
    const Table& t = slices[static_cast<size_t>(p)];
    if (t.num_rows() == 0) return;
    const std::vector<const Value*> data = KeyColumnData(t, attrs);
    KeySet& set = sets[static_cast<size_t>(p)];
    set.reserve(static_cast<size_t>(t.num_rows()));
    std::vector<Value> probe(data.size());
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < data.size(); ++c) {
        probe[c] = data[c][r];
      }
      set.insert(probe);
    }
  });
  const int64_t merge_start = obs::ProfileNowNs();
  for (size_t p = 1; p < sets.size(); ++p) {
    sets[0].insert(sets[p].begin(), sets[p].end());
  }
  *merge_ns += obs::ProfileNowNs() - merge_start;
  return static_cast<int64_t>(sets[0].size());
}

// Exact histogram: per-partition exact histograms, merged by bucket-wise
// addition — identical buckets to one histogram over the gathered table.
Histogram MergedExactHistogram(const std::vector<Table>& slices,
                               AttrMask attrs, ThreadPool* pool,
                               int64_t* merge_ns) {
  std::vector<Histogram> parts(slices.size());
  ForEachPartition(pool, static_cast<int>(slices.size()), [&](int p) {
    const Table& t = slices[static_cast<size_t>(p)];
    // A crashed partition's slice is empty (default table): contribute an
    // empty histogram rather than probing its absent schema.
    parts[static_cast<size_t>(p)] =
        t.num_rows() > 0 ? t.BuildHistogram(attrs) : Histogram(attrs);
  });
  const int64_t merge_start = obs::ProfileNowNs();
  Histogram merged(attrs);
  for (const Histogram& h : parts) merged.AddAll(h);
  *merge_ns += obs::ProfileNowNs() - merge_start;
  return merged;
}

// Sketch distinct: one HLL per partition, merged register-wise.
sketch::DistinctTap MergedDistinctTap(const std::vector<Table>& slices,
                                      AttrMask attrs,
                                      const sketch::TapSketchConfig& config,
                                      ThreadPool* pool, int64_t* merge_ns) {
  std::vector<sketch::DistinctTap> parts(slices.size(),
                                         sketch::DistinctTap(config));
  ForEachPartition(pool, static_cast<int>(slices.size()), [&](int p) {
    const Table& t = slices[static_cast<size_t>(p)];
    if (t.num_rows() == 0) return;
    sketch::DistinctTap& tap = parts[static_cast<size_t>(p)];
    if (VectorizedKernels()) {
      tap.AddColumns(KeyColumnData(t, attrs), t.num_rows());
      return;
    }
    const std::vector<int> cols = KeyColumns(t.schema(), attrs);
    std::vector<Value> probe(cols.size());
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < cols.size(); ++c) {
        probe[c] = t.at(r, cols[c]);
      }
      tap.AddRow(probe);
    }
  });
  const int64_t merge_start = obs::ProfileNowNs();
  for (size_t p = 1; p < parts.size(); ++p) {
    ETLOPT_CHECK_MSG(parts[0].Merge(parts[p]).ok(),
                     "distinct tap shapes diverged");
  }
  *merge_ns += obs::ProfileNowNs() - merge_start;
  return std::move(parts[0]);
}

// Sketch histogram: one CM+KMV tap per partition, merged losslessly.
sketch::HistTap MergedHistTap(const std::vector<Table>& slices, AttrMask attrs,
                              const sketch::TapSketchConfig& config, int arity,
                              ThreadPool* pool, int64_t* merge_ns) {
  std::vector<sketch::HistTap> parts(slices.size(),
                                     sketch::HistTap(config, arity));
  ForEachPartition(pool, static_cast<int>(slices.size()), [&](int p) {
    const Table& t = slices[static_cast<size_t>(p)];
    if (t.num_rows() == 0) return;
    sketch::HistTap& tap = parts[static_cast<size_t>(p)];
    if (VectorizedKernels()) {
      tap.AddColumns(KeyColumnData(t, attrs), t.num_rows());
      return;
    }
    const std::vector<int> cols = KeyColumns(t.schema(), attrs);
    std::vector<Value> probe(cols.size());
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < cols.size(); ++c) {
        probe[c] = t.at(r, cols[c]);
      }
      tap.AddRow(probe);
    }
  });
  const int64_t merge_start = obs::ProfileNowNs();
  for (size_t p = 1; p < parts.size(); ++p) {
    ETLOPT_CHECK_MSG(parts[0].Merge(parts[p]).ok(),
                     "hist tap shapes diverged");
  }
  *merge_ns += obs::ProfileNowNs() - merge_start;
  return std::move(parts[0]);
}

// The reject table and R-side table + join attribute of a reject-join key:
// shared lookup for the materializing and the streaming observers.
struct RejectJoinInputs {
  const Table* rejects = nullptr;
  const Table* r_table = nullptr;
  AttrId attr = kInvalidAttr;
};

Result<RejectJoinInputs> FindRejectJoinInputs(const BlockContext& ctx,
                                              const ExecutionResult& exec,
                                              const StatKey& key) {
  const RelMask l = key.reject_left;
  const RelMask k_mask = RelMask{1} << key.reject_k;
  const RelMask r = key.rels;

  // The designed join of L with k.
  auto join_it = ctx.on_path().find(l | k_mask);
  if (join_it == ctx.on_path().end()) {
    return Status::InvalidArgument("L⋈k not on-path for " + key.ToString());
  }
  const NodeId join_node = join_it->second;
  const BlockJoin* bj = nullptr;
  for (const BlockJoin& j : ctx.block().joins) {
    if (j.node == join_node) {
      bj = &j;
      break;
    }
  }
  if (bj == nullptr) return Status::Internal("designed join not found");

  RejectJoinInputs inputs;
  if (bj->left == l && bj->right == k_mask) {
    auto it = exec.join_rejects.find(join_node);
    if (it != exec.join_rejects.end()) inputs.rejects = &it->second;
  } else if (bj->left == k_mask && bj->right == l) {
    auto it = exec.join_rejects_right.find(join_node);
    if (it != exec.join_rejects_right.end()) inputs.rejects = &it->second;
  }
  if (inputs.rejects == nullptr) {
    return Status::Internal("reject rows unavailable for " + key.ToString());
  }

  // Side join with the on-path R table on the edge connecting L and R.
  const int edge = ctx.graph().CrossingEdge(l, r);
  if (edge < 0) {
    return Status::InvalidArgument("no unique edge between L and R for " +
                                   key.ToString());
  }
  inputs.attr = ctx.graph().edges()[static_cast<size_t>(edge)].attr;
  auto r_it = ctx.on_path().find(r);
  if (r_it == ctx.on_path().end()) {
    return Status::InvalidArgument("R not on-path for " + key.ToString());
  }
  // On an aborted parallel run the on-path node may exist without a merged
  // output; salvage must skip the tap, not crash.
  const auto out_it = exec.node_outputs.find(r_it->second);
  if (out_it == exec.node_outputs.end()) {
    return Status::Internal("R table unavailable for " + key.ToString() +
                            " (node output missing after abort)");
  }
  inputs.r_table = &out_it->second;
  return inputs;
}

// Materializes reject(L wrt k) ⋈ R for a reject-join key (exact taps).
Result<Table> RejectSideJoin(const BlockContext& ctx,
                             const ExecutionResult& exec, const StatKey& key) {
  ETLOPT_ASSIGN_OR_RETURN(const RejectJoinInputs in,
                          FindRejectJoinInputs(ctx, exec, key));
  return HashJoin(*in.rejects, *in.r_table, in.attr, nullptr);
}

// Streams the pairs of reject(L wrt k) ⋈ R without materializing the joined
// table: builds the R-side hash index (needed by any join evaluation) and
// hands each matching pair to `emit(left_row, r_row_index)`.
template <typename Emit>
Status StreamRejectSideJoin(const RejectJoinInputs& in, Emit&& emit) {
  const int lkey = in.rejects->schema().IndexOf(in.attr);
  const int rkey = in.r_table->schema().IndexOf(in.attr);
  if (lkey < 0 || rkey < 0) {
    return Status::Internal("join key missing from reject-join input");
  }
  if (VectorizedKernels()) {
    // Same emission order as the map-based build: left rows in order, each
    // key's matches in R build order (JoinHashTable groups preserve it).
    const JoinHashTable ht(in.r_table->column_data(rkey),
                           in.r_table->num_rows());
    const Value* lvals = in.rejects->column_data(lkey);
    for (int64_t l = 0; l < in.rejects->num_rows(); ++l) {
      const JoinHashTable::RowRange range = ht.Lookup(lvals[l]);
      for (const int64_t* p = range.begin; p != range.end; ++p) {
        emit(l, *p);
      }
    }
    return Status::OK();
  }
  std::unordered_map<Value, std::vector<int64_t>> build;
  build.reserve(static_cast<size_t>(in.r_table->num_rows()));
  for (int64_t r = 0; r < in.r_table->num_rows(); ++r) {
    build[in.r_table->at(r, rkey)].push_back(r);
  }
  for (int64_t l = 0; l < in.rejects->num_rows(); ++l) {
    const auto it = build.find(in.rejects->at(l, lkey));
    if (it == build.end()) continue;
    for (int64_t r : it->second) {
      emit(l, r);
    }
  }
  return Status::OK();
}

// Column lookup plan for extracting a histogram key from the (virtual)
// joined row of a reject-side join: each attribute resolves to the left
// (reject) side or, failing that, the R side.
struct JoinedKeyPlan {
  struct Col {
    bool from_left = true;
    int index = 0;
  };
  std::vector<Col> cols;
};

Result<JoinedKeyPlan> PlanJoinedKey(const RejectJoinInputs& in,
                                    AttrMask attrs) {
  JoinedKeyPlan plan;
  for (int idx : MaskToIndices(attrs)) {
    JoinedKeyPlan::Col col;
    const int l = in.rejects->schema().IndexOf(static_cast<AttrId>(idx));
    if (l >= 0) {
      col.from_left = true;
      col.index = l;
    } else {
      const int r = in.r_table->schema().IndexOf(static_cast<AttrId>(idx));
      if (r < 0) {
        return Status::InvalidArgument(
            "histogram attribute missing from reject-join schema");
      }
      col.from_left = false;
      col.index = r;
    }
    plan.cols.push_back(col);
  }
  return plan;
}

// Per-key tap decision computed up-front so the whole observation either
// fits the budget exactly or degrades the sketchable taps together.
struct TapPlan {
  std::vector<char> sketch;     // aligned with keys
  sketch::TapSketchConfig config;
  int64_t exact_bytes_estimate = 0;
};

int Arity(const StatKey& key) { return PopCount(key.attrs); }

Result<TapPlan> PlanTaps(const BlockContext& ctx, const ExecutionResult& exec,
                         const std::vector<StatKey>& keys,
                         const TapOptions& taps) {
  TapPlan plan;
  plan.sketch.assign(keys.size(), 0);
  int sketchable = 0;
  int max_arity = 1;
  for (size_t i = 0; i < keys.size(); ++i) {
    const StatKey& key = keys[i];
    int64_t exact_bytes = 8;  // a counter
    switch (key.kind) {
      case StatKind::kCard:
        break;
      case StatKind::kDistinct:
      case StatKind::kHist: {
        ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                PointTable(ctx, exec, key));
        exact_bytes = key.kind == StatKind::kDistinct
                          ? sketch::EstimateExactDistinctBytes(
                                table->num_rows(), Arity(key))
                          : sketch::EstimateExactHistBytes(table->num_rows(),
                                                           Arity(key));
        plan.sketch[i] = 1;
        ++sketchable;
        max_arity = std::max(max_arity, Arity(key));
        break;
      }
      case StatKind::kRejectJoinCard:
      case StatKind::kRejectJoinHist: {
        ETLOPT_ASSIGN_OR_RETURN(const RejectJoinInputs in,
                                FindRejectJoinInputs(ctx, exec, key));
        // The exact tap materializes the side join; its output is bounded
        // below by the reject rows that match at all, so use the reject
        // row count as the (optimistic) footprint proxy.
        const int row_width =
            in.rejects->schema().size() + in.r_table->schema().size();
        exact_bytes = in.rejects->num_rows() *
                      (40 + 8 * static_cast<int64_t>(row_width));
        if (key.kind == StatKind::kRejectJoinHist) {
          plan.sketch[i] = 1;
          ++sketchable;
          max_arity = std::max(max_arity, Arity(key));
        }
        break;
      }
    }
    plan.exact_bytes_estimate += exact_bytes;
  }

  if (taps.memory_budget_bytes <= 0 ||
      plan.exact_bytes_estimate <= taps.memory_budget_bytes ||
      sketchable == 0) {
    // Budget absent or sufficient: exact taps throughout.
    plan.sketch.assign(keys.size(), 0);
    return plan;
  }
  plan.config = sketch::TapSketchConfig::ForBudget(
      taps.memory_budget_bytes / sketchable, max_arity);
  return plan;
}

// Whether every table a key's tap reads survived the run — false for keys
// whose pipeline points fall past an abort. Salvage mode filters on this.
bool KeyInputsAvailable(const BlockContext& ctx, const ExecutionResult& exec,
                        const StatKey& key) {
  switch (key.kind) {
    case StatKind::kCard:
    case StatKind::kDistinct:
    case StatKind::kHist:
      return PointTable(ctx, exec, key).ok();
    case StatKind::kRejectJoinCard:
    case StatKind::kRejectJoinHist:
      return FindRejectJoinInputs(ctx, exec, key).ok();
  }
  return false;
}

// Rows one key's tap consumed — the checkpoint cadence currency. Callers
// only ask for keys whose inputs are available.
int64_t TappedRows(const BlockContext& ctx, const ExecutionResult& exec,
                   const StatKey& key) {
  switch (key.kind) {
    case StatKind::kCard:
    case StatKind::kDistinct:
    case StatKind::kHist: {
      const Result<const Table*> table = PointTable(ctx, exec, key);
      return table.ok() ? (*table)->num_rows() : 0;
    }
    case StatKind::kRejectJoinCard:
    case StatKind::kRejectJoinHist: {
      const Result<RejectJoinInputs> in = FindRejectJoinInputs(ctx, exec, key);
      return in.ok() ? in->rejects->num_rows() + in->r_table->num_rows() : 0;
    }
  }
  return 0;
}

}  // namespace

TapOptions TapOptions::FromEnv() {
  TapOptions options;
  const char* value = std::getenv("ETLOPT_TAP_BUDGET");
  if (value != nullptr && *value != '\0') {
    char* end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end != value && parsed > 0) {
      options.memory_budget_bytes = parsed;
    }
  }
  return options;
}

Result<StatStore> ObserveStatistics(const BlockContext& ctx,
                                    const ExecutionResult& exec,
                                    const std::vector<StatKey>& keys,
                                    const TapOptions& taps,
                                    TapReport* report,
                                    const ParallelTapContext& par) {
  const int64_t observe_start_ns = obs::ProfileNowNs();
  TapReport local;
  std::vector<StatKey> observable;
  observable.reserve(keys.size());
  for (const StatKey& key : keys) {
    if (taps.salvage && !KeyInputsAvailable(ctx, exec, key)) {
      // The run aborted before this key's pipeline point materialized —
      // skip it and salvage the rest.
      ++local.salvage_skipped;
      continue;
    }
    if (!IsObservable(key, ctx)) {
      return Status::InvalidArgument("statistic not observable: " +
                                     key.ToString());
    }
    observable.push_back(key);
  }
  ETLOPT_ASSIGN_OR_RETURN(const TapPlan plan,
                          PlanTaps(ctx, exec, observable, taps));

  StatStore store;
  local.exact_bytes_estimate = plan.exact_bytes_estimate;
  fault::FaultInjector* inj = fault::FaultInjector::Global();
  int64_t rows_since_flush = 0;

  for (size_t i = 0; i < observable.size(); ++i) {
    const StatKey& key = observable[i];
    bool use_sketch = plan.sketch[i] != 0;
    sketch::TapSketchConfig tap_config = plan.config;
    if (inj != nullptr) {
      const char* tap_name = TapFaultName(key.kind);
      const fault::Kind fk = inj->OnTap(tap_name);
      if (fk != fault::Kind::kNone) {
        // Allocation for this tap failed. An exact distinct or reject-
        // histogram collector can retry as a bounded-memory sketch (a
        // second, smaller allocation — consulted separately); anything
        // else is disabled and the run continues un-instrumented for this
        // key. Plain join histograms are never downgraded: they feed the
        // exact union-division rules (J4/J5), whose every-bucket-divides
        // invariant a lossy sketch cannot honor.
        const bool sketchable = !use_sketch &&
                                (key.kind == StatKind::kDistinct ||
                                 key.kind == StatKind::kRejectJoinHist);
        if (sketchable && inj->OnTap(tap_name) == fault::Kind::kNone) {
          use_sketch = true;
          tap_config =
              sketch::TapSketchConfig::ForBudget(kDowngradeTapBytes,
                                                 Arity(key));
          ++local.downgraded_taps;
          ETLOPT_COUNTER_ADD("etlopt.tap.downgraded", 1);
          ETLOPT_LOG(Info) << "tap " << key.ToString()
                           << ": exact collector allocation failed ("
                           << fault::KindName(fk)
                           << "), downgraded to sketch";
        } else {
          ++local.disabled_taps;
          ETLOPT_COUNTER_ADD("etlopt.tap.disabled", 1);
          ETLOPT_LOG(Warning) << "tap " << key.ToString() << " disabled ("
                              << fault::KindName(fk)
                              << "); run continues un-instrumented";
          continue;
        }
      }
    }
    switch (key.kind) {
      case StatKind::kCard: {
        const std::vector<Table>* slices = KeySlices(ctx, par, key);
        if (slices != nullptr) {
          // Per-partition counts merge by addition.
          store.Set(key, StatValue::Count(MergedSliceRows(*slices)));
        } else {
          ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                  PointTable(ctx, exec, key));
          store.Set(key, StatValue::Count(table->num_rows()));
        }
        ++local.exact_taps;
        local.tap_bytes += 8;
        break;
      }
      case StatKind::kDistinct: {
        ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                PointTable(ctx, exec, key));
        const std::vector<Table>* slices = KeySlices(ctx, par, key);
        if (use_sketch) {
          sketch::DistinctTap tap =
              slices != nullptr
                  ? MergedDistinctTap(*slices, key.attrs, tap_config,
                                      par.pool, &local.merge_ns)
                  : [&] {
                      sketch::DistinctTap serial(tap_config);
                      if (VectorizedKernels()) {
                        serial.AddColumns(KeyColumnData(*table, key.attrs),
                                          table->num_rows());
                        return serial;
                      }
                      std::vector<int> cols =
                          KeyColumns(table->schema(), key.attrs);
                      std::vector<Value> probe(cols.size());
                      for (int64_t r = 0; r < table->num_rows(); ++r) {
                        for (size_t c = 0; c < cols.size(); ++c) {
                          probe[c] = table->at(r, cols[c]);
                        }
                        serial.AddRow(probe);
                      }
                      return serial;
                    }();
          store.Set(key, StatValue::CountApprox(tap.Estimate(),
                                                tap.RelError()));
          ++local.sketch_taps;
          local.tap_bytes += tap.MemoryBytes();
        } else {
          const int64_t distinct =
              slices != nullptr
                  ? MergedDistinctCount(*slices, key.attrs, par.pool,
                                        &local.merge_ns)
                  : table->CountDistinct(key.attrs);
          store.Set(key, StatValue::Count(distinct));
          ++local.exact_taps;
          local.tap_bytes += sketch::EstimateExactDistinctBytes(
              table->num_rows(), Arity(key));
        }
        break;
      }
      case StatKind::kHist: {
        ETLOPT_ASSIGN_OR_RETURN(const Table* table,
                                PointTable(ctx, exec, key));
        const std::vector<Table>* slices = KeySlices(ctx, par, key);
        if (use_sketch) {
          sketch::HistTap tap =
              slices != nullptr
                  ? MergedHistTap(*slices, key.attrs, tap_config, Arity(key),
                                  par.pool, &local.merge_ns)
                  : [&] {
                      sketch::HistTap serial(tap_config, Arity(key));
                      if (VectorizedKernels()) {
                        serial.AddColumns(KeyColumnData(*table, key.attrs),
                                          table->num_rows());
                        return serial;
                      }
                      std::vector<int> cols =
                          KeyColumns(table->schema(), key.attrs);
                      std::vector<Value> probe(cols.size());
                      for (int64_t r = 0; r < table->num_rows(); ++r) {
                        for (size_t c = 0; c < cols.size(); ++c) {
                          probe[c] = table->at(r, cols[c]);
                        }
                        serial.AddRow(probe);
                      }
                      return serial;
                    }();
          store.Set(key, StatValue::HistApprox(tap.Build(key.attrs),
                                               tap.RelError()));
          ++local.sketch_taps;
          local.tap_bytes += tap.MemoryBytes();
        } else {
          StatValue value =
              slices != nullptr
                  ? StatValue::Hist(MergedExactHistogram(
                        *slices, key.attrs, par.pool, &local.merge_ns))
                  : StatValue::Hist(table->BuildHistogram(key.attrs));
          store.Set(key, std::move(value));
          ++local.exact_taps;
          local.tap_bytes += sketch::EstimateExactHistBytes(table->num_rows(),
                                                            Arity(key));
        }
        break;
      }
      case StatKind::kRejectJoinCard: {
        if (taps.memory_budget_bytes > 0) {
          // Streaming count: never materialize the side join.
          ETLOPT_ASSIGN_OR_RETURN(const RejectJoinInputs in,
                                  FindRejectJoinInputs(ctx, exec, key));
          int64_t count = 0;
          ETLOPT_RETURN_IF_ERROR(StreamRejectSideJoin(
              in, [&count](int64_t, int64_t) { ++count; }));
          store.Set(key, StatValue::Count(count));
          local.tap_bytes += 8;
        } else {
          ETLOPT_ASSIGN_OR_RETURN(Table joined,
                                  RejectSideJoin(ctx, exec, key));
          store.Set(key, StatValue::Count(joined.num_rows()));
          local.tap_bytes += 8;
        }
        ++local.exact_taps;  // the count itself is exact either way
        break;
      }
      case StatKind::kRejectJoinHist: {
        ETLOPT_ASSIGN_OR_RETURN(const RejectJoinInputs in,
                                FindRejectJoinInputs(ctx, exec, key));
        if (use_sketch) {
          ETLOPT_ASSIGN_OR_RETURN(const JoinedKeyPlan key_plan,
                                  PlanJoinedKey(in, key.attrs));
          sketch::HistTap tap(tap_config, Arity(key));
          std::vector<Value> probe(key_plan.cols.size());
          ETLOPT_RETURN_IF_ERROR(StreamRejectSideJoin(
              in, [&](int64_t l, int64_t r) {
                for (size_t c = 0; c < key_plan.cols.size(); ++c) {
                  const JoinedKeyPlan::Col& col = key_plan.cols[c];
                  probe[c] = col.from_left ? in.rejects->at(l, col.index)
                                           : in.r_table->at(r, col.index);
                }
                tap.AddRow(probe);
              }));
          store.Set(key, StatValue::HistApprox(tap.Build(key.attrs),
                                               tap.RelError()));
          ++local.sketch_taps;
          local.tap_bytes += tap.MemoryBytes();
        } else {
          ETLOPT_ASSIGN_OR_RETURN(Table joined,
                                  RejectSideJoin(ctx, exec, key));
          store.Set(key, StatValue::Hist(joined.BuildHistogram(key.attrs)));
          ++local.exact_taps;
          local.tap_bytes += sketch::EstimateExactHistBytes(joined.num_rows(),
                                                            Arity(key));
        }
        break;
      }
    }
    // Checkpoint cadence: snapshot the partial store every N tapped rows so
    // a mid-observation death loses at most one cadence worth of taps.
    const int64_t tapped = TappedRows(ctx, exec, key);
    local.rows_tapped += tapped;
    rows_since_flush += tapped;
    if (taps.checkpoint_every_rows > 0 && taps.on_checkpoint != nullptr &&
        rows_since_flush >= taps.checkpoint_every_rows) {
      taps.on_checkpoint(store);
      ++local.checkpoint_flushes;
      rows_since_flush = 0;
    }
  }

  ETLOPT_COUNTER_ADD("etlopt.tap.exact", local.exact_taps);
  ETLOPT_COUNTER_ADD("etlopt.tap.sketch", local.sketch_taps);
  ETLOPT_COUNTER_ADD("etlopt.tap.bytes", local.tap_bytes);
  ETLOPT_COUNTER_ADD("etlopt.tap.exact_bytes_estimate",
                     local.exact_bytes_estimate);
  if (local.salvage_skipped > 0) {
    ETLOPT_COUNTER_ADD("etlopt.tap.salvage_skipped", local.salvage_skipped);
  }
  if (local.merge_ns > 0) {
    ETLOPT_COUNTER_ADD("etlopt.parallel.tap_merge_ns", local.merge_ns);
  }
  local.observe_ns = obs::ProfileNowNs() - observe_start_ns;
  if (report != nullptr) report->Accumulate(local);
  return store;
}

Result<Table> MaterializeSubexpression(const BlockContext& ctx, RelMask rels,
                                       const ExecutionResult& exec) {
  // Start from the lowest relation's top and join the remaining ones along
  // designed edges (any connected order is equivalent).
  std::vector<int> members = MaskToIndices(rels);
  auto top_table = [&](int rel) -> Result<Table> {
    const NodeId node = ctx.TopNode(rel);
    auto it = exec.node_outputs.find(node);
    if (it == exec.node_outputs.end()) {
      return Status::Internal("no cached output for relation top");
    }
    return it->second;
  };
  ETLOPT_ASSIGN_OR_RETURN(Table acc, top_table(members[0]));
  RelMask done = RelMask{1} << members[0];
  while (done != rels) {
    bool progressed = false;
    for (int rel : members) {
      const RelMask bit = RelMask{1} << rel;
      if (done & bit) continue;
      const int edge = ctx.graph().CrossingEdge(done, bit);
      if (edge < 0) continue;
      const AttrId attr = ctx.graph().edges()[static_cast<size_t>(edge)].attr;
      ETLOPT_ASSIGN_OR_RETURN(Table next, top_table(rel));
      acc = HashJoin(acc, next, attr, nullptr);
      done |= bit;
      progressed = true;
    }
    if (!progressed) {
      return Status::InvalidArgument("SE is not connected");
    }
  }
  return acc;
}

Result<std::unordered_map<RelMask, int64_t>> ComputeGroundTruthCards(
    const BlockContext& ctx, const std::vector<RelMask>& subexpressions,
    const ExecutionResult& exec) {
  std::unordered_map<RelMask, int64_t> cards;
  for (RelMask se : subexpressions) {
    ETLOPT_ASSIGN_OR_RETURN(Table table,
                            MaterializeSubexpression(ctx, se, exec));
    cards[se] = table.num_rows();
  }
  return cards;
}

}  // namespace etlopt
