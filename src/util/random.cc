#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace etlopt {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ETLOPT_CHECK(bound > 0);
  // Debiased modulo via rejection on the tail.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ETLOPT_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) : n_(n), s_(s) {
  ETLOPT_CHECK(n >= 1);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[static_cast<size_t>(k - 1)] = acc;
  }
  const double total = acc;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace etlopt
