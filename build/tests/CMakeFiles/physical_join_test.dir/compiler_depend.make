# Empty compiler generated dependencies file for physical_join_test.
# This may be replaced when dependencies are built.
