// Parameterized property sweeps: the histogram algebra against brute-force
// table operations, over random data. These pin down the *evaluation
// semantics* of the rules (J1/J2/J3, S1/S2, G2, I1/I2) on real tables.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "test_util.h"

namespace etlopt {
namespace {

class HistogramAlgebraSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t>> {
 protected:
  void SetUp() override {
    seed_ = std::get<0>(GetParam());
    domain_ = std::get<1>(GetParam());
    a_ = catalog_.Register("a", domain_);
    b_ = catalog_.Register("b", domain_ / 2 + 1);
    c_ = catalog_.Register("c", 9);
  }

  AttrCatalog catalog_;
  uint64_t seed_ = 0;
  int64_t domain_ = 0;
  AttrId a_ = kInvalidAttr, b_ = kInvalidAttr, c_ = kInvalidAttr;
};

TEST_P(HistogramAlgebraSweep, J1DotProductEqualsJoinCardinality) {
  Rng rng(seed_);
  const Table t1 =
      testing_util::RandomTable(catalog_, {a_, b_}, 300, rng);
  const Table t2 = testing_util::RandomTable(catalog_, {a_, c_}, 120, rng);
  const Table joined = HashJoin(t1, t2, a_, nullptr);
  const AttrMask ab = AttrMask{1} << a_;
  EXPECT_EQ(Histogram::DotProduct(t1.BuildHistogram(ab),
                                  t2.BuildHistogram(ab)),
            joined.num_rows());
}

TEST_P(HistogramAlgebraSweep, J2MultiplyThroughJoinEqualsJoinHistogram) {
  Rng rng(seed_);
  const Table t1 =
      testing_util::RandomTable(catalog_, {a_, b_}, 250, rng);
  const Table t2 = testing_util::RandomTable(catalog_, {a_}, 90, rng);
  const Table joined = HashJoin(t1, t2, a_, nullptr);
  const AttrMask abit = AttrMask{1} << a_;
  const AttrMask bbit = AttrMask{1} << b_;
  // H^b_{T1⋈T2} = marginalize_a( H^{a,b}_{T1} × H^a_{T2} ).
  const Histogram derived =
      Histogram::MultiplyBy(t1.BuildHistogram(abit | bbit),
                            t2.BuildHistogram(abit))
          .Marginalize(bbit);
  EXPECT_TRUE(derived == joined.BuildHistogram(bbit));
  // J3 variant: the join attribute's own distribution on the result.
  const Histogram j3 = Histogram::MultiplyBy(t1.BuildHistogram(abit),
                                             t2.BuildHistogram(abit));
  EXPECT_TRUE(j3 == joined.BuildHistogram(abit));
}

TEST_P(HistogramAlgebraSweep, S1S2MatchEngineFilter) {
  Rng rng(seed_);
  const Table t =
      testing_util::RandomTable(catalog_, {a_, b_}, 400, rng);
  const Predicate pred{a_, CompareOp::kLe, domain_ / 3};
  // Brute force through the engine's row filter.
  Table filtered{t.schema()};
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (pred.Matches(t.at(r, 0))) filtered.AppendRowFrom(t, r);
  }
  const AttrMask abit = AttrMask{1} << a_;
  const AttrMask bbit = AttrMask{1} << b_;
  EXPECT_EQ(t.BuildHistogram(abit).CountMatching(pred),
            filtered.num_rows());
  EXPECT_TRUE(t.BuildHistogram(abit | bbit)
                  .FilterThenMarginalize(pred, bbit) ==
              filtered.BuildHistogram(bbit));
}

TEST_P(HistogramAlgebraSweep, G2CollapseEqualsGroupByDistribution) {
  Rng rng(seed_);
  const Table t =
      testing_util::RandomTable(catalog_, {a_, c_}, 350, rng);
  const AttrMask group = (AttrMask{1} << a_) | (AttrMask{1} << c_);
  // Engine group-by (one row per group).
  std::unordered_map<std::vector<Value>, bool, ValueVecHash> seen;
  Table grouped{Schema({a_, c_})};
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (seen.emplace(t.row(r), true).second) grouped.AppendRowFrom(t, r);
  }
  const AttrMask cbit = AttrMask{1} << c_;
  EXPECT_TRUE(t.BuildHistogram(group).CollapseToDistinct().Marginalize(
                  cbit) == grouped.BuildHistogram(cbit));
}

TEST_P(HistogramAlgebraSweep, I1I2Identities) {
  Rng rng(seed_);
  const Table t =
      testing_util::RandomTable(catalog_, {a_, b_, c_}, 500, rng);
  const AttrMask all =
      (AttrMask{1} << a_) | (AttrMask{1} << b_) | (AttrMask{1} << c_);
  const Histogram fine = t.BuildHistogram(all);
  // I1: total count equals |T| from any histogram.
  EXPECT_EQ(fine.TotalCount(), t.num_rows());
  // I2: marginalizing the fine histogram equals building the coarse one.
  for (AttrMask keep :
       {AttrMask{1} << a_, AttrMask{1} << c_,
        (AttrMask{1} << a_) | (AttrMask{1} << c_)}) {
    EXPECT_TRUE(fine.Marginalize(keep) == t.BuildHistogram(keep));
  }
  // Distinct equals bucket count.
  EXPECT_EQ(fine.NumBuckets(), t.CountDistinct(all));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramAlgebraSweep,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 1337u),
                       ::testing::Values(int64_t{5}, int64_t{40},
                                         int64_t{500})),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int64_t>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_dom" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace etlopt
