#include "obs/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "etl/workflow_io.h"
#include "obs/metrics.h"
#include "stats/stat_io.h"
#include "util/json.h"
#include "util/logging.h"

namespace etlopt {
namespace obs {
namespace {

uint64_t Fnv1a64(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ToHex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string FingerprintText(const std::string& text) {
  return ToHex16(Fnv1a64(text));
}

std::string FingerprintWorkflow(const Workflow& workflow) {
  Status status;
  const std::string text = WriteWorkflowText(workflow, &status);
  return FingerprintText(status.ok() ? text : workflow.ToString());
}

std::string RunRecord::ToJsonLine() const {
  Json j = Json::Object();
  j.Set("run_id", Json::Str(run_id));
  j.Set("fingerprint", Json::Str(fingerprint));
  j.Set("workflow", Json::Str(workflow));
  j.Set("ts_ms", Json::Int(timestamp_ms));
  j.Set("selector", Json::Str(selector));
  j.Set("plan_sig", Json::Str(plan_signature));
  j.Set("initial_cost", Json::Double(initial_cost));
  j.Set("optimized_cost", Json::Double(optimized_cost));
  Json phases = Json::Object();
  phases.Set("analyze_ms", Json::Double(analyze_ms));
  phases.Set("execute_ms", Json::Double(execute_ms));
  phases.Set("optimize_ms", Json::Double(optimize_ms));
  j.Set("phases", std::move(phases));
  Json jcards = Json::Array();
  for (const SeCard& c : cards) {
    Json jc = Json::Object();
    jc.Set("block", Json::Int(c.block));
    jc.Set("se", Json::Int(static_cast<int64_t>(c.se)));
    jc.Set("est", Json::Double(c.estimated));
    jc.Set("actual", Json::Double(c.actual));
    jcards.push_back(std::move(jc));
  }
  j.Set("cards", std::move(jcards));
  // Observed statistics ride along as the stat_io text codec, one string
  // per block — full fidelity (histograms included) without inventing a
  // second statistics serialization.
  Json jstats = Json::Array();
  for (const StatStore& store : block_stats) {
    jstats.push_back(Json::Str(WriteStatStoreText(store)));
  }
  j.Set("stats", std::move(jstats));
  Json jmetrics = Json::Object();
  for (const auto& [name, value] : metrics) {
    jmetrics.Set(name, Json::Int(value));
  }
  j.Set("metrics", std::move(jmetrics));
  // Robustness fields ride along only when they carry information, so the
  // clean-run line format is byte-identical to the pre-robustness era.
  if (partial) {
    j.Set("partial", Json::Bool(true));
    j.Set("abort_reason", Json::Str(abort_reason));
    j.Set("completion", Json::Double(completion));
  }
  if (!source_rows_read.empty()) {
    Json watermarks = Json::Object();
    for (const auto& [source, rows] : source_rows_read) {
      watermarks.Set(source, Json::Int(rows));
    }
    j.Set("watermarks", std::move(watermarks));
  }
  if (!source_retries.empty()) {
    Json retries = Json::Object();
    for (const auto& [source, count] : source_retries) {
      retries.Set(source, Json::Int(count));
    }
    j.Set("retries", std::move(retries));
  }
  if (quarantined_rows > 0) {
    j.Set("quarantined", Json::Int(quarantined_rows));
  }
  if (num_threads != 1) {
    j.Set("num_threads", Json::Int(num_threads));
  }
  if (!profile.empty()) {
    j.Set("profile", ProfileToJson(profile));
  }
  if (!build.git_sha.empty()) {
    Json jbuild = Json::Object();
    jbuild.Set("sha", Json::Str(build.git_sha));
    jbuild.Set("compiler", Json::Str(build.compiler));
    jbuild.Set("type", Json::Str(build.build_type));
    if (!build.sanitizers.empty()) {
      jbuild.Set("sanitizers", Json::Str(build.sanitizers));
    }
    j.Set("build", std::move(jbuild));
  }
  if (guard.engaged()) {
    j.Set("guard", guard.ToJson());
  }
  return j.Dump();
}

Result<RunRecord> RunRecord::FromJsonLine(const std::string& line) {
  ETLOPT_ASSIGN_OR_RETURN(const Json j, Json::Parse(line));
  if (!j.is_object()) {
    return Status::InvalidArgument("ledger record is not a JSON object");
  }
  RunRecord record;
  record.run_id = j.GetString("run_id");
  record.fingerprint = j.GetString("fingerprint");
  record.workflow = j.GetString("workflow");
  record.timestamp_ms = j.GetInt("ts_ms");
  record.selector = j.GetString("selector");
  record.plan_signature = j.GetString("plan_sig");
  record.initial_cost = j.GetDouble("initial_cost");
  record.optimized_cost = j.GetDouble("optimized_cost");
  if (const Json* phases = j.Find("phases");
      phases != nullptr && phases->is_object()) {
    record.analyze_ms = phases->GetDouble("analyze_ms");
    record.execute_ms = phases->GetDouble("execute_ms");
    record.optimize_ms = phases->GetDouble("optimize_ms");
  }
  if (const Json* cards = j.Find("cards");
      cards != nullptr && cards->is_array()) {
    for (const Json& jc : cards->array()) {
      if (!jc.is_object()) continue;
      SeCard c;
      c.block = static_cast<int>(jc.GetInt("block"));
      c.se = static_cast<RelMask>(jc.GetInt("se"));
      c.estimated = jc.GetDouble("est", -1.0);
      c.actual = jc.GetDouble("actual", -1.0);
      record.cards.push_back(c);
    }
  }
  if (const Json* stats = j.Find("stats");
      stats != nullptr && stats->is_array()) {
    for (const Json& js : stats->array()) {
      if (!js.is_string()) continue;
      ETLOPT_ASSIGN_OR_RETURN(StatStore store,
                              ParseStatStoreText(js.string_value()));
      record.block_stats.push_back(std::move(store));
    }
  }
  if (const Json* metrics = j.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [name, value] : metrics->members()) {
      if (value.is_number()) {
        record.metrics.emplace_back(name, value.int_value());
      }
    }
  }
  if (const Json* partial = j.Find("partial");
      partial != nullptr && partial->is_bool() && partial->bool_value()) {
    record.partial = true;
    record.abort_reason = j.GetString("abort_reason");
    record.completion = j.GetDouble("completion", 1.0);
  }
  if (const Json* watermarks = j.Find("watermarks");
      watermarks != nullptr && watermarks->is_object()) {
    for (const auto& [source, rows] : watermarks->members()) {
      if (rows.is_number()) {
        record.source_rows_read.emplace_back(source, rows.int_value());
      }
    }
  }
  if (const Json* retries = j.Find("retries");
      retries != nullptr && retries->is_object()) {
    for (const auto& [source, count] : retries->members()) {
      if (count.is_number()) {
        record.source_retries.emplace_back(source, count.int_value());
      }
    }
  }
  record.quarantined_rows = j.GetInt("quarantined", 0);
  record.num_threads = static_cast<int>(j.GetInt("num_threads", 1));
  if (const Json* profile = j.Find("profile");
      profile != nullptr && profile->is_object()) {
    record.profile = ProfileFromJson(*profile);
  }
  if (const Json* guard = j.Find("guard");
      guard != nullptr && guard->is_object()) {
    record.guard = GuardRecord::FromJson(*guard);
  }
  if (const Json* build = j.Find("build");
      build != nullptr && build->is_object()) {
    record.build.git_sha = build->GetString("sha");
    record.build.compiler = build->GetString("compiler");
    record.build.build_type = build->GetString("type");
    record.build.sanitizers = build->GetString("sanitizers");
  }
  return record;
}

Result<LedgerLoadResult> RunLedger::Load() const {
  LedgerLoadResult result;
  std::ifstream in(path_);
  if (!in) return result;  // first run: no ledger yet
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    Result<RunRecord> record = RunRecord::FromJsonLine(line);
    if (!record.ok()) {
      // A torn append (crash mid-write of the pre-rename era), an editor
      // mishap, or plain garbage anywhere in the file: skip the line rather
      // than losing the whole history, but say so — silent tolerance hides
      // real corruption.
      ++result.skipped_lines;
      ETLOPT_COUNTER_ADD("etlopt.obs.ledger.skipped_lines", 1);
      ETLOPT_LOG(Warning) << "ledger '" << path_ << "' line " << line_number
                          << " unreadable, skipped: "
                          << record.status().ToString();
      continue;
    }
    result.records.push_back(std::move(*record));
  }
  return result;
}

Status RunLedger::Append(const RunRecord& record) {
  // Crash-safe append: existing content + new line into a temp file in the
  // same directory, fsync, then rename over the ledger.
  std::string existing;
  {
    std::ifstream in(path_);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  if (!existing.empty() && existing.back() != '\n') existing += '\n';

  const std::string tmp_path = path_ + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open '" + tmp_path +
                                     "' for writing");
    }
    out << existing << record.ToJsonLine() << "\n";
    out.flush();
    if (!out.good()) {
      return Status::Internal("write to '" + tmp_path + "' failed");
    }
  }
  // Flush file contents to stable storage before the rename commits it.
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::Internal("rename '" + tmp_path + "' -> '" + path_ +
                            "' failed");
  }
  return Status::OK();
}

std::vector<RunRecord> RunLedger::HistoryFor(
    const std::vector<RunRecord>& records, const std::string& fingerprint) {
  std::vector<RunRecord> history;
  for (const RunRecord& record : records) {
    if (record.fingerprint == fingerprint) history.push_back(record);
  }
  return history;
}

std::string RunLedger::NextRunId(const std::vector<RunRecord>& records,
                                 const std::string& fingerprint) {
  return "run-" +
         std::to_string(HistoryFor(records, fingerprint).size() + 1);
}

}  // namespace obs
}  // namespace etlopt
