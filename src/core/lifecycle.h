#ifndef ETLOPT_CORE_LIFECYCLE_H_
#define ETLOPT_CORE_LIFECYCLE_H_

#include "core/pipeline.h"
#include "obs/drift.h"
#include "opt/resource.h"

namespace etlopt {

// The full Section 6.1 lifecycle, executed: when the memory budget cannot
// hold the optimal statistics set, the first instrumented run observes the
// affordable subset and the remaining SE cardinalities are collected as
// trivial counters across additional runs with re-ordered plans (the
// repeated-execution strategy of [pay-as-you-go], reduced to only the SEs
// that statistics could not cover).
struct BudgetedLifecycleResult {
  // Per block: the budgeted selection (first run) and the complete SE
  // cardinality map after all runs.
  std::vector<BudgetedSelection> selections;
  std::vector<CardMap> block_cards;
  // Total workflow executions performed (1 + re-ordered runs).
  int executions = 0;
  // The re-optimized workflow from the completed statistics.
  Workflow optimized;
  double initial_cost = 0.0;
  double optimized_cost = 0.0;
  // Statistics observed during the first (instrumented) run, per block.
  std::vector<StatStore> block_stats;
  // When ledger history was supplied: how this run's observations compare,
  // including which statistic taps to re-enable on the next run. Drifted
  // keys feed PipelineOptions::force_observe of the following cycle.
  obs::DriftReport drift;
  // Plan-regression guard outcome: the adoption verdict for the
  // re-optimized plan (strict rejections keep the designed plan and set
  // fell_back) plus any runtime estimate-monitor violations the first run
  // raised against the last clean history record's estimates.
  obs::GuardRecord guard;
  // Per-operator profile of the first (instrumented) run, annotated with
  // calibrated predictions when PipelineOptions::calibration is set. Empty
  // unless obs::ProfilerEnabled().
  obs::RunProfile profile;

  // ---- robustness state (defaults describe a clean lifecycle) ----
  // When the first (instrumented) run aborted: block_stats and block_cards
  // hold only what the completed prefix salvaged, the re-ordered runs are
  // skipped (they would hit the same fault), and `optimized` carries the
  // designed plan unchanged. The caller appends a partial=true ledger
  // record; the next lifecycle consumes it as low-confidence feedback.
  AbortKind abort_kind = AbortKind::kNone;
  std::string abort_reason;
  double completion = 1.0;  // nodes completed / nodes total of the first run
  std::vector<std::pair<std::string, int64_t>> source_rows_read;
  std::vector<std::pair<std::string, int64_t>> source_retries;
  int64_t quarantined_rows = 0;

  bool aborted() const { return abort_kind != AbortKind::kNone; }
};

// Runs the budgeted lifecycle to completion. Each block gets the full
// `memory_budget` for its collectors (blocks run at different pipeline
// stages, so collector memory is not held concurrently). `history`, when
// given, holds prior ledger records of the same workflow (oldest first) for
// drift detection against this run's observations.
Result<BudgetedLifecycleResult> RunBudgetedLifecycle(
    const Workflow& workflow, const SourceMap& sources, double memory_budget,
    const PipelineOptions& options = {},
    const std::vector<obs::RunRecord>* history = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_CORE_LIFECYCLE_H_
