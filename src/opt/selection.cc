#include "opt/selection.h"

#include "opt/closure.h"
#include "planspace/observability.h"

namespace etlopt {

SelectionProblem BuildSelectionProblem(const BlockContext& ctx,
                                       const PlanSpace& plan_space,
                                       const CssCatalog& catalog,
                                       const CostModel& cost_model,
                                       const SelectionOptions& options) {
  SelectionProblem problem;
  problem.catalog = &catalog;
  const int n = catalog.num_stats();
  problem.cost.assign(static_cast<size_t>(n), 0.0);
  problem.observable.assign(static_cast<size_t>(n), 0);
  problem.required.assign(static_cast<size_t>(n), 0);
  problem.must_observe.assign(static_cast<size_t>(n), 0);

  for (int i = 0; i < n; ++i) {
    const StatKey& key = catalog.stat(i);
    if (IsObservable(key, ctx)) {
      problem.observable[static_cast<size_t>(i)] = 1;
      problem.cost[static_cast<size_t>(i)] = cost_model.Cost(key);
    }
  }
  // Pre-existing source statistics cost nothing to "observe" (Section 6.2).
  for (const StatKey& key : options.free_source_stats) {
    const int idx = catalog.IndexOf(key);
    if (idx >= 0) {
      problem.observable[static_cast<size_t>(idx)] = 1;
      problem.cost[static_cast<size_t>(idx)] = 0.0;
    }
  }
  // Drift-flagged statistics must be re-observed; only observable ones can
  // be forced (the rest can only be refreshed transitively).
  for (const StatKey& key : options.force_observe) {
    const int idx = catalog.IndexOf(key);
    if (idx >= 0 && problem.observable[static_cast<size_t>(idx)]) {
      problem.must_observe[static_cast<size_t>(idx)] = 1;
    }
  }
  // S_C: the cardinality of every SE in E.
  for (RelMask se : plan_space.subexpressions()) {
    const int idx = catalog.IndexOf(StatKey::Card(se));
    ETLOPT_CHECK(idx >= 0);
    problem.required[static_cast<size_t>(idx)] = 1;
  }
  return problem;
}

std::vector<StatKey> SelectionResult::ObservedKeys(
    const CssCatalog& catalog) const {
  std::vector<StatKey> keys;
  keys.reserve(observed.size());
  for (int idx : observed) keys.push_back(catalog.stat(idx));
  return keys;
}

bool SelectionCovers(const SelectionProblem& problem,
                     const std::vector<int>& observed) {
  std::vector<char> obs(static_cast<size_t>(problem.num_stats()), 0);
  for (int idx : observed) obs[static_cast<size_t>(idx)] = 1;
  const std::vector<char> computable = ComputeClosure(*problem.catalog, obs);
  for (int i = 0; i < problem.num_stats(); ++i) {
    if (problem.required[static_cast<size_t>(i)] &&
        !computable[static_cast<size_t>(i)]) {
      return false;
    }
  }
  return true;
}

}  // namespace etlopt
