#include "core/lifecycle.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace etlopt {
namespace {

// Converts a cover tree (splits per SE) into an OptimizedPlan the rewriter
// can emit, resolving each split's join attribute from the join graph.
Result<OptimizedPlan> PlanFromCoverTree(
    const BlockContext& ctx, const ExecCoverResult::CoverTree& tree) {
  OptimizedPlan plan;
  for (const auto& [se, split] : tree.splits) {
    const int edge = ctx.graph().CrossingEdge(split.first, split.second);
    if (edge < 0) {
      return Status::Internal("cover tree split has no unique join edge");
    }
    JoinChoice choice;
    choice.left = split.first;
    choice.right = split.second;
    choice.attr = ctx.graph().edges()[static_cast<size_t>(edge)].attr;
    plan.choices[se] = choice;
  }
  return plan;
}

// Sorted (name, value) view of a string->int64 map, for deterministic
// result fields.
std::vector<std::pair<std::string, int64_t>> SortedCounts(
    const std::unordered_map<std::string, int64_t>& counts) {
  std::vector<std::pair<std::string, int64_t>> sorted(counts.begin(),
                                                      counts.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// The history record whose estimates arm the runtime monitors: the most
// recent clean run (partial records' estimates come from a salvaged
// prefix — comparing against them would raise false violations), skipping
// records whose plan a later run's monitors condemned (re-arming from one
// would abort every subsequent strict run against the same wrong numbers).
const obs::RunRecord* LastCleanRecord(
    const std::vector<obs::RunRecord>* history) {
  if (history == nullptr) return nullptr;
  std::vector<std::string> condemned;
  for (const obs::RunRecord& record : *history) {
    if (record.guard.plan_unsafe && !record.guard.unsafe_signature.empty()) {
      condemned.push_back(record.guard.unsafe_signature);
    }
  }
  for (auto it = history->rbegin(); it != history->rend(); ++it) {
    if (it->partial) continue;
    if (std::find(condemned.begin(), condemned.end(), it->plan_signature) !=
        condemned.end()) {
      continue;
    }
    return &*it;
  }
  return nullptr;
}

// Low-confidence SE-size feedback from a prior partial run. The salvaged
// cardinalities reflect a completed prefix of the workflow, so each is
// scaled up by the run's completion watermark before seeding the selection
// cost model — a crude full-run extrapolation, but strictly better than
// the cold-start guess the cost model would otherwise fall back to.
std::vector<CardMap> PartialRunFeedback(const obs::RunRecord& last,
                                        size_t num_blocks) {
  std::vector<CardMap> feedback(num_blocks);
  const double completion = std::clamp(last.completion, 0.05, 1.0);
  int64_t seeded = 0;
  for (const obs::RunRecord::SeCard& card : last.cards) {
    const double rows = card.actual >= 0 ? card.actual : card.estimated;
    if (rows < 0 || card.block < 0 ||
        card.block >= static_cast<int>(num_blocks)) {
      continue;
    }
    feedback[static_cast<size_t>(card.block)][card.se] =
        static_cast<int64_t>(std::llround(rows / completion));
    ++seeded;
  }
  ETLOPT_COUNTER_ADD("etlopt.core.partial_feedback_keys", seeded);
  ETLOPT_LOG(Info) << "seeding selection cost model with " << seeded
                   << " SE size(s) salvaged from partial run '" << last.run_id
                   << "' (completion " << last.completion << ")";
  return feedback;
}

}  // namespace

Result<BudgetedLifecycleResult> RunBudgetedLifecycle(
    const Workflow& workflow, const SourceMap& sources, double memory_budget,
    const PipelineOptions& options,
    const std::vector<obs::RunRecord>* history) {
  BudgetedLifecycleResult result;
  obs::ScopedSpan lifecycle_span("lifecycle.budgeted");
  lifecycle_span.Arg("workflow", workflow.name());
  lifecycle_span.Arg("budget", memory_budget);
  // One span per sequential phase; emplace ends the previous phase before
  // starting the next, so the spans tile the lifecycle under the outer span.
  std::optional<obs::ScopedSpan> phase_span;
  phase_span.emplace("lifecycle.analysis");

  // ---- Steps 1-3: analysis (blocks, plan spaces, CSS) ----
  const std::vector<Block> blocks = PartitionBlocks(workflow);
  std::vector<BlockContext> contexts;
  std::vector<PlanSpace> plan_spaces;
  std::vector<CssCatalog> catalogs;
  for (const Block& block : blocks) {
    ETLOPT_ASSIGN_OR_RETURN(BlockContext ctx,
                            BlockContext::Build(&workflow, block));
    contexts.push_back(std::move(ctx));
  }
  for (const BlockContext& ctx : contexts) {
    ETLOPT_ASSIGN_OR_RETURN(PlanSpace ps,
                            PlanSpace::Build(ctx, options.plan_space));
    plan_spaces.push_back(std::move(ps));
  }
  for (size_t b = 0; b < contexts.size(); ++b) {
    catalogs.push_back(
        GenerateCss(contexts[b], plan_spaces[b], options.css));
  }

  // ---- Step 4 under the budget (Section 6.1) ----
  phase_span.emplace("lifecycle.budgeted_selection");
  // A prior partial run's salvage seeds the cost model (watermark-scaled,
  // low-confidence) so this run's selection is not cold-started.
  std::vector<CardMap> partial_feedback;
  if (history != nullptr && !history->empty() && history->back().partial) {
    partial_feedback = PartialRunFeedback(history->back(), contexts.size());
  }
  // A prior run's monitor violations seed force_observe: SEs whose
  // estimates the monitors caught out are re-observed directly this run.
  std::vector<StatKey> guard_force_observe;
  if (history != nullptr && !history->empty()) {
    for (const obs::GuardRecord::Monitor& m :
         history->back().guard.violations) {
      guard_force_observe.push_back(StatKey::Card(m.se));
    }
  }
  std::vector<SelectionProblem> problems;
  CostModelOptions cost_options = options.cost;
  if (!options.calibration.empty() && cost_options.cpu_ns_per_row <= 0.0) {
    // Calibrated overlay: the CPU charge per observed tuple becomes measured
    // tap nanoseconds (fit from profiled ledger runs) instead of the
    // paper's abstract unit cost.
    cost_options.cpu_ns_per_row = options.calibration.NsPerRow("tap");
  }
  for (size_t b = 0; b < contexts.size(); ++b) {
    CostModel cost_model(&workflow.catalog(), cost_options);
    if (b < partial_feedback.size()) {
      for (const auto& [se, rows] : partial_feedback[b]) {
        cost_model.SetSeSize(se, rows);
      }
    }
    SelectionOptions sel_options;
    sel_options.free_source_stats = options.free_source_stats;
    sel_options.force_observe = options.force_observe;
    sel_options.force_observe.insert(sel_options.force_observe.end(),
                                     guard_force_observe.begin(),
                                     guard_force_observe.end());
    problems.push_back(BuildSelectionProblem(contexts[b], plan_spaces[b],
                                             catalogs[b], cost_model,
                                             sel_options));
    problems.back().catalog = &catalogs[b];
  }
  for (size_t b = 0; b < contexts.size(); ++b) {
    result.selections.push_back(SelectWithBudget(
        problems[b], contexts[b], plan_spaces[b], memory_budget));
  }

  // ---- Run 1: designed plan, instrumented with the affordable set ----
  phase_span.emplace("lifecycle.first_run");
  result.guard.mode = obs::GuardModeName(options.guard.mode);
  // Arm the runtime estimate monitors from the last clean history record:
  // its per-SE estimates become expected cardinalities at the designed
  // plan's pipeline points. Strict mode aborts on the first violation
  // (through the salvage path, so this run still pays back statistics).
  ExecutorOptions first_run_options = options.executor;
  if (options.guard.mode != obs::GuardMode::kOff) {
    if (const obs::RunRecord* last_clean = LastCleanRecord(history)) {
      for (const obs::RunRecord::SeCard& card : last_clean->cards) {
        if (card.estimated < 0 || card.block < 0 ||
            card.block >= static_cast<int>(contexts.size())) {
          continue;
        }
        const auto& on_path =
            contexts[static_cast<size_t>(card.block)].on_path();
        const auto it = on_path.find(card.se);
        if (it == on_path.end()) continue;
        PlanMonitor monitor;
        monitor.expected_rows = card.estimated;
        monitor.block = card.block;
        monitor.se = card.se;
        first_run_options.monitors[it->second] = monitor;
      }
      first_run_options.monitor_qerror_bound = options.guard.monitor_qerror;
      first_run_options.monitor_abort =
          options.guard.mode == obs::GuardMode::kStrict;
      // The same per-SE estimates size hash-join build tables: a join whose
      // build input carries an expected cardinality reserves from it.
      first_run_options.build_rows_hints =
          BuildSideCardHints(workflow, first_run_options.monitors);
    }
  }
  Executor executor(&workflow, first_run_options);
  ETLOPT_ASSIGN_OR_RETURN(const ExecutionResult first_exec,
                          executor.Execute(sources));
  result.executions = 1;
  if (!first_exec.monitor_violations.empty()) {
    for (const MonitorViolation& v : first_exec.monitor_violations) {
      obs::GuardRecord::Monitor m;
      m.block = v.block;
      m.se = v.se;
      m.node = static_cast<int64_t>(v.node);
      m.expected = v.expected;
      m.actual = v.actual;
      m.qerror = v.qerror;
      result.guard.violations.push_back(m);
    }
    result.guard.plan_unsafe = true;
    if (const obs::RunRecord* last_clean = LastCleanRecord(history)) {
      result.guard.unsafe_signature = last_clean->plan_signature;
    }
  }
  if (first_exec.aborted()) {
    result.abort_kind = first_exec.abort_kind;
    result.abort_reason = first_exec.abort_reason;
    result.completion = first_exec.completion_fraction();
    ETLOPT_LOG(Warning) << "lifecycle first run aborted ("
                        << AbortKindName(result.abort_kind) << "): "
                        << result.abort_reason
                        << "; salvaging statistics from the completed prefix";
  }
  result.source_rows_read = SortedCounts(first_exec.source_rows_read);
  result.source_retries = SortedCounts(first_exec.source_retries);
  result.quarantined_rows = first_exec.quarantined_rows();

  TapOptions first_run_taps;
  first_run_taps.salvage = first_exec.aborted();
  TapReport first_tap_report;
  result.block_cards.resize(contexts.size());
  // Estimators stay alive past this loop: the adoption gate reads per-SE
  // confidence (provenance + error bounds) from them at re-optimize time.
  std::vector<std::unique_ptr<Estimator>> estimators;
  for (size_t b = 0; b < contexts.size(); ++b) {
    const std::vector<StatKey> keys =
        result.selections[b].first_run.ObservedKeys(catalogs[b]);
    ETLOPT_ASSIGN_OR_RETURN(
        StatStore observed,
        ObserveStatistics(contexts[b], first_exec, keys, first_run_taps,
                          &first_tap_report));
    estimators.push_back(
        std::make_unique<Estimator>(&contexts[b], &catalogs[b]));
    Estimator& estimator = *estimators.back();
    ETLOPT_RETURN_IF_ERROR(estimator.DeriveAll(observed));
    result.block_stats.push_back(std::move(observed));
    for (RelMask se : plan_spaces[b].subexpressions()) {
      const Result<int64_t> card = estimator.Cardinality(se);
      if (card.ok()) result.block_cards[b][se] = *card;
    }
    // On-path SEs are passively monitorable at one counter each ([LEO]-style
    // passive monitoring, §7.3); record them regardless of the selection so
    // tiny budgets still learn everything the first run exposes. After an
    // abort only the completed prefix has outputs to read.
    for (const auto& [se, node] : contexts[b].on_path()) {
      const auto out_it = first_exec.node_outputs.find(node);
      if (out_it != first_exec.node_outputs.end()) {
        result.block_cards[b][se] = out_it->second.num_rows();
      }
    }
  }
  if (!first_exec.profile.empty()) {
    result.profile = first_exec.profile;
    result.profile.tap_ns = first_tap_report.observe_ns;
    obs::AnnotatePredictions(options.calibration, &result.profile);
    obs::RecordCostAccuracy(result.profile);
  }

  // ---- Re-ordered runs for the deferred SEs (trivial CSS counters) ----
  // An aborted first run skips these: re-executing against the same faulty
  // sources would abort again, and the salvage path wants the partial
  // record on disk as fast as possible.
  phase_span.emplace("lifecycle.reorder_runs");
  for (size_t b = 0; b < contexts.size() && !result.aborted(); ++b) {
    const BudgetedSelection& bsel = result.selections[b];
    if (bsel.deferred.empty()) continue;
    const ExecCoverResult& cover = bsel.reorder_plan;
    for (size_t run = 0; run < cover.per_run_tree.size(); ++run) {
      ETLOPT_ASSIGN_OR_RETURN(
          const OptimizedPlan plan,
          PlanFromCoverTree(contexts[b], cover.per_run_tree[run]));
      std::vector<PlanRewriter::BlockPlan> bp{{&blocks[b], &plan}};
      std::vector<std::unordered_map<RelMask, NodeId>> se_nodes;
      ETLOPT_ASSIGN_OR_RETURN(const Workflow reordered,
                              PlanRewriter::Apply(workflow, bp, &se_nodes));
      Executor rerun(&reordered);
      ETLOPT_ASSIGN_OR_RETURN(const ExecutionResult exec,
                              rerun.Execute(sources));
      ++result.executions;
      for (RelMask se : cover.per_run_covered[run]) {
        const auto it = se_nodes[0].find(se);
        if (it == se_nodes[0].end()) {
          return Status::Internal("covered SE missing from rewritten plan");
        }
        result.block_cards[b][se] =
            exec.node_outputs.at(it->second).num_rows();
      }
    }
  }

  // ---- Drift check against ledger history ----
  // Runs BEFORE re-optimization: the adoption gate distrusts estimates fed
  // by drift-flagged statistics, so the report must exist when the gate
  // scores the proposal. Only this run's observations are compared —
  // nothing downstream of the reoptimize phase is needed.
  if (history != nullptr && !history->empty()) {
    phase_span.emplace("lifecycle.drift_check");
    obs::RunRecord current;
    current.partial = result.aborted();
    current.completion = result.completion;
    current.block_stats = result.block_stats;
    for (size_t b = 0; b < result.block_cards.size(); ++b) {
      for (const auto& [se, rows] : result.block_cards[b]) {
        obs::RunRecord::SeCard card;
        card.block = static_cast<int>(b);
        card.se = se;
        card.actual = static_cast<double>(rows);
        current.cards.push_back(card);
      }
    }
    result.drift = obs::DriftDetector().Compare(*history, current);
    ETLOPT_COUNTER_ADD("etlopt.obs.drift.checked_keys",
                       static_cast<int64_t>(result.drift.findings.size()));
    ETLOPT_COUNTER_ADD("etlopt.obs.drift.flagged_keys",
                       static_cast<int64_t>(result.drift.reinstrument.size()));
    lifecycle_span.Arg(
        "drifted", static_cast<int64_t>(result.drift.reinstrument.size()));
  }

  // ---- Step 7: optimize from the now-complete statistics ----
  phase_span.emplace("lifecycle.reoptimize");
  if (result.aborted()) {
    // The statistics are a salvaged prefix — not a basis for re-ordering
    // joins. Keep the designed plan; the partial ledger record this result
    // becomes will seed the next lifecycle's cost model instead.
    result.optimized = workflow;
  } else {
    std::vector<OptimizedPlan> final_plans(contexts.size());
    std::vector<PlanRewriter::BlockPlan> rewrites;
    for (size_t b = 0; b < contexts.size(); ++b) {
      ETLOPT_ASSIGN_OR_RETURN(
          final_plans[b],
          OptimizeJoins(contexts[b], plan_spaces[b], result.block_cards[b],
                        options.optimizer_cost));
      result.initial_cost += final_plans[b].initial_cost;
      result.optimized_cost += final_plans[b].cost;
      if (blocks[b].joins.size() >= 2) {
        rewrites.push_back({&blocks[b], &final_plans[b]});
      }
    }
    ETLOPT_ASSIGN_OR_RETURN(Workflow proposed,
                            PlanRewriter::Apply(workflow, rewrites));

    // ---- Adoption gate: may the proposal replace the designed plan? ----
    if (options.guard.mode != obs::GuardMode::kOff) {
      obs::GuardInputs inputs;
      const std::string designed_sig = obs::FingerprintWorkflow(workflow);
      inputs.proposed_signature = obs::FingerprintWorkflow(proposed);
      inputs.plan_changed = inputs.proposed_signature != designed_sig;
      inputs.initial_cost = result.initial_cost;
      inputs.optimized_cost = result.optimized_cost;
      for (size_t b = 0; b < contexts.size(); ++b) {
        const std::vector<StatKey> flagged =
            result.drift.ReinstrumentKeys(static_cast<int>(b));
        for (const auto& [se, rows] : result.block_cards[b]) {
          (void)rows;
          obs::SeEvidence ev;
          ev.block = static_cast<int>(b);
          ev.se = se;
          ev.confidence = estimators[b]->CardinalityConfidence(
              se, flagged, options.guard.drift_penalty);
          if (estimators[b]->clamped_values() > 0) {
            ev.confidence *= options.guard.drift_penalty;
          }
          inputs.evidence.push_back(ev);
        }
      }
      inputs.calibration_coverage =
          obs::CalibrationCoverage(options.calibration, result.profile);
      inputs.partial_history = !partial_feedback.empty();
      if (history != nullptr) {
        for (const obs::RunRecord& record : *history) {
          if (record.guard.plan_unsafe &&
              !record.guard.unsafe_signature.empty()) {
            inputs.unsafe_signatures.push_back(record.guard.unsafe_signature);
          }
        }
      }
      const obs::GuardVerdict verdict =
          obs::EvaluateAdoption(options.guard, inputs);
      result.guard.adopted = verdict.adopt;
      result.guard.evidence = verdict.evidence_score;
      result.guard.margin = verdict.margin;
      result.guard.reasons = verdict.reasons;
      if (!verdict.adopt) {
        result.guard.fell_back = true;
        result.guard.proposed_signature = inputs.proposed_signature;
        result.optimized_cost = result.initial_cost;
        ETLOPT_LOG(Warning)
            << "plan-regression guard rejected the re-optimized plan "
            << inputs.proposed_signature << " (evidence "
            << verdict.evidence_score << "); keeping the designed plan";
        result.optimized = workflow;
      } else {
        result.optimized = std::move(proposed);
      }
    } else {
      result.optimized = std::move(proposed);
    }
  }

  phase_span.reset();
  ETLOPT_COUNTER_ADD("etlopt.core.lifecycle_executions", result.executions);
  lifecycle_span.Arg("executions", static_cast<int64_t>(result.executions));
  return result;
}

}  // namespace etlopt
