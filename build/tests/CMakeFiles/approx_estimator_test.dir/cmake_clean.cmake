file(REMOVE_RECURSE
  "CMakeFiles/approx_estimator_test.dir/approx_estimator_test.cc.o"
  "CMakeFiles/approx_estimator_test.dir/approx_estimator_test.cc.o.d"
  "approx_estimator_test"
  "approx_estimator_test.pdb"
  "approx_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
