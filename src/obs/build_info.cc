#include "obs/build_info.h"

#include <sstream>

namespace etlopt {
namespace obs {
namespace {

std::string DetectCompiler() {
#ifdef ETLOPT_COMPILER_ID
  return ETLOPT_COMPILER_ID;
#elif defined(__clang__)
  std::ostringstream out;
  out << "Clang " << __clang_major__ << "." << __clang_minor__ << "."
      << __clang_patchlevel__;
  return out.str();
#elif defined(__GNUC__)
  std::ostringstream out;
  out << "GNU " << __GNUC__ << "." << __GNUC_MINOR__ << "."
      << __GNUC_PATCHLEVEL__;
  return out.str();
#else
  return "unknown";
#endif
}

std::string DetectSanitizers() {
  std::string flags;
#if defined(__SANITIZE_ADDRESS__)
  flags += "address";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  flags += "address";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  if (!flags.empty()) flags += ",";
  flags += "thread";
#endif
  // UBSan exposes no feature macro; the build injects it alongside asan
  // here (see src/CMakeLists.txt), so asan presence implies the pair.
  if (flags == "address") flags = "address,undefined";
  return flags;
}

BuildInfo MakeBuildInfo() {
  BuildInfo info;
#ifdef ETLOPT_GIT_SHA
  info.git_sha = ETLOPT_GIT_SHA;
#endif
  if (info.git_sha.empty()) info.git_sha = "unknown";
#ifdef ETLOPT_BUILD_TYPE
  info.build_type = ETLOPT_BUILD_TYPE;
#endif
  if (info.build_type.empty()) {
#ifdef NDEBUG
    info.build_type = "Release";
#else
    info.build_type = "Debug";
#endif
  }
  info.compiler = DetectCompiler();
  info.sanitizers = DetectSanitizers();
  return info;
}

}  // namespace

std::string BuildInfo::Summary() const {
  std::ostringstream out;
  out << git_sha << " (" << compiler << ", " << build_type;
  if (!sanitizers.empty()) out << ", sanitizers: " << sanitizers;
  out << ")";
  return out.str();
}

const BuildInfo& CurrentBuildInfo() {
  static const BuildInfo* info = new BuildInfo(MakeBuildInfo());
  return *info;
}

}  // namespace obs
}  // namespace etlopt
