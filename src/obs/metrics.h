#ifndef ETLOPT_OBS_METRICS_H_
#define ETLOPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace etlopt {
namespace obs {

// Process-wide observability switch. Compiling with -DETLOPT_OBS_DISABLED
// turns every instrumentation site into a no-op the optimizer can delete;
// at runtime the ETLOPT_OBS_DISABLED environment variable (non-empty, not
// "0") starts the process disabled, and SetObsEnabled flips it on the fly.
#ifdef ETLOPT_OBS_DISABLED
inline constexpr bool ObsEnabled() { return false; }
inline void SetObsEnabled(bool) {}
#else
bool ObsEnabled();
void SetObsEnabled(bool on);
#endif

// Monotonically increasing counter. Add is a single relaxed fetch_add, so
// callers on hot paths should batch locally (see BatchedCounter) or add
// per-operator totals rather than per row.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Accumulates locally and flushes once on destruction (or Flush) — the
// batched-atomics pattern for per-row loops.
class BatchedCounter {
 public:
  explicit BatchedCounter(Counter* counter) : counter_(counter) {}
  ~BatchedCounter() { Flush(); }

  BatchedCounter(const BatchedCounter&) = delete;
  BatchedCounter& operator=(const BatchedCounter&) = delete;

  void Add(int64_t delta) { local_ += delta; }
  void Increment() { ++local_; }
  void Flush() {
    if (local_ != 0 && counter_ != nullptr) counter_->Add(local_);
    local_ = 0;
  }

 private:
  Counter* counter_;
  int64_t local_ = 0;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed log2-scale histogram for latencies (ns) and value distributions.
// Bucket 0 holds v < 1; bucket i (1 <= i < kNumBuckets-1) holds
// [2^(i-1), 2^i); the last bucket is the +inf overflow. Recording is one
// relaxed fetch_add on the bucket plus count/sum updates — no locks.
class LogHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  static int BucketIndex(int64_t v);
  // Inclusive lower bound of bucket i (0 for bucket 0).
  static int64_t BucketLowerBound(int bucket);
  // Exclusive upper bound of bucket i; INT64_MAX for the overflow bucket.
  static int64_t BucketUpperBound(int bucket);

  void Record(int64_t v);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Min() const;  // INT64_MAX when empty
  int64_t Max() const;  // INT64_MIN when empty
  int64_t BucketCount(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  double Mean() const;
  // Approximate quantile (q in [0,1]): linear interpolation inside the
  // containing bucket, clamped to the observed min/max.
  double ApproxQuantile(double q) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

// Renders "base{k1="v1",k2="v2"}" — the flat metric naming convention used
// throughout (labels are part of the registry key).
std::string MetricName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels);

// Thread-safe name -> metric registry. Metric objects are allocated once
// and never moved or removed (Reset zeroes values), so pointers returned by
// the getters stay valid for the process lifetime — cache them at hot sites.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  LogHistogram& GetHistogram(const std::string& name);

  // Lookup without creation; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const LogHistogram* FindHistogram(const std::string& name) const;

  // Prometheus text exposition format. Dots in metric names become
  // underscores; the {label="value"} suffix passes through.
  std::string ExportPrometheus() const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ExportJson() const;

  // Zeroes every metric (objects stay registered and pointers stay valid).
  void Reset();

  // Snapshot of counter names+values (sorted) — convenient for tests.
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace obs
}  // namespace etlopt

// Convenience macros. Each site caches its Counter pointer in a function
// static, so steady-state cost is one branch + one relaxed fetch_add.
// Under -DETLOPT_OBS_DISABLED they expand to nothing.
#ifndef ETLOPT_OBS_DISABLED
#define ETLOPT_COUNTER_ADD(name, delta)                                  \
  do {                                                                   \
    if (::etlopt::obs::ObsEnabled()) {                                   \
      static ::etlopt::obs::Counter& etlopt_obs_counter =                \
          ::etlopt::obs::MetricsRegistry::Global().GetCounter(name);     \
      etlopt_obs_counter.Add(delta);                                     \
    }                                                                    \
  } while (0)
#define ETLOPT_HIST_RECORD(name, value)                                  \
  do {                                                                   \
    if (::etlopt::obs::ObsEnabled()) {                                   \
      static ::etlopt::obs::LogHistogram& etlopt_obs_hist =              \
          ::etlopt::obs::MetricsRegistry::Global().GetHistogram(name);   \
      etlopt_obs_hist.Record(value);                                     \
    }                                                                    \
  } while (0)
#define ETLOPT_GAUGE_SET(name, value)                                    \
  do {                                                                   \
    if (::etlopt::obs::ObsEnabled()) {                                   \
      static ::etlopt::obs::Gauge& etlopt_obs_gauge =                    \
          ::etlopt::obs::MetricsRegistry::Global().GetGauge(name);       \
      etlopt_obs_gauge.Set(value);                                       \
    }                                                                    \
  } while (0)
#else
#define ETLOPT_COUNTER_ADD(name, delta) ((void)0)
#define ETLOPT_HIST_RECORD(name, value) ((void)0)
#define ETLOPT_GAUGE_SET(name, value) ((void)0)
#endif

#endif  // ETLOPT_OBS_METRICS_H_
