#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace etlopt {

Json& Json::Set(const std::string& key, Json value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->int_value() : fallback;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->double_value() : fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Json::Dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kInt:
      return std::to_string(int_);
    case Type::kDouble: {
      if (!std::isfinite(double_)) return "null";  // JSON has no inf/nan
      std::ostringstream out;
      out.precision(17);
      out << double_;
      return out.str();
    }
    case Type::kString:
      return JsonEscape(string_);
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ",";
        out += array_[i].Dump();
      }
      out += "]";
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ",";
        out += JsonEscape(object_[i].first);
        out += ":";
        out += object_[i].second.Dump();
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

namespace {

// Recursive-descent parser over a bounded view; depth-limited so corrupted
// input can't blow the stack.
class Parser {
 public:
  Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    ETLOPT_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        ETLOPT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json::Bool(true);
        }
        return Err("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json::Bool(false);
        }
        return Err("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json::Null();
        }
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject(int depth) {
    Consume('{');
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      ETLOPT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      ETLOPT_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray(int depth) {
    Consume('[');
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      ETLOPT_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are not recombined; the ledger
          // only ever escapes control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Err("bad number");
    try {
      if (is_double) return Json::Double(std::stod(token));
      return Json::Int(std::stoll(token));
    } catch (...) {
      // int64 overflow (or other stoll failure): fall back to double.
      try {
        return Json::Double(std::stod(token));
      } catch (...) {
        return Err("bad number '" + token + "'");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace etlopt
