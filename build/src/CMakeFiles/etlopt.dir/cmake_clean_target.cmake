file(REMOVE_RECURSE
  "libetlopt.a"
)
