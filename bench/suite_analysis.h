#ifndef ETLOPT_BENCH_SUITE_ANALYSIS_H_
#define ETLOPT_BENCH_SUITE_ANALYSIS_H_

#include <vector>

#include "css/generator.h"
#include "datagen/workload_suite.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"
#include "opt/selection.h"
#include "util/timer.h"

namespace etlopt {
namespace bench {

// Per-workflow analysis shared by the figure harnesses: block contexts,
// plan spaces, and CSS catalogs with and without union-division.
struct WorkflowAnalysis {
  WorkloadSpec spec;
  // One entry per block (aligned vectors).
  std::vector<BlockContext> contexts;
  std::vector<PlanSpace> plan_spaces;
  std::vector<CssCatalog> catalogs_ud;
  std::vector<CssCatalog> catalogs_noud;
  double gen_ms_ud = 0.0;
  double gen_ms_noud = 0.0;

  int total_ses() const {
    int n = 0;
    for (const auto& ps : plan_spaces) n += ps.num_ses();
    return n;
  }
  int total_css(bool with_ud) const {
    int n = 0;
    for (const auto& c : with_ud ? catalogs_ud : catalogs_noud) {
      n += c.num_css();
    }
    return n;
  }
};

inline WorkflowAnalysis AnalyzeWorkflow(int index) {
  WorkflowAnalysis wa;
  wa.spec = BuildWorkload(index);
  const std::vector<Block> blocks = PartitionBlocks(wa.spec.workflow);
  for (const Block& block : blocks) {
    Result<BlockContext> ctx = BlockContext::Build(&wa.spec.workflow, block);
    ETLOPT_CHECK_MSG(ctx.ok(), ctx.status().ToString());
    wa.contexts.push_back(std::move(ctx).value());
  }
  for (const BlockContext& ctx : wa.contexts) {
    Result<PlanSpace> ps = PlanSpace::Build(ctx);
    ETLOPT_CHECK_MSG(ps.ok(), ps.status().ToString());
    wa.plan_spaces.push_back(std::move(ps).value());
  }
  CssGenOptions with_ud;
  CssGenOptions without_ud;
  without_ud.enable_union_division = false;
  for (size_t b = 0; b < wa.contexts.size(); ++b) {
    Timer t;
    wa.catalogs_ud.push_back(
        GenerateCss(wa.contexts[b], wa.plan_spaces[b], with_ud));
    wa.gen_ms_ud += t.ElapsedMillis();
    t.Restart();
    wa.catalogs_noud.push_back(
        GenerateCss(wa.contexts[b], wa.plan_spaces[b], without_ud));
    wa.gen_ms_noud += t.ElapsedMillis();
  }
  return wa;
}

// Runs statistics selection over all blocks of a workflow for the given
// catalogs; returns the summed observation cost and wall time.
struct SelectionSummary {
  double total_cost = 0.0;
  double select_ms = 0.0;
  bool all_feasible = true;
};

inline SelectionSummary SelectForWorkflow(
    const WorkflowAnalysis& wa, bool with_ud, bool use_ilp,
    const IlpSelectorOptions& ilp_options = {}) {
  SelectionSummary out;
  const auto& catalogs = with_ud ? wa.catalogs_ud : wa.catalogs_noud;
  for (size_t b = 0; b < wa.contexts.size(); ++b) {
    CostModel cost_model(&wa.spec.workflow.catalog(), {});
    const SelectionProblem problem = BuildSelectionProblem(
        wa.contexts[b], wa.plan_spaces[b], catalogs[b], cost_model);
    Timer t;
    const SelectionResult result =
        use_ilp ? SelectIlp(problem, ilp_options) : SelectGreedy(problem);
    out.select_ms += t.ElapsedMillis();
    out.total_cost += result.total_cost;
    out.all_feasible = out.all_feasible && result.feasible;
  }
  return out;
}

}  // namespace bench
}  // namespace etlopt

#endif  // ETLOPT_BENCH_SUITE_ANALYSIS_H_
