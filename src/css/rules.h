#ifndef ETLOPT_CSS_RULES_H_
#define ETLOPT_CSS_RULES_H_

#include <vector>

#include "css/css.h"
#include "planspace/plan_space.h"

namespace etlopt {

struct CssGenOptions {
  // Generate the union-division CSSs (rules J4/J5, Section 4.1.2). The
  // experiments compare runs with and without these.
  bool enable_union_division = true;
  // Exploit foreign-key lookup metadata (Section 3.2.2).
  bool enable_fk_rules = true;
};

// Applies the paper's non-identity rules to one target statistic under every
// plan the optimizer generates for its SE (Definition 2), and the identity
// rules as a closing pass (Algorithm 1, lines 17-21).
class RuleEngine {
 public:
  RuleEngine(const BlockContext* ctx, const PlanSpace* plan_space,
             CssGenOptions options);

  // Appends to `out` every CSS the non-identity rules produce for `target`.
  void Generate(const StatKey& target, std::vector<CssEntry>* out) const;

  // Identity pass: adds I1/I2/D1 CSSs referencing only statistics already in
  // the catalog (the paper's no-new-statistics constraint, which prevents
  // the exponential blow-up discussed in Section 4.2).
  void ApplyIdentityRules(CssCatalog* catalog) const;

 private:
  // Chain statistics: stats on a single input's operator chain.
  void GenerateChain(const StatKey& target, std::vector<CssEntry>* out) const;
  // Join-SE statistics.
  void GenerateJoin(const StatKey& target, std::vector<CssEntry>* out) const;
  // Union-division CSSs for one plan orientation (X joins k first in the
  // initial plan; Y is the other side of the plan).
  void GenerateUnionDivision(const StatKey& target, RelMask x, RelMask y,
                             std::vector<CssEntry>* out) const;

  const BlockContext* ctx_;
  const PlanSpace* ps_;
  CssGenOptions options_;
};

}  // namespace etlopt

#endif  // ETLOPT_CSS_RULES_H_
