// Tests for the Section 8 extension: bucketized (approximate) histograms
// and their error behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "stats/approx_histogram.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(ApproxHistogramTest, WidthOneIsExact) {
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 50);
  Rng rng(3);
  const Table t1 = testing_util::RandomTable(catalog, {a}, 300, rng);
  const Table t2 = testing_util::RandomTable(catalog, {a}, 120, rng);
  const ApproxHistogram h1 = ApproxHistogram::FromTable(t1, a, 50, 1);
  const ApproxHistogram h2 = ApproxHistogram::FromTable(t2, a, 50, 1);
  const Table joined = HashJoin(t1, t2, a, nullptr);
  EXPECT_DOUBLE_EQ(ApproxHistogram::EstimateJoinCardinality(h1, h2),
                   static_cast<double>(joined.num_rows()));
  const Predicate pred{a, CompareOp::kLe, 20};
  int64_t exact = 0;
  for (int64_t r = 0; r < t1.num_rows(); ++r) {
    if (pred.Matches(t1.at(r, 0))) ++exact;
  }
  EXPECT_DOUBLE_EQ(h1.EstimateSelectCount(pred), static_cast<double>(exact));
}

TEST(ApproxHistogramTest, MemoryShrinksWithWidth) {
  ApproxHistogram w1(0, 1000, 1);
  ApproxHistogram w10(0, 1000, 10);
  ApproxHistogram w64(0, 1000, 64);
  EXPECT_EQ(w1.MemoryUnits(), 1000);
  EXPECT_EQ(w10.MemoryUnits(), 100);
  EXPECT_EQ(w64.MemoryUnits(), 16);  // ceil(1000/64)
}

TEST(ApproxHistogramTest, BucketBoundaries) {
  ApproxHistogram h(0, 10, 4);  // buckets [1..4] [5..8] [9..10]
  ASSERT_EQ(h.num_buckets(), 3);
  h.Add(1);
  h.Add(4);
  h.Add(5);
  h.Add(10);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.TotalCount(), 4);
}

TEST(ApproxHistogramTest, SelectEstimateProRataOnBoundaryBucket) {
  ApproxHistogram h(0, 100, 10);
  for (Value v = 1; v <= 100; ++v) h.Add(v);  // uniform: 10 per bucket
  // a <= 25: 2 full buckets (20) + half of bucket [21..30] (5).
  EXPECT_DOUBLE_EQ(h.EstimateSelectCount({0, CompareOp::kLe, 25}), 25.0);
  EXPECT_DOUBLE_EQ(h.EstimateSelectCount({0, CompareOp::kGt, 90}), 10.0);
  EXPECT_DOUBLE_EQ(h.EstimateSelectCount({0, CompareOp::kEq, 37}), 1.0);
  EXPECT_DOUBLE_EQ(h.EstimateSelectCount({0, CompareOp::kNe, 37}), 99.0);
}

TEST(ApproxHistogramTest, UniformDataJoinEstimateStaysAccurate) {
  // On uniform data the within-bucket uniformity assumption is exact in
  // expectation: the estimate with width 10 must be close to truth.
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 200);
  Rng rng(11);
  const Table t1 = testing_util::RandomTable(catalog, {a}, 4000, rng);
  const Table t2 = testing_util::RandomTable(catalog, {a}, 2000, rng);
  const Table joined = HashJoin(t1, t2, a, nullptr);
  const ApproxHistogram h1 = ApproxHistogram::FromTable(t1, a, 200, 10);
  const ApproxHistogram h2 = ApproxHistogram::FromTable(t2, a, 200, 10);
  const double est = ApproxHistogram::EstimateJoinCardinality(h1, h2);
  const double truth = static_cast<double>(joined.num_rows());
  EXPECT_NEAR(est / truth, 1.0, 0.1);
}

TEST(ApproxHistogramTest, SkewedDataErrorGrowsWithWidth) {
  // Zipf-skewed keys: wider buckets smear the head frequencies, so the join
  // estimate degrades monotonically-ish; width 1 is exact.
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 512);
  Rng rng(29);
  ZipfDistribution zipf(512, 1.3);
  Table t1{Schema({a})};
  for (int i = 0; i < 5000; ++i) t1.AddRow({zipf.Sample(rng)});
  Table t2{Schema({a})};
  for (int i = 0; i < 2000; ++i) t2.AddRow({zipf.Sample(rng)});
  const Table joined = HashJoin(t1, t2, a, nullptr);
  const double truth = static_cast<double>(joined.num_rows());

  double err1 = 0.0, err64 = 0.0;
  {
    const ApproxHistogram h1 = ApproxHistogram::FromTable(t1, a, 512, 1);
    const ApproxHistogram h2 = ApproxHistogram::FromTable(t2, a, 512, 1);
    err1 = std::fabs(ApproxHistogram::EstimateJoinCardinality(h1, h2) -
                     truth) /
           truth;
  }
  {
    const ApproxHistogram h1 = ApproxHistogram::FromTable(t1, a, 512, 64);
    const ApproxHistogram h2 = ApproxHistogram::FromTable(t2, a, 512, 64);
    err64 = std::fabs(ApproxHistogram::EstimateJoinCardinality(h1, h2) -
                      truth) /
            truth;
  }
  EXPECT_DOUBLE_EQ(err1, 0.0);
  EXPECT_GT(err64, 0.05);  // visible error on skewed data
}

}  // namespace
}  // namespace etlopt
