file(REMOVE_RECURSE
  "CMakeFiles/css_test.dir/css_test.cc.o"
  "CMakeFiles/css_test.dir/css_test.cc.o.d"
  "css_test"
  "css_test.pdb"
  "css_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/css_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
