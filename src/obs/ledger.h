#ifndef ETLOPT_OBS_LEDGER_H_
#define ETLOPT_OBS_LEDGER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "etl/workflow.h"
#include "obs/build_info.h"
#include "obs/guard.h"
#include "obs/profile.h"
#include "stats/stat_store.h"
#include "util/status.h"

namespace etlopt {
namespace obs {

// One executed run of a workflow, as remembered across processes. The
// paper's deployment model is design-once / run-repeatedly: statistics
// instrumented in run N drive the optimizer in run N+1, which may be hours
// later in a different process — the ledger is the durable carrier of that
// feedback loop, and the provenance source for the advisor's `explain`.
struct RunRecord {
  std::string run_id;        // e.g. "run-3"; unique within a fingerprint
  std::string fingerprint;   // 16-hex FNV-1a of the canonical workflow text
  std::string workflow;      // display name
  int64_t timestamp_ms = 0;  // unix wall clock
  std::string selector;      // statistics-selection method ("greedy", "ilp")
  std::string plan_signature;  // 16-hex fingerprint of the optimized plan
  double initial_cost = 0.0;
  double optimized_cost = 0.0;
  // Per-phase wall times of the cycle (milliseconds).
  double analyze_ms = 0.0;
  double execute_ms = 0.0;
  double optimize_ms = 0.0;

  // Estimated vs. actual cardinality of one sub-expression. `actual` is -1
  // when no ground truth was available for the run.
  struct SeCard {
    int block = 0;
    RelMask se = 0;
    double estimated = -1.0;
    double actual = -1.0;
  };
  std::vector<SeCard> cards;

  // The statistics observed in this run, per block — complete values
  // (histograms included), so a later process can re-derive every estimate
  // this run could have made. Each value carries its collection mode (exact
  // vs sketch, with the sketch's relative-error parameter) through the
  // stat_io codec, so cross-run drift comparisons know when they are
  // comparing approximations rather than exact observations.
  std::vector<StatStore> block_stats;

  // Counter snapshot at record time (sorted name -> value).
  std::vector<std::pair<std::string, int64_t>> metrics;

  // ---- robustness fields (defaults describe a clean run; serialized only
  // when they deviate, so clean-run ledger lines are unchanged) ----
  // True when the run aborted mid-flight (crash fault, quarantine overflow,
  // retry exhaustion) and block_stats holds statistics salvaged from the
  // completed prefix. Consumers treat such statistics as low-confidence:
  // the estimator scales them by the completion watermark and the drift
  // detector widens its thresholds (DriftOptions::partial_widen_factor).
  bool partial = false;
  std::string abort_reason;  // human-readable cause, empty when clean
  // Fraction of workflow nodes that completed before the abort (1.0 clean).
  double completion = 1.0;
  // Per-source rows-read watermarks and absorbed retries (sorted by name).
  std::vector<std::pair<std::string, int64_t>> source_rows_read;
  std::vector<std::pair<std::string, int64_t>> source_retries;
  // Malformed rows diverted to the quarantine sink across all sources.
  int64_t quarantined_rows = 0;
  // Worker threads the run executed with (1 = serial; serialized only when
  // different). Profiled self times are per-worker work time, so they stay
  // comparable across thread counts, but phase wall times do not — the
  // advisor's report flags cross-thread-count comparisons like it flags
  // cross-build ones.
  int num_threads = 1;

  // Per-operator profile of the run (self time, rows, bytes, tap overhead,
  // and the calibrated prediction that was live when the run executed).
  // Empty when profiling was off; serialized only when non-empty, so
  // unprofiled ledger lines are unchanged. This is the raw material for
  // offline cost-model calibration and the advisor's accuracy report.
  RunProfile profile;

  // Identity of the binary that produced the run (git sha, compiler, build
  // type, sanitizers). Empty git_sha means a pre-provenance record; the
  // advisor's report uses BuildInfo::ComparableWith to flag cross-build
  // timing comparisons. Serialized only when populated.
  BuildInfo build;

  // Plan-regression guard section: the adoption verdict of this cycle plus
  // any runtime estimate-monitor violations its execution raised.
  // Serialized only when engaged() — clean guarded runs leave the ledger
  // line unchanged.
  GuardRecord guard;

  std::string ToJsonLine() const;
  static Result<RunRecord> FromJsonLine(const std::string& line);
};

// Canonical workflow identity: 16 hex chars of FNV-1a 64 over the workflow's
// serialized text (falls back to the structural ToString for workflows with
// non-serializable UDFs). Two processes loading the same workflow file agree
// on the fingerprint; editing the workflow changes it.
std::string FingerprintWorkflow(const Workflow& workflow);

// FNV-1a 64 of an arbitrary string, rendered as 16 hex chars (the same
// encoding FingerprintWorkflow uses — exposed for plan signatures).
std::string FingerprintText(const std::string& text);

struct LedgerLoadResult {
  std::vector<RunRecord> records;  // file order = append order
  int skipped_lines = 0;           // corrupt/truncated lines tolerated
};

// Append-only JSONL store, one RunRecord per line. Appends are crash-safe:
// the new content is written to "<path>.tmp", flushed and fsynced, then
// renamed over the ledger, so a reader never sees a half-written record
// from a completed append (a record lost mid-append shows up as a
// truncated last line, which Load tolerates and reports).
class RunLedger {
 public:
  explicit RunLedger(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  // Missing file loads as an empty ledger (a workflow's first run).
  Result<LedgerLoadResult> Load() const;

  Status Append(const RunRecord& record);

  // Records matching one workflow fingerprint, oldest first.
  static std::vector<RunRecord> HistoryFor(
      const std::vector<RunRecord>& records, const std::string& fingerprint);

  // Next run id for a fingerprint: "run-<N>" with N = prior runs + 1.
  static std::string NextRunId(const std::vector<RunRecord>& records,
                               const std::string& fingerprint);

 private:
  std::string path_;
};

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_LEDGER_H_
