#ifndef ETLOPT_DATAGEN_TABLE_GEN_H_
#define ETLOPT_DATAGEN_TABLE_GEN_H_

#include <string>
#include <vector>

#include "engine/table.h"
#include "util/random.h"

namespace etlopt {

// How a column's values are drawn. All values stay within the attribute's
// catalog domain {1..domain_size} so the Section 5.4 memory costing holds.
enum class ColumnGen {
  kSequential,   // primary key: 1..rows (rows must be <= domain)
  kZipf,         // Zipf(skew) over the full domain (the paper's high skew)
  kUniform,      // uniform over the full domain
  kFkZipf,       // foreign key: Zipf over [1..match_upto] with probability
                 // (1-miss_rate); uniform over (match_upto..domain] otherwise
                 // (non-matching rows feed the reject links)
  kCategorical,  // uniform over `categories`, stored as interned dictionary
                 // ids (1..|categories| in declaration order)
};

struct ColumnSpec {
  AttrId attr = kInvalidAttr;
  ColumnGen gen = ColumnGen::kZipf;
  double zipf_skew = 1.2;
  int64_t match_upto = 0;   // kFkZipf: the referenced dimension's row count
  double miss_rate = 0.0;   // kFkZipf: fraction of dangling references
  std::vector<std::string> categories;  // kCategorical: the string domain
};

struct TableSpec {
  std::string name;
  int64_t rows = 0;
  std::vector<ColumnSpec> columns;
};

// Generates a table deterministically from `rng`. `row_scale` in (0,1]
// shrinks row counts (and kSequential/kFkZipf key ranges) proportionally so
// tests can run the same workloads at reduced scale. Values are drawn one
// row at a time across the column samplers (the historical draw order), so
// generated data is independent of the columnar build path underneath.
//
// `dict`, when given, receives the interned strings of kCategorical columns;
// the stored Values equal the dictionary ids either way (categories intern
// in declaration order, ids 1..N), so passing no dictionary changes nothing
// about the generated table.
Table GenerateTable(const AttrCatalog& catalog, const TableSpec& spec,
                    Rng& rng, double row_scale = 1.0,
                    StringDictionary* dict = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_DATAGEN_TABLE_GEN_H_
