// Tests for the executed Section 6.1 lifecycle: budgeted first run +
// re-ordered runs collecting the deferred SE cardinalities as counters.

#include <gtest/gtest.h>

#include "core/lifecycle.h"
#include "datagen/workload_suite.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(BudgetedLifecycleTest, TinyBudgetStillLearnsEverything) {
  auto ex = testing_util::MakePaperExample();
  // Budget 6: only counters fit; |O⋈C| must come from a re-ordered run.
  const BudgetedLifecycleResult life =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 6.0).value();
  EXPECT_GE(life.executions, 2);

  // The learned cardinalities equal ground truth for every SE.
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecutionResult exec =
      Executor(&ex.workflow).Execute(ex.sources).value();
  const auto truth =
      ComputeGroundTruthCards(ctx, ps.subexpressions(), exec).value();
  ASSERT_EQ(life.block_cards.size(), 1u);
  for (RelMask se : ps.subexpressions()) {
    ASSERT_TRUE(life.block_cards[0].count(se)) << "missing SE " << se;
    EXPECT_EQ(life.block_cards[0].at(se), truth.at(se)) << "SE " << se;
  }
}

TEST(BudgetedLifecycleTest, LargeBudgetNeedsOneExecution) {
  auto ex = testing_util::MakePaperExample();
  const BudgetedLifecycleResult life =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 1e12).value();
  EXPECT_EQ(life.executions, 1);
  EXPECT_TRUE(life.selections[0].deferred.empty());
}

TEST(BudgetedLifecycleTest, MatchesUnbudgetedOptimization) {
  // The final optimized plan and costs must match what the unbudgeted
  // pipeline produces (same complete statistics, same optimizer).
  auto ex = testing_util::MakePaperExample();
  const BudgetedLifecycleResult budgeted =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 6.0).value();
  Pipeline pipeline;
  const CycleOutcome unbudgeted =
      pipeline.RunCycle(ex.workflow, ex.sources).value();
  EXPECT_DOUBLE_EQ(budgeted.optimized_cost, unbudgeted.opt.optimized_cost);
  EXPECT_EQ(budgeted.optimized.ToString(),
            unbudgeted.opt.optimized.ToString());
}

TEST(BudgetedLifecycleTest, FourWayStarUnderBudget) {
  // wf5 at small scale: a 4-way star whose optimal set needs histograms; a
  // moderate budget forces several SEs into re-ordered runs.
  const WorkloadSpec spec = BuildWorkload(5);
  const SourceMap sources = GenerateSources(spec, 77, 0.01);
  const BudgetedLifecycleResult life =
      RunBudgetedLifecycle(spec.workflow, sources, 10.0).value();
  EXPECT_GE(life.executions, 2);

  // Verify learned == truth for the join block.
  const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
  const ExecutionResult exec =
      Executor(&spec.workflow).Execute(sources).value();
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockContext ctx =
        BlockContext::Build(&spec.workflow, blocks[b]).value();
    const PlanSpace ps = PlanSpace::Build(ctx).value();
    const auto truth =
        ComputeGroundTruthCards(ctx, ps.subexpressions(), exec).value();
    for (RelMask se : ps.subexpressions()) {
      ASSERT_TRUE(life.block_cards[b].count(se));
      EXPECT_EQ(life.block_cards[b].at(se), truth.at(se))
          << "block " << b << " SE " << se;
    }
  }
}

TEST(BudgetedLifecycleTest, ExecutionCountRespectsCoverPlan) {
  const WorkloadSpec spec = BuildWorkload(5);
  const SourceMap sources = GenerateSources(spec, 77, 0.01);
  const BudgetedLifecycleResult life =
      RunBudgetedLifecycle(spec.workflow, sources, 10.0).value();
  int expected = 1;
  for (const BudgetedSelection& sel : life.selections) {
    if (!sel.deferred.empty()) expected += sel.reorder_plan.executions;
  }
  EXPECT_EQ(life.executions, expected);
}

}  // namespace
}  // namespace etlopt
