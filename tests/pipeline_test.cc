#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/workload_suite.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(PipelineTest, AnalyzePaperExample) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = Pipeline().Analyze(ex.workflow);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  ASSERT_EQ((*analysis)->blocks.size(), 1u);
  const BlockAnalysis& ba = *(*analysis)->blocks[0];
  EXPECT_EQ(ba.plan_space.num_ses(), 6);
  EXPECT_TRUE(ba.selection.feasible);
  EXPECT_GT(ba.catalog.num_css(), 0);
}

TEST(PipelineTest, FullCycleEstimatesExactly) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const Result<CycleOutcome> cycle =
      pipeline.RunCycle(ex.workflow, ex.sources);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();

  // Estimated cardinalities match ground truth for every block.
  for (size_t b = 0; b < cycle->analysis->blocks.size(); ++b) {
    const BlockAnalysis& ba = *cycle->analysis->blocks[b];
    const auto truth = ComputeGroundTruthCards(
                           ba.ctx, ba.plan_space.subexpressions(),
                           cycle->run.exec)
                           .value();
    for (const auto& [se, card] : cycle->opt.block_cards[b]) {
      EXPECT_EQ(card, truth.at(se)) << "block " << b << " SE " << se;
    }
  }
  EXPECT_LE(cycle->opt.optimized_cost, cycle->opt.initial_cost + 1e-9);
}

TEST(PipelineTest, OptimizedWorkflowProducesSameSinkOutput) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const CycleOutcome cycle =
      pipeline.RunCycle(ex.workflow, ex.sources).value();
  const ExecutionResult again =
      Executor(&cycle.opt.optimized).Execute(ex.sources).value();
  const Table& before = cycle.run.exec.targets.at("warehouse.orders");
  const Table& after = again.targets.at("warehouse.orders");
  ASSERT_EQ(before.schema().mask(), after.schema().mask());
  EXPECT_TRUE(before.BuildHistogram(before.schema().mask()) ==
              after.BuildHistogram(after.schema().mask()));
}

TEST(PipelineTest, IlpSelectorWorksEndToEnd) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options;
  options.selector = SelectorKind::kIlp;
  Pipeline pipeline(options);
  const Result<CycleOutcome> cycle =
      pipeline.RunCycle(ex.workflow, ex.sources);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_TRUE((*cycle).analysis->blocks[0]->selection.feasible);
}

TEST(PipelineTest, UnionDivisionOffStillWorks) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options;
  options.css.enable_union_division = false;
  Pipeline pipeline(options);
  const Result<CycleOutcome> cycle =
      pipeline.RunCycle(ex.workflow, ex.sources);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
}

TEST(PipelineTest, MultiBlockWorkloadCycles) {
  // wf10 (derived-key boundary), wf11 (reject link), wf17 (agg UDF), wf28
  // (materialize) all have multiple blocks.
  for (int i : {10, 11, 17, 28}) {
    const WorkloadSpec spec = BuildWorkload(i);
    const SourceMap sources = GenerateSources(spec, 5, 0.01);
    Pipeline pipeline;
    const Result<CycleOutcome> cycle =
        pipeline.RunCycle(spec.workflow, sources);
    ASSERT_TRUE(cycle.ok()) << spec.name << ": " << cycle.status().ToString();
    EXPECT_GE(cycle->analysis->blocks.size(), 2u) << spec.name;
    // Optimized workflow result matches the designed one.
    const ExecutionResult again =
        Executor(&cycle->opt.optimized).Execute(sources).value();
    for (const auto& [target, table] : cycle->run.exec.targets) {
      const Table& other = again.targets.at(target);
      EXPECT_EQ(table.num_rows(), other.num_rows())
          << spec.name << " target " << target;
    }
  }
}

TEST(PipelineTest, DriftTriggersDifferentPlan) {
  // Design once, run repeatedly: when the data drifts (the selective
  // dimension becomes the exploding one), the re-learned statistics flip
  // the chosen join order.
  WorkflowBuilder b("drift");
  const AttrId ka = b.DeclareAttr("ka", 50);
  const AttrId kb = b.DeclareAttr("kb", 50);
  const NodeId f = b.Source("F", {ka, kb});
  const NodeId da = b.Source("DA", {ka});
  const NodeId db = b.Source("DB", {kb});
  const NodeId j1 = b.Join(f, db, kb);
  const NodeId j2 = b.Join(j1, da, ka);
  b.Sink(j2, "out");
  Workflow wf = std::move(b).Build().value();

  auto sources_with = [&](int da_rows, int db_copies) {
    SourceMap s;
    Table tf{Schema({ka, kb})};
    for (int i = 0; i < 200; ++i) tf.AddRow({(i % 10) + 1, (i % 5) + 1});
    Table tda{Schema({ka})};
    for (int i = 0; i < da_rows; ++i) tda.AddRow({(i % 10) + 1});
    Table tdb{Schema({kb})};
    for (int i = 1; i <= 5; ++i) {
      for (int c = 0; c < db_copies; ++c) tdb.AddRow({i});
    }
    s["F"] = std::move(tf);
    s["DA"] = std::move(tda);
    s["DB"] = std::move(tdb);
    return s;
  };

  Pipeline pipeline;
  // Era 1: DA selective (1 row), DB heavy.
  const CycleOutcome era1 =
      pipeline.RunCycle(wf, sources_with(1, 30)).value();
  // Era 2: DA heavy, DB selective.
  const CycleOutcome era2 =
      pipeline.RunCycle(wf, sources_with(300, 1)).value();
  // The rewritten workflows must differ structurally between the eras.
  EXPECT_NE(era1.opt.optimized.ToString(), era2.opt.optimized.ToString());
}


TEST(PipelineTest, CpuMetricWithSizeFeedback) {
  // Section 5.4: the CPU cost of observing a statistic is the tuples at the
  // observation point; the circular dependency is broken with sizes from a
  // previous run. Run once (memory metric), feed the learned SE sizes back,
  // and analyze under the CPU metric.
  auto ex = testing_util::MakePaperExample();
  Pipeline first;
  const CycleOutcome cycle = first.RunCycle(ex.workflow, ex.sources).value();

  PipelineOptions options;
  options.cost.metric = CostMetric::kCpu;
  Pipeline cpu_pipeline(options);
  const auto analysis =
      cpu_pipeline.Analyze(ex.workflow, &cycle.opt.block_cards);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const BlockAnalysis& ba = *(*analysis)->blocks[0];
  EXPECT_TRUE(ba.selection.feasible);
  // Under the CPU metric with real sizes, observing everything on the
  // smallest relations is preferred; the total cost is bounded by a few
  // passes over the data.
  int64_t total_rows = 0;
  for (const auto& [se, card] : cycle.opt.block_cards[0]) {
    (void)se;
    total_rows += card;
  }
  EXPECT_LE(ba.selection.total_cost, static_cast<double>(total_rows) * 3);
  // And the cycle still completes with exact estimates.
  const Result<RunOutcome> run =
      cpu_pipeline.RunAndObserve(**analysis, ex.sources);
  ASSERT_TRUE(run.ok());
  const Result<OptimizeOutcome> opt =
      cpu_pipeline.Optimize(**analysis, *run);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  for (const auto& [se, card] : opt->block_cards[0]) {
    EXPECT_EQ(card, cycle.opt.block_cards[0].at(se)) << "SE " << se;
  }
}

}  // namespace
}  // namespace etlopt
