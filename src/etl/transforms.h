#ifndef ETLOPT_ETL_TRANSFORMS_H_
#define ETLOPT_ETL_TRANSFORMS_H_

#include <functional>
#include <string>
#include <vector>

#include "util/common.h"

namespace etlopt {

// A small registry of named per-row value transforms (the U(T,a) UDFs).
// Workflows built from registry transforms are serializable: the writer can
// recover the name from the stored function pointer, and the reader can
// resolve names back to functions. Ad-hoc lambdas still work everywhere
// except serialization.
namespace transforms {

Value Identity(Value v);
Value PlusOne(Value v);
Value Standardize(Value v);    // v*2 + 1 (a stand-in for normalization)
Value BucketizeBy10(Value v);  // v/10 + 1 (coarse re-coding)
Value Negate(Value v);
Value Mod100(Value v);         // (v-1)%100 + 1

}  // namespace transforms

// Returns the registered name for `fn` when it wraps one of the registry's
// function pointers; empty string otherwise.
std::string LookupTransformName(const std::function<Value(Value)>& fn);

// Resolves a registered name; returns an empty std::function when unknown.
std::function<Value(Value)> LookupTransformByName(const std::string& name);

// All registered names (for diagnostics / CLI help).
std::vector<std::string> RegisteredTransformNames();

}  // namespace etlopt

#endif  // ETLOPT_ETL_TRANSFORMS_H_
