#ifndef ETLOPT_STATS_APPROX_HISTOGRAM_H_
#define ETLOPT_STATS_APPROX_HISTOGRAM_H_

#include <vector>

#include "engine/table.h"
#include "etl/predicate.h"

namespace etlopt {

// Section 8.1 / 8.2 extension: equi-width bucketized frequency histograms.
// The paper scopes its main results to exact histograms and leaves
// "estimation errors introduced because of approximate statistics" to
// future work; this class provides the natural first step: buckets of
// `bucket_width` consecutive domain values share one frequency counter, so
// memory shrinks by ~width while estimates pick up error under the
// uniform-frequency-within-bucket assumption.
//
// bucket_width == 1 degenerates to the exact histogram: every estimate is
// then exact (tested), which anchors the error model.
class ApproxHistogram {
 public:
  // Domain values are {1..domain_size}; bucket b covers
  // [1 + b*width, min(domain, (b+1)*width)].
  ApproxHistogram(AttrId attr, int64_t domain_size, int64_t bucket_width);

  static ApproxHistogram FromTable(const Table& table, AttrId attr,
                                   int64_t domain_size, int64_t bucket_width);

  void Add(Value v, int64_t count = 1);

  AttrId attr() const { return attr_; }
  int64_t bucket_width() const { return width_; }
  int64_t num_buckets() const { return static_cast<int64_t>(buckets_.size()); }
  // Memory units under the Section 5.4 model: one integer per bucket.
  int64_t MemoryUnits() const { return num_buckets(); }
  int64_t TotalCount() const { return total_; }
  int64_t BucketCount(int64_t bucket) const {
    return buckets_[static_cast<size_t>(bucket)];
  }

  // J1 under bucketization: E[|T1 ⋈ T2|] = Σ_b f1(b)·f2(b) / |values in b|
  // (uniform spread of frequencies over the bucket's values). Exact for
  // width 1. Both sides must share attr/domain/width.
  static double EstimateJoinCardinality(const ApproxHistogram& a,
                                        const ApproxHistogram& b);

  // S1 under bucketization: full buckets count exactly; the boundary bucket
  // contributes pro-rata to the overlapped value range.
  double EstimateSelectCount(const Predicate& pred) const;

 private:
  // Number of domain values covered by bucket b (the last may be short).
  int64_t ValuesInBucket(int64_t bucket) const;

  AttrId attr_ = kInvalidAttr;
  int64_t domain_ = 0;
  int64_t width_ = 1;
  std::vector<int64_t> buckets_;
  int64_t total_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_STATS_APPROX_HISTOGRAM_H_
