// Physical join implementation selection: sort-merge vs hash (the physical
// ETL design dimension the paper's related work cites via Tziovara et al.).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "etl/workflow_io.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(SortMergeJoinTest, MatchesHashJoinOnRandomData) {
  AttrCatalog catalog;
  const AttrId k = catalog.Register("k", 25);
  const AttrId x = catalog.Register("x", 9);
  const AttrId y = catalog.Register("y", 7);
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    const Table left =
        testing_util::RandomTable(catalog, {k, x}, 150 + trial * 20, rng);
    const Table right =
        testing_util::RandomTable(catalog, {k, y}, 60 + trial * 10, rng);
    Table hash_rejects{left.schema()};
    Table merge_rejects{left.schema()};
    const Table hash = HashJoin(left, right, k, &hash_rejects);
    const Table merge = SortMergeJoin(left, right, k, &merge_rejects);
    ASSERT_EQ(hash.num_rows(), merge.num_rows()) << "trial " << trial;
    const AttrMask mask = hash.schema().mask();
    EXPECT_TRUE(hash.BuildHistogram(mask) == merge.BuildHistogram(mask));
    // Rejects agree as multisets too.
    EXPECT_TRUE(hash_rejects.BuildHistogram(left.schema().mask()) ==
                merge_rejects.BuildHistogram(left.schema().mask()));
  }
}

TEST(SortMergeJoinTest, EmptyAndDisjointInputs) {
  AttrCatalog catalog;
  const AttrId k = catalog.Register("k", 10);
  Table left{Schema({k})};
  Table right{Schema({k})};
  left.AddRow({1});
  left.AddRow({2});
  // Empty right: everything rejected.
  Table rejects{left.schema()};
  EXPECT_EQ(SortMergeJoin(left, right, k, &rejects).num_rows(), 0);
  EXPECT_EQ(rejects.num_rows(), 2);
  // Disjoint keys.
  right.AddRow({5});
  Table rejects2{left.schema()};
  EXPECT_EQ(SortMergeJoin(left, right, k, &rejects2).num_rows(), 0);
  EXPECT_EQ(rejects2.num_rows(), 2);
}

TEST(PhysicalCostTest, PickPrefersCheaperAlgorithm) {
  CostParams params;  // defaults: hash wins at scale
  auto [alg1, cost1] = PickJoinAlgorithm(10000, 5000, 1000, params);
  EXPECT_EQ(alg1, JoinAlgorithm::kHash);
  EXPECT_DOUBLE_EQ(cost1, JoinStepCost(10000, 5000, 1000, params));
  // Expensive hash build (memory-starved engine): sort-merge wins.
  params.build = 500.0;
  params.probe = 200.0;
  auto [alg2, cost2] = PickJoinAlgorithm(10000, 5000, 1000, params);
  EXPECT_EQ(alg2, JoinAlgorithm::kSortMerge);
  EXPECT_DOUBLE_EQ(cost2, SortMergeStepCost(10000, 5000, 1000, params));
}

TEST(PhysicalCostTest, OptimizerRecordsAlgorithmAndExecutorHonorsIt) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options;
  options.optimizer_cost.build = 500.0;  // force sort-merge everywhere
  options.optimizer_cost.probe = 200.0;
  Pipeline pipeline(options);
  const CycleOutcome cycle =
      pipeline.RunCycle(ex.workflow, ex.sources).value();
  int sort_merge_joins = 0;
  for (const WorkflowNode& node : cycle.opt.optimized.nodes()) {
    if (node.kind == OpKind::kJoin &&
        node.join.algorithm == JoinAlgorithm::kSortMerge) {
      ++sort_merge_joins;
    }
  }
  EXPECT_EQ(sort_merge_joins, 2);
  // Executing the rewritten plan (now running sort-merge joins) produces
  // the same result.
  const ExecutionResult again =
      Executor(&cycle.opt.optimized).Execute(ex.sources).value();
  const Table& before = cycle.run.exec.targets.at("warehouse.orders");
  const Table& after = again.targets.at("warehouse.orders");
  EXPECT_TRUE(before.BuildHistogram(before.schema().mask()) ==
              after.BuildHistogram(after.schema().mask()));
}

TEST(PhysicalCostTest, JoinAlgorithmSerializes) {
  WorkflowBuilder b("phys");
  const AttrId k = b.DeclareAttr("k", 10);
  const NodeId l = b.Source("L", {k});
  const NodeId r = b.Source("R", {k});
  const NodeId j = b.Join(l, r, k);
  b.SetJoinAlgorithm(j, JoinAlgorithm::kSortMerge);
  b.Sink(j, "out");
  const Workflow wf = std::move(b).Build().value();
  Status status;
  const std::string text = WriteWorkflowText(wf, &status);
  ASSERT_TRUE(status.ok());
  EXPECT_NE(text.find("sortmerge"), std::string::npos);
  const Result<Workflow> parsed = ParseWorkflowText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool found = false;
  for (const WorkflowNode& node : parsed->nodes()) {
    if (node.kind == OpKind::kJoin) {
      EXPECT_EQ(node.join.algorithm, JoinAlgorithm::kSortMerge);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace etlopt
