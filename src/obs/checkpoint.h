#ifndef ETLOPT_OBS_CHECKPOINT_H_
#define ETLOPT_OBS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/stat_store.h"
#include "util/status.h"

namespace etlopt {
namespace obs {

// Crash-safe sidecar for in-flight instrumentation. The run ledger records
// a run only after it completes; a run killed mid-observation would lose
// every statistic its taps had already paid for. The tap layer therefore
// snapshots its partial state to this sidecar every N tapped rows — each
// flush is tmp + fsync + rename, so the file on disk is always one
// complete, parseable snapshot. A clean run discards the sidecar at the
// end; finding one at startup means the previous run died mid-flight and
// its statistics are salvageable.
struct TapCheckpoint {
  std::string run_id;       // in-flight run (may be empty pre-ledger)
  std::string fingerprint;  // workflow identity, as in the ledger
  std::string workflow;     // display name
  // False only once the run completed (a final "done" flush, normally
  // replaced by Discard); a sidecar found on disk is in practice partial.
  bool partial = true;
  // Tapped-row progress watermark at flush time.
  int64_t rows_tapped = 0;
  // Per-source rows read by the run being checkpointed (sorted by name).
  std::vector<std::pair<std::string, int64_t>> source_rows_read;
  // Partitioned runs only: source rows assigned to each partition (index =
  // partition). After a partition-scoped crash these are the per-partition
  // salvage watermarks — completed partitions contributed all their rows,
  // so a resume only owes the failed ones. Empty on serial runs.
  std::vector<int64_t> partition_rows;
  // Statistics observed so far, per block — blocks observed completely plus
  // the partially-observed block's prefix. Values travel in the stat_io
  // text codec, like the ledger's stats field.
  std::vector<StatStore> block_stats;

  std::string ToJson() const;
  static Result<TapCheckpoint> FromJson(const std::string& text);
};

// Writes snapshots of one run's tap state to a fixed sidecar path. Each
// Flush atomically replaces the previous snapshot.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }
  int64_t flushes() const { return flushes_; }

  Status Flush(const TapCheckpoint& checkpoint);

  // Removes the sidecar — the clean-completion path. Missing file is OK.
  Status Discard();

 private:
  std::string path_;
  int64_t flushes_ = 0;
};

// Loads a sidecar left behind by a run that died mid-flight. NotFound when
// no sidecar exists (the previous run completed cleanly).
Result<TapCheckpoint> LoadTapCheckpoint(const std::string& path);

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_CHECKPOINT_H_
