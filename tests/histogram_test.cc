#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "util/random.h"

namespace etlopt {
namespace {

Histogram H1(std::vector<std::pair<Value, int64_t>> buckets, int attr = 0) {
  Histogram h(AttrMask{1} << attr);
  for (auto& [v, c] : buckets) h.Add({v}, c);
  return h;
}

TEST(HistogramTest, AddAndTotals) {
  Histogram h = H1({{1, 3}, {2, 5}, {1, 2}});
  EXPECT_EQ(h.TotalCount(), 10);
  EXPECT_EQ(h.NumBuckets(), 2);
  EXPECT_EQ(h.Get1(1), 5);
  EXPECT_EQ(h.Get1(2), 5);
  EXPECT_EQ(h.Get1(7), 0);
}

TEST(HistogramTest, DotProductIsJoinCardinality) {
  // J1: |T1 ⋈ T2| on a = Σ_v f1(v)·f2(v).
  Histogram a = H1({{1, 2}, {2, 3}, {5, 1}});
  Histogram b = H1({{1, 4}, {2, 1}, {9, 7}});
  EXPECT_EQ(Histogram::DotProduct(a, b), 2 * 4 + 3 * 1);
  EXPECT_EQ(Histogram::DotProduct(b, a), 11);
}

TEST(HistogramTest, MultiplyByScalesBuckets) {
  Histogram ab(0b11);  // attrs {0,1}
  ab.Add({1, 10}, 2);
  ab.Add({2, 20}, 3);
  ab.Add({3, 30}, 4);
  Histogram b = H1({{1, 5}, {2, 1}});  // attr 0
  const Histogram scaled = Histogram::MultiplyBy(ab, b);
  EXPECT_EQ(scaled.Get({1, 10}), 10);
  EXPECT_EQ(scaled.Get({2, 20}), 3);
  EXPECT_EQ(scaled.Get({3, 30}), 0);  // dropped: factor 0
  EXPECT_EQ(scaled.NumBuckets(), 2);
}

TEST(HistogramTest, DivideByInvertsMultiplyBy) {
  Histogram ab(0b11);
  ab.Add({1, 10}, 2);
  ab.Add({1, 11}, 7);
  ab.Add({2, 20}, 3);
  Histogram b = H1({{1, 5}, {2, 4}});
  const Histogram scaled = Histogram::MultiplyBy(ab, b);
  const Histogram back = Histogram::DivideBy(scaled, b);
  EXPECT_TRUE(back == ab);
}

TEST(HistogramTest, MarginalizeAggregates) {
  Histogram ab(0b11);
  ab.Add({1, 10}, 2);
  ab.Add({1, 11}, 3);
  ab.Add({2, 10}, 4);
  const Histogram a = ab.Marginalize(0b01);
  EXPECT_EQ(a.Get1(1), 5);
  EXPECT_EQ(a.Get1(2), 4);
  const Histogram bb = ab.Marginalize(0b10);
  EXPECT_EQ(bb.Get1(10), 6);
  EXPECT_EQ(bb.Get1(11), 3);
  // Marginalizing to the full set is the identity.
  EXPECT_TRUE(ab.Marginalize(0b11) == ab);
}

TEST(HistogramTest, CountMatchingImplementsS1) {
  Histogram h = H1({{1, 3}, {5, 7}, {9, 2}});
  EXPECT_EQ(h.CountMatching({0, CompareOp::kLt, 6}), 10);
  EXPECT_EQ(h.CountMatching({0, CompareOp::kEq, 5}), 7);
  EXPECT_EQ(h.CountMatching({0, CompareOp::kGe, 10}), 0);
}

TEST(HistogramTest, FilterThenMarginalizeImplementsS2) {
  Histogram ab(0b11);
  ab.Add({1, 10}, 2);
  ab.Add({2, 10}, 3);
  ab.Add({5, 11}, 4);
  // σ_{attr0 < 3}, distribution of attr1.
  const Histogram out =
      ab.FilterThenMarginalize({0, CompareOp::kLt, 3}, 0b10);
  EXPECT_EQ(out.Get1(10), 5);
  EXPECT_EQ(out.Get1(11), 0);
  // Keeping the filter attribute works too (S2 with b == a).
  const Histogram keep =
      ab.FilterThenMarginalize({0, CompareOp::kLt, 3}, 0b01);
  EXPECT_EQ(keep.Get1(1), 2);
  EXPECT_EQ(keep.Get1(2), 3);
  EXPECT_EQ(keep.Get1(5), 0);
}

TEST(HistogramTest, CollapseToDistinctImplementsG2) {
  Histogram h = H1({{1, 5}, {2, 9}});
  const Histogram collapsed = h.CollapseToDistinct();
  EXPECT_EQ(collapsed.Get1(1), 1);
  EXPECT_EQ(collapsed.Get1(2), 1);
  EXPECT_EQ(collapsed.TotalCount(), 2);
}

TEST(HistogramTest, AddAllUnionsCounts) {
  Histogram a = H1({{1, 2}, {2, 3}});
  Histogram b = H1({{2, 4}, {3, 1}});
  a.AddAll(b);
  EXPECT_EQ(a.Get1(1), 2);
  EXPECT_EQ(a.Get1(2), 7);
  EXPECT_EQ(a.Get1(3), 1);
}

// Property: dot product on join attr equals the true join size for random
// multisets (J1 exactness).
TEST(HistogramProperty, DotProductMatchesBruteForceJoin) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> left, right;
    for (int i = 0; i < 50; ++i) left.push_back(rng.NextInRange(1, 10));
    for (int i = 0; i < 30; ++i) right.push_back(rng.NextInRange(1, 10));
    Histogram hl(1), hr(1);
    for (Value v : left) hl.Add1(v);
    for (Value v : right) hr.Add1(v);
    int64_t brute = 0;
    for (Value l : left) {
      for (Value r : right) {
        if (l == r) ++brute;
      }
    }
    EXPECT_EQ(Histogram::DotProduct(hl, hr), brute);
  }
}

// Property: union-division identity (Eq. 1-3). Simulates T1 ⋈ T3 then the
// histogram division recovering the matched part.
TEST(HistogramProperty, UnionDivisionRecoversMatchedHistogram) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    // T'(J) — the matched part of T1 joined with T2, histogram on J.
    Histogram t_prime(1);
    for (int i = 0; i < 40; ++i) t_prime.Add1(rng.NextInRange(1, 8));
    // T3's histogram on J; every J value of T' must occur in T3.
    Histogram t3(1);
    for (Value v = 1; v <= 8; ++v) {
      t3.Add1(v, rng.NextInRange(1, 5));
    }
    const Histogram joined = Histogram::MultiplyBy(t_prime, t3);
    const Histogram recovered = Histogram::DivideBy(joined, t3);
    // Buckets of T' with J values present in T3 must be recovered exactly.
    for (const auto& [key, count] : t_prime.buckets()) {
      EXPECT_EQ(recovered.Get(key), count);
    }
  }
}

}  // namespace
}  // namespace etlopt
