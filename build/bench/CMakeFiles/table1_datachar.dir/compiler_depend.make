# Empty compiler generated dependencies file for table1_datachar.
# This may be replaced when dependencies are built.
