#ifndef ETLOPT_ETL_PREDICATE_H_
#define ETLOPT_ETL_PREDICATE_H_

#include <string>

#include "etl/attr_catalog.h"
#include "etl/types.h"
#include "util/common.h"

namespace etlopt {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

// A single-attribute comparison against a constant — the σ_a(T) form of the
// paper's select operator. Selectivity is exactly computable from a histogram
// on `attr` (rule S1).
struct Predicate {
  AttrId attr = kInvalidAttr;
  CompareOp op = CompareOp::kEq;
  Value constant = 0;

  bool Matches(Value v) const;
  std::string ToString(const AttrCatalog& catalog) const;
};

const char* CompareOpName(CompareOp op);

}  // namespace etlopt

#endif  // ETLOPT_ETL_PREDICATE_H_
