#ifndef ETLOPT_ENGINE_PARALLEL_PARALLEL_EXECUTOR_H_
#define ETLOPT_ENGINE_PARALLEL_PARALLEL_EXECUTOR_H_

#include <unordered_map>
#include <vector>

#include "engine/executor.h"
#include "util/thread_pool.h"

namespace etlopt {
namespace parallel {

// Knobs of one partitioned execution. The serial ExecutorOptions ride along
// unchanged: retry, quarantine, and error-rate semantics are identical on
// both paths (sources are always read serially, see below).
struct ParallelOptions {
  // Worker threads; <= 1 delegates to the serial Executor outright.
  int num_threads = 1;
  // Partition fan-out; 0 = one partition per worker. Output is bit-identical
  // for every partition count, so this only shapes load balance — pin it
  // when comparing runs that must consult partition-scoped faults alike.
  int num_partitions = 0;
  ExecutorOptions executor;
};

// What a partitioned run produces beyond the serial ExecutionResult: the
// per-partition output slices of every node that ran partitioned (sources
// included) — the surface the instrumentation layer taps partition-locally
// and merges, instead of re-scanning the gathered tables single-threaded.
// A partition that crashed contributes no slice from its failure node on.
struct ParallelResult {
  ExecutionResult exec;
  std::unordered_map<NodeId, std::vector<Table>> slices;
  AttrId partition_attr = kInvalidAttr;
  // False when the run delegated to the serial executor (num_threads <= 1,
  // or no partitionable operator chain under any candidate key).
  bool used_parallel_path = false;
};

// Partition-driven parallel executor.
//
// Plan shape: one partition attribute is chosen (the candidate key that
// partitions the most operators); sources carrying it are hash-partitioned
// after a fully serial read (so retry/quarantine semantics are untouched);
// filter/project/row-transform chains, co-partitioned hash joins on that
// key, and hash joins whose build side is a serial ("broadcast") chain run
// partition-local on the worker pool; blocking operators (aggregates,
// aggregate UDF transforms) and sort-merge joins gather first and run
// serially, exactly like every node does on the serial path.
//
// Determinism and equivalence: partition placement is a pure hash of the
// key value, and every partition-local row carries its provenance (original
// source row indices in join-nesting order). The merge barrier reassembles
// slices in provenance order, which *is* the serial executor's emission
// order — so node outputs, targets, reject tables, and therefore every
// observed statistic are bit-identical to a serial run, for any worker or
// partition count. (One caveat: a co-partitioned join always uses the hash
// kernel, so joins explicitly planned as sort-merge gather instead of
// partitioning, keeping even their row order exact.)
//
// Failure semantics mirror the serial executor, partition-granular: a
// partition-scoped crash ("partition:1:crash") drops that partition from
// its failure node onward, the merge barrier gathers the completed
// partitions into partial node outputs (nodes_partial / partition_rows
// watermarks record the salvage surface), and the run aborts with kCrash
// before any downstream serial node runs.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(const Workflow* workflow,
                            ParallelOptions options = {});

  // Runs the workflow. `pool` lets a caller amortize worker threads across
  // runs; null spins up a pool for this execution only.
  Result<ParallelResult> Execute(const SourceMap& sources,
                                 ThreadPool* pool = nullptr) const;

  const ParallelOptions& options() const { return options_; }

 private:
  const Workflow* wf_;
  ParallelOptions options_;
};

}  // namespace parallel
}  // namespace etlopt

#endif  // ETLOPT_ENGINE_PARALLEL_PARALLEL_EXECUTOR_H_
