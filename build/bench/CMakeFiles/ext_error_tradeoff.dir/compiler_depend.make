# Empty compiler generated dependencies file for ext_error_tradeoff.
# This may be replaced when dependencies are built.
