#ifndef ETLOPT_CSS_CSS_H_
#define ETLOPT_CSS_CSS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "stats/stat_key.h"

namespace etlopt {

// Identifies the rule that produced a CSS — and therefore the evaluation
// semantics the estimator uses to compute the target from the inputs.
// Mapping to the paper's tables:
//   kS1/kS2          Table 2 select rules
//   kCopyCard        P1 and U1 (projection/transform preserve cardinality)
//   kCopyHist        P2 and U2 (distribution unchanged)
//   kG1/kG2          Table 4 group-by rules
//   kJ1              Table 3 J1 (dot product of join-attribute histograms)
//   kJ2              Table 3 J2/J3 unified (multiply through the join;
//                    marginalizes the join attribute away when absent from
//                    the target)
//   kJ4/kJ5          Table 3 union-division rules
//   kFk              the foreign-key lookup shortcut of Section 3.2.2
//   kI1/kI2/kD1      identity rules (I1, I2, and distinct-from-histogram)
enum class RuleId : uint8_t {
  kS1,
  kS2,
  kCopyCard,
  kCopyHist,
  kG1,
  kG2,
  kJ1,
  kJ2,
  kJ4,
  kJ5,
  kFk,
  kI1,
  kI2,
  kD1,
};

const char* RuleName(RuleId rule);

// One candidate statistics set for one target statistic: the inputs that
// suffice to compute it, plus the evaluation payload.
struct CssEntry {
  RuleId rule = RuleId::kJ1;
  StatKey target;
  std::vector<StatKey> inputs;

  // Payloads (rule-dependent):
  NodeId op_node = kInvalidNode;    // chain rules: the operator node
  AttrId join_attr = kInvalidAttr;  // join rules: a (J1/J2) or J (J4/J5)
  bool marginalize = false;         // kJ2: drop join attr after multiplying
  AttrMask aux_mask = 0;            // kG2: the group-by attribute mask

  std::string ToString(const AttrCatalog* catalog = nullptr) const;
};

// The output of Algorithm 1 for one block: the statistics universe S and the
// generated CSSs, with input references resolved to dense indices for the
// closure/selection algorithms.
class CssCatalog {
 public:
  // Adds (or finds) a statistic; returns its dense index.
  int AddStat(const StatKey& key);
  // Returns -1 when unknown.
  int IndexOf(const StatKey& key) const;

  // Registers a CSS; inputs are interned automatically. Duplicate CSSs
  // (same target + same input set) are dropped.
  void AddCss(CssEntry entry);

  int num_stats() const { return static_cast<int>(stats_.size()); }
  int num_css() const { return static_cast<int>(entries_.size()); }

  const StatKey& stat(int idx) const {
    return stats_[static_cast<size_t>(idx)];
  }
  const std::vector<StatKey>& stats() const { return stats_; }

  const CssEntry& entry(int css_idx) const {
    return entries_[static_cast<size_t>(css_idx)];
  }

  // CSS indices whose target is `stat_idx`.
  const std::vector<int>& css_of(int stat_idx) const {
    return css_by_stat_[static_cast<size_t>(stat_idx)];
  }

  // Dense input stat indices of a CSS.
  const std::vector<int>& css_inputs(int css_idx) const {
    return entry_inputs_[static_cast<size_t>(css_idx)];
  }
  int css_target(int css_idx) const {
    return entry_target_[static_cast<size_t>(css_idx)];
  }

  std::string ToString(const AttrCatalog* catalog = nullptr) const;

 private:
  std::vector<StatKey> stats_;
  std::unordered_map<StatKey, int, StatKeyHash> index_;
  std::vector<CssEntry> entries_;
  std::vector<int> entry_target_;
  std::vector<std::vector<int>> entry_inputs_;
  std::vector<std::vector<int>> css_by_stat_;
};

}  // namespace etlopt

#endif  // ETLOPT_CSS_CSS_H_
