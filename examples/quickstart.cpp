// Quickstart: the paper's running example (Figure 1).
//
// An ETL flow loads a warehouse by joining Orders with Product and
// Customer:   (Orders ⋈ Product) ⋈ Customer
//
// The sources are flat record-sets — no statistics exist anywhere. The
// framework analyzes the flow, determines the cheapest set of statistics
// whose observation lets the optimizer cost *any* reordering (Sections 3-5),
// instruments the first run to collect them, and emits the re-optimized
// workflow for subsequent runs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "datagen/table_gen.h"
#include "etl/workflow_builder.h"

using namespace etlopt;

int main() {
  // ---- 1. Design the workflow (what an ETL designer would draw) ----------
  WorkflowBuilder builder("orders_load");
  const AttrId prod_id = builder.DeclareAttr("prod_id", 400);
  const AttrId cust_id = builder.DeclareAttr("cust_id", 120);

  const NodeId orders = builder.Source("Orders", {prod_id, cust_id});
  const NodeId product = builder.Source("Product", {prod_id});
  const NodeId customer = builder.Source("Customer", {cust_id});
  const NodeId op = builder.Join(orders, product, prod_id);
  const NodeId opc = builder.Join(op, customer, cust_id);
  builder.Sink(opc, "warehouse.orders");

  Workflow workflow = std::move(builder).Build().value();
  std::printf("%s\n", workflow.ToString().c_str());

  // ---- 2. Bind some data (Zipf-skewed, as real order streams are) --------
  Rng rng(2026);
  SourceMap sources;
  {
    const AttrCatalog& catalog = workflow.catalog();
    TableSpec orders_spec{"Orders", 20000,
                          {ColumnSpec{prod_id, ColumnGen::kZipf, 1.3, 0, 0},
                           ColumnSpec{cust_id, ColumnGen::kZipf, 1.1, 0, 0}}};
    TableSpec product_spec{"Product", 350,
                           {ColumnSpec{prod_id, ColumnGen::kSequential}}};
    TableSpec customer_spec{"Customer", 110,
                            {ColumnSpec{cust_id, ColumnGen::kSequential}}};
    sources["Orders"] = GenerateTable(catalog, orders_spec, rng);
    sources["Product"] = GenerateTable(catalog, product_spec, rng);
    sources["Customer"] = GenerateTable(catalog, customer_spec, rng);
  }

  // ---- 3. One optimization cycle (Fig. 2 of the paper) -------------------
  Pipeline pipeline;
  const CycleOutcome cycle = pipeline.RunCycle(workflow, sources).value();

  const BlockAnalysis& block = *cycle.analysis->blocks[0];
  std::printf("plan space: %d sub-expressions, %d candidate statistics, "
              "%d CSS alternatives\n",
              block.plan_space.num_ses(), block.catalog.num_stats(),
              block.catalog.num_css());
  std::printf("selected statistics to observe (cost %.0f memory units, "
              "method %s):\n",
              block.selection.total_cost, block.selection.method.c_str());
  for (const StatKey& key : block.selection.ObservedKeys(block.catalog)) {
    std::printf("  %s\n", key.ToString(&workflow.catalog()).c_str());
  }

  std::printf("\nlearned cardinalities of every sub-expression:\n");
  for (RelMask se : block.plan_space.subexpressions()) {
    std::printf("  SE mask %u -> %lld rows\n", se,
                static_cast<long long>(cycle.opt.block_cards[0].at(se)));
  }

  std::printf("\nestimated plan cost: designed %.0f -> optimized %.0f\n",
              cycle.opt.initial_cost, cycle.opt.optimized_cost);
  std::printf("\nre-optimized workflow for the next run:\n%s\n",
              cycle.opt.optimized.ToString().c_str());

  // ---- 4. Run the optimized plan; the result is identical ----------------
  Executor optimized_exec(&cycle.opt.optimized);
  const ExecutionResult rerun = optimized_exec.Execute(sources).value();
  std::printf("designed plan rows processed:  %lld\n",
              static_cast<long long>(cycle.run.exec.rows_processed));
  std::printf("optimized plan rows processed: %lld\n",
              static_cast<long long>(rerun.rows_processed));
  std::printf("sink rows identical: %s\n",
              rerun.targets.at("warehouse.orders").num_rows() ==
                      cycle.run.exec.targets.at("warehouse.orders").num_rows()
                  ? "yes"
                  : "NO");
  return 0;
}
