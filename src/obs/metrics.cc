#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace etlopt {
namespace obs {

#ifndef ETLOPT_OBS_DISABLED
namespace {

bool InitialEnabledFromEnv() {
  const char* v = std::getenv("ETLOPT_OBS_DISABLED");
  const bool disabled = v != nullptr && v[0] != '\0' &&
                        !(v[0] == '0' && v[1] == '\0');
  return !disabled;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitialEnabledFromEnv()};
  return enabled;
}

}  // namespace

bool ObsEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetObsEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}
#endif  // ETLOPT_OBS_DISABLED

int LogHistogram::BucketIndex(int64_t v) {
  if (v < 1) return 0;
  // bit_width(v) = floor(log2(v)) + 1, so values in [2^(i-1), 2^i) land in
  // bucket i.
  const int b = std::bit_width(static_cast<uint64_t>(v));
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

int64_t LogHistogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return int64_t{1} << (bucket - 1);
}

int64_t LogHistogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 1;
  if (bucket >= kNumBuckets - 1) return INT64_MAX;
  return int64_t{1} << bucket;
}

void LogHistogram::Record(int64_t v) {
  buckets_[static_cast<size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int64_t LogHistogram::Min() const {
  return min_.load(std::memory_order_relaxed);
}

int64_t LogHistogram::Max() const {
  return max_.load(std::memory_order_relaxed);
}

double LogHistogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

double LogHistogram::ApproxQuantile(double q) const {
  const int64_t n = Count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n - 1);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t in_bucket = BucketCount(b);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double hi = b >= kNumBuckets - 1
                            ? static_cast<double>(Max())
                            : static_cast<double>(BucketUpperBound(b));
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(Min()),
                        static_cast<double>(Max()));
    }
    seen += in_bucket;
  }
  return static_cast<double>(Max());
}

void LogHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

std::string MetricName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return base;
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LogHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] only; our dotted names map
// dots (and any other byte) to '_'. The optional {label="v"} suffix is
// already in exposition syntax and passes through.
std::string PrometheusName(const std::string& name) {
  std::string base = name;
  std::string labels;
  const size_t brace = name.find('{');
  if (brace != std::string::npos) {
    base = name.substr(0, brace);
    labels = name.substr(brace);
  }
  for (char& c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return base + labels;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << PrometheusName(name) << " " << c->Get() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << PrometheusName(name) << " " << FormatDouble(g->Get()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = PrometheusName(name);
    std::string base = pname;
    std::string labels;
    const size_t brace = pname.find('{');
    if (brace != std::string::npos) {
      base = pname.substr(0, brace);
      // "{a="b"}" -> "a="b"," for merging with the le label.
      labels = pname.substr(brace + 1, pname.size() - brace - 2) + ",";
    }
    int64_t cumulative = 0;
    for (int b = 0; b < LogHistogram::kNumBuckets - 1; ++b) {
      const int64_t n = h->BucketCount(b);
      if (n == 0) continue;
      cumulative += n;
      out << base << "_bucket{" << labels << "le=\""
          << LogHistogram::BucketUpperBound(b) << "\"} " << cumulative
          << "\n";
    }
    out << base << "_bucket{" << labels << "le=\"+Inf\"} " << h->Count()
        << "\n";
    const std::string label_suffix =
        labels.empty() ? ""
                       : "{" + labels.substr(0, labels.size() - 1) + "}";
    out << base << "_sum" << label_suffix << " " << h->Sum() << "\n";
    out << base << "_count" << label_suffix << " " << h->Count() << "\n";
    // Derived quantiles (log2-bucket interpolation): scrapers get latency
    // percentiles without reconstructing them from the cumulative buckets.
    if (h->Count() > 0) {
      out << base << "_p50" << label_suffix << " "
          << FormatDouble(h->ApproxQuantile(0.50)) << "\n";
      out << base << "_p95" << label_suffix << " "
          << FormatDouble(h->ApproxQuantile(0.95)) << "\n";
      out << base << "_p99" << label_suffix << " "
          << FormatDouble(h->ApproxQuantile(0.99)) << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << c->Get();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << FormatDouble(g->Get());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h->Count()
        << ",\"sum\":" << h->Sum();
    if (h->Count() > 0) {
      out << ",\"min\":" << h->Min() << ",\"max\":" << h->Max()
          << ",\"p50\":" << FormatDouble(h->ApproxQuantile(0.50))
          << ",\"p95\":" << FormatDouble(h->ApproxQuantile(0.95))
          << ",\"p99\":" << FormatDouble(h->ApproxQuantile(0.99));
    }
    out << ",\"buckets\":[";
    bool bfirst = true;
    for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
      const int64_t n = h->BucketCount(b);
      if (n == 0) continue;
      if (!bfirst) out << ",";
      bfirst = false;
      out << "{\"lo\":" << LogHistogram::BucketLowerBound(b) << ",\"hi\":";
      if (b >= LogHistogram::kNumBuckets - 1) {
        out << "\"inf\"";
      } else {
        out << LogHistogram::BucketUpperBound(b);
      }
      out << ",\"count\":" << n << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->Get());
  return out;
}

}  // namespace obs
}  // namespace etlopt
