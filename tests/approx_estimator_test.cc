// Tests for the integrated approximate estimation mode (Section 8
// extension): width-1 must reproduce the exact estimator; wider buckets
// degrade gracefully and never break derivability.

#include <gtest/gtest.h>

#include <cmath>

#include "approx/approx_estimator.h"
#include "css/generator.h"
#include "datagen/random_workflow.h"
#include "engine/instrumentation.h"
#include "opt/greedy_selector.h"
#include "test_util.h"

namespace etlopt {
namespace {

struct ApproxSetup {
  WorkloadSpec spec;
  SourceMap sources;
  BlockContext ctx;
  PlanSpace ps;
  CssCatalog catalog;
  SelectionResult selection;
  ExecutionResult exec;
  std::unordered_map<RelMask, int64_t> truth;
};

// Builds a UD-free analysis of one block (approx mode requirement).
ApproxSetup MakeSetup(const WorkloadSpec& spec, const SourceMap& sources) {
  ApproxSetup s;
  s.spec = spec;
  s.sources = sources;
  const std::vector<Block> blocks = PartitionBlocks(s.spec.workflow);
  s.ctx = BlockContext::Build(&s.spec.workflow, blocks[0]).value();
  s.ps = PlanSpace::Build(s.ctx).value();
  CssGenOptions options;
  options.enable_union_division = false;
  s.catalog = GenerateCss(s.ctx, s.ps, options);
  CostModel cm(&s.spec.workflow.catalog(), {});
  SelectionProblem problem =
      BuildSelectionProblem(s.ctx, s.ps, s.catalog, cm);
  s.selection = SelectGreedy(problem);
  s.exec = Executor(&s.spec.workflow).Execute(s.sources).value();
  s.truth =
      ComputeGroundTruthCards(s.ctx, s.ps.subexpressions(), s.exec).value();
  return s;
}

TEST(ApproxEstimatorTest, WidthOneMatchesExactEstimator) {
  auto ex = testing_util::MakePaperExample();
  WorkloadSpec spec;
  spec.workflow = ex.workflow;
  const ApproxSetup s = MakeSetup(spec, ex.sources);
  ASSERT_TRUE(s.selection.feasible);

  ApproxConfig config(&s.spec.workflow.catalog(), /*default_width=*/1);
  ApproxEstimator estimator(&s.ctx, &s.catalog, &config);
  const Status st = estimator.ObserveAndDerive(
      s.exec, s.selection.ObservedKeys(s.catalog));
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (RelMask se : s.ps.subexpressions()) {
    const Result<double> card = estimator.Cardinality(se);
    ASSERT_TRUE(card.ok()) << "SE " << se;
    EXPECT_DOUBLE_EQ(*card, static_cast<double>(s.truth.at(se)))
        << "SE " << se;
  }
}

TEST(ApproxEstimatorTest, WidthOneMatchesExactOnRandomWorkflows) {
  for (uint64_t seed : {3u, 8u, 15u}) {
    const WorkloadSpec spec = GenerateRandomWorkflow(seed);
    const SourceMap sources = GenerateSources(spec, seed + 5);
    const ApproxSetup s = MakeSetup(spec, sources);
    if (!s.selection.feasible) continue;
    ApproxConfig config(&s.spec.workflow.catalog(), 1);
    ApproxEstimator estimator(&s.ctx, &s.catalog, &config);
    const Status st = estimator.ObserveAndDerive(
        s.exec, s.selection.ObservedKeys(s.catalog));
    ASSERT_TRUE(st.ok()) << spec.name << ": " << st.ToString();
    for (RelMask se : s.ps.subexpressions()) {
      const Result<double> card = estimator.Cardinality(se);
      ASSERT_TRUE(card.ok()) << spec.name << " SE " << se;
      EXPECT_NEAR(*card, static_cast<double>(s.truth.at(se)), 1e-6)
          << spec.name << " SE " << se;
    }
  }
}

TEST(ApproxEstimatorTest, WiderBucketsStillDeriveEverything) {
  auto ex = testing_util::MakePaperExample();
  WorkloadSpec spec;
  spec.workflow = ex.workflow;
  const ApproxSetup s = MakeSetup(spec, ex.sources);
  for (int64_t width : {2, 4, 8, 16}) {
    ApproxConfig config(&s.spec.workflow.catalog(), width);
    ApproxEstimator estimator(&s.ctx, &s.catalog, &config);
    const Status st = estimator.ObserveAndDerive(
        s.exec, s.selection.ObservedKeys(s.catalog));
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (RelMask se : s.ps.subexpressions()) {
      const Result<double> card = estimator.Cardinality(se);
      ASSERT_TRUE(card.ok()) << "width " << width << " SE " << se;
      EXPECT_GE(*card, 0.0);
      // Base relation cardinalities are counters: always exact.
      if (IsSingleton(se)) {
        EXPECT_DOUBLE_EQ(*card, static_cast<double>(s.truth.at(se)));
      }
    }
  }
}

TEST(ApproxEstimatorTest, ErrorGrowsWithWidthOnSkewedData) {
  // Zipf-skewed join keys: the estimate of the full join degrades as the
  // buckets widen.
  auto ex = testing_util::MakePaperExample(/*seed=*/13, /*orders=*/2000,
                                           /*products=*/60, /*customers=*/40);
  // Re-generate Orders with skew.
  {
    Rng rng(77);
    ZipfDistribution zp(50, 1.4);
    ZipfDistribution zc(30, 1.4);
    Table orders{Schema({ex.prod_id, ex.cust_id})};
    for (int i = 0; i < 2000; ++i) {
      orders.AddRow({zp.Sample(rng), zc.Sample(rng)});
    }
    ex.sources["Orders"] = std::move(orders);
  }
  WorkloadSpec spec;
  spec.workflow = ex.workflow;
  const ApproxSetup s = MakeSetup(spec, ex.sources);
  const RelMask full = s.ctx.full_mask();

  double prev_err = -1.0;
  for (int64_t width : {1, 8, 32}) {
    ApproxConfig config(&s.spec.workflow.catalog(), width);
    ApproxEstimator estimator(&s.ctx, &s.catalog, &config);
    ASSERT_TRUE(estimator
                    .ObserveAndDerive(s.exec,
                                      s.selection.ObservedKeys(s.catalog))
                    .ok());
    const double est = *estimator.Cardinality(full);
    const double err = std::fabs(est - static_cast<double>(s.truth.at(full)));
    if (width == 1) {
      EXPECT_NEAR(err, 0.0, 1e-6);
    } else {
      EXPECT_GT(err, prev_err - 1e-9);
    }
    prev_err = err;
  }
}

TEST(ApproxEstimatorTest, RejectStatisticsAreRejected) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});  // UD on
  const ExecutionResult exec =
      Executor(&ex.workflow).Execute(ex.sources).value();
  ApproxConfig config(&ex.workflow.catalog(), 1);
  ApproxEstimator estimator(&ctx, &catalog, &config);
  const Status st = estimator.ObserveAndDerive(
      exec, {StatKey::RejectJoinCard(0b001, 1, 0b100)});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST(ApproxConfigTest, MemoryUnitsUnderBucketization) {
  AttrCatalog catalog;
  const AttrId a = catalog.Register("a", 1000);
  const AttrId b = catalog.Register("b", 64);
  ApproxConfig config(&catalog, 1);
  config.SetWidth(a, 10);
  EXPECT_EQ(config.MemoryUnits(AttrMask{1} << a), 100);
  EXPECT_EQ(config.MemoryUnits(AttrMask{1} << b), 64);
  EXPECT_EQ(config.MemoryUnits((AttrMask{1} << a) | (AttrMask{1} << b)),
            6400);
}

}  // namespace
}  // namespace etlopt
