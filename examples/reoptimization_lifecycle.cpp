// Design once, execute repeatedly (Section 1): an ETL flow that was
// efficient at design time degrades as the data drifts. This example runs
// the same daily-load workflow over several "days" of drifting data; each
// run re-collects the selected statistics and re-optimizes the next run's
// join order (the cycle of Fig. 2 repeating "since the underlying data
// characteristics may be changing").
//
// Scenario: FactWatches ⋈ DimCustomer ⋈ DimSecurity. Early on the customer
// dimension is a tiny pilot set (joining it first is best); over the days it
// grows far past the security dimension, and the optimal order flips.
//
// Build & run:  ./build/examples/reoptimization_lifecycle

#include <cstdio>

#include "core/pipeline.h"
#include "etl/workflow_builder.h"
#include "util/random.h"

using namespace etlopt;

namespace {

SourceMap DayData(const AttrCatalog& catalog, AttrId cust, AttrId sec,
                  int64_t customers, int64_t securities, uint64_t seed) {
  (void)catalog;
  Rng rng(seed);
  SourceMap sources;
  Table watches{Schema({cust, sec})};
  for (int i = 0; i < 30000; ++i) {
    watches.AddRow({rng.NextInRange(1, 5000), rng.NextInRange(1, 5000)});
  }
  Table dim_cust{Schema({cust})};
  for (int64_t i = 0; i < customers; ++i) {
    dim_cust.AddRow({rng.NextInRange(1, 5000)});
  }
  Table dim_sec{Schema({sec})};
  for (int64_t i = 0; i < securities; ++i) {
    dim_sec.AddRow({rng.NextInRange(1, 5000)});
  }
  sources["FactWatches"] = std::move(watches);
  sources["DimCustomer"] = std::move(dim_cust);
  sources["DimSecurity"] = std::move(dim_sec);
  return sources;
}

}  // namespace

int main() {
  WorkflowBuilder builder("daily_watch_load");
  const AttrId cust = builder.DeclareAttr("customer_sk", 5000);
  const AttrId sec = builder.DeclareAttr("security_sk", 5000);
  const NodeId fact = builder.Source("FactWatches", {cust, sec});
  const NodeId dim_c = builder.Source("DimCustomer", {cust});
  const NodeId dim_s = builder.Source("DimSecurity", {sec});
  // The designer guessed: join securities first.
  const NodeId j1 = builder.Join(fact, dim_s, sec);
  const NodeId j2 = builder.Join(j1, dim_c, cust);
  builder.Sink(j2, "warehouse.watches");
  const Workflow designed = std::move(builder).Build().value();

  Pipeline pipeline;

  // The dimension sizes drift day by day.
  struct Day {
    int64_t customers;
    int64_t securities;
  };
  const Day days[] = {{50, 4000}, {200, 4000}, {2000, 4000},
                      {20000, 4000}, {60000, 4000}};

  Workflow current = designed;  // the plan in production
  std::printf("%-5s %12s %12s | %14s %14s | %s\n", "day", "customers",
              "securities", "cost(designed)", "cost(chosen)", "next plan");
  for (size_t d = 0; d < std::size(days); ++d) {
    const SourceMap sources = DayData(designed.catalog(), cust, sec,
                                      days[d].customers, days[d].securities,
                                      1000 + d);
    // Run today's plan instrumented; learn; re-optimize for tomorrow.
    const CycleOutcome cycle = pipeline.RunCycle(current, sources).value();

    // Render the chosen join order concisely.
    const Workflow& next = cycle.opt.optimized;
    std::string order;
    for (const WorkflowNode& node : next.nodes()) {
      if (node.kind != OpKind::kJoin) continue;
      order += "(" + next.catalog().name(node.join.attr) + ")";
    }
    std::printf("%-5zu %12lld %12lld | %14.0f %14.0f | joins on %s\n", d + 1,
                static_cast<long long>(days[d].customers),
                static_cast<long long>(days[d].securities),
                cycle.opt.initial_cost, cycle.opt.optimized_cost,
                order.c_str());
    current = cycle.opt.optimized;
  }
  std::printf("\nThe chosen order flips from customers-first to "
              "securities-first as the\ncustomer dimension outgrows the "
              "security dimension — without any designer\nintervention and "
              "without source statistics.\n");
  return 0;
}
