#include "core/report.h"

#include <sstream>

#include "obs/accuracy.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "opt/exec_cover.h"
#include "util/string_util.h"

namespace etlopt {

std::string FormatBlockReport(const BlockAnalysis& block,
                              const AttrCatalog& catalog,
                              const ReportOptions& options) {
  std::ostringstream out;
  const Block& b = block.block;
  out << "block " << b.id << ": " << b.num_rels() << " input(s), "
      << b.joins.size() << " join(s)\n";
  for (int r = 0; r < b.num_rels(); ++r) {
    const BlockInput& input = b.inputs[static_cast<size_t>(r)];
    out << "  R" << r << " = " << block.ctx.RelLabel(r);
    if (!input.chain.empty()) {
      out << " (+" << input.chain.size() << " chain op"
          << (input.chain.size() == 1 ? "" : "s") << ")";
    }
    out << "\n";
  }
  for (const JoinEdge& e : block.ctx.graph().edges()) {
    out << "  edge R" << e.a << " -- R" << e.b << " on "
        << catalog.name(e.attr);
    if (e.fk_dim >= 0) out << " [fk dim R" << e.fk_dim << "]";
    out << "\n";
  }
  out << "  plan space: " << block.plan_space.num_ses()
      << " sub-expressions, " << block.plan_space.num_plans() << " plans\n";
  out << "  statistics universe: " << block.catalog.num_stats()
      << " statistics, " << block.catalog.num_css() << " CSS\n";

  const SelectionResult& sel = block.selection;
  out << "  selection (" << sel.method << "): "
      << (sel.feasible ? "feasible" : "INFEASIBLE") << ", cost "
      << WithThousands(static_cast<int64_t>(sel.total_cost))
      << " memory units, " << sel.observed.size() << " statistics\n";
  int listed = 0;
  for (const StatKey& key : sel.ObservedKeys(block.catalog)) {
    if (listed++ >= options.max_listed_stats) {
      out << "    ... (" << (sel.observed.size() - listed + 1)
          << " more)\n";
      break;
    }
    out << "    observe " << key.ToString(&catalog) << "\n";
  }

  if (options.include_exec_cover && b.num_rels() >= 3) {
    const ExecCoverResult cover =
        ComputeExecutionCover(block.ctx, block.plan_space);
    out << "  trivial-CSS baseline (pay-as-you-go): >= "
        << cover.formula_lower_bound << " executions by formula, "
        << cover.executions
        << " by greedy cover — this framework needs 1 instrumented run\n";
  }
  return out.str();
}

std::string FormatAnalysisReport(const Analysis& analysis,
                                 const ReportOptions& options) {
  std::ostringstream out;
  const Workflow& wf = *analysis.workflow;
  out << "=== etlopt advisor report: workflow '" << wf.name() << "' ===\n";
  out << wf.num_nodes() << " nodes, " << analysis.blocks.size()
      << " optimizable block(s)\n\n";
  double total_cost = 0.0;
  for (const auto& block : analysis.blocks) {
    out << FormatBlockReport(*block, wf.catalog(), options) << "\n";
    total_cost += block->selection.total_cost;
  }
  out << "total observation cost: "
      << WithThousands(static_cast<int64_t>(total_cost))
      << " memory units\n";
  return out.str();
}

std::string FormatObsSummary() {
  std::ostringstream out;
  out << "=== observability summary ===\n";
  out << "build: " << obs::CurrentBuildInfo().Summary() << "\n";
  const auto& registry = obs::MetricsRegistry::Global();
  const struct {
    const char* label;
    const char* counter;
  } headline[] = {
      {"engine executions", "etlopt.engine.executions"},
      {"operators executed", "etlopt.engine.ops_executed"},
      {"rows processed", "etlopt.engine.rows_processed"},
      {"bytes processed", "etlopt.engine.bytes_processed"},
      {"statistics observed", "etlopt.core.stats_observed"},
      {"exact taps", "etlopt.tap.exact"},
      {"sketch taps", "etlopt.tap.sketch"},
      {"tap memory (bytes)", "etlopt.tap.bytes"},
      {"exact-tap estimate (bytes)", "etlopt.tap.exact_bytes_estimate"},
      {"cardinalities estimated", "etlopt.core.cards_estimated"},
      {"greedy selector iterations", "etlopt.opt.greedy.iterations"},
      {"LP solves", "etlopt.lp.solves"},
      {"simplex pivots", "etlopt.lp.simplex.pivots"},
  };
  for (const auto& [label, counter] : headline) {
    const obs::Counter* c = registry.FindCounter(counter);
    if (c != nullptr && c->Get() != 0) {
      out << "  " << label << ": " << WithThousands(c->Get()) << "\n";
    }
  }
  // Robustness counters: retries/quarantine from the resilient sources,
  // degraded taps, checkpoint flushes, and salvage bookkeeping. All zero on
  // a clean run with no fault spec, so the section only prints when
  // something fired.
  const struct {
    const char* label;
    const char* counter;
  } robustness[] = {
      {"runs aborted", "etlopt.engine.aborts"},
      {"source open retries", "etlopt.engine.source.retries"},
      {"source timeouts", "etlopt.engine.source.timeouts"},
      {"source io errors", "etlopt.engine.source.io_errors"},
      {"rows quarantined", "etlopt.engine.source.quarantined"},
      {"taps downgraded to sketch", "etlopt.tap.downgraded"},
      {"taps disabled", "etlopt.tap.disabled"},
      {"taps skipped in salvage", "etlopt.tap.salvage_skipped"},
      {"checkpoint flushes", "etlopt.obs.checkpoint.flushes"},
      {"ledger lines skipped", "etlopt.obs.ledger.skipped_lines"},
      {"partial-run feedback keys", "etlopt.core.partial_feedback_keys"},
  };
  bool robustness_header = false;
  for (const auto& [label, counter] : robustness) {
    const obs::Counter* c = registry.FindCounter(counter);
    if (c == nullptr || c->Get() == 0) continue;
    if (!robustness_header) {
      out << "  -- robustness --\n";
      robustness_header = true;
    }
    out << "  " << label << ": " << WithThousands(c->Get()) << "\n";
    // Per-source breakdown: the executor also bumps a labeled twin
    // ("<counter>{source=\"name\"}") for retries and quarantined rows.
    const std::string labeled_prefix = std::string(counter) + "{";
    for (const auto& [name, value] : registry.CounterValues()) {
      if (value != 0 && name.rfind(labeled_prefix, 0) == 0) {
        out << "    " << name.substr(labeled_prefix.size() - 1) << ": "
            << WithThousands(value) << "\n";
      }
    }
  }
  // Parallel execution: the partitioned executor publishes worker/partition
  // gauges and merge-time counters. All zero on serial runs, so the section
  // only prints after a --threads=N run took the parallel path.
  const obs::Gauge* par_workers =
      registry.FindGauge("etlopt.parallel.workers");
  if (par_workers != nullptr && par_workers->Get() > 0) {
    out << "  -- parallelism --\n";
    out << "  workers: " << static_cast<int64_t>(par_workers->Get()) << "\n";
    const obs::Gauge* partitions =
        registry.FindGauge("etlopt.parallel.partitions");
    if (partitions != nullptr && partitions->Get() > 0) {
      out << "  partitions: " << static_cast<int64_t>(partitions->Get())
          << "\n";
    }
    const obs::Gauge* skew = registry.FindGauge("etlopt.parallel.skew");
    if (skew != nullptr && skew->Get() > 0) {
      std::ostringstream v;
      v.precision(2);
      v << std::fixed << skew->Get();
      out << "  partition skew (max/mean rows): " << v.str() << "\n";
    }
    const obs::Counter* merge_ns =
        registry.FindCounter("etlopt.parallel.merge_ns");
    if (merge_ns != nullptr && merge_ns->Get() > 0) {
      out << "  output merge time: " << WithThousands(merge_ns->Get())
          << " ns\n";
    }
    const obs::Counter* tap_merge_ns =
        registry.FindCounter("etlopt.parallel.tap_merge_ns");
    if (tap_merge_ns != nullptr && tap_merge_ns->Get() > 0) {
      out << "  tap merge time: " << WithThousands(tap_merge_ns->Get())
          << " ns\n";
    }
  }
  // Plan-regression guard: prints once the gate has evaluated at least one
  // adoption decision (any mode but off), so pre-guard output is unchanged.
  const obs::Counter* guard_evals =
      registry.FindCounter("etlopt.guard.evaluations");
  if (guard_evals != nullptr && guard_evals->Get() > 0) {
    out << "  -- guard --\n";
    out << "  adoption evaluations: " << WithThousands(guard_evals->Get())
        << "\n";
    const struct {
      const char* label;
      const char* counter;
    } guard_counters[] = {
        {"verdicts flagged", "etlopt.guard.flagged"},
        {"fallbacks to designed plan", "etlopt.guard.fallbacks"},
        {"estimate-monitor violations", "etlopt.guard.monitor_violations"},
        {"estimator values clamped", "etlopt.estimator.clamped"},
    };
    for (const auto& [label, counter] : guard_counters) {
      const obs::Counter* c = registry.FindCounter(counter);
      if (c != nullptr && c->Get() != 0) {
        out << "  " << label << ": " << WithThousands(c->Get()) << "\n";
      }
    }
    const obs::Gauge* evidence = registry.FindGauge("etlopt.guard.evidence");
    if (evidence != nullptr) {
      std::ostringstream v;
      v.precision(2);
      v << std::fixed << evidence->Get();
      out << "  last evidence score: " << v.str() << "\n";
    }
  }
  // Instrumentation overhead normalized by data volume: how many collector
  // bytes each megabyte flowing through the engine cost.
  const obs::Counter* tap_bytes = registry.FindCounter("etlopt.tap.bytes");
  const obs::Counter* engine_bytes =
      registry.FindCounter("etlopt.engine.bytes_processed");
  if (tap_bytes != nullptr && engine_bytes != nullptr &&
      tap_bytes->Get() > 0 && engine_bytes->Get() > 0) {
    const double per_mb = static_cast<double>(tap_bytes->Get()) /
                          (static_cast<double>(engine_bytes->Get()) /
                           (1024.0 * 1024.0));
    std::ostringstream v;
    v.precision(1);
    v << std::fixed << per_mb;
    out << "  tap overhead: " << v.str() << " bytes per MB processed\n";
  }
  out << obs::AccuracyTracker::Global().FormatTable();
  return out.str();
}

}  // namespace etlopt
