#ifndef ETLOPT_UTIL_JSON_H_
#define ETLOPT_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace etlopt {

// Minimal JSON document model for the observability layer (run-ledger
// records, explain output). Objects preserve insertion order and use linear
// lookup — records have a handful of fields, so no hash map is warranted.
// Integers survive a round trip exactly up to int64 range; any number with
// a '.', 'e', or 'E' parses as double.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
  }
  static Json Int(int64_t v) {
    Json j;
    j.type_ = Type::kInt;
    j.int_ = v;
    return j;
  }
  static Json Double(double v) {
    Json j;
    j.type_ = Type::kDouble;
    j.double_ = v;
    return j;
  }
  static Json Str(std::string v) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(v);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  // Numeric accessors coerce between the int and double representations.
  int64_t int_value() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double double_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  const std::vector<Json>& array() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  void push_back(Json value) { array_.push_back(std::move(value)); }
  // Appends (or replaces) a member. Returns *this for chaining.
  Json& Set(const std::string& key, Json value);
  // nullptr when the key is absent (or this is not an object).
  const Json* Find(const std::string& key) const;

  // Typed member lookups with defaults — the loader's tolerant-read idiom.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;

  // Compact single-line serialization (no insignificant whitespace).
  std::string Dump() const;

  // Strict parse of one JSON document; trailing non-whitespace is an error
  // (which is what makes truncated ledger lines detectable).
  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// Escapes and quotes a string for direct JSON emission.
std::string JsonEscape(const std::string& s);

}  // namespace etlopt

#endif  // ETLOPT_UTIL_JSON_H_
