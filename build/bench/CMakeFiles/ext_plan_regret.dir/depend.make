# Empty dependencies file for ext_plan_regret.
# This may be replaced when dependencies are built.
