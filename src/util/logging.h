#ifndef ETLOPT_UTIL_LOGGING_H_
#define ETLOPT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace etlopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. The initial
// level is taken from the ETLOPT_LOG_LEVEL environment variable at startup
// (debug|info|warning|error or 0-3; default warning).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define ETLOPT_LOG(level)                                                  \
  ::etlopt::internal_logging::LogMessage(::etlopt::LogLevel::k##level,     \
                                         __FILE__, __LINE__)               \
      .stream()

}  // namespace etlopt

#endif  // ETLOPT_UTIL_LOGGING_H_
