#include "obs/run_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/accuracy.h"
#include "obs/calibrate.h"
#include "obs/drift.h"

namespace etlopt {
namespace obs {
namespace {

// Cardinality accuracy of one run: q-error over every SE card that carries
// ground truth (actual >= 0).
struct CardAccuracy {
  int samples = 0;
  double mean = 0.0;
  double max = 0.0;
};

CardAccuracy CardQError(const RunRecord& record) {
  CardAccuracy acc;
  double sum = 0.0;
  for (const RunRecord::SeCard& card : record.cards) {
    if (card.actual < 0.0 || card.estimated < 0.0) continue;
    const double q = QError(card.estimated, card.actual);
    sum += q;
    acc.max = std::max(acc.max, q);
    ++acc.samples;
  }
  if (acc.samples > 0) acc.mean = sum / acc.samples;
  return acc;
}

int SketchStatCount(const RunRecord& record) {
  int count = 0;
  for (const auto& block : SketchRelErrors(record)) {
    count += static_cast<int>(block.size());
  }
  return count;
}

// Per-operator-class accuracy of the predictions that were live when the
// runs executed (op.pred_ns vs op.self_ns), plus the re-fit ns/row.
struct ClassAccuracy {
  std::string op;
  int samples = 0;
  double mean_q = 0.0;
  double max_q = 0.0;
  double fitted_ns_per_row = 0.0;
};

std::vector<ClassAccuracy> WorstClasses(
    const std::vector<const RunRecord*>& runs, const CostCalibration& refit,
    int top_k) {
  std::map<std::string, ClassAccuracy> by_class;
  for (const RunRecord* record : runs) {
    for (const OpProfile& op : record->profile.ops) {
      if (op.pred_ns < 0.0) continue;
      ClassAccuracy& acc = by_class[op.op];
      acc.op = op.op;
      const double q = QError(op.pred_ns, static_cast<double>(op.self_ns));
      acc.mean_q += q;  // sum for now; divided below
      acc.max_q = std::max(acc.max_q, q);
      ++acc.samples;
    }
  }
  std::vector<ClassAccuracy> ranked;
  for (auto& [op, acc] : by_class) {
    acc.mean_q /= acc.samples;
    const auto it = refit.classes.find(op);
    if (it != refit.classes.end()) {
      acc.fitted_ns_per_row = it->second.ns_per_row;
    }
    ranked.push_back(acc);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ClassAccuracy& a, const ClassAccuracy& b) {
              return a.mean_q > b.mean_q;
            });
  if (top_k > 0 && static_cast<int>(ranked.size()) > top_k) {
    ranked.resize(static_cast<size_t>(top_k));
  }
  return ranked;
}

// Fingerprint groups in first-seen order (ledger order is append order, so
// the report reads oldest workflow first, runs oldest first within it).
struct Group {
  std::string fingerprint;
  std::string workflow;
  std::vector<const RunRecord*> runs;
};

std::vector<Group> GroupByFingerprint(const std::vector<RunRecord>& records) {
  std::vector<Group> groups;
  for (const RunRecord& record : records) {
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.fingerprint == record.fingerprint) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{record.fingerprint, record.workflow, {}});
      group = &groups.back();
    }
    group->runs.push_back(&record);
  }
  return groups;
}

// The build every run of the group is compared against: the latest one with
// provenance recorded.
const BuildInfo* ReferenceBuild(const Group& group) {
  for (size_t i = group.runs.size(); i-- > 0;) {
    if (!group.runs[i]->build.git_sha.empty()) return &group.runs[i]->build;
  }
  return nullptr;
}

// The thread count every run of the group is compared against: the latest
// run's. Wall times (execute_ms) are only comparable at equal parallelism;
// merged profile self times sum per-worker work and stay comparable.
int ReferenceThreads(const Group& group) {
  return group.runs.empty() ? 1 : group.runs.back()->num_threads;
}

// Drift replay: each run compared against its own history prefix, exactly
// as the online detector would have seen it.
std::vector<DriftReport> ReplayDrift(const Group& group) {
  std::vector<DriftReport> reports(group.runs.size());
  DriftDetector detector;
  std::vector<RunRecord> prefix;
  for (size_t i = 0; i < group.runs.size(); ++i) {
    if (!prefix.empty()) {
      reports[i] = detector.Compare(prefix, *group.runs[i]);
    }
    prefix.push_back(*group.runs[i]);
  }
  return reports;
}

// FitCalibration wants records by value; materialize the group's view.
CostCalibration RefitGroup(const Group& group) {
  std::vector<RunRecord> group_records;
  group_records.reserve(group.runs.size());
  for (const RunRecord* r : group.runs) group_records.push_back(*r);
  return FitCalibration(group_records);
}

std::string FormatQ(double q) {
  if (q <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", q);
  return buf;
}

}  // namespace

std::string FormatRunReportMarkdown(const std::vector<RunRecord>& records,
                                    const RunReportOptions& options) {
  std::ostringstream out;
  out << "# etlopt run report\n\n";
  if (records.empty()) {
    out << "(empty ledger — nothing to report)\n";
    return out.str();
  }
  for (const Group& group : GroupByFingerprint(records)) {
    out << "## workflow " << group.workflow << " (" << group.fingerprint
        << ")\n\n";
    int partial_runs = 0;
    int profiled_runs = 0;
    for (const RunRecord* r : group.runs) {
      if (r->partial) ++partial_runs;
      if (!r->profile.empty()) ++profiled_runs;
    }
    out << group.runs.size() << " run(s), " << profiled_runs << " profiled, "
        << partial_runs << " partial\n\n";

    const BuildInfo* reference_build = ReferenceBuild(group);
    const int reference_threads = ReferenceThreads(group);
    const std::vector<DriftReport> drift = ReplayDrift(group);

    // ---- runs table: card q-error and plan cost q-error trends ----
    out << "| run | execute_ms | selector | card q-error mean | card "
           "q-error max | cards | plan cost q-error | flags |\n";
    out << "|---|---|---|---|---|---|---|---|\n";
    for (size_t i = 0; i < group.runs.size(); ++i) {
      const RunRecord& r = *group.runs[i];
      const CardAccuracy cards = CardQError(r);
      const double cost_q = PlanCostQError(r.profile);
      std::vector<std::string> flags;
      if (r.partial) flags.push_back("partial");
      if (SketchStatCount(r) > 0) flags.push_back("sketch");
      if (drift[i].any_drift()) flags.push_back("drift");
      if (reference_build != nullptr && !r.build.git_sha.empty() &&
          !r.build.ComparableWith(*reference_build)) {
        flags.push_back("build-mismatch");
      }
      if (r.num_threads != reference_threads) {
        flags.push_back("threads-mismatch");
      }
      if (r.guard.fell_back) flags.push_back("guard-fallback");
      if (r.guard.plan_unsafe) flags.push_back("plan-unsafe");
      std::string joined;
      for (const std::string& f : flags) {
        if (!joined.empty()) joined += ",";
        joined += f;
      }
      char exec_ms[32];
      std::snprintf(exec_ms, sizeof(exec_ms), "%.1f", r.execute_ms);
      out << "| " << r.run_id << " | " << exec_ms << " | " << r.selector
          << " | " << (cards.samples > 0 ? FormatQ(cards.mean) : "-") << " | "
          << (cards.samples > 0 ? FormatQ(cards.max) : "-") << " | "
          << cards.samples << " | " << FormatQ(cost_q) << " | "
          << (joined.empty() ? "-" : joined) << " |\n";
    }
    out << "\n";

    // ---- calibration: re-fit + worst-calibrated classes ----
    if (profiled_runs > 0) {
      const CostCalibration refit = RefitGroup(group);
      const std::vector<ClassAccuracy> worst =
          WorstClasses(group.runs, refit, options.top_k);
      out << "### worst-calibrated operator classes (top " << options.top_k
          << ", by mean q-error of the predictions live at run time)\n\n";
      if (worst.empty()) {
        out << "(no annotated profiles — run with --profile under a "
               "--calibration overlay to populate this)\n\n";
      } else {
        out << "| class | mean q-error | max q-error | samples | re-fit "
               "ns/row |\n";
        out << "|---|---|---|---|---|\n";
        for (const ClassAccuracy& acc : worst) {
          char ns_per_row[32];
          std::snprintf(ns_per_row, sizeof(ns_per_row), "%.1f",
                        acc.fitted_ns_per_row);
          out << "| " << acc.op << " | " << FormatQ(acc.mean_q) << " | "
              << FormatQ(acc.max_q) << " | " << acc.samples << " | "
              << ns_per_row << " |\n";
        }
        out << "\n";
      }
    }

    // ---- drift events, replayed offline ----
    out << "### drift events\n\n";
    bool any_drift = false;
    for (size_t i = 0; i < group.runs.size(); ++i) {
      if (!drift[i].any_drift()) continue;
      any_drift = true;
      out << "- " << group.runs[i]->run_id << ": "
          << drift[i].reinstrument.size()
          << " key(s) flagged for re-instrumentation:";
      for (const auto& [block, key] : drift[i].reinstrument) {
        out << " block" << block << ":" << key.ToString();
      }
      out << "\n";
    }
    if (!any_drift) out << "(none)\n";
    out << "\n";

    // ---- annotations qualifying the numbers above ----
    out << "### annotations\n\n";
    bool any_note = false;
    for (size_t i = 0; i < group.runs.size(); ++i) {
      const RunRecord& r = *group.runs[i];
      if (r.partial) {
        any_note = true;
        char completion[32];
        std::snprintf(completion, sizeof(completion), "%.0f%%",
                      100.0 * r.completion);
        out << "- " << r.run_id << " is partial (" << r.abort_reason
            << "), completion " << completion
            << " — its statistics are a salvaged prefix\n";
      }
      if (const int sketched = SketchStatCount(r); sketched > 0) {
        any_note = true;
        out << "- " << r.run_id << " collected " << sketched
            << " statistic(s) via budget-bounded sketches — values carry "
               "their relative-error bound\n";
      }
      if (reference_build != nullptr && !r.build.git_sha.empty() &&
          !r.build.ComparableWith(*reference_build)) {
        any_note = true;
        out << "- " << r.run_id << " ran a different build ("
            << r.build.Summary()
            << ") — its timings are not comparable with the latest runs\n";
      }
      if (r.num_threads != reference_threads) {
        any_note = true;
        out << "- " << r.run_id << " ran with " << r.num_threads
            << " worker thread(s) vs " << reference_threads
            << " in the latest run — its wall times are not comparable; "
               "per-operator self times (per-worker work) still are\n";
      }
      if (r.guard.fell_back) {
        any_note = true;
        char evidence[32];
        std::snprintf(evidence, sizeof(evidence), "%.2f", r.guard.evidence);
        out << "- " << r.run_id
            << " fell back to the designed plan: the adoption gate rejected "
               "proposal "
            << r.guard.proposed_signature << " (evidence " << evidence
            << ") — its optimized_cost equals the designed plan's\n";
      }
      if (r.guard.plan_unsafe) {
        any_note = true;
        out << "- " << r.run_id << " raised " << r.guard.violations.size()
            << " runtime estimate-monitor violation(s) against plan "
            << r.guard.unsafe_signature
            << " — that plan is unsafe for re-adoption\n";
      }
    }
    if (!any_note) out << "(none)\n";
    out << "\n";
  }
  return out.str();
}

Json RunReportJson(const std::vector<RunRecord>& records,
                   const RunReportOptions& options) {
  Json j = Json::Object();
  j.Set("kind", Json::Str("etlopt-run-report"));
  Json workflows = Json::Array();
  for (const Group& group : GroupByFingerprint(records)) {
    Json jg = Json::Object();
    jg.Set("fingerprint", Json::Str(group.fingerprint));
    jg.Set("workflow", Json::Str(group.workflow));
    const BuildInfo* reference_build = ReferenceBuild(group);
    const int reference_threads = ReferenceThreads(group);
    const std::vector<DriftReport> drift = ReplayDrift(group);
    int profiled_runs = 0;

    Json jruns = Json::Array();
    for (size_t i = 0; i < group.runs.size(); ++i) {
      const RunRecord& r = *group.runs[i];
      if (!r.profile.empty()) ++profiled_runs;
      Json jr = Json::Object();
      jr.Set("run_id", Json::Str(r.run_id));
      jr.Set("ts_ms", Json::Int(r.timestamp_ms));
      jr.Set("execute_ms", Json::Double(r.execute_ms));
      jr.Set("selector", Json::Str(r.selector));
      const CardAccuracy cards = CardQError(r);
      Json jcard = Json::Object();
      jcard.Set("samples", Json::Int(cards.samples));
      jcard.Set("mean", Json::Double(cards.mean));
      jcard.Set("max", Json::Double(cards.max));
      jr.Set("card_qerror", std::move(jcard));
      const double cost_q = PlanCostQError(r.profile);
      if (cost_q > 0.0) jr.Set("plan_cost_qerror", Json::Double(cost_q));
      if (r.partial) jr.Set("partial", Json::Bool(true));
      if (const int sketched = SketchStatCount(r); sketched > 0) {
        jr.Set("sketch_stats", Json::Int(sketched));
      }
      jr.Set("drift_flagged",
             Json::Int(static_cast<int64_t>(drift[i].reinstrument.size())));
      if (!r.build.git_sha.empty()) {
        jr.Set("build_sha", Json::Str(r.build.git_sha));
        if (reference_build != nullptr) {
          jr.Set("build_comparable",
                 Json::Bool(r.build.ComparableWith(*reference_build)));
        }
      }
      if (r.num_threads != 1) jr.Set("num_threads", Json::Int(r.num_threads));
      if (r.num_threads != reference_threads) {
        jr.Set("threads_comparable", Json::Bool(false));
      }
      if (r.guard.engaged()) {
        Json jguard = Json::Object();
        jguard.Set("fell_back", Json::Bool(r.guard.fell_back));
        jguard.Set("plan_unsafe", Json::Bool(r.guard.plan_unsafe));
        jguard.Set("evidence", Json::Double(r.guard.evidence));
        jguard.Set("violations",
                   Json::Int(static_cast<int64_t>(r.guard.violations.size())));
        jr.Set("guard", std::move(jguard));
      }
      jruns.push_back(std::move(jr));
    }
    jg.Set("runs", std::move(jruns));

    if (profiled_runs > 0) {
      const CostCalibration refit = RefitGroup(group);
      jg.Set("calibration", refit.ToJson());
      Json jworst = Json::Array();
      for (const ClassAccuracy& acc :
           WorstClasses(group.runs, refit, options.top_k)) {
        Json ja = Json::Object();
        ja.Set("class", Json::Str(acc.op));
        ja.Set("mean_qerror", Json::Double(acc.mean_q));
        ja.Set("max_qerror", Json::Double(acc.max_q));
        ja.Set("samples", Json::Int(acc.samples));
        ja.Set("refit_ns_per_row", Json::Double(acc.fitted_ns_per_row));
        jworst.push_back(std::move(ja));
      }
      jg.Set("worst_calibrated", std::move(jworst));
    }
    workflows.push_back(std::move(jg));
  }
  j.Set("workflows", std::move(workflows));
  return j;
}

}  // namespace obs
}  // namespace etlopt
