#ifndef ETLOPT_OPT_RESOURCE_H_
#define ETLOPT_OPT_RESOURCE_H_

#include "opt/exec_cover.h"
#include "opt/selection.h"

namespace etlopt {

// Section 6.1: statistics selection under a memory budget. The first run
// observes the affordable statistics; SE cardinalities left uncovered are
// picked up through trivial CSSs (plain counters) across additional runs
// with re-ordered plans — the mix of trivial and non-trivial CSSs the paper
// describes as the natural generalization of pay-as-you-go.
struct BudgetedSelection {
  SelectionResult first_run;
  double memory_used = 0.0;
  std::vector<RelMask> deferred;  // SEs whose |e| is left to later runs
  // Extra executions (beyond the first) needed to cover `deferred` by plan
  // re-ordering, and what each one covers.
  ExecCoverResult reorder_plan;
  int total_executions() const {
    return 1 + (deferred.empty() ? 0 : reorder_plan.executions);
  }
};

BudgetedSelection SelectWithBudget(const SelectionProblem& problem,
                                   const BlockContext& ctx,
                                   const PlanSpace& plan_space,
                                   double memory_budget);

}  // namespace etlopt

#endif  // ETLOPT_OPT_RESOURCE_H_
