#include "obs/guard.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/calibrate.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/logging.h"

namespace etlopt {
namespace obs {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || !std::isfinite(parsed)) return fallback;
  return parsed;
}

}  // namespace

const char* GuardModeName(GuardMode mode) {
  switch (mode) {
    case GuardMode::kOff:
      return "off";
    case GuardMode::kWarn:
      return "warn";
    case GuardMode::kStrict:
      return "strict";
  }
  return "unknown";
}

Result<GuardMode> ParseGuardMode(const std::string& text) {
  if (text == "off") return GuardMode::kOff;
  if (text == "warn") return GuardMode::kWarn;
  if (text == "strict") return GuardMode::kStrict;
  return Status::InvalidArgument("unknown guard mode '" + text +
                                 "' (expected off|warn|strict)");
}

GuardOptions GuardOptions::FromEnv() {
  GuardOptions options;
  const char* mode = std::getenv("ETLOPT_GUARD_MODE");
  if (mode != nullptr && *mode != '\0') {
    const Result<GuardMode> parsed = ParseGuardMode(mode);
    if (parsed.ok()) {
      options.mode = *parsed;
    } else {
      ETLOPT_LOG(Warning) << "ETLOPT_GUARD_MODE='" << mode
                          << "' ignored: " << parsed.status().ToString();
    }
  }
  options.min_evidence =
      EnvDouble("ETLOPT_GUARD_MIN_EVIDENCE", options.min_evidence);
  options.min_margin = EnvDouble("ETLOPT_GUARD_MIN_MARGIN", options.min_margin);
  options.monitor_qerror =
      EnvDouble("ETLOPT_GUARD_MONITOR_QERROR", options.monitor_qerror);
  options.drift_penalty =
      EnvDouble("ETLOPT_GUARD_DRIFT_PENALTY", options.drift_penalty);
  options.partial_penalty =
      EnvDouble("ETLOPT_GUARD_PARTIAL_PENALTY", options.partial_penalty);
  return options;
}

GuardVerdict EvaluateAdoption(const GuardOptions& options,
                              const GuardInputs& inputs) {
  GuardVerdict verdict;
  if (options.mode == GuardMode::kOff) return verdict;
  ETLOPT_COUNTER_ADD("etlopt.guard.evaluations", 1);

  double min_confidence = 1.0;
  for (const SeEvidence& se : inputs.evidence) {
    min_confidence = std::min(min_confidence, se.confidence);
  }
  verdict.evidence_score = min_confidence;
  if (inputs.partial_history) {
    verdict.evidence_score *= options.partial_penalty;
  }
  // Unfitted operator classes price with the pessimistic default; a plan
  // chosen under mostly-default costs carries proportionally less evidence.
  const double coverage =
      std::clamp(inputs.calibration_coverage, 0.0, 1.0);
  verdict.evidence_score *= 0.5 + 0.5 * coverage;

  const double denom = std::max(std::abs(inputs.initial_cost), 1.0);
  verdict.margin = (inputs.initial_cost - inputs.optimized_cost) / denom;

  if (!inputs.plan_changed) {
    // The proposal IS the designed plan; adoption is a no-op and cannot
    // regress. Record the score, skip the criteria.
    ETLOPT_GAUGE_SET("etlopt.guard.evidence", verdict.evidence_score);
    return verdict;
  }

  auto fail = [&](std::string reason) {
    verdict.reasons.push_back(std::move(reason));
  };
  if (verdict.evidence_score < options.min_evidence) {
    std::ostringstream msg;
    msg << "evidence " << verdict.evidence_score << " below threshold "
        << options.min_evidence;
    fail(msg.str());
  }
  if (verdict.margin < options.min_margin) {
    std::ostringstream msg;
    msg << "predicted margin " << verdict.margin << " below threshold "
        << options.min_margin;
    fail(msg.str());
  }
  if (!inputs.proposed_signature.empty()) {
    for (const std::string& sig : inputs.unsafe_signatures) {
      if (sig == inputs.proposed_signature) {
        fail("plan " + sig +
             " was marked unsafe by a prior run's monitors");
        break;
      }
    }
  }
  if (!verdict.reasons.empty()) {
    ETLOPT_COUNTER_ADD("etlopt.guard.flagged", 1);
    if (options.mode == GuardMode::kStrict) {
      verdict.adopt = false;
      ETLOPT_COUNTER_ADD("etlopt.guard.fallbacks", 1);
    }
  }
  ETLOPT_GAUGE_SET("etlopt.guard.evidence", verdict.evidence_score);
  return verdict;
}

double CalibrationCoverage(const CostCalibration& calibration,
                           const RunProfile& profile) {
  if (calibration.empty() || profile.empty()) return 1.0;
  int64_t fitted = 0;
  int64_t total = 0;
  for (const OpProfile& op : profile.ops) {
    const int64_t weight = std::max<int64_t>(RunProfile::Weight(op), 1);
    total += weight;
    if (calibration.classes.count(op.op) > 0) fitted += weight;
  }
  if (total <= 0) return 1.0;
  return static_cast<double>(fitted) / static_cast<double>(total);
}

Json GuardRecord::ToJson() const {
  Json j = Json::Object();
  j.Set("mode", Json::Str(mode));
  j.Set("adopted", Json::Bool(adopted));
  if (fell_back) j.Set("fell_back", Json::Bool(true));
  j.Set("evidence", Json::Double(evidence));
  j.Set("margin", Json::Double(margin));
  if (!proposed_signature.empty()) {
    j.Set("proposed_sig", Json::Str(proposed_signature));
  }
  if (!reasons.empty()) {
    Json jr = Json::Array();
    for (const std::string& reason : reasons) jr.push_back(Json::Str(reason));
    j.Set("reasons", std::move(jr));
  }
  if (!violations.empty()) {
    Json jv = Json::Array();
    for (const Monitor& m : violations) {
      Json jm = Json::Object();
      jm.Set("block", Json::Int(m.block));
      jm.Set("se", Json::Int(static_cast<int64_t>(m.se)));
      jm.Set("node", Json::Int(m.node));
      jm.Set("expected", Json::Double(m.expected));
      jm.Set("actual", Json::Double(m.actual));
      jm.Set("qerror", Json::Double(m.qerror));
      jv.push_back(std::move(jm));
    }
    j.Set("violations", std::move(jv));
  }
  if (plan_unsafe) j.Set("plan_unsafe", Json::Bool(true));
  if (!unsafe_signature.empty()) {
    j.Set("unsafe_sig", Json::Str(unsafe_signature));
  }
  return j;
}

GuardRecord GuardRecord::FromJson(const Json& j) {
  GuardRecord record;
  if (!j.is_object()) return record;
  record.mode = j.GetString("mode");
  if (const Json* adopted = j.Find("adopted");
      adopted != nullptr && adopted->is_bool()) {
    record.adopted = adopted->bool_value();
  }
  if (const Json* fell = j.Find("fell_back");
      fell != nullptr && fell->is_bool() && fell->bool_value()) {
    record.fell_back = true;
  }
  record.evidence = j.GetDouble("evidence", 1.0);
  record.margin = j.GetDouble("margin", 0.0);
  record.proposed_signature = j.GetString("proposed_sig");
  if (const Json* jr = j.Find("reasons");
      jr != nullptr && jr->is_array()) {
    for (const Json& reason : jr->array()) {
      if (reason.is_string()) record.reasons.push_back(reason.string_value());
    }
  }
  if (const Json* jv = j.Find("violations");
      jv != nullptr && jv->is_array()) {
    for (const Json& jm : jv->array()) {
      if (!jm.is_object()) continue;
      Monitor m;
      m.block = static_cast<int>(jm.GetInt("block"));
      m.se = static_cast<RelMask>(jm.GetInt("se"));
      m.node = jm.GetInt("node");
      m.expected = jm.GetDouble("expected");
      m.actual = jm.GetDouble("actual");
      m.qerror = jm.GetDouble("qerror", 1.0);
      record.violations.push_back(m);
    }
  }
  if (const Json* unsafe = j.Find("plan_unsafe");
      unsafe != nullptr && unsafe->is_bool() && unsafe->bool_value()) {
    record.plan_unsafe = true;
  }
  record.unsafe_signature = j.GetString("unsafe_sig");
  return record;
}

std::string GuardRecord::ToText() const {
  std::ostringstream out;
  out << "guard (" << mode << "): "
      << (fell_back ? "fell back to designed plan"
                    : (adopted ? "adopted" : "not adopted"))
      << ", evidence " << evidence << ", margin " << margin << "\n";
  for (const std::string& reason : reasons) {
    out << "  reason: " << reason << "\n";
  }
  for (const Monitor& m : violations) {
    out << "  monitor: block " << m.block << " se " << m.se << " node "
        << m.node << " expected " << m.expected << " actual " << m.actual
        << " qerror " << m.qerror << "\n";
  }
  if (plan_unsafe) out << "  plan marked unsafe for reuse\n";
  return out.str();
}

}  // namespace obs
}  // namespace etlopt
