#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/workload_suite.h"
#include "planspace/block.h"

namespace etlopt {
namespace {

TEST(TableGenTest, SequentialAndZipfColumns) {
  AttrCatalog catalog;
  const AttrId pk = catalog.Register("pk", 1000);
  const AttrId z = catalog.Register("z", 50);
  TableSpec spec;
  spec.name = "T";
  spec.rows = 500;
  spec.columns = {ColumnSpec{pk, ColumnGen::kSequential, 0.0, 0, 0.0, {}},
                  ColumnSpec{z, ColumnGen::kZipf, 1.2, 0, 0.0, {}}};
  Rng rng(3);
  const Table t = GenerateTable(catalog, spec, rng);
  ASSERT_EQ(t.num_rows(), 500);
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.at(i, 0), i + 1);
    EXPECT_GE(t.at(i, 1), 1);
    EXPECT_LE(t.at(i, 1), 50);
  }
  // Zipf skew: value 1 is the most frequent.
  const Histogram h = t.BuildHistogram(AttrMask{1} << z);
  int64_t max_count = 0;
  for (const auto& [key, count] : h.buckets()) {
    (void)key;
    max_count = std::max(max_count, count);
  }
  EXPECT_EQ(h.Get1(1), max_count);
}

TEST(TableGenTest, FkZipfRespectsMatchRangeAndMisses) {
  AttrCatalog catalog;
  const AttrId fk = catalog.Register("fk", 100);
  TableSpec spec;
  spec.name = "F";
  spec.rows = 2000;
  spec.columns = {ColumnSpec{fk, ColumnGen::kFkZipf, 1.2, 80, 0.1, {}}};
  Rng rng(11);
  const Table t = GenerateTable(catalog, spec, rng);
  int64_t dangling = 0;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const Value v = t.at(i, 0);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    if (v > 80) ++dangling;
  }
  // ~10% dangling with generous slack.
  EXPECT_GT(dangling, 100);
  EXPECT_LT(dangling, 350);
}

TEST(TableGenTest, RowScaleShrinksConsistently) {
  AttrCatalog catalog;
  const AttrId pk = catalog.Register("pk", 1000);
  TableSpec spec;
  spec.name = "T";
  spec.rows = 1000;
  spec.columns = {ColumnSpec{pk, ColumnGen::kSequential, 0.0, 0, 0.0, {}}};
  Rng rng(3);
  const Table t = GenerateTable(catalog, spec, rng, 0.05);
  EXPECT_EQ(t.num_rows(), 50);
}

TEST(SuiteTest, AllThirtyWorkflowsBuildAndValidate) {
  const std::vector<WorkloadSpec> suite = BuildSuite();
  ASSERT_EQ(suite.size(), 30u);
  for (const WorkloadSpec& spec : suite) {
    EXPECT_TRUE(spec.workflow.Validate().ok()) << spec.name;
    EXPECT_FALSE(spec.tables.empty()) << spec.name;
    // Every source node must have a table spec.
    for (const WorkflowNode& node : spec.workflow.nodes()) {
      if (node.kind != OpKind::kSource) continue;
      const bool found =
          std::any_of(spec.tables.begin(), spec.tables.end(),
                      [&](const TableSpec& t) {
                        return t.name == node.table_name;
                      });
      EXPECT_TRUE(found) << spec.name << " missing " << node.table_name;
    }
  }
}

TEST(SuiteTest, AllWorkflowsPartitionAndBuildContexts) {
  for (int i = 1; i <= 30; ++i) {
    const WorkloadSpec spec = BuildWorkload(i);
    const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
    ASSERT_FALSE(blocks.empty()) << spec.name;
    for (const Block& block : blocks) {
      const Result<BlockContext> ctx =
          BlockContext::Build(&spec.workflow, block);
      EXPECT_TRUE(ctx.ok()) << spec.name << ": " << ctx.status().ToString();
    }
  }
}

TEST(SuiteTest, AnchorsHaveExpectedArity) {
  // wf21 is the 8-way join; wf30 the 6-way (Figure 12 anchors).
  auto max_rels = [](const WorkloadSpec& spec) {
    int best = 0;
    for (const Block& b : PartitionBlocks(spec.workflow)) {
      best = std::max(best, b.num_rels());
    }
    return best;
  };
  EXPECT_EQ(max_rels(BuildWorkload(21)), 8);
  EXPECT_EQ(max_rels(BuildWorkload(30)), 6);
  EXPECT_EQ(max_rels(BuildWorkload(3)), 3);
}

TEST(SuiteTest, GeneratedSourcesExecute) {
  // A few representative workloads run end-to-end at reduced scale.
  for (int i : {1, 2, 3, 9, 10, 11, 17, 28}) {
    const WorkloadSpec spec = BuildWorkload(i);
    const SourceMap sources = GenerateSources(spec, 42, 0.01);
    Executor executor(&spec.workflow);
    const Result<ExecutionResult> result = executor.Execute(sources);
    ASSERT_TRUE(result.ok()) << spec.name << ": "
                             << result.status().ToString();
    EXPECT_FALSE(result->targets.empty()) << spec.name;
  }
}

TEST(SuiteTest, DataCharacteristicsShapeAtFullScale) {
  // The Section 7 table shape: skewed cardinalities, UV spread over orders
  // of magnitude. Checked at 10% scale to keep the test fast; scale-derived
  // bounds are proportional.
  const DataCharacteristics dc = SummarizeSuiteData(7, 0.1);
  EXPECT_GT(dc.num_tables, 50);
  EXPECT_GT(dc.card_max, 30000);   // ~417874 * 0.1
  EXPECT_LT(dc.card_min, 1000);
  EXPECT_GT(dc.card_mean, dc.card_median);  // right-skewed like the paper
  EXPECT_GT(dc.uv_max, 10000);
  EXPECT_LT(dc.uv_min, 300);
}

}  // namespace
}  // namespace etlopt
