#ifndef ETLOPT_SKETCH_HLL_H_
#define ETLOPT_SKETCH_HLL_H_

#include <cstdint>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace etlopt {
namespace sketch {

// HyperLogLog distinct-count sketch (Flajolet et al. 2007) with the
// small-range linear-counting correction. Constant memory: m = 2^precision
// one-byte registers, independent of stream length. Standard relative error
// is 1.04 / sqrt(m) (so precision 12 -> 4 KiB -> ~1.6%); Add is one hash +
// one register max, and two sketches of the same precision merge by
// register-wise max, which makes the merged state identical to the sketch
// of the concatenated streams.
class Hll {
 public:
  static constexpr int kMinPrecision = 4;
  static constexpr int kMaxPrecision = 18;

  explicit Hll(int precision = 12);

  void AddHash(uint64_t hash);

  int64_t Estimate() const;

  // 1-sigma relative standard error of Estimate: 1.04 / sqrt(m).
  double StandardError() const;

  // Register-wise max. Requires equal precision.
  Status Merge(const Hll& other);

  int precision() const { return precision_; }
  int num_registers() const { return static_cast<int>(registers_.size()); }
  int64_t MemoryBytes() const;

  const std::vector<uint8_t>& registers() const { return registers_; }

  Json ToJson() const;
  static Result<Hll> FromJson(const Json& j);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace sketch
}  // namespace etlopt

#endif  // ETLOPT_SKETCH_HLL_H_
