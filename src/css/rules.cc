#include "css/rules.h"

namespace etlopt {

RuleEngine::RuleEngine(const BlockContext* ctx, const PlanSpace* plan_space,
                       CssGenOptions options)
    : ctx_(ctx), ps_(plan_space), options_(options) {
  ETLOPT_CHECK(ctx_ != nullptr && ps_ != nullptr);
}

void RuleEngine::Generate(const StatKey& target,
                          std::vector<CssEntry>* out) const {
  switch (target.kind) {
    case StatKind::kCard:
    case StatKind::kHist:
      if (target.is_chain_stage() || IsSingleton(target.rels)) {
        GenerateChain(target, out);
      } else {
        GenerateJoin(target, out);
      }
      break;
    case StatKind::kDistinct:
      // Derivable only via the identity rule D1 (or direct observation).
      break;
    case StatKind::kRejectJoinCard:
    case StatKind::kRejectJoinHist:
      // Leaf observables: measured, never derived.
      break;
  }
}

void RuleEngine::GenerateChain(const StatKey& target,
                               std::vector<CssEntry>* out) const {
  const int rel = LowestBit(target.rels);
  const int num_inner = ctx_->NumInnerStages(rel);

  // Resolve the operator producing this stage and the input stage index.
  NodeId op_node = kInvalidNode;
  int16_t in_stage = 0;
  if (target.is_chain_stage()) {
    if (target.stage == 0) return;  // base record-set: observation only
    op_node = ctx_->StageNode(rel, target.stage);
    in_stage = static_cast<int16_t>(target.stage - 1);
  } else {
    if (num_inner == 0) return;  // chain-less input: the top is the base
    op_node = ctx_->TopOpNode(rel);
    in_stage = static_cast<int16_t>(num_inner - 1);
  }
  const WorkflowNode& op = ctx_->workflow().node(op_node);

  auto in_card = [&] { return StatKey::CardStage(rel, in_stage); };
  auto in_hist = [&](AttrMask m) {
    return StatKey::HistStage(rel, in_stage, m);
  };

  switch (op.kind) {
    case OpKind::kFilter: {
      const AttrMask a_bit = AttrMask{1} << op.predicate.attr;
      CssEntry e;
      e.target = target;
      e.op_node = op_node;
      if (target.kind == StatKind::kCard) {
        e.rule = RuleId::kS1;
        e.inputs = {in_hist(a_bit)};
      } else {
        e.rule = RuleId::kS2;
        e.inputs = {in_hist(target.attrs | a_bit)};
      }
      out->push_back(std::move(e));
      break;
    }
    case OpKind::kProject: {
      CssEntry e;
      e.target = target;
      e.op_node = op_node;
      if (target.kind == StatKind::kCard) {
        e.rule = RuleId::kCopyCard;
        e.inputs = {in_card()};
      } else {
        e.rule = RuleId::kCopyHist;
        e.inputs = {in_hist(target.attrs)};
      }
      out->push_back(std::move(e));
      break;
    }
    case OpKind::kTransform: {
      // Aggregate UDFs are sealed and never appear inside chains; a plain
      // transform preserves cardinality (U1) and every distribution not
      // involving the rewritten attribute (U2).
      ETLOPT_CHECK(!op.transform.is_aggregate);
      CssEntry e;
      e.target = target;
      e.op_node = op_node;
      if (target.kind == StatKind::kCard) {
        e.rule = RuleId::kCopyCard;
        e.inputs = {in_card()};
        out->push_back(std::move(e));
      } else {
        const AttrMask changed = AttrMask{1} << op.transform.output_attr;
        if ((target.attrs & changed) == 0) {
          e.rule = RuleId::kCopyHist;
          e.inputs = {in_hist(target.attrs)};
          out->push_back(std::move(e));
        }
        // Distribution of the transformed attribute depends on the UDF
        // itself: no rule (observation only).
      }
      break;
    }
    case OpKind::kAggregate: {
      AttrMask group_mask = 0;
      for (AttrId a : op.aggregate.group_by) group_mask |= AttrMask{1} << a;
      CssEntry e;
      e.target = target;
      e.op_node = op_node;
      if (target.kind == StatKind::kCard) {
        // G1: |G(T,a)| = |a_T|.
        e.rule = RuleId::kG1;
        e.inputs = {StatKey::DistinctStage(rel, in_stage, group_mask)};
        out->push_back(std::move(e));
      } else if (IsSubset(target.attrs, group_mask)) {
        // G2: each group contributes one output row.
        e.rule = RuleId::kG2;
        e.aux_mask = group_mask;
        e.inputs = {in_hist(group_mask)};
        out->push_back(std::move(e));
      }
      break;
    }
    default:
      ETLOPT_CHECK_MSG(false, "unexpected operator kind in a chain");
  }
}

void RuleEngine::GenerateJoin(const StatKey& target,
                              std::vector<CssEntry>* out) const {
  const RelMask se = target.rels;
  for (const PlanAlt& plan : ps_->plans(se)) {
    const AttrMask a_bit = AttrMask{1} << plan.attr;
    if (target.kind == StatKind::kCard) {
      // J1: dot product of join-attribute distributions.
      CssEntry j1;
      j1.rule = RuleId::kJ1;
      j1.target = target;
      j1.join_attr = plan.attr;
      j1.inputs = {StatKey::Hist(plan.left, a_bit),
                   StatKey::Hist(plan.right, a_bit)};
      out->push_back(std::move(j1));

      // FK lookup shortcut: |fact ⋈ dim| = |fact side|.
      if (options_.enable_fk_rules && plan.fk_dim_side >= 0) {
        const RelMask dim_bit = RelMask{1} << plan.fk_dim_side;
        if (dim_bit == plan.left || dim_bit == plan.right) {
          CssEntry fk;
          fk.rule = RuleId::kFk;
          fk.target = target;
          fk.inputs = {StatKey::Card(se & ~dim_bit)};
          out->push_back(std::move(fk));
        }
      }
    } else {  // kHist
      // J2/J3 unified: the side carrying the non-join target attributes.
      const AttrMask needed = target.attrs & ~a_bit;
      for (int side = 0; side < 2; ++side) {
        const RelMask x = side == 0 ? plan.left : plan.right;
        const RelMask y = side == 0 ? plan.right : plan.left;
        if (!IsSubset(needed, ctx_->SchemaMask(x))) continue;
        CssEntry j2;
        j2.rule = RuleId::kJ2;
        j2.target = target;
        j2.join_attr = plan.attr;
        j2.marginalize = (target.attrs & a_bit) == 0;
        j2.inputs = {StatKey::Hist(x, target.attrs | a_bit),
                     StatKey::Hist(y, a_bit)};
        out->push_back(std::move(j2));
      }
    }

    // Union-division (J4/J5) in both plan orientations.
    if (options_.enable_union_division) {
      GenerateUnionDivision(target, plan.left, plan.right, out);
      GenerateUnionDivision(target, plan.right, plan.left, out);
    }
  }
}

void RuleEngine::GenerateUnionDivision(const StatKey& target, RelMask x,
                                       RelMask y,
                                       std::vector<CssEntry>* out) const {
  const RelMask se = target.rels;
  AttrId j_attr = kInvalidAttr;
  const RelMask k_mask = ctx_->InitialNextPartner(x, &j_attr);
  if (k_mask == 0 || !IsSingleton(k_mask)) return;
  if ((k_mask & se) != 0) return;   // k must be outside the SE
  if (!ctx_->IsOnPath(y)) return;   // the side-join needs Y materialized
  const int k = LowestBit(k_mask);
  const AttrMask j_bit = AttrMask{1} << j_attr;

  CssEntry e;
  e.target = target;
  e.join_attr = j_attr;
  if (target.kind == StatKind::kCard) {
    e.rule = RuleId::kJ4;
    e.inputs = {StatKey::Hist(se | k_mask, j_bit), StatKey::Hist(k_mask, j_bit),
                StatKey::RejectJoinCard(x, k, y)};
  } else {
    e.rule = RuleId::kJ5;
    e.inputs = {StatKey::Hist(se | k_mask, target.attrs | j_bit),
                StatKey::Hist(k_mask, j_bit),
                StatKey::RejectJoinHist(x, k, y, target.attrs)};
  }
  out->push_back(std::move(e));
}

void RuleEngine::ApplyIdentityRules(CssCatalog* catalog) const {
  // Snapshot: the identity pass must not introduce new statistics.
  const std::vector<StatKey> stats = catalog->stats();

  // Group histograms by (rels, stage).
  struct PointKey {
    RelMask rels;
    int16_t stage;
    bool operator==(const PointKey& o) const {
      return rels == o.rels && stage == o.stage;
    }
  };
  struct PointHash {
    size_t operator()(const PointKey& k) const {
      return (static_cast<size_t>(k.rels) << 16) ^
             static_cast<size_t>(static_cast<uint16_t>(k.stage));
    }
  };
  std::unordered_map<PointKey, std::vector<AttrMask>, PointHash> hists;
  for (const StatKey& s : stats) {
    if (s.kind == StatKind::kHist) {
      hists[PointKey{s.rels, s.stage}].push_back(s.attrs);
    }
  }

  for (const StatKey& s : stats) {
    const auto it = hists.find(PointKey{s.rels, s.stage});
    if (it == hists.end()) continue;
    for (AttrMask m : it->second) {
      if (s.kind == StatKind::kCard) {
        // I1: |T| from any histogram on T.
        CssEntry e;
        e.rule = RuleId::kI1;
        e.target = s;
        e.inputs = {StatKey{StatKind::kHist, s.rels, s.stage, m, 0, 0}};
        catalog->AddCss(std::move(e));
      } else if (s.kind == StatKind::kHist && s.attrs != m &&
                 IsSubset(s.attrs, m)) {
        // I2: coarse histogram from a finer one.
        CssEntry e;
        e.rule = RuleId::kI2;
        e.target = s;
        e.inputs = {StatKey{StatKind::kHist, s.rels, s.stage, m, 0, 0}};
        catalog->AddCss(std::move(e));
      } else if (s.kind == StatKind::kDistinct && s.attrs == m) {
        // D1: |a_T| is the bucket count of H_T^a.
        CssEntry e;
        e.rule = RuleId::kD1;
        e.target = s;
        e.inputs = {StatKey{StatKind::kHist, s.rels, s.stage, m, 0, 0}};
        catalog->AddCss(std::move(e));
      }
    }
  }
}

}  // namespace etlopt
