#include "datagen/workload_suite.h"

#include <algorithm>

#include "etl/transforms.h"
#include "etl/workflow_builder.h"

namespace etlopt {
namespace {

// Small construction helper shared by the 30 workflow builders: declares
// attributes, emits Source nodes, and records the matching TableSpecs.
class Factory {
 public:
  explicit Factory(const std::string& name) : b_(name) {}

  AttrId A(const std::string& name, int64_t domain) {
    return b_.DeclareAttr(name, domain);
  }

  // A dimension table: sequential surrogate key + Zipf payload columns.
  NodeId Dim(const std::string& name, int64_t rows, AttrId key,
             std::vector<AttrId> payload = {}) {
    TableSpec t;
    t.name = name;
    t.rows = rows;
    t.columns.push_back(ColumnSpec{key, ColumnGen::kSequential, 0.0, 0, 0.0, {}});
    std::vector<AttrId> attrs{key};
    for (AttrId p : payload) {
      t.columns.push_back(ColumnSpec{p, ColumnGen::kZipf, 1.2, 0, 0.0, {}});
      attrs.push_back(p);
    }
    tables_.push_back(std::move(t));
    return b_.Source(name, std::move(attrs));
  }

  struct Fk {
    AttrId attr = kInvalidAttr;
    int64_t dim_rows = 0;  // referenced dimension's row count (match range)
    double miss = 0.0;
    double skew = 1.2;
  };

  // A fact table: Zipf-skewed foreign keys + Zipf payload columns.
  NodeId Fact(const std::string& name, int64_t rows, std::vector<Fk> fks,
              std::vector<AttrId> payload = {}) {
    TableSpec t;
    t.name = name;
    t.rows = rows;
    std::vector<AttrId> attrs;
    for (const Fk& fk : fks) {
      t.columns.push_back(ColumnSpec{fk.attr, ColumnGen::kFkZipf, fk.skew,
                                     fk.dim_rows, fk.miss, {}});
      attrs.push_back(fk.attr);
    }
    for (AttrId p : payload) {
      t.columns.push_back(ColumnSpec{p, ColumnGen::kZipf, 1.2, 0, 0.0, {}});
      attrs.push_back(p);
    }
    tables_.push_back(std::move(t));
    return b_.Source(name, std::move(attrs));
  }

  // A table whose key columns are all plain Zipf draws over their domains
  // (chain topologies: matches arise from the shared domain).
  NodeId Zipfy(const std::string& name, int64_t rows,
               std::vector<AttrId> key_attrs, double skew = 1.1) {
    TableSpec t;
    t.name = name;
    t.rows = rows;
    for (AttrId a : key_attrs) {
      t.columns.push_back(ColumnSpec{a, ColumnGen::kZipf, skew, 0, 0.0, {}});
    }
    tables_.push_back(std::move(t));
    return b_.Source(name, std::move(key_attrs));
  }

  WorkflowBuilder& wb() { return b_; }

  WorkloadSpec Finish(const std::string& name, NodeId out,
                      const std::string& target) {
    b_.Sink(out, target);
    Result<Workflow> wf = std::move(b_).Build();
    ETLOPT_CHECK_MSG(wf.ok(), wf.status().ToString());
    WorkloadSpec spec;
    spec.name = name;
    spec.workflow = std::move(wf).value();
    spec.tables = std::move(tables_);
    return spec;
  }

 private:
  WorkflowBuilder b_;
  std::vector<TableSpec> tables_;
};

using transforms::BucketizeBy10;
using transforms::Standardize;

// ---- generic topologies ---------------------------------------------------

// A star join: fact + dims, one join attribute per dimension; the designed
// plan joins dimensions left-deep in the given order.
WorkloadSpec MakeStar(const std::string& name, int64_t fact_rows,
                      const std::vector<int64_t>& dim_rows,
                      const std::vector<int64_t>& key_domains,
                      bool fk_lookups = false, int transforms = 0,
                      bool dim_filters = false) {
  ETLOPT_CHECK(dim_rows.size() == key_domains.size());
  Factory f(name);
  const int n = static_cast<int>(dim_rows.size());
  std::vector<AttrId> keys;
  std::vector<Factory::Fk> fks;
  for (int i = 0; i < n; ++i) {
    const AttrId key = f.A(name + "_k" + std::to_string(i),
                           key_domains[static_cast<size_t>(i)]);
    keys.push_back(key);
    fks.push_back(
        Factory::Fk{key, dim_rows[static_cast<size_t>(i)], 0.0, 1.2});
  }
  const AttrId payload = f.A(name + "_amount", 9973);
  NodeId flow = f.Fact("Fact" + name, fact_rows, fks, {payload});
  for (int t = 0; t < transforms; ++t) {
    flow = f.wb().Transform(flow, payload, Standardize);
  }
  for (int i = 0; i < n; ++i) {
    const AttrId cat = f.A(name + "_d" + std::to_string(i) + "_cat", 211);
    NodeId dim =
        f.Dim("Dim" + name + std::to_string(i),
              dim_rows[static_cast<size_t>(i)], keys[static_cast<size_t>(i)],
              {cat});
    if (dim_filters) {
      dim = f.wb().Filter(dim, Predicate{cat, CompareOp::kLe, 180});
    }
    JoinOptions opts;
    // A filtered dimension can drop matches, so the FK shortcut would be
    // unsound there.
    opts.fk_lookup = fk_lookups && !dim_filters;
    flow = f.wb().Join(flow, dim, keys[static_cast<size_t>(i)], opts);
  }
  return f.Finish(name, flow, "warehouse." + name);
}

// A chain join R0 - R1 - ... - R(n-1); key i links Ri and R(i+1). All key
// columns are Zipf draws over the shared domain.
WorkloadSpec MakeChain(const std::string& name,
                       const std::vector<int64_t>& rows,
                       const std::vector<int64_t>& key_domains,
                       bool filters = false) {
  ETLOPT_CHECK(rows.size() == key_domains.size() + 1);
  Factory f(name);
  const int n = static_cast<int>(rows.size());
  std::vector<AttrId> keys;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    keys.push_back(f.A(name + "_k" + std::to_string(i), key_domains[i]));
  }
  auto table = [&](int i) {
    std::vector<AttrId> cols;
    if (i > 0) cols.push_back(keys[static_cast<size_t>(i - 1)]);
    if (i + 1 < n) cols.push_back(keys[static_cast<size_t>(i)]);
    NodeId node = f.Zipfy(name + "_R" + std::to_string(i),
                          rows[static_cast<size_t>(i)], cols);
    if (filters && i > 0) {
      const AttrId a = keys[static_cast<size_t>(i - 1)];
      const Value cut =
          (key_domains[static_cast<size_t>(i - 1)] * 3) / 5 + 1;
      node = f.wb().Filter(node, Predicate{a, CompareOp::kLe, cut});
    }
    return node;
  };
  NodeId flow = table(0);
  for (int i = 1; i < n; ++i) {
    flow = f.wb().Join(flow, table(i), keys[static_cast<size_t>(i - 1)]);
  }
  return f.Finish(name, flow, "warehouse." + name);
}

// A snowflake: fact at the center, each arm a chain hanging off it.
// arm_rows[a] lists the row counts along arm a (nearest table first);
// arm_domains[a] the key domains (first connects fact to the arm). All key
// columns are Zipf draws over their shared domains except the arm-end
// tables, which are dimensions with sequential keys (rows <= domain).
WorkloadSpec MakeSnowflake(const std::string& name, int64_t fact_rows,
                           const std::vector<std::vector<int64_t>>& arm_rows,
                           const std::vector<std::vector<int64_t>>& arm_domains) {
  ETLOPT_CHECK(arm_rows.size() == arm_domains.size());
  Factory f(name);
  // Declare all keys first.
  std::vector<std::vector<AttrId>> keys(arm_rows.size());
  std::vector<AttrId> fact_keys;
  for (size_t a = 0; a < arm_rows.size(); ++a) {
    ETLOPT_CHECK(arm_rows[a].size() == arm_domains[a].size());
    for (size_t i = 0; i < arm_domains[a].size(); ++i) {
      keys[a].push_back(f.A(name + "_a" + std::to_string(a) + "k" +
                                std::to_string(i),
                            arm_domains[a][i]));
    }
    fact_keys.push_back(keys[a][0]);
  }
  NodeId flow = f.Zipfy("Fact" + name, fact_rows, fact_keys, 1.2);
  for (size_t a = 0; a < arm_rows.size(); ++a) {
    for (size_t i = 0; i < arm_rows[a].size(); ++i) {
      NodeId t;
      if (i + 1 < arm_rows[a].size()) {
        t = f.Zipfy(name + "_A" + std::to_string(a) + "T" + std::to_string(i),
                    arm_rows[a][i], {keys[a][i], keys[a][i + 1]});
      } else {
        t = f.Dim(name + "_A" + std::to_string(a) + "T" + std::to_string(i),
                  arm_rows[a][i], keys[a][i]);
      }
      flow = f.wb().Join(flow, t, keys[a][i]);
    }
  }
  return f.Finish(name, flow, "warehouse." + name);
}

// ---- bespoke workflows -----------------------------------------------------

// wf1: linear cleansing flow — one source, no joins, one plan.
WorkloadSpec MakeWf01() {
  Factory f("ProspectCleanse");
  const AttrId pid = f.A("prospect_id", 60000);
  const AttrId state = f.A("state_code", 102);
  const AttrId income = f.A("income_band", 977);
  NodeId flow = f.Zipfy("Prospect", 52234, {pid, state, income});
  flow = f.wb().Filter(flow, Predicate{state, CompareOp::kLe, 50});
  flow = f.wb().Transform(flow, income, BucketizeBy10);
  flow = f.wb().Project(flow, {pid, state, income});
  return f.Finish("ProspectCleanse", flow, "warehouse.prospect");
}

// wf2: linear flow with a group-by (G rules inside a chain).
WorkloadSpec MakeWf02() {
  Factory f("CashTxnDaily");
  const AttrId account = f.A("account_sk", 35000);
  const AttrId date = f.A("date_sk", 3650);
  const AttrId amount = f.A("amount_band", 4999);
  NodeId flow = f.Zipfy("CashTransaction", 104466, {account, date, amount});
  flow = f.wb().Filter(flow, Predicate{amount, CompareOp::kGt, 10});
  flow = f.wb().Aggregate(flow, {account, date});
  return f.Finish("CashTxnDaily", flow, "warehouse.cash_daily");
}

// wf9: group-by inside a chain feeding a join with a date dimension.
WorkloadSpec MakeWf09() {
  Factory f("TradeTypeAgg");
  const AttrId ttype = f.A("trade_type", 102);
  const AttrId date = f.A("date_sk", 14960);
  const AttrId qty = f.A("quantity_band", 1499);
  NodeId trades = f.Zipfy("Trade", 88000, {ttype, date, qty});
  trades = f.wb().Filter(trades, Predicate{qty, CompareOp::kGt, 3});
  trades = f.wb().Aggregate(trades, {ttype, date});
  const NodeId dim_date = f.Dim("DimDate", 14600, date);
  const NodeId joined = f.wb().Join(trades, dim_date, date);
  return f.Finish("TradeTypeAgg", joined, "warehouse.trade_type_daily");
}

// wf10: derived join attribute over a join result — the Fig. 3 boundary.
WorkloadSpec MakeWf10() {
  Factory f("DerivedKeyLoad");
  const AttrId cust = f.A("customer_sk", 26000);
  const AttrId tier_raw = f.A("tier_raw", 4021);
  const AttrId tier = f.A("tier_sk", 403);
  NodeId fact = f.Fact("FactAccounts", 93000,
                       {Factory::Fk{cust, 24000, 0.01, 1.3}}, {tier_raw});
  const NodeId dim_cust = f.Dim("DimCustomer", 24000, cust);
  NodeId joined = f.wb().Join(fact, dim_cust, cust);
  // The derived attribute comes from a multi-relation intermediate and is
  // used as the next join's key: block boundary (B2 in Fig. 3).
  joined = f.wb().DeriveAttr(joined, tier_raw, tier, BucketizeBy10);
  const NodeId dim_tier = f.Dim("DimTier", 400, tier);
  const NodeId final_join = f.wb().Join(joined, dim_tier, tier);
  return f.Finish("DerivedKeyLoad", final_join, "warehouse.accounts");
}

// wf11: designed reject link — diagnostics pattern, pinned join.
WorkloadSpec MakeWf11() {
  Factory f("RejectDiagnostics");
  const AttrId acct = f.A("account_sk", 40000);
  const AttrId broker = f.A("broker_sk", 1202);
  NodeId fact = f.Fact("FactHoldings", 125000,
                       {Factory::Fk{acct, 36000, 0.05, 1.2},
                        Factory::Fk{broker, 1100, 0.0, 1.2}});
  const NodeId dim_acct = f.Dim("DimAccount", 36000, acct);
  JoinOptions reject;
  reject.reject_link = true;
  NodeId joined = f.wb().Join(fact, dim_acct, acct, reject);
  const NodeId dim_broker = f.Dim("DimBroker", 1100, broker);
  joined = f.wb().Join(joined, dim_broker, broker);
  return f.Finish("RejectDiagnostics", joined, "warehouse.holdings");
}

// wf17: black-box aggregate UDF boundary between two joins.
WorkloadSpec MakeWf17() {
  Factory f("AggUdfBoundary");
  const AttrId sec = f.A("security_sk", 6850);
  const AttrId comp = f.A("company_sk", 2534);
  NodeId fact = f.Fact("FactMarket", 156702,
                       {Factory::Fk{sec, 6400, 0.0, 1.2},
                        Factory::Fk{comp, 2400, 0.0, 1.2}});
  const NodeId dim_sec = f.Dim("DimSecurity", 6400, sec);
  NodeId joined = f.wb().Join(fact, dim_sec, sec);
  // Black-box aggregate UDF: boundary; the next join lives in a new block.
  joined = f.wb().AggregateUdf(joined, comp, BucketizeBy10);
  const NodeId dim_comp = f.Dim("DimCompany", 2400 / 10 + 1, comp);
  joined = f.wb().Join(joined, dim_comp, comp);
  return f.Finish("AggUdfBoundary", joined, "warehouse.market");
}

// wf20: two facts sharing a dimension (chain topology f1 - d - f2).
WorkloadSpec MakeWf20() {
  Factory f("CustomerTradeBalance");
  const AttrId cust = f.A("customer_sk", 30000);
  NodeId f1 = f.Fact("FactTrades", 210000, {Factory::Fk{cust, 28000, 0.0, 1.4}});
  const NodeId dim = f.Dim("DimCustomer", 28000, cust);
  NodeId f2 = f.Fact("FactBalances", 97000, {Factory::Fk{cust, 28000, 0.0, 1.1}});
  NodeId joined = f.wb().Join(f1, dim, cust);
  joined = f.wb().Join(joined, f2, cust);
  return f.Finish("CustomerTradeBalance", joined, "warehouse.cust_trades");
}

// wf27: a chain group-by feeding a 3-way star.
WorkloadSpec MakeWf27() {
  Factory f("DailyPositions");
  const AttrId acct = f.A("account_sk", 21000);
  const AttrId date = f.A("date_sk", 3650);
  const AttrId sec = f.A("security_sk", 5107);
  NodeId fact = f.Zipfy("PositionEvents", 301000, {acct, date, sec});
  fact = f.wb().Aggregate(fact, {acct, date, sec});
  const NodeId dim_a = f.Dim("DimAccount", 19000, acct);
  const NodeId dim_d = f.Dim("DimDate", 3600, date);
  NodeId joined = f.wb().Join(fact, dim_a, acct);
  joined = f.wb().Join(joined, dim_d, date);
  return f.Finish("DailyPositions", joined, "warehouse.positions");
}

// wf28: materialized staging output in the middle of the flow.
WorkloadSpec MakeWf28() {
  Factory f("StagedLoad");
  const AttrId sec = f.A("security_sk", 9200);
  const AttrId ex = f.A("exchange_sk", 505);
  NodeId fact = f.Fact("FactQuotes", 188000,
                       {Factory::Fk{sec, 8800, 0.0, 1.2},
                        Factory::Fk{ex, 480, 0.0, 1.2}});
  const NodeId dim_sec = f.Dim("DimSecurity", 8800, sec);
  NodeId joined = f.wb().Join(fact, dim_sec, sec);
  joined = f.wb().Materialize(joined, "staging.quotes");
  const NodeId dim_ex = f.Dim("DimExchange", 480, ex);
  joined = f.wb().Join(joined, dim_ex, ex);
  return f.Finish("StagedLoad", joined, "warehouse.quotes");
}

// wf29: a reorderable 3-way block on top of a pinned reject-link join.
WorkloadSpec MakeWf29() {
  Factory f("WatchItemLoad");
  const AttrId cust = f.A("customer_sk", 33000);
  const AttrId sec = f.A("security_sk", 7019);
  const AttrId date = f.A("date_sk", 3650);
  NodeId fact = f.Fact("FactWatches", 143000,
                       {Factory::Fk{cust, 30000, 0.05, 1.2},
                        Factory::Fk{sec, 6600, 0.0, 1.2},
                        Factory::Fk{date, 3600, 0.0, 1.1}});
  const NodeId dim_cust = f.Dim("DimCustomer", 30000, cust);
  JoinOptions reject;
  reject.reject_link = true;
  NodeId joined = f.wb().Join(fact, dim_cust, cust, reject);  // pinned
  const NodeId dim_sec = f.Dim("DimSecurity", 6600, sec);
  const NodeId dim_date = f.Dim("DimDate", 3600, date);
  joined = f.wb().Join(joined, dim_sec, sec);
  joined = f.wb().Join(joined, dim_date, date);
  return f.Finish("WatchItemLoad", joined, "warehouse.watches");
}

}  // namespace

WorkloadSpec BuildWorkload(int index) {
  switch (index) {
    case 1:
      return MakeWf01();
    case 2:
      return MakeWf02();
    case 3:
      // Union-division anchor: the Security key has a huge domain; the date
      // key a small one; the designed plan joins Date first, so |fact ⋈
      // Security| is only reachable via the expensive Security histograms —
      // unless union-division exploits the full result (Fig. 11, wf3).
      return MakeStar("TradeEnrich", 417874, {14600, 400000},
                      {14960, 905598});
    case 4:
      return MakeStar("CustomerAccount", 64000, {26000}, {28001}, true);
    case 5:
      return MakeStar("Holdings4", 131072, {800, 600, 480}, {811, 613, 487},
                      false, 0, true);
    case 6:
      return MakeChain("WatchChain3", {52234, 77000, 41000}, {1021, 757});
    case 7:
      return MakeChain("SecurityCompany", {6400, 24000, 98000}, {853, 997},
                       true);
    case 8:
      return MakeSnowflake("MarketHistory5", 240007,
                           {{5100, 540}, {3600, 690}},
                           {{751, 547}, {653, 701}});
    case 9:
      return MakeWf09();
    case 10:
      return MakeWf10();
    case 11:
      return MakeWf11();
    case 12:
      return MakeSnowflake("Snowflake5", 175000, {{21000, 540}, {9000, 290}},
                           {{997, 550}, {811, 301}});
    case 13:
      return MakeSnowflake("Snowflake6", 201000,
                           {{15000, 8800, 590}, {2100, 890}},
                           {{997, 607, 601}, {757, 901}});
    case 14:
      return MakeChain("Chain4Filters", {33000, 87000, 54000, 23000},
                       {1001, 499, 673}, true);
    case 15:
      return MakeStar("BigDim2", 386000, {212000}, {220009});
    case 16:
      // Memory anchor (~70,000 units): 5-table chain with ~150-value keys —
      // chain SEs only ever need pairs of adjacent-key histograms.
      return MakeChain("ChainMem70k", {8300, 52000, 150077, 38000, 8000},
                       {181, 179, 191, 173});
    case 17:
      return MakeWf17();
    case 18:
      return MakeChain("Chain5", {12000, 45000, 150000, 38000, 9000},
                       {601, 701, 547, 881});
    case 19:
      // Deliberately memory-hungry: a true 7-way star with distinct keys
      // needs high-arity fact histograms — the over-the-memory-limit case
      // of Section 7.2, resolved by budgeted selection (Section 6.1).
      return MakeStar("Star7", 310000, {320, 290, 250, 220, 175, 100},
                      {331, 293, 257, 223, 181, 102}, false, 1);
    case 20:
      return MakeWf20();
    case 21:
      // Complexity anchor: 8-way join with multiple transformations
      // (Figure 12: minimum 41 executions). Like wf19, its full statistics
      // set exceeds any realistic memory budget — the paper handles exactly
      // this workflow through repeated executions (Section 7.3).
      return MakeStar("Grand8", 417000, {490, 440, 390, 350, 300, 260, 100},
                      {499, 443, 397, 353, 307, 263, 102}, false, 2);
    case 22:
      return MakeStar("Star3Tiny", 18000, {3400, 1700}, {3671, 1801});
    case 23:
      // Union-division generated but not chosen: the direct histograms on
      // the second key (2x1720 units) beat the union-division route through
      // the first key (2x3475+1 = 6951 units) — the paper's wf23 anchor
      // (3444 vs 6951 units, "almost twice as costly").
      return MakeChain("ChainSmallDoms", {3342, 5000, 8000}, {3475, 1720});
    case 24:
      return MakeStar("FilterHeavy3", 96000, {12000, 6000}, {12301, 6101},
                      false, 0, true);
    case 25:
      return MakeStar("FkLookupStar4", 264000, {31000, 12000, 3600},
                      {31013, 12007, 3650}, true);
    case 26:
      return MakeChain("Chain6", {8000, 26000, 64000, 52000, 17000, 4200},
                       {607, 503, 411, 299, 433});
    case 27:
      return MakeWf27();
    case 28:
      return MakeWf28();
    case 29:
      return MakeWf29();
    case 30:
      // Executions anchor: 6-way star (minimum 14 executions, Figure 12;
      // the paper found a cover with 18).
      return MakeStar("Star6Exec", 265000, {1200, 900, 700, 490, 300},
                      {1201, 907, 701, 499, 301});
    default:
      ETLOPT_CHECK_MSG(false, "workload index must be 1..30");
  }
  ETLOPT_CHECK(false);
  return MakeWf01();  // unreachable
}

std::vector<WorkloadSpec> BuildSuite() {
  std::vector<WorkloadSpec> suite;
  suite.reserve(30);
  for (int i = 1; i <= 30; ++i) suite.push_back(BuildWorkload(i));
  return suite;
}

SourceMap GenerateSources(const WorkloadSpec& spec, uint64_t seed,
                          double row_scale) {
  SourceMap sources;
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  for (const TableSpec& table : spec.tables) {
    sources[table.name] =
        GenerateTable(spec.workflow.catalog(), table, rng, row_scale);
  }
  return sources;
}

DataCharacteristics SummarizeSuiteData(uint64_t seed, double row_scale) {
  std::vector<int64_t> cards;
  std::vector<int64_t> uvs;
  for (int i = 1; i <= 30; ++i) {
    const WorkloadSpec spec = BuildWorkload(i);
    const SourceMap sources = GenerateSources(spec, seed + i, row_scale);
    for (const auto& [name, table] : sources) {
      (void)name;
      cards.push_back(table.num_rows());
      for (AttrId a : table.schema().attrs()) {
        uvs.push_back(table.CountDistinct(AttrMask{1} << a));
      }
    }
  }
  auto median = [](std::vector<int64_t>& v) {
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 == 1 ? static_cast<double>(v[n / 2])
                      : (static_cast<double>(v[n / 2 - 1]) +
                         static_cast<double>(v[n / 2])) /
                            2.0;
  };
  DataCharacteristics out;
  out.num_tables = static_cast<int>(cards.size());
  out.num_columns = static_cast<int>(uvs.size());
  out.card_median = median(cards);
  out.uv_median = median(uvs);
  out.card_max = cards.back();
  out.card_min = cards.front();
  out.uv_max = uvs.back();
  out.uv_min = uvs.front();
  double sum = 0.0;
  for (int64_t c : cards) sum += static_cast<double>(c);
  out.card_mean = sum / static_cast<double>(cards.size());
  sum = 0.0;
  for (int64_t u : uvs) sum += static_cast<double>(u);
  out.uv_mean = sum / static_cast<double>(uvs.size());
  return out;
}

}  // namespace etlopt
