// Tests for the partitioned parallel executor (engine/parallel/): the
// worker pool's error contract, deterministic hash/range partitioning,
// bit-identical serial-vs-parallel execution and observed statistics,
// mergeable per-partition sketch taps, and partition-scoped crash salvage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/instrumentation.h"
#include "engine/parallel/parallel_executor.h"
#include "engine/parallel/partition.h"
#include "obs/checkpoint.h"
#include "obs/ledger.h"
#include "sketch/tap.h"
#include "stats/stat_io.h"
#include "test_util.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace etlopt {
namespace {

using fault::FaultInjector;
using parallel::HashPartition;
using parallel::HashPartitionIndex;
using parallel::ParallelExecutor;
using parallel::ParallelOptions;
using parallel::ParallelResult;
using parallel::PartitionSkew;
using parallel::RangePartition;
using parallel::TablePartitions;

std::string TempPath(const std::string& name) {
  // Pid-qualified so the sanitizer twin of this suite can run under the
  // same ctest invocation without clobbering this process's files.
  const std::string path =
      ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

// ---- worker pool -------------------------------------------------------

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(64);
  const Status s = pool.ParallelFor(64, [&](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, LowestFailingIndexWins) {
  ThreadPool pool(4);
  const Status s = pool.ParallelFor(16, [&](int i) {
    if (i == 11 || i == 5 || i == 13) {
      return Status::Internal("task " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("task 5"), std::string::npos) << s.ToString();
}

TEST(ThreadPoolTest, ThrownExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  const Status s = pool.ParallelFor(4, [&](int i) -> Status {
    if (i == 2) throw std::runtime_error("boom");
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, PoolIsReusableAndHandlesEmptyRounds) {
  ThreadPool pool(3);
  ASSERT_TRUE(pool.ParallelFor(0, [](int) { return Status::OK(); }).ok());
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    ASSERT_TRUE(pool.ParallelFor(10, [&](int) {
      count.fetch_add(1);
      return Status::OK();
    }).ok());
    EXPECT_EQ(count.load(), 10);
  }
}

// ---- partitioning ------------------------------------------------------

TEST(PartitionTest, HashPlacementIsDeterministicAndComplete) {
  Schema schema({0, 1});
  Table t{schema};
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    t.AddRow({rng.NextInRange(1, 40), rng.NextInRange(1, 9)});
  }
  const TablePartitions parts = HashPartition(t, 0, 4);
  ASSERT_EQ(parts.num_partitions(), 4);
  EXPECT_EQ(parts.total_rows(), t.num_rows());

  // Every original row lands in exactly one slice, in a slot that agrees
  // with the pure value hash, preserving in-slice order.
  std::set<int64_t> seen;
  for (int p = 0; p < 4; ++p) {
    ASSERT_EQ(parts.parts[p].num_rows(),
              static_cast<int64_t>(parts.row_index[p].size()));
    int64_t prev = -1;
    for (size_t i = 0; i < parts.row_index[p].size(); ++i) {
      const int64_t orig = parts.row_index[p][i];
      EXPECT_TRUE(seen.insert(orig).second);
      EXPECT_GT(orig, prev);  // in-slice order = original order
      prev = orig;
      EXPECT_EQ(parts.parts[p].row(static_cast<int64_t>(i)), t.row(orig));
      EXPECT_EQ(HashPartitionIndex(t.at(orig, 0), 4), p);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(t.num_rows()));

  // Same table, same fan-out: identical placement on a repeat run.
  const TablePartitions again = HashPartition(t, 0, 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(parts.row_index[p], again.row_index[p]);
  }
}

TEST(PartitionTest, RangePartitionControlsSkewDirectly) {
  Schema schema({0});
  Table t{schema};
  for (int i = 1; i <= 100; ++i) t.AddRow({i});
  // Bounds {90, 95, 98}: slice 0 gets 90 rows, the rest split the tail.
  const TablePartitions parts = RangePartition(t, 0, {90, 95, 98});
  ASSERT_EQ(parts.num_partitions(), 4);
  EXPECT_EQ(parts.parts[0].num_rows(), 90);
  EXPECT_EQ(parts.parts[1].num_rows(), 5);
  EXPECT_EQ(parts.parts[2].num_rows(), 3);
  EXPECT_EQ(parts.parts[3].num_rows(), 2);
  // skew = max/mean = 90 / 25.
  EXPECT_DOUBLE_EQ(PartitionSkew(parts), 90.0 / 25.0);
}

// ---- serial vs parallel equivalence ------------------------------------

void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  ASSERT_EQ(a.schema().mask(), b.schema().mask()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  EXPECT_EQ(a.MaterializeRows(), b.MaterializeRows())
      << what << ": row content or order differs";
}

// Bit-identical equivalence of everything downstream consumers read:
// cached node outputs, join rejects (both sides), targets, and the row /
// byte accounting the plan-cost comparison uses.
void ExpectExecutionsIdentical(const ExecutionResult& serial,
                               const ExecutionResult& par) {
  ASSERT_EQ(serial.node_outputs.size(), par.node_outputs.size());
  for (const auto& [id, table] : serial.node_outputs) {
    const auto it = par.node_outputs.find(id);
    ASSERT_NE(it, par.node_outputs.end()) << "node " << id;
    ExpectTablesIdentical(table, it->second, "node " + std::to_string(id));
  }
  ASSERT_EQ(serial.join_rejects.size(), par.join_rejects.size());
  for (const auto& [id, table] : serial.join_rejects) {
    ExpectTablesIdentical(table, par.join_rejects.at(id),
                          "rejects of join " + std::to_string(id));
  }
  ASSERT_EQ(serial.join_rejects_right.size(), par.join_rejects_right.size());
  for (const auto& [id, table] : serial.join_rejects_right) {
    ExpectTablesIdentical(table, par.join_rejects_right.at(id),
                          "right rejects of join " + std::to_string(id));
  }
  ASSERT_EQ(serial.targets.size(), par.targets.size());
  for (const auto& [name, table] : serial.targets) {
    ExpectTablesIdentical(table, par.targets.at(name), "target " + name);
  }
  EXPECT_EQ(serial.rows_processed, par.rows_processed);
  EXPECT_EQ(serial.bytes_processed, par.bytes_processed);
}

TEST(ParallelExecutorTest, PaperExampleBitIdenticalAcrossWorkerCounts) {
  auto ex = testing_util::MakePaperExample();
  const ExecutionResult serial =
      Executor(&ex.workflow).Execute(ex.sources).value();
  for (int threads : {2, 3, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelOptions opts;
    opts.num_threads = threads;
    const ParallelResult par =
        ParallelExecutor(&ex.workflow, opts).Execute(ex.sources).value();
    EXPECT_TRUE(par.used_parallel_path);
    EXPECT_EQ(par.exec.num_workers, threads);
    EXPECT_GT(par.exec.partitions_total, 0);
    ExpectExecutionsIdentical(serial, par.exec);
  }
}

TEST(ParallelExecutorTest, FilterTransformChainBitIdentical) {
  WorkflowBuilder b("chain");
  const AttrId k = b.DeclareAttr("k", 60);
  const AttrId v = b.DeclareAttr("v", 20);
  const NodeId src = b.Source("Fact", {k, v});
  const NodeId dim = b.Source("Dim", {k});
  const NodeId f = b.Filter(src, {v, CompareOp::kLt, 15});
  const NodeId t = b.Transform(f, v, [](Value x) { return x * 2 + 1; });
  const NodeId j = b.Join(t, dim, k, {/*reject_link=*/true});
  const NodeId p = b.Project(j, {k});
  b.Sink(p, "out");
  Workflow wf = std::move(b).Build().value();

  Rng rng(3);
  SourceMap sources;
  Table fact{Schema({k, v})};
  for (int i = 0; i < 1000; ++i) {
    fact.AddRow({rng.NextInRange(1, 60), rng.NextInRange(1, 20)});
  }
  Table dim_t{Schema({k})};
  for (int i = 0; i < 45; ++i) dim_t.AddRow({rng.NextInRange(1, 60)});
  sources["Fact"] = std::move(fact);
  sources["Dim"] = std::move(dim_t);

  const ExecutionResult serial = Executor(&wf).Execute(sources).value();
  ParallelOptions opts;
  opts.num_threads = 4;
  const ParallelResult par =
      ParallelExecutor(&wf, opts).Execute(sources).value();
  EXPECT_TRUE(par.used_parallel_path);
  ExpectExecutionsIdentical(serial, par.exec);
}

TEST(ParallelExecutorTest, AggregateGathersAndStaysBitIdentical) {
  WorkflowBuilder b("agg");
  const AttrId k = b.DeclareAttr("k", 30);
  const AttrId g = b.DeclareAttr("g", 8);
  const NodeId src = b.Source("Fact", {k, g});
  const NodeId dim = b.Source("Dim", {k});
  const NodeId j = b.Join(src, dim, k);
  const NodeId a = b.Aggregate(j, {g});
  b.Sink(a, "agg_out");
  Workflow wf = std::move(b).Build().value();

  Rng rng(11);
  SourceMap sources;
  Table fact{Schema({k, g})};
  for (int i = 0; i < 600; ++i) {
    fact.AddRow({rng.NextInRange(1, 30), rng.NextInRange(1, 8)});
  }
  Table dim_t{Schema({k})};
  for (int i = 0; i < 25; ++i) dim_t.AddRow({rng.NextInRange(1, 30)});
  sources["Fact"] = std::move(fact);
  sources["Dim"] = std::move(dim_t);

  const ExecutionResult serial = Executor(&wf).Execute(sources).value();
  ParallelOptions opts;
  opts.num_threads = 4;
  const ParallelResult par =
      ParallelExecutor(&wf, opts).Execute(sources).value();
  EXPECT_TRUE(par.used_parallel_path);
  ExpectExecutionsIdentical(serial, par.exec);
}

TEST(ParallelExecutorTest, SortMergeJoinWorkflowFallsBackToSerial) {
  // Sort-merge joins never partition (their row order is the sorted one);
  // a workflow where that's the only candidate chain runs serially.
  WorkflowBuilder b("sm");
  const AttrId k = b.DeclareAttr("k", 10);
  const NodeId l = b.Source("L", {k});
  const NodeId r = b.Source("R", {k});
  const NodeId j = b.Join(l, r, k);
  b.SetJoinAlgorithm(j, JoinAlgorithm::kSortMerge);
  b.Sink(j, "out");
  Workflow wf = std::move(b).Build().value();

  SourceMap sources;
  Table lt{Schema({k})};
  Table rt{Schema({k})};
  for (int i = 0; i < 50; ++i) {
    lt.AddRow({(i % 10) + 1});
    rt.AddRow({(i % 7) + 1});
  }
  sources["L"] = std::move(lt);
  sources["R"] = std::move(rt);

  const ExecutionResult serial = Executor(&wf).Execute(sources).value();
  ParallelOptions opts;
  opts.num_threads = 4;
  const ParallelResult par =
      ParallelExecutor(&wf, opts).Execute(sources).value();
  ExpectExecutionsIdentical(serial, par.exec);
}

TEST(ParallelExecutorTest, RepeatedRunsWithPinnedPartitionsAreIdentical) {
  auto ex = testing_util::MakePaperExample();
  ParallelOptions opts;
  opts.num_threads = 4;
  opts.num_partitions = 8;
  ThreadPool pool(4);
  const ParallelExecutor exec(&ex.workflow, opts);
  const ParallelResult first = exec.Execute(ex.sources, &pool).value();
  const ParallelResult second = exec.Execute(ex.sources, &pool).value();
  ASSERT_TRUE(first.used_parallel_path);
  ASSERT_TRUE(second.used_parallel_path);
  EXPECT_EQ(first.exec.partitions_total, 8);
  EXPECT_EQ(first.partition_attr, second.partition_attr);
  EXPECT_EQ(first.exec.partition_rows, second.exec.partition_rows);
  ExpectExecutionsIdentical(first.exec, second.exec);
  // And both match the serial run.
  const ExecutionResult serial =
      Executor(&ex.workflow).Execute(ex.sources).value();
  ExpectExecutionsIdentical(serial, first.exec);
}

// ---- observed statistics through the pipeline --------------------------

std::vector<std::string> BlockStatsText(const RunOutcome& run) {
  std::vector<std::string> text;
  for (const StatStore& store : run.block_stats) {
    text.push_back(WriteStatStoreText(store));
  }
  return text;
}

TEST(ParallelPipelineTest, ObservedStatisticsBitIdenticalToSerial) {
  auto ex = testing_util::MakePaperExample();

  Pipeline serial;
  const CycleOutcome sc = serial.RunCycle(ex.workflow, ex.sources).value();

  PipelineOptions popts;
  popts.num_threads = 4;
  Pipeline par(popts);
  const CycleOutcome pc = par.RunCycle(ex.workflow, ex.sources).value();

  EXPECT_EQ(pc.run.exec.num_workers, 4);
  EXPECT_GT(pc.run.exec.partitions_total, 0);
  // Exact taps: every observed statistic identical, down to the text codec.
  EXPECT_EQ(BlockStatsText(sc.run), BlockStatsText(pc.run));
  // Downstream consequences identical too: same estimates, same plan.
  EXPECT_EQ(sc.opt.optimized.ToString(), pc.opt.optimized.ToString());
  ASSERT_EQ(sc.opt.block_cards.size(), pc.opt.block_cards.size());
  for (size_t i = 0; i < sc.opt.block_cards.size(); ++i) {
    EXPECT_EQ(sc.opt.block_cards[i], pc.opt.block_cards[i]) << "block " << i;
  }
  for (const auto& [name, table] : sc.run.exec.targets) {
    ExpectTablesIdentical(table, pc.run.exec.targets.at(name),
                          "target " + name);
  }
}

TEST(ParallelPipelineTest, SketchTapsMergeToSingleStreamStatistics) {
  // A tiny tap budget forces distinct/hist taps onto sketches; the
  // partition-merged sketch state must equal the single-stream state, so
  // serial and parallel runs serialize the same approximate values.
  auto ex = testing_util::MakePaperExample(/*seed=*/7, /*orders=*/2000);
  PipelineOptions base;
  base.tap_memory_budget_bytes = 4096;

  Pipeline serial(base);
  const CycleOutcome sc = serial.RunCycle(ex.workflow, ex.sources).value();

  PipelineOptions popts = base;
  popts.num_threads = 4;
  Pipeline par(popts);
  const CycleOutcome pc = par.RunCycle(ex.workflow, ex.sources).value();

  EXPECT_GT(sc.run.tap_report.sketch_taps, 0);
  EXPECT_EQ(sc.run.tap_report.sketch_taps, pc.run.tap_report.sketch_taps);
  EXPECT_EQ(BlockStatsText(sc.run), BlockStatsText(pc.run));
}

// ---- mergeable sketch taps, directly -----------------------------------

TEST(SketchMergeTest, DistinctTapPartitionMergeEqualsSingleStream) {
  const sketch::TapSketchConfig config;
  sketch::DistinctTap whole(config);
  std::vector<sketch::DistinctTap> parts(4, sketch::DistinctTap(config));
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const std::vector<Value> key{rng.NextInRange(1, 5000)};
    whole.AddRow(key);
    parts[static_cast<size_t>(HashPartitionIndex(key[0], 4))].AddRow(key);
  }
  sketch::DistinctTap merged = parts[0];
  for (int p = 1; p < 4; ++p) ASSERT_TRUE(merged.Merge(parts[p]).ok());
  // HLL registers keep maxima, so the union is placement-insensitive:
  // merged state estimates identically to the single-stream tap.
  EXPECT_EQ(merged.Estimate(), whole.Estimate());
  EXPECT_EQ(merged.MemoryBytes(), whole.MemoryBytes());
}

TEST(SketchMergeTest, HistTapPartitionMergeEqualsSingleStream) {
  const sketch::TapSketchConfig config;
  sketch::HistTap whole(config, /*arity=*/1);
  std::vector<sketch::HistTap> parts(4, sketch::HistTap(config, 1));
  Rng rng(321);
  for (int i = 0; i < 20000; ++i) {
    const std::vector<Value> key{rng.NextInRange(1, 800)};
    whole.AddRow(key);
    parts[static_cast<size_t>(HashPartitionIndex(key[0], 4))].AddRow(key);
  }
  sketch::HistTap merged = parts[0];
  for (int p = 1; p < 4; ++p) ASSERT_TRUE(merged.Merge(parts[p]).ok());
  EXPECT_EQ(merged.rows_seen(), whole.rows_seen());
  const AttrMask attrs = AttrMask{1} << 0;
  EXPECT_TRUE(merged.Build(attrs) == whole.Build(attrs));
}

// ---- partition-scoped faults -------------------------------------------

class ParallelFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(FaultInjector::InstallGlobal("").ok()); }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::InstallGlobal("").ok());
  }
};

TEST_F(ParallelFaultTest, PartitionCrashSalvagesCompletedPartitions) {
  auto ex = testing_util::MakePaperExample();
  ASSERT_TRUE(FaultInjector::InstallGlobal("seed=17;partition:1:crash").ok());

  PipelineOptions popts;
  popts.num_threads = 4;
  popts.checkpoint_path = TempPath("parallel_crash.ckpt");
  popts.checkpoint_every_rows = 10;
  Pipeline pipeline(popts);
  const CycleOutcome cycle =
      pipeline.RunCycle(ex.workflow, ex.sources).value();
  ASSERT_TRUE(cycle.aborted());
  EXPECT_EQ(cycle.run.exec.abort_kind, AbortKind::kCrash);

  // Partition granularity: the other partitions were gathered into partial
  // node outputs, so completion sits strictly between "node lost" and
  // "node done".
  const ExecutionResult& exec = cycle.run.exec;
  EXPECT_EQ(exec.partitions_total, 4);
  EXPECT_EQ(exec.partitions_completed, 3);
  EXPECT_GT(exec.nodes_partial, 0);

  // The ledger record is partial, carries the thread count, and both
  // round-trip through the line codec.
  const obs::RunRecord record = MakeRunRecord(cycle, "run-1");
  EXPECT_TRUE(record.partial);
  EXPECT_LT(record.completion, 1.0);
  EXPECT_GT(record.completion, 0.0);
  EXPECT_EQ(record.num_threads, 4);
  const auto round = obs::RunRecord::FromJsonLine(record.ToJsonLine());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(round->partial);
  EXPECT_EQ(round->num_threads, 4);

  // The checkpoint sidecar keeps the per-partition salvage watermarks.
  const Result<obs::TapCheckpoint> ckpt =
      obs::LoadTapCheckpoint(popts.checkpoint_path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_TRUE(ckpt->partial);
  ASSERT_EQ(ckpt->partition_rows.size(), 4u);
  int64_t watermark_rows = 0;
  for (int64_t rows : ckpt->partition_rows) watermark_rows += rows;
  EXPECT_GT(watermark_rows, 0);
}

TEST_F(ParallelFaultTest, PartitionCrashIsDeterministic) {
  auto run_once = [] {
    EXPECT_TRUE(
        FaultInjector::InstallGlobal("seed=17;partition:2:crash").ok());
    auto ex = testing_util::MakePaperExample();
    PipelineOptions popts;
    popts.num_threads = 4;
    const CycleOutcome cycle =
        Pipeline(popts).RunCycle(ex.workflow, ex.sources).value();
    const obs::RunRecord record = MakeRunRecord(cycle, "run-1");
    return std::make_tuple(record.partial, record.completion,
                           record.abort_reason, record.cards.size());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_TRUE(std::get<0>(first));
  EXPECT_EQ(first, second);
}

TEST_F(ParallelFaultTest, SerialRunIgnoresPartitionScopedFaults) {
  auto ex = testing_util::MakePaperExample();
  ASSERT_TRUE(FaultInjector::InstallGlobal("seed=17;partition:1:crash").ok());
  Pipeline pipeline;  // num_threads = 1: no partitions exist to crash
  const CycleOutcome cycle =
      pipeline.RunCycle(ex.workflow, ex.sources).value();
  EXPECT_FALSE(cycle.aborted());
}

// ---- ledger codec ------------------------------------------------------

TEST(ParallelLedgerTest, NumThreadsSerializesOnlyWhenNotOne) {
  obs::RunRecord serial_record;
  serial_record.run_id = "run-1";
  serial_record.fingerprint = "feedfacefeedface";
  EXPECT_EQ(serial_record.ToJsonLine().find("num_threads"),
            std::string::npos);

  obs::RunRecord par_record = serial_record;
  par_record.num_threads = 4;
  const std::string line = par_record.ToJsonLine();
  EXPECT_NE(line.find("\"num_threads\":4"), std::string::npos) << line;
  const auto round = obs::RunRecord::FromJsonLine(line);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->num_threads, 4);
}

}  // namespace
}  // namespace etlopt
