#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/accuracy.h"
#include "util/string_util.h"

namespace etlopt {
namespace obs {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != value && std::isfinite(parsed)) ? parsed : fallback;
}

// Deterministic ordering for report output.
bool KeyLess(const StatKey& a, const StatKey& b) {
  return std::tie(a.kind, a.rels, a.stage, a.attrs, a.reject_left,
                  a.reject_k) < std::tie(b.kind, b.rels, b.stage, b.attrs,
                                         b.reject_left, b.reject_k);
}

}  // namespace

DriftOptions DriftOptions::FromEnv() {
  DriftOptions options;
  options.rel_change_threshold =
      EnvDouble("ETLOPT_DRIFT_REL_THRESHOLD", options.rel_change_threshold);
  options.qerror_threshold =
      EnvDouble("ETLOPT_DRIFT_QERROR_THRESHOLD", options.qerror_threshold);
  options.ewma_alpha = EnvDouble("ETLOPT_DRIFT_EWMA_ALPHA", options.ewma_alpha);
  options.sketch_widen_factor =
      EnvDouble("ETLOPT_DRIFT_SKETCH_WIDEN", options.sketch_widen_factor);
  options.partial_widen_factor =
      EnvDouble("ETLOPT_DRIFT_PARTIAL_WIDEN", options.partial_widen_factor);
  return options;
}

std::vector<std::unordered_map<StatKey, double, StatKeyHash>>
NumericStatValues(const RunRecord& record) {
  size_t num_blocks = record.block_stats.size();
  for (const RunRecord::SeCard& c : record.cards) {
    num_blocks = std::max(num_blocks, static_cast<size_t>(c.block) + 1);
  }
  std::vector<std::unordered_map<StatKey, double, StatKeyHash>> values(
      num_blocks);
  for (size_t b = 0; b < record.block_stats.size(); ++b) {
    for (const auto& [key, value] : record.block_stats[b].values()) {
      values[b][key] = value.is_count()
                           ? static_cast<double>(value.count())
                           : static_cast<double>(value.hist().TotalCount());
    }
  }
  for (const RunRecord::SeCard& c : record.cards) {
    if (c.actual < 0) continue;  // no ground truth recorded
    auto& block = values[static_cast<size_t>(c.block)];
    // Observed card stats take precedence over derived actuals.
    block.emplace(StatKey::Card(c.se), c.actual);
  }
  return values;
}

std::vector<std::unordered_map<StatKey, double, StatKeyHash>>
SketchRelErrors(const RunRecord& record) {
  std::vector<std::unordered_map<StatKey, double, StatKeyHash>> errors(
      record.block_stats.size());
  for (size_t b = 0; b < record.block_stats.size(); ++b) {
    for (const auto& [key, value] : record.block_stats[b].values()) {
      if (value.is_approx()) errors[b][key] = value.rel_error();
    }
  }
  return errors;
}

bool DriftReport::IsDrifted(int block, const StatKey& key) const {
  for (const auto& [b, k] : reinstrument) {
    if (b == block && k == key) return true;
  }
  return false;
}

std::vector<StatKey> DriftReport::ReinstrumentKeys(int block) const {
  std::vector<StatKey> keys;
  for (const auto& [b, k] : reinstrument) {
    if (b == block) keys.push_back(k);
  }
  return keys;
}

std::string DriftReport::ToText(const AttrCatalog* catalog) const {
  std::ostringstream out;
  if (findings.empty()) {
    out << "drift: no history to compare against\n";
    return out.str();
  }
  out << "drift report (" << reinstrument.size() << " of " << findings.size()
      << " statistics drifted):\n";
  out << "  " << PadRight("statistic", 34) << PadLeft("ewma", 12)
      << PadLeft("current", 12) << PadLeft("rel", 8) << PadLeft("q-err", 8)
      << "  status\n";
  for (const DriftFinding& f : findings) {
    std::ostringstream ewma, cur, rel, qe;
    ewma.precision(1);
    ewma << std::fixed << f.ewma;
    cur.precision(1);
    cur << std::fixed << f.current;
    rel.precision(2);
    rel << std::fixed << f.rel_change;
    qe.precision(2);
    qe << std::fixed << f.qerror;
    out << "  "
        << PadRight("b" + std::to_string(f.block) + " " +
                        f.key.ToString(catalog),
                    34)
        << PadLeft(ewma.str(), 12) << PadLeft(cur.str(), 12)
        << PadLeft(rel.str(), 8) << PadLeft(qe.str(), 8) << "  "
        << (f.drifted ? "DRIFT -> re-instrument"
                      : (f.history_runs == 0 ? "no history" : "ok"))
        << (f.sketch_backed ? " (sketch, widened)" : "")
        << (f.partial_backed ? " (partial run, widened)" : "") << "\n";
  }
  if (any_drift()) {
    out << "  recommendation: re-enable " << reinstrument.size()
        << " statistic tap(s) on the next run\n";
  }
  return out.str();
}

DriftReport DriftDetector::Compare(const std::vector<RunRecord>& history,
                                   const RunRecord& current) const {
  DriftReport report;
  const auto current_values = NumericStatValues(current);
  const auto current_errors = SketchRelErrors(current);
  std::vector<std::vector<std::unordered_map<StatKey, double, StatKeyHash>>>
      history_values;
  std::vector<std::vector<std::unordered_map<StatKey, double, StatKeyHash>>>
      history_errors;
  history_values.reserve(history.size());
  history_errors.reserve(history.size());
  for (const RunRecord& record : history) {
    history_values.push_back(NumericStatValues(record));
    history_errors.push_back(SketchRelErrors(record));
  }
  auto is_sketch_backed = [&](size_t b, const StatKey& key) {
    if (b < current_errors.size() && current_errors[b].count(key) > 0) {
      return true;
    }
    for (const auto& run : history_errors) {
      if (b < run.size() && run[b].count(key) > 0) return true;
    }
    return false;
  };

  for (size_t b = 0; b < current_values.size(); ++b) {
    std::vector<StatKey> keys;
    keys.reserve(current_values[b].size());
    for (const auto& [key, value] : current_values[b]) {
      (void)value;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end(), KeyLess);

    for (const StatKey& key : keys) {
      DriftFinding finding;
      finding.block = static_cast<int>(b);
      finding.key = key;
      finding.current = current_values[b].at(key);

      // EWMA over the key's history, oldest first.
      bool seeded = false;
      double ewma = 0.0;
      bool partial_history = false;
      for (size_t h = 0; h < history_values.size(); ++h) {
        const auto& run = history_values[h];
        if (b >= run.size()) continue;
        const auto it = run[b].find(key);
        if (it == run[b].end()) continue;
        if (!seeded) {
          ewma = it->second;
          seeded = true;
        } else {
          ewma = options_.ewma_alpha * it->second +
                 (1.0 - options_.ewma_alpha) * ewma;
        }
        finding.previous = it->second;
        ++finding.history_runs;
        if (history[h].partial) partial_history = true;
      }
      finding.sketch_backed = is_sketch_backed(b, key);
      finding.partial_backed = current.partial || partial_history;
      if (finding.history_runs >= options_.min_history) {
        finding.ewma = ewma;
        finding.rel_change =
            std::abs(finding.current - ewma) / std::max(std::abs(ewma), 1.0);
        finding.qerror = QError(finding.current, ewma);
        // Sketch-backed comparisons mix approximation noise into the
        // apparent change, and partial-backed ones compare a completed-
        // prefix view against full runs; widen the tolerance before
        // declaring drift (the factors stack when both apply).
        double widen = finding.sketch_backed
                           ? std::max(options_.sketch_widen_factor, 1.0)
                           : 1.0;
        if (finding.partial_backed) {
          widen *= std::max(options_.partial_widen_factor, 1.0);
        }
        finding.drifted =
            finding.rel_change > options_.rel_change_threshold * widen ||
            finding.qerror > options_.qerror_threshold * widen;
      }
      if (finding.drifted) {
        report.reinstrument.emplace_back(finding.block, key);
      }
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

}  // namespace obs
}  // namespace etlopt
