file(REMOVE_RECURSE
  "CMakeFiles/ext_approx_pipeline.dir/ext_approx_pipeline.cc.o"
  "CMakeFiles/ext_approx_pipeline.dir/ext_approx_pipeline.cc.o.d"
  "ext_approx_pipeline"
  "ext_approx_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_approx_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
