#include "opt/ilp_selector.h"

#include <algorithm>

#include "lp/ilp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/closure.h"
#include "opt/greedy_selector.h"

namespace etlopt {
namespace {

std::vector<int> UniqueInputs(const CssCatalog& catalog, int css) {
  std::vector<int> inputs = catalog.css_inputs(css);
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  return inputs;
}

}  // namespace

SelectionResult SelectIlp(const SelectionProblem& problem,
                          const IlpSelectorOptions& options) {
  const CssCatalog& catalog = *problem.catalog;
  const int n = catalog.num_stats();
  const int m = catalog.num_css();

  obs::ScopedSpan span("opt.select_ilp");
  span.Arg("stats", static_cast<int64_t>(n));
  span.Arg("css", static_cast<int64_t>(m));

  // Warm start (and fallback) from the greedy heuristic.
  SelectionResult greedy = SelectGreedy(problem);
  if (!greedy.feasible) return greedy;

  // Size guard: estimate the simplex tableau footprint.
  int num_x = 0;
  for (int s = 0; s < n; ++s) {
    if (problem.observable[static_cast<size_t>(s)]) ++num_x;
  }
  const int64_t vars = static_cast<int64_t>(num_x) + n + m;
  const int64_t rows = static_cast<int64_t>(m) * 2 + n * 2 + vars;  // + bounds
  const int64_t cells = rows * (vars + 2 * rows + 1);
  if (cells > options.max_tableau_cells) {
    ETLOPT_COUNTER_ADD("etlopt.opt.ilp.size_fallbacks", 1);
    greedy.method = "ilp(greedy-fallback:size)";
    return greedy;
  }

  // ---- Build the Section 5.2 program ----
  LinearProgram lp;
  std::vector<int> x_var(static_cast<size_t>(n), -1);
  std::vector<int> y_var(static_cast<size_t>(n), -1);
  std::vector<int> z_var(static_cast<size_t>(m), -1);

  for (int s = 0; s < n; ++s) {
    if (problem.observable[static_cast<size_t>(s)]) {
      // Forced (drift-flagged) statistics get x_i fixed to 1.
      const bool forced =
          static_cast<size_t>(s) < problem.must_observe.size() &&
          problem.must_observe[static_cast<size_t>(s)];
      x_var[static_cast<size_t>(s)] = lp.AddVariable(
          problem.cost[static_cast<size_t>(s)], forced ? 1.0 : 0.0, 1.0);
    }
  }
  for (int s = 0; s < n; ++s) {
    const double lo = problem.required[static_cast<size_t>(s)] ? 1.0 : 0.0;
    y_var[static_cast<size_t>(s)] = lp.AddVariable(0.0, lo, 1.0);
  }
  for (int c = 0; c < m; ++c) {
    z_var[static_cast<size_t>(c)] = lp.AddVariable(0.0, 0.0, 1.0);
  }

  // CSS covered only if all members computable: Σ y_k ≥ |CSS| z_j;
  // and covered implies computable: y_target ≥ z_j.
  for (int c = 0; c < m; ++c) {
    const std::vector<int> inputs = UniqueInputs(catalog, c);
    LpConstraint cover;
    cover.sense = ConstraintSense::kGreaterEqual;
    cover.rhs = 0.0;
    for (int in : inputs) {
      cover.terms.push_back({y_var[static_cast<size_t>(in)], 1.0});
    }
    cover.terms.push_back({z_var[static_cast<size_t>(c)],
                           -static_cast<double>(inputs.size())});
    lp.AddConstraint(std::move(cover));

    LpConstraint implies;
    implies.sense = ConstraintSense::kGreaterEqual;
    implies.rhs = 0.0;
    implies.terms = {{y_var[static_cast<size_t>(catalog.css_target(c))], 1.0},
                     {z_var[static_cast<size_t>(c)], -1.0}};
    lp.AddConstraint(std::move(implies));
  }

  // Computable iff observed or some CSS covered.
  for (int s = 0; s < n; ++s) {
    const bool has_css = !catalog.css_of(s).empty();
    const int xv = x_var[static_cast<size_t>(s)];
    const int yv = y_var[static_cast<size_t>(s)];
    if (xv >= 0 && !has_css) {
      LpConstraint eq;  // y_i = x_i
      eq.sense = ConstraintSense::kEqual;
      eq.rhs = 0.0;
      eq.terms = {{yv, 1.0}, {xv, -1.0}};
      lp.AddConstraint(std::move(eq));
      continue;
    }
    if (xv >= 0) {
      LpConstraint ge;  // y_i ≥ x_i
      ge.sense = ConstraintSense::kGreaterEqual;
      ge.rhs = 0.0;
      ge.terms = {{yv, 1.0}, {xv, -1.0}};
      lp.AddConstraint(std::move(ge));
    }
    // 'only if': y_i ≤ x_i + Σ_j z_ij.
    LpConstraint only_if;
    only_if.sense = ConstraintSense::kLessEqual;
    only_if.rhs = 0.0;
    only_if.terms.push_back({yv, 1.0});
    if (xv >= 0) only_if.terms.push_back({xv, -1.0});
    for (int c : catalog.css_of(s)) {
      only_if.terms.push_back({z_var[static_cast<size_t>(c)], -1.0});
    }
    lp.AddConstraint(std::move(only_if));
  }

  // Integral decision variables: x only. y/z stay continuous; the incumbent
  // filter enforces true (closure) semantics on candidates.
  std::vector<int> integer_vars;
  for (int s = 0; s < n; ++s) {
    if (x_var[static_cast<size_t>(s)] >= 0) {
      integer_vars.push_back(x_var[static_cast<size_t>(s)]);
    }
  }

  IlpOptions ilp_options;
  ilp_options.max_nodes = options.max_nodes;
  ilp_options.time_limit_seconds = options.time_limit_seconds;
  ilp_options.incumbent_filter = [&](const std::vector<double>& values) {
    std::vector<int> observed;
    for (int s = 0; s < n; ++s) {
      const int xv = x_var[static_cast<size_t>(s)];
      if (xv >= 0 && values[static_cast<size_t>(xv)] > 0.5) {
        observed.push_back(s);
      }
    }
    return SelectionCovers(problem, observed);
  };

  // Warm start from the greedy solution.
  {
    std::vector<double> warm(static_cast<size_t>(lp.num_variables()), 0.0);
    std::vector<char> obs(static_cast<size_t>(n), 0);
    for (int s : greedy.observed) obs[static_cast<size_t>(s)] = 1;
    const std::vector<char> computable = ComputeClosure(catalog, obs);
    for (int s = 0; s < n; ++s) {
      const int xv = x_var[static_cast<size_t>(s)];
      if (xv >= 0 && obs[static_cast<size_t>(s)]) {
        warm[static_cast<size_t>(xv)] = 1.0;
      }
      warm[static_cast<size_t>(y_var[static_cast<size_t>(s)])] =
          computable[static_cast<size_t>(s)] ? 1.0 : 0.0;
    }
    for (int c = 0; c < m; ++c) {
      bool covered = true;
      for (int in : catalog.css_inputs(c)) {
        if (!computable[static_cast<size_t>(in)]) {
          covered = false;
          break;
        }
      }
      warm[static_cast<size_t>(z_var[static_cast<size_t>(c)])] =
          covered ? 1.0 : 0.0;
    }
    ilp_options.initial_incumbent = std::move(warm);
  }

  span.Arg("lp_vars", static_cast<int64_t>(lp.num_variables()));
  span.Arg("lp_constraints", static_cast<int64_t>(lp.num_constraints()));
  ETLOPT_COUNTER_ADD("etlopt.opt.ilp.solves", 1);
  ETLOPT_COUNTER_ADD("etlopt.opt.ilp.lp_vars", lp.num_variables());
  ETLOPT_COUNTER_ADD("etlopt.opt.ilp.lp_constraints", lp.num_constraints());

  const IlpSolution sol = SolveIlp(lp, integer_vars, ilp_options);
  if (sol.status != LpStatus::kOptimal) {
    ETLOPT_COUNTER_ADD("etlopt.opt.ilp.limit_fallbacks", 1);
    greedy.method = "ilp(greedy-fallback:" +
                    std::string(sol.status == LpStatus::kIterationLimit
                                    ? "limit"
                                    : "infeasible") +
                    ")";
    return greedy;
  }

  SelectionResult result;
  result.feasible = true;
  result.proven_optimal = sol.proven_optimal;
  result.method = sol.proven_optimal ? "ilp" : "ilp(truncated)";
  for (int s = 0; s < n; ++s) {
    const int xv = x_var[static_cast<size_t>(s)];
    if (xv >= 0 && sol.values[static_cast<size_t>(xv)] > 0.5) {
      result.observed.push_back(s);
      result.total_cost += problem.cost[static_cast<size_t>(s)];
    }
  }
  // The ILP may return the warm-start incumbent itself; keep whichever is
  // cheaper and guaranteed covering.
  if (!SelectionCovers(problem, result.observed) ||
      greedy.total_cost < result.total_cost - 1e-9) {
    greedy.method = "ilp(greedy-kept)";
    return greedy;
  }
  return result;
}

}  // namespace etlopt
