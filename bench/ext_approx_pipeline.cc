// Section 8 extension, part 3: the whole framework under approximate
// statistics. For representative workflows we run the normal analysis
// (selection with union-division disabled — approximate collectors cannot
// support the exact divisions of J4/J5), observe the chosen statistics with
// *bucketized* collectors at increasing widths, derive every SE cardinality
// through the same CSS derivations, and report
//   * collector memory (Section 5.4 model under bucketization),
//   * the worst relative cardinality error across all SEs,
//   * whether the DP optimizer still picks the same join order as with
//     exact statistics.
// This quantifies the §8.2 space-error trade-off inside the actual
// pipeline rather than on isolated histograms.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "approx/approx_estimator.h"
#include "css/generator.h"
#include "datagen/workload_suite.h"
#include "engine/instrumentation.h"
#include "opt/greedy_selector.h"
#include "optimizer/join_optimizer.h"
#include "util/string_util.h"

using namespace etlopt;

namespace {

std::string PlanSignature(const OptimizedPlan& plan, RelMask full) {
  // Serialize the chosen tree deterministically.
  std::string sig;
  std::vector<RelMask> stack{full};
  while (!stack.empty()) {
    const RelMask se = stack.back();
    stack.pop_back();
    if (IsSingleton(se)) continue;
    const JoinChoice& c = plan.choices.at(se);
    sig += std::to_string(se) + ":" + std::to_string(c.left) + "|" +
           std::to_string(c.right) + ";";
    stack.push_back(c.left);
    stack.push_back(c.right);
  }
  return sig;
}

}  // namespace

int main() {
  std::printf("== Extension: the full pipeline under bucketized statistics "
              "==\n\n");
  for (int wf : {3, 5, 16, 22, 24}) {
    const WorkloadSpec spec = BuildWorkload(wf);
    const SourceMap sources = GenerateSources(spec, 11, 0.005);
    const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
    // Analyze the (single interesting) join block.
    const Block* join_block = nullptr;
    for (const Block& b : blocks) {
      if (join_block == nullptr || b.num_rels() > join_block->num_rels()) {
        join_block = &b;
      }
    }
    const BlockContext ctx =
        BlockContext::Build(&spec.workflow, *join_block).value();
    const PlanSpace ps = PlanSpace::Build(ctx).value();
    CssGenOptions css;
    css.enable_union_division = false;
    const CssCatalog catalog = GenerateCss(ctx, ps, css);
    CostModel cm(&spec.workflow.catalog(), {});
    SelectionProblem problem = BuildSelectionProblem(ctx, ps, catalog, cm);
    const SelectionResult selection = SelectGreedy(problem);
    if (!selection.feasible) continue;
    const ExecutionResult exec =
        Executor(&spec.workflow).Execute(sources).value();
    const auto truth =
        ComputeGroundTruthCards(ctx, ps.subexpressions(), exec).value();
    CardMap truth_cards(truth.begin(), truth.end());
    const OptimizedPlan exact_plan =
        OptimizeJoins(ctx, ps, truth_cards).value();
    const std::string exact_sig =
        PlanSignature(exact_plan, ctx.full_mask());

    std::printf("workflow %d (%s): %d rels, exact-optimal cost %.0f\n", wf,
                spec.name.c_str(), ctx.num_rels(), exact_plan.cost);
    std::printf("  %8s %14s %12s %10s %10s\n", "width", "memory",
                "max err", "same plan", "regret");
    for (int64_t width : {1, 2, 4, 8, 16, 32}) {
      ApproxConfig config(&spec.workflow.catalog(), width);
      ApproxEstimator estimator(&ctx, &catalog, &config);
      const Status st = estimator.ObserveAndDerive(
          exec, selection.ObservedKeys(catalog));
      if (!st.ok()) {
        std::printf("  %8lld: %s\n", static_cast<long long>(width),
                    st.ToString().c_str());
        continue;
      }
      // Collector memory under bucketization.
      int64_t memory = 0;
      for (const StatKey& key : selection.ObservedKeys(catalog)) {
        memory += key.is_count_like() ? 1 : config.MemoryUnits(key.attrs);
      }
      double max_err = 0.0;
      for (RelMask se : ps.subexpressions()) {
        const double est = *estimator.Cardinality(se);
        const double t = static_cast<double>(truth.at(se));
        if (t > 0) max_err = std::max(max_err, std::fabs(est - t) / t);
      }
      const CardMap approx_cards =
          estimator.AllCardinalities(ps.subexpressions()).value();
      const OptimizedPlan approx_plan =
          OptimizeJoins(ctx, ps, approx_cards).value();
      // Regret: cost of the approx-chosen tree under TRUE cardinalities.
      double regret = 0.0;
      {
        // Evaluate the approx plan's tree with true cards.
        double cost = 0.0;
        std::vector<RelMask> stack{ctx.full_mask()};
        while (!stack.empty()) {
          const RelMask se = stack.back();
          stack.pop_back();
          if (IsSingleton(se)) continue;
          const JoinChoice& c = approx_plan.choices.at(se);
          const int64_t l = truth.at(c.left);
          const int64_t r = truth.at(c.right);
          cost += JoinStepCost(std::max(l, r), std::min(l, r), truth.at(se),
                               CostParams{});
          stack.push_back(c.left);
          stack.push_back(c.right);
        }
        regret = exact_plan.cost > 0 ? (cost - exact_plan.cost) /
                                           exact_plan.cost
                                     : 0.0;
      }
      const bool same =
          PlanSignature(approx_plan, ctx.full_mask()) == exact_sig;
      std::printf("  %8lld %14s %11.2f%% %10s %9.2f%%\n",
                  static_cast<long long>(width),
                  WithThousands(memory).c_str(), 100.0 * max_err,
                  same ? "yes" : "NO", 100.0 * regret);
    }
    std::printf("\n");
  }
  std::printf("shape: estimation error grows with bucket width, but the "
              "chosen plan (and its\ntrue cost) stays optimal or near-"
              "optimal far longer — coarse statistics are\noften enough to "
              "rank plans (the §8.2 'allowed error' headroom).\n");
  return 0;
}
