#ifndef ETLOPT_OPTIMIZER_REWRITE_H_
#define ETLOPT_OPTIMIZER_REWRITE_H_

#include <vector>

#include "optimizer/join_optimizer.h"
#include "planspace/block.h"

namespace etlopt {

// Rewrites a workflow so each listed block uses its optimized join order.
// Chains, boundaries, and all other nodes are preserved; only the join trees
// inside the blocks change. The rewritten workflow computes the same final
// result (joins are associative/commutative within a block by construction).
class PlanRewriter {
 public:
  struct BlockPlan {
    const Block* block = nullptr;
    const OptimizedPlan* plan = nullptr;
  };

  // When `se_nodes` is non-null it receives, per BlockPlan (same order), the
  // mapping from each emitted join SE mask to the node producing it in the
  // rewritten workflow — the instrumentation points a multi-run driver needs
  // (Section 6.1's trivial-CSS observation in re-ordered plans).
  static Result<Workflow> Apply(
      const Workflow& original, const std::vector<BlockPlan>& plans,
      std::vector<std::unordered_map<RelMask, NodeId>>* se_nodes = nullptr);
};

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_REWRITE_H_
