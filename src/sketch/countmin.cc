#include "sketch/countmin.h"

#include <algorithm>
#include <cmath>

#include "sketch/sketch.h"
#include "util/common.h"

namespace etlopt {
namespace sketch {

CountMin::CountMin(int width, int depth) : width_(width), depth_(depth) {
  ETLOPT_CHECK_MSG(width >= 1 && depth >= 1 && depth <= 16,
                   "Count-Min shape out of range");
  counters_.assign(static_cast<size_t>(width_) * static_cast<size_t>(depth_),
                   0);
}

CountMin CountMin::ForError(double epsilon, double delta) {
  const int width = std::max(
      1, static_cast<int>(std::ceil(std::exp(1.0) / epsilon)));
  const int depth = std::max(
      1, static_cast<int>(std::ceil(std::log(1.0 / delta))));
  return CountMin(width, std::min(depth, 16));
}

size_t CountMin::Index(int row, uint64_t hash) const {
  // Double hashing: row hashes h1 + i*h2 are pairwise independent enough
  // for the CM bound; h2 is forced odd so every row permutes the space.
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0x9e3779b97f4a7c15ULL) | 1;
  const uint64_t combined = h1 + static_cast<uint64_t>(row) * h2;
  return static_cast<size_t>(row) * static_cast<size_t>(width_) +
         static_cast<size_t>(combined % static_cast<uint64_t>(width_));
}

void CountMin::AddHash(uint64_t hash, int64_t count) {
  for (int d = 0; d < depth_; ++d) {
    counters_[Index(d, hash)] += count;
  }
  total_ += count;
}

int64_t CountMin::Estimate(uint64_t hash) const {
  int64_t best = INT64_MAX;
  for (int d = 0; d < depth_; ++d) {
    best = std::min(best, counters_[Index(d, hash)]);
  }
  return best == INT64_MAX ? 0 : best;
}

double CountMin::EpsilonFraction() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

Status CountMin::Merge(const CountMin& other) {
  if (other.width_ != width_ || other.depth_ != depth_) {
    return Status::InvalidArgument("Count-Min shape mismatch in merge");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
  return Status::OK();
}

int64_t CountMin::MemoryBytes() const {
  return static_cast<int64_t>(counters_.size() * sizeof(int64_t)) +
         static_cast<int64_t>(sizeof(CountMin));
}

Json CountMin::ToJson() const {
  Json j = Json::Object();
  j.Set("type", Json::Str("countmin"));
  j.Set("w", Json::Int(width_));
  j.Set("d", Json::Int(depth_));
  j.Set("total", Json::Int(total_));
  Json cells = Json::Array();
  for (int64_t c : counters_) cells.push_back(Json::Int(c));
  j.Set("cells", std::move(cells));
  return j;
}

Result<CountMin> CountMin::FromJson(const Json& j) {
  if (!j.is_object() || j.GetString("type") != "countmin") {
    return Status::InvalidArgument("not a Count-Min sketch document");
  }
  const int w = static_cast<int>(j.GetInt("w"));
  const int d = static_cast<int>(j.GetInt("d"));
  if (w < 1 || d < 1 || d > 16) {
    return Status::InvalidArgument("Count-Min shape out of range");
  }
  CountMin cm(w, d);
  cm.total_ = j.GetInt("total");
  const Json* cells = j.Find("cells");
  if (cells == nullptr || !cells->is_array() ||
      cells->array().size() != cm.counters_.size()) {
    return Status::InvalidArgument("Count-Min counter array malformed");
  }
  for (size_t i = 0; i < cm.counters_.size(); ++i) {
    cm.counters_[i] = cells->array()[i].int_value();
  }
  return cm;
}

}  // namespace sketch
}  // namespace etlopt
