#include "opt/resource.h"

#include "opt/greedy_selector.h"

namespace etlopt {

BudgetedSelection SelectWithBudget(const SelectionProblem& problem,
                                   const BlockContext& ctx,
                                   const PlanSpace& plan_space,
                                   double memory_budget) {
  BudgetedSelection out;
  std::vector<int> uncovered;
  out.first_run =
      SelectGreedyWithBudget(problem, memory_budget, &uncovered);
  out.memory_used = out.first_run.total_cost;

  // Deferred SEs: required Card statistics still uncovered. They will be
  // observed via their trivial CSS (a counter) in later runs whose plan puts
  // them on-path.
  for (int s : uncovered) {
    const StatKey& key = problem.catalog->stat(s);
    if (key.kind == StatKind::kCard && !key.is_chain_stage()) {
      out.deferred.push_back(key.rels);
    }
  }
  if (!out.deferred.empty()) {
    out.reorder_plan = ComputeExecutionCover(ctx, plan_space, &out.deferred);
  }
  return out;
}

}  // namespace etlopt
