#include "approx/dhistogram.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace etlopt {

int64_t ApproxConfig::MemoryUnits(AttrMask attrs) const {
  int64_t units = 1;
  for (int idx : MaskToIndices(attrs)) {
    const AttrId a = static_cast<AttrId>(idx);
    const int64_t w = WidthFor(a);
    const int64_t buckets = (DomainFor(a) + w - 1) / w;
    if (units > std::numeric_limits<int64_t>::max() / buckets) {
      return std::numeric_limits<int64_t>::max();
    }
    units *= buckets;
  }
  return units;
}

DHistogram::DHistogram(AttrMask attrs, const ApproxConfig& config)
    : attr_mask_(attrs) {
  for (int idx : MaskToIndices(attrs)) {
    const AttrId a = static_cast<AttrId>(idx);
    attrs_.push_back(a);
    widths_.push_back(config.WidthFor(a));
    domains_.push_back(config.DomainFor(a));
  }
}

DHistogram DHistogram::FromTable(const Table& table, AttrMask attrs,
                                 const ApproxConfig& config) {
  DHistogram h(attrs, config);
  std::vector<int> cols;
  for (AttrId a : h.attrs_) {
    const int col = table.schema().IndexOf(a);
    ETLOPT_CHECK_MSG(col >= 0, "attribute not in table schema");
    cols.push_back(col);
  }
  std::vector<const Value*> data;
  data.reserve(cols.size());
  for (int c : cols) data.push_back(table.column_data(c));
  std::vector<Value> raw(cols.size());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      raw[i] = data[i][r];
    }
    h.AddValue(raw, 1.0);
  }
  ETLOPT_COUNTER_ADD("etlopt.approx.dhistogram.builds", 1);
  ETLOPT_HIST_RECORD("etlopt.approx.dhistogram.bucket_occupancy",
                     static_cast<int64_t>(h.buckets_.size()));
  return h;
}

void DHistogram::AddValue(const std::vector<Value>& raw_values,
                          double count) {
  ETLOPT_CHECK(raw_values.size() == attrs_.size());
  std::vector<Value> key(raw_values.size());
  for (size_t i = 0; i < raw_values.size(); ++i) {
    key[i] = (raw_values[i] - 1) / widths_[i];
  }
  buckets_[key] += count;
  total_ += count;
}

double DHistogram::Get(const std::vector<Value>& bucket_key) const {
  auto it = buckets_.find(bucket_key);
  return it == buckets_.end() ? 0.0 : it->second;
}

int64_t DHistogram::ValuesInBucket(int attr_pos, Value bucket) const {
  const int64_t w = widths_[static_cast<size_t>(attr_pos)];
  const int64_t domain = domains_[static_cast<size_t>(attr_pos)];
  const int64_t lo = 1 + bucket * w;
  const int64_t hi = std::min(domain, (bucket + 1) * w);
  return std::max<int64_t>(0, hi - lo + 1);
}

double DHistogram::JoinCardinality(const DHistogram& a, const DHistogram& b) {
  ETLOPT_CHECK_MSG(a.attr_mask_ == b.attr_mask_ && a.attrs_.size() == 1,
                   "JoinCardinality requires aligned single-attribute "
                   "histograms");
  ETLOPT_CHECK(a.widths_ == b.widths_ && a.domains_ == b.domains_);
  ETLOPT_COUNTER_ADD("etlopt.approx.dhistogram.join_merges", 1);
  double total = 0.0;
  const auto& small = a.buckets_.size() <= b.buckets_.size() ? a : b;
  const auto& large = a.buckets_.size() <= b.buckets_.size() ? b : a;
  for (const auto& [key, count] : small.buckets_) {
    const double other = large.Get(key);
    if (other == 0.0) continue;
    total += count * other /
             static_cast<double>(a.ValuesInBucket(0, key[0]));
  }
  return total;
}

DHistogram DHistogram::MultiplyThrough(const DHistogram& a,
                                       const DHistogram& b) {
  ETLOPT_CHECK_MSG(b.attrs_.size() == 1 &&
                       IsSubset(b.attr_mask_, a.attr_mask_),
                   "MultiplyThrough requires a single-attribute rhs on an "
                   "attribute of lhs");
  const AttrId join_attr = b.attrs_[0];
  int pos = -1;
  for (size_t i = 0; i < a.attrs_.size(); ++i) {
    if (a.attrs_[i] == join_attr) pos = static_cast<int>(i);
  }
  ETLOPT_CHECK(pos >= 0);
  ETLOPT_CHECK(a.widths_[static_cast<size_t>(pos)] == b.widths_[0] &&
               a.domains_[static_cast<size_t>(pos)] == b.domains_[0]);
  ETLOPT_COUNTER_ADD("etlopt.approx.dhistogram.multiply_merges", 1);
  DHistogram out = a;
  out.buckets_.clear();
  out.total_ = 0.0;
  std::vector<Value> bkey(1);
  for (const auto& [key, count] : a.buckets_) {
    bkey[0] = key[static_cast<size_t>(pos)];
    const double other = b.Get(bkey);
    if (other == 0.0) continue;
    const double scaled =
        count * other /
        static_cast<double>(b.ValuesInBucket(0, bkey[0]));
    out.buckets_[key] += scaled;
    out.total_ += scaled;
  }
  return out;
}

DHistogram DHistogram::Marginalize(AttrMask keep) const {
  ETLOPT_CHECK(IsSubset(keep, attr_mask_));
  if (keep == attr_mask_) return *this;
  ETLOPT_COUNTER_ADD("etlopt.approx.dhistogram.marginalize_merges", 1);
  DHistogram out;
  out.attr_mask_ = keep;
  std::vector<int> positions;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if ((keep >> attrs_[i]) & 1) {
      positions.push_back(static_cast<int>(i));
      out.attrs_.push_back(attrs_[i]);
      out.widths_.push_back(widths_[i]);
      out.domains_.push_back(domains_[i]);
    }
  }
  for (const auto& [key, count] : buckets_) {
    std::vector<Value> projected;
    projected.reserve(positions.size());
    for (int p : positions) projected.push_back(key[static_cast<size_t>(p)]);
    out.buckets_[projected] += count;
    out.total_ += count;
  }
  return out;
}

int64_t DHistogram::SatisfyingInBucket(int attr_pos, Value bucket,
                                       const Predicate& pred) const {
  const int64_t w = widths_[static_cast<size_t>(attr_pos)];
  const int64_t domain = domains_[static_cast<size_t>(attr_pos)];
  const int64_t lo = 1 + bucket * w;
  const int64_t hi = std::min(domain, (bucket + 1) * w);
  switch (pred.op) {
    case CompareOp::kEq:
      return (pred.constant >= lo && pred.constant <= hi) ? 1 : 0;
    case CompareOp::kNe:
      return (hi - lo + 1) -
             ((pred.constant >= lo && pred.constant <= hi) ? 1 : 0);
    case CompareOp::kLt:
      return std::clamp<int64_t>(pred.constant - lo, 0, hi - lo + 1);
    case CompareOp::kLe:
      return std::clamp<int64_t>(pred.constant - lo + 1, 0, hi - lo + 1);
    case CompareOp::kGt:
      return std::clamp<int64_t>(hi - pred.constant, 0, hi - lo + 1);
    case CompareOp::kGe:
      return std::clamp<int64_t>(hi - pred.constant + 1, 0, hi - lo + 1);
  }
  return 0;
}

double DHistogram::CountMatching(const Predicate& pred) const {
  int pos = -1;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == pred.attr) pos = static_cast<int>(i);
  }
  ETLOPT_CHECK_MSG(pos >= 0, "predicate attribute not in histogram");
  double total = 0.0;
  for (const auto& [key, count] : buckets_) {
    const Value bucket = key[static_cast<size_t>(pos)];
    const int64_t vib = ValuesInBucket(pos, bucket);
    if (vib == 0) continue;
    total += count *
             static_cast<double>(SatisfyingInBucket(pos, bucket, pred)) /
             static_cast<double>(vib);
  }
  return total;
}

DHistogram DHistogram::FilterThenMarginalize(const Predicate& pred,
                                             AttrMask keep) const {
  int pos = -1;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == pred.attr) pos = static_cast<int>(i);
  }
  ETLOPT_CHECK_MSG(pos >= 0, "predicate attribute not in histogram");
  DHistogram scaled = *this;
  scaled.buckets_.clear();
  scaled.total_ = 0.0;
  for (const auto& [key, count] : buckets_) {
    const Value bucket = key[static_cast<size_t>(pos)];
    const int64_t vib = ValuesInBucket(pos, bucket);
    if (vib == 0) continue;
    const double fraction =
        static_cast<double>(SatisfyingInBucket(pos, bucket, pred)) /
        static_cast<double>(vib);
    if (fraction == 0.0) continue;
    scaled.buckets_[key] += count * fraction;
    scaled.total_ += count * fraction;
  }
  return scaled.Marginalize(keep);
}

DHistogram DHistogram::CollapseToDistinct() const {
  DHistogram out = *this;
  out.buckets_.clear();
  out.total_ = 0.0;
  for (const auto& [key, count] : buckets_) {
    double capacity = 1.0;
    for (size_t i = 0; i < attrs_.size(); ++i) {
      capacity *= static_cast<double>(
          ValuesInBucket(static_cast<int>(i), key[i]));
    }
    const double distinct = std::min(count, capacity);
    out.buckets_[key] += distinct;
    out.total_ += distinct;
  }
  return out;
}

}  // namespace etlopt
