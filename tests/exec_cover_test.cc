#include <gtest/gtest.h>

#include <set>

#include "datagen/workload_suite.h"
#include "opt/exec_cover.h"
#include "test_util.h"

namespace etlopt {
namespace {

// Builds a star workflow with `dims` dimensions for cover testing.
BlockContext StarContext(int dims, Workflow* wf_out) {
  WorkflowBuilder b("star");
  std::vector<AttrId> keys;
  for (int i = 0; i < dims; ++i) {
    keys.push_back(b.DeclareAttr("k" + std::to_string(i), 100));
  }
  NodeId flow = b.Source("F", keys);
  for (int i = 0; i < dims; ++i) {
    flow = b.Join(flow, b.Source("D" + std::to_string(i), {keys[static_cast<size_t>(i)]}),
                  keys[static_cast<size_t>(i)]);
  }
  b.Sink(flow, "out");
  *wf_out = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(*wf_out);
  return BlockContext::Build(wf_out, blocks[0]).value();
}

TEST(ExecCoverTest, FormulaMatchesPaperFiveWayExample) {
  // Section 7.3: for a 5-relation join, ⌈(2^5 − 7) / 3⌉ = 9 executions.
  Workflow wf;
  const BlockContext ctx = StarContext(4, &wf);  // fact + 4 dims = 5 rels
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  EXPECT_EQ(result.formula_lower_bound, 9);
  EXPECT_GE(result.executions,
            static_cast<int>(result.semantic_lower_bound));
}

TEST(ExecCoverTest, EightWayFormulaIs41) {
  // The paper's workflow 21: 8-way join, minimum 41 executions.
  Workflow wf;
  const BlockContext ctx = StarContext(7, &wf);
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  EXPECT_EQ(result.formula_lower_bound, 41);
}

TEST(ExecCoverTest, SixWayFormulaIs14) {
  // The paper's workflow 30: 6-way join, minimum 14 executions.
  Workflow wf;
  const BlockContext ctx = StarContext(5, &wf);
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  EXPECT_EQ(result.formula_lower_bound, 14);
}

TEST(ExecCoverTest, CoverActuallyCoversEverySe) {
  Workflow wf;
  const BlockContext ctx = StarContext(4, &wf);
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  std::set<RelMask> covered;
  for (const auto& run : result.per_run_covered) {
    for (RelMask se : run) {
      EXPECT_TRUE(covered.insert(se).second) << "SE covered twice";
    }
  }
  int expected = 0;
  for (RelMask se : ps.subexpressions()) {
    if (!IsSingleton(se) && se != ctx.full_mask()) ++expected;
  }
  EXPECT_EQ(static_cast<int>(covered.size()), expected);
  EXPECT_EQ(static_cast<int>(result.per_run_covered.size()),
            result.executions);
}

TEST(ExecCoverTest, GreedyIsWithinSmallFactorOfSemanticBound) {
  Workflow wf;
  const BlockContext ctx = StarContext(5, &wf);
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  EXPECT_GE(result.executions,
            static_cast<int>(result.semantic_lower_bound));
  EXPECT_LE(result.executions, 3 * result.semantic_lower_bound + 3);
}

TEST(ExecCoverTest, TwoWayJoinNeedsOneExecution) {
  Workflow wf;
  const BlockContext ctx = StarContext(1, &wf);
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  EXPECT_EQ(result.executions, 1);
  EXPECT_EQ(result.formula_lower_bound, 1);
}

TEST(ExecCoverTest, RestrictedUniverse) {
  Workflow wf;
  const BlockContext ctx = StarContext(4, &wf);
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  // Only one SE to cover: a single run suffices.
  std::vector<RelMask> universe{0b00011};
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps, &universe);
  EXPECT_EQ(result.executions, 1);
}

TEST(ExecCoverSuiteTest, ChainTopologiesAlsoCovered) {
  const WorkloadSpec spec = BuildWorkload(26);  // 6-table chain
  const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
  ASSERT_FALSE(blocks.empty());
  const BlockContext ctx =
      BlockContext::Build(&spec.workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecCoverResult result = ComputeExecutionCover(ctx, ps);
  std::set<RelMask> covered;
  for (const auto& run : result.per_run_covered) {
    covered.insert(run.begin(), run.end());
  }
  for (RelMask se : ps.subexpressions()) {
    if (!IsSingleton(se) && se != ctx.full_mask()) {
      EXPECT_TRUE(covered.count(se)) << "uncovered SE " << se;
    }
  }
}

}  // namespace
}  // namespace etlopt
