#include "engine/executor.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace etlopt {

Executor::Executor(const Workflow* workflow) : wf_(workflow) {
  ETLOPT_CHECK(wf_ != nullptr);
}

Table HashJoin(const Table& left, const Table& right, AttrId attr,
               Table* rejects) {
  const int lkey = left.schema().IndexOf(attr);
  const int rkey = right.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");

  // Output schema: left attrs then right attrs minus the key (mirrors
  // Workflow::Finalize).
  std::vector<AttrId> out_attrs = left.schema().attrs();
  std::vector<int> right_cols;
  for (int i = 0; i < right.schema().size(); ++i) {
    const AttrId a = right.schema().attrs()[static_cast<size_t>(i)];
    if (a != attr) {
      out_attrs.push_back(a);
      right_cols.push_back(i);
    }
  }
  Table out{Schema(out_attrs)};

  std::unordered_map<Value, std::vector<int64_t>> build;
  build.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    build[right.at(r, rkey)].push_back(r);
  }

  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const auto it = build.find(left.at(l, lkey));
    if (it == build.end()) {
      if (rejects != nullptr) {
        rejects->AddRow(left.rows()[static_cast<size_t>(l)]);
      }
      continue;
    }
    for (int64_t r : it->second) {
      std::vector<Value> row = left.rows()[static_cast<size_t>(l)];
      row.reserve(out_attrs.size());
      for (int c : right_cols) {
        row.push_back(right.at(r, c));
      }
      out.AddRow(std::move(row));
    }
  }
  return out;
}

Table SortMergeJoin(const Table& left, const Table& right, AttrId attr,
                    Table* rejects) {
  const int lkey = left.schema().IndexOf(attr);
  const int rkey = right.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");

  std::vector<AttrId> out_attrs = left.schema().attrs();
  std::vector<int> right_cols;
  for (int i = 0; i < right.schema().size(); ++i) {
    const AttrId a = right.schema().attrs()[static_cast<size_t>(i)];
    if (a != attr) {
      out_attrs.push_back(a);
      right_cols.push_back(i);
    }
  }
  Table out{Schema(out_attrs)};

  // Sort row indices of both sides by the key.
  std::vector<int64_t> lidx(static_cast<size_t>(left.num_rows()));
  std::vector<int64_t> ridx(static_cast<size_t>(right.num_rows()));
  std::iota(lidx.begin(), lidx.end(), 0);
  std::iota(ridx.begin(), ridx.end(), 0);
  std::sort(lidx.begin(), lidx.end(), [&](int64_t a, int64_t b) {
    return left.at(a, lkey) < left.at(b, lkey);
  });
  std::sort(ridx.begin(), ridx.end(), [&](int64_t a, int64_t b) {
    return right.at(a, rkey) < right.at(b, rkey);
  });

  size_t li = 0;
  size_t ri = 0;
  while (li < lidx.size()) {
    const Value lv = left.at(lidx[li], lkey);
    while (ri < ridx.size() && right.at(ridx[ri], rkey) < lv) ++ri;
    // Group of right rows with this key.
    size_t rend = ri;
    while (rend < ridx.size() && right.at(ridx[rend], rkey) == lv) ++rend;
    if (ri == rend) {
      if (rejects != nullptr) {
        rejects->AddRow(left.rows()[static_cast<size_t>(lidx[li])]);
      }
      ++li;
      continue;
    }
    // All left rows with this key join with the right group.
    while (li < lidx.size() && left.at(lidx[li], lkey) == lv) {
      for (size_t r = ri; r < rend; ++r) {
        std::vector<Value> row = left.rows()[static_cast<size_t>(lidx[li])];
        row.reserve(out_attrs.size());
        for (int col : right_cols) {
          row.push_back(right.at(ridx[r], col));
        }
        out.AddRow(std::move(row));
      }
      ++li;
    }
    ri = rend;
  }
  return out;
}

Result<ExecutionResult> Executor::Execute(const SourceMap& sources) const {
  ExecutionResult result;
  for (const WorkflowNode& node : wf_->nodes()) {
    const Schema& out_schema = wf_->output_schema(node.id);
    Table out{out_schema};
    auto input = [&](int i) -> const Table& {
      return result.node_outputs.at(node.inputs[static_cast<size_t>(i)]);
    };
    switch (node.kind) {
      case OpKind::kSource: {
        auto it = sources.find(node.table_name);
        if (it == sources.end()) {
          return Status::NotFound("no source table bound for '" +
                                  node.table_name + "'");
        }
        if (!(it->second.schema() == node.source_schema)) {
          return Status::InvalidArgument("source '" + node.table_name +
                                         "' schema mismatch");
        }
        out = it->second;
        break;
      }
      case OpKind::kFilter: {
        const Table& in = input(0);
        const int col = in.schema().IndexOf(node.predicate.attr);
        for (const auto& row : in.rows()) {
          if (node.predicate.Matches(row[static_cast<size_t>(col)])) {
            out.AddRow(row);
          }
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kProject: {
        const Table& in = input(0);
        std::vector<int> cols;
        for (AttrId a : node.keep) cols.push_back(in.schema().IndexOf(a));
        for (const auto& row : in.rows()) {
          std::vector<Value> projected;
          projected.reserve(cols.size());
          for (int c : cols) projected.push_back(row[static_cast<size_t>(c)]);
          out.AddRow(std::move(projected));
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kTransform: {
        const Table& in = input(0);
        const TransformSpec& t = node.transform;
        const int col = in.schema().IndexOf(t.input_attr);
        if (t.is_aggregate) {
          // Black-box aggregate UDF: emits one row per distinct transformed
          // key value (a deterministic blocking reduction).
          std::unordered_map<Value, bool> seen;
          for (const auto& row : in.rows()) {
            const Value v = t.fn(row[static_cast<size_t>(col)]);
            if (seen.emplace(v, true).second) {
              std::vector<Value> r = row;
              r[static_cast<size_t>(col)] = v;
              out.AddRow(std::move(r));
            }
          }
        } else if (t.output_attr == t.input_attr) {
          for (const auto& row : in.rows()) {
            std::vector<Value> r = row;
            r[static_cast<size_t>(col)] = t.fn(r[static_cast<size_t>(col)]);
            out.AddRow(std::move(r));
          }
        } else {
          for (const auto& row : in.rows()) {
            std::vector<Value> r = row;
            r.push_back(t.fn(r[static_cast<size_t>(col)]));
            out.AddRow(std::move(r));
          }
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kAggregate: {
        const Table& in = input(0);
        AttrMask group_mask = 0;
        for (AttrId a : node.aggregate.group_by) group_mask |= AttrMask{1} << a;
        std::vector<int> cols;
        for (AttrId a : node.aggregate.group_by) {
          cols.push_back(in.schema().IndexOf(a));
        }
        std::unordered_map<std::vector<Value>, int64_t, ValueVecHash> groups;
        for (const auto& row : in.rows()) {
          std::vector<Value> key;
          key.reserve(cols.size());
          for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
          ++groups[std::move(key)];
        }
        const bool with_count = node.aggregate.count_attr != kInvalidAttr;
        for (auto& [key, count] : groups) {
          std::vector<Value> row = key;
          if (with_count) row.push_back(count);
          out.AddRow(std::move(row));
        }
        result.rows_processed += in.num_rows();
        break;
      }
      case OpKind::kJoin: {
        const Table& left = input(0);
        const Table& right = input(1);
        Table rejects{left.schema()};
        out = node.join.algorithm == JoinAlgorithm::kSortMerge
                  ? SortMergeJoin(left, right, node.join.attr, &rejects)
                  : HashJoin(left, right, node.join.attr, &rejects);
        result.rows_processed += left.num_rows() + right.num_rows();
        result.join_rejects[node.id] = std::move(rejects);
        // Right-side rejects: right rows whose key never occurs on the left.
        {
          const int lkey = left.schema().IndexOf(node.join.attr);
          const int rkey = right.schema().IndexOf(node.join.attr);
          std::unordered_map<Value, bool> left_keys;
          for (int64_t l = 0; l < left.num_rows(); ++l) {
            left_keys.emplace(left.at(l, lkey), true);
          }
          Table rrejects{right.schema()};
          for (int64_t r = 0; r < right.num_rows(); ++r) {
            if (left_keys.find(right.at(r, rkey)) == left_keys.end()) {
              rrejects.AddRow(right.rows()[static_cast<size_t>(r)]);
            }
          }
          result.join_rejects_right[node.id] = std::move(rrejects);
        }
        break;
      }
      case OpKind::kMaterialize:
      case OpKind::kSink: {
        out = input(0);
        result.rows_processed += out.num_rows();
        result.targets[node.target_name] = out;
        break;
      }
    }
    result.node_outputs[node.id] = std::move(out);
  }
  return result;
}

}  // namespace etlopt
