#ifndef ETLOPT_LP_ILP_H_
#define ETLOPT_LP_ILP_H_

#include <functional>
#include <vector>

#include "lp/simplex.h"

namespace etlopt {

struct IlpOptions {
  int max_nodes = 20000;
  double time_limit_seconds = 10.0;
  double integrality_tolerance = 1e-6;
  SimplexOptions simplex;
  // Optional warm-start incumbent (full variable assignment). When provided,
  // its objective prunes the search from the first node.
  std::vector<double> initial_incumbent;
  // Optional semantic check run on every integral candidate. Returning false
  // rejects the candidate (used to enforce the monotone-closure semantics on
  // top of the paper's y/z constraint relaxation, see DESIGN.md §5).
  std::function<bool(const std::vector<double>&)> incumbent_filter;
};

struct IlpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  int explored_nodes = 0;
  bool proven_optimal = false;  // false when node/time limits truncated search
};

// Solves min c·x with the LP's constraints where the variables listed in
// `integer_vars` must take integral values (typically 0/1 via their bounds).
// Branch-and-bound on the LP relaxation, best-first by bound.
IlpSolution SolveIlp(const LinearProgram& lp,
                     const std::vector<int>& integer_vars,
                     const IlpOptions& options = {});

}  // namespace etlopt

#endif  // ETLOPT_LP_ILP_H_
