#include "engine/table.h"

#include <sstream>

namespace etlopt {

Table Table::FromColumns(Schema schema, std::vector<ColumnPtr> columns,
                         int64_t rows) {
  ETLOPT_CHECK(static_cast<int>(columns.size()) == schema.size());
  for (const ColumnPtr& col : columns) {
    ETLOPT_CHECK(col != nullptr &&
                 static_cast<int64_t>(col->size()) == rows);
  }
  Table out;
  out.schema_ = std::move(schema);
  out.columns_ = std::move(columns);
  out.num_rows_ = rows;
  return out;
}

void Table::AppendRows(const Table& src) {
  ETLOPT_CHECK(src.schema_ == schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& in = *src.columns_[c];
    Column& out = MutableColumn(c);
    out.insert(out.end(), in.begin(), in.end());
  }
  num_rows_ += src.num_rows_;
}

std::vector<Value> Table::row(int64_t r) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const ColumnPtr& col : columns_) {
    out.push_back((*col)[static_cast<size_t>(r)]);
  }
  return out;
}

std::vector<std::vector<Value>> Table::MaterializeRows() const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) rows.push_back(row(r));
  return rows;
}

Table Table::Gather(const Table& src, const SelVector& sel) {
  Table out{src.schema_};
  for (size_t c = 0; c < out.columns_.size(); ++c) {
    GatherColumn(*src.columns_[c], sel, out.columns_[c].get());
  }
  out.num_rows_ = static_cast<int64_t>(sel.size());
  return out;
}

bool operator==(const Table& a, const Table& b) {
  if (!(a.schema_ == b.schema_) || a.num_rows_ != b.num_rows_) return false;
  for (size_t c = 0; c < a.columns_.size(); ++c) {
    if (a.columns_[c] == b.columns_[c]) continue;  // shared: trivially equal
    if (*a.columns_[c] != *b.columns_[c]) return false;
  }
  return true;
}

Histogram Table::BuildHistogram(AttrMask attrs) const {
  ETLOPT_CHECK_MSG(schema_.ContainsAll(attrs),
                   "histogram attributes must be in the table schema");
  Histogram hist(attrs);
  std::vector<const Value*> cols;
  for (int idx : MaskToIndices(attrs)) {
    cols.push_back(column_data(schema_.IndexOf(static_cast<AttrId>(idx))));
  }
  std::vector<Value> key(cols.size());
  for (int64_t r = 0; r < num_rows_; ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = cols[i][r];
    }
    hist.Add(key, 1);
  }
  return hist;
}

int64_t Table::CountDistinct(AttrMask attrs) const {
  return BuildHistogram(attrs).NumBuckets();
}

std::string Table::ToString(const AttrCatalog& catalog, int64_t limit) const {
  std::ostringstream out;
  out << schema_.ToString(catalog) << " [" << num_rows() << " rows]\n";
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (r >= limit) {
      out << "  ...\n";
      break;
    }
    out << "  (";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) out << ", ";
      out << (*columns_[c])[static_cast<size_t>(r)];
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace etlopt
