# Empty dependencies file for etlopt.
# This may be replaced when dependencies are built.
