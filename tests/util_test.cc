#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "util/bitmask.h"
#include "util/json.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace etlopt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad join key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad join key");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  ETLOPT_ASSIGN_OR_RETURN(int half, HalveEven(x));
  ETLOPT_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterEven(8), 2);
  EXPECT_FALSE(QuarterEven(6).ok());
  EXPECT_FALSE(QuarterEven(3).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(ZipfTest, CoversDomainAndSkews) {
  Rng rng(17);
  ZipfDistribution zipf(100, 1.2);
  std::vector<int64_t> counts(101, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const int64_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    ++counts[static_cast<size_t>(v)];
  }
  // Rank 1 must dominate rank 10 roughly by 10^1.2 ≈ 15.8.
  EXPECT_GT(counts[1], counts[10] * 8);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(BitmaskTest, Basics) {
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_TRUE(IsSubset(0b001, 0b011));
  EXPECT_FALSE(IsSubset(0b100, 0b011));
  EXPECT_TRUE(IsSingleton(0b100));
  EXPECT_FALSE(IsSingleton(0b110));
  EXPECT_FALSE(IsSingleton(0));
  EXPECT_EQ(LowestBit(0b1100), 2);
  EXPECT_EQ(MaskToIndices(0b1011), (std::vector<int>{0, 1, 3}));
}

TEST(BitmaskTest, SubsetIteratorEnumeratesProperSubsets) {
  std::set<uint64_t> seen;
  for (SubsetIterator it(0b1011); !it.Done(); it.Next()) {
    seen.insert(it.subset());
  }
  // 2^3 - 2 proper non-empty subsets of a 3-bit mask... minus none: the
  // iterator yields all non-empty proper sub-masks: 2^3 - 2 = 6.
  EXPECT_EQ(seen.size(), 6u);
  for (uint64_t s : seen) {
    EXPECT_TRUE(IsSubset(s, 0b1011));
    EXPECT_NE(s, 0b1011u);
    EXPECT_NE(s, 0u);
  }
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1811197), "1,811,197");
  EXPECT_EQ(WithThousands(-52234), "-52,234");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("7", 3), "7  ");
  EXPECT_EQ(PadLeft("1234", 3), "1234");
}

// ---------------------------------------------------------------------------
// JSON parser edge cases
// ---------------------------------------------------------------------------

TEST(JsonEdgeCaseTest, UnicodeEscapesDecodeToUtf8) {
  // 1-byte (A), 2-byte (é = U+00E9), and 3-byte (€ = U+20AC) code points,
  // upper- and lower-case hex digits.
  const auto parsed = Json::Parse(R"("\u0041\u00e9\u20AC")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonEdgeCaseTest, MalformedUnicodeEscapesAreRejected) {
  EXPECT_FALSE(Json::Parse(R"("\u12")").ok());     // truncated
  EXPECT_FALSE(Json::Parse(R"("\u12gz")").ok());   // non-hex digit
  EXPECT_FALSE(Json::Parse(R"("\x41")").ok());     // unknown escape
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonEdgeCaseTest, DeepNestingIsBoundedNotUnbounded) {
  // 64 levels parse; 70 trip the depth guard instead of overflowing the
  // parser's stack on corrupted input.
  std::string ok_doc(64, '[');
  ok_doc += std::string(64, ']');
  EXPECT_TRUE(Json::Parse(ok_doc).ok());

  std::string deep_doc(70, '[');
  deep_doc += std::string(70, ']');
  const auto deep = Json::Parse(deep_doc);
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.status().ToString().find("nesting too deep"),
            std::string::npos);
}

TEST(JsonEdgeCaseTest, ExponentNumbersParseAsDoubles) {
  const auto small = Json::Parse("1.5e3");
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->is_number());
  EXPECT_DOUBLE_EQ(small->double_value(), 1500.0);

  const auto negative = Json::Parse("-2E-2");
  ASSERT_TRUE(negative.ok());
  EXPECT_DOUBLE_EQ(negative->double_value(), -0.02);
}

TEST(JsonEdgeCaseTest, Int64OverflowFallsBackToDouble) {
  // One past int64 max: stoll throws, the parser degrades to double
  // rather than rejecting the document.
  const auto big = Json::Parse("9223372036854775808");
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big->is_number());
  EXPECT_DOUBLE_EQ(big->double_value(), 9223372036854775808.0);

  // int64 max itself still round-trips exactly as an integer.
  const auto max = Json::Parse("9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->int_value(), INT64_MAX);
}

TEST(JsonEdgeCaseTest, TrailingGarbageIsRejected) {
  const auto trailing = Json::Parse("{\"a\":1} extra");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().ToString().find("trailing characters"),
            std::string::npos);
  EXPECT_FALSE(Json::Parse("[1,2]3").ok());
  // Trailing whitespace alone is fine.
  EXPECT_TRUE(Json::Parse("{\"a\":1}  \n").ok());
}

TEST(JsonEdgeCaseTest, DumpParseRoundTripPreservesStructure) {
  Json doc = Json::Object();
  doc.Set("text", Json::Str("line\nbreak \"quoted\" \x01"));
  doc.Set("neg", Json::Int(-42));
  doc.Set("pi", Json::Double(3.25));
  Json arr = Json::Array();
  arr.push_back(Json::Bool(true));
  arr.push_back(Json::Null());
  doc.Set("arr", std::move(arr));

  const auto back = Json::Parse(doc.Dump());
  ASSERT_TRUE(back.ok()) << doc.Dump();
  EXPECT_EQ(back->GetString("text"), "line\nbreak \"quoted\" \x01");
  EXPECT_EQ(back->GetInt("neg"), -42);
  EXPECT_DOUBLE_EQ(back->GetDouble("pi"), 3.25);
  const Json* arr_back = back->Find("arr");
  ASSERT_NE(arr_back, nullptr);
  ASSERT_EQ(arr_back->array().size(), 2u);
  EXPECT_TRUE(arr_back->array()[0].bool_value());
  EXPECT_TRUE(arr_back->array()[1].is_null());
}

}  // namespace
}  // namespace etlopt
