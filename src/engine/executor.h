#ifndef ETLOPT_ENGINE_EXECUTOR_H_
#define ETLOPT_ENGINE_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/table.h"
#include "etl/workflow.h"
#include "obs/profile.h"
#include "util/bitmask.h"
#include "util/status.h"

namespace etlopt {

namespace fault {
class FaultInjector;
}  // namespace fault
class Rng;

// Source bindings: table name -> data.
using SourceMap = std::unordered_map<std::string, Table>;

// Retry policy for transient source failures (io_error / timeout): attempt,
// back off exponentially with jitter, attempt again. Backoff durations are
// drawn deterministically from a seeded stream so fault-injected runs are
// reproducible.
struct RetryPolicy {
  int max_attempts = 4;            // total attempts per source read
  double initial_backoff_ms = 1.0; // delay before the 2nd attempt
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  double jitter_fraction = 0.25;   // +/- uniform share of the delay

  // Defaults overridden by ETLOPT_RETRY_MAX_ATTEMPTS /
  // ETLOPT_RETRY_BACKOFF_MS / ETLOPT_RETRY_MAX_BACKOFF_MS.
  static RetryPolicy FromEnv();
};

// A runtime plan monitor attached to one node: the cardinality the current
// plan was priced with at this pipeline point (obs/guard.h wires these from
// ledger history). The executor compares the node's observed output rows
// against `expected_rows` and records a violation when the q-error exceeds
// ExecutorOptions::monitor_qerror_bound.
struct PlanMonitor {
  double expected_rows = -1.0;  // < 0 disables the monitor
  int block = 0;
  RelMask se = 0;
};

// Robustness knobs of one Executor. The defaults reproduce the seed
// behavior exactly when no fault injector is installed.
struct ExecutorOptions {
  RetryPolicy retry;
  // Fraction of a source's rows allowed to divert to the quarantine sink
  // before the run aborts (the paper's reject-link semantics, bounded): a
  // few malformed rows are an expected property of foreign sources, a
  // majority means the extract is garbage and continuing would poison every
  // statistic downstream.
  double max_error_rate = 0.05;
  // Error-rate enforcement only kicks in past this many read rows, so a
  // single bad row in a tiny table does not abort the run.
  int64_t min_rows_for_error_rate = 20;

  // ---- plan-regression monitors (empty = disabled, zero overhead) ----
  // Estimate monitors per node: observed output rows are compared against
  // the cardinality the running plan was priced with. The map is consulted
  // only when non-empty, so the unguarded hot path pays one branch.
  std::unordered_map<NodeId, PlanMonitor> monitors;
  // q-error bound above which a monitor raises a violation.
  double monitor_qerror_bound = 4.0;
  // Strict guard: the first violation aborts the run (kGuard) through the
  // salvage path instead of merely recording it.
  bool monitor_abort = false;

  // Per-join build-side cardinality hints (node id -> predicted build
  // rows), derived from the same ledger estimates that arm the monitors:
  // the hash join sizes its table from the prediction instead of the row
  // count when an annotation is present (see BuildSideCardHints). Purely a
  // performance hint — outputs never depend on it.
  std::unordered_map<NodeId, int64_t> build_rows_hints;

  // Defaults overridden by ETLOPT_MAX_ERROR_RATE.
  static ExecutorOptions FromEnv();
};

// Why an execution stopped early. kNone means the run completed.
enum class AbortKind : uint8_t {
  kNone = 0,
  kCrash,          // injected crash fault (process-death stand-in)
  kErrorRate,      // quarantine exceeded ExecutorOptions::max_error_rate
  kSourceFailed,   // transient source errors outlived the retry budget
  kGuard,          // strict plan monitor: estimate q-error exceeded bound
};

// One raised estimate monitor: the running plan expected `expected` rows at
// this node's pipeline point and observed `actual`.
struct MonitorViolation {
  NodeId node = kInvalidNode;
  int block = 0;
  RelMask se = 0;
  double expected = 0.0;
  double actual = 0.0;
  double qerror = 1.0;
};

const char* AbortKindName(AbortKind kind);

// Everything produced by one run of a workflow. `node_outputs` caches every
// node's output so the instrumentation layer can observe any pipeline point
// after the fact — semantically equivalent to the per-tuple handlers that
// commercial engines expose (Section 3.2.5) while keeping the engine simple.
struct ExecutionResult {
  std::unordered_map<NodeId, Table> node_outputs;
  // Rows that found no match, per join node and side (captured for every
  // join so reject links — designed or instrumentation-added — are
  // available).
  std::unordered_map<NodeId, Table> join_rejects;        // left-side rejects
  std::unordered_map<NodeId, Table> join_rejects_right;  // right-side rejects
  // Materialize / Sink outputs, by target name.
  std::unordered_map<std::string, Table> targets;
  // Total tuples flowing through all operators: a machine-independent proxy
  // for the run's work, used to compare initial vs optimized plans.
  int64_t rows_processed = 0;
  // Total bytes those tuples occupied (8 bytes per value, per the row
  // layout): the denominator for per-MB instrumentation overhead reporting.
  int64_t bytes_processed = 0;

  // Per-operator profile (self wall time, rows, bytes), populated only when
  // obs::ProfilerEnabled() — empty otherwise. tap_ns is filled in later by
  // the pipeline once instrumentation has run over the cached outputs.
  obs::RunProfile profile;

  // ---- robustness accounting (all empty/zero on a clean, un-faulted run) --
  // Malformed rows diverted per source — the error-sink tables mirroring
  // the paper's reject links, kept for audit instead of silently dropped.
  std::unordered_map<std::string, Table> quarantined;
  // Transient-failure retries absorbed per source.
  std::unordered_map<std::string, int64_t> source_retries;
  // Rows scanned per source (quarantined rows included) — the per-source
  // progress watermarks a partial ledger record carries.
  std::unordered_map<std::string, int64_t> source_rows_read;

  // Estimate monitors that exceeded the q-error bound during the run
  // (ExecutorOptions::monitors). Under monitor_abort the first violation
  // also aborts with kGuard; otherwise the run completes and the guard
  // layer marks the plan unsafe for reuse.
  std::vector<MonitorViolation> monitor_violations;

  // When the run stopped early: what happened and where. node_outputs then
  // holds only the operators that completed before the abort — the salvage
  // surface for partial-statistics collection.
  AbortKind abort_kind = AbortKind::kNone;
  std::string abort_reason;
  NodeId abort_node = kInvalidNode;
  // Nodes the workflow has in total vs. nodes that completed: the coarse
  // run-completion watermark.
  int nodes_total = 0;
  int nodes_completed = 0;

  // ---- parallelism accounting (all zero on the serial path) ----
  // Worker threads and partition fan-out of the run (engine/parallel/).
  int num_workers = 0;
  int partitions_total = 0;
  int partitions_completed = 0;
  // Nodes whose output covers only the completed partitions — the
  // partition-granular salvage surface after a partition-scoped crash.
  int nodes_partial = 0;
  // Time spent at the merge barrier reassembling partition slices.
  int64_t merge_ns = 0;
  // max / mean partition cardinality over the partitioned source rows.
  double partition_skew = 0.0;
  // Source rows assigned to each partition — the per-partition progress
  // watermarks a partial checkpoint carries.
  std::vector<int64_t> partition_rows;

  bool aborted() const { return abort_kind != AbortKind::kNone; }
  int64_t quarantined_rows() const {
    int64_t total = 0;
    for (const auto& [name, table] : quarantined) total += table.num_rows();
    return total;
  }
  double completion_fraction() const {
    if (nodes_total <= 0) return 1.0;
    double completed = nodes_completed;
    // A partially-gathered node counts by its completed-partition share,
    // so a partition-scoped crash reports finer progress than whole nodes.
    if (partitions_total > 0 && nodes_partial > 0) {
      completed += nodes_partial * static_cast<double>(partitions_completed) /
                   partitions_total;
    }
    return completed / nodes_total;
  }
};

// Single-threaded row-at-a-time executor for ETL workflows.
//
// Failure semantics: unrecoverable *configuration* errors (unbound source,
// schema mismatch) return a non-OK Result as before. Injected *runtime*
// faults that stop the run mid-flight (crash points, quarantine overflow,
// retry exhaustion) return an OK Result whose ExecutionResult carries
// abort_kind != kNone plus everything computed up to the abort — callers
// salvage statistics from the completed prefix instead of losing the run.
class Executor {
 public:
  explicit Executor(const Workflow* workflow, ExecutorOptions options = {});

  Result<ExecutionResult> Execute(const SourceMap& sources) const;

  const ExecutorOptions& options() const { return options_; }

 private:
  const Workflow* wf_;
  ExecutorOptions options_;
};

// ---- shared per-node execution steps ----------------------------------
// The serial loop body, split in two so the partitioned executor
// (engine/parallel/) runs the exact same semantics: kPre/kPost nodes go
// through the full step, while partitioned nodes compute their output on
// the worker pool and re-join the serial bookkeeping at the merge barrier
// via FinishNodeStep. Everything an operator touches travels through the
// context, so a step never reaches for globals the caller didn't choose.

// The fault-injection identity of an operator: lowercased OpKindName +
// node id ("join5"), shared by fault specs and profile frame labels.
std::string OpFaultName(const WorkflowNode& node);

struct NodeStepContext {
  const Workflow* wf = nullptr;
  const SourceMap* sources = nullptr;
  const ExecutorOptions* options = nullptr;
  fault::FaultInjector* inj = nullptr;  // null = fault layer disabled
  bool profiling = false;
  Rng* backoff_rng = nullptr;  // deterministic retry jitter
  ExecutionResult* result = nullptr;
};

// Records an early stop on ctx.result (abort kind/reason/node + telemetry).
void AbortRun(const NodeStepContext& ctx, AbortKind kind, std::string reason,
              const WorkflowNode& node);

// Runs the operator itself: reads inputs from result->node_outputs, fills
// `out`, and does the in-switch bookkeeping (rows_processed, targets,
// join rejects, source retry/quarantine). Configuration errors come back
// as a non-OK Status; runtime aborts land in result->abort_*.
Status ComputeNodeOutput(const NodeStepContext& ctx, const WorkflowNode& node,
                         Table* out);

// The post-operator half: crash-fault consult, byte accounting, profile op,
// per-op metrics, and publication into result->node_outputs. `self_ns` is
// the operator's measured self time (summed across workers when the node
// ran partitioned). No-op beyond the consult when the run aborted.
void FinishNodeStep(const NodeStepContext& ctx, const WorkflowNode& node,
                    Table&& out, int64_t self_ns);

// ComputeNodeOutput + self-time measurement + FinishNodeStep, under the
// operator's trace span: one full serial node step.
Status ExecuteNodeStep(const NodeStepContext& ctx, const WorkflowNode& node);

// Executes a join of two tables on a shared attribute (hash join; build on
// the right input). When `rejects` is non-null it receives the left rows
// with no match. Exposed for the instrumentation side-joins of the
// union-division statistics. `build_rows_hint` > 0 presizes the build
// table from the estimator's predicted build cardinality
// (ExecutorOptions::build_rows_hints); <= 0 falls back to the row count.
Table HashJoin(const Table& left, const Table& right, AttrId attr,
               Table* rejects, int64_t build_rows_hint = -1);

// Sort-merge implementation of the same join (identical output multiset,
// different physical cost profile). The executor dispatches on
// JoinSpec::algorithm; kAuto uses hash.
Table SortMergeJoin(const Table& left, const Table& right, AttrId attr,
                    Table* rejects);

// Derives ExecutorOptions::build_rows_hints from armed plan monitors: for
// every join node whose build (right) input carries an expected
// cardinality, the hash join reserves from the prediction instead of
// discovering the size row by row.
std::unordered_map<NodeId, int64_t> BuildSideCardHints(
    const Workflow& wf,
    const std::unordered_map<NodeId, PlanMonitor>& monitors);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_EXECUTOR_H_
