#ifndef ETLOPT_OPT_EXEC_COVER_H_
#define ETLOPT_OPT_EXEC_COVER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "planspace/plan_space.h"

namespace etlopt {

// The Section 7.3 baseline: observing only trivial CSSs (plain cardinality
// counters) and re-executing the flow with re-ordered plans until every SE
// has been on-path at least once — the pay-as-you-go strategy of
// [Chaudhuri et al. 2008] that the paper compares against in Figure 12.
struct ExecCoverResult {
  // The paper's lower bound ⌈(2ⁿ − (n+2)) / (n−2)⌉ (n ≥ 3; 1 otherwise),
  // which ignores query semantics.
  int64_t formula_lower_bound = 1;
  // Semantics-aware bound ⌈|coverable SEs| / (n−2)⌉ over the actual E
  // (cross products excluded).
  int64_t semantic_lower_bound = 1;
  // Executions used by the greedy tree cover (the "one possible solution"
  // upper bound of the paper).
  int executions = 1;
  // Newly covered SEs per execution.
  std::vector<std::vector<RelMask>> per_run_covered;
  // The full join tree of each execution: split per internal SE (the plan a
  // driver can rewrite the workflow to, making those SEs on-path).
  struct CoverTree {
    std::unordered_map<RelMask, std::pair<RelMask, RelMask>> splits;
  };
  std::vector<CoverTree> per_run_tree;
};

// Covers all SEs of the block with full join trees. When `universe` is
// non-null, only those SEs need covering (used by the memory-budget mode of
// Section 6.1); otherwise all non-singleton, non-full SEs.
ExecCoverResult ComputeExecutionCover(
    const BlockContext& ctx, const PlanSpace& plan_space,
    const std::vector<RelMask>* universe = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_OPT_EXEC_COVER_H_
