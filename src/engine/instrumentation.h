#ifndef ETLOPT_ENGINE_INSTRUMENTATION_H_
#define ETLOPT_ENGINE_INSTRUMENTATION_H_

#include <vector>

#include "engine/executor.h"
#include "planspace/block.h"
#include "stats/stat_key.h"
#include "stats/stat_store.h"

namespace etlopt {

// Observes the requested (observable) statistics from a run of the initial
// plan (steps 5-6 of the framework, Fig. 2). Every key must satisfy
// IsObservable for this block. Counters and histograms read the cached
// pipeline-point tables; reject-join statistics attach to the designed join
// of L with k (adding the reject link the paper describes for Fig. 5) and
// evaluate the small side-join against the on-path R table.
Result<StatStore> ObserveStatistics(const BlockContext& ctx,
                                    const ExecutionResult& exec,
                                    const std::vector<StatKey>& keys);

// Ground truth for testing and experiments: the exact cardinality of every
// SE in the plan space, computed by directly evaluating each SE over the
// block's chain-top tables.
Result<std::unordered_map<RelMask, int64_t>> ComputeGroundTruthCards(
    const BlockContext& ctx, const std::vector<RelMask>& subexpressions,
    const ExecutionResult& exec);

// Directly materializes one SE (join of the chain tops in `rels` along the
// designed join edges). Exposed for property tests on histograms.
Result<Table> MaterializeSubexpression(const BlockContext& ctx, RelMask rels,
                                       const ExecutionResult& exec);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_INSTRUMENTATION_H_
