#include "planspace/observability.h"

namespace etlopt {

bool IsObservable(const StatKey& key, const BlockContext& ctx) {
  switch (key.kind) {
    case StatKind::kCard:
    case StatKind::kDistinct:
    case StatKind::kHist: {
      AttrMask available;
      if (key.is_chain_stage()) {
        // Chain stages flow in every plan.
        const int rel = LowestBit(key.rels);
        available = ctx.StageSchemaMask(rel, key.stage);
      } else {
        if (!ctx.IsOnPath(key.rels)) return false;
        available = ctx.SchemaMask(key.rels);
      }
      if (key.kind == StatKind::kCard) return true;
      return IsSubset(key.attrs, available);
    }
    case StatKind::kRejectJoinCard:
    case StatKind::kRejectJoinHist: {
      if (!ctx.IsOnPath(key.reject_left)) return false;
      if (!ctx.IsOnPath(key.rels)) return false;
      const RelMask partner = ctx.InitialNextPartner(key.reject_left);
      if (partner != (RelMask{1} << key.reject_k)) return false;
      if (key.kind == StatKind::kRejectJoinCard) return true;
      const AttrMask available =
          ctx.SchemaMask(key.reject_left) | ctx.SchemaMask(key.rels);
      return IsSubset(key.attrs, available);
    }
  }
  return false;
}

}  // namespace etlopt
