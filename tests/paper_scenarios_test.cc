// Tests that mirror the paper's worked examples: the Figure 5 plan with its
// union-division statistics (the s1..s12 universe of Figure 8), and the
// Figure 7 cost-amortization story.

#include <gtest/gtest.h>

#include <algorithm>

#include "css/generator.h"
#include "engine/instrumentation.h"
#include "estimator/estimator.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"
#include "planspace/observability.h"
#include "test_util.h"

namespace etlopt {
namespace {

// Figure 5: T1 joins T3 first (on J13), then T2 (on J12). T1 carries both
// keys. Block rels: T1=0, T3=1, T2=2.
struct Fig5 : ::testing::Test {
  void SetUp() override {
    WorkflowBuilder b("fig5");
    j13 = b.DeclareAttr("J13", 40);
    j12 = b.DeclareAttr("J12", 60);
    const NodeId t1 = b.Source("T1", {j13, j12});
    const NodeId t3 = b.Source("T3", {j13});
    const NodeId t2 = b.Source("T2", {j12});
    const NodeId a = b.Join(t1, t3, j13);
    const NodeId out = b.Join(a, t2, j12);
    b.Sink(out, "target");
    wf = std::move(b).Build().value();
    const std::vector<Block> blocks = PartitionBlocks(wf);
    ctx = BlockContext::Build(&wf, blocks[0]).value();
    ps = PlanSpace::Build(ctx).value();
    catalog = GenerateCss(ctx, ps, {});
  }

  Workflow wf;
  AttrId j13 = kInvalidAttr;
  AttrId j12 = kInvalidAttr;
  BlockContext ctx;
  PlanSpace ps;
  CssCatalog catalog;
};

TEST_F(Fig5, StatisticsUniverseContainsFigure8Entries) {
  const AttrMask j13b = AttrMask{1} << j13;
  const AttrMask j12b = AttrMask{1} << j12;
  // s1..s7: the SE cardinalities (T2,T3 numbering differs; masks matter).
  for (RelMask se : ps.subexpressions()) {
    EXPECT_GE(catalog.IndexOf(StatKey::Card(se)), 0);
  }
  // s8, s9: H^{J12} on T1 and T2.
  EXPECT_GE(catalog.IndexOf(StatKey::Hist(0b001, j12b)), 0);
  EXPECT_GE(catalog.IndexOf(StatKey::Hist(0b100, j12b)), 0);
  // s10: H^{J13} on T3; s11: H^{J13} on T123.
  EXPECT_GE(catalog.IndexOf(StatKey::Hist(0b010, j13b)), 0);
  EXPECT_GE(catalog.IndexOf(StatKey::Hist(0b111, j13b)), 0);
  // s12: the reject-join statistic of rule J4 (Figure 5's added reject
  // link): reject(T1 wrt T3) ⋈ T2.
  EXPECT_GE(catalog.IndexOf(StatKey::RejectJoinCard(0b001, 1, 0b100)), 0);
}

TEST_F(Fig5, UnionDivisionCssForT12MatchesPaper) {
  // CSS-4 of Figure 7: {H^{J13}_{T123}, H^{J13}_{T3}, |rej(T1)⋈T2|} covers
  // |T1,2| — which is exactly what the J4 rule emits for the (T1,T2) plan.
  const AttrMask j13b = AttrMask{1} << j13;
  const int idx = catalog.IndexOf(StatKey::Card(0b101));  // T1 ⋈ T2
  ASSERT_GE(idx, 0);
  bool found = false;
  for (int c : catalog.css_of(idx)) {
    const CssEntry& entry = catalog.entry(c);
    if (entry.rule != RuleId::kJ4) continue;
    EXPECT_EQ(entry.inputs.size(), 3u);
    EXPECT_NE(std::find(entry.inputs.begin(), entry.inputs.end(),
                        StatKey::Hist(0b111, j13b)),
              entry.inputs.end());
    EXPECT_NE(std::find(entry.inputs.begin(), entry.inputs.end(),
                        StatKey::Hist(0b010, j13b)),
              entry.inputs.end());
    EXPECT_NE(std::find(entry.inputs.begin(), entry.inputs.end(),
                        StatKey::RejectJoinCard(0b001, 1, 0b100)),
              entry.inputs.end());
    found = true;
  }
  EXPECT_TRUE(found) << "J4 CSS for |T1⋈T2| missing";
}

TEST_F(Fig5, ObservabilityMatchesFigure8Row) {
  // Figure 8's S_O row: |T12| and |T23| are NOT observable in this plan;
  // all base cards, |T13|, |T123| and the listed histograms are.
  EXPECT_FALSE(IsObservable(StatKey::Card(0b101), ctx));  // |T1⋈T2|
  EXPECT_FALSE(IsObservable(StatKey::Card(0b110), ctx));  // |T3⋈T2|
  EXPECT_TRUE(IsObservable(StatKey::Card(0b001), ctx));
  EXPECT_TRUE(IsObservable(StatKey::Card(0b011), ctx));  // T1⋈T3 on-path
  EXPECT_TRUE(IsObservable(StatKey::Card(0b111), ctx));
  const AttrMask j12b = AttrMask{1} << j12;
  const AttrMask j13b = AttrMask{1} << j13;
  EXPECT_TRUE(IsObservable(StatKey::Hist(0b001, j12b), ctx));
  EXPECT_TRUE(IsObservable(StatKey::Hist(0b100, j12b), ctx));
  EXPECT_TRUE(IsObservable(StatKey::Hist(0b010, j13b), ctx));
  EXPECT_TRUE(IsObservable(StatKey::Hist(0b111, j13b), ctx));
  EXPECT_TRUE(
      IsObservable(StatKey::RejectJoinCard(0b001, 1, 0b100), ctx));
}

TEST_F(Fig5, EstimationThroughRejectLinkIsExact) {
  // Execute with data containing T1 rows that do NOT join T3 (so the
  // reject part of Eq. 1 is non-trivial) and verify |T1⋈T2| exactly.
  Rng rng(55);
  SourceMap sources;
  Table t1{Schema({j13, j12})};
  for (int i = 0; i < 500; ++i) {
    t1.AddRow({rng.NextInRange(1, 40), rng.NextInRange(1, 60)});
  }
  Table t3{Schema({j13})};
  for (int i = 0; i < 60; ++i) {
    t3.AddRow({rng.NextInRange(1, 25)});  // values 26..40 get rejected
  }
  Table t2{Schema({j12})};
  for (int i = 0; i < 80; ++i) {
    t2.AddRow({rng.NextInRange(1, 60)});
  }
  sources["T1"] = std::move(t1);
  sources["T3"] = std::move(t3);
  sources["T2"] = std::move(t2);

  const ExecutionResult exec = Executor(&wf).Execute(sources).value();
  // Make sure rejects actually occur.
  ASSERT_GT(exec.join_rejects.at(ctx.on_path().at(0b011)).num_rows(), 0);

  const AttrMask j13b = AttrMask{1} << j13;
  const std::vector<StatKey> keys = {
      StatKey::Hist(0b111, j13b), StatKey::Hist(0b010, j13b),
      StatKey::RejectJoinCard(0b001, 1, 0b100)};
  const StatStore observed = ObserveStatistics(ctx, exec, keys).value();
  Estimator estimator(&ctx, &catalog);
  ASSERT_TRUE(estimator.DeriveAll(observed).ok());
  const auto truth =
      ComputeGroundTruthCards(ctx, {0b101}, exec).value();
  EXPECT_EQ(*estimator.Cardinality(0b101), truth.at(0b101));
}

// Figure 7's amortization story: when T1 joins T2 and T3 on the SAME
// attribute, H^{J}_{T1} is shared between the two histogram CSSs, so the
// globally optimal choice buys it once.
TEST(Fig7Amortization, SharedHistogramIsBoughtOnce) {
  WorkflowBuilder b("fig7");
  const AttrId j = b.DeclareAttr("J", 100);
  const NodeId t1 = b.Source("T1", {j});
  const NodeId t3 = b.Source("T3", {j});
  const NodeId t2 = b.Source("T2", {j});
  const NodeId a = b.Join(t1, t3, j);
  b.Sink(b.Join(a, t2, j), "target");
  Workflow wf = std::move(b).Build().value();
  const std::vector<Block> blocks = PartitionBlocks(wf);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  CostModel cost_model(&wf.catalog(), {});
  const SelectionProblem problem =
      BuildSelectionProblem(ctx, ps, catalog, cost_model);
  const SelectionResult result = SelectIlp(problem);
  ASSERT_TRUE(result.feasible);
  // Covering |T1⋈T2| and |T1⋈T3| (and everything else) needs histograms on
  // the shared attribute; the optimum is three single-attribute histograms
  // (T1, T2, T3) + nothing else beyond free counters. 3*|J| + counters.
  EXPECT_LE(result.total_cost, 3.0 * 100 + 10);
  int hist_t1 = 0;
  for (const StatKey& key : result.ObservedKeys(catalog)) {
    if (key.kind == StatKind::kHist && key.rels == 0b001) ++hist_t1;
  }
  EXPECT_LE(hist_t1, 1) << "H^J_T1 must be shared, not duplicated";
}

}  // namespace
}  // namespace etlopt
