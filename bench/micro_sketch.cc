// Exact-vs-sketch collector micro-benchmarks: what a distinct count and a
// frequency histogram cost to collect at 1e4 / 1e6 / 1e7 rows, exactly
// (hash-table collectors, O(distinct) memory) and through the budget-bounded
// sketch taps (HLL; Count-Min + KMV). Each run reports the collector's
// memory footprint and the estimate's q-error as benchmark counters — the
// committed BENCH_sketch.json is the acceptance evidence that at 1e6 rows
// under a 1 MiB budget the distinct estimate stays within 5% of exact while
// tap memory drops by >= 10x.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sketch/sketch.h"
#include "sketch/tap.h"

namespace etlopt {
namespace {

constexpr int64_t kTapBudgetBytes = int64_t{1} << 20;  // 1 MiB

// Distinct keys per stream: every row distinct for the distinct-count
// benchmarks, 1% distinct for the histogram benchmarks (100 rows/bucket).
int64_t HistKey(int64_t i, int64_t rows) { return i % (rows / 100); }

double QError(double estimated, double actual) {
  const double lo = std::max(std::min(estimated, actual), 1.0);
  const double hi = std::max(std::max(estimated, actual), 1.0);
  return hi / lo;
}

void BM_ExactDistinct(benchmark::State& state) {
  const int64_t rows = state.range(0);
  for (auto _ : state) {
    std::unordered_set<Value> seen;
    seen.reserve(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) seen.insert(i);
    benchmark::DoNotOptimize(seen.size());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["bytes"] = static_cast<double>(
      sketch::EstimateExactDistinctBytes(rows, 1));
  state.counters["qerror"] = 1.0;
}
BENCHMARK(BM_ExactDistinct)
    ->Arg(10000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

void BM_SketchDistinct(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const auto config = sketch::TapSketchConfig::ForBudget(kTapBudgetBytes, 1);
  double qerror = 1.0;
  int64_t bytes = 0;
  for (auto _ : state) {
    sketch::Hll hll(config.hll_precision);
    for (int64_t i = 0; i < rows; ++i) {
      hll.AddHash(sketch::HashValue(i));
    }
    qerror = QError(static_cast<double>(hll.Estimate()),
                    static_cast<double>(rows));
    bytes = hll.MemoryBytes();
    benchmark::DoNotOptimize(hll.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["qerror"] = qerror;
}
BENCHMARK(BM_SketchDistinct)
    ->Arg(10000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

void BM_ExactHistogram(benchmark::State& state) {
  const int64_t rows = state.range(0);
  for (auto _ : state) {
    std::unordered_map<Value, int64_t> hist;
    hist.reserve(static_cast<size_t>(rows / 100));
    for (int64_t i = 0; i < rows; ++i) ++hist[HistKey(i, rows)];
    benchmark::DoNotOptimize(hist.size());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["bytes"] = static_cast<double>(
      sketch::EstimateExactHistBytes(rows / 100, 1));
  state.counters["qerror"] = 1.0;
}
BENCHMARK(BM_ExactHistogram)
    ->Arg(10000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

void BM_SketchHistogram(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const auto config = sketch::TapSketchConfig::ForBudget(kTapBudgetBytes, 1);
  double qerror = 1.0;
  int64_t bytes = 0;
  for (auto _ : state) {
    sketch::HistTap tap(config, 1);
    for (int64_t i = 0; i < rows; ++i) tap.AddRow({HistKey(i, rows)});
    const Histogram hist = tap.Build(AttrMask{1});
    qerror = QError(static_cast<double>(hist.TotalCount()),
                    static_cast<double>(rows));
    bytes = tap.MemoryBytes();
    benchmark::DoNotOptimize(hist.NumBuckets());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["qerror"] = qerror;
}
BENCHMARK(BM_SketchHistogram)
    ->Arg(10000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

// Mergeability at scale: sketching 8 partitions independently and merging
// must match the single-stream sketch — the building block for future
// partitioned (parallel) tap collection.
void BM_SketchMerge8Way(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const auto config = sketch::TapSketchConfig::ForBudget(kTapBudgetBytes, 1);
  for (auto _ : state) {
    std::vector<sketch::Hll> parts(8, sketch::Hll(config.hll_precision));
    for (int64_t i = 0; i < rows; ++i) {
      parts[static_cast<size_t>(i & 7)].AddHash(sketch::HashValue(i));
    }
    sketch::Hll merged = parts[0];
    for (size_t p = 1; p < parts.size(); ++p) {
      benchmark::DoNotOptimize(merged.Merge(parts[p]).ok());
    }
    benchmark::DoNotOptimize(merged.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SketchMerge8Way)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
