#include <gtest/gtest.h>

#include "core/report.h"
#include "datagen/workload_suite.h"
#include "etl/transforms.h"
#include "etl/workflow_io.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(TransformRegistryTest, LookupByNameAndFunction) {
  auto fn = LookupTransformByName("standardize");
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(10), 21);
  EXPECT_EQ(LookupTransformName(fn), "standardize");
  EXPECT_FALSE(static_cast<bool>(LookupTransformByName("nope")));
  // A lambda is not registered.
  std::function<Value(Value)> lambda = [](Value v) { return v; };
  EXPECT_EQ(LookupTransformName(lambda), "");
  EXPECT_FALSE(RegisteredTransformNames().empty());
}

TEST(WorkflowIoTest, RoundTripPaperExample) {
  auto ex = testing_util::MakePaperExample();
  Status status;
  const std::string text = WriteWorkflowText(ex.workflow, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const Result<Workflow> parsed = ParseWorkflowText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Round-trip to a fixed point: writing the parsed workflow reproduces the
  // text exactly.
  Status status2;
  EXPECT_EQ(WriteWorkflowText(*parsed, &status2), text);
  EXPECT_TRUE(status2.ok());
  // Same semantics: executing both gives identical sink output.
  const ExecutionResult a =
      Executor(&ex.workflow).Execute(ex.sources).value();
  const ExecutionResult b = Executor(&*parsed).Execute(ex.sources).value();
  EXPECT_EQ(a.targets.at("warehouse.orders").num_rows(),
            b.targets.at("warehouse.orders").num_rows());
}

TEST(WorkflowIoTest, RoundTripEntireSuite) {
  for (int i = 1; i <= 30; ++i) {
    const WorkloadSpec spec = BuildWorkload(i);
    Status status;
    const std::string text = WriteWorkflowText(spec.workflow, &status);
    ASSERT_TRUE(status.ok()) << spec.name << ": " << status.ToString();
    const Result<Workflow> parsed = ParseWorkflowText(text);
    ASSERT_TRUE(parsed.ok()) << spec.name << ": "
                             << parsed.status().ToString();
    Status status2;
    EXPECT_EQ(WriteWorkflowText(*parsed, &status2), text) << spec.name;
    // The parsed workflow partitions into the same block structure.
    EXPECT_EQ(PartitionBlocks(*parsed).size(),
              PartitionBlocks(spec.workflow).size())
        << spec.name;
  }
}

TEST(WorkflowIoTest, AllOperatorKindsSerialize) {
  WorkflowBuilder b("every_op");
  const AttrId k = b.DeclareAttr("k", 50);
  const AttrId x = b.DeclareAttr("x", 30);
  const AttrId d = b.DeclareAttr("d", 10);
  const AttrId cnt = b.DeclareAttr("cnt", 100000);
  const NodeId src = b.Source("S", {k, x});
  const NodeId f = b.Filter(src, {x, CompareOp::kGe, 3});
  const NodeId t = b.Transform(f, x, transforms::PlusOne);
  const NodeId dv = b.DeriveAttr(t, x, d, transforms::BucketizeBy10);
  const NodeId pj = b.Project(dv, {k, d});
  const NodeId g = b.Aggregate(pj, {k, d}, cnt);
  const NodeId dim = b.Source("D", {k});
  JoinOptions opts;
  opts.reject_link = true;
  opts.fk_lookup = true;
  const NodeId j = b.Join(g, dim, k, opts);
  const NodeId m = b.Materialize(j, "staging.t");
  const NodeId u = b.AggregateUdf(m, d, transforms::Mod100);
  b.Sink(u, "warehouse.t");
  const Workflow wf = std::move(b).Build().value();

  Status status;
  const std::string text = WriteWorkflowText(wf, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const Result<Workflow> parsed = ParseWorkflowText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  Status status2;
  EXPECT_EQ(WriteWorkflowText(*parsed, &status2), text);
}

TEST(WorkflowIoTest, LambdaTransformFailsToSerializeWithClearError) {
  WorkflowBuilder b("lam");
  const AttrId k = b.DeclareAttr("k", 5);
  const NodeId src = b.Source("S", {k});
  const NodeId t = b.Transform(src, k, [](Value v) { return v; });
  b.Sink(t, "out");
  const Workflow wf = std::move(b).Build().value();
  Status status;
  WriteWorkflowText(wf, &status);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unregistered transform"),
            std::string::npos);
}

TEST(WorkflowIoTest, ParserRejectsMalformedInput) {
  // Missing workflow directive.
  EXPECT_FALSE(ParseWorkflowText("attr a 5\n").ok());
  // Unknown attribute.
  EXPECT_FALSE(ParseWorkflowText("workflow w\n"
                                 "node 0 source S cols nope\n")
                   .ok());
  // Bad node ordering.
  EXPECT_FALSE(ParseWorkflowText("workflow w\n"
                                 "attr a 5\n"
                                 "node 1 source S cols a\n")
                   .ok());
  // Unknown operator.
  EXPECT_FALSE(ParseWorkflowText("workflow w\n"
                                 "attr a 5\n"
                                 "node 0 frobnicate S\n")
                   .ok());
  // Unknown transform.
  EXPECT_FALSE(ParseWorkflowText("workflow w\n"
                                 "attr a 5\n"
                                 "node 0 source S cols a\n"
                                 "node 1 transform 0 attr a fn nope\n"
                                 "node 2 sink 1 target t\n")
                   .ok());
  // Unknown comparison operator.
  EXPECT_FALSE(ParseWorkflowText("workflow w\n"
                                 "attr a 5\n"
                                 "node 0 source S cols a\n"
                                 "node 1 filter 0 where a ?? 3\n"
                                 "node 2 sink 1 target t\n")
                   .ok());
  // Forward node reference.
  EXPECT_FALSE(ParseWorkflowText("workflow w\n"
                                 "attr a 5\n"
                                 "node 0 sink 1 target t\n")
                   .ok());
  // Empty file.
  EXPECT_FALSE(ParseWorkflowText("").ok());
}

TEST(WorkflowIoTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# a comment\n"
      "workflow w\n"
      "\n"
      "attr a 5   # trailing comment\n"
      "node 0 source S cols a\n"
      "node 1 sink 0 target t\n";
  const Result<Workflow> parsed = ParseWorkflowText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes(), 2);
}

TEST(WorkflowIoTest, SaveAndLoadFile) {
  auto ex = testing_util::MakePaperExample();
  const std::string path = ::testing::TempDir() + "/wf_roundtrip.etl";
  ASSERT_TRUE(SaveWorkflow(ex.workflow, path).ok());
  const Result<Workflow> loaded = LoadWorkflow(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), ex.workflow.num_nodes());
  EXPECT_FALSE(LoadWorkflow("/nonexistent/path.etl").ok());
}

TEST(ReportTest, AnalysisReportMentionsKeyFacts) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(ex.workflow).value();
  const std::string report = FormatAnalysisReport(*analysis);
  EXPECT_NE(report.find("orders_load"), std::string::npos);
  EXPECT_NE(report.find("optimizable block"), std::string::npos);
  EXPECT_NE(report.find("sub-expressions"), std::string::npos);
  EXPECT_NE(report.find("observe"), std::string::npos);
  EXPECT_NE(report.find("total observation cost"), std::string::npos);
}

}  // namespace
}  // namespace etlopt
