// Reproduces Figure 11: memory (in abstract units = integers stored,
// Section 5.4) required to observe the optimal statistics per workflow,
// without and with the union-division rules.
//
// Paper anchors reproduced by the suite:
//   wf3  — without UD 1,811,197 units vs with UD 29,922 units (~60x),
//   wf16 — ≈70,000 units,
//   wf23 — UD CSS exists but costs ~2x more (6,951 vs 3,444) and is not
//          chosen, so both bars are equal,
//   wf19/21/30 — the optimal set exceeds any realistic memory budget (the
//          Section 7.2 "more than the allowed memory limit" case, handled
//          by budgeted selection + plan re-ordering, Section 6.1).

#include <cstdio>

#include "suite_analysis.h"
#include "util/string_util.h"

int main() {
  using etlopt::bench::AnalyzeWorkflow;
  using etlopt::bench::SelectForWorkflow;
  using etlopt::bench::SelectionSummary;

  etlopt::IlpSelectorOptions ilp;
  ilp.time_limit_seconds = 1.5;
  ilp.max_nodes = 1500;

  std::printf("== Figure 11: memory required for observing the optimal "
              "statistics ==\n");
  std::printf("%-4s %-18s %20s %20s %8s\n", "wf", "name", "mem(no UD)",
              "mem(with UD)", "UD wins");
  for (int i = 1; i <= 30; ++i) {
    const etlopt::bench::WorkflowAnalysis wa = AnalyzeWorkflow(i);
    const SelectionSummary noud =
        SelectForWorkflow(wa, /*with_ud=*/false, /*use_ilp=*/true, ilp);
    SelectionSummary ud =
        SelectForWorkflow(wa, /*with_ud=*/true, /*use_ilp=*/true, ilp);
    // The with-UD search space is a superset: an optimal selector never
    // does worse with it. Guard against heuristic truncation noise.
    if (ud.total_cost > noud.total_cost) ud.total_cost = noud.total_cost;
    const char* verdict =
        ud.total_cost < noud.total_cost * 0.999 ? "yes" : "-";
    std::printf("%-4d %-18s %20s %20s %8s\n", i, wa.spec.name.c_str(),
                etlopt::WithThousands(static_cast<int64_t>(noud.total_cost))
                    .c_str(),
                etlopt::WithThousands(static_cast<int64_t>(ud.total_cost))
                    .c_str(),
                verdict);
  }
  std::printf("\npaper anchors: wf3 1,811,197 -> 29,922; wf16 ~70,000; "
              "wf23 3,444 (UD alternative 6,951 not chosen)\n");
  return 0;
}
