#include "stats/stat_key.h"

#include <sstream>

namespace etlopt {

const char* StatKindName(StatKind kind) {
  switch (kind) {
    case StatKind::kCard:
      return "Card";
    case StatKind::kDistinct:
      return "Distinct";
    case StatKind::kHist:
      return "Hist";
    case StatKind::kRejectJoinCard:
      return "RejectJoinCard";
    case StatKind::kRejectJoinHist:
      return "RejectJoinHist";
  }
  return "Unknown";
}

namespace {

std::string RelsToString(RelMask mask) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (int idx : MaskToIndices(mask)) {
    if (!first) out << ",";
    out << "R" << idx;
    first = false;
  }
  out << "}";
  return out.str();
}

std::string AttrsToString(AttrMask mask, const AttrCatalog* catalog) {
  if (catalog != nullptr) return catalog->MaskToString(mask);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (int idx : MaskToIndices(mask)) {
    if (!first) out << ",";
    out << "a" << idx;
    first = false;
  }
  out << "}";
  return out.str();
}

}  // namespace

std::string StatKey::ToString(const AttrCatalog* catalog) const {
  std::ostringstream out;
  std::string se = RelsToString(rels);
  if (is_chain_stage()) se += "@s" + std::to_string(stage);
  switch (kind) {
    case StatKind::kCard:
      out << "|" << se << "|";
      break;
    case StatKind::kDistinct:
      out << "D" << se << "^" << AttrsToString(attrs, catalog);
      break;
    case StatKind::kHist:
      out << "H" << se << "^" << AttrsToString(attrs, catalog);
      break;
    case StatKind::kRejectJoinCard:
      out << "|rej(" << RelsToString(reject_left) << " wrt R"
          << static_cast<int>(reject_k) << ") >< " << se << "|";
      break;
    case StatKind::kRejectJoinHist:
      out << "Hrej(" << RelsToString(reject_left) << " wrt R"
          << static_cast<int>(reject_k) << " >< " << se << ")^"
          << AttrsToString(attrs, catalog);
      break;
  }
  return out.str();
}

}  // namespace etlopt
