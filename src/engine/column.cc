#include "engine/column.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace etlopt {
namespace {

bool VectorizedFromEnv() {
  const char* value = std::getenv("ETLOPT_VECTORIZED");
  if (value == nullptr || *value == '\0') return true;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
           std::strcmp(value, "false") == 0);
}

std::atomic<bool>& VectorizedFlag() {
  static std::atomic<bool> flag{VectorizedFromEnv()};
  return flag;
}

}  // namespace

bool VectorizedKernels() {
  return VectorizedFlag().load(std::memory_order_relaxed);
}

void SetVectorizedKernels(bool on) {
  VectorizedFlag().store(on, std::memory_order_relaxed);
}

namespace {

// Branchless selection: always write the row index, advance the cursor by
// the comparison result. No per-element branch to mispredict, so the loop
// runs at memory speed regardless of selectivity.
template <typename Cmp>
int64_t SelectInto(const Value* data, int64_t n, int64_t* out, Cmp cmp) {
  int64_t k = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[k] = i;
    k += static_cast<int64_t>(cmp(data[i]));
  }
  return k;
}

}  // namespace

void BuildSelection(const Predicate& pred, const Value* data, int64_t n,
                    SelVector* sel) {
  const size_t base = sel->size();
  sel->resize(base + static_cast<size_t>(n));
  int64_t* out = sel->data() + base;
  const Value c = pred.constant;
  int64_t k = 0;
  switch (pred.op) {
    case CompareOp::kEq:
      k = SelectInto(data, n, out, [c](Value v) { return v == c; });
      break;
    case CompareOp::kNe:
      k = SelectInto(data, n, out, [c](Value v) { return v != c; });
      break;
    case CompareOp::kLt:
      k = SelectInto(data, n, out, [c](Value v) { return v < c; });
      break;
    case CompareOp::kLe:
      k = SelectInto(data, n, out, [c](Value v) { return v <= c; });
      break;
    case CompareOp::kGt:
      k = SelectInto(data, n, out, [c](Value v) { return v > c; });
      break;
    case CompareOp::kGe:
      k = SelectInto(data, n, out, [c](Value v) { return v >= c; });
      break;
  }
  sel->resize(base + static_cast<size_t>(k));
}

void GatherColumn(const Column& src, const SelVector& sel, Column* out) {
  out->resize(sel.size());
  Value* dst = out->data();
  const Value* in = src.data();
  for (size_t i = 0; i < sel.size(); ++i) {
    dst[i] = in[sel[i]];
  }
}

void MapColumn(const std::function<Value(Value)>& fn, const Value* in,
               int64_t n, Column* out) {
  out->resize(static_cast<size_t>(n));
  Value* dst = out->data();
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = fn(in[i]);
  }
}

JoinHashTable::JoinHashTable(const Value* keys, int64_t n,
                             int64_t capacity_hint) {
  // Slot directory sized for ~50% max load over the larger of the actual
  // row count and the predicted cardinality (the hint can only grow it;
  // correctness never depends on the prediction).
  const int64_t target = capacity_hint > n ? capacity_hint : n;
  uint64_t cap = 16;
  while (cap < 2 * static_cast<uint64_t>(target > 0 ? target : 1)) cap <<= 1;
  mask_ = cap - 1;
  slot_group_.assign(cap, -1);

  // Pass 1: one hash per build row, linear probing into the slot
  // directory; first occurrence of a key opens its group.
  std::vector<int64_t> group_of(static_cast<size_t>(n));
  std::vector<int64_t> counts;
  for (int64_t r = 0; r < n; ++r) {
    const Value key = keys[r];
    uint64_t slot = Hash64(key) & mask_;
    int64_t gid;
    for (;;) {
      gid = slot_group_[slot];
      if (gid < 0) {
        gid = static_cast<int64_t>(group_key_.size());
        group_key_.push_back(key);
        counts.push_back(0);
        slot_group_[slot] = gid;
        break;
      }
      if (group_key_[static_cast<size_t>(gid)] == key) break;
      slot = (slot + 1) & mask_;
    }
    ++counts[static_cast<size_t>(gid)];
    group_of[static_cast<size_t>(r)] = gid;
  }

  // Pass 2: prefix-sum the group sizes and scatter row ids, so each group's
  // rows land contiguously and keep ascending (build) order.
  group_start_.resize(group_key_.size() + 1, 0);
  for (size_t g = 0; g < counts.size(); ++g) {
    group_start_[g + 1] = group_start_[g] + counts[g];
  }
  std::vector<int64_t> cursor(group_start_.begin(), group_start_.end() - 1);
  row_ids_.resize(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    row_ids_[static_cast<size_t>(
        cursor[static_cast<size_t>(group_of[static_cast<size_t>(r)])]++)] = r;
  }
}

JoinHashTable::RowRange JoinHashTable::Lookup(Value key) const {
  uint64_t slot = Hash64(key) & mask_;
  for (;;) {
    const int64_t gid = slot_group_[slot];
    if (gid < 0) return {};
    if (group_key_[static_cast<size_t>(gid)] == key) {
      const int64_t* base = row_ids_.data();
      return {base + group_start_[static_cast<size_t>(gid)],
              base + group_start_[static_cast<size_t>(gid) + 1]};
    }
    slot = (slot + 1) & mask_;
  }
}

Value StringDictionary::Intern(const std::string& s) {
  const auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  strings_.push_back(s);
  const Value id = static_cast<Value>(strings_.size());
  ids_.emplace(s, id);
  return id;
}

Value StringDictionary::Find(const std::string& s) const {
  const auto it = ids_.find(s);
  return it != ids_.end() ? it->second : 0;
}

const std::string& StringDictionary::LookupId(Value id) const {
  ETLOPT_CHECK_MSG(id >= 1 && id <= static_cast<Value>(strings_.size()),
                   "string id outside the interned range");
  return strings_[static_cast<size_t>(id - 1)];
}

}  // namespace etlopt
