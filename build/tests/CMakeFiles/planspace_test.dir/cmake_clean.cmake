file(REMOVE_RECURSE
  "CMakeFiles/planspace_test.dir/planspace_test.cc.o"
  "CMakeFiles/planspace_test.dir/planspace_test.cc.o.d"
  "planspace_test"
  "planspace_test.pdb"
  "planspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
