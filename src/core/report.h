#ifndef ETLOPT_CORE_REPORT_H_
#define ETLOPT_CORE_REPORT_H_

#include <string>

#include "core/pipeline.h"

namespace etlopt {

struct ReportOptions {
  // Max observed statistics listed per block (the rest summarized).
  int max_listed_stats = 24;
  // Include the Figure-12-style execution-cover comparison per block.
  bool include_exec_cover = true;
};

// Human-readable rendering of one block's analysis: inputs, join graph,
// plan-space size, CSS counts, the chosen statistics and their cost.
std::string FormatBlockReport(const BlockAnalysis& block,
                              const AttrCatalog& catalog,
                              const ReportOptions& options = {});

// Whole-workflow advisor report (used by the etlopt_advisor CLI).
std::string FormatAnalysisReport(const Analysis& analysis,
                                 const ReportOptions& options = {});

// Observability summary: headline engine/selector counters plus the
// estimator q-error quantile table accumulated by obs::AccuracyTracker
// (populated whenever ground-truth cardinalities were available). Rendered
// by the advisor's --obs-summary flag.
std::string FormatObsSummary();

}  // namespace etlopt

#endif  // ETLOPT_CORE_REPORT_H_
