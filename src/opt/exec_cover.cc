#include "opt/exec_cover.h"

#include <unordered_map>
#include <unordered_set>

#include "util/common.h"

namespace etlopt {
namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

ExecCoverResult ComputeExecutionCover(const BlockContext& ctx,
                                      const PlanSpace& plan_space,
                                      const std::vector<RelMask>* universe) {
  ExecCoverResult result;
  const int n = ctx.num_rels();
  const RelMask full = ctx.full_mask();

  // Universe of SEs that need covering.
  std::unordered_set<RelMask> uncovered;
  if (universe != nullptr) {
    for (RelMask se : *universe) {
      if (!IsSingleton(se) && se != full) uncovered.insert(se);
    }
  } else {
    for (RelMask se : plan_space.subexpressions()) {
      if (!IsSingleton(se) && se != full) uncovered.insert(se);
    }
  }

  if (n >= 3) {
    result.formula_lower_bound =
        CeilDiv((int64_t{1} << n) - (n + 2), n - 2);
    if (result.formula_lower_bound < 1) result.formula_lower_bound = 1;
    result.semantic_lower_bound =
        uncovered.empty()
            ? 1
            : CeilDiv(static_cast<int64_t>(uncovered.size()), n - 2);
  }

  if (uncovered.empty()) {
    result.executions = 1;  // the single plan covers everything needed
    return result;
  }

  // Greedy: each round builds the full join tree that maximizes newly
  // covered SEs, via DP over connected subsets.
  result.executions = 0;
  while (!uncovered.empty()) {
    struct Choice {
      int gain = 0;
      RelMask left = 0;  // 0 marks a leaf
      RelMask right = 0;
    };
    std::unordered_map<RelMask, Choice> best;
    for (RelMask se : plan_space.subexpressions()) {
      Choice choice;
      if (!IsSingleton(se)) {
        for (const PlanAlt& plan : plan_space.plans(se)) {
          const int gain = best.at(plan.left).gain + best.at(plan.right).gain;
          if (choice.left == 0 || gain > choice.gain) {
            choice.gain = gain;
            choice.left = plan.left;
            choice.right = plan.right;
          }
        }
        if (se != full && uncovered.count(se)) choice.gain += 1;
      }
      best[se] = choice;
    }

    // Extract the chosen tree's internal masks (and the tree itself, so a
    // driver can actually execute this re-ordered plan).
    std::vector<RelMask> newly;
    ExecCoverResult::CoverTree tree;
    std::vector<RelMask> stack = {full};
    while (!stack.empty()) {
      const RelMask se = stack.back();
      stack.pop_back();
      if (IsSingleton(se)) continue;
      if (se != full && uncovered.erase(se) > 0) newly.push_back(se);
      const Choice& choice = best.at(se);
      if (choice.left != 0) {
        tree.splits[se] = {choice.left, choice.right};
        stack.push_back(choice.left);
        stack.push_back(choice.right);
      }
    }
    result.per_run_tree.push_back(std::move(tree));
    ++result.executions;
    const bool progressed = !newly.empty();
    result.per_run_covered.push_back(std::move(newly));
    // Every uncovered SE is an internal node of some full tree (the join
    // graph is connected within the block), so a round must progress.
    ETLOPT_CHECK_MSG(progressed || uncovered.empty(),
                     "execution cover made no progress");
  }
  return result;
}

}  // namespace etlopt
