file(REMOVE_RECURSE
  "CMakeFiles/ext_error_tradeoff.dir/ext_error_tradeoff.cc.o"
  "CMakeFiles/ext_error_tradeoff.dir/ext_error_tradeoff.cc.o.d"
  "ext_error_tradeoff"
  "ext_error_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_error_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
