#ifndef ETLOPT_CORE_PIPELINE_H_
#define ETLOPT_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "css/generator.h"
#include "engine/instrumentation.h"
#include "estimator/estimator.h"
#include "obs/calibrate.h"
#include "obs/guard.h"
#include "obs/ledger.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"
#include "optimizer/rewrite.h"
#include "util/thread_pool.h"

namespace etlopt {

// Which statistics selector drives step 4 of the framework.
enum class SelectorKind {
  kGreedy,      // Section 5.3 heuristic
  kIlp,         // Section 5.2 integer program (greedy fallback on size)
};

struct PipelineOptions {
  CssGenOptions css;
  PlanSpaceOptions plan_space;
  CostModelOptions cost;
  SelectorKind selector = SelectorKind::kGreedy;
  IlpSelectorOptions ilp;
  CostParams optimizer_cost;
  // Statistics already known from the source systems, free to use (§6.2).
  std::vector<StatKey> free_source_stats;
  // Drift-flagged statistics to force back into every block's selection
  // (re-instrumentation after the drift detector declared them stale).
  std::vector<StatKey> force_observe;
  // Memory budget for the instrumentation taps (bytes). <= 0 means exact
  // collection always (and the Pipeline constructor then consults
  // ETLOPT_TAP_BUDGET for a default). A positive budget makes RunAndObserve
  // switch distinct/histogram taps to streaming sketches whenever the
  // estimated exact footprint exceeds it, and makes Analyze cap the
  // selection cost model's per-statistic memory charge at the sketch sizes.
  int64_t tap_memory_budget_bytes = 0;
  // Robustness knobs for the executor (retry/backoff policy, quarantine
  // error-rate bound). Defaults come from the environment; with no
  // ETLOPT_RETRY_* / ETLOPT_MAX_ERROR_RATE variables set they reproduce
  // the seed behavior exactly.
  ExecutorOptions executor = ExecutorOptions::FromEnv();
  // Tap checkpoint sidecar: when non-empty, RunAndObserve snapshots the
  // partial tap state there every `checkpoint_every_rows` tapped rows
  // (crash-safe tmp+fsync+rename), discards the sidecar on clean
  // completion, and leaves a final partial=true snapshot behind when the
  // run aborts. The Pipeline constructor consults ETLOPT_CHECKPOINT_EVERY
  // when checkpoint_every_rows is not positive.
  std::string checkpoint_path;
  int64_t checkpoint_every_rows = 0;
  // Worker threads for the partitioned executor (engine/parallel/). 1 runs
  // the serial executor unchanged — the default path, bit-identical to the
  // seed. > 1 partitions eligible operator chains across a worker pool the
  // Pipeline owns (reused across runs) and taps statistics partition-
  // locally; observed statistics are identical to a serial run's. <= 0
  // consults ETLOPT_THREADS (default 1).
  int num_threads = 0;
  // Cost-model calibration fit from profiled ledger runs (obs/calibrate.h).
  // When non-empty, Analyze scales the selection cost model's CPU charge to
  // calibrated tap nanoseconds, and RunAndObserve annotates the run profile
  // with per-operator predicted times (tracked as "cost" / "plan_cost"
  // q-error by the accuracy tracker). The Pipeline constructor consults
  // ETLOPT_CALIBRATION (a file path) when this is empty.
  obs::CostCalibration calibration;
  // Plan-regression guard (obs/guard.h): adoption gate thresholds and
  // runtime estimate-monitor policy. Mode defaults to `warn` (evidence
  // scored and recorded, plans still adopted — behaviorally identical to
  // the seed on clean runs); `strict` keeps the designed plan on weak
  // evidence and aborts on a monitor violation; `off` disables everything.
  // Defaults come from ETLOPT_GUARD_* via GuardOptions::FromEnv.
  obs::GuardOptions guard = obs::GuardOptions::FromEnv();
};

// Per-block analysis artifacts (steps 1-4 of Fig. 2).
struct BlockAnalysis {
  Block block;
  BlockContext ctx;
  PlanSpace plan_space;
  CssCatalog catalog;
  SelectionProblem problem;  // references `catalog`
  SelectionResult selection;
};

// Whole-workflow analysis. Owns a stable copy of the workflow that the
// block contexts point into.
struct Analysis {
  std::unique_ptr<Workflow> workflow;
  std::vector<std::unique_ptr<BlockAnalysis>> blocks;
};

// One instrumented run (steps 5-6). When the execution aborted mid-flight
// (exec.aborted()), block_stats holds the statistics salvaged from the
// completed prefix — keys whose pipeline points fell past the abort are
// simply absent (tap_report.salvage_skipped counts them).
struct RunOutcome {
  ExecutionResult exec;
  std::vector<StatStore> block_stats;  // aligned with Analysis::blocks
  // Tap collection accounting across all blocks: how many taps ran exact
  // vs. sketch, and the bytes each mode held.
  TapReport tap_report;

  bool aborted() const { return exec.aborted(); }
};

// Step 7: cost-based re-optimization from the learned statistics.
struct OptimizeOutcome {
  Workflow optimized;
  std::vector<CardMap> block_cards;  // estimated SE cardinalities per block
  double initial_cost = 0.0;         // designed plan, under learned stats
  double optimized_cost = 0.0;       // chosen plan, under learned stats
  // Everything the estimator derived per block, with provenance: which
  // observed statistic (through which CSS rule) fed each estimate. This is
  // what the advisor's `explain` renders.
  struct BlockEstimates {
    StatStore derived;
    ProvenanceMap provenance;
  };
  std::vector<BlockEstimates> block_estimates;
  // Adoption verdict of the plan-regression guard (plus, after RunCycle,
  // any runtime monitor violations the execution raised). When the strict
  // gate rejected the proposal, `optimized` carries the designed workflow,
  // optimized_cost equals initial_cost, and guard.fell_back is true with
  // the rejected plan's signature and the failed criteria recorded.
  obs::GuardRecord guard;
};

struct CycleOutcome {
  std::unique_ptr<Analysis> analysis;
  RunOutcome run;
  OptimizeOutcome opt;
  // Per-phase wall times, for the run ledger.
  double analyze_ms = 0.0;
  double execute_ms = 0.0;
  double optimize_ms = 0.0;

  // True when the run aborted: `opt` then carries the designed plan
  // unchanged (there is no complete statistics set to re-optimize from) and
  // MakeRunRecord emits a partial=true record.
  bool aborted() const { return run.aborted(); }
};

// The end-to-end optimization loop of Figure 2: analyze the workflow,
// determine the cheapest sufficient statistics, instrument + run, estimate
// every SE cardinality, and emit the re-optimized workflow for the next run.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  // Steps 1-4. `size_feedback` optionally provides SE sizes from a previous
  // run for the CPU cost metric (Section 5.4's circularity fix).
  // `extra_force_observe` appends to options().force_observe for this
  // analysis only (guard-seeded re-instrumentation of SEs whose estimates
  // a prior run's monitors caught out).
  Result<std::unique_ptr<Analysis>> Analyze(
      const Workflow& workflow,
      const std::vector<CardMap>* size_feedback = nullptr,
      const std::vector<StatKey>* extra_force_observe = nullptr) const;

  // Steps 5-6: execute the designed plan and observe the selected
  // statistics. `history` (prior ledger records of this workflow, oldest
  // first) arms the guard's runtime estimate monitors: the last clean
  // record's per-SE estimates become per-node expected cardinalities the
  // executor checks at its tap points.
  Result<RunOutcome> RunAndObserve(
      const Analysis& analysis, const SourceMap& sources,
      const std::vector<obs::RunRecord>* history = nullptr) const;

  // Step 7: derive all SE cardinalities and rewrite the join orders.
  // `history` feeds the guard's adoption gate (drift-flagged statistics
  // distrust their dependent estimates; plans a prior run's monitors marked
  // unsafe are rejected outright).
  Result<OptimizeOutcome> Optimize(
      const Analysis& analysis, const RunOutcome& run,
      const std::vector<obs::RunRecord>* history = nullptr) const;

  // Convenience: one full cycle.
  Result<CycleOutcome> RunCycle(
      const Workflow& workflow, const SourceMap& sources,
      const std::vector<obs::RunRecord>* history = nullptr) const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  // Worker pool for partitioned execution and partition-local taps, spun up
  // once when num_threads > 1 and reused by every RunAndObserve.
  std::unique_ptr<ThreadPool> pool_;
};

// Condenses a completed cycle into a ledger record: workflow fingerprint,
// chosen plan signature, per-SE estimated (and, when `truth` per-block
// ground-truth cardinalities are given, actual) rows, the observed
// statistics, phase timings, and a metrics counter snapshot. `run_id`
// typically comes from RunLedger::NextRunId.
obs::RunRecord MakeRunRecord(const CycleOutcome& cycle, std::string run_id,
                             const std::vector<CardMap>* truth = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_CORE_PIPELINE_H_
