file(REMOVE_RECURSE
  "CMakeFiles/source_statistics.dir/source_statistics.cpp.o"
  "CMakeFiles/source_statistics.dir/source_statistics.cpp.o.d"
  "source_statistics"
  "source_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
