#include "util/fault.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/logging.h"
#include "util/string_util.h"

namespace etlopt {
namespace fault {
namespace {

std::mutex g_mu;
std::unique_ptr<FaultInjector> g_owned;          // guarded by g_mu
std::atomic<FaultInjector*> g_injector{nullptr};  // fast-path view
std::atomic<bool> g_initialized{false};

// Per-rule PRNG stream: decorrelated from the global seed and the rule's
// position so editing one rule never perturbs another's Bernoulli draws.
uint64_t RuleSeed(uint64_t seed, size_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool NameMatches(const Rule& rule, const std::string& name) {
  if (rule.name == "*" || rule.name == name) return true;
  // Partition indices match exactly: a prefix rule "1" must not hit "10".
  if (rule.scope == Scope::kPartition) return false;
  // Prefix match lets "join" hit "join5" (OpKindName + node id).
  return name.size() > rule.name.size() &&
         name.compare(0, rule.name.size(), rule.name) == 0;
}

Result<Scope> ParseScope(const std::string& token) {
  if (token == "source") return Scope::kSource;
  if (token == "op") return Scope::kOp;
  if (token == "tap") return Scope::kTap;
  if (token == "partition") return Scope::kPartition;
  return Status::InvalidArgument("unknown fault scope '" + token + "'");
}

Result<int64_t> ParseInt(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) {
    return Status::InvalidArgument("bad " + what + " value '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseProb(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
    return Status::InvalidArgument("bad probability '" + text +
                                   "' (want [0,1])");
  }
  return v;
}

Status ParseParam(const std::string& token, Rule* rule) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("bad fault param '" + token +
                                   "' (want k=v)");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "p") {
    ETLOPT_ASSIGN_OR_RETURN(rule->p, ParseProb(value));
  } else if (key == "count") {
    ETLOPT_ASSIGN_OR_RETURN(rule->count, ParseInt(value, "count"));
  } else if (key == "every") {
    ETLOPT_ASSIGN_OR_RETURN(rule->every, ParseInt(value, "every"));
    if (rule->every == 0) {
      return Status::InvalidArgument("every=0 is not a cadence");
    }
  } else {
    return Status::InvalidArgument("unknown fault param '" + key + "'");
  }
  return Status::OK();
}

Result<Rule> ParseRule(const std::string& element) {
  const std::vector<std::string> parts = SplitString(element, ':');
  if (parts.size() < 3 || parts.size() > 4) {
    return Status::InvalidArgument(
        "bad fault element '" + element +
        "' (want scope:name:kind[:param,...])");
  }
  Rule rule;
  ETLOPT_ASSIGN_OR_RETURN(rule.scope, ParseScope(parts[0]));
  rule.name = parts[1];
  if (rule.name.empty()) {
    return Status::InvalidArgument("empty fault target in '" + element + "'");
  }
  const std::string& kind = parts[2];
  if (kind == "io_error") {
    rule.kind = Kind::kIoError;
  } else if (kind == "timeout") {
    rule.kind = Kind::kTimeout;
  } else if (kind == "malformed_row") {
    rule.kind = Kind::kMalformedRow;
  } else if (kind == "crash") {
    rule.kind = Kind::kCrash;
  } else if (kind.rfind("crash_after_rows=", 0) == 0) {
    rule.kind = Kind::kCrash;
    ETLOPT_ASSIGN_OR_RETURN(
        rule.after_rows,
        ParseInt(kind.substr(std::strlen("crash_after_rows=")),
                 "crash_after_rows"));
  } else if (kind == "oom") {
    rule.kind = Kind::kOom;
  } else {
    return Status::InvalidArgument("unknown fault kind '" + kind + "'");
  }
  if (parts.size() == 4) {
    for (const std::string& param : SplitString(parts[3], ',')) {
      ETLOPT_RETURN_IF_ERROR(ParseParam(param, &rule));
    }
  }
  return rule;
}

}  // namespace

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kIoError:
      return "io_error";
    case Kind::kTimeout:
      return "timeout";
    case Kind::kMalformedRow:
      return "malformed_row";
    case Kind::kCrash:
      return "crash";
    case Kind::kOom:
      return "oom";
  }
  return "unknown";
}

bool Rule::ConsumeEvent(Rng& rng, int64_t weight) {
  events += weight;
  bool fire;
  if (kind == Kind::kCrash && after_rows >= 0) {
    // Row-accumulating threshold: fire once, when the matched operators
    // have cumulatively consumed after_rows input rows.
    fire = fired == 0 && events >= after_rows;
  } else if (count >= 0) {
    fire = fired < count;
  } else if (p >= 0.0) {
    fire = rng.NextDouble() < p;
  } else if (every > 0) {
    fire = events % every == 0;
  } else {
    fire = true;
  }
  if (fire) ++fired;
  return fire;
}

Result<FaultInjector> FaultInjector::Parse(const std::string& spec) {
  FaultInjector injector;
  injector.seed_ = 0x5eedULL;
  for (const std::string& raw : SplitString(spec, ';')) {
    const std::string element = TrimString(raw);
    if (element.empty()) continue;
    if (element.rfind("seed=", 0) == 0) {
      ETLOPT_ASSIGN_OR_RETURN(
          const int64_t seed,
          ParseInt(element.substr(std::strlen("seed=")), "seed"));
      injector.seed_ = static_cast<uint64_t>(seed);
      continue;
    }
    ETLOPT_ASSIGN_OR_RETURN(Rule rule, ParseRule(element));
    injector.rules_.push_back(std::move(rule));
  }
  injector.rngs_.clear();
  injector.rngs_.reserve(injector.rules_.size());
  for (size_t i = 0; i < injector.rules_.size(); ++i) {
    injector.rngs_.emplace_back(RuleSeed(injector.seed_, i));
  }
  return injector;
}

FaultInjector* FaultInjector::Global() {
  if (!g_initialized.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_initialized.load(std::memory_order_relaxed)) {
      const char* spec = std::getenv("ETLOPT_FAULT_SPEC");
      if (spec != nullptr && *spec != '\0') {
        Result<FaultInjector> parsed = Parse(spec);
        if (parsed.ok() && parsed->has_rules()) {
          g_owned = std::make_unique<FaultInjector>(std::move(*parsed));
          g_injector.store(g_owned.get(), std::memory_order_release);
        } else if (!parsed.ok()) {
          ETLOPT_LOG(Error) << "ignoring unparsable ETLOPT_FAULT_SPEC: "
                            << parsed.status().ToString();
        }
      }
      g_initialized.store(true, std::memory_order_release);
    }
  }
  return g_injector.load(std::memory_order_acquire);
}

Status FaultInjector::InstallGlobal(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (TrimString(spec).empty()) {
    g_injector.store(nullptr, std::memory_order_release);
    g_owned.reset();
    g_initialized.store(true, std::memory_order_release);
    return Status::OK();
  }
  ETLOPT_ASSIGN_OR_RETURN(FaultInjector parsed, Parse(spec));
  // Swap only after a clean parse; readers never observe a half-built
  // injector.
  g_injector.store(nullptr, std::memory_order_release);
  g_owned = std::make_unique<FaultInjector>(std::move(parsed));
  g_injector.store(g_owned->has_rules() ? g_owned.get() : nullptr,
                   std::memory_order_release);
  g_initialized.store(true, std::memory_order_release);
  return Status::OK();
}

void FaultInjector::ResetState() {
  std::lock_guard<std::mutex> lock(*mu_);
  for (Rule& rule : rules_) {
    rule.events = 0;
    rule.fired = 0;
  }
  for (size_t i = 0; i < rngs_.size(); ++i) {
    rngs_[i] = Rng(RuleSeed(seed_, i));
  }
}

bool FaultInjector::HasRules(Scope scope, const std::string& name) const {
  for (const Rule& rule : rules_) {
    if (rule.scope == scope && NameMatches(rule, name)) return true;
  }
  return false;
}

Kind FaultInjector::Consult(Scope scope, const std::string& name,
                            std::initializer_list<Kind> kinds,
                            int64_t weight) {
  // Rule state (event/fired counters, PRNG streams) mutates on every
  // consultation and partition-scope hooks arrive from worker threads.
  std::lock_guard<std::mutex> lock(*mu_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    Rule& rule = rules_[i];
    if (rule.scope != scope || !NameMatches(rule, name)) continue;
    bool relevant = false;
    for (Kind k : kinds) relevant |= rule.kind == k;
    if (!relevant) continue;
    if (rule.ConsumeEvent(rngs_[i], weight)) return rule.kind;
  }
  return Kind::kNone;
}

Kind FaultInjector::OnSourceOpen(const std::string& source) {
  return Consult(Scope::kSource, source, {Kind::kIoError, Kind::kTimeout}, 1);
}

Kind FaultInjector::OnSourceRow(const std::string& source) {
  return Consult(Scope::kSource, source, {Kind::kMalformedRow}, 1);
}

Kind FaultInjector::OnOperator(const std::string& op, int64_t rows_in) {
  return Consult(Scope::kOp, op, {Kind::kCrash}, rows_in);
}

Kind FaultInjector::OnTap(const std::string& tap_kind) {
  return Consult(Scope::kTap, tap_kind, {Kind::kOom, Kind::kCrash}, 1);
}

Kind FaultInjector::OnPartition(const std::string& partition, int64_t rows) {
  return Consult(Scope::kPartition, partition, {Kind::kCrash}, rows);
}

}  // namespace fault
}  // namespace etlopt
