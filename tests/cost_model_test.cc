#include <gtest/gtest.h>

#include "stats/cost_model.h"

namespace etlopt {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = catalog_.Register("a", 100);
    b_ = catalog_.Register("b", 7);
  }
  AttrCatalog catalog_;
  AttrId a_ = kInvalidAttr;
  AttrId b_ = kInvalidAttr;
};

TEST_F(CostModelTest, MemoryCostsMatchSection54Table) {
  CostModel model(&catalog_, {});
  // |T| -> 1 counter.
  EXPECT_EQ(model.MemoryCost(StatKey::Card(0b1)), 1.0);
  // |a_T| -> |a|.
  EXPECT_EQ(model.MemoryCost(StatKey::Distinct(0b1, AttrMask{1} << a_)),
            100.0);
  // H^a -> |a|;  H^{a,b} -> |a||b|.
  EXPECT_EQ(model.MemoryCost(StatKey::Hist(0b1, AttrMask{1} << a_)), 100.0);
  EXPECT_EQ(model.MemoryCost(StatKey::Hist(
                0b1, (AttrMask{1} << a_) | (AttrMask{1} << b_))),
            700.0);
  // Reject statistics: counter = 1; histogram = domain product.
  EXPECT_EQ(model.MemoryCost(StatKey::RejectJoinCard(0b1, 1, 0b100)), 1.0);
  EXPECT_EQ(model.MemoryCost(
                StatKey::RejectJoinHist(0b1, 1, 0b100, AttrMask{1} << b_)),
            7.0);
}

TEST_F(CostModelTest, CpuCostUsesFeedbackSizes) {
  CostModelOptions options;
  options.metric = CostMetric::kCpu;
  options.default_se_size = 5000;
  CostModel model(&catalog_, options);
  // No feedback: coarse default.
  EXPECT_EQ(model.Cost(StatKey::Card(0b11)), 5000.0);
  // With feedback from a previous run.
  model.SetSeSize(0b11, 1234);
  EXPECT_EQ(model.Cost(StatKey::Card(0b11)), 1234.0);
  // Chain stages are tracked separately.
  model.SetChainSize(0, 0, 777);
  EXPECT_EQ(model.Cost(StatKey::CardStage(0, 0)), 777.0);
  EXPECT_EQ(model.Cost(StatKey::Card(0b01)), 5000.0);  // top unaffected
}

TEST_F(CostModelTest, CpuCostOfRejectStatsSumsBothSides) {
  CostModelOptions options;
  options.metric = CostMetric::kCpu;
  CostModel model(&catalog_, options);
  model.SetSeSize(0b001, 100);  // L
  model.SetSeSize(0b100, 40);   // R
  EXPECT_EQ(model.Cost(StatKey::RejectJoinCard(0b001, 1, 0b100)), 140.0);
}

TEST_F(CostModelTest, CombinedMetricWeighted) {
  CostModelOptions options;
  options.metric = CostMetric::kCombined;
  options.memory_weight = 2.0;
  options.cpu_weight = 0.5;
  options.default_se_size = 100;
  CostModel model(&catalog_, options);
  const StatKey key = StatKey::Hist(0b1, AttrMask{1} << b_);
  // 2*7 + 0.5*100 = 64.
  EXPECT_EQ(model.Cost(key), 64.0);
}

}  // namespace
}  // namespace etlopt
