#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bitmask.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace etlopt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad join key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad join key");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  ETLOPT_ASSIGN_OR_RETURN(int half, HalveEven(x));
  ETLOPT_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterEven(8), 2);
  EXPECT_FALSE(QuarterEven(6).ok());
  EXPECT_FALSE(QuarterEven(3).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(ZipfTest, CoversDomainAndSkews) {
  Rng rng(17);
  ZipfDistribution zipf(100, 1.2);
  std::vector<int64_t> counts(101, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const int64_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    ++counts[static_cast<size_t>(v)];
  }
  // Rank 1 must dominate rank 10 roughly by 10^1.2 ≈ 15.8.
  EXPECT_GT(counts[1], counts[10] * 8);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(BitmaskTest, Basics) {
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_TRUE(IsSubset(0b001, 0b011));
  EXPECT_FALSE(IsSubset(0b100, 0b011));
  EXPECT_TRUE(IsSingleton(0b100));
  EXPECT_FALSE(IsSingleton(0b110));
  EXPECT_FALSE(IsSingleton(0));
  EXPECT_EQ(LowestBit(0b1100), 2);
  EXPECT_EQ(MaskToIndices(0b1011), (std::vector<int>{0, 1, 3}));
}

TEST(BitmaskTest, SubsetIteratorEnumeratesProperSubsets) {
  std::set<uint64_t> seen;
  for (SubsetIterator it(0b1011); !it.Done(); it.Next()) {
    seen.insert(it.subset());
  }
  // 2^3 - 2 proper non-empty subsets of a 3-bit mask... minus none: the
  // iterator yields all non-empty proper sub-masks: 2^3 - 2 = 6.
  EXPECT_EQ(seen.size(), 6u);
  for (uint64_t s : seen) {
    EXPECT_TRUE(IsSubset(s, 0b1011));
    EXPECT_NE(s, 0b1011u);
    EXPECT_NE(s, 0u);
  }
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1811197), "1,811,197");
  EXPECT_EQ(WithThousands(-52234), "-52,234");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("7", 3), "7  ");
  EXPECT_EQ(PadLeft("1234", 3), "1234");
}

}  // namespace
}  // namespace etlopt
