#include <gtest/gtest.h>

#include <algorithm>

#include "css/generator.h"
#include "opt/closure.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"
#include "opt/resource.h"
#include "test_util.h"

namespace etlopt {
namespace {

// Hand-built catalog for closure unit tests:
//   s0, s1, s2 are leaves; s3 <- {s0, s1}; s4 <- {s3, s2}; s5 <- {s4} | {s0}.
CssCatalog TinyCatalog(std::vector<StatKey>* keys) {
  CssCatalog catalog;
  keys->clear();
  for (int i = 0; i < 6; ++i) {
    keys->push_back(StatKey::Card(RelMask{1} << i));
    catalog.AddStat(keys->back());
  }
  auto add = [&](int target, std::vector<int> inputs) {
    CssEntry e;
    e.rule = RuleId::kJ1;
    e.target = (*keys)[static_cast<size_t>(target)];
    for (int i : inputs) e.inputs.push_back((*keys)[static_cast<size_t>(i)]);
    catalog.AddCss(std::move(e));
  };
  add(3, {0, 1});
  add(4, {3, 2});
  add(5, {4});
  add(5, {0});
  return catalog;
}

TEST(ClosureTest, FixpointPropagates) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = TinyCatalog(&keys);
  std::vector<char> observed(6, 0);
  observed[0] = observed[1] = observed[2] = 1;
  const std::vector<char> computable = ComputeClosure(catalog, observed);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(computable[static_cast<size_t>(i)]);
}

TEST(ClosureTest, MissingInputBlocksDerivation) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = TinyCatalog(&keys);
  std::vector<char> observed(6, 0);
  observed[1] = observed[2] = 1;  // s0 missing
  const std::vector<char> computable = ComputeClosure(catalog, observed);
  EXPECT_FALSE(computable[3]);
  EXPECT_FALSE(computable[4]);
  EXPECT_FALSE(computable[5]);
}

TEST(ClosureTest, AlternativeCssSuffices) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = TinyCatalog(&keys);
  std::vector<char> observed(6, 0);
  observed[0] = 1;  // s5 <- {s0} fires
  const std::vector<char> computable = ComputeClosure(catalog, observed);
  EXPECT_TRUE(computable[5]);
  EXPECT_FALSE(computable[4]);
}

TEST(ClosureTest, DerivationIsAcyclic) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = TinyCatalog(&keys);
  std::vector<char> observed(6, 0);
  observed[0] = observed[1] = observed[2] = 1;
  std::vector<int> derivation;
  ComputeClosure(catalog, observed, &derivation);
  EXPECT_EQ(derivation[0], -1);  // observed
  EXPECT_GE(derivation[3], 0);
  EXPECT_GE(derivation[4], 0);
  EXPECT_GE(derivation[5], 0);
}

class PaperSelection : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakePaperExample();
    const std::vector<Block> blocks = PartitionBlocks(ex_.workflow);
    ctx_ = BlockContext::Build(&ex_.workflow, blocks[0]).value();
    ps_ = PlanSpace::Build(ctx_).value();
    catalog_ = GenerateCss(ctx_, ps_, {});
    CostModel cost_model(&ex_.workflow.catalog(), {});
    problem_ = BuildSelectionProblem(ctx_, ps_, catalog_, cost_model);
  }

  testing_util::PaperExample ex_;
  BlockContext ctx_;
  PlanSpace ps_;
  CssCatalog catalog_;
  SelectionProblem problem_;
};

TEST_F(PaperSelection, GreedyCoversAllRequired) {
  const SelectionResult result = SelectGreedy(problem_);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(SelectionCovers(problem_, result.observed));
  EXPECT_GT(result.total_cost, 0.0);
}

TEST_F(PaperSelection, GreedyObservesOnlyObservableStats) {
  const SelectionResult result = SelectGreedy(problem_);
  for (int s : result.observed) {
    EXPECT_TRUE(problem_.observable[static_cast<size_t>(s)])
        << catalog_.stat(s).ToString(&ex_.workflow.catalog());
  }
}

TEST_F(PaperSelection, GreedyHasNoRedundantObservation) {
  const SelectionResult result = SelectGreedy(problem_);
  for (size_t drop = 0; drop < result.observed.size(); ++drop) {
    std::vector<int> reduced;
    for (size_t i = 0; i < result.observed.size(); ++i) {
      if (i != drop) reduced.push_back(result.observed[i]);
    }
    EXPECT_FALSE(SelectionCovers(problem_, reduced))
        << "redundant: "
        << catalog_.stat(result.observed[drop])
               .ToString(&ex_.workflow.catalog());
  }
}

TEST_F(PaperSelection, IlpMatchesExhaustiveOptimum) {
  const SelectionResult ilp = SelectIlp(problem_);
  ASSERT_TRUE(ilp.feasible);
  EXPECT_TRUE(SelectionCovers(problem_, ilp.observed));

  const SelectionResult brute = SelectExhaustive(problem_, 26);
  if (brute.feasible) {
    EXPECT_NEAR(ilp.total_cost, brute.total_cost, 1e-6) << ilp.method;
  }
  // Greedy is never better than the ILP optimum.
  const SelectionResult greedy = SelectGreedy(problem_);
  EXPECT_GE(greedy.total_cost + 1e-9, ilp.total_cost);
}

TEST_F(PaperSelection, CheapOnPathCountersArePreferred) {
  // The cardinalities of on-path SEs (O, P, C, OP, OPC) cost 1 each; the
  // only genuinely expensive need is |OC|. The optimal solution should not
  // cost more than a couple of histograms.
  const SelectionResult result = SelectIlp(problem_);
  const AttrCatalog& catalog = ex_.workflow.catalog();
  const double cust_dom =
      static_cast<double>(catalog.domain_size(ex_.cust_id));
  const double prod_dom =
      static_cast<double>(catalog.domain_size(ex_.prod_id));
  EXPECT_LE(result.total_cost,
            5.0 + 2.0 * std::max(cust_dom, prod_dom) + 2.0 * cust_dom);
}

TEST_F(PaperSelection, SourceStatsReduceCost) {
  const SelectionResult base = SelectGreedy(problem_);
  // Make every base-relation histogram free (Section 6.2).
  SelectionOptions options;
  for (int s = 0; s < catalog_.num_stats(); ++s) {
    const StatKey& key = catalog_.stat(s);
    if (key.kind == StatKind::kHist && IsSingleton(key.rels) &&
        !key.is_chain_stage()) {
      options.free_source_stats.push_back(key);
    }
  }
  CostModel cost_model(&ex_.workflow.catalog(), {});
  const SelectionProblem with_free =
      BuildSelectionProblem(ctx_, ps_, catalog_, cost_model, options);
  const SelectionResult freed = SelectGreedy(with_free);
  ASSERT_TRUE(freed.feasible);
  EXPECT_LT(freed.total_cost, base.total_cost);
}

TEST_F(PaperSelection, BudgetedSelectionDefersToReorderedRuns) {
  // A budget of 6 units only allows counters: |OC| cannot be covered in the
  // first run and must come from a re-ordered execution.
  const BudgetedSelection budgeted =
      SelectWithBudget(problem_, ctx_, ps_, 6.0);
  EXPECT_FALSE(budgeted.first_run.feasible);
  EXPECT_LE(budgeted.memory_used, 6.0);
  ASSERT_FALSE(budgeted.deferred.empty());
  EXPECT_EQ(budgeted.deferred[0], 0b101u);  // OC
  EXPECT_GE(budgeted.total_executions(), 2);
}

TEST_F(PaperSelection, LargeBudgetBehavesLikeUnbudgeted) {
  const BudgetedSelection budgeted =
      SelectWithBudget(problem_, ctx_, ps_, 1e12);
  EXPECT_TRUE(budgeted.first_run.feasible);
  EXPECT_TRUE(budgeted.deferred.empty());
  EXPECT_EQ(budgeted.total_executions(), 1);
}

}  // namespace
}  // namespace etlopt
